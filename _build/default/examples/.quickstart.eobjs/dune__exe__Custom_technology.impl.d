examples/custom_technology.ml: Format List Mae Mae_geom Mae_report Mae_tech Mae_workload Printf String
