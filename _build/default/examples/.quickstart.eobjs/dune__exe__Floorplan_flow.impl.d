examples/floorplan_flow.ml: List Mae Mae_baselines Mae_floorplan Mae_layout Mae_netlist Mae_prob Mae_tech Mae_workload Printf String
