examples/mixed_methodology.ml: List Mae Mae_layout Mae_prob Mae_report Mae_tech Mae_workload
