examples/mixed_methodology.mli:
