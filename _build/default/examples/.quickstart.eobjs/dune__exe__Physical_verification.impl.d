examples/physical_verification.ml: Filename Format List Mae Mae_layout Mae_netlist Mae_prob Mae_report Mae_tech Mae_workload Printf
