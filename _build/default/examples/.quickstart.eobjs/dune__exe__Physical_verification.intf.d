examples/physical_verification.mli:
