examples/quickstart.ml: Format List Mae Mae_db Mae_netlist Mae_tech
