examples/quickstart.mli:
