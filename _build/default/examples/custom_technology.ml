(* Multiple fabrication processes (section 3): load a user-defined .tech
   process into the registry and compare the same schematic's estimates
   across technologies.

     dune exec examples/custom_technology.exe *)

(* A hypothetical 1.0 um CMOS process with a denser routing pitch. *)
let custom_tech =
  {|
# cmos10: 1.0um CMOS, 3 routing layers
process cmos10
lambda 1.0
row-height 40
track-pitch 4
feed-width 4
port-pitch 6
min-spacing 2
device nenh nenh 4 8
device pmos pmos 4 12
device inv gate 9 40
device buf gate 14 40
device nand2 gate 14 40
device nand3 gate 19 40
device nand4 gate 24 40
device nor2 gate 14 40
device nor3 gate 19 40
device aoi22 gate 22 40
device xor2 gate 26 40
device mux2 gate 26 40
device latch storage 32 40
device dff storage 46 40
device iopad pad 70 70
device feed feedthrough 4 40
end
|}

let () =
  let registry = Mae_tech.Registry.create () in
  begin
    match Mae_tech.Registry.load_string registry custom_tech with
    | Ok n -> Printf.printf "loaded %d custom process(es)\n" n
    | Error e ->
        Format.printf "failed to load custom process: %a@."
          Mae_tech.Tech_parser.pp_error e;
        exit 1
  end;
  Printf.printf "registry knows: %s\n\n"
    (String.concat ", " (Mae_tech.Registry.names registry));
  let table =
    Mae_report.Table.create
      ~columns:
        [
          ("process", Mae_report.Table.Left);
          ("rows", Mae_report.Table.Right);
          ("tracks", Mae_report.Table.Right);
          ("area (L^2)", Mae_report.Table.Right);
          ("area (um^2)", Mae_report.Table.Right);
          ("aspect", Mae_report.Table.Right);
        ]
  in
  List.iter
    (fun tech ->
      let circuit = Mae_workload.Generators.counter ~technology:tech 4 in
      let process = Mae_tech.Registry.find_exn registry tech in
      let est = Mae.Stdcell.estimate_auto circuit process in
      let lam = process.Mae_tech.Process.lambda_microns in
      Mae_report.Table.add_row table
        [
          tech;
          string_of_int est.Mae.Estimate.rows;
          string_of_int est.Mae.Estimate.tracks;
          Mae_report.Err.f0 est.Mae.Estimate.area;
          Mae_report.Err.f0 (est.Mae.Estimate.area *. lam *. lam);
          Mae_report.Err.aspect_string
            (Mae_geom.Aspect.ratio est.Mae.Estimate.aspect);
        ])
    [ "nmos25"; "cmos20"; "cmos15"; "cmos10" ];
  print_endline "Standard-cell estimate of a 4-bit counter per technology:";
  Mae_report.Table.print table;
  print_endline
    "Lambda^2 areas are similar across processes (the schematic is the \
     same);\nphysical um^2 area shrinks with lambda, as it should."
