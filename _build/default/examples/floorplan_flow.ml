(* The downstream consumer of Figure 1: feed estimator output to the
   slicing floor planner and measure how many floor-planning iterations
   good estimates save compared to a naive seed (the paper's stated
   motivation).

     dune exec examples/floorplan_flow.exe *)

let process = Mae_tech.Builtin.nmos25

let () =
  let rng = Mae_prob.Rng.create ~seed:7 in
  (* A chip of six modules with Rent-style sizes. *)
  let modules =
    Mae_workload.Rent.generate_modules ~rng
      { Mae_workload.Rent.default_params with clusters = 6; cluster_size = 30 }
  in
  (* "Real" module areas come from actually laying each module out. *)
  let reals =
    List.map
      (fun circuit ->
        let rows = Mae.Row_select.initial_rows circuit process in
        let layout =
          Mae_layout.Sc_flow.run
            ~schedule:Mae_layout.Anneal.quick_schedule
            ~rng:(Mae_prob.Rng.split rng) ~rows circuit process
        in
        layout.Mae_layout.Row_layout.area)
      modules
  in
  let estimator_specs =
    List.map2
      (fun circuit real_area ->
        let candidates = Mae.Extensions.stdcell_shape_candidates circuit process in
        let shapes =
          Mae_floorplan.Shape.with_rotations
            (Mae_floorplan.Shape.of_list
               (List.map
                  (fun (e : Mae.Estimate.stdcell) -> (e.width, e.height))
                  candidates))
        in
        {
          Mae_floorplan.Flow.name = circuit.Mae_netlist.Circuit.name;
          estimated_shapes = shapes;
          real_area;
        })
      modules reals
  in
  let naive_specs =
    List.map2
      (fun circuit real_area ->
        let w, h = Mae_baselines.Naive.estimate_square circuit process in
        {
          Mae_floorplan.Flow.name = circuit.Mae_netlist.Circuit.name;
          estimated_shapes = Mae_floorplan.Shape.singleton ~w ~h;
          real_area;
        })
      modules reals
  in
  let schedule = Mae_layout.Anneal.quick_schedule in
  let with_estimator =
    Mae_floorplan.Flow.converge ~schedule ~rng:(Mae_prob.Rng.create ~seed:11)
      estimator_specs
  in
  let with_naive =
    Mae_floorplan.Flow.converge ~schedule ~rng:(Mae_prob.Rng.create ~seed:11)
      naive_specs
  in
  let describe label (r : Mae_floorplan.Flow.report) =
    Printf.printf "%-22s %d iteration(s), final chip area %.0f L^2\n" label
      r.rounds r.final_chip_area;
    List.iteri
      (fun i (round : Mae_floorplan.Flow.round_report) ->
        Printf.printf "  round %d: chip %.0f L^2, misfits: %s\n" (i + 1)
          round.chip_area
          (match round.misfits with
           | [] -> "none"
           | names -> String.concat ", " names))
      r.history
  in
  print_endline "Floor-planning iterations to a plan every module fits:";
  describe "estimator seeds:" with_estimator;
  describe "naive seeds:" with_naive;
  if with_estimator.rounds <= with_naive.rounds then
    print_endline
      "=> accurate pre-layout estimates converge in no more iterations than \
       the naive seed (the paper's motivation)."
