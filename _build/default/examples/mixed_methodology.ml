(* Choosing a layout methodology per module, the use case motivating the
   paper's introduction: estimate each module under both methodologies
   before any layout exists, then compare against layouts produced by the
   place & route flows to see how trustworthy the choice was.

     dune exec examples/mixed_methodology.exe *)

let process = Mae_tech.Builtin.nmos25

let analyze (entry : Mae_workload.Bench_circuits.entry) =
  let circuit = entry.circuit in
  (* Standard-cell estimate at the automatically chosen row count. *)
  let sc_est = Mae.Stdcell.estimate_auto circuit process in
  (* Full-custom estimate works on the transistor-level netlist. *)
  let flat = Mae_workload.Bench_circuits.flatten circuit in
  let fc_est, _ = Mae.Fullcustom.estimate_both flat process in
  (* Real layouts from both flows. *)
  let rng = Mae_prob.Rng.create ~seed:2026 in
  let sc_real =
    Mae_layout.Sc_flow.run ~rng ~rows:sc_est.Mae.Estimate.rows circuit process
  in
  let fc_real = Mae_layout.Fc_flow.run ~rng:(Mae_prob.Rng.split rng) flat process in
  (entry, sc_est, fc_est, sc_real, fc_real)

let () =
  let table =
    Mae_report.Table.create
      ~columns:
        [
          ("module", Mae_report.Table.Left);
          ("SC est (L^2)", Mae_report.Table.Right);
          ("SC real (L^2)", Mae_report.Table.Right);
          ("SC err", Mae_report.Table.Right);
          ("FC est (L^2)", Mae_report.Table.Right);
          ("FC real (L^2)", Mae_report.Table.Right);
          ("FC err", Mae_report.Table.Right);
          ("pick", Mae_report.Table.Left);
        ]
  in
  List.iter
    (fun entry ->
      let entry, sc_est, fc_est, sc_real, fc_real = analyze entry in
      let pick =
        if fc_est.Mae.Estimate.area < sc_est.Mae.Estimate.area then
          "full-custom"
        else "standard-cell"
      in
      Mae_report.Table.add_row table
        [
          entry.name;
          Mae_report.Err.f0 sc_est.Mae.Estimate.area;
          Mae_report.Err.f0 sc_real.Mae_layout.Row_layout.area;
          Mae_report.Err.percent_string ~estimated:sc_est.Mae.Estimate.area
            ~real:sc_real.Mae_layout.Row_layout.area;
          Mae_report.Err.f0 fc_est.Mae.Estimate.area;
          Mae_report.Err.f0 fc_real.Mae_layout.Row_layout.area;
          Mae_report.Err.percent_string ~estimated:fc_est.Mae.Estimate.area
            ~real:fc_real.Mae_layout.Row_layout.area;
          pick;
        ])
    (Mae_workload.Bench_circuits.table2 ());
  print_endline
    "Methodology choice from pre-layout estimates (nmos25), checked against";
  print_endline "the place & route flows:";
  Mae_report.Table.print table;
  print_endline
    "SC estimates sit above SC reality (the estimator is an upper bound:";
  print_endline "it ignores routing-track sharing), so the pick is conservative."
