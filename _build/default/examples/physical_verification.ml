(* Physical verification of the comparator flow: place & route a module,
   draw it, expand the channel routing into wires, and prove by geometric
   extraction (no net ids used) that the wiring reconnects exactly the
   source netlist.  This is the evidence that the "real" areas the
   estimator is judged against come from layouts that work.

     dune exec examples/physical_verification.exe *)

let process = Mae_tech.Builtin.nmos25

let () =
  let circuit = Mae_workload.Generators.alu 4 in
  let rows = Mae.Row_select.initial_rows circuit process in
  Printf.printf "module %s: %d cells, %d nets; laying out at %d rows\n"
    circuit.Mae_netlist.Circuit.name
    (Mae_netlist.Circuit.device_count circuit)
    (Mae_netlist.Circuit.net_count circuit)
    rows;
  let layout =
    Mae_layout.Sc_flow.run ~rng:(Mae_prob.Rng.create ~seed:7) ~rows circuit
      process
  in
  Printf.printf "placed & routed: %.0f x %.0f L = %.0f L^2, %d tracks, %d \
                 feed-throughs\n"
    layout.Mae_layout.Row_layout.width layout.height layout.area
    layout.total_tracks layout.feed_through_count;
  (* geometric legality *)
  let geometry = Mae_layout.Sc_flow.geometry circuit process layout in
  let violations =
    Mae_layout.Check.verify
      ~device_count:(Mae_netlist.Circuit.device_count circuit)
      geometry
  in
  begin
    match violations with
    | [] -> print_endline "legality: clean (no overlaps, rows respected)"
    | vs ->
        List.iter
          (fun v -> Format.printf "legality: %a@." Mae_layout.Check.pp_violation v)
          vs
  end;
  (* detailed wiring + LVS *)
  let wiring = Mae_layout.Sc_flow.wiring circuit process layout in
  Printf.printf "wiring: %d segments, %d vias, %.0f L of wire (HPWL bound \
                 was %.0f L)\n"
    (Mae_layout.Wiring.segment_count wiring)
    (List.length wiring.Mae_layout.Wiring.vias)
    (Mae_layout.Wiring.wire_length wiring)
    layout.hpwl;
  let report = Mae_layout.Extract.lvs wiring circuit in
  Format.printf "extraction vs netlist: %a -> %s@." Mae_layout.Extract.pp_report
    report
    (if Mae_layout.Extract.clean report then "LVS CLEAN" else "LVS DIRTY");
  (* port placement along the boundary (section 5, physically) *)
  let ports =
    match Mae_layout.Ports.place ~port_pitch:8. circuit layout geometry with
    | Ok placements ->
        Printf.printf
          "ports: %d placed on the boundary; fit-one-edge criterion: %b\n"
          (List.length placements)
          (Mae_layout.Ports.fits_one_edge geometry
             ~port_count:(Mae_netlist.Circuit.port_count circuit)
             ~port_pitch:8.);
        Some placements
    | Error e ->
        Printf.printf "ports: %s\n" e;
        None
  in
  (* drawing *)
  let svg = Mae_layout.Render.svg_of_geometry ~wiring ?ports geometry in
  let path = Filename.concat (Filename.get_temp_dir_name ()) "alu4_layout.svg" in
  begin
    match Mae_report.Svg.write ~path svg with
    | Ok () -> Printf.printf "drawing written to %s\n" path
    | Error e -> Printf.printf "could not write drawing: %s\n" e
  end;
  (* and the estimator's view of the same module, for contrast *)
  let est = Mae.Stdcell.estimate ~rows circuit process in
  Printf.printf
    "the pre-layout estimate said %.0f L^2 (upper bound; actual %.0f L^2, \
     %+.0f%%)\n"
    est.Mae.Estimate.area layout.area
    (Mae_report.Err.percent ~estimated:est.Mae.Estimate.area ~real:layout.area)
