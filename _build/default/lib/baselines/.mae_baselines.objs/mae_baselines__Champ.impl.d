lib/baselines/champ.ml: Float Int List Mae_prob
