lib/baselines/champ.mli: Mae_geom
