lib/baselines/naive.ml: Float Mae_netlist
