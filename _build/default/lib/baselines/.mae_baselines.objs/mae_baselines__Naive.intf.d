lib/baselines/naive.mli: Mae_geom Mae_netlist Mae_tech
