lib/baselines/pla.ml: Float Mae_tech
