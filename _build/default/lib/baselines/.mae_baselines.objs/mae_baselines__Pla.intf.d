lib/baselines/pla.mli: Mae_geom Mae_tech
