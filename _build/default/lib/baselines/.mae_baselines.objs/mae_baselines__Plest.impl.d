lib/baselines/plest.ml: Array Float Mae_layout Mae_netlist Mae_tech Stdlib
