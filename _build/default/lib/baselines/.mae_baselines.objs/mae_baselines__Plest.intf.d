lib/baselines/plest.mli: Mae_geom Mae_layout Mae_netlist Mae_tech
