type model = { coefficient : float; exponent : float }

let fit pairs =
  let valid = List.filter (fun (n, a) -> n > 0 && a > 0.) pairs in
  let distinct =
    List.sort_uniq Int.compare (List.map fst valid) |> List.length
  in
  if List.length valid < 2 then Error "need at least two training pairs"
  else if distinct < 2 then Error "need two distinct device counts"
  else begin
    (* least squares on log area = log a + b log n *)
    let points =
      List.map
        (fun (n, a) -> (Float.log (Float.of_int n), Float.log a))
        valid
    in
    let m = Float.of_int (List.length points) in
    let sx = List.fold_left (fun acc (x, _) -> acc +. x) 0. points in
    let sy = List.fold_left (fun acc (_, y) -> acc +. y) 0. points in
    let sxx = List.fold_left (fun acc (x, _) -> acc +. (x *. x)) 0. points in
    let sxy = List.fold_left (fun acc (x, y) -> acc +. (x *. y)) 0. points in
    let denom = (m *. sxx) -. (sx *. sx) in
    if Float.abs denom < 1e-12 then Error "degenerate training set"
    else begin
      let exponent = ((m *. sxy) -. (sx *. sy)) /. denom in
      let intercept = (sy -. (exponent *. sx)) /. m in
      Ok { coefficient = Float.exp intercept; exponent }
    end
  end

let estimate model ~devices =
  if devices < 1 then invalid_arg "Champ.estimate: devices < 1";
  model.coefficient *. (Float.of_int devices ** model.exponent)

let mean_relative_error model pairs =
  let errors =
    List.map
      (fun (n, actual) ->
        Float.abs (estimate model ~devices:n -. actual) /. actual)
      pairs
  in
  Mae_prob.Stats.mean errors
