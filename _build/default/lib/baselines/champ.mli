(** CHAMP-style empirical area estimation (Ueda, Kitazawa & Harada).

    CHAMP estimated block areas with "empirical formulas obtained by
    running numerous layout experiments".  We reproduce the approach: fit
    a power law [area = a * devices^b] on (device count, real area)
    training pairs by least squares in log space, then predict. *)

type model = private { coefficient : float; exponent : float }

val fit : (int * float) list -> (model, string) result
(** Requires at least two training pairs with positive device counts and
    areas, and at least two distinct device counts. *)

val estimate : model -> devices:int -> Mae_geom.Lambda.area
(** Raises [Invalid_argument] when [devices < 1]. *)

val mean_relative_error : model -> (int * float) list -> float
(** Mean |prediction - actual| / actual over a validation set; raises
    [Invalid_argument] on an empty list. *)
