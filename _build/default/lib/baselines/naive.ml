let estimate ?(utilization = 0.7) circuit process =
  if utilization <= 0. || utilization > 1. then
    invalid_arg "Naive.estimate: utilization outside (0, 1]";
  let stats = Mae_netlist.Stats.compute circuit process in
  if stats.device_count = 0 then invalid_arg "Naive.estimate: empty circuit";
  stats.total_device_area /. utilization

let estimate_square ?utilization circuit process =
  let area = estimate ?utilization circuit process in
  let edge = Float.sqrt area in
  (edge, edge)
