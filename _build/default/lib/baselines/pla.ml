type spec = {
  inputs : int;
  outputs : int;
  product_terms : int;
}

let validate s =
  if s.inputs < 1 then Error "inputs must be >= 1"
  else if s.outputs < 1 then Error "outputs must be >= 1"
  else if s.product_terms < 1 then Error "product_terms must be >= 1"
  else Ok s

let check s =
  match validate s with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Pla: " ^ msg)

let margin_pitches = 2.

let dims s (process : Mae_tech.Process.t) =
  check s;
  let pitch = process.track_pitch in
  let columns = Float.of_int ((2 * s.inputs) + s.outputs) in
  let rows = Float.of_int s.product_terms in
  let width = (columns +. (2. *. margin_pitches)) *. pitch in
  let height = (rows +. (2. *. margin_pitches)) *. pitch in
  (width, height)

let area s process =
  let w, h = dims s process in
  w *. h

let device_count s =
  check s;
  s.product_terms * ((2 * s.inputs) + s.outputs)
