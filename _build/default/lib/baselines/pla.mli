(** Gerveshi's PLA area model (reference [1] of the paper).

    For programmable logic arrays the module area is {e linear} in the
    number of basic logic functions (product terms) and devices: the AND
    plane is a grid of input columns by product-term rows, the OR plane a
    grid of product-term rows by output columns.  This geometric model
    realizes that linear relationship and serves as the contrast case to
    the paper's probabilistic estimator (PLAs are regular; random logic is
    not). *)

type spec = {
  inputs : int;
  outputs : int;
  product_terms : int;
}

val validate : spec -> (spec, string) result

val area : spec -> Mae_tech.Process.t -> Mae_geom.Lambda.area
(** AND plane: (2 * inputs) columns (true and complement lines); OR plane:
    [outputs] columns; both [product_terms] rows tall; one track pitch per
    line plus a two-pitch margin on each side.  Raises [Invalid_argument]
    on an invalid spec. *)

val dims : spec -> Mae_tech.Process.t -> Mae_geom.Lambda.t * Mae_geom.Lambda.t
(** (width, height) of the same model. *)

val device_count : spec -> int
(** Worst-case programmed-device count: product_terms * (2*inputs +
    outputs), the "number of devices" axis of the linear relationship. *)
