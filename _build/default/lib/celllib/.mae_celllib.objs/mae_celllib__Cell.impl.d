lib/celllib/cell.ml: Format Hashtbl List Printf String
