lib/celllib/cell.mli: Format
