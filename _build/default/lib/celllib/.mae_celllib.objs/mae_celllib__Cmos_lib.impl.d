lib/celllib/cmos_lib.ml: Cell Library List Nmos_lib Printf String
