lib/celllib/cmos_lib.mli: Cell Library
