lib/celllib/expand.ml: Array Cell Format Library List Mae_netlist Printf
