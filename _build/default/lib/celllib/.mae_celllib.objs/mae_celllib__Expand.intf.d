lib/celllib/expand.mli: Format Library Mae_netlist
