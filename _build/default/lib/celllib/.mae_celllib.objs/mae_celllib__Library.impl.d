lib/celllib/library.ml: Cell Hashtbl List Mae_tech Option String
