lib/celllib/library.mli: Cell Mae_tech
