lib/celllib/nmos_lib.ml: Cell Library List Printf
