lib/celllib/nmos_lib.mli: Cell Library
