type pin_role = Input | Output

type terminal =
  | Pin of int
  | Internal of string
  | Vdd
  | Gnd

type transistor = {
  name : string;
  kind : string;
  drain : terminal;
  gate : terminal;
  source : terminal;
}

type t = {
  name : string;
  pins : (string * pin_role) list;
  transistors : transistor list;
}

let check_terminal cell_name pin_count = function
  | Pin i ->
      if i < 0 || i >= pin_count then
        invalid_arg
          (Printf.sprintf "Cell.make: %s references pin %d of %d" cell_name i
             pin_count)
  | Internal name ->
      if String.length name = 0 then
        invalid_arg (Printf.sprintf "Cell.make: %s has empty internal net" cell_name)
  | Vdd | Gnd -> ()

let make ~name ~pins ~transistors =
  if String.length name = 0 then invalid_arg "Cell.make: empty name";
  let pin_count = List.length pins in
  let seen = Hashtbl.create 8 in
  List.iter
    (fun (tx : transistor) ->
      if Hashtbl.mem seen tx.name then
        invalid_arg
          (Printf.sprintf "Cell.make: %s has duplicate transistor %s" name tx.name);
      Hashtbl.add seen tx.name ();
      check_terminal name pin_count tx.drain;
      check_terminal name pin_count tx.gate;
      check_terminal name pin_count tx.source)
    transistors;
  { name; pins; transistors }

let pin_count t = List.length t.pins

let input_count t =
  List.length (List.filter (fun (_, role) -> role = Input) t.pins)

let transistor_count t = List.length t.transistors

let pp ppf t =
  Format.fprintf ppf "%s(%s) [%d tx]" t.name
    (String.concat ", " (List.map fst t.pins))
    (transistor_count t)
