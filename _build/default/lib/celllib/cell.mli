(** A standard-cell definition.

    A cell couples a device kind (whose footprint lives in the process
    database) with its logical pin list and a transistor-level template.
    The template is what lets the same schematic be estimated under both
    methodologies: the Standard-Cell estimator works on gate instances,
    while the Full-Custom estimator works on the expanded transistor
    network (section 4.2 "individual transistor layouts are used as
    Standard-Cells"). *)

type pin_role = Input | Output

type terminal =
  | Pin of int  (** index into the cell's pin list *)
  | Internal of string  (** a net private to the cell instance *)
  | Vdd
  | Gnd

type transistor = {
  name : string;  (** suffix for the expanded instance name *)
  kind : string;  (** transistor device kind in the process *)
  drain : terminal;
  gate : terminal;
  source : terminal;
}

type t = {
  name : string;  (** also the device-kind name of the gate *)
  pins : (string * pin_role) list;
      (** pin order matches HDL instantiation: inputs first, outputs last *)
  transistors : transistor list;
}

val make : name:string -> pins:(string * pin_role) list -> transistors:transistor list -> t
(** Validates pin indices in templates and uniqueness of transistor names;
    raises [Invalid_argument] otherwise. *)

val pin_count : t -> int

val input_count : t -> int

val transistor_count : t -> int

val pp : Format.formatter -> t -> unit
