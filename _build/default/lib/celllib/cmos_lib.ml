let tx name kind ~d ~g ~s : Cell.transistor =
  { name; kind; drain = d; gate = g; source = s }

(* A complementary network: series pull-down of [nenh] from out to GND
   implies parallel pull-up of [pmos] from VDD to out, and vice versa. *)
let series ~prefix kind top bottom gates =
  let n = List.length gates in
  let node i =
    if i = 0 then top else Cell.Internal (Printf.sprintf "%s_m%d" prefix i)
  in
  List.mapi
    (fun i gate ->
      let below = if i = n - 1 then bottom else node (i + 1) in
      tx (Printf.sprintf "%s%d" prefix i) kind ~d:(node i) ~g:gate ~s:below)
    gates

let parallel ~prefix kind top bottom gates =
  List.mapi
    (fun i gate -> tx (Printf.sprintf "%s%d" prefix i) kind ~d:top ~g:gate ~s:bottom)
    gates

let inverter_pair ~prefix ~input ~output =
  [
    tx (prefix ^ "_p") "pmos" ~d:output ~g:input ~s:Cell.Vdd;
    tx (prefix ^ "_n") "nenh" ~d:output ~g:input ~s:Cell.Gnd;
  ]

let input name = (name, Cell.Input)

let output name = (name, Cell.Output)

let nand_cell ~name ~inputs =
  let pins = List.map input inputs @ [ output "y" ] in
  let out = Cell.Pin (List.length inputs) in
  let gates = List.mapi (fun i _ -> Cell.Pin i) inputs in
  Cell.make ~name ~pins
    ~transistors:
      (parallel ~prefix:"pu" "pmos" out Cell.Vdd gates
      @ series ~prefix:"pd" "nenh" out Cell.Gnd gates)

let nor_cell ~name ~inputs =
  let pins = List.map input inputs @ [ output "y" ] in
  let out = Cell.Pin (List.length inputs) in
  let gates = List.mapi (fun i _ -> Cell.Pin i) inputs in
  Cell.make ~name ~pins
    ~transistors:
      (series ~prefix:"pu" "pmos" out Cell.Vdd gates
      @ parallel ~prefix:"pd" "nenh" out Cell.Gnd gates)

let inv =
  Cell.make ~name:"inv"
    ~pins:[ input "a"; output "y" ]
    ~transistors:(inverter_pair ~prefix:"i" ~input:(Cell.Pin 0) ~output:(Cell.Pin 1))

let buf =
  let mid = Cell.Internal "n" in
  Cell.make ~name:"buf"
    ~pins:[ input "a"; output "y" ]
    ~transistors:
      (inverter_pair ~prefix:"i1" ~input:(Cell.Pin 0) ~output:mid
      @ inverter_pair ~prefix:"i2" ~input:mid ~output:(Cell.Pin 1))

let nand2 = nand_cell ~name:"nand2" ~inputs:[ "a"; "b" ]

let nand3 = nand_cell ~name:"nand3" ~inputs:[ "a"; "b"; "c" ]

let nand4 = nand_cell ~name:"nand4" ~inputs:[ "a"; "b"; "c"; "d" ]

let nor2 = nor_cell ~name:"nor2" ~inputs:[ "a"; "b" ]

let nor3 = nor_cell ~name:"nor3" ~inputs:[ "a"; "b"; "c" ]

(* y = NOT(a.b + c.d): series pmos pairs stacked over parallel branches. *)
let aoi22 =
  let out = Cell.Pin 4 in
  let mid = Cell.Internal "pu_mid" in
  Cell.make ~name:"aoi22"
    ~pins:[ input "a"; input "b"; input "c"; input "d"; output "y" ]
    ~transistors:
      (parallel ~prefix:"pua" "pmos" mid Cell.Vdd [ Cell.Pin 0; Cell.Pin 1 ]
      @ parallel ~prefix:"puc" "pmos" out mid [ Cell.Pin 2; Cell.Pin 3 ]
      @ series ~prefix:"pdab" "nenh" out Cell.Gnd [ Cell.Pin 0; Cell.Pin 1 ]
      @ series ~prefix:"pdcd" "nenh" out Cell.Gnd [ Cell.Pin 2; Cell.Pin 3 ])

let xor2 =
  let an = Cell.Internal "an" and bn = Cell.Internal "bn" in
  let out = Cell.Pin 2 in
  let mid = Cell.Internal "pu_mid" in
  Cell.make ~name:"xor2"
    ~pins:[ input "a"; input "b"; output "y" ]
    ~transistors:
      (inverter_pair ~prefix:"ia" ~input:(Cell.Pin 0) ~output:an
      @ inverter_pair ~prefix:"ib" ~input:(Cell.Pin 1) ~output:bn
      @ parallel ~prefix:"pua" "pmos" mid Cell.Vdd [ Cell.Pin 0; an ]
      @ parallel ~prefix:"pub" "pmos" out mid [ Cell.Pin 1; bn ]
      @ series ~prefix:"pdt" "nenh" out Cell.Gnd [ Cell.Pin 0; Cell.Pin 1 ]
      @ series ~prefix:"pdf" "nenh" out Cell.Gnd [ an; bn ])

(* Transmission-gate multiplexer with a restoring output inverter pair. *)
let tgate ~prefix ~a ~b ~ctl ~ctl_n =
  [
    tx (prefix ^ "_n") "nenh" ~d:a ~g:ctl ~s:b;
    tx (prefix ^ "_p") "pmos" ~d:a ~g:ctl_n ~s:b;
  ]

let mux2 =
  let sn = Cell.Internal "sn" in
  let m = Cell.Internal "m" and mn = Cell.Internal "mn" in
  Cell.make ~name:"mux2"
    ~pins:[ input "a"; input "b"; input "s"; output "y" ]
    ~transistors:
      (inverter_pair ~prefix:"is" ~input:(Cell.Pin 2) ~output:sn
      @ tgate ~prefix:"ta" ~a:(Cell.Pin 0) ~b:m ~ctl:(Cell.Pin 2) ~ctl_n:sn
      @ tgate ~prefix:"tb" ~a:(Cell.Pin 1) ~b:m ~ctl:sn ~ctl_n:(Cell.Pin 2)
      @ inverter_pair ~prefix:"im" ~input:m ~output:mn
      @ inverter_pair ~prefix:"io" ~input:mn ~output:(Cell.Pin 3))

let latch_transistors ~prefix ~d ~g ~gn ~q =
  let m = Cell.Internal (prefix ^ "_m") in
  let qn = Cell.Internal (prefix ^ "_qn") in
  tgate ~prefix:(prefix ^ "_in") ~a:d ~b:m ~ctl:g ~ctl_n:gn
  @ inverter_pair ~prefix:(prefix ^ "_i1") ~input:m ~output:qn
  @ inverter_pair ~prefix:(prefix ^ "_i2") ~input:qn ~output:q
  @ tgate ~prefix:(prefix ^ "_fb") ~a:q ~b:m ~ctl:gn ~ctl_n:g

let latch =
  let gn = Cell.Internal "gn" in
  Cell.make ~name:"latch"
    ~pins:[ input "d"; input "g"; output "q" ]
    ~transistors:
      (inverter_pair ~prefix:"ig" ~input:(Cell.Pin 1) ~output:gn
      @ latch_transistors ~prefix:"l" ~d:(Cell.Pin 0) ~g:(Cell.Pin 1) ~gn
          ~q:(Cell.Pin 2))

let dff =
  let ckn = Cell.Internal "ckn" in
  let mid = Cell.Internal "mid" in
  Cell.make ~name:"dff"
    ~pins:[ input "d"; input "clk"; output "q" ]
    ~transistors:
      (inverter_pair ~prefix:"ick" ~input:(Cell.Pin 1) ~output:ckn
      @ latch_transistors ~prefix:"ms" ~d:(Cell.Pin 0) ~g:ckn ~gn:(Cell.Pin 1)
          ~q:mid
      @ latch_transistors ~prefix:"sl" ~d:mid ~g:(Cell.Pin 1) ~gn:ckn
          ~q:(Cell.Pin 2))

let library =
  Library.make ~name:"cmos-std"
    ~cells:
      [ inv; buf; nand2; nand3; nand4; nor2; nor3; aoi22; xor2; mux2; latch; dff ]

let find_exn name = Library.find_exn library name

let for_technology tech_name =
  let has_prefix prefix =
    String.length tech_name >= String.length prefix
    && String.equal (String.sub tech_name 0 (String.length prefix)) prefix
  in
  if has_prefix "nmos" then Some Nmos_lib.library
  else if has_prefix "cmos" then Some library
  else None
