(** CMOS standard-cell library.

    Same cell set and pin order as {!Nmos_lib} but with fully complementary
    templates (a [pmos] pull-up network mirrors every [nenh] pull-down
    network), so swapping technologies changes only cell footprints and
    transistor counts, never schematic structure. *)

val library : Library.t
(** Cells: [inv], [buf], [nand2], [nand3], [nand4], [nor2], [nor3],
    [aoi22], [xor2], [mux2], [latch], [dff]. *)

val find_exn : string -> Cell.t
(** Shorthand for [Library.find_exn library]; raises [Not_found]. *)

val for_technology : string -> Library.t option
(** Picks {!Nmos_lib.library} for nMOS process names and {!library} for
    CMOS ones, by name prefix ("nmos" / "cmos"). *)
