(** Expansion of a gate-level schematic into a transistor-level one.

    Section 4.2 estimates full-custom area at the transistor level
    ("individual transistor layouts are used as Standard-Cells"), so a
    gate-level schematic must be flattened before full-custom estimation.
    Instance [x1] of a cell with internal net [m] produces devices
    [x1.pd0], ... and nets [x1.m]. *)

type error =
  | Unknown_cell of { device : string; kind : string }
      (** the library has no template for this device kind *)

val pp_error : Format.formatter -> error -> unit

val circuit :
  ?include_supplies:bool ->
  Library.t ->
  Mae_netlist.Circuit.t ->
  (Mae_netlist.Circuit.t, error) result
(** Flatten every device through its library template.  Devices whose kind
    is already a transistor in the library's processes should not appear in
    the input; any kind missing from the library is an error.

    When [include_supplies] is false (the default) the VDD and GND rails
    are omitted from the result: supply rails are routed as planned power
    buses, not as signal wiring, and would otherwise dominate the net
    degree histogram that drives the estimator.  Pass [true] to keep them
    as nets named [vdd!] and [gnd!]. *)

val transistor_count : Library.t -> Mae_netlist.Circuit.t -> (int, error) result
(** Total transistors the expansion would produce, without building it. *)
