type t = { name : string; table : (string, Cell.t) Hashtbl.t }

let make ~name ~cells =
  let table = Hashtbl.create 32 in
  List.iter
    (fun (c : Cell.t) ->
      if Hashtbl.mem table c.name then
        invalid_arg ("Library.make: duplicate cell " ^ c.name);
      Hashtbl.add table c.name c)
    cells;
  { name; table }

let name t = t.name

let cells t = Hashtbl.fold (fun _ c acc -> c :: acc) t.table []

let find t cell_name = Hashtbl.find_opt t.table cell_name

let find_exn t cell_name =
  match find t cell_name with Some c -> c | None -> raise Not_found

let cell_names t =
  Hashtbl.fold (fun n _ acc -> n :: acc) t.table [] |> List.sort String.compare

let check_against_process t process =
  let missing = ref [] in
  let check_kind owner kind =
    if Option.is_none (Mae_tech.Process.find_device process kind) then
      missing := (owner ^ ":" ^ kind) :: !missing
  in
  Hashtbl.iter
    (fun _ (c : Cell.t) ->
      check_kind c.name c.name;
      List.iter (fun (tx : Cell.transistor) -> check_kind c.name tx.kind) c.transistors)
    t.table;
  List.sort_uniq String.compare !missing
