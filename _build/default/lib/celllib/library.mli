(** A named collection of standard cells. *)

type t

val make : name:string -> cells:Cell.t list -> t
(** Raises [Invalid_argument] on duplicate cell names. *)

val name : t -> string

val cells : t -> Cell.t list

val find : t -> string -> Cell.t option

val find_exn : t -> string -> Cell.t
(** Raises [Not_found]. *)

val cell_names : t -> string list
(** Sorted. *)

val check_against_process : t -> Mae_tech.Process.t -> string list
(** Names of cells (or their template transistors) whose device kinds are
    missing from the process; empty when the library and process are
    consistent. *)
