let tx name kind ~d ~g ~s : Cell.transistor =
  { name; kind; drain = d; gate = g; source = s }

(* Depletion pull-up: drain on VDD, gate tied to its own source (the
   output node), giving the classic nMOS load. *)
let load ?(name = "pu") out = tx name "ndep" ~d:Cell.Vdd ~g:out ~s:out

(* Pull-down chain: enhancement transistors in series from [out] to GND,
   one per gate input terminal. *)
let series_chain ?(prefix = "pd") out gates =
  let n = List.length gates in
  let node i =
    if i = 0 then out
    else Cell.Internal (Printf.sprintf "%s_m%d" prefix i)
  in
  List.mapi
    (fun i gate ->
      let below = if i = n - 1 then Cell.Gnd else node (i + 1) in
      tx (Printf.sprintf "%s%d" prefix i) "nenh" ~d:(node i) ~g:gate ~s:below)
    gates

(* Parallel pull-down: one enhancement transistor per input, all from
   [out] to GND. *)
let parallel_pulldown ?(prefix = "pd") out gates =
  List.mapi
    (fun i gate ->
      tx (Printf.sprintf "%s%d" prefix i) "nenh" ~d:out ~g:gate ~s:Cell.Gnd)
    gates

let inverter_pair ~prefix ~input ~output =
  [
    load ~name:(prefix ^ "_pu") output;
    tx (prefix ^ "_pd") "nenh" ~d:output ~g:input ~s:Cell.Gnd;
  ]

let input name = (name, Cell.Input)

let output name = (name, Cell.Output)

let nand_cell ~name ~inputs =
  let pins = List.map input inputs @ [ output "y" ] in
  let out = Cell.Pin (List.length inputs) in
  let gates = List.mapi (fun i _ -> Cell.Pin i) inputs in
  Cell.make ~name ~pins ~transistors:(load out :: series_chain out gates)

let nor_cell ~name ~inputs =
  let pins = List.map input inputs @ [ output "y" ] in
  let out = Cell.Pin (List.length inputs) in
  let gates = List.mapi (fun i _ -> Cell.Pin i) inputs in
  Cell.make ~name ~pins ~transistors:(load out :: parallel_pulldown out gates)

let inv =
  Cell.make ~name:"inv"
    ~pins:[ input "a"; output "y" ]
    ~transistors:(inverter_pair ~prefix:"i" ~input:(Cell.Pin 0) ~output:(Cell.Pin 1))

let buf =
  let mid = Cell.Internal "n" in
  Cell.make ~name:"buf"
    ~pins:[ input "a"; output "y" ]
    ~transistors:
      (inverter_pair ~prefix:"i1" ~input:(Cell.Pin 0) ~output:mid
      @ inverter_pair ~prefix:"i2" ~input:mid ~output:(Cell.Pin 1))

let nand2 = nand_cell ~name:"nand2" ~inputs:[ "a"; "b" ]

let nand3 = nand_cell ~name:"nand3" ~inputs:[ "a"; "b"; "c" ]

let nand4 = nand_cell ~name:"nand4" ~inputs:[ "a"; "b"; "c"; "d" ]

let nor2 = nor_cell ~name:"nor2" ~inputs:[ "a"; "b" ]

let nor3 = nor_cell ~name:"nor3" ~inputs:[ "a"; "b"; "c" ]

(* AND-OR-INVERT: y = NOT(a.b + c.d); two series pairs in parallel. *)
let aoi22 =
  let out = Cell.Pin 4 in
  Cell.make ~name:"aoi22"
    ~pins:[ input "a"; input "b"; input "c"; input "d"; output "y" ]
    ~transistors:
      (load out
      :: (series_chain ~prefix:"ab" out [ Cell.Pin 0; Cell.Pin 1 ]
         @ series_chain ~prefix:"cd" out [ Cell.Pin 2; Cell.Pin 3 ]))

(* y = a xor b = NOT(a.b + a'.b'), built from two input inverters feeding
   an AOI structure. *)
let xor2 =
  let an = Cell.Internal "an" and bn = Cell.Internal "bn" in
  let out = Cell.Pin 2 in
  Cell.make ~name:"xor2"
    ~pins:[ input "a"; input "b"; output "y" ]
    ~transistors:
      (inverter_pair ~prefix:"ia" ~input:(Cell.Pin 0) ~output:an
      @ inverter_pair ~prefix:"ib" ~input:(Cell.Pin 1) ~output:bn
      @ (load out
        :: (series_chain ~prefix:"tt" out [ Cell.Pin 0; Cell.Pin 1 ]
           @ series_chain ~prefix:"ff" out [ an; bn ])))

(* Pass-transistor multiplexer followed by a restoring double inverter. *)
let mux2 =
  let sn = Cell.Internal "sn" in
  let m = Cell.Internal "m" and mn = Cell.Internal "mn" in
  Cell.make ~name:"mux2"
    ~pins:[ input "a"; input "b"; input "s"; output "y" ]
    ~transistors:
      (inverter_pair ~prefix:"is" ~input:(Cell.Pin 2) ~output:sn
      @ [
          tx "pa" "nenh" ~d:(Cell.Pin 0) ~g:(Cell.Pin 2) ~s:m;
          tx "pb" "nenh" ~d:(Cell.Pin 1) ~g:sn ~s:m;
        ]
      @ inverter_pair ~prefix:"im" ~input:m ~output:mn
      @ inverter_pair ~prefix:"io" ~input:mn ~output:(Cell.Pin 3))

(* Transparent latch: pass gate into a two-inverter loop closed by a
   feedback pass transistor on the complementary clock phase. *)
let latch_transistors ~prefix ~d ~g ~q =
  let gn = Cell.Internal (prefix ^ "_gn") in
  let m = Cell.Internal (prefix ^ "_m") in
  let qn = Cell.Internal (prefix ^ "_qn") in
  inverter_pair ~prefix:(prefix ^ "_ig") ~input:g ~output:gn
  @ [ tx (prefix ^ "_pd") "nenh" ~d ~g ~s:m ]
  @ inverter_pair ~prefix:(prefix ^ "_i1") ~input:m ~output:qn
  @ inverter_pair ~prefix:(prefix ^ "_i2") ~input:qn ~output:q
  @ [ tx (prefix ^ "_fb") "nenh" ~d:q ~g:gn ~s:m ]

let latch =
  Cell.make ~name:"latch"
    ~pins:[ input "d"; input "g"; output "q" ]
    ~transistors:
      (latch_transistors ~prefix:"l" ~d:(Cell.Pin 0) ~g:(Cell.Pin 1)
         ~q:(Cell.Pin 2))

(* Master-slave D flip-flop from two latches on opposite clock phases. *)
let dff =
  let ckn = Cell.Internal "ckn" in
  let mid = Cell.Internal "mid" in
  Cell.make ~name:"dff"
    ~pins:[ input "d"; input "clk"; output "q" ]
    ~transistors:
      (inverter_pair ~prefix:"ick" ~input:(Cell.Pin 1) ~output:ckn
      @ latch_transistors ~prefix:"ms" ~d:(Cell.Pin 0) ~g:ckn ~q:mid
      @ latch_transistors ~prefix:"sl" ~d:mid ~g:(Cell.Pin 1) ~q:(Cell.Pin 2))

let library =
  Library.make ~name:"nmos-std"
    ~cells:
      [ inv; buf; nand2; nand3; nand4; nor2; nor3; aoi22; xor2; mux2; latch; dff ]

let find_exn name = Library.find_exn library name
