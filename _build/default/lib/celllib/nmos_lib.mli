(** nMOS standard-cell library.

    Each cell carries a transistor template in classic nMOS style: a
    depletion-mode pull-up load ([ndep], gate tied to the output) and an
    enhancement-mode ([nenh]) pull-down network.  Cell footprints come from
    the [nmos25] process; this library supplies the logic and expansion
    templates for the same kind names. *)

val library : Library.t
(** Cells: [inv], [buf], [nand2], [nand3], [nand4], [nor2], [nor3],
    [aoi22], [xor2], [mux2], [latch], [dff]. *)

val find_exn : string -> Cell.t
(** Shorthand for [Library.find_exn library]; raises [Not_found]. *)
