lib/core/aspect_ratio.ml: Config Float Mae_geom Mae_tech
