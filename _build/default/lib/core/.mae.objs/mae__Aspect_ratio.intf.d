lib/core/aspect_ratio.mli: Config Mae_geom Mae_tech
