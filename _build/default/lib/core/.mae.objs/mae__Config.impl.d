lib/core/config.ml:
