lib/core/config.mli:
