lib/core/driver.ml: Array Estimate Format Fullcustom List Mae_celllib Mae_hdl Mae_netlist Mae_tech Option Row_select Stdcell
