lib/core/driver.mli: Config Estimate Format Mae_hdl Mae_netlist Mae_tech
