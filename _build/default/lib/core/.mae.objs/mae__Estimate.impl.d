lib/core/estimate.ml: Float Format Mae_geom
