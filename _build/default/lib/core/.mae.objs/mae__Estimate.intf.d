lib/core/estimate.mli: Format Mae_geom
