lib/core/explain.ml: Config Estimate Feedthrough Float Format Fullcustom List Mae_netlist Mae_tech Row_model Stdcell
