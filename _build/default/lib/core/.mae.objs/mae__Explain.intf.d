lib/core/explain.mli: Config Format Mae_netlist Mae_tech
