lib/core/extensions.ml: Aspect_ratio Config Estimate Float List Mae_geom Mae_prob Row_select Stdcell
