lib/core/extensions.mli: Config Estimate Mae_geom Mae_netlist Mae_tech
