lib/core/feedthrough.ml: Float Mae_prob
