lib/core/feedthrough.mli: Mae_prob
