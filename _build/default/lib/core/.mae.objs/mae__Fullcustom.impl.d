lib/core/fullcustom.ml: Array Aspect_ratio Config Estimate Float List Mae_geom Mae_netlist Mae_tech
