lib/core/fullcustom.mli: Config Estimate Mae_geom Mae_netlist Mae_tech
