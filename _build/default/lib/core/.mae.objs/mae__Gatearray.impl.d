lib/core/gatearray.ml: Array Config Float Format Mae_celllib Mae_geom Mae_netlist Mae_tech Option Row_model Stdlib
