lib/core/gatearray.mli: Format Mae_geom Mae_netlist Mae_tech
