lib/core/row_model.ml: Config List Mae_prob Stdlib
