lib/core/row_model.mli: Config Mae_prob
