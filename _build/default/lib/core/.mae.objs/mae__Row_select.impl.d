lib/core/row_select.ml: Aspect_ratio Float List Mae_netlist Mae_tech Stdlib
