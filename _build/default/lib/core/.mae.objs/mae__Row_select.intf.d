lib/core/row_select.mli: Mae_geom Mae_netlist Mae_tech
