lib/core/stdcell.ml: Aspect_ratio Config Estimate Feedthrough Float List Mae_geom Mae_netlist Mae_tech Row_model Row_select Stdlib
