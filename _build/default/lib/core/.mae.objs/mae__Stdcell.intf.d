lib/core/stdcell.mli: Config Estimate Mae_netlist Mae_tech
