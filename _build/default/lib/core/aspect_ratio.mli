(** Section 5: aspect-ratio estimation.

    The control criterion: all module I/O ports must fit along one edge
    (ports occupy [port_pitch] each).  The full-custom algorithm starts
    from a 1:1 square and widens the module until the ports fit; the
    standard-cell ratio falls out of equation (14) directly (width over
    height of the estimated module). *)

val port_length : port_count:int -> process:Mae_tech.Process.t -> Mae_geom.Lambda.t
(** Total edge length needed by the ports. *)

val clamp : Config.t -> Mae_geom.Aspect.t -> Mae_geom.Aspect.t
(** Apply the configured clamp band (identity when the configuration has
    none).  The band constrains the long-side : short-side ratio, so a
    0.4:1 module clamps to 0.5:1 under the (1, 2) band. *)

val fullcustom :
  area:Mae_geom.Lambda.area ->
  port_count:int ->
  process:Mae_tech.Process.t ->
  Mae_geom.Lambda.t * Mae_geom.Lambda.t * Mae_geom.Aspect.t
(** The section 5 full-custom algorithm: try 1:1 (edge = sqrt area); if
    the edge is shorter than the port length, set width = port length and
    height = area / width.  Returns (width, height, raw aspect).  Raises
    [Invalid_argument] on a non-positive area or negative port count. *)
