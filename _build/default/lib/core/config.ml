type device_area_mode = Exact_areas | Average_areas

type row_span_model = Paper_model | Exact_occupancy

type t = {
  row_span_model : row_span_model;
  two_component_free : bool;
  track_sharing_factor : float option;
  aspect_clamp : (float * float) option;
}

let default =
  {
    row_span_model = Paper_model;
    two_component_free = true;
    track_sharing_factor = None;
    aspect_clamp = Some (1.0, 2.0);
  }

let paper_raw = { default with aspect_clamp = None }

let validate t =
  match (t.track_sharing_factor, t.aspect_clamp) with
  | Some f, _ when f <= 0. || f > 1. ->
      Error "track_sharing_factor must be in (0, 1]"
  | _, Some (lo, hi) when lo <= 0. || hi < lo ->
      Error "aspect_clamp must satisfy 0 < lo <= hi"
  | _, _ -> Ok t
