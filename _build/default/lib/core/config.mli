(** Estimator configuration.

    The defaults reproduce the paper exactly; the other knobs implement the
    ablations and extensions discussed in sections 6-7 (track sharing, the
    two-component-net rule, the aspect-ratio clamp). *)

type device_area_mode =
  | Exact_areas  (** sum the per-device footprints from the process *)
  | Average_areas  (** use N * W_avg * h_avg, the paper's second variant *)

type row_span_model =
  | Paper_model
      (** equation (2) with the [k = min(n, D)] exponent heuristic *)
  | Exact_occupancy
      (** exact occupancy distribution C(n,i) * surj(D,i) / n^D; identical
          to [Paper_model] whenever [n >= D] *)

type t = {
  row_span_model : row_span_model;
  two_component_free : bool;
      (** full-custom: nets with D <= 2 contribute zero wire area (the
          Table 1 footnote semantics); [false] charges them one channel *)
  track_sharing_factor : float option;
      (** [Some f] scales the expected track count by [f] in (0, 1] —
          the section 7 future-work correction; [None] reproduces the
          paper's one-net-per-track upper bound *)
  aspect_clamp : (float * float) option;
      (** clamp band for the reported aspect ratio, section 6's
          "1:1 to 1:2"; [None] reports the raw equation (14) value *)
}

val default : t
(** Paper-faithful: [Paper_model], two-component nets free, no track
    sharing, clamp band (1.0, 2.0). *)

val paper_raw : t
(** Like {!default} but with no aspect clamp: the raw equation values. *)

val validate : t -> (t, string) result
(** Rejects a non-positive or >1 sharing factor and an inverted or
    non-positive clamp band. *)
