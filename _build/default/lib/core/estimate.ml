type stdcell = {
  rows : int;
  tracks : int;
  feed_throughs : int;
  height : Mae_geom.Lambda.t;
  width : Mae_geom.Lambda.t;
  area : Mae_geom.Lambda.area;
  aspect : Mae_geom.Aspect.t;
  aspect_raw : Mae_geom.Aspect.t;
}

type fullcustom = {
  device_area : Mae_geom.Lambda.area;
  wire_area : Mae_geom.Lambda.area;
  area : Mae_geom.Lambda.area;
  width : Mae_geom.Lambda.t;
  height : Mae_geom.Lambda.t;
  aspect : Mae_geom.Aspect.t;
  aspect_raw : Mae_geom.Aspect.t;
}

let stdcell_area_check (t : stdcell) =
  let expected = t.height *. t.width in
  Float.abs (t.area -. expected) <= 1e-6 *. Float.max 1. expected

let pp_stdcell ppf t =
  Format.fprintf ppf
    "std-cell: %d rows, %d tracks, %d feed-throughs, %.0f x %.0f L = %.0f \
     L^2, aspect %a"
    t.rows t.tracks t.feed_throughs t.width t.height t.area Mae_geom.Aspect.pp
    t.aspect

let pp_fullcustom ppf t =
  Format.fprintf ppf
    "full-custom: devices %.0f + wire %.0f = %.0f L^2 (%.0f x %.0f L), \
     aspect %a"
    t.device_area t.wire_area t.area t.width t.height Mae_geom.Aspect.pp
    t.aspect
