(** Result records shared by the two estimators. *)

type stdcell = {
  rows : int;  (** n *)
  tracks : int;  (** expected total routing tracks across all channels *)
  feed_throughs : int;  (** E(M), feed-throughs in the widest (central) row *)
  height : Mae_geom.Lambda.t;  (** n * row_height + tracks * track_pitch *)
  width : Mae_geom.Lambda.t;  (** N * W_avg / n + E(M) * feed_width *)
  area : Mae_geom.Lambda.area;
  aspect : Mae_geom.Aspect.t;  (** equation (14), after any configured clamp *)
  aspect_raw : Mae_geom.Aspect.t;  (** equation (14) before clamping *)
}

type fullcustom = {
  device_area : Mae_geom.Lambda.area;
  wire_area : Mae_geom.Lambda.area;  (** sum of per-net interconnect areas *)
  area : Mae_geom.Lambda.area;  (** equation (13) *)
  width : Mae_geom.Lambda.t;
  height : Mae_geom.Lambda.t;
  aspect : Mae_geom.Aspect.t;  (** after any configured clamp *)
  aspect_raw : Mae_geom.Aspect.t;
}

val stdcell_area_check : stdcell -> bool
(** area = height * width up to round-off; exposed for tests. *)

val pp_stdcell : Format.formatter -> stdcell -> unit

val pp_fullcustom : Format.formatter -> fullcustom -> unit
