type track_class = {
  degree : int;
  net_count : int;
  expected_span : int;
  tracks : int;
}

type stdcell_breakdown = {
  rows : int;
  classes : track_class list;
  total_tracks : int;
  feed_probability : float;
  expected_feed_throughs : int;
  cell_height : float;
  track_height : float;
  cell_width : float;
  feed_width : float;
}

let stdcell ?(config = Config.default) ~rows circuit process =
  let est = Stdcell.estimate ~config ~rows circuit process in
  let stats = Mae_netlist.Stats.compute circuit process in
  let classes =
    List.map
      (fun (degree, net_count) ->
        let expected_span =
          Row_model.expected_span ~model:config.Config.row_span_model ~rows
            ~degree
        in
        { degree; net_count; expected_span; tracks = net_count * expected_span })
      stats.degree_histogram
  in
  {
    rows;
    classes;
    total_tracks = est.Estimate.tracks;
    feed_probability = Feedthrough.prob_two_component ~rows;
    expected_feed_throughs = est.feed_throughs;
    cell_height = Float.of_int rows *. process.Mae_tech.Process.row_height;
    track_height =
      Float.of_int est.tracks *. process.Mae_tech.Process.track_pitch;
    cell_width =
      Float.of_int stats.device_count *. stats.average_width
      /. Float.of_int rows;
    feed_width =
      Float.of_int est.feed_throughs
      *. process.Mae_tech.Process.feed_through_width;
  }

let pp_stdcell ppf b =
  Format.fprintf ppf "@[<v>standard-cell breakdown at %d rows:@ " b.rows;
  List.iter
    (fun c ->
      Format.fprintf ppf
        "  %d nets of %d components: E(span) = %d -> %d tracks@ " c.net_count
        c.degree c.expected_span c.tracks)
    b.classes;
  Format.fprintf ppf "  total tracks: %d (%.0fL of channel height)@ "
    b.total_tracks b.track_height;
  Format.fprintf ppf
    "  P(feed-through) = %.3f per net -> E(M) = %d feed-throughs (%.0fL of \
     row length)@ "
    b.feed_probability b.expected_feed_throughs b.feed_width;
  Format.fprintf ppf "  height = %.0fL cells + %.0fL channels@ " b.cell_height
    b.track_height;
  Format.fprintf ppf "  width  = %.0fL cells + %.0fL feed-throughs@]"
    b.cell_width b.feed_width

type fullcustom_breakdown = {
  device_area : float;
  free_nets : int;
  charged_nets : (int * int * float) list;
  wire_area : float;
}

let fullcustom ?(config = Config.default) ~mode circuit process =
  let est = Fullcustom.estimate ~config ~mode circuit process in
  let nets = Fullcustom.net_areas ~config ~mode circuit process in
  let free, charged =
    List.partition (fun (n : Fullcustom.net_area) -> n.interconnect_area = 0.) nets
  in
  {
    device_area = est.Estimate.device_area;
    free_nets = List.length free;
    charged_nets =
      List.map
        (fun (n : Fullcustom.net_area) -> (n.net, n.degree, n.interconnect_area))
        charged
      |> List.sort (fun (_, _, a) (_, _, b) -> Float.compare b a);
    wire_area = est.wire_area;
  }

let pp_fullcustom ppf b =
  Format.fprintf ppf
    "@[<v>full-custom breakdown:@ \
     \  device area: %.0fL^2@ \
     \  %d nets free (<= 2 components)@ "
    b.device_area b.free_nets;
  List.iter
    (fun (net, degree, area) ->
      Format.fprintf ppf "  net #%d (%d components): %.0fL^2@ " net degree area)
    b.charged_nets;
  Format.fprintf ppf "  wire area: %.0fL^2@]" b.wire_area
