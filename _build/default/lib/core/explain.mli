(** Estimate breakdowns: where did the numbers come from?

    An estimator a designer must trust needs to show its work.  These
    reports decompose a standard-cell estimate into the per-degree-class
    track charges of equations (2)-(3) and the feed-through expectation of
    equations (9)-(11), and a full-custom estimate into its per-net
    interconnect areas. *)

type track_class = {
  degree : int;  (** D *)
  net_count : int;  (** y_D *)
  expected_span : int;  (** ceil E(i), tracks charged per net *)
  tracks : int;  (** y_D * expected_span *)
}

type stdcell_breakdown = {
  rows : int;
  classes : track_class list;  (** degree ascending *)
  total_tracks : int;
  feed_probability : float;  (** equation (9) *)
  expected_feed_throughs : int;  (** equation (11) *)
  cell_height : float;  (** n * row_height *)
  track_height : float;  (** total_tracks * track_pitch *)
  cell_width : float;  (** N * W_avg / n *)
  feed_width : float;  (** E(M) * feed_through_width *)
}

val stdcell :
  ?config:Config.t ->
  rows:int ->
  Mae_netlist.Circuit.t ->
  Mae_tech.Process.t ->
  stdcell_breakdown
(** Raises like {!Stdcell.estimate}. *)

val pp_stdcell : Format.formatter -> stdcell_breakdown -> unit

type fullcustom_breakdown = {
  device_area : float;
  free_nets : int;  (** nets with D <= 2: zero interconnect *)
  charged_nets : (int * int * float) list;
      (** (net index, degree, area) for nets that cost something, by
          descending area *)
  wire_area : float;
}

val fullcustom :
  ?config:Config.t ->
  mode:Config.device_area_mode ->
  Mae_netlist.Circuit.t ->
  Mae_tech.Process.t ->
  fullcustom_breakdown

val pp_fullcustom : Format.formatter -> fullcustom_breakdown -> unit
