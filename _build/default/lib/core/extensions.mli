(** Section 7 future-work features.

    The paper names three planned changes: accounting for routing-channel
    track sharing in the Standard-Cell estimate, emitting four or five
    aspect-ratio candidates so the floor planner can pick shapes, and
    measuring the reduction in floor-planning iterations.  The first two
    live here; the third is {!Mae_floorplan.Flow} in the floorplan
    library. *)

val with_track_sharing :
  factor:float ->
  rows:int ->
  Mae_netlist.Circuit.t ->
  Mae_tech.Process.t ->
  Estimate.stdcell
(** Standard-cell estimate with the expected track count scaled by
    [factor] in (0, 1] — the correction for nets sharing tracks.
    Raises [Invalid_argument] on a factor outside (0, 1]. *)

val calibrate_sharing_factor :
  (Estimate.stdcell * float) list -> float option
(** Fit the sharing factor from (estimate, real area) pairs produced by a
    layout flow: the mean of real/estimated area ratios, clipped into
    (0, 1].  [None] on an empty list or non-positive estimates. *)

val fullcustom_aspect_candidates :
  ?count:int ->
  area:Mae_geom.Lambda.area ->
  port_count:int ->
  Mae_tech.Process.t ->
  (Mae_geom.Lambda.t * Mae_geom.Lambda.t * Mae_geom.Aspect.t) list
(** [count] (default 5) candidate shapes of the same area with ratios
    spread across the 1:1 .. 1:2 band, keeping only shapes whose longer
    edge can host all ports (all candidates are kept when none can).
    Width is the longer side.  Raises [Invalid_argument] on a non-positive
    area or [count < 1]. *)

val stdcell_shape_candidates :
  ?config:Config.t ->
  ?count:int ->
  Mae_netlist.Circuit.t ->
  Mae_tech.Process.t ->
  Estimate.stdcell list
(** Standard-cell shape menu: one estimate per candidate row count from
    {!Row_select.candidates} (default [count] = 5). *)
