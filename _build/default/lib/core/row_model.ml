let prob_rows ~model ~rows ~degree =
  if rows < 1 then invalid_arg "Row_model.prob_rows: rows < 1";
  if degree < 1 then invalid_arg "Row_model.prob_rows: degree < 1";
  let support = Stdlib.min rows degree in
  let weight =
    match (model : Config.row_span_model) with
    | Paper_model ->
        (* weight(i) = C(n,i) * b_k(i); the common (1/n)^k factor cancels
           in the normalization performed by Dist.of_weights. *)
        let k = Stdlib.min rows degree in
        fun i -> Mae_prob.Comb.choose rows i *. Mae_prob.Comb.paper_b ~k i
    | Exact_occupancy ->
        fun i -> Mae_prob.Comb.choose rows i *. Mae_prob.Comb.surjections degree i
  in
  Mae_prob.Dist.of_weights (List.init support (fun j -> (j + 1, weight (j + 1))))

let expected_span ~model ~rows ~degree =
  Mae_prob.Dist.expectation_ceil (prob_rows ~model ~rows ~degree)

let tracks_for_histogram ~model ~rows ~degree_histogram =
  List.fold_left
    (fun acc (degree, count) ->
      if count < 0 then invalid_arg "Row_model.tracks_for_histogram: negative count";
      if count = 0 then acc
      else acc + (count * expected_span ~model ~rows ~degree))
    0 degree_histogram
