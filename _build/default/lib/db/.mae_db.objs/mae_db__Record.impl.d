lib/db/record.ml: Float Format List Mae Mae_geom Mae_netlist String
