lib/db/record.mli: Format Mae
