lib/db/store.ml: Buffer Hashtbl In_channel List Out_channel Printf Record String
