lib/db/store.mli: Record
