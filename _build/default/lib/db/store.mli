(** The estimate database handed to the floor planner (Figure 1's output).

    A store keeps one record per module name and round-trips through a
    line-oriented text format. *)

type t

val create : unit -> t

val add : t -> Record.t -> unit
(** Replaces any record with the same module name. *)

val find : t -> string -> Record.t option

val names : t -> string list
(** Sorted. *)

val records : t -> Record.t list
(** Sorted by module name. *)

val to_string : t -> string

val of_string : string -> (t, string) result
(** Parses what {!to_string} produces. *)

val save : t -> path:string -> (unit, string) result

val load : path:string -> (t, string) result
