lib/floorplan/chip.ml: Array Format Fp_anneal List Mae_db Mae_geom Shape Slicing
