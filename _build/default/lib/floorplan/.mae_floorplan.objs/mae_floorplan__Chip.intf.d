lib/floorplan/chip.mli: Format Mae_db Mae_geom Mae_layout Mae_prob
