lib/floorplan/flow.ml: Array Float Fp_anneal List Mae_geom Mae_prob Shape Slicing
