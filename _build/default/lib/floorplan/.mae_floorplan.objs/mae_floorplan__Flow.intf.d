lib/floorplan/flow.mli: Mae_layout Mae_prob Shape
