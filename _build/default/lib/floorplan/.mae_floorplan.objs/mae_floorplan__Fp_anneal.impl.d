lib/floorplan/fp_anneal.ml: Array Mae_layout Polish Slicing
