lib/floorplan/fp_anneal.mli: Mae_layout Mae_prob Polish Shape Slicing
