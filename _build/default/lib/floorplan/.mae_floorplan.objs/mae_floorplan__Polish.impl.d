lib/floorplan/polish.ml: Array Format List Mae_prob
