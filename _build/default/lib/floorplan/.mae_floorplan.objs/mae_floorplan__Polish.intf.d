lib/floorplan/polish.mli: Format Mae_prob
