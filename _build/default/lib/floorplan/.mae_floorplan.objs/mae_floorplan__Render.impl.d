lib/floorplan/render.ml: Chip List Mae_geom Mae_report
