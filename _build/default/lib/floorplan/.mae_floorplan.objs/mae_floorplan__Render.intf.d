lib/floorplan/render.mli: Chip
