lib/floorplan/shape.ml: Float Format List
