lib/floorplan/shape.mli: Format
