lib/floorplan/slicing.ml: Array Float List Mae_geom Polish Shape
