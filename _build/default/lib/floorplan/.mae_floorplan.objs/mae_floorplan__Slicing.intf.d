lib/floorplan/slicing.mli: Mae_geom Polish Shape
