type plan = {
  chip_width : float;
  chip_height : float;
  chip_area : float;
  utilization : float;
  placements : (string * Mae_geom.Rect.t) list;
}

let plan ?schedule ?(routing_allowance = 0.10) ~rng store =
  if routing_allowance < 0. || routing_allowance > 1. then
    Error "routing_allowance must be in [0, 1]"
  else begin
    let records = Mae_db.Store.records store in
    match records with
    | [] -> Error "the estimate database is empty"
    | _ :: _ -> begin
        let scale = 1. +. routing_allowance in
        let shape_of (r : Mae_db.Record.t) =
          match r.shapes with
          | [] -> Error ("record " ^ r.module_name ^ " has no shapes")
          | shapes ->
              let inflated =
                List.map (fun (w, h) -> (w *. scale, h *. scale)) shapes
              in
              Ok (Shape.with_rotations (Shape.of_list inflated))
        in
        let rec collect acc = function
          | [] -> Ok (List.rev acc)
          | r :: rest -> begin
              match shape_of r with
              | Ok s -> collect (s :: acc) rest
              | Error e -> Error e
            end
        in
        match collect [] records with
        | Error e -> Error e
        | Ok shapes ->
            let result = Fp_anneal.run ?schedule ~rng (Array.of_list shapes) in
            let placement = result.Fp_anneal.placement in
            let chip = placement.Slicing.chip in
            (* utilization: the modules' own area (the chosen shapes,
               deflated back by the allowance) over the chip box *)
            let module_area =
              Array.fold_left
                (fun acc rect -> acc +. (Mae_geom.Rect.area rect /. (scale *. scale)))
                0. placement.Slicing.rects
            in
            Ok
              {
                chip_width = chip.Slicing.width;
                chip_height = chip.Slicing.height;
                chip_area = chip.Slicing.area;
                utilization = module_area /. chip.Slicing.area;
                placements =
                  List.mapi
                    (fun i (r : Mae_db.Record.t) ->
                      (r.module_name, placement.Slicing.rects.(i)))
                    records;
              }
      end
  end

let pp_plan ppf t =
  Format.fprintf ppf "@[<v>chip %.0f x %.0f = %.0f (utilization %.0f%%)@ "
    t.chip_width t.chip_height t.chip_area (100. *. t.utilization);
  List.iter
    (fun (name, rect) ->
      Format.fprintf ppf "%-16s %a@ " name Mae_geom.Rect.pp rect)
    t.placements;
  Format.fprintf ppf "@]"
