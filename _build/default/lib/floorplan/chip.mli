(** Chip assembly from an estimate database.

    The consumer side of Figure 1: take the per-module records the
    estimator stored (each with its menu of candidate shapes), inflate
    them by an inter-module routing allowance, and produce a floor plan.
    The paper's estimator "is not intended for area estimation of entire
    chips" — the chip area comes from this assembly step, not from
    running the module estimator on the whole netlist. *)

type plan = {
  chip_width : float;
  chip_height : float;
  chip_area : float;
  utilization : float;  (** module area (pre-allowance) / chip area *)
  placements : (string * Mae_geom.Rect.t) list;
      (** one rectangle per module, in record order *)
}

val plan :
  ?schedule:Mae_layout.Anneal.schedule ->
  ?routing_allowance:float ->
  rng:Mae_prob.Rng.t ->
  Mae_db.Store.t ->
  (plan, string) result
(** Floor-plan every module of the store.  [routing_allowance] (default
    0.10) widens each module shape by that linear fraction on both axes
    to reserve inter-module wiring space; the reported placements are the
    inflated slots.  Errors on an empty store, a record without shapes,
    or an allowance outside [0, 1]. *)

val pp_plan : Format.formatter -> plan -> unit
