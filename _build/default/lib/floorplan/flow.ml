type module_spec = {
  name : string;
  estimated_shapes : Shape.t;
  real_area : float;
}

type round_report = {
  chip_area : float;
  misfits : string list;
}

type report = {
  rounds : int;
  final_chip_area : float;
  history : round_report list;
}

let converge ?(tolerance = 0.05) ?(max_rounds = 10) ?schedule ~rng specs =
  if specs = [] then invalid_arg "Flow.converge: no modules";
  if tolerance < 0. then invalid_arg "Flow.converge: negative tolerance";
  if max_rounds < 1 then invalid_arg "Flow.converge: max_rounds < 1";
  List.iter
    (fun s ->
      if s.real_area <= 0. then
        invalid_arg "Flow.converge: non-positive real area")
    specs;
  let specs = Array.of_list specs in
  let shapes = Array.map (fun s -> s.estimated_shapes) specs in
  let history = ref [] in
  let rec round k =
    let rng = Mae_prob.Rng.split rng in
    let result = Fp_anneal.run ?schedule ~rng shapes in
    let chip_area = result.placement.Slicing.chip.Slicing.area in
    let misfits = ref [] in
    Array.iteri
      (fun i rect ->
        let slot_area = Mae_geom.Rect.area rect in
        if slot_area < specs.(i).real_area /. (1. +. tolerance) then begin
          misfits := specs.(i).name :: !misfits;
          (* The designer now knows this module's true size: update its
             shape belief with real-area variants across the 1:1..1:2
             band. *)
          let area = specs.(i).real_area in
          let variants =
            List.map
              (fun r ->
                let h = Float.sqrt (area /. r) in
                (r *. h, h))
              [ 1.0; 1.25; 1.5; 1.75; 2.0 ]
          in
          shapes.(i) <- Shape.with_rotations (Shape.of_list variants)
        end)
      result.placement.Slicing.rects;
    let misfits = List.rev !misfits in
    history := { chip_area; misfits } :: !history;
    if misfits = [] || k >= max_rounds then
      { rounds = k; final_chip_area = chip_area; history = List.rev !history }
    else round (k + 1)
  in
  round 1
