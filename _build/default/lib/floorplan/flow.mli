(** The floor-planning iteration study.

    The paper's motivation: "inaccurate aspect ratio estimates may lead to
    an unacceptable floor plan, requiring another design iteration.  More
    accurate module aspect ratio estimates will significantly reduce the
    number of floor planning iterations."  This flow simulates the
    iterative process: floor-plan with the current shape beliefs, compare
    each module's allotted slot against the module's {e real} area (known
    only after layout), refine the shapes of modules that do not fit, and
    repeat until every module fits.  Better initial estimates converge in
    fewer rounds. *)

type module_spec = {
  name : string;
  estimated_shapes : Shape.t;  (** the estimator's candidate shapes *)
  real_area : float;  (** the area the module's layout actually needs *)
}

type round_report = {
  chip_area : float;
  misfits : string list;  (** modules whose slot was too small this round *)
}

type report = {
  rounds : int;  (** floor-planning iterations until every module fit *)
  final_chip_area : float;
  history : round_report list;  (** oldest first *)
}

val converge :
  ?tolerance:float ->
  ?max_rounds:int ->
  ?schedule:Mae_layout.Anneal.schedule ->
  rng:Mae_prob.Rng.t ->
  module_spec list ->
  report
(** [tolerance] (default 0.05): a module fits when its slot area is at
    least [real_area / (1 + tolerance)].  [max_rounds] (default 10) caps
    the loop; if the cap is hit the report's [rounds] equals the cap.
    Raises [Invalid_argument] on an empty module list, a non-positive
    real area, tolerance < 0 or max_rounds < 1. *)
