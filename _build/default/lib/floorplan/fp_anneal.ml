type result = {
  expr : Polish.t;
  placement : Slicing.placement;
}

let run ?(schedule = Mae_layout.Anneal.default_schedule) ~rng shapes =
  let n = Array.length shapes in
  if n = 0 then invalid_arg "Fp_anneal.run: no modules";
  let current = ref (Polish.initial n) in
  let best = ref !current in
  let current_cost = ref (Slicing.eval !current shapes).Slicing.area in
  let best_cost = ref !current_cost in
  let propose rng =
    let previous = !current in
    let next = Polish.random_move rng previous in
    let next_cost = (Slicing.eval next shapes).Slicing.area in
    let delta = next_cost -. !current_cost in
    current := next;
    current_cost := next_cost;
    if next_cost < !best_cost then begin
      best_cost := next_cost;
      best := next
    end;
    let undo () =
      current := previous;
      current_cost := !current_cost -. delta
    in
    Some (delta, undo)
  in
  let (_ : float) =
    Mae_layout.Anneal.run ~rng ~schedule ~initial_cost:!current_cost ~propose
  in
  { expr = !best; placement = Slicing.place !best shapes }
