(** Simulated-annealing floor planning over Polish expressions
    (Wong-Liu). *)

type result = {
  expr : Polish.t;
  placement : Slicing.placement;
}

val run :
  ?schedule:Mae_layout.Anneal.schedule ->
  rng:Mae_prob.Rng.t ->
  Shape.t array ->
  result
(** Minimize chip area over slicing structures of the given modules.
    Deterministic for a given rng seed.  Raises [Invalid_argument] on an
    empty module array. *)
