type element = Operand of int | Vertical_cut | Horizontal_cut

type t = element array

let is_operator = function
  | Vertical_cut | Horizontal_cut -> true
  | Operand _ -> false

let operand_count t =
  Array.fold_left
    (fun acc e -> match e with Operand _ -> acc + 1 | Vertical_cut | Horizontal_cut -> acc)
    0 t

let validate arr =
  let n = operand_count arr in
  if n < 1 then Error "no operands"
  else if Array.length arr <> (2 * n) - 1 then Error "wrong operator count"
  else begin
    let seen = Array.make n false in
    let rec go i depth =
      if i >= Array.length arr then
        if depth = 1 then Ok () else Error "unbalanced expression"
      else begin
        match arr.(i) with
        | Operand k ->
            if k < 0 || k >= n then Error "operand out of range"
            else if seen.(k) then Error "duplicate operand"
            else begin
              seen.(k) <- true;
              go (i + 1) (depth + 1)
            end
        | Vertical_cut | Horizontal_cut ->
            if depth < 2 then Error "operator underflow" else go (i + 1) (depth - 1)
      end
    in
    go 0 0
  end

let of_elements arr =
  match validate arr with Ok () -> Ok (Array.copy arr) | Error e -> Error e

let initial n =
  if n < 1 then invalid_arg "Polish.initial: n < 1";
  let elements = ref [ Operand 0 ] in
  for k = 1 to n - 1 do
    let op = if k land 1 = 1 then Vertical_cut else Horizontal_cut in
    elements := op :: Operand k :: !elements
  done;
  Array.of_list (List.rev !elements)

let elements t = Array.copy t

let operand_positions t =
  let positions = ref [] in
  Array.iteri
    (fun i e -> match e with
       | Operand _ -> positions := i :: !positions
       | Vertical_cut | Horizontal_cut -> ())
    t;
  Array.of_list (List.rev !positions)

let swap_adjacent_operands rng t =
  let positions = operand_positions t in
  let n = Array.length positions in
  if n < 2 then None
  else begin
    let k = Mae_prob.Rng.int rng (n - 1) in
    let copy = Array.copy t in
    let i = positions.(k) and j = positions.(k + 1) in
    let tmp = copy.(i) in
    copy.(i) <- copy.(j);
    copy.(j) <- tmp;
    Some copy
  end

let invert = function
  | Vertical_cut -> Horizontal_cut
  | Horizontal_cut -> Vertical_cut
  | Operand _ as e -> e

let complement_chain rng t =
  (* A chain is a maximal run of consecutive operator elements. *)
  let chains = ref [] in
  let start = ref (-1) in
  Array.iteri
    (fun i e ->
      if is_operator e then begin
        if !start < 0 then start := i
      end
      else if !start >= 0 then begin
        chains := (!start, i - 1) :: !chains;
        start := -1
      end)
    t;
  if !start >= 0 then chains := (!start, Array.length t - 1) :: !chains;
  match !chains with
  | [] -> None
  | _ :: _ ->
      let chain_array = Array.of_list !chains in
      let lo, hi = chain_array.(Mae_prob.Rng.int rng (Array.length chain_array)) in
      let copy = Array.copy t in
      for i = lo to hi do copy.(i) <- invert copy.(i) done;
      Some copy

let swap_operand_operator rng t =
  (* Collect positions i where t.(i), t.(i+1) is an operand/operator pair
     (either order) whose exchange keeps the expression valid. *)
  let candidates = ref [] in
  for i = 0 to Array.length t - 2 do
    let a = t.(i) and b = t.(i + 1) in
    if is_operator a <> is_operator b then begin
      let copy = Array.copy t in
      copy.(i) <- b;
      copy.(i + 1) <- a;
      match validate copy with
      | Ok () -> candidates := copy :: !candidates
      | Error _ -> ()
    end
  done;
  match !candidates with
  | [] -> None
  | _ :: _ ->
      let arr = Array.of_list !candidates in
      Some arr.(Mae_prob.Rng.int rng (Array.length arr))

let random_move rng t =
  let moves =
    [| swap_adjacent_operands; complement_chain; swap_operand_operator |]
  in
  let first = Mae_prob.Rng.int rng (Array.length moves) in
  let rec try_from k remaining =
    if remaining = 0 then t
    else begin
      match moves.(k mod Array.length moves) rng t with
      | Some t' -> t'
      | None -> try_from (k + 1) (remaining - 1)
    end
  in
  try_from first (Array.length moves)

let pp ppf t =
  Array.iteri
    (fun i e ->
      if i > 0 then Format.pp_print_char ppf ' ';
      match e with
      | Operand k -> Format.pp_print_int ppf k
      | Horizontal_cut -> Format.pp_print_char ppf '+'
      | Vertical_cut -> Format.pp_print_char ppf '*')
    t
