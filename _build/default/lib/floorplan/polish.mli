(** Normalized Polish expressions for slicing floor plans (Wong & Lin).

    A slicing floor plan over n modules is a postfix expression with n
    operands and n-1 cut operators; [Vertical_cut] places its operands
    side by side, [Horizontal_cut] stacks them.  The annealer perturbs the
    expression with the three classic move types. *)

type element = Operand of int | Vertical_cut | Horizontal_cut

type t = private element array

val initial : int -> t
(** A left-deep chain over operands 0..n-1 alternating cut directions.
    Raises [Invalid_argument] if [n < 1]. *)

val of_elements : element array -> (t, string) result
(** Validates: every operand 0..n-1 appears exactly once, postfix balloting
    holds (every prefix has more operands than operators). *)

val operand_count : t -> int

val elements : t -> element array
(** A copy. *)

val swap_adjacent_operands : Mae_prob.Rng.t -> t -> t option
(** Move M1: exchange two operands adjacent in the operand subsequence.
    [None] when n < 2. *)

val complement_chain : Mae_prob.Rng.t -> t -> t option
(** Move M2: invert every operator in a random maximal operator chain.
    [None] when there are no operators. *)

val swap_operand_operator : Mae_prob.Rng.t -> t -> t option
(** Move M3: exchange an adjacent operand/operator pair, keeping the
    expression valid.  [None] when no valid exchange exists. *)

val random_move : Mae_prob.Rng.t -> t -> t
(** One of M1/M2/M3 uniformly (retrying with another type if the chosen
    one is unavailable); returns the input when no move applies (n = 1). *)

val pp : Format.formatter -> t -> unit
(** E.g. [0 1 + 2 *]: '+' = horizontal cut (stack), '*' = vertical cut. *)
