module Svg = Mae_report.Svg

let svg_of_plan ?pixel_width (plan : Chip.plan) =
  let items =
    List.map
      (fun (name, (r : Mae_geom.Rect.t)) ->
        { Svg.rect = (r.x, r.y, r.w, r.h); style = Svg.cell_style; label = Some name })
      plan.Chip.placements
    @ [
        {
          Svg.rect = (0., 0., plan.Chip.chip_width, plan.Chip.chip_height);
          style = Svg.outline_style;
          label = None;
        };
      ]
  in
  Svg.render ?pixel_width ~width:plan.Chip.chip_width
    ~height:plan.Chip.chip_height items
