(** SVG rendering of floor plans. *)

val svg_of_plan : ?pixel_width:int -> Chip.plan -> string
(** One labelled box per module inside the chip outline. *)
