type t = (float * float) list
(* invariant: sorted by width ascending, heights strictly decreasing *)

let prune list =
  let sorted =
    List.sort
      (fun (wa, ha) (wb, hb) ->
        let c = Float.compare wa wb in
        if c <> 0 then c else Float.compare ha hb)
      list
  in
  (* After sorting by width then height, an option is dominated if some
     earlier (narrower or equal) option is no taller. *)
  let rec go acc best_h = function
    | [] -> List.rev acc
    | (w, h) :: rest ->
        if h < best_h then go ((w, h) :: acc) h rest else go acc best_h rest
  in
  go [] Float.infinity sorted

let of_list list =
  if list = [] then invalid_arg "Shape.of_list: empty";
  List.iter
    (fun (w, h) ->
      if w <= 0. || h <= 0. then invalid_arg "Shape.of_list: non-positive extent")
    list;
  prune list

let singleton ~w ~h = of_list [ (w, h) ]

let square ~area =
  if area <= 0. then invalid_arg "Shape.square: non-positive area";
  let s = Float.sqrt area in
  singleton ~w:s ~h:s

let with_rotations t = prune (t @ List.map (fun (w, h) -> (h, w)) t)

let options t = t

let size t = List.length t

let areas t = List.map (fun (w, h) -> w *. h) t

let min_area t = List.fold_left Float.min Float.infinity (areas t)

let best_option t =
  match
    List.sort
      (fun (wa, ha) (wb, hb) ->
        let c = Float.compare (wa *. ha) (wb *. hb) in
        if c <> 0 then c else Float.compare wa wb)
      t
  with
  | best :: _ -> best
  | [] -> assert false

let combine_with f a b =
  prune (List.concat_map (fun oa -> List.map (f oa) b) a)

let combine_vertical =
  combine_with (fun (wa, ha) (wb, hb) -> (Float.max wa wb, ha +. hb))

let combine_horizontal =
  combine_with (fun (wa, ha) (wb, hb) -> (wa +. wb, Float.max ha hb))

let pp ppf t =
  Format.fprintf ppf "@[<h>%a@]"
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf "; ")
       (fun ppf (w, h) -> Format.fprintf ppf "%.0fx%.0f" w h))
    t
