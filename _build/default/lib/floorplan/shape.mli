(** Shape curves: the alternative (width, height) realizations of a module.

    The estimator hands the floor planner one or several candidate shapes
    per module (section 7 proposes "four or five aspect ratio estimates to
    allow chip floor planners more flexibility"); slicing-tree evaluation
    combines shape curves bottom-up, keeping only Pareto-minimal points. *)

type t
(** A non-empty Pareto frontier: options sorted by increasing width, with
    strictly decreasing height. *)

val of_list : (float * float) list -> t
(** Keeps the Pareto-minimal options.  Raises [Invalid_argument] on an
    empty list or a non-positive dimension. *)

val singleton : w:float -> h:float -> t

val square : area:float -> t
(** One square option of the given area ([area > 0]). *)

val with_rotations : t -> t
(** Adds the 90-degree rotation of every option (modules may usually be
    placed in either orientation). *)

val options : t -> (float * float) list
(** The frontier, width ascending. *)

val size : t -> int

val min_area : t -> float
(** Smallest area over the options. *)

val best_option : t -> float * float
(** The option with the smallest area (ties: narrowest). *)

val combine_vertical : t -> t -> t
(** Stack one module on top of the other: width = max, height = sum,
    merged over all option pairs, Pareto-pruned.  This is the slicing
    operator the Polish '+' (horizontal cut) denotes. *)

val combine_horizontal : t -> t -> t
(** Place side by side: width = sum, height = max (Polish '*', vertical
    cut). *)

val pp : Format.formatter -> t -> unit
