type evaluation = { width : float; height : float; area : float }

(* Fast path used inside the annealing loop: combine shape curves bottom-up
   without recording which child options realize each parent option. *)
let eval_curve expr shapes =
  let n = Polish.operand_count expr in
  if Array.length shapes <> n then
    invalid_arg "Slicing: shape count does not match operand count";
  let stack = ref [] in
  Array.iter
    (fun e ->
      match e with
      | Polish.Operand k -> stack := shapes.(k) :: !stack
      | Polish.Vertical_cut | Polish.Horizontal_cut -> begin
          match !stack with
          | right :: left :: rest ->
              let combined =
                match e with
                | Polish.Vertical_cut -> Shape.combine_horizontal left right
                | Polish.Horizontal_cut -> Shape.combine_vertical left right
                | Polish.Operand _ -> assert false
              in
              stack := combined :: rest
          | [ _ ] | [] -> invalid_arg "Slicing: malformed expression"
        end)
    (Polish.elements expr);
  match !stack with
  | [ root ] -> root
  | _ -> invalid_arg "Slicing: malformed expression"

let eval expr shapes =
  let w, h = Shape.best_option (eval_curve expr shapes) in
  { width = w; height = h; area = w *. h }

type placement = { chip : evaluation; rects : Mae_geom.Rect.t array }

(* Placement needs the realizing child options; rebuild the tree once with
   full backtracking information. *)
type node =
  | Leaf of int
  | Cut of { op : Polish.element; left : tree; right : tree }

and tree = {
  node : node;
  options : (float * float) array;
  choices : (int * int) array;  (* per option: realizing child options *)
}

let build_tree expr shapes =
  let n = Polish.operand_count expr in
  if Array.length shapes <> n then
    invalid_arg "Slicing: shape count does not match operand count";
  let stack = ref [] in
  Array.iter
    (fun e ->
      match e with
      | Polish.Operand k ->
          let options = Array.of_list (Shape.options shapes.(k)) in
          stack :=
            { node = Leaf k; options; choices = Array.map (fun _ -> (0, 0)) options }
            :: !stack
      | Polish.Vertical_cut | Polish.Horizontal_cut -> begin
          match !stack with
          | right :: left :: rest ->
              let combine (lw, lh) (rw, rh) =
                match e with
                | Polish.Vertical_cut -> (lw +. rw, Float.max lh rh)
                | Polish.Horizontal_cut -> (Float.max lw rw, lh +. rh)
                | Polish.Operand _ -> assert false
              in
              (* All candidate combinations, then Pareto-prune keeping the
                 realizing pair of each survivor. *)
              let candidates = ref [] in
              Array.iteri
                (fun li lo ->
                  Array.iteri
                    (fun ri ro ->
                      let w, h = combine lo ro in
                      candidates := ((w, h), (li, ri)) :: !candidates)
                    right.options)
                left.options;
              let sorted =
                List.sort
                  (fun (((wa : float), (ha : float)), _) ((wb, hb), _) ->
                    let c = Float.compare wa wb in
                    if c <> 0 then c else Float.compare ha hb)
                  !candidates
              in
              let rec prune acc best_h = function
                | [] -> List.rev acc
                | (((_, h) as o, c) :: rest) ->
                    if h < best_h then prune ((o, c) :: acc) h rest
                    else prune acc best_h rest
              in
              let surviving = prune [] Float.infinity sorted in
              let options = Array.of_list (List.map fst surviving) in
              let choices = Array.of_list (List.map snd surviving) in
              stack :=
                { node = Cut { op = e; left; right }; options; choices } :: rest
          | [ _ ] | [] -> invalid_arg "Slicing: malformed expression"
        end)
    (Polish.elements expr);
  match !stack with
  | [ root ] -> root
  | _ -> invalid_arg "Slicing: malformed expression"

let best_index options =
  let best = ref 0 in
  Array.iteri
    (fun i (w, h) ->
      let bw, bh = options.(!best) in
      if w *. h < (bw *. bh) -. 1e-9 then best := i)
    options;
  !best

let place expr shapes =
  let root = build_tree expr shapes in
  let n = Polish.operand_count expr in
  let rects = Array.make n (Mae_geom.Rect.make ~x:0. ~y:0. ~w:1. ~h:1.) in
  let rec assign tree option_index ~x ~y =
    let w, h = tree.options.(option_index) in
    match tree.node with
    | Leaf k -> rects.(k) <- Mae_geom.Rect.make ~x ~y ~w ~h
    | Cut { op; left; right } ->
        let li, ri = tree.choices.(option_index) in
        let lw, lh = left.options.(li) in
        begin
          match op with
          | Polish.Vertical_cut ->
              assign left li ~x ~y;
              assign right ri ~x:(x +. lw) ~y
          | Polish.Horizontal_cut ->
              assign left li ~x ~y;
              assign right ri ~x ~y:(y +. lh)
          | Polish.Operand _ -> assert false
        end
  in
  let root_index = best_index root.options in
  assign root root_index ~x:0. ~y:0.;
  let w, h = root.options.(root_index) in
  { chip = { width = w; height = h; area = w *. h }; rects }

let utilization placement =
  let module_area =
    Array.fold_left (fun acc r -> acc +. Mae_geom.Rect.area r) 0. placement.rects
  in
  module_area /. placement.chip.area
