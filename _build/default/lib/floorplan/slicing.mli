(** Evaluation of a Polish expression against module shape curves.

    Bottom-up shape-curve combination gives the minimum chip bounding box
    realizable by the slicing structure; backtracking the chosen options
    yields concrete module placements. *)

type evaluation = {
  width : float;
  height : float;
  area : float;
}

val eval : Polish.t -> Shape.t array -> evaluation
(** Minimum-area realization.  Raises [Invalid_argument] when the shape
    array length differs from the expression's operand count. *)

type placement = {
  chip : evaluation;
  rects : Mae_geom.Rect.t array;  (** one rectangle per module index *)
}

val place : Polish.t -> Shape.t array -> placement
(** Concrete module rectangles for the minimum-area realization; the chip
    origin is (0, 0).  Modules never overlap and all fit inside the chip
    box (property-tested). *)

val utilization : placement -> float
(** Sum of module areas / chip area, in (0, 1]. *)
