lib/geom/aspect.ml: Float Format
