lib/geom/aspect.mli: Format Lambda
