lib/geom/interval.ml: Float Format Lambda
