lib/geom/interval.mli: Format Lambda
