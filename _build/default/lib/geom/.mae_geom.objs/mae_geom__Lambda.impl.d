lib/geom/lambda.ml: Float Format
