lib/geom/lambda.mli: Format
