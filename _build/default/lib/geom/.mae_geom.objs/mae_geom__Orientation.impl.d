lib/geom/orientation.ml: Format
