lib/geom/orientation.mli: Format
