lib/geom/point.mli: Format Lambda
