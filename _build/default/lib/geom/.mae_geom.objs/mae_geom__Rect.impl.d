lib/geom/rect.ml: Float Format Interval Lambda List Point
