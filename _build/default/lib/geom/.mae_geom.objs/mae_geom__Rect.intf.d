lib/geom/rect.mli: Format Interval Lambda Point
