type t = float

let of_ratio r =
  if r <= 0. then invalid_arg "Aspect.of_ratio: ratio must be positive";
  r

let make ~width ~height =
  if width <= 0. || height <= 0. then
    invalid_arg "Aspect.make: extents must be positive";
  width /. height

let ratio t = t

let square = 1.

let clamp t ~lo ~hi = Float.min hi (Float.max lo t)

let normalize t = if t > 1. then 1. /. t else t

let error ~estimated ~real =
  let e = normalize estimated and r = normalize real in
  Float.abs (e -. r) /. r

let dims_for_area t area =
  (* width = r * height and width * height = area *)
  let height = Float.sqrt (area /. t) in
  (t *. height, height)

let equal = Float.equal

let pp ppf t =
  if t >= 1. then Format.fprintf ppf "1:%.2f" t
  else Format.fprintf ppf "%.2f:1" (1. /. t)
