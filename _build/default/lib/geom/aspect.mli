(** Module aspect ratios.

    The paper reports aspect ratios as width : height (e.g. "1:1.4") and
    notes (section 6) that manually laid out modules almost always fall in
    the 1:1 ... 1:2 range, so the estimator clamps its initial choice to
    that band. *)

type t = private float
(** Ratio width / height, always > 0. *)

val make : width:Lambda.t -> height:Lambda.t -> t
(** Raises [Invalid_argument] on non-positive extents. *)

val of_ratio : float -> t
(** Raises [Invalid_argument] on a non-positive ratio. *)

val ratio : t -> float

val square : t
(** 1:1. *)

val clamp : t -> lo:float -> hi:float -> t
(** Clamp the ratio into [lo, hi]. *)

val normalize : t -> t
(** Folds the ratio into the band <= 1 by inverting ratios > 1; an
    orientation-free shape descriptor (a 2:1 module is the same shape as a
    1:2 module rotated). *)

val error : estimated:t -> real:t -> float
(** Orientation-free relative error between two aspect ratios, using
    normalized ratios: [|est - real| / real]. *)

val dims_for_area : t -> Lambda.area -> Lambda.t * Lambda.t
(** [(width, height)] of a rectangle with the given area and this aspect
    ratio. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
(** Prints in the paper's "1:r" style with the smaller side first. *)
