type t = { lo : Lambda.t; hi : Lambda.t }

let make ~lo ~hi = if lo <= hi then { lo; hi } else { lo = hi; hi = lo }

let length { lo; hi } = hi -. lo

let overlaps a b = a.lo <= b.hi && b.lo <= a.hi

let overlaps_open a b = a.lo < b.hi && b.lo < a.hi

let contains { lo; hi } x = lo <= x && x <= hi

let hull a b = { lo = Float.min a.lo b.lo; hi = Float.max a.hi b.hi }

let compare_lo a b =
  let c = Float.compare a.lo b.lo in
  if c <> 0 then c else Float.compare a.hi b.hi

let equal a b = Float.equal a.lo b.lo && Float.equal a.hi b.hi

let pp ppf { lo; hi } = Format.fprintf ppf "[%.1f, %.1f]" lo hi
