(** 1-D closed intervals, used for channel-routing spans.

    The left-edge channel router represents each net's horizontal extent in a
    routing channel as an interval; two nets may share a track exactly when
    their intervals do not overlap. *)

type t = private { lo : Lambda.t; hi : Lambda.t }

val make : lo:Lambda.t -> hi:Lambda.t -> t
(** Normalizes so that [lo <= hi]. *)

val length : t -> Lambda.t

val overlaps : t -> t -> bool
(** Closed-interval overlap: touching endpoints count as overlapping, which
    is the conservative choice for routing (abutting wires short). *)

val overlaps_open : t -> t -> bool
(** Open-interval overlap: touching endpoints do {e not} conflict.  Used by
    the doglegging variant of the router. *)

val contains : t -> Lambda.t -> bool

val hull : t -> t -> t
(** Smallest interval covering both arguments. *)

val compare_lo : t -> t -> int
(** Orders by left endpoint, then right; the sort used by the left-edge
    algorithm. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
