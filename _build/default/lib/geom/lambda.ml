type t = float

type area = float

let of_microns ~microns ~lambda_microns = microns /. lambda_microns

let to_microns t ~lambda_microns = t *. lambda_microns

let area_of_square_microns a ~lambda_microns = a /. (lambda_microns *. lambda_microns)

let ceil_to_grid x ~grid =
  if grid <= 0. then invalid_arg "Lambda.ceil_to_grid: grid must be positive";
  let q = Float.of_int (Float.to_int (Float.ceil ((x /. grid) -. 1e-9))) in
  q *. grid

let pp ppf t = Format.fprintf ppf "%.1fL" t

let pp_area ppf a = Format.fprintf ppf "%.0fL^2" a
