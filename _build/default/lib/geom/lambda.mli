(** Scalable layout units.

    All linear dimensions in this code base are expressed in [lambda] units
    (Mead-Conway scalable design rules): one lambda is half the minimum
    feature size of the target process.  Areas are in lambda squared.  The
    paper's Table 1 and Table 2 report areas in these units for an nMOS
    process with lambda = 2.5 um. *)

type t = float
(** A length in lambda units. *)

type area = float
(** An area in lambda-squared units. *)

val of_microns : microns:float -> lambda_microns:float -> t
(** [of_microns ~microns ~lambda_microns] converts a physical length to
    lambda units for a process whose lambda is [lambda_microns]. *)

val to_microns : t -> lambda_microns:float -> float
(** Inverse of {!of_microns}. *)

val area_of_square_microns : float -> lambda_microns:float -> area
(** Convert a physical area in um^2 to lambda^2. *)

val ceil_to_grid : t -> grid:t -> t
(** [ceil_to_grid x ~grid] rounds [x] up to the next multiple of [grid].
    Raises [Invalid_argument] if [grid <= 0]. *)

val pp : Format.formatter -> t -> unit
(** Prints a length with a [L] suffix, e.g. [42.5L]. *)

val pp_area : Format.formatter -> area -> unit
(** Prints an area with a [L^2] suffix. *)
