type t = R0 | MX | MY | R180

let all = [ R0; MX; MY; R180 ]

let flip_x = function R0 -> MY | MY -> R0 | MX -> R180 | R180 -> MX

let flip_y = function R0 -> MX | MX -> R0 | MY -> R180 | R180 -> MY

(* The group {R0, MX, MY, R180} is the Klein four-group: every element is
   its own inverse and composing two distinct non-identity elements yields
   the third. *)
let compose a b =
  match (a, b) with
  | R0, o | o, R0 -> o
  | MX, MX | MY, MY | R180, R180 -> R0
  | MX, MY | MY, MX -> R180
  | MX, R180 | R180, MX -> MY
  | MY, R180 | R180, MY -> MX

let equal a b =
  match (a, b) with
  | R0, R0 | MX, MX | MY, MY | R180, R180 -> true
  | (R0 | MX | MY | R180), (R0 | MX | MY | R180) -> false

let to_string = function R0 -> "R0" | MX -> "MX" | MY -> "MY" | R180 -> "R180"

let pp ppf t = Format.pp_print_string ppf (to_string t)
