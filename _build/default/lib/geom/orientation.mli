(** Cell orientations in a row-based layout.

    Standard-cell placers flip cells about the vertical axis to shorten
    wires and mirror alternate rows about the horizontal axis to share
    power rails. *)

type t = R0 | MX | MY | R180

val all : t list

val flip_x : t -> t
(** Mirror about the vertical axis. *)

val flip_y : t -> t
(** Mirror about the horizontal axis. *)

val compose : t -> t -> t

val equal : t -> t -> bool

val to_string : t -> string

val pp : Format.formatter -> t -> unit
