type t = { x : Lambda.t; y : Lambda.t }

let make ~x ~y = { x; y }

let origin = { x = 0.; y = 0. }

let add a b = { x = a.x +. b.x; y = a.y +. b.y }

let sub a b = { x = a.x -. b.x; y = a.y -. b.y }

let manhattan a b = Float.abs (a.x -. b.x) +. Float.abs (a.y -. b.y)

let euclid a b =
  let dx = a.x -. b.x and dy = a.y -. b.y in
  Float.sqrt ((dx *. dx) +. (dy *. dy))

let midpoint a b = { x = (a.x +. b.x) /. 2.; y = (a.y +. b.y) /. 2. }

let equal a b = Float.equal a.x b.x && Float.equal a.y b.y

let pp ppf { x; y } = Format.fprintf ppf "(%.1f, %.1f)" x y
