(** 2-D points in lambda units. *)

type t = { x : Lambda.t; y : Lambda.t }

val make : x:Lambda.t -> y:Lambda.t -> t

val origin : t

val add : t -> t -> t

val sub : t -> t -> t

val manhattan : t -> t -> Lambda.t
(** Manhattan (L1) distance; the natural wire-length metric for
    rectilinear VLSI routing. *)

val euclid : t -> t -> Lambda.t

val midpoint : t -> t -> t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
