type t = { x : Lambda.t; y : Lambda.t; w : Lambda.t; h : Lambda.t }

let make ~x ~y ~w ~h =
  if w < 0. || h < 0. then invalid_arg "Rect.make: negative extent";
  { x; y; w; h }

let of_corners (a : Point.t) (b : Point.t) =
  let x = Float.min a.x b.x and y = Float.min a.y b.y in
  { x; y; w = Float.abs (a.x -. b.x); h = Float.abs (a.y -. b.y) }

let area { w; h; _ } = w *. h

let width t = t.w

let height t = t.h

let center { x; y; w; h } = Point.make ~x:(x +. (w /. 2.)) ~y:(y +. (h /. 2.))

let translate t ~dx ~dy = { t with x = t.x +. dx; y = t.y +. dy }

let union a b =
  let x = Float.min a.x b.x and y = Float.min a.y b.y in
  let x2 = Float.max (a.x +. a.w) (b.x +. b.w) in
  let y2 = Float.max (a.y +. a.h) (b.y +. b.h) in
  { x; y; w = x2 -. x; h = y2 -. y }

let union_all = function
  | [] -> None
  | r :: rest -> Some (List.fold_left union r rest)

let intersects a b =
  a.x < b.x +. b.w && b.x < a.x +. a.w && a.y < b.y +. b.h && b.y < a.y +. a.h

let contains_point { x; y; w; h } (p : Point.t) =
  x <= p.x && p.x <= x +. w && y <= p.y && p.y <= y +. h

let aspect_ratio { w; h; _ } =
  if h = 0. then invalid_arg "Rect.aspect_ratio: zero height";
  w /. h

let x_interval { x; w; _ } = Interval.make ~lo:x ~hi:(x +. w)

let y_interval { y; h; _ } = Interval.make ~lo:y ~hi:(y +. h)

let equal a b =
  Float.equal a.x b.x && Float.equal a.y b.y && Float.equal a.w b.w
  && Float.equal a.h b.h

let pp ppf { x; y; w; h } =
  Format.fprintf ppf "{x=%.1f y=%.1f w=%.1f h=%.1f}" x y w h
