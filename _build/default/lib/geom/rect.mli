(** Axis-aligned rectangles in lambda units. *)

type t = private {
  x : Lambda.t;  (** left edge *)
  y : Lambda.t;  (** bottom edge *)
  w : Lambda.t;  (** width, >= 0 *)
  h : Lambda.t;  (** height, >= 0 *)
}

val make : x:Lambda.t -> y:Lambda.t -> w:Lambda.t -> h:Lambda.t -> t
(** Raises [Invalid_argument] on negative width or height. *)

val of_corners : Point.t -> Point.t -> t

val area : t -> Lambda.area

val width : t -> Lambda.t

val height : t -> Lambda.t

val center : t -> Point.t

val translate : t -> dx:Lambda.t -> dy:Lambda.t -> t

val union : t -> t -> t
(** Bounding box of the two rectangles. *)

val union_all : t list -> t option
(** Bounding box of a non-empty list; [None] on the empty list. *)

val intersects : t -> t -> bool
(** Strict interior overlap: rectangles that merely share an edge do not
    intersect (cells may abut). *)

val contains_point : t -> Point.t -> bool

val aspect_ratio : t -> float
(** width / height; raises [Invalid_argument] when height = 0. *)

val x_interval : t -> Interval.t

val y_interval : t -> Interval.t

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
