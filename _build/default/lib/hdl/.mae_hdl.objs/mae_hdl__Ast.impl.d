lib/hdl/ast.ml: Format List Mae_netlist String
