lib/hdl/ast.mli: Format Mae_netlist
