lib/hdl/elaborate.ml: Ast Format List Mae_netlist String
