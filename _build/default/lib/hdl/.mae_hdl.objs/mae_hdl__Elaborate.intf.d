lib/hdl/elaborate.mli: Ast Format Mae_netlist
