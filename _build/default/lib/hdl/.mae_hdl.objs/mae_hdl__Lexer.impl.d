lib/hdl/lexer.ml: Format List Printf String Token
