lib/hdl/lexer.mli: Format Token
