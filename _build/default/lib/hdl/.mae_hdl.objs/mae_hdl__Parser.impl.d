lib/hdl/parser.ml: Ast Format In_channel Lexer List Mae_netlist Printf Token
