lib/hdl/parser.mli: Ast Format Token
