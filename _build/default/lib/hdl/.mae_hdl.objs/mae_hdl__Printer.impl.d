lib/hdl/printer.ml: Array Format List Mae_netlist String
