lib/hdl/printer.mli: Format Mae_netlist
