lib/hdl/spice.ml: Char Format In_channel List Mae_netlist Printf String
