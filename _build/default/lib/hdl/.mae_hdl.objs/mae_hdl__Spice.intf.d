lib/hdl/spice.mli: Format Mae_netlist
