lib/hdl/token.ml: Format String
