lib/hdl/token.mli: Format
