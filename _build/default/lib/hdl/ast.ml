type item =
  | Technology_decl of string
  | Port_decl of { name : string; direction : Mae_netlist.Port.direction }
  | Net_decl of string
  | Device_decl of { name : string; kind : string; pins : string list }

type module_decl = { name : string; items : item list }

type design = module_decl list

let technology m =
  List.fold_left
    (fun acc item ->
      match item with
      | Technology_decl t -> Some t
      | Port_decl _ | Net_decl _ | Device_decl _ -> acc)
    None m.items

let pp_item ppf = function
  | Technology_decl t -> Format.fprintf ppf "technology %s;" t
  | Port_decl { name; direction } ->
      Format.fprintf ppf "port %s %s;" name
        (Mae_netlist.Port.direction_to_string direction)
  | Net_decl n -> Format.fprintf ppf "net %s;" n
  | Device_decl { name; kind; pins } ->
      Format.fprintf ppf "device %s %s (%s);" name kind (String.concat ", " pins)

let pp_module ppf m =
  Format.fprintf ppf "@[<v 2>module %s {@ %a@]@ }" m.name
    (Format.pp_print_list pp_item)
    m.items
