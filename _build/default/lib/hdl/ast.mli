(** Abstract syntax of the structural HDL.

    A design file contains one or more module declarations:

    {v
    module full_adder {
      technology nmos25;
      port a in;  port b in;  port cin in;
      port s out; port cout out;
      device x1 xor2 (a, b, t1);
      device x2 xor2 (t1, cin, s);
      net t1;                       // optional explicit declaration
    }
    v} *)

type item =
  | Technology_decl of string
  | Port_decl of { name : string; direction : Mae_netlist.Port.direction }
  | Net_decl of string
  | Device_decl of { name : string; kind : string; pins : string list }

type module_decl = { name : string; items : item list }

type design = module_decl list

val technology : module_decl -> string option
(** The last [technology] item, if any. *)

val pp_item : Format.formatter -> item -> unit

val pp_module : Format.formatter -> module_decl -> unit
