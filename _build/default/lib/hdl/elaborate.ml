type error =
  | Duplicate_name of { module_name : string; what : string; name : string }
  | Port_without_net of { module_name : string; port : string }
  | No_technology of { module_name : string }
  | Module_not_found of string
  | Recursive_module of string
  | Port_arity of {
      module_name : string;
      instance : string;
      expected : int;
      got : int;
    }

let pp_error ppf = function
  | Duplicate_name { module_name; what; name } ->
      Format.fprintf ppf "module %s: duplicate %s %s" module_name what name
  | Port_without_net { module_name; port } ->
      Format.fprintf ppf "module %s: port %s has no net" module_name port
  | No_technology { module_name } ->
      Format.fprintf ppf "module %s: no technology given" module_name
  | Module_not_found name -> Format.fprintf ppf "module %s not found" name
  | Recursive_module name ->
      Format.fprintf ppf "module %s instantiates itself (recursion)" name
  | Port_arity { module_name; instance; expected; got } ->
      Format.fprintf ppf
        "module %s: instance %s has %d pins but the child declares %d ports"
        module_name instance got expected

let module_to_circuit ?default_technology (m : Ast.module_decl) =
  let technology =
    match Ast.technology m with Some t -> Some t | None -> default_technology
  in
  match technology with
  | None -> Error (No_technology { module_name = m.name })
  | Some technology -> begin
      let builder = Mae_netlist.Builder.create ~name:m.name ~technology in
      let elaborate_item = function
        | Ast.Technology_decl _ -> Ok ()
        | Ast.Net_decl name ->
            ignore (Mae_netlist.Builder.net builder name);
            Ok ()
        | Ast.Port_decl { name; direction } -> begin
            (* The port's net shares the port's name. *)
            try
              Mae_netlist.Builder.add_port builder ~name ~direction ~net:name;
              Ok ()
            with Invalid_argument _ ->
              Error (Duplicate_name { module_name = m.name; what = "port"; name })
          end
        | Ast.Device_decl { name; kind; pins } -> begin
            try
              ignore (Mae_netlist.Builder.add_device builder ~name ~kind ~nets:pins);
              Ok ()
            with Invalid_argument _ ->
              Error (Duplicate_name { module_name = m.name; what = "device"; name })
          end
      in
      let rec go = function
        | [] -> Ok (Mae_netlist.Builder.build builder)
        | item :: rest -> begin
            match elaborate_item item with
            | Ok () -> go rest
            | Error e -> Error e
          end
      in
      go m.items
    end

let design_to_circuits ?default_technology design =
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | m :: rest -> begin
        match module_to_circuit ?default_technology m with
        | Ok c -> go (c :: acc) rest
        | Error e -> Error e
      end
  in
  go [] design

let find_module ?default_technology design ~name =
  match
    List.find_opt (fun (m : Ast.module_decl) -> String.equal m.name name) design
  with
  | Some m -> module_to_circuit ?default_technology m
  | None -> Error (Module_not_found name)


exception Flatten_error of error

(* Hierarchical elaboration: walk the instance tree, renaming each child's
   nets and devices under its instance path.  [bindings] maps a child's
   port-net names to the parent's net names. *)
let flatten ?default_technology design ~top =
  let module_of name =
    List.find_opt (fun (m : Ast.module_decl) -> String.equal m.name name) design
  in
  match module_of top with
  | None -> Error (Module_not_found top)
  | Some top_module -> begin
      let technology =
        match Ast.technology top_module with
        | Some t -> Some t
        | None -> default_technology
      in
      match technology with
      | None -> Error (No_technology { module_name = top })
      | Some technology -> begin
          let builder = Mae_netlist.Builder.create ~name:top ~technology in
          let ports_of (m : Ast.module_decl) =
            List.filter_map
              (function
                | Ast.Port_decl { name; _ } -> Some name
                | Ast.Technology_decl _ | Ast.Net_decl _ | Ast.Device_decl _ ->
                    None)
              m.items
          in
          let fail e = raise (Flatten_error e) in
          let rec instantiate ~prefix ~bindings ~stack (m : Ast.module_decl) =
            if List.mem m.Ast.name stack then fail (Recursive_module m.Ast.name);
            let resolve net =
              match List.assoc_opt net bindings with
              | Some outer -> outer
              | None -> prefix ^ net
            in
            List.iter
              (fun item ->
                match item with
                | Ast.Technology_decl _ -> ()
                | Ast.Net_decl n -> ignore (Mae_netlist.Builder.net builder (resolve n))
                | Ast.Port_decl { name; direction } ->
                    if String.equal prefix "" then
                      (* only the top module's ports survive flattening *)
                      (try
                         Mae_netlist.Builder.add_port builder ~name ~direction
                           ~net:(resolve name)
                       with Invalid_argument _ ->
                         fail
                           (Duplicate_name
                              { module_name = m.Ast.name; what = "port"; name }))
                    else ignore (Mae_netlist.Builder.net builder (resolve name))
                | Ast.Device_decl { name; kind; pins } -> begin
                    match module_of kind with
                    | Some child ->
                        let child_ports = ports_of child in
                        if List.length child_ports <> List.length pins then
                          fail
                            (Port_arity
                               {
                                 module_name = m.Ast.name;
                                 instance = prefix ^ name;
                                 expected = List.length child_ports;
                                 got = List.length pins;
                               });
                        let child_bindings =
                          List.map2
                            (fun port pin -> (port, resolve pin))
                            child_ports pins
                        in
                        instantiate
                          ~prefix:(prefix ^ name ^ ".")
                          ~bindings:child_bindings
                          ~stack:(m.Ast.name :: stack)
                          child
                    | None -> begin
                        try
                          ignore
                            (Mae_netlist.Builder.add_device builder
                               ~name:(prefix ^ name) ~kind
                               ~nets:(List.map resolve pins))
                        with Invalid_argument _ ->
                          fail
                            (Duplicate_name
                               { module_name = m.Ast.name; what = "device"; name })
                      end
                  end)
              m.Ast.items
          in
          match instantiate ~prefix:"" ~bindings:[] ~stack:[] top_module with
          | () -> Ok (Mae_netlist.Builder.build builder)
          | exception Flatten_error e -> Error e
        end
    end
