(** Elaboration: HDL abstract syntax to a {!Mae_netlist.Circuit.t}.

    This is the paper's "input interface" step (Figure 1): the circuit
    schematic is translated into the mathematical representation the
    estimators analyze. *)

type error =
  | Duplicate_name of { module_name : string; what : string; name : string }
  | Port_without_net of { module_name : string; port : string }
  | No_technology of { module_name : string }
  | Module_not_found of string
  | Recursive_module of string
      (** a module (transitively) instantiates itself *)
  | Port_arity of {
      module_name : string;
      instance : string;
      expected : int;
      got : int;
    }  (** an instance's pin count differs from the child's port count *)

val pp_error : Format.formatter -> error -> unit

val module_to_circuit :
  ?default_technology:string ->
  Ast.module_decl ->
  (Mae_netlist.Circuit.t, error) result
(** A [technology] item in the module wins over [default_technology]; if
    neither exists the result is [No_technology].  Each port implicitly
    names its net (a port [a] connects to net [a]). *)

val design_to_circuits :
  ?default_technology:string ->
  Ast.design ->
  (Mae_netlist.Circuit.t list, error) result
(** Elaborates every module; stops at the first error. *)

val find_module :
  ?default_technology:string ->
  Ast.design ->
  name:string ->
  (Mae_netlist.Circuit.t, error) result

val flatten :
  ?default_technology:string ->
  Ast.design ->
  top:string ->
  (Mae_netlist.Circuit.t, error) result
(** Hierarchical elaboration: inside any module, a device whose kind names
    another module of the design instantiates it.  The instance's pins
    bind positionally to the child's ports (in declaration order); the
    child's other nets and devices are copied in with an
    ["instance."]-prefixed name.  The result is the fully flattened top
    module, in the top's technology.  Errors on recursive instantiation
    and pin/port arity mismatches. *)
