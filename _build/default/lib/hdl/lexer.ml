type error = { line : int; column : int; message : string }

let pp_error ppf e =
  Format.fprintf ppf "%d:%d: %s" e.line e.column e.message

let is_ident_char c =
  (c >= 'a' && c <= 'z')
  || (c >= 'A' && c <= 'Z')
  || (c >= '0' && c <= '9')
  || c = '_' || c = '.' || c = '[' || c = ']'

let keyword_or_ident s =
  match s with
  | "module" -> Token.Module
  | "technology" -> Token.Technology
  | "port" -> Token.Port
  | "net" -> Token.Net
  | "device" -> Token.Device
  | _ -> Token.Ident s

let tokenize text =
  let len = String.length text in
  let tokens = ref [] in
  let line = ref 1 and col = ref 1 in
  let emit token = tokens := { Token.token; line = !line; column = !col } :: !tokens in
  let rec skip_line i =
    if i < len && text.[i] <> '\n' then skip_line (i + 1) else i
  in
  let rec go i =
    if i >= len then Ok ()
    else begin
      let c = text.[i] in
      match c with
      | '\n' ->
          incr line;
          col := 1;
          go (i + 1)
      | ' ' | '\t' | '\r' ->
          incr col;
          go (i + 1)
      | '#' -> go (skip_line i)
      | '/' when i + 1 < len && text.[i + 1] = '/' -> go (skip_line i)
      | '{' -> emit Token.Lbrace; incr col; go (i + 1)
      | '}' -> emit Token.Rbrace; incr col; go (i + 1)
      | '(' -> emit Token.Lparen; incr col; go (i + 1)
      | ')' -> emit Token.Rparen; incr col; go (i + 1)
      | ',' -> emit Token.Comma; incr col; go (i + 1)
      | ';' -> emit Token.Semi; incr col; go (i + 1)
      | c when is_ident_char c ->
          let j = ref i in
          while !j < len && is_ident_char text.[!j] do incr j done;
          let word = String.sub text i (!j - i) in
          emit (keyword_or_ident word);
          col := !col + (!j - i);
          go !j
      | c ->
          Error
            {
              line = !line;
              column = !col;
              message = Printf.sprintf "unexpected character %C" c;
            }
    end
  in
  match go 0 with
  | Error e -> Error e
  | Ok () ->
      emit Token.Eof;
      Ok (List.rev !tokens)
