(** Hand-written lexer for the structural HDL.

    Identifiers are [[A-Za-z0-9_.\[\]]+] (bracketed bus bits like [a\[3\]]
    lex as single identifiers); [#] and [//] start line comments. *)

type error = { line : int; column : int; message : string }

val pp_error : Format.formatter -> error -> unit

val tokenize : string -> (Token.located list, error) result
(** The result always ends with an [Eof] token. *)
