type error = { line : int; column : int; message : string }

let pp_error ppf e = Format.fprintf ppf "%d:%d: %s" e.line e.column e.message

exception Parse_error of error

type state = { mutable tokens : Token.located list }

let fail (tok : Token.located) message =
  raise (Parse_error { line = tok.line; column = tok.column; message })

let peek st =
  match st.tokens with
  | t :: _ -> t
  | [] ->
      (* tokenize always appends Eof, so this is unreachable on lexer
         output; defend anyway. *)
      { Token.token = Token.Eof; line = 0; column = 0 }

let advance st =
  match st.tokens with [] -> () | _ :: rest -> st.tokens <- rest

let expect st token =
  let t = peek st in
  if Token.equal t.token token then advance st
  else
    fail t
      (Printf.sprintf "expected %s but found %s" (Token.to_string token)
         (Token.to_string t.token))

let expect_ident st what =
  let t = peek st in
  match t.token with
  | Token.Ident s -> advance st; s
  | other ->
      fail t
        (Printf.sprintf "expected %s but found %s" what (Token.to_string other))

let parse_direction st =
  let t = peek st in
  let name = expect_ident st "port direction" in
  match Mae_netlist.Port.direction_of_string name with
  | Some d -> d
  | None -> fail t ("invalid port direction " ^ name)

let parse_pins st =
  expect st Token.Lparen;
  let first = expect_ident st "net name" in
  let rec more acc =
    let t = peek st in
    match t.token with
    | Token.Comma ->
        advance st;
        more (expect_ident st "net name" :: acc)
    | Token.Rparen ->
        advance st;
        List.rev acc
    | other ->
        fail t
          (Printf.sprintf "expected , or ) but found %s" (Token.to_string other))
  in
  more [ first ]

let parse_item st : Ast.item option =
  let t = peek st in
  match t.token with
  | Token.Technology ->
      advance st;
      let name = expect_ident st "technology name" in
      expect st Token.Semi;
      Some (Ast.Technology_decl name)
  | Token.Port ->
      advance st;
      let name = expect_ident st "port name" in
      let direction = parse_direction st in
      expect st Token.Semi;
      Some (Ast.Port_decl { name; direction })
  | Token.Net ->
      advance st;
      let name = expect_ident st "net name" in
      expect st Token.Semi;
      Some (Ast.Net_decl name)
  | Token.Device ->
      advance st;
      let name = expect_ident st "device name" in
      let kind = expect_ident st "device kind" in
      let pins = parse_pins st in
      expect st Token.Semi;
      Some (Ast.Device_decl { name; kind; pins })
  | Token.Rbrace -> None
  | other ->
      fail t
        (Printf.sprintf "expected an item or } but found %s"
           (Token.to_string other))

let parse_module st : Ast.module_decl =
  expect st Token.Module;
  let name = expect_ident st "module name" in
  expect st Token.Lbrace;
  let rec items acc =
    match parse_item st with
    | Some item -> items (item :: acc)
    | None -> List.rev acc
  in
  let items = items [] in
  expect st Token.Rbrace;
  { Ast.name; items }

let parse_tokens tokens =
  let st = { tokens } in
  let rec modules acc =
    let t = peek st in
    match t.token with
    | Token.Eof -> List.rev acc
    | Token.Module -> modules (parse_module st :: acc)
    | other ->
        fail t
          (Printf.sprintf "expected module but found %s" (Token.to_string other))
  in
  try Ok (modules []) with Parse_error e -> Error e

let parse_string text =
  match Lexer.tokenize text with
  | Error (e : Lexer.error) ->
      Error { line = e.line; column = e.column; message = e.message }
  | Ok tokens -> parse_tokens tokens

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse_string text
  | exception Sys_error msg -> Error { line = 0; column = 0; message = msg }
