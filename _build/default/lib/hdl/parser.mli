(** Recursive-descent parser for the structural HDL.

    Grammar (EBNF):
    {v
    design  ::= module*
    module  ::= "module" IDENT "{" item* "}"
    item    ::= "technology" IDENT ";"
              | "port" IDENT ("in" | "out" | "inout") ";"
              | "net" IDENT ";"
              | "device" IDENT IDENT "(" IDENT ("," IDENT)* ")" ";"
    v} *)

type error = { line : int; column : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse_tokens : Token.located list -> (Ast.design, error) result

val parse_string : string -> (Ast.design, error) result
(** Lex then parse; lexer errors are reported in the same [error] type. *)

val parse_file : string -> (Ast.design, error) result
(** I/O failures are reported as an error at 0:0. *)
