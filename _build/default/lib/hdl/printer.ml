let pp ppf (c : Mae_netlist.Circuit.t) =
  Format.fprintf ppf "module %s {@\n" c.name;
  Format.fprintf ppf "  technology %s;@\n" c.technology;
  Array.iter
    (fun (p : Mae_netlist.Port.t) ->
      Format.fprintf ppf "  port %s %s;@\n" p.name
        (Mae_netlist.Port.direction_to_string p.direction))
    c.ports;
  (* Explicit net declarations keep nets that no device touches (a port's
     net may otherwise vanish on re-elaboration). *)
  Array.iter
    (fun (n : Mae_netlist.Net.t) -> Format.fprintf ppf "  net %s;@\n" n.name)
    c.nets;
  Array.iter
    (fun (d : Mae_netlist.Device.t) ->
      let pin_names =
        Array.to_list d.pins
        |> List.map (fun i -> c.nets.(i).Mae_netlist.Net.name)
      in
      Format.fprintf ppf "  device %s %s (%s);@\n" d.name d.kind
        (String.concat ", " pin_names))
    c.devices;
  Format.fprintf ppf "}@\n"

let to_string c = Format.asprintf "%a" pp c
