(** Renders a circuit back to HDL text.

    [to_string] round-trips: parsing and elaborating its output yields a
    circuit with the same devices, nets, ports and connectivity. *)

val to_string : Mae_netlist.Circuit.t -> string

val pp : Format.formatter -> Mae_netlist.Circuit.t -> unit
