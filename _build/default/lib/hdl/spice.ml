type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

exception Spice_error of error

let fail line message = raise (Spice_error { line; message })

let tokens_of_line line =
  String.split_on_char ' ' line
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (( <> ) "")

(* Join "+" continuation lines to their predecessor, keeping the line
   number of the card's first line for error reporting. *)
let logical_lines text =
  let raw = String.split_on_char '\n' text in
  let rec go acc = function
    | [] -> List.rev acc
    | (lineno, line) :: rest -> begin
        let line = String.trim line in
        if String.length line > 0 && line.[0] = '+' then
          match acc with
          | (first_no, prev) :: acc_rest ->
              let joined = prev ^ " " ^ String.sub line 1 (String.length line - 1) in
              go ((first_no, joined) :: acc_rest) rest
          | [] -> fail lineno "continuation line with no preceding card"
        else go ((lineno, line) :: acc) rest
      end
  in
  go [] (List.mapi (fun i l -> (i + 1, l)) raw)

let technology_comment line =
  (* "* technology: cmos20" *)
  let lower = String.lowercase_ascii line in
  let prefix = "* technology:" in
  if String.length lower >= String.length prefix
     && String.equal (String.sub lower 0 (String.length prefix)) prefix
  then
    let rest = String.sub line (String.length prefix)
        (String.length line - String.length prefix) in
    let name = String.trim rest in
    if String.length name > 0 then Some name else None
  else None

type block = {
  mutable builder : Mae_netlist.Builder.t option;
  mutable circuits_rev : Mae_netlist.Circuit.t list;
  mutable technology : string;
}

let handle_card block lineno toks =
  match (toks, block.builder) with
  | [], _ -> ()
  | first :: _, _ when first.[0] = '*' ->
      (match technology_comment (String.concat " " toks) with
       | Some t -> block.technology <- t
       | None -> ())
  | ".subckt" :: name :: ports, None ->
      let builder =
        Mae_netlist.Builder.create ~name ~technology:block.technology
      in
      List.iter
        (fun p ->
          Mae_netlist.Builder.add_port builder ~name:p
            ~direction:Mae_netlist.Port.Inout ~net:p)
        ports;
      block.builder <- Some builder
  | ".subckt" :: _, Some _ -> fail lineno "nested .subckt"
  | [ ".ends" ], Some builder | [ ".ends"; _ ], Some builder ->
      block.circuits_rev <-
        Mae_netlist.Builder.build builder :: block.circuits_rev;
      block.builder <- None
  | [ ".ends" ], None | [ ".ends"; _ ], None -> fail lineno ".ends without .subckt"
  | [ ".end" ], _ -> ()
  | card :: _, None ->
      fail lineno (Printf.sprintf "card %s outside .subckt" card)
  | card :: rest, Some builder -> begin
      let kind_of_char = Char.lowercase_ascii card.[0] in
      match kind_of_char with
      | 'm' -> begin
          match rest with
          | [ drain; gate; source; _bulk; model ] ->
              ignore
                (Mae_netlist.Builder.add_device builder ~name:card ~kind:model
                   ~nets:[ drain; gate; source ])
          | _ -> fail lineno ("malformed MOS card " ^ card)
        end
      | 'x' -> begin
          match List.rev rest with
          | kind :: pins_rev when pins_rev <> [] ->
              ignore
                (Mae_netlist.Builder.add_device builder ~name:card ~kind
                   ~nets:(List.rev pins_rev))
          | _ -> fail lineno ("malformed instance card " ^ card)
        end
      | '.' -> fail lineno ("unsupported control card " ^ card)
      | _ -> fail lineno ("unsupported card " ^ card)
    end

let parse_string text =
  let block = { builder = None; circuits_rev = []; technology = "nmos25" } in
  try
    List.iter
      (fun (lineno, line) -> handle_card block lineno (tokens_of_line line))
      (logical_lines text);
    begin
      match block.builder with
      | Some _ -> fail 0 "unterminated .subckt at end of input"
      | None -> ()
    end;
    Ok (List.rev block.circuits_rev)
  with
  | Spice_error e -> Error e
  | Invalid_argument msg -> Error { line = 0; message = msg }

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse_string text
  | exception Sys_error msg -> Error { line = 0; message = msg }
