(** Reader for a SPICE-netlist subset, the second schematic input format.

    Supported constructs:
    - [* comment] lines and blank lines;
    - [.subckt NAME port1 port2 ...] ... [.ends] blocks;
    - MOS transistor cards [Mname drain gate source bulk MODEL] (the bulk
      node is dropped; the MODEL name becomes the device kind);
    - generic instance cards [Xname net1 ... netK KIND] (the last token is
      the kind);
    - a final [.end] line (optional).

    Continuation lines starting with [+] are joined to the previous card.
    Subcircuit ports become [Inout] module ports. *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse_string : string -> (Mae_netlist.Circuit.t list, error) result
(** [parse_string text] elaborates every [.subckt] block; the technology
    of each circuit is set by the first [* technology: NAME] comment seen
    before the block, defaulting to ["nmos25"]. *)

val parse_file : string -> (Mae_netlist.Circuit.t list, error) result
