type t =
  | Module
  | Technology
  | Port
  | Net
  | Device
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Comma
  | Semi
  | Ident of string
  | Eof

type located = { token : t; line : int; column : int }

let equal a b =
  match (a, b) with
  | Ident x, Ident y -> String.equal x y
  | Module, Module
  | Technology, Technology
  | Port, Port
  | Net, Net
  | Device, Device
  | Lbrace, Lbrace
  | Rbrace, Rbrace
  | Lparen, Lparen
  | Rparen, Rparen
  | Comma, Comma
  | Semi, Semi
  | Eof, Eof ->
      true
  | ( ( Module | Technology | Port | Net | Device | Lbrace | Rbrace | Lparen
      | Rparen | Comma | Semi | Ident _ | Eof ),
      _ ) ->
      false

let to_string = function
  | Module -> "module"
  | Technology -> "technology"
  | Port -> "port"
  | Net -> "net"
  | Device -> "device"
  | Lbrace -> "{"
  | Rbrace -> "}"
  | Lparen -> "("
  | Rparen -> ")"
  | Comma -> ","
  | Semi -> ";"
  | Ident s -> s
  | Eof -> "<eof>"

let pp ppf t = Format.pp_print_string ppf (to_string t)
