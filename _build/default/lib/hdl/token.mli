(** Tokens of the structural HDL (see {!Parser} for the grammar). *)

type t =
  | Module
  | Technology
  | Port
  | Net
  | Device
  | Lbrace
  | Rbrace
  | Lparen
  | Rparen
  | Comma
  | Semi
  | Ident of string
  | Eof

type located = { token : t; line : int; column : int }

val equal : t -> t -> bool

val to_string : t -> string

val pp : Format.formatter -> t -> unit
