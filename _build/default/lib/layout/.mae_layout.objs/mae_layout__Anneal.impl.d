lib/layout/anneal.ml: Float Mae_prob
