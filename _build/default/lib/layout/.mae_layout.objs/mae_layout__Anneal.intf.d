lib/layout/anneal.mli: Mae_prob
