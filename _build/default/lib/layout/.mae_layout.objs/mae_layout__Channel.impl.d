lib/layout/channel.ml: Array Float Hashtbl Int List Mae_geom Stdlib
