lib/layout/channel.mli: Mae_geom
