lib/layout/check.ml: Array Format Geometry List Mae_geom
