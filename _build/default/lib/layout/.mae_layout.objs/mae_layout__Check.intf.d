lib/layout/check.mli: Format Geometry
