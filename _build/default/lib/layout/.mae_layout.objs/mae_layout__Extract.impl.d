lib/layout/extract.ml: Array Float Format Fun Hashtbl Int List Mae_netlist Option Stdlib Wiring
