lib/layout/extract.mli: Format Mae_netlist Wiring
