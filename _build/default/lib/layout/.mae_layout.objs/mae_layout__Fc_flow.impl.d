lib/layout/fc_flow.ml: Anneal Array Float Geometry Int List Mae_netlist Mae_prob Mae_tech Row_layout Stdlib
