lib/layout/fc_flow.mli: Anneal Geometry Mae_netlist Mae_prob Mae_tech Row_layout
