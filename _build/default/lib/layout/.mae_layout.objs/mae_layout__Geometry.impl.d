lib/layout/geometry.ml: Array Buffer Float Int List Mae_geom Printf Row_layout
