lib/layout/geometry.mli: Mae_geom Row_layout
