lib/layout/ports.ml: Array Float Geometry Hashtbl List Mae_geom Mae_netlist Option Row_layout Stdlib
