lib/layout/ports.mli: Geometry Mae_geom Mae_netlist Row_layout
