lib/layout/render.ml: Float Geometry List Mae_geom Mae_report Ports Printf Wiring
