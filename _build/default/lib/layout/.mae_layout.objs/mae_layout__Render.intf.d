lib/layout/render.mli: Geometry Ports Wiring
