lib/layout/row_layout.ml: Anneal Array Channel Float Int List Mae_geom Mae_netlist Mae_prob Queue Stdlib Wirelength
