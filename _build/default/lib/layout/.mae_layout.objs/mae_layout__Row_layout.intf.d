lib/layout/row_layout.mli: Anneal Channel Mae_geom Mae_netlist Mae_prob
