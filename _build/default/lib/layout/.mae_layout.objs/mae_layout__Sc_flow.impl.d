lib/layout/sc_flow.ml: Anneal Array Geometry List Mae_netlist Mae_prob Mae_tech Row_layout Wiring
