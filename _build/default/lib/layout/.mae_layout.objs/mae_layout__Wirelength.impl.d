lib/layout/wirelength.ml: Array Float Int List Mae_netlist
