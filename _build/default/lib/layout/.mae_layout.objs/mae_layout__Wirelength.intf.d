lib/layout/wirelength.mli: Mae_netlist
