lib/layout/wiring.ml: Array Channel Float Geometry List Mae_geom Mae_netlist Row_layout Stdlib
