lib/layout/wiring.mli: Geometry Mae_netlist Row_layout
