type schedule = {
  initial_temp : float;
  final_temp : float;
  cooling : float;
  moves_per_temp : int;
}

let default_schedule =
  { initial_temp = 1000.; final_temp = 0.1; cooling = 0.9; moves_per_temp = 200 }

let quick_schedule =
  { initial_temp = 100.; final_temp = 1.; cooling = 0.8; moves_per_temp = 50 }

let validate_schedule s =
  if s.initial_temp <= 0. || s.final_temp <= 0. then
    Error "temperatures must be positive"
  else if s.final_temp > s.initial_temp then
    Error "final_temp must not exceed initial_temp"
  else if s.cooling <= 0. || s.cooling >= 1. then Error "cooling must be in (0,1)"
  else if s.moves_per_temp < 1 then Error "moves_per_temp must be >= 1"
  else Ok s

exception Stop

let run ~rng ~schedule ~initial_cost ~propose =
  begin
    match validate_schedule schedule with
    | Ok _ -> ()
    | Error msg -> invalid_arg ("Anneal.run: " ^ msg)
  end;
  let cost = ref initial_cost in
  let temp = ref schedule.initial_temp in
  begin
    try
      while !temp >= schedule.final_temp do
        for _ = 1 to schedule.moves_per_temp do
          match propose rng with
          | None -> raise Stop
          | Some (delta, undo) ->
              let accept =
                delta <= 0.
                || Mae_prob.Rng.uniform rng < Float.exp (-.delta /. !temp)
              in
              if accept then cost := !cost +. delta else undo ()
        done;
        temp := !temp *. schedule.cooling
      done
    with Stop -> ()
  end;
  !cost
