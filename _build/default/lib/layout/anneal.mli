(** Generic simulated annealing over imperative state.

    Both the standard-cell placer (a stand-in for TimberWolf, which the
    paper used to produce its "real" Table 2 layouts) and the floor
    planner drive this loop.  The caller owns the state: [propose] applies
    a random move, returns its cost delta and an undo closure, and the
    loop either keeps the move or undoes it. *)

type schedule = {
  initial_temp : float;
  final_temp : float;
  cooling : float;  (** multiplicative factor per temperature step, in (0,1) *)
  moves_per_temp : int;
}

val default_schedule : schedule
(** initial 1000, final 0.1, cooling 0.9, 200 moves per step. *)

val quick_schedule : schedule
(** A short schedule for tests and small modules. *)

val validate_schedule : schedule -> (schedule, string) result

val run :
  rng:Mae_prob.Rng.t ->
  schedule:schedule ->
  initial_cost:float ->
  propose:(Mae_prob.Rng.t -> (float * (unit -> unit)) option) ->
  float
(** [run ~rng ~schedule ~initial_cost ~propose] returns the final cost.
    [propose rng] must apply a move to the caller's state and return
    [(delta, undo)]; returning [None] means no move is available and the
    loop stops.  Moves with [delta <= 0] are always accepted; positive
    deltas with probability exp(-delta / T).  Raises [Invalid_argument]
    on an invalid schedule. *)
