type span = { net : int; interval : Mae_geom.Interval.t }

type routed = {
  track_of : (int * int) list;
  tracks : int;
  density : int;
  dropped_constraints : int;
}

let merge_spans spans =
  let table = Hashtbl.create 16 in
  List.iter
    (fun s ->
      match Hashtbl.find_opt table s.net with
      | None -> Hashtbl.add table s.net s.interval
      | Some i -> Hashtbl.replace table s.net (Mae_geom.Interval.hull i s.interval))
    spans;
  Hashtbl.fold (fun net interval acc -> { net; interval } :: acc) table []
  |> List.sort (fun a b ->
         let c = Mae_geom.Interval.compare_lo a.interval b.interval in
         if c <> 0 then c else Int.compare a.net b.net)

let density spans =
  (* Sweep the endpoints; a closed interval contributes from lo to hi
     inclusive, so starts sort before ends at equal abscissa. *)
  let events =
    List.concat_map
      (fun s ->
        let iv = s.interval in
        [ (iv.Mae_geom.Interval.lo, 1); (iv.Mae_geom.Interval.hi, -1) ])
      spans
    |> List.sort (fun (xa, ka) (xb, kb) ->
           let c = Float.compare xa xb in
           if c <> 0 then c else Int.compare kb ka)
  in
  let depth = ref 0 and best = ref 0 in
  List.iter
    (fun (_, k) ->
      depth := !depth + k;
      if !depth > !best then best := !depth)
    events;
  !best

let left_edge spans =
  let merged = merge_spans spans in
  (* track_last.(t) = right endpoint of the last interval on track t. *)
  let track_last = ref [||] in
  let used = ref 0 in
  let assignments =
    List.map
      (fun s ->
        let lo = s.interval.Mae_geom.Interval.lo in
        let hi = s.interval.Mae_geom.Interval.hi in
        let rec find t =
          if t >= !used then begin
            if !used = Array.length !track_last then begin
              let bigger = Array.make (Stdlib.max 4 (2 * !used)) Float.neg_infinity in
              Array.blit !track_last 0 bigger 0 !used;
              track_last := bigger
            end;
            incr used;
            !used - 1
          end
          else if !track_last.(t) < lo then t
          else find (t + 1)
        in
        let t = find 0 in
        !track_last.(t) <- hi;
        (s.net, t))
      merged
  in
  { track_of = assignments; tracks = !used; density = density merged;
    dropped_constraints = 0 }

type pin = { x : Mae_geom.Lambda.t; pin_net : int }

let vertical_constraints ~pitch ~top ~bottom =
  let edges = ref [] in
  List.iter
    (fun t ->
      List.iter
        (fun b ->
          if t.pin_net <> b.pin_net && Float.abs (t.x -. b.x) < pitch /. 2. then begin
            let e = (t.pin_net, b.pin_net) in
            if not (List.mem e !edges) then edges := e :: !edges
          end)
        bottom)
    top;
  List.rev !edges

(* Constrained left-edge (Hashimoto-Stevens).  Tracks fill from the top of
   the channel; a net is eligible for the current track when every net
   that must lie above it (a VCG predecessor) is already routed.  If a
   track ends up empty because all remaining nets are blocked, the VCG has
   a cycle: drop one constraint of a remaining net and continue (a real
   router would dogleg there). *)
let route_constrained ~pitch ~top ~bottom spans =
  let merged = merge_spans spans in
  let dens = density merged in
  let vcg = vertical_constraints ~pitch ~top ~bottom in
  let routed_nets = Hashtbl.create 16 in
  let is_routed net = Hashtbl.mem routed_nets net in
  let remaining = ref merged in
  let constraints = ref vcg in
  let blocked net =
    List.exists
      (fun (above, below) -> below = net && not (is_routed above))
      !constraints
  in
  let assignments = ref [] in
  let dropped = ref 0 in
  let track = ref 0 in
  while !remaining <> [] do
    (* Greedy sweep of the current track, left to right. *)
    let last_hi = ref Float.neg_infinity in
    let placed_here = ref [] in
    let leftover =
      List.filter
        (fun s ->
          let lo = s.interval.Mae_geom.Interval.lo in
          let hi = s.interval.Mae_geom.Interval.hi in
          if lo > !last_hi && not (blocked s.net) then begin
            last_hi := hi;
            placed_here := s.net :: !placed_here;
            assignments := (s.net, !track) :: !assignments;
            false
          end
          else true)
        !remaining
    in
    if !placed_here = [] then begin
      (* Every remaining net is VC-blocked: a cycle.  Unblock the first
         remaining net by dropping its incoming constraints. *)
      match leftover with
      | [] -> remaining := []
      | s :: _ ->
          let before = List.length !constraints in
          constraints :=
            List.filter (fun (_, below) -> below <> s.net) !constraints;
          dropped := !dropped + (before - List.length !constraints)
    end
    else begin
      List.iter (fun net -> Hashtbl.replace routed_nets net ()) !placed_here;
      remaining := leftover;
      incr track
    end
  done;
  { track_of = List.rev !assignments; tracks = !track; density = dens;
    dropped_constraints = !dropped }
