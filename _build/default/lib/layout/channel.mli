(** Left-edge channel routing.

    Each net crossing a routing channel occupies a horizontal interval;
    the left-edge algorithm (Hashimoto-Stevens) assigns intervals to
    tracks greedily so that non-overlapping nets {e share} tracks.  Track
    sharing is exactly what the paper's estimator ignores (its upper bound
    charges one track per net), so this router is what produces the
    "real" side of the Table 2 comparison. *)

type span = { net : int; interval : Mae_geom.Interval.t }

type routed = {
  track_of : (int * int) list;  (** (net, 0-based track index) *)
  tracks : int;  (** number of tracks used *)
  density : int;  (** lower bound: maximum interval overlap at any point *)
  dropped_constraints : int;
      (** vertical constraints a dogleg-free router had to give up on
          (cycle breaks); 0 for plain left-edge routing.  A channel with
          dropped constraints may contain wiring shorts that only a
          dogleg could fix. *)
}

val merge_spans : span list -> span list
(** Merge same-net spans into their hull: a net occupies one track segment
    per channel. *)

val left_edge : span list -> routed
(** Routes the (merged) spans.  Guarantees [density <= tracks]; for the
    pure left-edge algorithm on merged spans equality holds. *)

val density : span list -> int
(** Maximum number of spans covering a single abscissa. *)

type pin = { x : Mae_geom.Lambda.t; pin_net : int }

val vertical_constraints :
  pitch:Mae_geom.Lambda.t -> top:pin list -> bottom:pin list -> (int * int) list
(** Edges (above_net, below_net) of the vertical constraint graph: a top
    pin and a bottom pin of different nets in the same column (within half
    a [pitch]) force the top pin's net onto a higher track.  Deduplicated,
    self-edges excluded. *)

val route_constrained :
  pitch:Mae_geom.Lambda.t -> top:pin list -> bottom:pin list -> span list -> routed
(** Constrained left-edge routing (Hashimoto-Stevens): tracks are filled
    top-down; a net may only enter the current track when all its
    unrouted vertical-constraint predecessors are already placed and its
    interval does not overlap the track's previous occupant.  Vertical
    constraint cycles (which a dogleg-free router cannot satisfy) are
    broken by dropping one edge per cycle; the result therefore always
    terminates with [density <= tracks <= net count].  Track 0 is the
    topmost. *)
