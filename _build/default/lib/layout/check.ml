type violation =
  | Cell_overlap of { a : int; b : int }
  | Cell_outside_row of { device : int }
  | Cell_outside_chip of { device : int }
  | Feed_outside_row of { net : int; row : int }
  | Channel_overlaps_row of { channel : int; row : int }
  | Missing_device of { device : int }
  | Duplicate_device of { device : int }

let pp_violation ppf = function
  | Cell_overlap { a; b } -> Format.fprintf ppf "cells %d and %d overlap" a b
  | Cell_outside_row { device } ->
      Format.fprintf ppf "cell %d extends outside its row" device
  | Cell_outside_chip { device } ->
      Format.fprintf ppf "cell %d extends outside the chip" device
  | Feed_outside_row { net; row } ->
      Format.fprintf ppf "feed-through of net %d extends outside row %d" net row
  | Channel_overlaps_row { channel; row } ->
      Format.fprintf ppf "channel %d overlaps row %d" channel row
  | Missing_device { device } -> Format.fprintf ppf "device %d is not placed" device
  | Duplicate_device { device } ->
      Format.fprintf ppf "device %d is placed twice" device

(* [inside outer inner] with a tolerance for floating-point compaction. *)
let inside (outer : Mae_geom.Rect.t) (inner : Mae_geom.Rect.t) =
  let eps = 1e-6 in
  inner.x >= outer.x -. eps
  && inner.y >= outer.y -. eps
  && inner.x +. inner.w <= outer.x +. outer.w +. eps
  && inner.y +. inner.h <= outer.y +. outer.h +. eps

let verify ~device_count (g : Geometry.t) =
  let violations = ref [] in
  let add v = violations := v :: !violations in
  let cells = Geometry.cells g in
  (* pairwise overlap within the same row band (cells in different rows
     cannot overlap by construction, but check globally anyway) *)
  let rec pairwise = function
    | [] -> ()
    | (da, ra) :: rest ->
        List.iter
          (fun (db, rb) ->
            if Mae_geom.Rect.intersects ra rb then add (Cell_overlap { a = da; b = db }))
          rest;
        pairwise rest
  in
  pairwise cells;
  (* containment *)
  let row_of_rect (r : Mae_geom.Rect.t) =
    let center = Mae_geom.Rect.center r in
    let found = ref None in
    Array.iteri
      (fun i band ->
        if !found = None && Mae_geom.Rect.contains_point band center then
          found := Some i)
      g.Geometry.row_rects;
    !found
  in
  List.iter
    (fun (device, rect) ->
      if not (inside g.Geometry.bounding rect) then
        add (Cell_outside_chip { device });
      match row_of_rect rect with
      | None -> add (Cell_outside_row { device })
      | Some row ->
          if not (inside g.Geometry.row_rects.(row) rect) then
            add (Cell_outside_row { device }))
    cells;
  List.iter
    (fun box ->
      match box with
      | Geometry.Feed_box { net; row; rect } ->
          if not (inside g.Geometry.row_rects.(row) rect) then
            add (Feed_outside_row { net; row })
      | Geometry.Channel_box { index; rect; _ } ->
          Array.iteri
            (fun row band ->
              if Mae_geom.Rect.intersects rect band then
                add (Channel_overlaps_row { channel = index; row }))
            g.Geometry.row_rects
      | Geometry.Cell_box _ -> ())
    g.Geometry.boxes;
  (* completeness *)
  let seen = Array.make device_count 0 in
  List.iter
    (fun (device, _) ->
      if device >= 0 && device < device_count then
        seen.(device) <- seen.(device) + 1)
    cells;
  Array.iteri
    (fun device count ->
      if count = 0 then add (Missing_device { device })
      else if count > 1 then add (Duplicate_device { device }))
    seen;
  List.rev !violations

let is_legal ~device_count g = verify ~device_count g = []
