(** Geometric legality checks on an extracted layout.

    A layout produced by the row engine must satisfy basic design rules:
    no two cells overlap, every cell sits inside its row band and the chip
    bounding box, channels do not overlap rows, and every device appears
    exactly once.  These checks property-test the engine and guard against
    regressions in compaction or feed-through insertion. *)

type violation =
  | Cell_overlap of { a : int; b : int }  (** device indices *)
  | Cell_outside_row of { device : int }
  | Cell_outside_chip of { device : int }
  | Feed_outside_row of { net : int; row : int }
  | Channel_overlaps_row of { channel : int; row : int }
  | Missing_device of { device : int }
  | Duplicate_device of { device : int }

val pp_violation : Format.formatter -> violation -> unit

val verify : device_count:int -> Geometry.t -> violation list
(** All violations found; the empty list means the layout is legal. *)

val is_legal : device_count:int -> Geometry.t -> bool
