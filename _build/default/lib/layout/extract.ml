type report = {
  components : int;
  opens : int list;
  shorts : (int * int) list;
}

let eps = 1e-6

(* classic union-find with path compression *)
let find parent i =
  let rec go i = if parent.(i) = i then i else go parent.(i) in
  let root = go i in
  let rec compress i =
    if parent.(i) <> root then begin
      let next = parent.(i) in
      parent.(i) <- root;
      compress next
    end
  in
  compress i;
  root

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then parent.(ra) <- rb

let connectivity (w : Wiring.t) =
  let verticals = Array.of_list w.verticals in
  let horizontals = Array.of_list w.horizontals in
  let nv = Array.length verticals in
  let nh = Array.length horizontals in
  let parent = Array.init (nv + nh) Fun.id in
  (* vertical-vertical: same column, overlapping y *)
  for i = 0 to nv - 1 do
    for j = i + 1 to nv - 1 do
      let a = verticals.(i) and b = verticals.(j) in
      if
        Float.abs (a.Wiring.x -. b.Wiring.x) < eps
        && a.y_lo <= b.y_hi +. eps
        && b.y_lo <= a.y_hi +. eps
      then union parent i j
    done
  done;
  (* horizontal-horizontal: same track y, overlapping x *)
  for i = 0 to nh - 1 do
    for j = i + 1 to nh - 1 do
      let a = horizontals.(i) and b = horizontals.(j) in
      if
        Float.abs (a.Wiring.y -. b.Wiring.y) < eps
        && a.x_lo <= b.x_hi +. eps
        && b.x_lo <= a.x_hi +. eps
      then union parent (nv + i) (nv + j)
    done
  done;
  (* vertical-horizontal: only through an explicit via *)
  List.iter
    (fun (v : Wiring.via) ->
      let vert_hits = ref [] and horiz_hits = ref [] in
      Array.iteri
        (fun i (a : Wiring.vertical) ->
          if
            Float.abs (a.x -. v.vx) < eps
            && a.y_lo -. eps <= v.vy
            && v.vy <= a.y_hi +. eps
          then vert_hits := i :: !vert_hits)
        verticals;
      Array.iteri
        (fun i (a : Wiring.horizontal) ->
          if
            Float.abs (a.y -. v.vy) < eps
            && a.x_lo -. eps <= v.vx
            && v.vx <= a.x_hi +. eps
          then horiz_hits := (nv + i) :: !horiz_hits)
        horizontals;
      List.iter
        (fun a -> List.iter (fun b -> union parent a b) !horiz_hits)
        !vert_hits)
    w.vias;
  Array.init (nv + nh) (fun i -> find parent i)

let lvs (w : Wiring.t) (circuit : Mae_netlist.Circuit.t) =
  let roots = connectivity w in
  let verticals = Array.of_list w.verticals in
  (* pins present in the wiring, with their component and source net *)
  let pin_entries = ref [] in
  Array.iteri
    (fun i (v : Wiring.vertical) ->
      match v.attached with
      | Wiring.Pin _ -> pin_entries := (roots.(i), v.v_net) :: !pin_entries
      | Wiring.Feed_wire _ | Wiring.Branch -> ())
    verticals;
  let entries = !pin_entries in
  (* opens: a net whose pins span several components *)
  let opens = ref [] in
  for net = 0 to Mae_netlist.Circuit.net_count circuit - 1 do
    if Array.length (Mae_netlist.Circuit.devices_on_net circuit net) >= 2 then begin
      let comps =
        List.filter_map
          (fun (root, n) -> if n = net then Some root else None)
          entries
        |> List.sort_uniq Int.compare
      in
      match comps with
      | [] | [ _ ] -> ()
      | _ :: _ :: _ -> opens := net :: !opens
    end
  done;
  (* shorts: a component holding pins of two different nets *)
  let by_component = Hashtbl.create 64 in
  List.iter
    (fun (root, net) ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt by_component root) in
      if not (List.mem net existing) then
        Hashtbl.replace by_component root (net :: existing))
    entries;
  let shorts = ref [] in
  Hashtbl.iter
    (fun _ nets ->
      match List.sort_uniq Int.compare nets with
      | a :: (b :: _ as _rest) -> shorts := (a, b) :: !shorts
      | [ _ ] | [] -> ())
    by_component;
  let components =
    List.map fst entries |> List.sort_uniq Int.compare |> List.length
  in
  {
    components;
    opens = List.sort_uniq Int.compare !opens;
    shorts = List.sort_uniq Stdlib.compare !shorts;
  }

let clean r = r.opens = [] && r.shorts = []

let pp_report ppf r =
  Format.fprintf ppf "%d components, %d opens, %d shorts" r.components
    (List.length r.opens) (List.length r.shorts)
