(** LVS-lite: geometric connectivity extraction and netlist comparison.

    Reconstructs electrical connectivity purely from the wire geometry —
    two vertical (poly) segments touch when they overlap at the same x;
    a vertical connects to a horizontal (metal) trunk only through an
    explicit via — and compares the result against the source netlist:
    every multi-pin net must come out as one connected component (no
    opens) and no component may join pins of different nets (no shorts).
    The net ids carried by the wires are used for {e reporting} only,
    never for building connectivity. *)

type report = {
  components : int;  (** extracted connected components holding pins *)
  opens : int list;  (** nets whose pins ended up in several components *)
  shorts : (int * int) list;  (** net pairs joined by one component *)
}

val connectivity : Wiring.t -> int array
(** Union-find result: an array over wire elements (verticals first, then
    horizontals, in list order) mapping each element to its component
    representative. *)

val lvs : Wiring.t -> Mae_netlist.Circuit.t -> report
(** Compare extracted connectivity to the circuit.  Nets with fewer than
    two device pins are skipped (nothing to connect). *)

val clean : report -> bool

val pp_report : Format.formatter -> report -> unit
