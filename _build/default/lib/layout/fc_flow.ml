let default_rows circuit process =
  let stats = Mae_netlist.Stats.compute circuit process in
  if stats.device_count = 0 then invalid_arg "Fc_flow: circuit has no devices";
  let total_width =
    Float.of_int stats.device_count *. stats.average_width
  in
  let target = Float.sqrt (total_width /. Float.max 1. stats.average_height) in
  Stdlib.max 1 (Float.to_int (Float.round target))

(* Hand layout routes short connections in poly/diffusion: 2-lambda wire
   plus 2-lambda spacing under Mead-Conway rules; unrelated neighbouring
   transistors keep the 2-lambda poly spacing. *)
let hand_route_pitch = 4.

let hand_spacing = 2.

let options ?(schedule = Anneal.default_schedule) (process : Mae_tech.Process.t) =
  ignore process;
  {
    Row_layout.track_pitch = hand_route_pitch;
    (* a wire crossing a transistor row needs one wire pitch *)
    feed_width = hand_route_pitch;
    spacing = hand_spacing;
    diffusion_sharing = true;
    pin_spread = false;
    (* a designer doglegs freely and runs most wiring over the devices in
       poly and metal; only the long nets need true channel tracks *)
    vc_overhead = false;
    over_cell_fraction = 0.7;
    abut_adjacent_pairs = true;
    trunk_spans = false;
    schedule;
  }

let run ?schedule ?row_candidates ~rng circuit process =
  let widths = Mae_netlist.Stats.device_widths circuit process in
  let kinds_height =
    Array.map
      (fun (d : Mae_netlist.Device.t) ->
        (Mae_tech.Process.find_device_exn process d.kind).height)
      circuit.Mae_netlist.Circuit.devices
  in
  let candidates =
    match row_candidates with
    | Some rows -> rows
    | None ->
        let base = default_rows circuit process in
        List.sort_uniq Int.compare
          (List.filter (fun r -> r >= 1) [ base - 1; base; base + 1 ])
  in
  let candidates = if candidates = [] then [ 1 ] else candidates in
  let layouts =
    List.map
      (fun rows ->
        let rng = Mae_prob.Rng.split rng in
        Row_layout.run ~rng
          ~options:(options ?schedule process)
          ~rows
          ~width_of:(fun d -> widths.(d))
          ~height_of:(fun d -> kinds_height.(d))
          circuit)
      candidates
  in
  match layouts with
  | [] -> invalid_arg "Fc_flow.run: no row candidates"
  | first :: rest ->
      List.fold_left
        (fun best (l : Row_layout.t) -> if l.area < best.Row_layout.area then l else best)
        first rest

let geometry circuit process layout =
  let widths = Mae_netlist.Stats.device_widths circuit process in
  let heights =
    Array.map
      (fun (d : Mae_netlist.Device.t) ->
        (Mae_tech.Process.find_device_exn process d.kind).height)
      circuit.Mae_netlist.Circuit.devices
  in
  Geometry.of_layout
    ~width_of:(fun d -> widths.(d))
    ~height_of:(fun d -> heights.(d))
    ~track_pitch:hand_route_pitch ~feed_width:hand_route_pitch layout
