(** Full-custom layout synthesis: the manual-layout stand-in.

    The paper compares its full-custom estimates against hand-drawn
    Newkirk & Mathews layouts, which we do not have; this flow produces an
    honest substitute by laying individual transistors out in rows with
    diffusion sharing (adjacent transistors that share a net abut), trying
    several row counts and keeping the smallest area — mimicking how a
    designer compacts a small module. *)

val default_rows : Mae_netlist.Circuit.t -> Mae_tech.Process.t -> int
(** Row count that roughly squares the module:
    sqrt(total device width / mean device height), at least 1.  Raises
    {!Mae_netlist.Stats.Unknown_kind}. *)

val run :
  ?schedule:Anneal.schedule ->
  ?row_candidates:int list ->
  rng:Mae_prob.Rng.t ->
  Mae_netlist.Circuit.t ->
  Mae_tech.Process.t ->
  Row_layout.t
(** Lays out with each candidate row count (default: the square target
    and its neighbours) and returns the smallest-area result.  Raises
    {!Mae_netlist.Stats.Unknown_kind} and [Invalid_argument] on an empty
    circuit. *)

val geometry :
  Mae_netlist.Circuit.t -> Mae_tech.Process.t -> Row_layout.t -> Geometry.t
(** Extract the concrete box geometry of a layout this flow produced.
    Raises {!Mae_netlist.Stats.Unknown_kind}. *)
