type box =
  | Cell_box of { device : int; rect : Mae_geom.Rect.t }
  | Feed_box of { net : int; row : int; rect : Mae_geom.Rect.t }
  | Channel_box of { index : int; tracks : int; rect : Mae_geom.Rect.t }

type t = {
  boxes : box list;
  bounding : Mae_geom.Rect.t;
  row_rects : Mae_geom.Rect.t array;
}

let of_layout ~width_of ~height_of ~track_pitch ~feed_width
    (layout : Row_layout.t) =
  let rows = layout.rows in
  let width = Float.max layout.width 1e-9 in
  (* Stack from the top: channel 0, row 0, channel 1, row 1, ... channel n.
     The cursor tracks the top edge of the next band; y grows upward. *)
  let cursor = ref layout.height in
  let boxes = ref [] in
  let row_rects = Array.make rows (Mae_geom.Rect.make ~x:0. ~y:0. ~w:1. ~h:0.) in
  let emit_channel c =
    let tracks = layout.channel_tracks.(c) in
    if tracks > 0 then begin
      let h = Float.of_int tracks *. track_pitch in
      cursor := !cursor -. h;
      boxes :=
        Channel_box
          { index = c; tracks; rect = Mae_geom.Rect.make ~x:0. ~y:!cursor ~w:width ~h }
        :: !boxes
    end
  in
  for r = 0 to rows - 1 do
    emit_channel r;
    let row_h = layout.row_heights.(r) in
    cursor := !cursor -. row_h;
    let row_y = !cursor in
    row_rects.(r) <- Mae_geom.Rect.make ~x:0. ~y:row_y ~w:width ~h:row_h;
    Array.iter
      (fun d ->
        boxes :=
          Cell_box
            {
              device = d;
              rect =
                Mae_geom.Rect.make ~x:layout.device_x.(d) ~y:row_y
                  ~w:(width_of d) ~h:(height_of d);
            }
          :: !boxes)
      layout.row_members.(r);
    Array.iter
      (fun (net, x_center) ->
        boxes :=
          Feed_box
            {
              net;
              row = r;
              rect =
                Mae_geom.Rect.make
                  ~x:(x_center -. (feed_width /. 2.))
                  ~y:row_y ~w:feed_width ~h:row_h;
            }
          :: !boxes)
      layout.feed_throughs.(r)
  done;
  emit_channel rows;
  {
    boxes = List.rev !boxes;
    bounding = Mae_geom.Rect.make ~x:0. ~y:0. ~w:width ~h:layout.height;
    row_rects;
  }

let cells t =
  List.filter_map
    (function
      | Cell_box { device; rect } -> Some (device, rect)
      | Feed_box _ | Channel_box _ -> None)
    t.boxes
  |> List.sort (fun (a, _) (b, _) -> Int.compare a b)

let area t = Mae_geom.Rect.area t.bounding

let to_text t =
  let buf = Buffer.create 512 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  let rect (r : Mae_geom.Rect.t) = Printf.sprintf "%g %g %g %g" r.x r.y r.w r.h in
  List.iter
    (fun box ->
      match box with
      | Cell_box { device; rect = r } -> addf "cell %d %s\n" device (rect r)
      | Feed_box { net; row; rect = r } -> addf "feed %d %d %s\n" net row (rect r)
      | Channel_box { index; tracks; rect = r } ->
          addf "channel %d %d %s\n" index tracks (rect r))
    t.boxes;
  addf "bbox %s\n" (rect t.bounding);
  Buffer.contents buf
