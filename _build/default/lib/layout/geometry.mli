(** Concrete rectangles for a finished row layout.

    Turns the abstract {!Row_layout.t} result into placed boxes — one per
    cell, feed-through and routing channel — in a single chip coordinate
    system (origin at the bottom-left, rows stacked top to bottom in row
    order).  This is what a downstream editor or checker would consume,
    and what {!Check} verifies. *)

type box =
  | Cell_box of { device : int; rect : Mae_geom.Rect.t }
  | Feed_box of { net : int; row : int; rect : Mae_geom.Rect.t }
  | Channel_box of { index : int; tracks : int; rect : Mae_geom.Rect.t }
      (** only channels with at least one track appear *)

type t = {
  boxes : box list;
  bounding : Mae_geom.Rect.t;
  row_rects : Mae_geom.Rect.t array;  (** full-width band of each row *)
}

val of_layout :
  width_of:(int -> Mae_geom.Lambda.t) ->
  height_of:(int -> Mae_geom.Lambda.t) ->
  track_pitch:Mae_geom.Lambda.t ->
  feed_width:Mae_geom.Lambda.t ->
  Row_layout.t ->
  t
(** Rebuild the geometry of a layout.  The accessors must be the ones the
    layout was produced with. *)

val cells : t -> (int * Mae_geom.Rect.t) list
(** (device index, rectangle) pairs, device index ascending. *)

val area : t -> Mae_geom.Lambda.area
(** Area of the bounding box (equals the layout's area up to round-off). *)

val to_text : t -> string
(** A line-oriented dump ("cell 3 12.0 40.0 8.0 40.0" ...), stable and
    diff-friendly; one line per box plus a final [bbox] line. *)
