type edge = Top | Bottom | Left | Right

type placement = {
  port : string;
  net : int;
  edge : edge;
  offset : float;
}

let edge_length (g : Geometry.t) = function
  | Top | Bottom -> Mae_geom.Rect.width g.Geometry.bounding
  | Left | Right -> Mae_geom.Rect.height g.Geometry.bounding

let clockwise_next = function
  | Top -> Right
  | Right -> Bottom
  | Bottom -> Left
  | Left -> Top

(* desired edge and offset for a point inside the box: project onto the
   nearest boundary edge *)
let nearest_edge (g : Geometry.t) (p : Mae_geom.Point.t) =
  let b = g.Geometry.bounding in
  let w = Mae_geom.Rect.width b and h = Mae_geom.Rect.height b in
  let to_left = p.Mae_geom.Point.x in
  let to_right = w -. p.Mae_geom.Point.x in
  let to_bottom = p.Mae_geom.Point.y in
  let to_top = h -. p.Mae_geom.Point.y in
  let candidates =
    [
      (to_top, Top, p.Mae_geom.Point.x);
      (to_bottom, Bottom, p.Mae_geom.Point.x);
      (to_left, Left, p.Mae_geom.Point.y);
      (to_right, Right, p.Mae_geom.Point.y);
    ]
  in
  let _, edge, offset =
    List.fold_left
      (fun ((bd, _, _) as best) ((d, _, _) as c) -> if d < bd then c else best)
      (Float.infinity, Top, 0.) candidates
  in
  (edge, offset)

let place ~port_pitch (circuit : Mae_netlist.Circuit.t)
    (layout : Row_layout.t) (g : Geometry.t) =
  if port_pitch <= 0. then Error "port pitch must be positive"
  else begin
    let perimeter =
      2. *. (edge_length g Top +. edge_length g Left)
    in
    let ports = Array.to_list circuit.ports in
    if Float.of_int (List.length ports) *. port_pitch > perimeter then
      Error "the boundary cannot hold every port at this pitch"
    else begin
      (* net centre of gravity from the placed devices; ports on dangling
         nets aim at the chip centre *)
      let centroid net =
        let members = Mae_netlist.Circuit.devices_on_net circuit net in
        match Array.length members with
        | 0 -> Mae_geom.Rect.center g.Geometry.bounding
        | n ->
            let sx = ref 0. and sy = ref 0. in
            Array.iter
              (fun d ->
                sx := !sx +. layout.Row_layout.device_x.(d);
                sy :=
                  !sy
                  +. g.Geometry.row_rects.(layout.Row_layout.device_row.(d))
                       .Mae_geom.Rect.y)
              members;
            Mae_geom.Point.make
              ~x:(!sx /. Float.of_int n)
              ~y:(!sy /. Float.of_int n)
      in
      let desired =
        List.map
          (fun (p : Mae_netlist.Port.t) ->
            let edge, offset = nearest_edge g (centroid p.net) in
            (p.name, p.net, edge, offset))
          ports
      in
      (* per-edge legalization at the pitch; overflow spills clockwise *)
      let pending = Hashtbl.create 4 in
      List.iter
        (fun (name, net, edge, offset) ->
          let existing =
            Option.value ~default:[] (Hashtbl.find_opt pending edge)
          in
          Hashtbl.replace pending edge ((name, net, offset) :: existing))
        desired;
      let placements = ref [] in
      let rec legalize edge budget =
        if budget = 0 then ()
        else begin
          let entries =
            Option.value ~default:[] (Hashtbl.find_opt pending edge)
            |> List.sort (fun (_, _, a) (_, _, b) -> Float.compare a b)
          in
          Hashtbl.remove pending edge;
          let length = edge_length g edge in
          let capacity =
            Stdlib.max 0 (Float.to_int (Float.floor (length /. port_pitch)))
          in
          let keep, spill =
            List.filteri (fun i _ -> i < capacity) entries
            |> fun kept ->
            (kept, List.filteri (fun i _ -> i >= capacity) entries)
          in
          (* evenly respace the kept ports along the edge, preserving
             their order but guaranteeing the pitch *)
          List.iteri
            (fun i (name, net, _) ->
              let offset =
                Float.min
                  (length -. (port_pitch /. 2.))
                  ((Float.of_int i +. 0.5) *. port_pitch)
              in
              placements := { port = name; net; edge; offset } :: !placements)
            keep;
          if spill <> [] then begin
            let next = clockwise_next edge in
            let existing =
              Option.value ~default:[] (Hashtbl.find_opt pending next)
            in
            Hashtbl.replace pending next (spill @ existing);
            legalize next (budget - 1)
          end
        end
      in
      List.iter (fun e -> legalize e 8) [ Top; Right; Bottom; Left ];
      (* anything still pending (pathological spills) fails loudly *)
      if Hashtbl.length pending > 0 then
        Error "port legalization did not converge"
      else Ok (List.rev !placements)
    end
  end

let fits_one_edge (g : Geometry.t) ~port_count ~port_pitch =
  let longer = Float.max (edge_length g Top) (edge_length g Left) in
  Float.of_int port_count *. port_pitch <= longer

let min_spacing_ok ~port_pitch placements =
  let by_edge = Hashtbl.create 4 in
  List.iter
    (fun p ->
      let existing = Option.value ~default:[] (Hashtbl.find_opt by_edge p.edge) in
      Hashtbl.replace by_edge p.edge (p.offset :: existing))
    placements;
  Hashtbl.fold
    (fun _ offsets acc ->
      acc
      &&
      let sorted = List.sort Float.compare offsets in
      let rec check = function
        | a :: (b :: _ as rest) ->
            b -. a >= port_pitch -. 1e-6 && check rest
        | [ _ ] | [] -> true
      in
      check sorted)
    by_edge true

let to_rects ~size (g : Geometry.t) placements =
  let b = g.Geometry.bounding in
  let w = Mae_geom.Rect.width b and h = Mae_geom.Rect.height b in
  List.map
    (fun p ->
      let cx, cy =
        match p.edge with
        | Top -> (p.offset, h)
        | Bottom -> (p.offset, 0.)
        | Left -> (0., p.offset)
        | Right -> (w, p.offset)
      in
      ( p.port,
        Mae_geom.Rect.make
          ~x:(cx -. (size /. 2.))
          ~y:(cy -. (size /. 2.))
          ~w:size ~h:size ))
    placements
