(** Module I/O port placement along the boundary.

    Section 5's control criterion is that "all input and output ports must
    fit along any one of the four layout edges or at least along one of
    the longer edges"; this module realizes ports physically: each port
    lands on the boundary edge nearest to its net's centre of gravity,
    then per-edge legalization enforces the port pitch, spilling clockwise
    to the next edge when an edge is full. *)

type edge = Top | Bottom | Left | Right

type placement = {
  port : string;
  net : int;
  edge : edge;
  offset : float;  (** distance along the edge from its clockwise start *)
}

val place :
  port_pitch:float ->
  Mae_netlist.Circuit.t ->
  Row_layout.t ->
  Geometry.t ->
  (placement list, string) result
(** One placement per circuit port.  Errors when the perimeter cannot hold
    all ports at the given pitch. *)

val fits_one_edge : Geometry.t -> port_count:int -> port_pitch:float -> bool
(** The section 5 criterion against the real layout: does the longer edge
    hold every port? *)

val min_spacing_ok : port_pitch:float -> placement list -> bool
(** Placements on a common edge are at least a pitch apart (exposed for
    tests). *)

val to_rects : size:float -> Geometry.t -> placement list -> (string * Mae_geom.Rect.t) list
(** Square pads of [size] straddling the boundary, for drawing. *)
