module Svg = Mae_report.Svg

let quad (r : Mae_geom.Rect.t) = (r.x, r.y, r.w, r.h)

let trunk_style = { Svg.fill = "#c0392b"; stroke = "#c0392b"; opacity = 0.9 }

let branch_style = { Svg.fill = "#27ae60"; stroke = "#27ae60"; opacity = 0.9 }

let via_style = { Svg.fill = "#1a1a1a"; stroke = "#1a1a1a"; opacity = 1.0 }

let wiring_items (w : Wiring.t) =
  let thickness = 0.8 in
  List.map
    (fun (h : Wiring.horizontal) ->
      { Svg.rect = (h.x_lo, h.y -. (thickness /. 2.), h.x_hi -. h.x_lo, thickness);
        style = trunk_style; label = None })
    w.Wiring.horizontals
  @ List.map
      (fun (v : Wiring.vertical) ->
        { Svg.rect = (v.x -. (thickness /. 2.), v.y_lo, thickness, v.y_hi -. v.y_lo);
          style = branch_style; label = None })
      w.Wiring.verticals
  @ List.map
      (fun (v : Wiring.via) ->
        { Svg.rect = (v.vx -. 1., v.vy -. 1., 2., 2.); style = via_style;
          label = None })
      w.Wiring.vias

let port_style = { Svg.fill = "#8e44ad"; stroke = "#4a235a"; opacity = 1.0 }

let svg_of_geometry ?pixel_width ?wiring ?ports (g : Geometry.t) =
  let box_item = function
    | Geometry.Channel_box { rect; tracks; index } ->
        {
          Svg.rect = quad rect;
          style = Svg.channel_style;
          label = Some (Printf.sprintf "ch%d:%d" index tracks);
        }
    | Geometry.Cell_box { device; rect } ->
        {
          Svg.rect = quad rect;
          style = Svg.cell_style;
          label = Some (string_of_int device);
        }
    | Geometry.Feed_box { rect; _ } ->
        { Svg.rect = quad rect; style = Svg.feed_style; label = None }
  in
  (* channels first so cells draw over them *)
  let channels, others =
    List.partition
      (function Geometry.Channel_box _ -> true | _ -> false)
      g.Geometry.boxes
  in
  let wires = match wiring with None -> [] | Some w -> wiring_items w in
  let port_items =
    match ports with
    | None -> []
    | Some placements ->
        let pad =
          Float.max 3.
            (Mae_geom.Rect.width g.Geometry.bounding /. 60.)
        in
        List.map
          (fun (name, r) ->
            { Svg.rect = quad r; style = port_style; label = Some name })
          (Ports.to_rects ~size:pad g placements)
  in
  let items =
    List.map box_item channels
    @ List.map box_item others
    @ wires
    @ port_items
    @ [ { Svg.rect = quad g.Geometry.bounding; style = Svg.outline_style; label = None } ]
  in
  Svg.render ?pixel_width
    ~width:(Mae_geom.Rect.width g.Geometry.bounding)
    ~height:(Mae_geom.Rect.height g.Geometry.bounding)
    items
