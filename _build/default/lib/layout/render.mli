(** SVG rendering of extracted layout geometry. *)

val svg_of_geometry :
  ?pixel_width:int ->
  ?wiring:Wiring.t ->
  ?ports:Ports.placement list ->
  Geometry.t ->
  string
(** Cells in blue (labelled with their device index), feed-throughs in
    amber, routed channels as pale stripes, the chip outline on top.
    When [wiring] is given, trunks are drawn as red horizontal wires,
    branches and pin stubs as green verticals, and vias as small dark
    squares.  When [ports] is given, labelled pads straddle the
    boundary. *)
