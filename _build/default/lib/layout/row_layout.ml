type options = {
  track_pitch : Mae_geom.Lambda.t;
  feed_width : Mae_geom.Lambda.t;
  spacing : Mae_geom.Lambda.t;
  diffusion_sharing : bool;
  pin_spread : bool;
  vc_overhead : bool;
  over_cell_fraction : float;
  abut_adjacent_pairs : bool;
  trunk_spans : bool;
  schedule : Anneal.schedule;
}

type t = {
  rows : int;
  row_members : int array array;
  device_x : Mae_geom.Lambda.t array;
  device_row : int array;
  row_heights : Mae_geom.Lambda.t array;
  row_lengths : Mae_geom.Lambda.t array;
  feed_throughs : (int * Mae_geom.Lambda.t) array array;
  feed_through_count : int;
  channel_tracks : int array;
  channel_routes : Channel.routed array;
  channel_spans : Channel.span list array;
  total_tracks : int;
  width : Mae_geom.Lambda.t;
  height : Mae_geom.Lambda.t;
  area : Mae_geom.Lambda.area;
  aspect : Mae_geom.Aspect.t;
  hpwl : float;
}

(* Breadth-first order over the device/net adjacency graph; devices placed
   consecutively tend to share nets, giving the annealer a sane start. *)
let bfs_order circuit =
  let nd = Mae_netlist.Circuit.device_count circuit in
  let visited = Array.make nd false in
  let order = ref [] in
  let queue = Queue.create () in
  let visit d =
    if not visited.(d) then begin
      visited.(d) <- true;
      Queue.add d queue
    end
  in
  for seed = 0 to nd - 1 do
    visit seed;
    while not (Queue.is_empty queue) do
      let d = Queue.take queue in
      order := d :: !order;
      List.iter
        (fun net ->
          Array.iter visit (Mae_netlist.Circuit.devices_on_net circuit net))
        (Mae_netlist.Circuit.nets_of_device circuit d)
    done
  done;
  List.rev !order

(* An element of a compacted row: a placed device or an inserted
   feed-through wire for a net. *)
type element = Cell of int | Feed of int

let share_net circuit a b =
  let nets_a = Mae_netlist.Circuit.nets_of_device circuit a in
  let nets_b = Mae_netlist.Circuit.nets_of_device circuit b in
  List.exists (fun n -> List.mem n nets_b) nets_a

(* Left-edge x of every element in the row, plus the row length. *)
let compact ~options ~circuit ~width_of elements =
  let element_width = function
    | Cell d -> width_of d
    | Feed _ -> options.feed_width
  in
  let gap prev cur =
    match (prev, cur) with
    | Some (Cell a), Cell b
      when options.diffusion_sharing && share_net circuit a b ->
        0.
    | Some _, _ -> options.spacing
    | None, _ -> 0.
  in
  let xs = ref [] and cursor = ref 0. and prev = ref None in
  List.iter
    (fun e ->
      cursor := !cursor +. gap !prev e;
      xs := (e, !cursor) :: !xs;
      cursor := !cursor +. element_width e;
      prev := Some e)
    elements;
  (List.rev !xs, !cursor)

let run ~rng ~options ~rows ~width_of ~height_of circuit =
  if rows < 1 then invalid_arg "Row_layout.run: rows < 1";
  if options.over_cell_fraction < 0. || options.over_cell_fraction >= 1. then
    invalid_arg "Row_layout.run: over_cell_fraction outside [0, 1)";
  let nd = Mae_netlist.Circuit.device_count circuit in
  if nd = 0 then invalid_arg "Row_layout.run: circuit has no devices";
  let per_row = (nd + rows - 1) / rows in
  let cols = per_row + 2 in
  let grid = Array.make_matrix rows cols (-1) in
  let dev_row = Array.make nd 0 in
  let dev_col = Array.make nd 0 in
  List.iteri
    (fun i d ->
      let r = i / per_row and c = i mod per_row in
      grid.(r).(c) <- d;
      dev_row.(d) <- r;
      dev_col.(d) <- c)
    (bfs_order circuit);
  (* Annealing geometry: a uniform slot pitch approximates real positions;
     only relative distances matter for the HPWL objective. *)
  let mean_width =
    let total = ref 0. in
    for d = 0 to nd - 1 do total := !total +. width_of d done;
    !total /. Float.of_int nd
  in
  let mean_height =
    let total = ref 0. in
    for d = 0 to nd - 1 do total := !total +. height_of d done;
    !total /. Float.of_int nd
  in
  let pitch_x = mean_width +. options.spacing in
  let pitch_y = mean_height +. (4. *. options.track_pitch) in
  let x_of d = (Float.of_int dev_col.(d) +. 0.5) *. pitch_x in
  let y_of d = Float.of_int dev_row.(d) *. pitch_y in
  let hpwl_of_nets nets =
    List.fold_left
      (fun acc net -> acc +. Wirelength.net_hpwl circuit ~net ~x:x_of ~y:y_of)
      0. nets
  in
  let swap_slots d (r1, c1) other (r2, c2) =
    grid.(r1).(c1) <- other;
    grid.(r2).(c2) <- d;
    dev_row.(d) <- r2;
    dev_col.(d) <- c2;
    if other >= 0 then begin
      dev_row.(other) <- r1;
      dev_col.(other) <- c1
    end
  in
  let propose rng =
    let d = Mae_prob.Rng.int rng nd in
    let r2 = Mae_prob.Rng.int rng rows in
    let c2 = Mae_prob.Rng.int rng cols in
    let r1 = dev_row.(d) and c1 = dev_col.(d) in
    if r1 = r2 && c1 = c2 then Some (0., fun () -> ())
    else begin
      let other = grid.(r2).(c2) in
      let affected =
        Wirelength.nets_of_devices circuit
          (if other >= 0 then [ d; other ] else [ d ])
      in
      let before = hpwl_of_nets affected in
      swap_slots d (r1, c1) other (r2, c2);
      let after = hpwl_of_nets affected in
      let undo () = swap_slots d (r2, c2) other (r1, c1) in
      Some (after -. before, undo)
    end
  in
  let initial_cost = Wirelength.total_hpwl circuit ~x:x_of ~y:y_of in
  let (_ : float) =
    Anneal.run ~rng ~schedule:options.schedule ~initial_cost ~propose
  in
  (* Row contents in slot order. *)
  let row_device_list r =
    Array.to_list grid.(r) |> List.filter (fun d -> d >= 0)
  in
  let provisional =
    Array.init rows (fun r ->
        compact ~options ~circuit ~width_of
          (List.map (fun d -> Cell d) (row_device_list r)))
  in
  let provisional_center = Array.make nd 0. in
  Array.iter
    (fun (xs, _) ->
      List.iter
        (fun (e, x) ->
          match e with
          | Cell d -> provisional_center.(d) <- x +. (width_of d /. 2.)
          | Feed _ -> ())
        xs)
    provisional;
  (* Which rows hold pins of each net, and where feed-throughs must go:
     every row strictly inside the net's span that has no pin of the net
     must be crossed by a feed-through wire. *)
  let net_count = Mae_netlist.Circuit.net_count circuit in
  let pin_rows = Array.make net_count [] in
  for net = 0 to net_count - 1 do
    let members = Mae_netlist.Circuit.devices_on_net circuit net in
    pin_rows.(net) <-
      Array.to_list members
      |> List.map (fun d -> dev_row.(d))
      |> List.sort_uniq Int.compare
  done;
  let feeds_per_row = Array.make rows [] in
  for net = 0 to net_count - 1 do
    match pin_rows.(net) with
    | [] | [ _ ] -> ()
    | (rmin :: _) as occupied ->
        let rmax = List.fold_left Stdlib.max rmin occupied in
        let members = Mae_netlist.Circuit.devices_on_net circuit net in
        let desired_x =
          Array.fold_left (fun acc d -> acc +. provisional_center.(d)) 0. members
          /. Float.of_int (Array.length members)
        in
        for r = rmin + 1 to rmax - 1 do
          if not (List.mem r occupied) then
            feeds_per_row.(r) <- (net, desired_x) :: feeds_per_row.(r)
        done
  done;
  (* Insert feed-throughs into each row at their desired position, then
     recompact with real widths. *)
  let final_rows =
    Array.init rows (fun r ->
        let cells =
          List.map
            (fun d -> (Cell d, provisional_center.(d)))
            (row_device_list r)
        in
        let feeds =
          List.map (fun (net, x) -> (Feed net, x)) feeds_per_row.(r)
        in
        let ordered =
          List.stable_sort
            (fun (_, xa) (_, xb) -> Float.compare xa xb)
            (cells @ feeds)
          |> List.map fst
        in
        compact ~options ~circuit ~width_of ordered)
  in
  let device_x = Array.make nd 0. in
  let pos_in_row = Array.make nd 0 in
  let feed_positions = Array.make rows [||] in
  let row_members = Array.make rows [||] in
  let row_lengths = Array.make rows 0. in
  Array.iteri
    (fun r (xs, len) ->
      row_lengths.(r) <- len;
      let members = ref [] and feeds = ref [] in
      List.iteri
        (fun pos (e, x) ->
          match e with
          | Cell d ->
              device_x.(d) <- x;
              pos_in_row.(d) <- pos;
              members := d :: !members
          | Feed net -> feeds := (net, x +. (options.feed_width /. 2.)) :: !feeds)
        xs;
      row_members.(r) <- Array.of_list (List.rev !members);
      feed_positions.(r) <- Array.of_list (List.rev !feeds))
    final_rows;
  let feed_through_count =
    Array.fold_left (fun acc f -> acc + Array.length f) 0 feed_positions
  in
  (* Per-net pin positions per row.  With [pin_spread], pin p of a k-pin
     cell sits at fraction (p + 0.5) / k of the cell width; otherwise all
     pins collapse to the cell centre. *)
  let xs_in_row = Array.make_matrix rows net_count [] in
  Array.iter
    (fun (d : Mae_netlist.Device.t) ->
      let i = d.index in
      let w = width_of i in
      let npins = Stdlib.max 1 (Array.length d.pins) in
      Array.iteri
        (fun p net ->
          let x =
            if options.pin_spread then
              device_x.(i) +. (w *. (Float.of_int p +. 0.5) /. Float.of_int npins)
            else device_x.(i) +. (w /. 2.)
          in
          xs_in_row.(dev_row.(i)).(net) <- x :: xs_in_row.(dev_row.(i)).(net))
        d.pins)
    circuit.Mae_netlist.Circuit.devices;
  Array.iteri
    (fun r feeds ->
      Array.iter
        (fun (net, x) -> xs_in_row.(r).(net) <- x :: xs_in_row.(r).(net))
        feeds)
    feed_positions;
  (* Two-pin nets between horizontally adjacent cells of one row connect
     by abutment in hand layout and need no channel track. *)
  let abutted net =
    options.abut_adjacent_pairs
    &&
    let members = Mae_netlist.Circuit.devices_on_net circuit net in
    Array.length members = 2
    && dev_row.(members.(0)) = dev_row.(members.(1))
    && abs (pos_in_row.(members.(0)) - pos_in_row.(members.(1))) = 1
  in
  (* Channel spans.  Channel c (0 .. rows) sits above row c; a net
     spanning rows rmin..rmax crosses channels rmin+1 .. rmax, and a
     single-row net is routed in the channel below its row. *)
  let channel_spans = Array.make (rows + 1) [] in
  let add_span channel net xs =
    match xs with
    | [] -> ()
    | x0 :: rest ->
        let lo = List.fold_left Float.min x0 rest in
        let hi = List.fold_left Float.max x0 rest in
        channel_spans.(channel) <-
          { Channel.net; interval = Mae_geom.Interval.make ~lo ~hi }
          :: channel_spans.(channel)
  in
  for net = 0 to net_count - 1 do
    let occupied =
      List.init rows (fun r -> r)
      |> List.filter (fun r -> xs_in_row.(r).(net) <> [])
    in
    match occupied with
    | [] -> ()
    | [ r ] ->
        if
          Array.length (Mae_netlist.Circuit.devices_on_net circuit net) >= 2
          && not (abutted net)
        then add_span (r + 1) net xs_in_row.(r).(net)
    | rmin :: _ :: _ ->
        let rmax = List.fold_left Stdlib.max rmin occupied in
        let all_pins =
          List.concat_map (fun r -> xs_in_row.(r).(net)) occupied
        in
        for c = rmin + 1 to rmax do
          let pins =
            if options.trunk_spans then all_pins
            else xs_in_row.(c - 1).(net) @ xs_in_row.(c).(net)
          in
          add_span c net pins
        done
  done;
  let channel_routes =
    Array.mapi
      (fun c spans ->
        if options.vc_overhead && c >= 1 && c <= rows - 1 then begin
          (* a dogleg-free channel router must honour the vertical
             constraints between top-row and bottom-row pins *)
          let nets_in_channel =
            List.sort_uniq Int.compare
              (List.map (fun (s : Channel.span) -> s.net) spans)
          in
          let pins_of r =
            List.concat_map
              (fun net ->
                List.map
                  (fun x -> { Channel.x; pin_net = net })
                  xs_in_row.(r).(net))
              nets_in_channel
          in
          Channel.route_constrained ~pitch:options.track_pitch
            ~top:(pins_of (c - 1))
            ~bottom:(pins_of c) spans
        end
        else Channel.left_edge spans)
      channel_spans
  in
  let channel_tracks =
    (* Some wiring runs over the active area instead of the channel. *)
    Array.map
      (fun (routed : Channel.routed) ->
        Float.to_int
          (Float.ceil
             (Float.of_int routed.Channel.tracks
              *. (1. -. options.over_cell_fraction)
             -. 1e-9)))
      channel_routes
  in
  let total_tracks = Array.fold_left ( + ) 0 channel_tracks in
  let row_heights =
    Array.map
      (fun members ->
        Array.fold_left (fun acc d -> Float.max acc (height_of d)) 0. members)
      row_members
  in
  let width = Array.fold_left Float.max 0. row_lengths in
  let height =
    Array.fold_left ( +. ) 0. row_heights
    +. (Float.of_int total_tracks *. options.track_pitch)
  in
  let area = width *. height in
  let device_row = Array.copy dev_row in
  (* Report the wire length of the real, compacted geometry. *)
  let y_offsets = Array.make rows 0. in
  let cursor = ref 0. in
  for r = 0 to rows - 1 do
    y_offsets.(r) <- !cursor;
    cursor :=
      !cursor +. row_heights.(r)
      +. (Float.of_int channel_tracks.(r + 1) *. options.track_pitch)
  done;
  let hpwl =
    Wirelength.total_hpwl circuit
      ~x:(fun d -> device_x.(d) +. (width_of d /. 2.))
      ~y:(fun d -> y_offsets.(dev_row.(d)))
  in
  {
    rows;
    row_members;
    device_x;
    device_row;
    row_heights;
    row_lengths;
    feed_throughs = feed_positions;
    feed_through_count;
    channel_tracks;
    channel_routes;
    channel_spans = Array.map Channel.merge_spans channel_spans;
    total_tracks;
    width;
    height;
    area;
    aspect =
      (if height > 0. && width > 0. then Mae_geom.Aspect.make ~width ~height
       else Mae_geom.Aspect.square);
    hpwl;
  }
