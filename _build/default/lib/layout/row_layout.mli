(** The row-based layout engine shared by both flows.

    Pipeline: slot-grid placement by simulated annealing (minimizing
    half-perimeter wire length), row compaction with real cell widths,
    feed-through insertion for nets that must cross a row they have no pin
    in, and left-edge channel routing with track sharing.  {!Sc_flow}
    instantiates it with standard cells of uniform height (the TimberWolf
    stand-in); {!Fc_flow} instantiates it with individual transistors and
    diffusion-sharing compaction (the manual-layout stand-in). *)

type options = {
  track_pitch : Mae_geom.Lambda.t;
  feed_width : Mae_geom.Lambda.t;  (** width a feed-through adds to a row *)
  spacing : Mae_geom.Lambda.t;  (** gap between adjacent cells in a row *)
  diffusion_sharing : bool;
      (** abut adjacent cells (zero gap) when they share a net, modelling
          shared source/drain diffusion in hand layout *)
  pin_spread : bool;
      (** when true, a cell's pins sit at distinct positions across its
          width (realistic); when false every pin is at the cell centre *)
  vc_overhead : bool;
      (** route each inter-row channel with the constrained left-edge
          algorithm ({!Channel.route_constrained}), which honours the
          vertical constraints between top and bottom pins the way a
          dogleg-free TimberWolf-era router had to; when false, plain
          left-edge (hand layout doglegs freely) *)
  over_cell_fraction : float;
      (** fraction of channel tracks routed over the active area instead
          of in the channel (0 for standard cells, substantial for hand
          full-custom layout); must be in [0, 1) *)
  abut_adjacent_pairs : bool;
      (** two-pin nets between adjacent cells in one row are connected by
          abutment and need no channel track (hand layout) *)
  trunk_spans : bool;
      (** when true, a multi-row net occupies its full horizontal bounding
          box in every channel it crosses — the trunk model of
          TimberWolf-era global routing; when false, only the hull of the
          pins in the two adjacent rows (tighter, hand-layout style) *)
  schedule : Anneal.schedule;
}

type t = {
  rows : int;
  row_members : int array array;  (** device indices per row, left to right *)
  device_x : Mae_geom.Lambda.t array;  (** left edge per device, post compaction *)
  device_row : int array;  (** row index per device *)
  row_heights : Mae_geom.Lambda.t array;
  row_lengths : Mae_geom.Lambda.t array;  (** cells + feed-throughs + gaps *)
  feed_throughs : (int * Mae_geom.Lambda.t) array array;
      (** per row: (net, x-centre) of each inserted feed-through *)
  feed_through_count : int;
  channel_tracks : int array;
      (** per channel, length rows + 1: tracks occupying channel height
          (after any over-cell discount) *)
  channel_routes : Channel.routed array;
      (** the raw routing result per channel (before the over-cell
          discount): track assignments, density, dropped constraints *)
  channel_spans : Channel.span list array;
      (** the horizontal extent of every net in every channel, as handed
          to the router *)
  total_tracks : int;
  width : Mae_geom.Lambda.t;  (** longest row *)
  height : Mae_geom.Lambda.t;  (** row heights plus routed channel heights *)
  area : Mae_geom.Lambda.area;
  aspect : Mae_geom.Aspect.t;
  hpwl : float;  (** final placement wire length (cost metric) *)
}

val run :
  rng:Mae_prob.Rng.t ->
  options:options ->
  rows:int ->
  width_of:(int -> Mae_geom.Lambda.t) ->
  height_of:(int -> Mae_geom.Lambda.t) ->
  Mae_netlist.Circuit.t ->
  t
(** Lay the circuit out in [rows] rows.  [width_of]/[height_of] give each
    device's footprint (by device index).  Raises [Invalid_argument] when
    [rows < 1] or the circuit has no devices. *)
