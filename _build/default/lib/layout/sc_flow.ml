let options ?(schedule = Anneal.default_schedule) (process : Mae_tech.Process.t) =
  {
    Row_layout.track_pitch = process.track_pitch;
    feed_width = process.feed_through_width;
    (* standard cells are designed to abut *)
    spacing = 0.;
    diffusion_sharing = false;
    pin_spread = true;
    (* the channel router pays vertical-constraint overhead, and nothing
       routes over the cells in this single-metal technology *)
    vc_overhead = true;
    over_cell_fraction = 0.;
    abut_adjacent_pairs = false;
    (* the global router reserves each net's bounding box (trunk model) *)
    trunk_spans = true;
    schedule;
  }

let run ?schedule ~rng ~rows circuit process =
  let widths = Mae_netlist.Stats.device_widths circuit process in
  let row_height = process.Mae_tech.Process.row_height in
  Row_layout.run ~rng ~options:(options ?schedule process) ~rows
    ~width_of:(fun d -> widths.(d))
    ~height_of:(fun _ -> row_height)
    circuit

let run_sweep ?schedule ~rng ~rows circuit process =
  List.map
    (fun n ->
      let rng = Mae_prob.Rng.split rng in
      run ?schedule ~rng ~rows:n circuit process)
    rows

let geometry circuit (process : Mae_tech.Process.t) layout =
  let widths = Mae_netlist.Stats.device_widths circuit process in
  Geometry.of_layout
    ~width_of:(fun d -> widths.(d))
    ~height_of:(fun _ -> process.row_height)
    ~track_pitch:process.track_pitch ~feed_width:process.feed_through_width
    layout

let wiring circuit (process : Mae_tech.Process.t) layout =
  let widths = Mae_netlist.Stats.device_widths circuit process in
  Wiring.of_layout
    ~width_of:(fun d -> widths.(d))
    ~pin_spread:true ~track_pitch:process.track_pitch circuit layout
    (geometry circuit process layout)
