(** Standard-cell place & route: the TimberWolf stand-in.

    Cells of uniform height are annealed into [rows] rows, feed-throughs
    are inserted, and each channel is routed by the left-edge algorithm —
    {e with} track sharing, which is what makes this "real" area fall
    below the estimator's one-net-per-track upper bound (the 42-70 %
    Table 2 gap). *)

val run :
  ?schedule:Anneal.schedule ->
  rng:Mae_prob.Rng.t ->
  rows:int ->
  Mae_netlist.Circuit.t ->
  Mae_tech.Process.t ->
  Row_layout.t
(** Raises {!Mae_netlist.Stats.Unknown_kind} on a schematic/process
    mismatch, [Invalid_argument] on [rows < 1] or an empty circuit. *)

val run_sweep :
  ?schedule:Anneal.schedule ->
  rng:Mae_prob.Rng.t ->
  rows:int list ->
  Mae_netlist.Circuit.t ->
  Mae_tech.Process.t ->
  Row_layout.t list
(** One layout per row count (each from an independent RNG stream). *)

val geometry :
  Mae_netlist.Circuit.t -> Mae_tech.Process.t -> Row_layout.t -> Geometry.t
(** Extract the concrete box geometry of a layout this flow produced.
    Raises {!Mae_netlist.Stats.Unknown_kind}. *)

val wiring :
  Mae_netlist.Circuit.t -> Mae_tech.Process.t -> Row_layout.t -> Wiring.t
(** Expand a layout's channel routing into concrete wires (see {!Wiring});
    input must be a layout this flow produced. *)
