let net_hpwl circuit ~net ~x ~y =
  let members = Mae_netlist.Circuit.devices_on_net circuit net in
  if Array.length members < 2 then 0.
  else begin
    let min_x = ref Float.infinity and max_x = ref Float.neg_infinity in
    let min_y = ref Float.infinity and max_y = ref Float.neg_infinity in
    Array.iter
      (fun d ->
        let dx = x d and dy = y d in
        if dx < !min_x then min_x := dx;
        if dx > !max_x then max_x := dx;
        if dy < !min_y then min_y := dy;
        if dy > !max_y then max_y := dy)
      members;
    !max_x -. !min_x +. (!max_y -. !min_y)
  end

let total_hpwl circuit ~x ~y =
  let total = ref 0. in
  for net = 0 to Mae_netlist.Circuit.net_count circuit - 1 do
    total := !total +. net_hpwl circuit ~net ~x ~y
  done;
  !total

let nets_of_devices circuit devices =
  List.concat_map (Mae_netlist.Circuit.nets_of_device circuit) devices
  |> List.sort_uniq Int.compare
