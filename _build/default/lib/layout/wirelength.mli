(** Half-perimeter wire length (HPWL), the placement cost metric.

    For each net, the cost is the half-perimeter of the bounding box of
    its pins; the total over all nets is the standard placement objective
    TimberWolf minimizes. *)

val net_hpwl :
  Mae_netlist.Circuit.t ->
  net:int ->
  x:(int -> float) ->
  y:(int -> float) ->
  float
(** Bounding-box half-perimeter of one net; 0 for nets with fewer than two
    devices.  [x]/[y] give each device's coordinates. *)

val total_hpwl :
  Mae_netlist.Circuit.t -> x:(int -> float) -> y:(int -> float) -> float

val nets_of_devices : Mae_netlist.Circuit.t -> int list -> int list
(** Distinct nets touching any of the given devices, ascending; the nets
    whose cost a move can change. *)
