type attachment =
  | Pin of { device : int; pin : int }
  | Feed_wire of { row : int }
  | Branch

type vertical = {
  v_net : int;
  x : float;
  y_lo : float;
  y_hi : float;
  attached : attachment;
}

type horizontal = {
  h_net : int;
  channel : int;
  y : float;
  x_lo : float;
  x_hi : float;
}

type via = { via_net : int; vx : float; vy : float }

type t = {
  verticals : vertical list;
  horizontals : horizontal list;
  vias : via list;
  dropped_constraints : int;
}

let of_layout ~width_of ~pin_spread ~track_pitch circuit
    (layout : Row_layout.t) (geometry : Geometry.t) =
  let rows = layout.rows in
  (* over-cell routing hides tracks; wiring can only be expanded when the
     drawn channel height holds every routed track *)
  Array.iteri
    (fun c (routed : Channel.routed) ->
      if layout.channel_tracks.(c) <> routed.Channel.tracks then
        invalid_arg "Wiring.of_layout: layout uses over-cell routing")
    layout.channel_routes;
  (* channel band rectangles by index *)
  let channel_rect = Array.make (rows + 1) None in
  List.iter
    (fun box ->
      match box with
      | Geometry.Channel_box { index; rect; _ } ->
          channel_rect.(index) <- Some rect
      | Geometry.Cell_box _ | Geometry.Feed_box _ -> ())
    geometry.Geometry.boxes;
  let track_of c net =
    if c < 0 || c > rows then None
    else List.assoc_opt net layout.channel_routes.(c).Channel.track_of
  in
  let trunk_y c net =
    match (track_of c net, channel_rect.(c)) with
    | Some t, Some rect ->
        Some (rect.Mae_geom.Rect.y +. rect.Mae_geom.Rect.h
              -. ((Float.of_int t +. 0.5) *. track_pitch))
    | None, _ | _, None -> None
  in
  let row_top r = (geometry.Geometry.row_rects.(r) : Mae_geom.Rect.t).y
                  +. (geometry.Geometry.row_rects.(r) : Mae_geom.Rect.t).h in
  let row_bottom r = (geometry.Geometry.row_rects.(r) : Mae_geom.Rect.t).y in
  let verticals = ref [] in
  let vias = ref [] in
  (* pin stubs: one vertical per (device, pin), spanning the row and
     extending into any adjacent channel where the net has a trunk *)
  Array.iter
    (fun (d : Mae_netlist.Device.t) ->
      let i = d.index in
      let r = layout.device_row.(i) in
      let w = width_of i in
      let npins = Stdlib.max 1 (Array.length d.pins) in
      Array.iteri
        (fun p net ->
          let x =
            if pin_spread then
              layout.device_x.(i)
              +. (w *. (Float.of_int p +. 0.5) /. Float.of_int npins)
            else layout.device_x.(i) +. (w /. 2.)
          in
          let y_hi =
            (* channel r sits above row r *)
            match trunk_y r net with
            | Some y ->
                vias := { via_net = net; vx = x; vy = y } :: !vias;
                y
            | None -> row_top r
          in
          let y_lo =
            match trunk_y (r + 1) net with
            | Some y ->
                vias := { via_net = net; vx = x; vy = y } :: !vias;
                y
            | None -> row_bottom r
          in
          verticals :=
            { v_net = net; x; y_lo; y_hi; attached = Pin { device = i; pin = p } }
            :: !verticals)
        d.pins)
    circuit.Mae_netlist.Circuit.devices;
  (* feed-through wires: cross the row, joining the trunks above and below *)
  Array.iteri
    (fun r feeds ->
      Array.iter
        (fun (net, x) ->
          let y_hi =
            match trunk_y r net with
            | Some y ->
                vias := { via_net = net; vx = x; vy = y } :: !vias;
                y
            | None -> row_top r
          in
          let y_lo =
            match trunk_y (r + 1) net with
            | Some y ->
                vias := { via_net = net; vx = x; vy = y } :: !vias;
                y
            | None -> row_bottom r
          in
          verticals :=
            { v_net = net; x; y_lo; y_hi; attached = Feed_wire { row = r } }
            :: !verticals)
        feeds)
    layout.feed_throughs;
  (* trunks *)
  let horizontals = ref [] in
  Array.iteri
    (fun c spans ->
      List.iter
        (fun (s : Channel.span) ->
          match trunk_y c s.Channel.net with
          | None -> ()
          | Some y ->
              horizontals :=
                {
                  h_net = s.Channel.net;
                  channel = c;
                  y;
                  x_lo = s.Channel.interval.Mae_geom.Interval.lo;
                  x_hi = s.Channel.interval.Mae_geom.Interval.hi;
                }
                :: !horizontals)
        spans)
    layout.channel_spans;
  let dropped =
    Array.fold_left
      (fun acc (r : Channel.routed) -> acc + r.Channel.dropped_constraints)
      0 layout.channel_routes
  in
  {
    verticals = List.rev !verticals;
    horizontals = List.rev !horizontals;
    vias = List.rev !vias;
    dropped_constraints = dropped;
  }

let segment_count t = List.length t.verticals + List.length t.horizontals

let wire_length t =
  List.fold_left (fun acc v -> acc +. (v.y_hi -. v.y_lo)) 0. t.verticals
  +. List.fold_left (fun acc h -> acc +. (h.x_hi -. h.x_lo)) 0. t.horizontals
