(** Detailed wiring for a routed standard-cell layout.

    Expands the channel router's track assignments into concrete wire
    geometry in the two-layer style of the era: horizontal {e trunks} in
    the channels (metal), vertical {e branches}, pin stubs and
    feed-through wires (poly), connected by explicit vias where a branch
    meets its own trunk.  {!Extract} runs a geometric connectivity check
    (LVS-lite) over this output. *)

type attachment =
  | Pin of { device : int; pin : int }  (** a cell pin stub *)
  | Feed_wire of { row : int }  (** a feed-through crossing a row *)
  | Branch  (** plain vertical wiring *)

type vertical = {
  v_net : int;  (** for reporting; extraction ignores it *)
  x : float;
  y_lo : float;
  y_hi : float;
  attached : attachment;
}

type horizontal = {
  h_net : int;
  channel : int;
  y : float;
  x_lo : float;
  x_hi : float;
}

type via = { via_net : int; vx : float; vy : float }

type t = {
  verticals : vertical list;
  horizontals : horizontal list;
  vias : via list;
  dropped_constraints : int;
      (** total over all channels; when non-zero, shorts that only a
          dogleg could fix may be present *)
}

val of_layout :
  width_of:(int -> float) ->
  pin_spread:bool ->
  track_pitch:float ->
  Mae_netlist.Circuit.t ->
  Row_layout.t ->
  Geometry.t ->
  t
(** Build the wire geometry.  The accessors and flags must match the ones
    the layout was produced with, and the layout must have been routed
    without an over-cell discount (raises [Invalid_argument] when the
    effective track counts differ from the raw routing, i.e. for the
    full-custom flow). *)

val segment_count : t -> int

val wire_length : t -> float
(** Total routed wire length (trunks + branches), the detailed-routing
    counterpart of the placement HPWL. *)
