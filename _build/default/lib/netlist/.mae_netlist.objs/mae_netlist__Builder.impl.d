lib/netlist/builder.ml: Array Circuit Device Hashtbl List Net Port
