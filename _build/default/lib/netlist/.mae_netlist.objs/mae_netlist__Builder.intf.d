lib/netlist/builder.mli: Circuit Port
