lib/netlist/circuit.ml: Array Device Format Hashtbl Int List Net Port Printf String
