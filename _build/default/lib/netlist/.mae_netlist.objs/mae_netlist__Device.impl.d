lib/netlist/device.ml: Array Format Int List String
