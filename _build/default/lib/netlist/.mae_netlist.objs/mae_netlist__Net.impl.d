lib/netlist/net.ml: Format Int String
