lib/netlist/port.ml: Format String
