lib/netlist/port.mli: Format
