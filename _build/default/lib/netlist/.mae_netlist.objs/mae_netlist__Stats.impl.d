lib/netlist/stats.ml: Array Circuit Device Float Format Int List Mae_geom Mae_tech Stdlib
