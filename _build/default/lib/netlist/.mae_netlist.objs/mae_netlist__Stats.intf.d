lib/netlist/stats.mli: Circuit Format Mae_geom Mae_tech
