lib/netlist/validate.ml: Array Bool Circuit Device Format List Mae_tech Net Option
