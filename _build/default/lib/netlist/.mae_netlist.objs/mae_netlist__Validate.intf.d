lib/netlist/validate.mli: Circuit Format Mae_tech
