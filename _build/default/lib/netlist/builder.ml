type t = {
  name : string;
  technology : string;
  net_index : (string, int) Hashtbl.t;
  mutable nets_rev : Net.t list;
  mutable devices_rev : Device.t list;
  mutable ports_rev : Port.t list;
  device_names : (string, unit) Hashtbl.t;
  port_names : (string, unit) Hashtbl.t;
  mutable net_count : int;
  mutable device_count : int;
}

let create ~name ~technology =
  {
    name;
    technology;
    net_index = Hashtbl.create 64;
    nets_rev = [];
    devices_rev = [];
    ports_rev = [];
    device_names = Hashtbl.create 64;
    port_names = Hashtbl.create 16;
    net_count = 0;
    device_count = 0;
  }

let net t name =
  match Hashtbl.find_opt t.net_index name with
  | Some i -> i
  | None ->
      let index = t.net_count in
      t.net_count <- index + 1;
      Hashtbl.add t.net_index name index;
      t.nets_rev <- Net.make ~index ~name :: t.nets_rev;
      index

let add_device t ~name ~kind ~nets =
  if Hashtbl.mem t.device_names name then
    invalid_arg ("Builder.add_device: duplicate instance " ^ name);
  Hashtbl.add t.device_names name ();
  let pins = Array.of_list (List.map (net t) nets) in
  let index = t.device_count in
  t.device_count <- index + 1;
  t.devices_rev <- Device.make ~index ~name ~kind ~pins :: t.devices_rev;
  index

let add_port t ~name ~direction ~net:net_name =
  if Hashtbl.mem t.port_names name then
    invalid_arg ("Builder.add_port: duplicate port " ^ name);
  Hashtbl.add t.port_names name ();
  t.ports_rev <- Port.make ~name ~direction ~net:(net t net_name) :: t.ports_rev

let device_count t = t.device_count

let build t =
  Circuit.make ~name:t.name ~technology:t.technology
    ~devices:(List.rev t.devices_rev)
    ~nets:(List.rev t.nets_rev)
    ~ports:(List.rev t.ports_rev)
