(** Imperative construction of circuits.

    Nets are created on first mention, so a schematic can be entered in the
    natural order: declare ports, then instance devices by listing the net
    names on their pins. *)

type t

val create : name:string -> technology:string -> t

val net : t -> string -> int
(** Index of the named net, creating it if necessary. *)

val add_device : t -> name:string -> kind:string -> nets:string list -> int
(** Adds a device whose pins connect to the named nets (created on
    demand); returns the device index.  Raises [Invalid_argument] on a
    duplicate instance name. *)

val add_port : t -> name:string -> direction:Port.direction -> net:string -> unit
(** Raises [Invalid_argument] on a duplicate port name. *)

val device_count : t -> int

val build : t -> Circuit.t
(** Freezes the builder.  The builder remains usable; later additions
    affect only later [build] calls. *)
