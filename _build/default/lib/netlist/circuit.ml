type t = {
  name : string;
  technology : string;
  devices : Device.t array;
  nets : Net.t array;
  ports : Port.t array;
  net_devices : int array array;
}

let check_dense_indices what get arr =
  Array.iteri
    (fun i x ->
      if get x <> i then
        invalid_arg
          (Printf.sprintf "Circuit.make: %s index %d at position %d" what (get x) i))
    arr

let check_unique_names what get arr =
  let seen = Hashtbl.create 64 in
  Array.iter
    (fun x ->
      let n = get x in
      if Hashtbl.mem seen n then
        invalid_arg (Printf.sprintf "Circuit.make: duplicate %s name %s" what n);
      Hashtbl.add seen n ())
    arr

let make ~name ~technology ~devices ~nets ~ports =
  if String.length name = 0 then invalid_arg "Circuit.make: empty name";
  let devices = Array.of_list devices in
  let nets = Array.of_list nets in
  let ports = Array.of_list ports in
  check_dense_indices "device" (fun (d : Device.t) -> d.index) devices;
  check_dense_indices "net" (fun (n : Net.t) -> n.index) nets;
  check_unique_names "device" (fun (d : Device.t) -> d.name) devices;
  check_unique_names "net" (fun (n : Net.t) -> n.name) nets;
  check_unique_names "port" (fun (p : Port.t) -> p.name) ports;
  let net_count = Array.length nets in
  let in_range what n =
    if n < 0 || n >= net_count then
      invalid_arg (Printf.sprintf "Circuit.make: %s references net %d" what n)
  in
  Array.iter
    (fun (d : Device.t) -> Array.iter (in_range ("device " ^ d.name)) d.pins)
    devices;
  Array.iter (fun (p : Port.t) -> in_range ("port " ^ p.name) p.net) ports;
  let members = Array.make net_count [] in
  Array.iter
    (fun (d : Device.t) ->
      List.iter (fun n -> members.(n) <- d.index :: members.(n)) (Device.nets d))
    devices;
  let net_devices =
    Array.map (fun ds -> Array.of_list (List.sort Int.compare ds)) members
  in
  { name; technology; devices; nets; ports; net_devices }

let device_count t = Array.length t.devices

let net_count t = Array.length t.nets

let port_count t = Array.length t.ports

let check_net t n =
  if n < 0 || n >= Array.length t.nets then
    invalid_arg (Printf.sprintf "Circuit: net %d out of range" n)

let devices_on_net t n =
  check_net t n;
  t.net_devices.(n)

let degree t n = Array.length (devices_on_net t n)

let nets_of_device t d =
  if d < 0 || d >= Array.length t.devices then
    invalid_arg (Printf.sprintf "Circuit: device %d out of range" d);
  Device.nets t.devices.(d)

let find_net t name =
  Array.find_opt (fun (n : Net.t) -> String.equal n.name name) t.nets

let find_device t name =
  Array.find_opt (fun (d : Device.t) -> String.equal d.name name) t.devices

let is_port_net t n =
  check_net t n;
  Array.exists (fun (p : Port.t) -> p.net = n) t.ports

let pp_summary ppf t =
  Format.fprintf ppf "%s: %d devices, %d nets, %d ports (%s)" t.name
    (device_count t) (net_count t) (port_count t) t.technology
