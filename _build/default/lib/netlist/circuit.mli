(** An elaborated circuit schematic: the "mathematical representation for
    numerical analysis" of section 3.

    A circuit is immutable once built (use {!Builder}); net-to-device
    connectivity is precomputed. *)

type t = private {
  name : string;
  technology : string;  (** process name the schematic targets *)
  devices : Device.t array;
  nets : Net.t array;
  ports : Port.t array;
  net_devices : int array array;
      (** [net_devices.(n)] = distinct device indices on net [n], ascending *)
}

val make :
  name:string ->
  technology:string ->
  devices:Device.t list ->
  nets:Net.t list ->
  ports:Port.t list ->
  t
(** Validates: device/net indices are dense and match positions, pin and
    port net references are in range, instance and net names are unique.
    Raises [Invalid_argument] otherwise. *)

val device_count : t -> int
(** The paper's N. *)

val net_count : t -> int
(** The paper's H. *)

val port_count : t -> int

val degree : t -> int -> int
(** [degree c n]: number of distinct devices on net [n] — the paper's D.
    Raises [Invalid_argument] if [n] is out of range. *)

val devices_on_net : t -> int -> int array
(** Distinct device indices, ascending.  Raises [Invalid_argument] if out
    of range. *)

val nets_of_device : t -> int -> int list
(** Distinct net indices, ascending. *)

val find_net : t -> string -> Net.t option

val find_device : t -> string -> Device.t option

val is_port_net : t -> int -> bool

val pp_summary : Format.formatter -> t -> unit
(** One-line "name: N devices, H nets, P ports (tech)". *)
