type t = { index : int; name : string; kind : string; pins : int array }

let make ~index ~name ~kind ~pins =
  if index < 0 then invalid_arg "Device.make: negative index";
  if String.length name = 0 then invalid_arg "Device.make: empty name";
  if String.length kind = 0 then invalid_arg "Device.make: empty kind";
  { index; name; kind; pins }

let nets t =
  Array.to_list t.pins |> List.sort_uniq Int.compare

let connects_to t net = Array.exists (Int.equal net) t.pins

let pp ppf t =
  Format.fprintf ppf "%s:%s(%s)" t.name t.kind
    (String.concat "," (Array.to_list (Array.map string_of_int t.pins)))
