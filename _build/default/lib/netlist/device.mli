(** A device instance in a circuit schematic.

    A device is anything the process database gives a footprint to: a
    single transistor in a full-custom module, or a logic gate / flip-flop
    in a standard-cell module.  [pins] holds the indices of the nets each
    pin connects to, in pin order. *)

type t = {
  index : int;  (** position in the circuit's device array *)
  name : string;  (** instance name, unique within the circuit *)
  kind : string;  (** device-kind name, resolved against the process *)
  pins : int array;  (** net index per pin *)
}

val make : index:int -> name:string -> kind:string -> pins:int array -> t
(** Raises [Invalid_argument] on an empty name/kind or a negative index. *)

val nets : t -> int list
(** Distinct net indices this device touches, ascending. *)

val connects_to : t -> int -> bool

val pp : Format.formatter -> t -> unit
