type t = { index : int; name : string }

let make ~index ~name =
  if index < 0 then invalid_arg "Net.make: negative index";
  if String.length name = 0 then invalid_arg "Net.make: empty name";
  { index; name }

let equal a b = Int.equal a.index b.index && String.equal a.name b.name

let pp ppf t = Format.fprintf ppf "%s#%d" t.name t.index
