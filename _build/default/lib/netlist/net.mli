(** A signal net.

    The estimator's models are driven by the net's {e degree} D: the number
    of distinct components (devices) it connects (equations 2-11, 13). *)

type t = { index : int; name : string }

val make : index:int -> name:string -> t
(** Raises [Invalid_argument] on an empty name or a negative index. *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
