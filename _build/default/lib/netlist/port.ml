type direction = Input | Output | Inout

type t = { name : string; direction : direction; net : int }

let make ~name ~direction ~net =
  if String.length name = 0 then invalid_arg "Port.make: empty name";
  if net < 0 then invalid_arg "Port.make: negative net index";
  { name; direction; net }

let direction_of_string = function
  | "in" -> Some Input
  | "out" -> Some Output
  | "inout" -> Some Inout
  | _ -> None

let direction_to_string = function
  | Input -> "in"
  | Output -> "out"
  | Inout -> "inout"

let pp ppf t =
  Format.fprintf ppf "%s %s net#%d" t.name (direction_to_string t.direction) t.net
