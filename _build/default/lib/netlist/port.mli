(** A module I/O port.

    Section 5 estimates aspect ratios from the total length of the module's
    input and output ports along an edge, so ports are first-class in the
    schematic. *)

type direction = Input | Output | Inout

type t = { name : string; direction : direction; net : int }

val make : name:string -> direction:direction -> net:int -> t
(** Raises [Invalid_argument] on an empty name or a negative net index. *)

val direction_of_string : string -> direction option
(** ["in"], ["out"], ["inout"]. *)

val direction_to_string : direction -> string

val pp : Format.formatter -> t -> unit
