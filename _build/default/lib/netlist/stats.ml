exception Unknown_kind of string

type t = {
  device_count : int;
  net_count : int;
  port_count : int;
  width_classes : (Mae_geom.Lambda.t * int) list;
  average_width : Mae_geom.Lambda.t;
  average_height : Mae_geom.Lambda.t;
  total_device_area : Mae_geom.Lambda.area;
  degree_histogram : (int * int) list;
  max_degree : int;
}

let kind_exn process name =
  match Mae_tech.Process.find_device process name with
  | Some k -> k
  | None -> raise (Unknown_kind name)

let device_kinds (c : Circuit.t) process =
  Array.map (fun (d : Device.t) -> kind_exn process d.kind) c.devices

let device_widths c process =
  Array.map (fun (k : Mae_tech.Device_kind.t) -> k.width) (device_kinds c process)

let device_areas c process =
  Array.map Mae_tech.Device_kind.area (device_kinds c process)

let group_counts compare values =
  let sorted = List.sort compare values in
  let rec go acc current count = function
    | [] -> List.rev ((current, count) :: acc)
    | v :: rest ->
        if compare v current = 0 then go acc current (count + 1) rest
        else go ((current, count) :: acc) v 1 rest
  in
  match sorted with [] -> [] | v :: rest -> go [] v 1 rest

let compute (c : Circuit.t) process =
  let kinds = device_kinds c process in
  let n = Array.length kinds in
  let widths = Array.to_list (Array.map (fun (k : Mae_tech.Device_kind.t) -> k.width) kinds) in
  let width_classes = group_counts Float.compare widths in
  let total_width = List.fold_left ( +. ) 0. widths in
  let total_height =
    Array.fold_left (fun acc (k : Mae_tech.Device_kind.t) -> acc +. k.height) 0. kinds
  in
  let total_device_area =
    Array.fold_left (fun acc k -> acc +. Mae_tech.Device_kind.area k) 0. kinds
  in
  let average_width = if n = 0 then 0. else total_width /. Float.of_int n in
  let average_height = if n = 0 then 0. else total_height /. Float.of_int n in
  let degrees =
    List.init (Circuit.net_count c) (Circuit.degree c)
    |> List.filter (fun d -> d >= 1)
  in
  let degree_histogram = group_counts Int.compare degrees in
  let max_degree = List.fold_left Stdlib.max 0 degrees in
  {
    device_count = n;
    net_count = Circuit.net_count c;
    port_count = Circuit.port_count c;
    width_classes;
    average_width;
    average_height;
    total_device_area;
    degree_histogram;
    max_degree;
  }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>N=%d H=%d ports=%d W_avg=%.2fL h_avg=%.2fL cell_area=%.0fL^2@ \
     degrees: %a@]"
    t.device_count t.net_count t.port_count t.average_width t.average_height
    t.total_device_area
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (d, y) -> Format.fprintf ppf "D=%d x%d" d y))
    t.degree_histogram
