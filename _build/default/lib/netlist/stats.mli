(** Scans a circuit schematic for the quantities the estimator consumes.

    These are exactly the parameters listed in section 4 of the paper:
    N (devices), H (nets), W_i and X_i (distinct device widths and their
    multiplicities), W_avg (equation 1), and y_i (the net-degree
    histogram). *)

exception Unknown_kind of string
(** Raised when a device's kind is not present in the process. *)

type t = {
  device_count : int;  (** N *)
  net_count : int;  (** H *)
  port_count : int;
  width_classes : (Mae_geom.Lambda.t * int) list;
      (** (W_i, X_i) pairs, widths ascending: X_i devices share width W_i *)
  average_width : Mae_geom.Lambda.t;  (** W_avg, equation (1) *)
  average_height : Mae_geom.Lambda.t;  (** h_avg, used by equation (13) *)
  total_device_area : Mae_geom.Lambda.area;
      (** sum of exact device areas ("active cell area") *)
  degree_histogram : (int * int) list;
      (** (D, y_D) pairs, D ascending: y_D nets have exactly D components;
          only nets with D >= 1 appear *)
  max_degree : int;  (** 0 for a circuit with no connected nets *)
}

val compute : Circuit.t -> Mae_tech.Process.t -> t
(** Raises {!Unknown_kind} when the schematic references a device kind the
    process does not define. *)

val device_widths : Circuit.t -> Mae_tech.Process.t -> Mae_geom.Lambda.t array
(** Per-device width, indexed by device index.  Raises {!Unknown_kind}. *)

val device_areas : Circuit.t -> Mae_tech.Process.t -> Mae_geom.Lambda.area array
(** Per-device exact area.  Raises {!Unknown_kind}. *)

val pp : Format.formatter -> t -> unit
