(** Schematic sanity checks run before estimation.

    The checks distinguish hard errors (estimation would be meaningless)
    from warnings (suspicious but estimable). *)

type issue =
  | Unknown_device_kind of { device : string; kind : string }
      (** the process database has no footprint for this kind (error) *)
  | Dangling_net of { net : string }
      (** a net with no device and no port (warning) *)
  | Single_pin_net of { net : string }
      (** a net touching exactly one device and no port (warning) *)
  | Unconnected_device of { device : string }  (** a device with no pins (warning) *)
  | No_devices  (** the circuit is empty (error) *)
  | No_ports  (** no I/O: aspect-ratio control criterion is vacuous (warning) *)

val is_error : issue -> bool

val check : Circuit.t -> Mae_tech.Process.t -> issue list
(** All issues found, errors first. *)

val pp_issue : Format.formatter -> issue -> unit
