lib/prob/comb.ml: Array Float Lazy Stdlib
