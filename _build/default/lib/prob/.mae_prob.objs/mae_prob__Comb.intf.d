lib/prob/comb.mli:
