lib/prob/dist.ml: Array Comb Float Format Int List Rng
