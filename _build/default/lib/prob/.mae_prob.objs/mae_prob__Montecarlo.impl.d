lib/prob/montecarlo.ml: Array Dist Float List Rng
