lib/prob/montecarlo.mli: Dist Rng
