lib/prob/rng.mli:
