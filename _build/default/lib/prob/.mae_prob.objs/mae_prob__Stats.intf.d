lib/prob/stats.mli:
