type placement_stats = {
  rows_used : Dist.t;
  feed_through : float array;
}

let simulate_net ~rng ~trials ~rows ~degree =
  if rows < 1 then invalid_arg "Montecarlo.simulate_net: rows < 1";
  if degree < 1 then invalid_arg "Montecarlo.simulate_net: degree < 1";
  if trials < 1 then invalid_arg "Montecarlo.simulate_net: trials < 1";
  let span_counts = Array.make (rows + 1) 0 in
  let feed_counts = Array.make rows 0 in
  let occupied = Array.make rows false in
  for _ = 1 to trials do
    Array.fill occupied 0 rows false;
    let lowest = ref rows and highest = ref (-1) in
    for _ = 1 to degree do
      let r = Rng.int rng rows in
      occupied.(r) <- true;
      if r < !lowest then lowest := r;
      if r > !highest then highest := r
    done;
    let span = ref 0 in
    for r = 0 to rows - 1 do
      if occupied.(r) then incr span
    done;
    span_counts.(!span) <- span_counts.(!span) + 1;
    (* Row i receives a feed-through when some component is strictly above
       and some strictly below, i.e. lowest < i < highest. *)
    for r = !lowest + 1 to !highest - 1 do
      feed_counts.(r) <- feed_counts.(r) + 1
    done
  done;
  let weights =
    List.init rows (fun i -> (i + 1, Float.of_int span_counts.(i + 1)))
  in
  let rows_used = Dist.of_weights weights in
  let feed_through =
    Array.map (fun c -> Float.of_int c /. Float.of_int trials) feed_counts
  in
  { rows_used; feed_through }

let empirical_rows_used ~rng ~trials ~rows ~degree =
  (simulate_net ~rng ~trials ~rows ~degree).rows_used

let argmax_feed_through stats =
  let best = ref 0 in
  Array.iteri
    (fun i p -> if p > stats.feed_through.(!best) then best := i)
    stats.feed_through;
  !best + 1
