(** Monte-Carlo verification of the paper's placement-probability models.

    Section 4.1 supports two claims with "numerical simulation results":
    that the central row has the largest probability of containing a
    feed-through regardless of the net degree D, and that the row-span
    distribution of equation (2) models random placement.  This module
    re-runs those simulations: components of a net are dropped uniformly at
    random into [n] rows and the empirical statistics are collected. *)

type placement_stats = {
  rows_used : Dist.t;  (** empirical distribution of the row span *)
  feed_through : float array;
      (** [feed_through.(i)] for i in [0, rows): empirical probability that
          the net contributes a feed-through to row i+1.  Following
          equation (5), the event is: at least one component lies in a row
          strictly above row i+1 and at least one in a row strictly below
          it (components inside the row itself are permitted; the wire must
          still cross the row to join the two sides). *)
}

val simulate_net : rng:Rng.t -> trials:int -> rows:int -> degree:int -> placement_stats
(** Drop [degree] components into [rows] rows uniformly, [trials] times.
    Raises [Invalid_argument] when [rows < 1], [degree < 1] or
    [trials < 1]. *)

val empirical_rows_used : rng:Rng.t -> trials:int -> rows:int -> degree:int -> Dist.t
(** Shorthand for [(simulate_net ...).rows_used]. *)

val argmax_feed_through : placement_stats -> int
(** 1-based index of the row with the highest empirical feed-through
    probability (smallest index on ties). *)
