type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let create ~seed = { state = Int64.of_int seed }

let copy t = { state = t.state }

(* SplitMix64 step (Steele, Lea, Flood 2014). *)
let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  let z = t.state in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let split t = { state = next_int64 t }

(* Drop to 62 bits so the value is non-negative in OCaml's 63-bit int. *)
let nonneg t = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2)

(* 2^62 - 1, the largest value [nonneg] can return, built without
   overflowing the 63-bit int. *)
let max62 = (1 lsl 61) - 1 + (1 lsl 61)

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  (* Rejection sampling to avoid modulo bias: reject draws from the final
     partial block of [bound] values. *)
  let rec go () =
    let r = nonneg t in
    let v = r mod bound in
    if r - v + (bound - 1) > max62 then go () else v
  in
  go ()

let uniform t =
  (* 53 random bits into the mantissa. *)
  let bits = Int64.to_int (Int64.shift_right_logical (next_int64 t) 11) in
  Float.of_int bits *. 0x1p-53

let float t bound = uniform t *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let pick t arr =
  if Array.length arr = 0 then invalid_arg "Rng.pick: empty array";
  arr.(int t (Array.length arr))

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done
