(** Deterministic pseudo-random numbers (SplitMix64).

    Every stochastic component of the repository (annealers, Monte-Carlo
    verification, workload generation) draws from an explicitly seeded
    generator so that all experiments are reproducible bit-for-bit. *)

type t

val create : seed:int -> t

val copy : t -> t

val split : t -> t
(** Derive an independent generator; the parent is advanced. *)

val int : t -> int -> int
(** [int t bound] draws uniformly from [0, bound); requires [bound > 0]. *)

val float : t -> float -> float
(** [float t bound] draws uniformly from [0, bound). *)

val bool : t -> bool

val uniform : t -> float
(** Uniform in [0, 1). *)

val pick : t -> 'a array -> 'a
(** Uniform element of a non-empty array; raises [Invalid_argument] on an
    empty array. *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)
