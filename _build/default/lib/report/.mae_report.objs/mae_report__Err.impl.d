lib/report/err.ml: Printf
