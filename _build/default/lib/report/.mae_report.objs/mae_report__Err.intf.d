lib/report/err.mli:
