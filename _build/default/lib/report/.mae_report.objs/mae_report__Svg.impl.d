lib/report/svg.ml: Buffer Float List Out_channel Printf String
