lib/report/svg.mli:
