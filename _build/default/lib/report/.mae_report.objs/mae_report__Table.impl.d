lib/report/table.ml: List Stdlib String
