lib/report/table.mli:
