let percent ~estimated ~real =
  if real = 0. then invalid_arg "Err.percent: real value is zero";
  100. *. (estimated -. real) /. real

let percent_string ~estimated ~real =
  Printf.sprintf "%+.1f%%" (percent ~estimated ~real)

let f0 v = Printf.sprintf "%.0f" v

let f2 v = Printf.sprintf "%.2f" v

let aspect_string r =
  if r >= 1. then Printf.sprintf "1:%.2f" r else Printf.sprintf "%.2f:1" (1. /. r)
