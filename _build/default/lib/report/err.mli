(** Formatting of estimation errors, the way the paper quotes them. *)

val percent : estimated:float -> real:float -> float
(** Signed percentage error: positive means overestimate.  Raises
    [Invalid_argument] when [real = 0]. *)

val percent_string : estimated:float -> real:float -> string
(** E.g. ["+2.6%"] or ["-17.0%"]. *)

val f0 : float -> string
(** A float with no decimals ("1234"). *)

val f2 : float -> string
(** A float with two decimals ("1.23"). *)

val aspect_string : float -> string
(** A width/height ratio in the paper's "1:r" notation. *)
