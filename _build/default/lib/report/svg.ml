type style = {
  fill : string;
  stroke : string;
  opacity : float;
}

let cell_style = { fill = "#7c9cc4"; stroke = "#2d4a6b"; opacity = 0.9 }

let feed_style = { fill = "#e8b84b"; stroke = "#a67c00"; opacity = 0.9 }

let channel_style = { fill = "#e8e8f0"; stroke = "#b0b0c0"; opacity = 0.8 }

let outline_style = { fill = "none"; stroke = "#222222"; opacity = 1.0 }

type item = {
  rect : float * float * float * float;
  style : style;
  label : string option;
}

let escape s =
  let buf = Buffer.create (String.length s) in
  String.iter
    (fun c ->
      match c with
      | '<' -> Buffer.add_string buf "&lt;"
      | '>' -> Buffer.add_string buf "&gt;"
      | '&' -> Buffer.add_string buf "&amp;"
      | '"' -> Buffer.add_string buf "&quot;"
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let render ?(pixel_width = 800) ~width ~height items =
  if width <= 0. || height <= 0. then
    invalid_arg "Svg.render: non-positive scene dimensions";
  if pixel_width < 1 then invalid_arg "Svg.render: pixel_width < 1";
  let scale = Float.of_int pixel_width /. width in
  let px v = v *. scale in
  let pixel_height = px height in
  let buf = Buffer.create 4096 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  addf
    "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"%d\" height=\"%.1f\" \
     viewBox=\"0 0 %d %.1f\">\n"
    pixel_width pixel_height pixel_width pixel_height;
  addf "<rect width=\"100%%\" height=\"100%%\" fill=\"#fdfdfb\"/>\n";
  List.iter
    (fun item ->
      let x, y, w, h = item.rect in
      (* flip: layout y grows up, SVG y grows down *)
      let sx = px x and sy = pixel_height -. px (y +. h) in
      let sw = px w and sh = px h in
      addf
        "<rect x=\"%.2f\" y=\"%.2f\" width=\"%.2f\" height=\"%.2f\" \
         fill=\"%s\" stroke=\"%s\" stroke-width=\"1\" opacity=\"%.2f\"/>\n"
        sx sy sw sh item.style.fill item.style.stroke item.style.opacity;
      match item.label with
      | Some label when sw > 30. && sh > 10. ->
          let font = Float.min 14. (Float.max 6. (sh /. 3.)) in
          addf
            "<text x=\"%.2f\" y=\"%.2f\" font-size=\"%.1f\" \
             font-family=\"monospace\" text-anchor=\"middle\" \
             fill=\"#1a1a1a\">%s</text>\n"
            (sx +. (sw /. 2.))
            (sy +. (sh /. 2.) +. (font /. 3.))
            font (escape label)
      | Some _ | None -> ())
    items;
  addf "</svg>\n";
  Buffer.contents buf

let write ~path contents =
  match
    Out_channel.with_open_text path (fun oc -> Out_channel.output_string oc contents)
  with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg
