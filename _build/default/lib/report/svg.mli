(** Minimal SVG rendering of rectangle scenes.

    Renders layouts and floor plans as standalone SVG documents: a scene
    is a list of labelled, styled rectangles in layout coordinates (y up);
    the writer flips to screen coordinates, scales to a target pixel
    width, and emits valid XML. *)

type style = {
  fill : string;  (** CSS colour *)
  stroke : string;
  opacity : float;  (** in [0, 1] *)
}

val cell_style : style
(** Blue-grey solid: placed cells / modules. *)

val feed_style : style
(** Amber: feed-throughs. *)

val channel_style : style
(** Pale stripe: routing channels. *)

val outline_style : style
(** Transparent with a dark border: bounding boxes. *)

type item = {
  rect : float * float * float * float;  (** x, y (up), w, h in layout units *)
  style : style;
  label : string option;  (** drawn centred when the box is big enough *)
}

val render : ?pixel_width:int -> width:float -> height:float -> item list -> string
(** A standalone SVG document for a scene of [width] x [height] layout
    units, scaled to [pixel_width] pixels (default 800).  Raises
    [Invalid_argument] on non-positive dimensions. *)

val write : path:string -> string -> (unit, string) result
