type align = Left | Right

type row = Cells of string list | Separator

type t = {
  columns : (string * align) list;
  mutable rows : row list;  (** reversed *)
}

let create ~columns =
  if columns = [] then invalid_arg "Table.create: no columns";
  { columns; rows = [] }

let add_row t cells =
  if List.length cells <> List.length t.columns then
    invalid_arg "Table.add_row: cell count mismatch";
  t.rows <- Cells cells :: t.rows

let add_separator t = t.rows <- Separator :: t.rows

let render t =
  let headers = List.map fst t.columns in
  let rows = List.rev t.rows in
  let widths =
    List.mapi
      (fun i header ->
        List.fold_left
          (fun acc row ->
            match row with
            | Separator -> acc
            | Cells cells -> Stdlib.max acc (String.length (List.nth cells i)))
          (String.length header) rows)
      headers
  in
  let pad align width s =
    let fill = String.make (Stdlib.max 0 (width - String.length s)) ' ' in
    match align with Left -> s ^ fill | Right -> fill ^ s
  in
  let aligns = List.map snd t.columns in
  let render_cells cells =
    let padded =
      List.mapi
        (fun i cell -> pad (List.nth aligns i) (List.nth widths i) cell)
        cells
    in
    "| " ^ String.concat " | " padded ^ " |"
  in
  let rule =
    "+"
    ^ String.concat "+" (List.map (fun w -> String.make (w + 2) '-') widths)
    ^ "+"
  in
  let body =
    List.map
      (fun row ->
        match row with Separator -> rule | Cells cells -> render_cells cells)
      rows
  in
  String.concat "\n" ((rule :: render_cells headers :: rule :: body) @ [ rule ])

let print t = print_endline (render t)
