(** ASCII table rendering for the benchmark harness (the tables the paper
    prints). *)

type align = Left | Right

type t

val create : columns:(string * align) list -> t
(** Raises [Invalid_argument] on an empty column list. *)

val add_row : t -> string list -> unit
(** Raises [Invalid_argument] when the cell count differs from the column
    count. *)

val add_separator : t -> unit
(** A horizontal rule between row groups. *)

val render : t -> string
(** Fixed-width table with a header row and column rules. *)

val print : t -> unit
(** [render] to stdout, followed by a newline. *)
