lib/sim/logic.ml: Fun List Option
