lib/sim/logic.mli:
