lib/sim/simulator.ml: Array Format List Logic Mae_netlist Printf String
