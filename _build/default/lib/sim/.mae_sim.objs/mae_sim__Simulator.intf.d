lib/sim/simulator.mli: Format Mae_netlist
