let table kind =
  match kind with
  | "inv" -> Some (1, fun v -> not (List.nth v 0))
  | "buf" -> Some (1, fun v -> List.nth v 0)
  | "nand2" -> Some (2, fun v -> not (List.nth v 0 && List.nth v 1))
  | "nand3" -> Some (3, fun v -> not (List.for_all Fun.id v))
  | "nand4" -> Some (4, fun v -> not (List.for_all Fun.id v))
  | "nor2" -> Some (2, fun v -> not (List.nth v 0 || List.nth v 1))
  | "nor3" -> Some (3, fun v -> not (List.exists Fun.id v))
  | "xor2" -> Some (2, fun v -> List.nth v 0 <> List.nth v 1)
  | "aoi22" ->
      Some
        ( 4,
          fun v ->
            not
              ((List.nth v 0 && List.nth v 1) || (List.nth v 2 && List.nth v 3)) )
  | "mux2" ->
      Some (3, fun v -> if List.nth v 2 then List.nth v 1 else List.nth v 0)
  | _ -> None

let eval ~kind ~inputs =
  match table kind with
  | None -> Error kind
  | Some (arity, f) ->
      if List.length inputs <> arity then Error kind else Ok (f inputs)

let is_combinational kind = Option.is_some (table kind)

let arity kind = Option.map fst (table kind)
