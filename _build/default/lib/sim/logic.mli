(** Boolean semantics of the standard-cell kinds.

    Pin order matches the cell libraries: inputs first, output last.
    [mux2 (a, b, s)] selects [b] when [s] is true. *)

val eval : kind:string -> inputs:bool list -> (bool, string) result
(** Output value of a combinational cell; [Error kind] for an unknown or
    sequential kind ([dff], [latch]) or an input-arity mismatch. *)

val is_combinational : string -> bool
(** True for the kinds {!eval} supports. *)

val arity : string -> int option
(** Input count of a supported kind. *)
