type error =
  | Unsupported_kind of { device : string; kind : string }
  | Multiple_drivers of { net : string }
  | Undriven_net of { net : string }
  | Combinational_cycle of { net : string }
  | Missing_input of { port : string }

let pp_error ppf = function
  | Unsupported_kind { device; kind } ->
      Format.fprintf ppf "device %s: unsupported kind %s" device kind
  | Multiple_drivers { net } -> Format.fprintf ppf "net %s has multiple drivers" net
  | Undriven_net { net } -> Format.fprintf ppf "net %s is read but never driven" net
  | Combinational_cycle { net } ->
      Format.fprintf ppf "combinational cycle through net %s" net
  | Missing_input { port } -> Format.fprintf ppf "no value for input port %s" port

exception Sim_error of error

let fail e = raise (Sim_error e)

let eval (c : Mae_netlist.Circuit.t) ~inputs =
  let net_count = Mae_netlist.Circuit.net_count c in
  (* driver.(n) = Some device whose last pin is net n *)
  let driver = Array.make net_count None in
  let check_device (d : Mae_netlist.Device.t) =
    if not (Logic.is_combinational d.kind) then
      fail (Unsupported_kind { device = d.name; kind = d.kind });
    match Array.length d.pins with
    | 0 -> fail (Unsupported_kind { device = d.name; kind = d.kind })
    | n -> begin
        let out = d.pins.(n - 1) in
        match driver.(out) with
        | Some _ -> fail (Multiple_drivers { net = c.nets.(out).Mae_netlist.Net.name })
        | None -> driver.(out) <- Some d
      end
  in
  let values = Array.make net_count None in
  let in_progress = Array.make net_count false in
  let set_input (p : Mae_netlist.Port.t) =
    match p.direction with
    | Mae_netlist.Port.Input | Mae_netlist.Port.Inout -> begin
        match List.assoc_opt p.name inputs with
        | Some v -> values.(p.net) <- Some v
        | None ->
            if p.direction = Mae_netlist.Port.Input then
              fail (Missing_input { port = p.name })
      end
    | Mae_netlist.Port.Output -> ()
  in
  let rec value_of net =
    match values.(net) with
    | Some v -> v
    | None ->
        if in_progress.(net) then
          fail (Combinational_cycle { net = c.nets.(net).Mae_netlist.Net.name });
        in_progress.(net) <- true;
        let v =
          match driver.(net) with
          | None -> fail (Undriven_net { net = c.nets.(net).Mae_netlist.Net.name })
          | Some (d : Mae_netlist.Device.t) ->
              let n_pins = Array.length d.pins in
              let ins =
                List.init (n_pins - 1) (fun i -> value_of d.pins.(i))
              in
              begin
                match Logic.eval ~kind:d.kind ~inputs:ins with
                | Ok v -> v
                | Error kind -> fail (Unsupported_kind { device = d.name; kind })
              end
        in
        in_progress.(net) <- false;
        values.(net) <- Some v;
        v
  in
  match
    Array.iter check_device c.devices;
    Array.iter set_input c.ports;
    Array.to_list c.ports
    |> List.filter_map (fun (p : Mae_netlist.Port.t) ->
           match p.direction with
           | Mae_netlist.Port.Output -> Some (p.name, value_of p.net)
           | Mae_netlist.Port.Input | Mae_netlist.Port.Inout -> None)
  with
  | outputs -> Ok outputs
  | exception Sim_error e -> Error e

(* trailing integer of a name like "p12" *)
let index_suffix name =
  let n = String.length name in
  let rec start i =
    if i > 0 && name.[i - 1] >= '0' && name.[i - 1] <= '9' then start (i - 1)
    else i
  in
  let s = start n in
  if s = n then None else int_of_string_opt (String.sub name s (n - s))

let eval_vector c ~inputs =
  match eval c ~inputs with
  | Error e -> Error e
  | Ok outputs ->
      let packed =
        List.fold_left
          (fun acc (name, v) ->
            match index_suffix name with
            | Some k when v -> acc lor (1 lsl k)
            | Some _ | None -> acc)
          0 outputs
      in
      Ok packed

let bits ~prefix ~width value =
  List.init width (fun k ->
      (Printf.sprintf "%s%d" prefix k, (value lsr k) land 1 = 1))

let sequential (c : Mae_netlist.Circuit.t) ~clock ~stimuli =
  (* Split devices: dff cells become state elements; everything else must
     be combinational.  The clock port and the nets that merely buffer it
     are outside the evaluated logic. *)
  let net_count = Mae_netlist.Circuit.net_count c in
  let dffs = ref [] in
  let combinational = ref [] in
  let classify (d : Mae_netlist.Device.t) =
    match d.kind with
    | "dff" ->
        if Array.length d.pins <> 3 then
          fail (Unsupported_kind { device = d.name; kind = d.kind })
        else dffs := d :: !dffs
    | "latch" -> fail (Unsupported_kind { device = d.name; kind = d.kind })
    | _ -> combinational := d :: !combinational
  in
  let driver = Array.make net_count None in
  let note_driver (d : Mae_netlist.Device.t) =
    let out = d.pins.(Array.length d.pins - 1) in
    match driver.(out) with
    | Some _ -> fail (Multiple_drivers { net = c.nets.(out).Mae_netlist.Net.name })
    | None -> driver.(out) <- Some d
  in
  (* one combinational evaluation pass: returns a net-value accessor for
     the given flip-flop state and inputs *)
  let pass ~state ~inputs =
    let values = Array.make net_count None in
    (* flip-flop outputs read their stored state *)
    List.iter
      (fun ((d : Mae_netlist.Device.t), v) -> values.(d.pins.(2)) <- Some v)
      state;
    let in_progress = Array.make net_count false in
    List.iter
      (fun (p : Mae_netlist.Port.t) ->
        match p.direction with
        | Mae_netlist.Port.Input | Mae_netlist.Port.Inout -> begin
            match List.assoc_opt p.name inputs with
            | Some v -> values.(p.net) <- Some v
            | None ->
                if
                  p.direction = Mae_netlist.Port.Input
                  && not (String.equal p.name clock)
                then fail (Missing_input { port = p.name })
                else if String.equal p.name clock then
                  (* the clock level is irrelevant between edges *)
                  values.(p.net) <- Some false
          end
        | Mae_netlist.Port.Output -> ())
      (Array.to_list c.ports);
    let rec value_of net =
      match values.(net) with
      | Some v -> v
      | None ->
          if in_progress.(net) then
            fail (Combinational_cycle { net = c.nets.(net).Mae_netlist.Net.name });
          in_progress.(net) <- true;
          let v =
            match driver.(net) with
            | None ->
                fail (Undriven_net { net = c.nets.(net).Mae_netlist.Net.name })
            | Some (d : Mae_netlist.Device.t) ->
                let n_pins = Array.length d.pins in
                let ins = List.init (n_pins - 1) (fun i -> value_of d.pins.(i)) in
                begin
                  match Logic.eval ~kind:d.kind ~inputs:ins with
                  | Ok v -> v
                  | Error kind -> fail (Unsupported_kind { device = d.name; kind })
                end
          in
          in_progress.(net) <- false;
          values.(net) <- Some v;
          v
    in
    value_of
  in
  (* a cycle: latch the d pins into the flip-flops, then report the output
     ports as seen after the rising edge (inputs held) *)
  let eval_cycle ~state ~inputs =
    let before = pass ~state ~inputs in
    let next_state =
      List.map (fun ((d : Mae_netlist.Device.t), _) -> (d, before d.pins.(0))) state
    in
    let after = pass ~state:next_state ~inputs in
    let outputs =
      Array.to_list c.ports
      |> List.filter_map (fun (p : Mae_netlist.Port.t) ->
             match p.direction with
             | Mae_netlist.Port.Output -> Some (p.name, after p.net)
             | Mae_netlist.Port.Input | Mae_netlist.Port.Inout -> None)
    in
    (outputs, next_state)
  in
  match
    Array.iter classify c.devices;
    List.iter note_driver !combinational;
    List.iter note_driver !dffs;
    let state = ref (List.map (fun d -> (d, false)) !dffs) in
    List.map
      (fun inputs ->
        let outputs, next = eval_cycle ~state:!state ~inputs in
        state := next;
        outputs)
      stimuli
  with
  | outputs -> Ok outputs
  | exception Sim_error e -> Error e
