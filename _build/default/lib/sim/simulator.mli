(** Combinational gate-level simulation.

    Validates the workload generators functionally: an adder must add, a
    multiplier multiply, a decoder decode.  The convention throughout the
    cell libraries is that a device's {e last} pin drives its output net;
    every other pin reads.  Sequential kinds ([dff], [latch]) are not
    supported — use only on combinational circuits. *)

type error =
  | Unsupported_kind of { device : string; kind : string }
  | Multiple_drivers of { net : string }
  | Undriven_net of { net : string }  (** read but neither driven nor an input *)
  | Combinational_cycle of { net : string }
  | Missing_input of { port : string }

val pp_error : Format.formatter -> error -> unit

val eval :
  Mae_netlist.Circuit.t ->
  inputs:(string * bool) list ->
  ((string * bool) list, error) result
(** Evaluate with the given values on the input ports (by port name, which
    must cover every [Input] port).  Returns the values of the [Output]
    ports, in port order. *)

val eval_vector :
  Mae_netlist.Circuit.t -> inputs:(string * bool) list -> (int, error) result
(** Like {!eval}, but packs outputs named [x0, x1, ...] little-endian into
    an integer (bit k = the port whose name ends in the number k, ordered
    numerically).  Convenient for arithmetic circuits. *)

val bits : prefix:string -> width:int -> int -> (string * bool) list
(** [bits ~prefix:"a" ~width:4 5] = [a0=1; a1=0; a2=1; a3=0]: little-endian
    input assignment for a bus. *)

val sequential :
  Mae_netlist.Circuit.t ->
  clock:string ->
  stimuli:(string * bool) list list ->
  ((string * bool) list list, error) result
(** Cycle-accurate simulation of a synchronous circuit whose only
    sequential elements are [dff] cells clocked (directly or through
    buffers) by the [clock] input port.  Flip-flops start at false; each
    stimulus list gives the cycle's remaining input values; the result
    lists the output-port values {e after} each rising edge.  The [dff]
    data pin is pin 0, clock pin 1, output pin 2, matching the cell
    libraries. *)
