lib/tech/builtin.ml: Device_kind List Process String
