lib/tech/builtin.mli: Process
