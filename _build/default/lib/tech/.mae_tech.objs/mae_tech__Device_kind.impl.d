lib/tech/device_kind.ml: Format Mae_geom String
