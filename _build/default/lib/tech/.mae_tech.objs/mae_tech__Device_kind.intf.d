lib/tech/device_kind.mli: Format Mae_geom
