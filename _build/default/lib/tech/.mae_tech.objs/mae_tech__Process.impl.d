lib/tech/process.ml: Device_kind Format Hashtbl List Mae_geom Option String
