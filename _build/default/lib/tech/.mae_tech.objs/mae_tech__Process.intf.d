lib/tech/process.mli: Device_kind Format Mae_geom
