lib/tech/registry.ml: Builtin Hashtbl List Process String Tech_parser
