lib/tech/registry.mli: Process Tech_parser
