lib/tech/tech_parser.ml: Buffer Device_kind Format In_channel List Printf Process String
