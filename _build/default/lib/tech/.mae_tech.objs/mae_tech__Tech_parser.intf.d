lib/tech/tech_parser.mli: Format Process
