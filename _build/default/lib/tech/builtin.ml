let transistor name polarity ~w ~h =
  Device_kind.make ~name ~category:(Transistor polarity) ~width:w ~height:h

let gate name ~w ~h = Device_kind.make ~name ~category:Logic_gate ~width:w ~height:h

let storage name ~w ~h = Device_kind.make ~name ~category:Storage ~width:w ~height:h

let pad name ~w ~h = Device_kind.make ~name ~category:Pad ~width:w ~height:h

let feed name ~w ~h = Device_kind.make ~name ~category:Feed_through ~width:w ~height:h

(* Mead-Conway nMOS: a minimum enhancement pull-down with source/drain
   contacts occupies roughly 4x10 lambda; the 4:1 depletion pull-up is
   longer.  Gate cells are sized for a 40-lambda row (power rails, one
   diffusion strip, poly inputs at 8-lambda pitch). *)
let nmos25_devices =
  [
    transistor "nenh" Device_kind.Nmos_enhancement ~w:4. ~h:10.;
    transistor "ndep" Device_kind.Nmos_depletion ~w:4. ~h:14.;
    transistor "nenh_wide" Device_kind.Nmos_enhancement ~w:8. ~h:10.;
    gate "inv" ~w:8. ~h:40.;
    gate "buf" ~w:12. ~h:40.;
    gate "nand2" ~w:12. ~h:40.;
    gate "nand3" ~w:16. ~h:40.;
    gate "nand4" ~w:20. ~h:40.;
    gate "nor2" ~w:12. ~h:40.;
    gate "nor3" ~w:16. ~h:40.;
    gate "aoi22" ~w:20. ~h:40.;
    gate "xor2" ~w:24. ~h:40.;
    gate "mux2" ~w:24. ~h:40.;
    storage "latch" ~w:28. ~h:40.;
    storage "dff" ~w:40. ~h:40.;
    pad "iopad" ~w:80. ~h:80.;
    feed "feed" ~w:7. ~h:40.;
  ]

let nmos25 =
  Process.make ~name:"nmos25" ~lambda_microns:2.5 ~row_height:40.
    ~track_pitch:7. ~feed_through_width:7. ~port_pitch:8. ~min_spacing:3.
    ~devices:nmos25_devices

(* CMOS doubles the transistor count per gate (complementary pairs) but
   avoids the long depletion loads; cells are a little wider, rows taller
   (n-well plus p/n diffusion strips). *)
let cmos20_devices =
  [
    transistor "nenh" Device_kind.Nmos_enhancement ~w:4. ~h:10.;
    transistor "pmos" Device_kind.Pmos ~w:4. ~h:14.;
    gate "inv" ~w:10. ~h:44.;
    gate "buf" ~w:16. ~h:44.;
    gate "nand2" ~w:16. ~h:44.;
    gate "nand3" ~w:22. ~h:44.;
    gate "nand4" ~w:28. ~h:44.;
    gate "nor2" ~w:16. ~h:44.;
    gate "nor3" ~w:22. ~h:44.;
    gate "aoi22" ~w:26. ~h:44.;
    gate "xor2" ~w:30. ~h:44.;
    gate "mux2" ~w:30. ~h:44.;
    storage "latch" ~w:36. ~h:44.;
    storage "dff" ~w:52. ~h:44.;
    pad "iopad" ~w:90. ~h:90.;
    feed "feed" ~w:6. ~h:44.;
  ]

let cmos20 =
  Process.make ~name:"cmos20" ~lambda_microns:2.0 ~row_height:44.
    ~track_pitch:6. ~feed_through_width:6. ~port_pitch:8. ~min_spacing:3.
    ~devices:cmos20_devices

let cmos15 =
  let shrink (d : Device_kind.t) =
    Device_kind.make ~name:d.name ~category:d.category ~width:d.width
      ~height:d.height
  in
  Process.make ~name:"cmos15" ~lambda_microns:1.5 ~row_height:44.
    ~track_pitch:5. ~feed_through_width:5. ~port_pitch:7. ~min_spacing:3.
    ~devices:(List.map shrink cmos20_devices)

let all = [ nmos25; cmos20; cmos15 ]

let find name =
  List.find_opt (fun (p : Process.t) -> String.equal p.name name) all
