(** Built-in fabrication processes.

    [nmos25] models the paper's target: nMOS with lambda = 2.5 um under
    Mead-Conway design rules (the Newkirk & Mathews examples of Table 1).
    [cmos20] and [cmos15] demonstrate the multi-technology support claimed
    in section 3; their gate footprints shrink with lambda while the
    relative proportions stay Mead-Conway-like. *)

val nmos25 : Process.t
(** nMOS, lambda = 2.5 um.  Transistor kinds: [nenh] (enhancement pull-down,
    4x10 L), [ndep] (depletion pull-up, 4x14 L); gate-level kinds for
    standard-cell estimation ([inv] .. [dff]). *)

val cmos20 : Process.t
(** CMOS, lambda = 2.0 um, complementary pairs double the transistor count
    per gate but avoid the wide depletion loads. *)

val cmos15 : Process.t
(** CMOS, lambda = 1.5 um, one metal layer more: narrower track pitch. *)

val all : Process.t list

val find : string -> Process.t option
(** Look up a built-in process by name. *)
