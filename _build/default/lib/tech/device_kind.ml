type category =
  | Transistor of polarity
  | Logic_gate
  | Storage
  | Pad
  | Feed_through

and polarity = Nmos_enhancement | Nmos_depletion | Pmos

type t = {
  name : string;
  category : category;
  width : Mae_geom.Lambda.t;
  height : Mae_geom.Lambda.t;
}

let make ~name ~category ~width ~height =
  if String.length name = 0 then invalid_arg "Device_kind.make: empty name";
  if width <= 0. || height <= 0. then
    invalid_arg "Device_kind.make: non-positive extent";
  { name; category; width; height }

let area t = t.width *. t.height

let is_transistor t =
  match t.category with
  | Transistor _ -> true
  | Logic_gate | Storage | Pad | Feed_through -> false

let category_of_string = function
  | "nenh" -> Some (Transistor Nmos_enhancement)
  | "ndep" -> Some (Transistor Nmos_depletion)
  | "pmos" -> Some (Transistor Pmos)
  | "gate" -> Some Logic_gate
  | "storage" -> Some Storage
  | "pad" -> Some Pad
  | "feedthrough" -> Some Feed_through
  | _ -> None

let category_to_string = function
  | Transistor Nmos_enhancement -> "nenh"
  | Transistor Nmos_depletion -> "ndep"
  | Transistor Pmos -> "pmos"
  | Logic_gate -> "gate"
  | Storage -> "storage"
  | Pad -> "pad"
  | Feed_through -> "feedthrough"

let pp ppf t =
  Format.fprintf ppf "%s (%s, %.1fx%.1f L)" t.name
    (category_to_string t.category)
    t.width t.height
