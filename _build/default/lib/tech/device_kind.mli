(** Physical device kinds known to a fabrication process.

    The paper's process database records "the areas of different types of
    devices"; a device kind couples a name (referenced from netlists and
    cell libraries) with its layout footprint in lambda units. *)

type category =
  | Transistor of polarity  (** a single MOS transistor *)
  | Logic_gate  (** a standard cell implementing a logic function *)
  | Storage  (** latch / flip-flop standard cell *)
  | Pad  (** an I/O pad *)
  | Feed_through  (** the feed-through cell inserted between rows *)

and polarity = Nmos_enhancement | Nmos_depletion | Pmos

type t = {
  name : string;
  category : category;
  width : Mae_geom.Lambda.t;
  height : Mae_geom.Lambda.t;
}

val make :
  name:string ->
  category:category ->
  width:Mae_geom.Lambda.t ->
  height:Mae_geom.Lambda.t ->
  t
(** Raises [Invalid_argument] on an empty name or non-positive extents. *)

val area : t -> Mae_geom.Lambda.area

val is_transistor : t -> bool

val category_of_string : string -> category option
(** Parses the keywords of the [.tech] file format: ["nenh"], ["ndep"],
    ["pmos"], ["gate"], ["storage"], ["pad"], ["feedthrough"]. *)

val category_to_string : category -> string

val pp : Format.formatter -> t -> unit
