type t = {
  name : string;
  lambda_microns : float;
  row_height : Mae_geom.Lambda.t;
  track_pitch : Mae_geom.Lambda.t;
  feed_through_width : Mae_geom.Lambda.t;
  port_pitch : Mae_geom.Lambda.t;
  min_spacing : Mae_geom.Lambda.t;
  devices : Device_kind.t list;
}

let check_unique_names devices =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun (d : Device_kind.t) ->
      if Hashtbl.mem seen d.name then
        invalid_arg ("Process.make: duplicate device kind " ^ d.name);
      Hashtbl.add seen d.name ())
    devices

let make ~name ~lambda_microns ~row_height ~track_pitch ~feed_through_width
    ~port_pitch ~min_spacing ~devices =
  if String.length name = 0 then invalid_arg "Process.make: empty name";
  let positive what v =
    if v <= 0. then invalid_arg ("Process.make: non-positive " ^ what)
  in
  positive "lambda" lambda_microns;
  positive "row_height" row_height;
  positive "track_pitch" track_pitch;
  positive "feed_through_width" feed_through_width;
  positive "port_pitch" port_pitch;
  positive "min_spacing" min_spacing;
  check_unique_names devices;
  {
    name;
    lambda_microns;
    row_height;
    track_pitch;
    feed_through_width;
    port_pitch;
    min_spacing;
    devices;
  }

let find_device t name =
  List.find_opt (fun (d : Device_kind.t) -> String.equal d.name name) t.devices

let find_device_exn t name =
  match find_device t name with Some d -> d | None -> raise Not_found

let device_area t name = Option.map Device_kind.area (find_device t name)

let with_devices t devices =
  check_unique_names devices;
  { t with devices }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>process %s (lambda=%.2fum, row=%.0fL, track=%.0fL, feed=%.0fL,@ \
     port=%.0fL, spacing=%.0fL, %d device kinds)@]"
    t.name t.lambda_microns t.row_height t.track_pitch t.feed_through_width
    t.port_pitch t.min_spacing (List.length t.devices)
