type t = (string, Process.t) Hashtbl.t

let add t (p : Process.t) = Hashtbl.replace t p.name p

let create ?(builtins = true) () =
  let t = Hashtbl.create 8 in
  if builtins then List.iter (add t) Builtin.all;
  t

let load_result t = function
  | Error e -> Error e
  | Ok processes ->
      List.iter (add t) processes;
      Ok (List.length processes)

let load_string t text = load_result t (Tech_parser.parse_string text)

let load_file t path = load_result t (Tech_parser.parse_file path)

let find t name = Hashtbl.find_opt t name

let find_exn t name =
  match find t name with Some p -> p | None -> raise Not_found

let names t =
  Hashtbl.fold (fun name _ acc -> name :: acc) t []
  |> List.sort String.compare
