(** A mutable collection of named fabrication processes.

    Figure 1 of the paper shows a process data base feeding both
    estimators; a registry starts pre-loaded with the built-in processes
    and accepts additional ones from [.tech] files. *)

type t

val create : ?builtins:bool -> unit -> t
(** [create ()] contains the {!Builtin} processes; pass [~builtins:false]
    for an empty registry. *)

val add : t -> Process.t -> unit
(** Replaces any same-named process. *)

val load_string : t -> string -> (int, Tech_parser.error) result
(** Parse [.tech] text and add every process; returns how many were
    added. *)

val load_file : t -> string -> (int, Tech_parser.error) result

val find : t -> string -> Process.t option

val find_exn : t -> string -> Process.t
(** Raises [Not_found]. *)

val names : t -> string list
(** Sorted. *)
