type error = { line : int; message : string }

let pp_error ppf e = Format.fprintf ppf "line %d: %s" e.line e.message

exception Parse_error of error

let fail line message = raise (Parse_error { line; message })

type partial = {
  mutable name : string option;
  mutable lambda : float option;
  mutable row_height : float option;
  mutable track_pitch : float option;
  mutable feed_width : float option;
  mutable port_pitch : float option;
  mutable min_spacing : float option;
  mutable devices : Device_kind.t list;
}

let fresh () =
  {
    name = None;
    lambda = None;
    row_height = None;
    track_pitch = None;
    feed_width = None;
    port_pitch = None;
    min_spacing = None;
    devices = [];
  }

let float_field line value what =
  match float_of_string_opt value with
  | Some f when f > 0. -> f
  | Some _ -> fail line (what ^ " must be positive")
  | None -> fail line ("malformed number for " ^ what ^ ": " ^ value)

let finish line p =
  let req what = function
    | Some v -> v
    | None -> fail line ("missing field " ^ what)
  in
  let name = req "process" p.name in
  try
    Process.make ~name
      ~lambda_microns:(req "lambda" p.lambda)
      ~row_height:(req "row-height" p.row_height)
      ~track_pitch:(req "track-pitch" p.track_pitch)
      ~feed_through_width:(req "feed-width" p.feed_width)
      ~port_pitch:(req "port-pitch" p.port_pitch)
      ~min_spacing:(req "min-spacing" p.min_spacing)
      ~devices:(List.rev p.devices)
  with Invalid_argument msg -> fail line msg

let strip_comment line =
  match String.index_opt line '#' with
  | Some i -> String.sub line 0 i
  | None -> line

let tokens_of_line line = String.split_on_char ' ' line |> List.filter (( <> ) "")

let parse_string text =
  let lines = String.split_on_char '\n' text in
  let processes = ref [] in
  let current = ref None in
  let handle lineno raw =
    let toks = tokens_of_line (strip_comment raw) in
    match (toks, !current) with
    | [], _ -> ()
    | "process" :: rest, None -> begin
        match rest with
        | [ name ] ->
            let p = fresh () in
            p.name <- Some name;
            current := Some p
        | _ -> fail lineno "process takes exactly one name"
      end
    | "process" :: _, Some _ -> fail lineno "nested process block"
    | _ :: _, None -> fail lineno "directive outside a process block"
    | [ "end" ], Some p ->
        processes := finish lineno p :: !processes;
        current := None
    | [ key; value ], Some p -> begin
        match key with
        | "lambda" -> p.lambda <- Some (float_field lineno value "lambda")
        | "row-height" -> p.row_height <- Some (float_field lineno value "row-height")
        | "track-pitch" -> p.track_pitch <- Some (float_field lineno value "track-pitch")
        | "feed-width" -> p.feed_width <- Some (float_field lineno value "feed-width")
        | "port-pitch" -> p.port_pitch <- Some (float_field lineno value "port-pitch")
        | "min-spacing" -> p.min_spacing <- Some (float_field lineno value "min-spacing")
        | _ -> fail lineno ("unknown directive " ^ key)
      end
    | [ "device"; name; cat; w; h ], Some p -> begin
        match Device_kind.category_of_string cat with
        | None -> fail lineno ("unknown device category " ^ cat)
        | Some category ->
            let width = float_field lineno w "device width" in
            let height = float_field lineno h "device height" in
            let kind =
              try Device_kind.make ~name ~category ~width ~height
              with Invalid_argument msg -> fail lineno msg
            in
            p.devices <- kind :: p.devices
      end
    | _ :: _, Some _ -> fail lineno ("malformed line: " ^ String.trim raw)
  in
  try
    List.iteri (fun i raw -> handle (i + 1) raw) lines;
    begin
      match !current with
      | Some _ -> fail (List.length lines) "unterminated process block"
      | None -> ()
    end;
    Ok (List.rev !processes)
  with Parse_error e -> Error e

let parse_file path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> parse_string text
  | exception Sys_error msg -> Error { line = 0; message = msg }

let to_string (p : Process.t) =
  let buf = Buffer.create 256 in
  let addf fmt = Printf.ksprintf (fun s -> Buffer.add_string buf s) fmt in
  addf "process %s\n" p.name;
  addf "lambda %g\n" p.lambda_microns;
  addf "row-height %g\n" p.row_height;
  addf "track-pitch %g\n" p.track_pitch;
  addf "feed-width %g\n" p.feed_through_width;
  addf "port-pitch %g\n" p.port_pitch;
  addf "min-spacing %g\n" p.min_spacing;
  List.iter
    (fun (d : Device_kind.t) ->
      addf "device %s %s %g %g\n" d.name
        (Device_kind.category_to_string d.category)
        d.width d.height)
    p.devices;
  addf "end\n";
  Buffer.contents buf
