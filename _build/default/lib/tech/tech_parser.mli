(** Parser for the textual process-description format ([.tech] files).

    The format is line-oriented; [#] starts a comment.  Example:

    {v
    process nmos25
    lambda 2.5
    row-height 40
    track-pitch 7
    feed-width 7
    port-pitch 8
    min-spacing 3
    device nenh nenh 4 10
    device inv gate 8 40
    end
    v}

    A file may contain several [process ... end] blocks.  This implements
    the paper's claim that "multiple process data bases can be stored in
    the computer system to describe various VLSI technologies". *)

type error = { line : int; message : string }

val pp_error : Format.formatter -> error -> unit

val parse_string : string -> (Process.t list, error) result

val parse_file : string -> (Process.t list, error) result
(** Reads the file; I/O failures are reported as an [error] on line 0. *)

val to_string : Process.t -> string
(** Render a process back to the [.tech] format (round-trips through
    {!parse_string}). *)
