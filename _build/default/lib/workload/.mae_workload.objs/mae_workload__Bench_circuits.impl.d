lib/workload/bench_circuits.ml: Format Generators List Mae_celllib Mae_netlist String
