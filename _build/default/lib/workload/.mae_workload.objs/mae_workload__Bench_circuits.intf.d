lib/workload/bench_circuits.mli: Mae_netlist
