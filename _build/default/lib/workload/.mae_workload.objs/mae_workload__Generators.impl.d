lib/workload/generators.ml: List Mae_netlist Printf String
