lib/workload/generators.mli: Mae_netlist
