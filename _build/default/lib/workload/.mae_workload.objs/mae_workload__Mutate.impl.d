lib/workload/mutate.ml: Array List Mae_netlist Printf
