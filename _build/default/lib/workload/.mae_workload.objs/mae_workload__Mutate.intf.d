lib/workload/mutate.mli: Mae_netlist
