lib/workload/random_circuit.ml: Array List Mae_netlist Mae_prob Printf Stdlib
