lib/workload/random_circuit.mli: Mae_netlist Mae_prob
