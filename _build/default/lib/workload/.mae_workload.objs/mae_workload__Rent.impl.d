lib/workload/rent.ml: Array Float List Mae_netlist Mae_prob Printf Random_circuit Stdlib
