lib/workload/rent.mli: Mae_netlist Mae_prob
