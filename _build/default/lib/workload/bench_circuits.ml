type entry = {
  name : string;
  description : string;
  circuit : Mae_netlist.Circuit.t;
}

let flatten circuit =
  match Mae_celllib.Expand.circuit Mae_celllib.Nmos_lib.library circuit with
  | Ok expanded -> expanded
  | Error e ->
      failwith
        (Format.asprintf "Bench_circuits.flatten: %a" Mae_celllib.Expand.pp_error e)

let table1 () =
  [
    {
      name = "pass8";
      description = "8-stage pass-transistor chain (all nets <= 2 components)";
      circuit = Generators.pass_chain 8;
    };
    {
      name = "invchain6";
      description = "6-stage nMOS inverter chain";
      circuit = Generators.inverter_chain 6;
    };
    {
      name = "fa_tx";
      description = "full adder, flattened to transistors";
      circuit = flatten (Generators.full_adder ());
    };
    {
      name = "dec2_tx";
      description = "2-to-4 decoder, flattened to transistors";
      circuit = flatten (Generators.decoder 2);
    };
    {
      name = "sr2_tx";
      description = "2-stage shift register, flattened to transistors";
      circuit = flatten (Generators.shift_register 2);
    };
  ]

let table2 () =
  [
    {
      name = "counter8";
      description = "8-bit synchronous counter, gate level";
      circuit = Generators.counter 8;
    };
    {
      name = "alu4";
      description = "4-bit ALU (add/sub/and/or/xor), gate level";
      circuit = Generators.alu 4;
    };
  ]

let find name =
  List.find_opt
    (fun e -> String.equal e.name name)
    (table1 () @ table2 ())
