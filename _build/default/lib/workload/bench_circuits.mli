(** The benchmark suites standing in for the paper's evaluation circuits.

    The paper's Table 1 used five small full-custom nMOS modules from
    Newkirk & Mathews' book and Table 2 used two moderate standard-cell
    circuits laid out with TimberWolf at Rutgers; neither data set is
    available, so these suites provide circuits of the same size class
    (see DESIGN.md, data substitutions).  All circuits target the
    [nmos25] process. *)

type entry = {
  name : string;
  description : string;
  circuit : Mae_netlist.Circuit.t;
}

val table1 : unit -> entry list
(** Five transistor-level modules for full-custom estimation:
    - [pass8]: an 8-stage pass-transistor chain (every net has at most two
      components — the Table 1 footnote case, zero estimated wire area);
    - [invchain6]: a 6-stage inverter chain;
    - [fa_tx]: a full adder flattened to transistors;
    - [dec2_tx]: a 2-to-4 decoder flattened to transistors;
    - [sr2_tx]: a 2-stage shift register flattened to transistors. *)

val table2 : unit -> entry list
(** Two gate-level modules for standard-cell estimation:
    - [counter8]: an 8-bit synchronous counter (~40 cells);
    - [alu4]: a 4-bit ALU (~60 cells). *)

val flatten : Mae_netlist.Circuit.t -> Mae_netlist.Circuit.t
(** Expand a gate-level nMOS circuit to transistors through
    {!Mae_celllib.Nmos_lib}.  Raises [Failure] if a kind has no template
    (the bench circuits never do). *)

val find : string -> entry option
(** Look up any suite entry by name. *)
