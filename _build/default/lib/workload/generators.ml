module Builder = Mae_netlist.Builder
module Port = Mae_netlist.Port

let add builder ~name ~kind ~nets =
  ignore (Builder.add_device builder ~name ~kind ~nets)

let in_port builder name = Builder.add_port builder ~name ~direction:Port.Input ~net:name

let out_port builder name =
  Builder.add_port builder ~name ~direction:Port.Output ~net:name

(* Instantiates the five cells of a one-bit full adder; nets are prefixed
   so several adders can share a builder. *)
let add_full_adder builder ~prefix ~a ~b ~cin ~sum ~cout =
  let n s = prefix ^ s in
  add builder ~name:(n "x1") ~kind:"xor2" ~nets:[ a; b; n "p" ];
  add builder ~name:(n "x2") ~kind:"xor2" ~nets:[ n "p"; cin; sum ];
  add builder ~name:(n "g1") ~kind:"nand2" ~nets:[ a; b; n "g" ];
  add builder ~name:(n "g2") ~kind:"nand2" ~nets:[ n "p"; cin; n "h" ];
  add builder ~name:(n "g3") ~kind:"nand2" ~nets:[ n "g"; n "h"; cout ]

let full_adder ?(name = "full_adder") ?(technology = "nmos25") () =
  let b = Builder.create ~name ~technology in
  List.iter (in_port b) [ "a"; "b"; "cin" ];
  List.iter (out_port b) [ "s"; "cout" ];
  add_full_adder b ~prefix:"fa_" ~a:"a" ~b:"b" ~cin:"cin" ~sum:"s" ~cout:"cout";
  Builder.build b

let ripple_adder ?(technology = "nmos25") bits =
  if bits < 1 then invalid_arg "Generators.ripple_adder: bits < 1";
  let b = Builder.create ~name:(Printf.sprintf "adder%d" bits) ~technology in
  in_port b "cin";
  for i = 0 to bits - 1 do
    in_port b (Printf.sprintf "a%d" i);
    in_port b (Printf.sprintf "b%d" i);
    out_port b (Printf.sprintf "s%d" i)
  done;
  out_port b "cout";
  for i = 0 to bits - 1 do
    let cin = if i = 0 then "cin" else Printf.sprintf "c%d" i in
    let cout = if i = bits - 1 then "cout" else Printf.sprintf "c%d" (i + 1) in
    add_full_adder b
      ~prefix:(Printf.sprintf "fa%d_" i)
      ~a:(Printf.sprintf "a%d" i)
      ~b:(Printf.sprintf "b%d" i)
      ~cin ~sum:(Printf.sprintf "s%d" i) ~cout
  done;
  Builder.build b

let counter ?(technology = "nmos25") bits =
  if bits < 1 then invalid_arg "Generators.counter: bits < 1";
  let b = Builder.create ~name:(Printf.sprintf "counter%d" bits) ~technology in
  in_port b "clk";
  in_port b "en";
  for i = 0 to bits - 1 do out_port b (Printf.sprintf "q%d" i) done;
  add b ~name:"clkbuf" ~kind:"buf" ~nets:[ "clk"; "clkb" ];
  for i = 0 to bits - 1 do
    let q = Printf.sprintf "q%d" i in
    let carry = if i = 0 then "en" else Printf.sprintf "c%d" i in
    let t = Printf.sprintf "t%d" i in
    add b ~name:(Printf.sprintf "tx%d" i) ~kind:"xor2" ~nets:[ q; carry; t ];
    add b ~name:(Printf.sprintf "ff%d" i) ~kind:"dff" ~nets:[ t; "clkb"; q ];
    if i < bits - 1 then begin
      let nc = Printf.sprintf "nc%d" i in
      add b ~name:(Printf.sprintf "ca%d" i) ~kind:"nand2" ~nets:[ carry; q; nc ];
      add b ~name:(Printf.sprintf "ci%d" i) ~kind:"inv"
        ~nets:[ nc; Printf.sprintf "c%d" (i + 1) ]
    end
  done;
  Builder.build b

let decoder ?(technology = "nmos25") select_bits =
  if select_bits < 1 || select_bits > 4 then
    invalid_arg "Generators.decoder: select_bits outside 1..4";
  let outputs = 1 lsl select_bits in
  let b = Builder.create ~name:(Printf.sprintf "decoder%d" select_bits) ~technology in
  for i = 0 to select_bits - 1 do in_port b (Printf.sprintf "s%d" i) done;
  for o = 0 to outputs - 1 do out_port b (Printf.sprintf "y%d" o) done;
  for i = 0 to select_bits - 1 do
    add b ~name:(Printf.sprintf "ni%d" i) ~kind:"inv"
      ~nets:[ Printf.sprintf "s%d" i; Printf.sprintf "sn%d" i ]
  done;
  let nand_kind =
    match select_bits with
    | 1 -> "inv"
    | 2 -> "nand2"
    | 3 -> "nand3"
    | _ -> "nand4"
  in
  for o = 0 to outputs - 1 do
    let literals =
      List.init select_bits (fun i ->
          if (o lsr i) land 1 = 1 then Printf.sprintf "s%d" i
          else Printf.sprintf "sn%d" i)
    in
    let low = Printf.sprintf "yl%d" o in
    add b ~name:(Printf.sprintf "na%d" o) ~kind:nand_kind ~nets:(literals @ [ low ]);
    add b ~name:(Printf.sprintf "yb%d" o) ~kind:"inv"
      ~nets:[ low; Printf.sprintf "y%d" o ]
  done;
  Builder.build b

let parity ?(technology = "nmos25") bits =
  if bits < 2 then invalid_arg "Generators.parity: bits < 2";
  let b = Builder.create ~name:(Printf.sprintf "parity%d" bits) ~technology in
  for i = 0 to bits - 1 do in_port b (Printf.sprintf "d%d" i) done;
  out_port b "p";
  let counter = ref 0 in
  let fresh () =
    incr counter;
    Printf.sprintf "x%d" !counter
  in
  (* Pairwise XOR reduction; the final XOR drives the output port net. *)
  let rec reduce = function
    | [] -> assert false
    | [ last ] -> last
    | a :: c :: rest ->
        let out = if rest = [] then "p" else fresh () in
        add b ~name:(Printf.sprintf "g%d" !counter) ~kind:"xor2" ~nets:[ a; c; out ];
        incr counter;
        reduce (if rest = [] then [ out ] else rest @ [ out ])
  in
  let final = reduce (List.init bits (Printf.sprintf "d%d")) in
  if not (String.equal final "p") then
    add b ~name:"gbuf" ~kind:"buf" ~nets:[ final; "p" ];
  Builder.build b

let mux_tree ?(technology = "nmos25") select_bits =
  if select_bits < 1 || select_bits > 4 then
    invalid_arg "Generators.mux_tree: select_bits outside 1..4";
  let inputs = 1 lsl select_bits in
  let b = Builder.create ~name:(Printf.sprintf "mux%d" inputs) ~technology in
  for i = 0 to inputs - 1 do in_port b (Printf.sprintf "d%d" i) done;
  for s = 0 to select_bits - 1 do in_port b (Printf.sprintf "s%d" s) done;
  out_port b "y";
  let counter = ref 0 in
  (* Level l merges pairs with select bit l. *)
  let rec level l nets =
    match nets with
    | [] -> assert false
    | [ last ] -> last
    | _ :: _ ->
        let sel = Printf.sprintf "s%d" l in
        let rec pairs acc = function
          | [] -> List.rev acc
          | [ odd ] -> List.rev (odd :: acc)
          | a :: c :: rest ->
              incr counter;
              let out =
                if List.length nets = 2 then "y"
                else Printf.sprintf "m%d" !counter
              in
              add b ~name:(Printf.sprintf "mx%d" !counter) ~kind:"mux2"
                ~nets:[ a; c; sel; out ];
              pairs (out :: acc) rest
        in
        level (l + 1) (pairs [] nets)
  in
  let final = level 0 (List.init inputs (Printf.sprintf "d%d")) in
  if not (String.equal final "y") then
    add b ~name:"ybuf" ~kind:"buf" ~nets:[ final; "y" ];
  Builder.build b

let alu ?(technology = "nmos25") bits =
  if bits < 1 then invalid_arg "Generators.alu: bits < 1";
  let b = Builder.create ~name:(Printf.sprintf "alu%d" bits) ~technology in
  for i = 0 to bits - 1 do
    in_port b (Printf.sprintf "a%d" i);
    in_port b (Printf.sprintf "b%d" i)
  done;
  List.iter (in_port b) [ "sub"; "f0"; "f1" ];
  for i = 0 to bits - 1 do out_port b (Printf.sprintf "y%d" i) done;
  out_port b "cout";
  for i = 0 to bits - 1 do
    let n s = Printf.sprintf "%s%d" s i in
    let a = n "a" and bb = n "b" in
    let cin = if i = 0 then "sub" else n "c" in
    let cout = if i = bits - 1 then "cout" else Printf.sprintf "c%d" (i + 1) in
    (* b operand conditionally inverted for subtraction *)
    add b ~name:(n "bs") ~kind:"xor2" ~nets:[ bb; "sub"; n "bsel" ];
    (* ripple full adder *)
    add b ~name:(n "fx1") ~kind:"xor2" ~nets:[ a; n "bsel"; n "p" ];
    add b ~name:(n "fx2") ~kind:"xor2" ~nets:[ n "p"; cin; n "sum" ];
    add b ~name:(n "fg1") ~kind:"nand2" ~nets:[ a; n "bsel"; n "g" ];
    add b ~name:(n "fg2") ~kind:"nand2" ~nets:[ n "p"; cin; n "h" ];
    add b ~name:(n "fg3") ~kind:"nand2" ~nets:[ n "g"; n "h"; cout ];
    (* logic ops *)
    add b ~name:(n "an") ~kind:"nand2" ~nets:[ a; bb; n "andn" ];
    add b ~name:(n "ai") ~kind:"inv" ~nets:[ n "andn"; n "and" ];
    add b ~name:(n "on") ~kind:"nor2" ~nets:[ a; bb; n "orn" ];
    add b ~name:(n "oi") ~kind:"inv" ~nets:[ n "orn"; n "or" ];
    add b ~name:(n "xo") ~kind:"xor2" ~nets:[ a; bb; n "xor" ];
    (* function select: f1 f0 = 00 sum, 01 and, 10 or, 11 xor *)
    add b ~name:(n "m1") ~kind:"mux2" ~nets:[ n "sum"; n "and"; "f0"; n "ma" ];
    add b ~name:(n "m2") ~kind:"mux2" ~nets:[ n "or"; n "xor"; "f0"; n "mb" ];
    add b ~name:(n "m3") ~kind:"mux2" ~nets:[ n "ma"; n "mb"; "f1"; n "y" ]
  done;
  Builder.build b

let shift_register ?(technology = "nmos25") stages =
  if stages < 1 then invalid_arg "Generators.shift_register: stages < 1";
  let b = Builder.create ~name:(Printf.sprintf "shift%d" stages) ~technology in
  in_port b "d";
  in_port b "clk";
  out_port b "q";
  for i = 1 to stages do
    let din = if i = 1 then "d" else Printf.sprintf "s%d" (i - 1) in
    let qout = if i = stages then "q" else Printf.sprintf "s%d" i in
    add b ~name:(Printf.sprintf "ff%d" i) ~kind:"dff" ~nets:[ din; "clk"; qout ]
  done;
  Builder.build b

let pass_chain ?(technology = "nmos25") stages =
  if stages < 1 then invalid_arg "Generators.pass_chain: stages < 1";
  let b = Builder.create ~name:(Printf.sprintf "pass%d" stages) ~technology in
  in_port b "d0";
  out_port b (Printf.sprintf "d%d" stages);
  for i = 1 to stages do
    in_port b (Printf.sprintf "g%d" i);
    add b
      ~name:(Printf.sprintf "p%d" i)
      ~kind:"nenh"
      ~nets:
        [
          Printf.sprintf "d%d" (i - 1);
          Printf.sprintf "g%d" i;
          Printf.sprintf "d%d" i;
        ]
  done;
  Builder.build b

let inverter_chain ?(technology = "nmos25") stages =
  if stages < 1 then invalid_arg "Generators.inverter_chain: stages < 1";
  let b = Builder.create ~name:(Printf.sprintf "invchain%d" stages) ~technology in
  in_port b "n0";
  out_port b (Printf.sprintf "n%d" stages);
  for i = 1 to stages do
    let input = Printf.sprintf "n%d" (i - 1) in
    let output = Printf.sprintf "n%d" i in
    (* depletion load: gate and source both on the output node *)
    add b ~name:(Printf.sprintf "pu%d" i) ~kind:"ndep" ~nets:[ output; output ];
    add b ~name:(Printf.sprintf "pd%d" i) ~kind:"nenh" ~nets:[ output; input ]
  done;
  Builder.build b

(* An array multiplier: AND-gate partial products reduced row by row with
   half/full adders.  Net naming routes the final sums straight onto the
   output-port nets.  Structure (for B bit j, output position k):
   row 0 is the pp[*][0] vector; row j>0 adds pp[*][j] to the shifted
   previous sums with a ripple chain whose top position consumes the
   previous row's carry-out. *)
let multiplier ?(technology = "nmos25") bits =
  if bits < 2 then invalid_arg "Generators.multiplier: bits < 2";
  let b = Builder.create ~name:(Printf.sprintf "mult%d" bits) ~technology in
  for i = 0 to bits - 1 do
    in_port b (Printf.sprintf "a%d" i);
    in_port b (Printf.sprintf "b%d" i)
  done;
  for i = 0 to (2 * bits) - 1 do out_port b (Printf.sprintf "p%d" i) done;
  (* sum bit k of row j, renamed onto output ports where appropriate *)
  let s_name j k =
    if j = bits - 1 && k >= 1 then Printf.sprintf "p%d" (bits - 1 + k)
    else if k = 0 then Printf.sprintf "p%d" j
    else Printf.sprintf "s%d_%d" j k
  in
  let carry_out j =
    if j = bits - 1 then Printf.sprintf "p%d" ((2 * bits) - 1)
    else Printf.sprintf "co%d" j
  in
  (* partial product a_i AND b_j (nand2 + inv); row 0 products are the
     row-0 sums directly *)
  let pp i j =
    if j = 0 then s_name 0 i else Printf.sprintf "pp%d_%d" i j
  in
  for i = 0 to bits - 1 do
    for j = 0 to bits - 1 do
      let low = Printf.sprintf "ppn%d_%d" i j in
      add b
        ~name:(Printf.sprintf "an%d_%d" i j)
        ~kind:"nand2"
        ~nets:[ Printf.sprintf "a%d" i; Printf.sprintf "b%d" j; low ];
      add b ~name:(Printf.sprintf "ai%d_%d" i j) ~kind:"inv" ~nets:[ low; pp i j ]
    done
  done;
  (* half adder: sum = x xor y, carry = x and y *)
  let half_adder ~prefix ~x ~y ~sum ~carry =
    add b ~name:(prefix ^ "x") ~kind:"xor2" ~nets:[ x; y; sum ];
    add b ~name:(prefix ^ "n") ~kind:"nand2" ~nets:[ x; y; prefix ^ "cn" ];
    add b ~name:(prefix ^ "i") ~kind:"inv" ~nets:[ prefix ^ "cn"; carry ]
  in
  let full_adder ~prefix ~x ~y ~cin ~sum ~carry =
    add b ~name:(prefix ^ "x1") ~kind:"xor2" ~nets:[ x; y; prefix ^ "q" ];
    add b ~name:(prefix ^ "x2") ~kind:"xor2" ~nets:[ prefix ^ "q"; cin; sum ];
    add b ~name:(prefix ^ "g1") ~kind:"nand2" ~nets:[ x; y; prefix ^ "g" ];
    add b ~name:(prefix ^ "g2") ~kind:"nand2" ~nets:[ prefix ^ "q"; cin; prefix ^ "h" ];
    add b ~name:(prefix ^ "g3") ~kind:"nand2" ~nets:[ prefix ^ "g"; prefix ^ "h"; carry ]
  in
  for j = 1 to bits - 1 do
    let chain k = Printf.sprintf "c%d_%d" j k in
    for k = 0 to bits - 1 do
      let prefix = Printf.sprintf "r%d_%d_" j k in
      if k = 0 then
        half_adder ~prefix ~x:(pp 0 j)
          ~y:(s_name (j - 1) 1)
          ~sum:(s_name j 0) ~carry:(chain 0)
      else if k < bits - 1 then
        full_adder ~prefix ~x:(pp k j)
          ~y:(s_name (j - 1) (k + 1))
          ~cin:(chain (k - 1))
          ~sum:(s_name j k) ~carry:(chain k)
      else if j = 1 then
        (* the first row has no incoming carry-out above the MSB *)
        half_adder ~prefix ~x:(pp k j)
          ~y:(chain (k - 1))
          ~sum:(s_name j k) ~carry:(carry_out j)
      else
        full_adder ~prefix ~x:(pp k j) ~y:(carry_out (j - 1))
          ~cin:(chain (k - 1))
          ~sum:(s_name j k) ~carry:(carry_out j)
    done
  done;
  Builder.build b

(* ISCAS-85 c17, in the standard node numbering: inputs 1 2 3 6 7,
   outputs 22 23. *)
let c17 ?(technology = "nmos25") () =
  let b = Builder.create ~name:"c17" ~technology in
  List.iter (in_port b) [ "n1"; "n2"; "n3"; "n6"; "n7" ];
  List.iter (out_port b) [ "n22"; "n23" ];
  add b ~name:"g10" ~kind:"nand2" ~nets:[ "n1"; "n3"; "n10" ];
  add b ~name:"g11" ~kind:"nand2" ~nets:[ "n3"; "n6"; "n11" ];
  add b ~name:"g16" ~kind:"nand2" ~nets:[ "n2"; "n11"; "n16" ];
  add b ~name:"g19" ~kind:"nand2" ~nets:[ "n11"; "n7"; "n19" ];
  add b ~name:"g22" ~kind:"nand2" ~nets:[ "n10"; "n16"; "n22" ];
  add b ~name:"g23" ~kind:"nand2" ~nets:[ "n16"; "n19"; "n23" ];
  Builder.build b
