(** Deterministic structural circuit generators.

    Each function builds a real logic structure (not random wiring) at a
    parameterized size; these are the building blocks of the Table 1 and
    Table 2 benchmark suites and of the examples. *)

val full_adder : ?name:string -> ?technology:string -> unit -> Mae_netlist.Circuit.t
(** 1-bit full adder: 2 xor2 + 3 nand2, ports a b cin / s cout. *)

val ripple_adder : ?technology:string -> int -> Mae_netlist.Circuit.t
(** [bits] chained full adders.  Raises [Invalid_argument] if [bits < 1]. *)

val counter : ?technology:string -> int -> Mae_netlist.Circuit.t
(** Synchronous binary counter: per bit one dff, one xor2 (toggle), one
    nand2+inv carry AND; clock buffer; ports clk en / q0..q(bits-1). *)

val decoder : ?technology:string -> int -> Mae_netlist.Circuit.t
(** Full [select_bits]-to-2^[select_bits] decoder built from inverters and
    nand/inv rows.  Raises [Invalid_argument] unless 1 <= select_bits <= 4
    (wider AND gates than nand4 are not in the library). *)

val parity : ?technology:string -> int -> Mae_netlist.Circuit.t
(** XOR tree computing the parity of [bits] inputs ([bits >= 2]). *)

val mux_tree : ?technology:string -> int -> Mae_netlist.Circuit.t
(** 2^[select_bits]-to-1 multiplexer tree of mux2 cells
    ([1 <= select_bits <= 4]). *)

val alu : ?technology:string -> int -> Mae_netlist.Circuit.t
(** A [bits]-wide ALU slice: add/subtract (ripple), AND, OR, XOR,
    function-select mux tree per bit; ports a*, b*, sub, f0, f1, clk-less.
    Raises [Invalid_argument] if [bits < 1]. *)

val shift_register : ?technology:string -> int -> Mae_netlist.Circuit.t
(** [stages] chained dff cells ([stages >= 1]). *)

val pass_chain : ?technology:string -> int -> Mae_netlist.Circuit.t
(** Transistor-level chain of [stages] nMOS pass transistors with private
    gate controls: {e every} net has at most two device components, the
    degenerate case of the Table 1 footnote ([stages >= 1]). *)

val inverter_chain : ?technology:string -> int -> Mae_netlist.Circuit.t
(** Transistor-level chain of [stages] nMOS inverters (2 transistors
    each); internal nets have three components ([stages >= 1]). *)

val multiplier : ?technology:string -> int -> Mae_netlist.Circuit.t
(** [bits] x [bits] array multiplier: AND-gate partial products reduced
    row by row with half/full adders; the largest structural benchmark
    (an 8-bit instance has ~400 cells).  Raises [Invalid_argument] if
    [bits < 2]. *)

val c17 : ?technology:string -> unit -> Mae_netlist.Circuit.t
(** The ISCAS-85 c17 benchmark: six 2-input NAND gates, five inputs, two
    outputs — the classic smallest real-world netlist, as an external
    anchor alongside the synthetic generators. *)
