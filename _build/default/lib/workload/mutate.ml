module Circuit = Mae_netlist.Circuit
module Builder = Mae_netlist.Builder

let copy_into ?(prefix = "") ~with_ports builder (c : Circuit.t) =
  let net_name i = prefix ^ c.nets.(i).Mae_netlist.Net.name in
  Array.iter
    (fun (d : Mae_netlist.Device.t) ->
      ignore
        (Builder.add_device builder ~name:(prefix ^ d.name) ~kind:d.kind
           ~nets:(List.map net_name (Array.to_list d.pins))))
    c.devices;
  if with_ports then
    Array.iter
      (fun (p : Mae_netlist.Port.t) ->
        Builder.add_port builder ~name:(prefix ^ p.name) ~direction:p.direction
          ~net:(net_name p.net))
      c.ports

let rebuild (c : Circuit.t) f =
  let builder = Builder.create ~name:c.name ~technology:c.technology in
  f builder;
  Builder.build builder

let add_device ~kind ~nets c =
  rebuild c (fun builder ->
      copy_into ~with_ports:true builder c;
      ignore
        (Builder.add_device builder
           ~name:(Printf.sprintf "mut%d" (Circuit.device_count c))
           ~kind ~nets))

let duplicate c =
  rebuild c (fun builder ->
      copy_into ~with_ports:true builder c;
      copy_into ~prefix:"dup_" ~with_ports:false builder c)

let drop_device ~index (c : Circuit.t) =
  if index < 0 || index >= Circuit.device_count c then
    invalid_arg "Mutate.drop_device: index out of range";
  rebuild c (fun builder ->
      let net_name i = c.nets.(i).Mae_netlist.Net.name in
      Array.iteri
        (fun i (d : Mae_netlist.Device.t) ->
          if i <> index then
            ignore
              (Builder.add_device builder ~name:d.name ~kind:d.kind
                 ~nets:(List.map net_name (Array.to_list d.pins))))
        c.devices;
      Array.iter
        (fun (p : Mae_netlist.Port.t) ->
          Builder.add_port builder ~name:p.name ~direction:p.direction
            ~net:(net_name p.net))
        c.ports)

let widen_net ~net ~extra ~kind c =
  match Circuit.find_net c net with
  | None -> raise Not_found
  | Some _ ->
      rebuild c (fun builder ->
          copy_into ~with_ports:true builder c;
          for i = 0 to extra - 1 do
            ignore
              (Builder.add_device builder
                 ~name:(Printf.sprintf "widen%d" i)
                 ~kind ~nets:[ net ])
          done)
