(** Structure-preserving circuit perturbations for metamorphic testing.

    The estimator has monotonicity properties worth checking: adding a
    device can only grow the device area; widening a net can only grow the
    expected track count; duplicating the circuit roughly doubles its
    area.  These helpers build the perturbed circuits. *)

val add_device :
  kind:string -> nets:string list -> Mae_netlist.Circuit.t -> Mae_netlist.Circuit.t
(** Append one device connected to the named nets (created if new). *)

val duplicate : Mae_netlist.Circuit.t -> Mae_netlist.Circuit.t
(** Two disjoint copies of the circuit side by side (nets and devices of
    the copy get a [dup_] prefix; ports are kept only for the original). *)

val drop_device : index:int -> Mae_netlist.Circuit.t -> Mae_netlist.Circuit.t
(** Remove the device at [index]; raises [Invalid_argument] when out of
    range. *)

val widen_net :
  net:string -> extra:int -> kind:string -> Mae_netlist.Circuit.t -> Mae_netlist.Circuit.t
(** Attach [extra] fresh single-pin devices of [kind] to the named net,
    raising its degree.  Raises [Not_found] if the net does not exist. *)
