type params = {
  devices : int;
  primary_inputs : int;
  primary_outputs : int;
  kind_weights : (string * int) list;
  locality : int;
  technology : string;
}

let standard_mix =
  [
    ("inv", 20);
    ("buf", 5);
    ("nand2", 25);
    ("nand3", 10);
    ("nor2", 15);
    ("nor3", 5);
    ("xor2", 8);
    ("mux2", 6);
    ("aoi22", 3);
    ("dff", 8);
  ]

let default_params =
  {
    devices = 60;
    primary_inputs = 8;
    primary_outputs = 8;
    kind_weights = standard_mix;
    locality = 12;
    technology = "nmos25";
  }

let input_arity = function
  | "inv" | "buf" -> 1
  | "nand2" | "nor2" | "xor2" | "latch" | "dff" -> 2
  | "nand3" | "nor3" | "mux2" -> 3
  | "nand4" | "aoi22" -> 4
  | kind -> invalid_arg ("Random_circuit.input_arity: unknown kind " ^ kind)

let known_kind k =
  match input_arity k with
  | (_ : int) -> true
  | exception Invalid_argument _ -> false

let validate p =
  if p.devices < 1 then Error "devices must be >= 1"
  else if p.primary_inputs < 1 then Error "primary_inputs must be >= 1"
  else if p.primary_outputs < 0 || p.primary_outputs > p.devices then
    Error "primary_outputs must be in 0..devices"
  else if p.kind_weights = [] then Error "kind_weights must be non-empty"
  else if List.exists (fun (_, w) -> w < 0) p.kind_weights then
    Error "kind weights must be non-negative"
  else if List.for_all (fun (_, w) -> w = 0) p.kind_weights then
    Error "at least one kind weight must be positive"
  else if p.locality < 0 then Error "locality must be >= 0"
  else begin
    match List.find_opt (fun (k, _) -> not (known_kind k)) p.kind_weights with
    | Some (k, _) -> Error ("unknown kind " ^ k)
    | None -> Ok p
  end

let weighted_pick rng weights =
  let total = List.fold_left (fun acc (_, w) -> acc + w) 0 weights in
  if total <= 0 then invalid_arg "Random_circuit.weighted_pick: empty table";
  let target = Mae_prob.Rng.int rng total in
  let rec go acc = function
    | [] -> assert false
    | (k, w) :: rest -> if target < acc + w then k else go (acc + w) rest
  in
  go 0 weights

let generate ?name ~rng p =
  begin
    match validate p with
    | Ok _ -> ()
    | Error msg -> invalid_arg ("Random_circuit.generate: " ^ msg)
  end;
  let name =
    match name with
    | Some n -> n
    | None -> Printf.sprintf "random%d" p.devices
  in
  let b = Mae_netlist.Builder.create ~name ~technology:p.technology in
  (* Nets a later device may read: primary inputs first, then each
     device's output in creation order. *)
  let available = Array.make (p.primary_inputs + p.devices) "" in
  for i = 0 to p.primary_inputs - 1 do
    let name = Printf.sprintf "in%d" i in
    Mae_netlist.Builder.add_port b ~name ~direction:Mae_netlist.Port.Input
      ~net:name;
    available.(i) <- name
  done;
  let n_available = ref p.primary_inputs in
  let pick_source rng =
    let window =
      if p.locality = 0 then !n_available
      else Stdlib.min p.locality !n_available
    in
    let offset = Mae_prob.Rng.int rng window in
    available.(!n_available - 1 - offset)
  in
  for d = 0 to p.devices - 1 do
    let kind = weighted_pick rng p.kind_weights in
    let arity = input_arity kind in
    let out = Printf.sprintf "n%d" d in
    let inputs = List.init arity (fun _ -> pick_source rng) in
    ignore
      (Mae_netlist.Builder.add_device b
         ~name:(Printf.sprintf "u%d" d)
         ~kind
         ~nets:(inputs @ [ out ]));
    available.(!n_available) <- out;
    incr n_available
  done;
  for o = 0 to Stdlib.min p.primary_outputs p.devices - 1 do
    let driver = Printf.sprintf "n%d" (p.devices - 1 - o) in
    Mae_netlist.Builder.add_port b
      ~name:(Printf.sprintf "out%d" o)
      ~direction:Mae_netlist.Port.Output ~net:driver
  done;
  Mae_netlist.Builder.build b
