(** Random gate-level circuit generation.

    Devices are drawn from a weighted kind table; each device drives a
    fresh output net and draws its inputs either from primary inputs or
    from the outputs of earlier devices within a locality window, giving
    netlists whose degree histograms resemble real logic (many 2-3
    component nets, a few high-fanout ones). *)

type params = {
  devices : int;
  primary_inputs : int;
  primary_outputs : int;  (** last N device outputs become ports *)
  kind_weights : (string * int) list;
      (** (cell kind, weight); kinds must exist in the target library *)
  locality : int;
      (** inputs prefer nets created within the last [locality] devices;
          0 means uniform over everything *)
  technology : string;
}

val default_params : params
(** 60 devices, 8 inputs, 8 outputs, nmos25, the standard gate mix,
    locality 12. *)

val standard_mix : (string * int) list
(** A realistic weighted gate mix (inverters and 2-input gates dominate). *)

val weighted_pick : Mae_prob.Rng.t -> (string * int) list -> string
(** Draw a kind with probability proportional to its weight.  Raises
    [Invalid_argument] on an empty table or non-positive total weight. *)

val validate : params -> (params, string) result

val input_arity : string -> int
(** Number of input pins of each known cell kind (e.g. [nand3] -> 3).
    Raises [Invalid_argument] on an unknown kind. *)

val generate : ?name:string -> rng:Mae_prob.Rng.t -> params -> Mae_netlist.Circuit.t
(** Raises [Invalid_argument] on invalid parameters.  [name] defaults to
    ["random<devices>"]. *)
