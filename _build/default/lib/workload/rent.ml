type params = {
  clusters : int;
  cluster_size : int;
  rent_t : float;
  rent_p : float;
  technology : string;
}

let default_params =
  { clusters = 6; cluster_size = 40; rent_t = 3.0; rent_p = 0.6; technology = "nmos25" }

let validate p =
  if p.clusters < 1 then Error "clusters must be >= 1"
  else if p.cluster_size < 1 then Error "cluster_size must be >= 1"
  else if p.rent_t <= 0. then Error "rent_t must be positive"
  else if p.rent_p <= 0. || p.rent_p >= 1. then Error "rent_p must be in (0,1)"
  else Ok p

let external_terminals p =
  Float.to_int
    (Float.ceil (p.rent_t *. (Float.of_int p.cluster_size ** p.rent_p)))

let check p =
  match validate p with
  | Ok _ -> ()
  | Error msg -> invalid_arg ("Rent.generate: " ^ msg)

(* Internal wiring reuses the standard gate mix. *)
let mix = Random_circuit.standard_mix

let generate ~rng p =
  check p;
  let b =
    Mae_netlist.Builder.create
      ~name:(Printf.sprintf "rent%dx%d" p.clusters p.cluster_size)
      ~technology:p.technology
  in
  let terminals = external_terminals p in
  (* Chip primary inputs seed the global pool of cross-cluster nets. *)
  let pool = ref [] in
  for i = 0 to terminals - 1 do
    let name = Printf.sprintf "pi%d" i in
    Mae_netlist.Builder.add_port b ~name ~direction:Mae_netlist.Port.Input
      ~net:name;
    pool := name :: !pool
  done;
  let pool_array () = Array.of_list !pool in
  (* Probability that an input pin leaves the cluster, tuned so a cluster
     makes about [terminals] external attachments. *)
  let total_pins =
    Float.of_int p.cluster_size *. 2.4 (* mean arity of the mix *)
  in
  let p_ext = Float.min 0.9 (Float.of_int terminals /. total_pins) in
  for c = 0 to p.clusters - 1 do
    let local = Array.make p.cluster_size "" in
    let n_local = ref 0 in
    for d = 0 to p.cluster_size - 1 do
      let kind = Random_circuit.weighted_pick rng mix in
      let arity = Random_circuit.input_arity kind in
      let out = Printf.sprintf "c%d_n%d" c d in
      let pick_input _ =
        let use_ext = !n_local = 0 || Mae_prob.Rng.uniform rng < p_ext in
        if use_ext then Mae_prob.Rng.pick rng (pool_array ())
        else local.(Mae_prob.Rng.int rng !n_local)
      in
      let inputs = List.init arity pick_input in
      ignore
        (Mae_netlist.Builder.add_device b
           ~name:(Printf.sprintf "c%d_u%d" c d)
           ~kind
           ~nets:(inputs @ [ out ]));
      local.(!n_local) <- out;
      incr n_local
    done;
    (* Publish the cluster's last few outputs for later clusters. *)
    let exported = Stdlib.min terminals p.cluster_size in
    for e = 0 to exported - 1 do
      pool := local.(p.cluster_size - 1 - e) :: !pool
    done
  done;
  (* Chip primary outputs come from the last cluster. *)
  let last = p.clusters - 1 in
  let outs = Stdlib.min terminals p.cluster_size in
  for o = 0 to outs - 1 do
    Mae_netlist.Builder.add_port b
      ~name:(Printf.sprintf "po%d" o)
      ~direction:Mae_netlist.Port.Output
      ~net:(Printf.sprintf "c%d_n%d" last (p.cluster_size - 1 - o))
  done;
  Mae_netlist.Builder.build b

let generate_modules ~rng p =
  check p;
  let terminals = external_terminals p in
  let inputs = Stdlib.max 1 ((terminals + 1) / 2) in
  let outputs = Stdlib.max 0 (terminals - inputs) in
  List.init p.clusters (fun c ->
      let rng = Mae_prob.Rng.split rng in
      Random_circuit.generate ~rng
        ~name:(Printf.sprintf "cluster%d" c)
        {
          Random_circuit.devices = p.cluster_size;
          primary_inputs = inputs;
          primary_outputs = Stdlib.min outputs p.cluster_size;
          kind_weights = mix;
          locality = 12;
          technology = p.technology;
        })
