(** Clustered netlist generation following Rent's rule.

    Rent's rule relates the number of external terminals T of a logic
    block to its gate count g: T = t * g^p with Rent exponent p (~0.5-0.75
    for real logic).  The generator builds [clusters] random sub-circuits
    and wires a Rent-determined number of nets across cluster boundaries,
    producing chip-level workloads with realistic locality for the
    floor-planning experiments. *)

type params = {
  clusters : int;
  cluster_size : int;  (** devices per cluster *)
  rent_t : float;  (** terminals per single device, typically ~3 *)
  rent_p : float;  (** Rent exponent in (0, 1) *)
  technology : string;
}

val default_params : params
(** 6 clusters of 40 devices, t = 3.0, p = 0.6, nmos25. *)

val validate : params -> (params, string) result

val external_terminals : params -> int
(** ceil(t * cluster_size^p): cross-boundary nets per cluster. *)

val generate : rng:Mae_prob.Rng.t -> params -> Mae_netlist.Circuit.t
(** One flat circuit; device names are prefixed by their cluster
    ([c3_u7]).  Raises [Invalid_argument] on invalid parameters. *)

val generate_modules : rng:Mae_prob.Rng.t -> params -> Mae_netlist.Circuit.t list
(** One circuit per cluster, each with its external nets as ports: the
    module list a floor planner consumes. *)
