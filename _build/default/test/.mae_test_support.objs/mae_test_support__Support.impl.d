test/support.ml: Alcotest Float Mae_netlist Mae_prob Mae_tech Mae_workload QCheck2 QCheck_alcotest
