test/test_baselines.ml: Alcotest Array Champ Float List Mae Mae_baselines Mae_layout Mae_netlist Mae_test_support Mae_workload Naive Pla Plest Result
