test/test_celllib.ml: Alcotest Cell Cmos_lib Expand Library List Mae_celllib Mae_netlist Mae_tech Mae_test_support Nmos_lib Option QCheck2
