test/test_core.ml: Alcotest Float Format Int List Mae Mae_geom Mae_netlist Mae_prob Mae_tech Mae_test_support Mae_workload Printf QCheck2 Result Stdlib
