test/test_db.ml: Alcotest Filename List Mae Mae_db Mae_tech Mae_test_support QCheck2 String Sys
