test/test_geom.ml: Alcotest Aspect Float Interval Lambda List Mae_geom Mae_test_support Orientation Point QCheck2 Rect
