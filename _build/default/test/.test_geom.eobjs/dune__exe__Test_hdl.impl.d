test/test_hdl.ml: Alcotest Array Ast Elaborate Format Lexer List Mae Mae_hdl Mae_netlist Mae_sim Mae_test_support Option Parser Printer Printf QCheck2 Result Spice String Token
