test/test_hdl.mli:
