test/test_netlist.ml: Alcotest Builder Circuit Device Int List Mae_netlist Mae_test_support Mae_workload Net Option Port QCheck2 Stats Stdlib Validate
