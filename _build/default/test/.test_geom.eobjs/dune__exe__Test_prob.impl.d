test/test_prob.ml: Alcotest Array Comb Dist Float Fun Int List Mae_prob Mae_test_support Montecarlo Printf QCheck2 Rng Stats Stdlib
