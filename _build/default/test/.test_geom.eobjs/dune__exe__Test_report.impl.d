test/test_report.ml: Alcotest Err Filename In_channel Int List Mae_report Mae_test_support Result String Svg Sys Table
