test/test_sim.ml: Alcotest Bool Format List Mae_netlist Mae_sim Mae_test_support Mae_workload Printf QCheck2 Result String
