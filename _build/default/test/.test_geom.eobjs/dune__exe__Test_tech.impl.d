test/test_tech.ml: Alcotest Builtin Device_kind List Mae_tech Mae_test_support Option Process QCheck2 Registry String Tech_parser
