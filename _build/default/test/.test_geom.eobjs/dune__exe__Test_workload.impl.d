test/test_workload.ml: Alcotest Array Bench_circuits Float Generators Hashtbl List Mae_netlist Mae_tech Mae_test_support Mae_workload Option Printf QCheck2 Random_circuit Rent Result Stdlib String
