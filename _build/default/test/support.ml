(* Shared helpers for the test suites. *)

let approx ?(eps = 1e-9) a b =
  Float.abs (a -. b) <= eps *. Float.max 1. (Float.max (Float.abs a) (Float.abs b))

let check_float ?(eps = 1e-9) what expected actual =
  if not (approx ~eps expected actual) then
    Alcotest.failf "%s: expected %.10g, got %.10g" what expected actual

let check_close ?(rel = 0.02) what expected actual =
  if Float.abs (expected -. actual) > rel *. Float.max 1e-12 (Float.abs expected)
  then Alcotest.failf "%s: expected ~%.6g (+-%g%%), got %.6g" what expected
      (100. *. rel) actual

let qtest ?(count = 200) name gen law =
  QCheck_alcotest.to_alcotest (QCheck2.Test.make ~count ~name gen law)

let nmos = Mae_tech.Builtin.nmos25

let full_adder = Mae_workload.Generators.full_adder ()

let full_adder_tx = Mae_workload.Bench_circuits.flatten full_adder

let counter8 = Mae_workload.Generators.counter 8

let rng seed = Mae_prob.Rng.create ~seed

(* A tiny hand-built circuit: two inverters in a chain with ports. *)
let tiny () =
  let b = Mae_netlist.Builder.create ~name:"tiny" ~technology:"nmos25" in
  Mae_netlist.Builder.add_port b ~name:"a" ~direction:Mae_netlist.Port.Input ~net:"a";
  Mae_netlist.Builder.add_port b ~name:"y" ~direction:Mae_netlist.Port.Output ~net:"y";
  ignore (Mae_netlist.Builder.add_device b ~name:"i1" ~kind:"inv" ~nets:[ "a"; "m" ]);
  ignore (Mae_netlist.Builder.add_device b ~name:"i2" ~kind:"inv" ~nets:[ "m"; "y" ]);
  Mae_netlist.Builder.build b

let raises_invalid f =
  match f () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument"
