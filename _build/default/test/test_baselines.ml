open Mae_baselines
module S = Mae_test_support.Support

(* PLEST *)

let test_plest_formula () =
  (* density 0 reduces to pure cell area at the given rows *)
  let stats = Mae_netlist.Stats.compute S.counter8 S.nmos in
  let rows = 3 in
  let row_length =
    Float.of_int stats.Mae_netlist.Stats.device_count
    *. stats.Mae_netlist.Stats.average_width /. 3.
  in
  S.check_float "zero density = cell area"
    (row_length *. (3. *. 40.))
    (Plest.estimate ~density:0. ~rows S.counter8 S.nmos);
  (* each unit of density adds (rows+1) * pitch * row_length *)
  let d1 = Plest.estimate ~density:1. ~rows S.counter8 S.nmos in
  let d2 = Plest.estimate ~density:2. ~rows S.counter8 S.nmos in
  S.check_close ~rel:1e-9 "linear in density"
    (row_length *. 4. *. 7.)
    (d2 -. d1)

let test_plest_validation () =
  S.raises_invalid (fun () ->
      ignore (Plest.estimate ~density:(-1.) ~rows:2 S.counter8 S.nmos));
  S.raises_invalid (fun () ->
      ignore (Plest.estimate ~density:1. ~rows:0 S.counter8 S.nmos))

let test_plest_oracle () =
  let layout =
    Mae_layout.Sc_flow.run ~schedule:Mae_layout.Anneal.quick_schedule
      ~rng:(S.rng 1) ~rows:4 S.counter8 S.nmos
  in
  let density = Plest.oracle_density layout in
  Alcotest.(check bool) "non-negative" true (density >= 0.);
  (* mean of inner channels *)
  let inner = ref 0 in
  for c = 1 to 3 do inner := !inner + layout.Mae_layout.Row_layout.channel_tracks.(c) done;
  S.check_float "matches inner mean" (Float.of_int !inner /. 3.) density

let test_plest_with_oracle_beats_raw_estimator () =
  (* fed post-layout density, PLEST lands closer than the upper bound --
     the paper's point that PLEST needs information the estimator does
     not have *)
  let rows = 4 in
  let layout =
    Mae_layout.Sc_flow.run ~schedule:Mae_layout.Anneal.quick_schedule
      ~rng:(S.rng 2) ~rows S.counter8 S.nmos
  in
  let real = layout.Mae_layout.Row_layout.area in
  let plest =
    Plest.estimate ~density:(Plest.oracle_density layout) ~rows S.counter8 S.nmos
  in
  let upper = (Mae.Stdcell.estimate ~rows S.counter8 S.nmos).Mae.Estimate.area in
  Alcotest.(check bool) "plest closer" true
    (Float.abs (plest -. real) < Float.abs (upper -. real))

(* CHAMP *)

let test_champ_recovers_power_law () =
  (* exact training data area = 3 * n^1.4 *)
  let training =
    List.map (fun n -> (n, 3. *. (Float.of_int n ** 1.4))) [ 10; 20; 40; 80 ]
  in
  match Champ.fit training with
  | Error e -> Alcotest.failf "fit failed: %s" e
  | Ok model ->
      S.check_close ~rel:1e-6 "coefficient" 3. model.Champ.coefficient;
      S.check_close ~rel:1e-6 "exponent" 1.4 model.Champ.exponent;
      S.check_close ~rel:1e-6 "prediction" (3. *. (100. ** 1.4))
        (Champ.estimate model ~devices:100);
      S.check_float ~eps:1e-6 "zero error on training" 0.
        (Champ.mean_relative_error model training)

let test_champ_rejections () =
  Alcotest.(check bool) "too few" true (Result.is_error (Champ.fit [ (10, 5.) ]));
  Alcotest.(check bool) "same n" true
    (Result.is_error (Champ.fit [ (10, 5.); (10, 9.) ]));
  Alcotest.(check bool) "filters invalid" true
    (Result.is_error (Champ.fit [ (0, 5.); (10, -1.) ]));
  match Champ.fit [ (10, 100.); (20, 200.) ] with
  | Ok model -> S.raises_invalid (fun () -> ignore (Champ.estimate model ~devices:0))
  | Error _ -> Alcotest.fail "fit should succeed"

let test_champ_on_layout_data () =
  (* train on real layout areas of random circuits; held-out error should
     be moderate (it is an empirical size law) *)
  let area_of devices seed =
    let c =
      Mae_workload.Random_circuit.generate ~rng:(S.rng seed)
        { Mae_workload.Random_circuit.default_params with devices }
    in
    let rows = Mae.Row_select.initial_rows c S.nmos in
    (Mae_layout.Sc_flow.run ~schedule:Mae_layout.Anneal.quick_schedule
       ~rng:(S.rng (seed + 100)) ~rows c S.nmos).Mae_layout.Row_layout.area
  in
  let training = List.map (fun n -> (n, area_of n n)) [ 20; 35; 50; 65 ] in
  match Champ.fit training with
  | Error e -> Alcotest.failf "fit failed: %s" e
  | Ok model ->
      let err = Champ.mean_relative_error model [ (42, area_of 42 7) ] in
      Alcotest.(check bool) "held-out under 60%" true (err < 0.6)

(* PLA *)

let test_pla_linearity () =
  let base = { Pla.inputs = 8; outputs = 4; product_terms = 10 } in
  let a1 = Pla.area base S.nmos in
  let a2 = Pla.area { base with product_terms = 20 } S.nmos in
  let a3 = Pla.area { base with product_terms = 30 } S.nmos in
  (* area is affine in product terms: equal second differences *)
  S.check_close ~rel:1e-9 "affine" (a2 -. a1) (a3 -. a2);
  Alcotest.(check int) "device count" (10 * ((2 * 8) + 4))
    (Pla.device_count base)

let test_pla_dims () =
  let spec = { Pla.inputs = 2; outputs = 1; product_terms = 3 } in
  let w, h = Pla.dims spec S.nmos in
  (* (2*2+1+4) * 7 by (3+4) * 7 *)
  S.check_float "width" 63. w;
  S.check_float "height" 49. h;
  S.check_float "area" (63. *. 49.) (Pla.area spec S.nmos)

let test_pla_validation () =
  Alcotest.(check bool) "bad spec" true
    (Result.is_error (Pla.validate { Pla.inputs = 0; outputs = 1; product_terms = 1 }));
  S.raises_invalid (fun () ->
      ignore (Pla.area { Pla.inputs = 1; outputs = 0; product_terms = 1 } S.nmos))

(* Naive *)

let test_naive () =
  let stats = Mae_netlist.Stats.compute S.counter8 S.nmos in
  S.check_float "cell area / utilization"
    (stats.Mae_netlist.Stats.total_device_area /. 0.7)
    (Naive.estimate S.counter8 S.nmos);
  let w, h = Naive.estimate_square S.counter8 S.nmos in
  S.check_float "square" w h;
  S.check_close ~rel:1e-9 "square area"
    (stats.Mae_netlist.Stats.total_device_area /. 0.7)
    (w *. h);
  S.raises_invalid (fun () ->
      ignore (Naive.estimate ~utilization:1.5 S.counter8 S.nmos))

let () =
  Alcotest.run "baselines"
    [
      ( "plest",
        [
          Alcotest.test_case "formula" `Quick test_plest_formula;
          Alcotest.test_case "validation" `Quick test_plest_validation;
          Alcotest.test_case "oracle density" `Quick test_plest_oracle;
          Alcotest.test_case "oracle beats upper bound" `Slow
            test_plest_with_oracle_beats_raw_estimator;
        ] );
      ( "champ",
        [
          Alcotest.test_case "recovers power law" `Quick test_champ_recovers_power_law;
          Alcotest.test_case "rejections" `Quick test_champ_rejections;
          Alcotest.test_case "on layout data" `Slow test_champ_on_layout_data;
        ] );
      ( "pla",
        [
          Alcotest.test_case "linearity" `Quick test_pla_linearity;
          Alcotest.test_case "dims" `Quick test_pla_dims;
          Alcotest.test_case "validation" `Quick test_pla_validation;
        ] );
      ("naive", [ Alcotest.test_case "estimate" `Quick test_naive ]);
    ]
