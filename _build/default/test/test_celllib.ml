open Mae_celllib
module S = Mae_test_support.Support

let test_cell_validation () =
  S.raises_invalid (fun () ->
      Cell.make ~name:"bad" ~pins:[ ("a", Cell.Input) ]
        ~transistors:
          [ { Cell.name = "t"; kind = "nenh"; drain = Cell.Pin 5;
              gate = Cell.Pin 0; source = Cell.Gnd } ]);
  S.raises_invalid (fun () ->
      Cell.make ~name:"bad" ~pins:[]
        ~transistors:
          [ { Cell.name = "t"; kind = "nenh"; drain = Cell.Gnd;
              gate = Cell.Gnd; source = Cell.Gnd };
            { Cell.name = "t"; kind = "nenh"; drain = Cell.Gnd;
              gate = Cell.Gnd; source = Cell.Gnd } ])

let expected_nmos_counts =
  [ ("inv", 2); ("buf", 4); ("nand2", 3); ("nand3", 4); ("nand4", 5);
    ("nor2", 3); ("nor3", 4); ("aoi22", 5); ("xor2", 9); ("mux2", 8);
    ("latch", 8); ("dff", 18) ]

let expected_cmos_counts =
  [ ("inv", 2); ("buf", 4); ("nand2", 4); ("nand3", 6); ("nand4", 8);
    ("nor2", 4); ("nor3", 6); ("aoi22", 8); ("xor2", 12); ("mux2", 10);
    ("latch", 10); ("dff", 18) ]

let check_counts lib expected =
  List.iter
    (fun (name, count) ->
      let cell = Library.find_exn lib name in
      Alcotest.(check int) (name ^ " transistors") count
        (Cell.transistor_count cell))
    expected

let test_nmos_transistor_counts () = check_counts Nmos_lib.library expected_nmos_counts

let test_cmos_transistor_counts () = check_counts Cmos_lib.library expected_cmos_counts

let test_library_process_consistency () =
  Alcotest.(check (list string)) "nmos lib vs nmos25" []
    (Library.check_against_process Nmos_lib.library S.nmos);
  Alcotest.(check (list string)) "cmos lib vs cmos20" []
    (Library.check_against_process Cmos_lib.library Mae_tech.Builtin.cmos20);
  (* the nMOS library's depletion loads do not exist in a CMOS process *)
  Alcotest.(check bool) "nmos lib vs cmos20 inconsistent" true
    (Library.check_against_process Nmos_lib.library Mae_tech.Builtin.cmos20 <> [])

let test_library_lookup () =
  Alcotest.(check bool) "find" true (Library.find Nmos_lib.library "inv" <> None);
  Alcotest.(check bool) "missing" true (Library.find Nmos_lib.library "zzz" = None);
  Alcotest.check_raises "find_exn" Not_found (fun () ->
      ignore (Library.find_exn Nmos_lib.library "zzz"));
  Alcotest.(check int) "12 cells per library" 12
    (List.length (Library.cells Nmos_lib.library));
  S.raises_invalid (fun () ->
      ignore
        (Library.make ~name:"dup"
           ~cells:[ Nmos_lib.find_exn "inv"; Nmos_lib.find_exn "inv" ]))

let test_for_technology () =
  Alcotest.(check bool) "nmos25 -> nmos lib" true
    (Cmos_lib.for_technology "nmos25" = Some Nmos_lib.library);
  Alcotest.(check bool) "cmos20 -> cmos lib" true
    (Cmos_lib.for_technology "cmos20" = Some Cmos_lib.library);
  Alcotest.(check bool) "unknown" true (Cmos_lib.for_technology "bipolar" = None)

(* Expansion *)

let test_expand_inverter_structure () =
  (* inv(a, y) in nMOS expands to a depletion load on y and a pull-down
     with gate a; the supply rails are dropped by default. *)
  let b = Mae_netlist.Builder.create ~name:"one" ~technology:"nmos25" in
  ignore (Mae_netlist.Builder.add_device b ~name:"u" ~kind:"inv" ~nets:[ "a"; "y" ]);
  Mae_netlist.Builder.add_port b ~name:"a" ~direction:Mae_netlist.Port.Input ~net:"a";
  let c = Mae_netlist.Builder.build b in
  match Expand.circuit Nmos_lib.library c with
  | Error _ -> Alcotest.fail "expansion failed"
  | Ok tx ->
      Alcotest.(check int) "2 transistors" 2 (Mae_netlist.Circuit.device_count tx);
      let y = Option.get (Mae_netlist.Circuit.find_net tx "y") in
      Alcotest.(check int) "y touches both" 2
        (Mae_netlist.Circuit.degree tx y.Mae_netlist.Net.index);
      Alcotest.(check bool) "no vdd" true
        (Mae_netlist.Circuit.find_net tx "vdd!" = None);
      Alcotest.(check int) "ports preserved" 1 (Mae_netlist.Circuit.port_count tx)

let test_expand_with_supplies () =
  let b = Mae_netlist.Builder.create ~name:"one" ~technology:"nmos25" in
  ignore (Mae_netlist.Builder.add_device b ~name:"u" ~kind:"inv" ~nets:[ "a"; "y" ]);
  let c = Mae_netlist.Builder.build b in
  match Expand.circuit ~include_supplies:true Nmos_lib.library c with
  | Error _ -> Alcotest.fail "expansion failed"
  | Ok tx ->
      Alcotest.(check bool) "vdd present" true
        (Mae_netlist.Circuit.find_net tx "vdd!" <> None);
      Alcotest.(check bool) "gnd present" true
        (Mae_netlist.Circuit.find_net tx "gnd!" <> None)

let test_expand_full_adder () =
  let tx = S.full_adder_tx in
  (* 2 xor2 (9 each) + 3 nand2 (3 each) = 27 *)
  Alcotest.(check int) "27 transistors" 27 (Mae_netlist.Circuit.device_count tx);
  Alcotest.(check int) "ports preserved" 5 (Mae_netlist.Circuit.port_count tx);
  (* every transistor kind footprints in the process *)
  let stats = Mae_netlist.Stats.compute tx S.nmos in
  Alcotest.(check int) "N" 27 stats.Mae_netlist.Stats.device_count

let test_expand_transistor_count_agrees () =
  match Expand.transistor_count Nmos_lib.library S.full_adder with
  | Ok n -> Alcotest.(check int) "count without building" 27 n
  | Error _ -> Alcotest.fail "count failed"

let test_expand_unknown_cell () =
  let b = Mae_netlist.Builder.create ~name:"bad" ~technology:"nmos25" in
  ignore (Mae_netlist.Builder.add_device b ~name:"u" ~kind:"alien" ~nets:[ "a" ]);
  let c = Mae_netlist.Builder.build b in
  match Expand.circuit Nmos_lib.library c with
  | Error (Expand.Unknown_cell { kind = "alien"; _ }) -> ()
  | Error (Expand.Unknown_cell _) | Ok _ -> Alcotest.fail "expected Unknown_cell"

let test_expand_internal_nets_private () =
  (* two nand2 instances must not share their internal pull-down node *)
  let b = Mae_netlist.Builder.create ~name:"two" ~technology:"nmos25" in
  ignore (Mae_netlist.Builder.add_device b ~name:"g1" ~kind:"nand2" ~nets:[ "a"; "b"; "x" ]);
  ignore (Mae_netlist.Builder.add_device b ~name:"g2" ~kind:"nand2" ~nets:[ "a"; "b"; "y" ]);
  let c = Mae_netlist.Builder.build b in
  match Expand.circuit Nmos_lib.library c with
  | Error _ -> Alcotest.fail "expansion failed"
  | Ok tx ->
      Alcotest.(check bool) "g1 internal" true
        (Mae_netlist.Circuit.find_net tx "g1.pd_m1" <> None);
      Alcotest.(check bool) "g2 internal" true
        (Mae_netlist.Circuit.find_net tx "g2.pd_m1" <> None)

(* Properties *)

let props =
  let open QCheck2.Gen in
  let cell_gen = oneofl (Library.cells Nmos_lib.library) in
  [
    S.qtest "every nmos cell has a depletion load per output" cell_gen
      (fun cell ->
        (* at least one ndep transistor unless the cell is pass-gate only *)
        List.exists (fun (t : Cell.transistor) -> t.kind = "ndep")
          cell.Cell.transistors);
    S.qtest "every cmos cell is complementary"
      (oneofl (Library.cells Cmos_lib.library))
      (fun cell ->
        let n =
          List.length
            (List.filter (fun (t : Cell.transistor) -> t.kind = "nenh")
               cell.Cell.transistors)
        in
        let p =
          List.length
            (List.filter (fun (t : Cell.transistor) -> t.kind = "pmos")
               cell.Cell.transistors)
        in
        n = p);
    S.qtest "pin counts positive" cell_gen (fun cell ->
        Cell.pin_count cell >= 2 && Cell.input_count cell >= 1);
  ]

let () =
  Alcotest.run "celllib"
    [
      ("cell", [ Alcotest.test_case "validation" `Quick test_cell_validation ]);
      ( "libraries",
        [
          Alcotest.test_case "nmos transistor counts" `Quick
            test_nmos_transistor_counts;
          Alcotest.test_case "cmos transistor counts" `Quick
            test_cmos_transistor_counts;
          Alcotest.test_case "process consistency" `Quick
            test_library_process_consistency;
          Alcotest.test_case "lookup" `Quick test_library_lookup;
          Alcotest.test_case "for_technology" `Quick test_for_technology;
        ] );
      ( "expand",
        [
          Alcotest.test_case "inverter structure" `Quick
            test_expand_inverter_structure;
          Alcotest.test_case "with supplies" `Quick test_expand_with_supplies;
          Alcotest.test_case "full adder" `Quick test_expand_full_adder;
          Alcotest.test_case "transistor_count" `Quick
            test_expand_transistor_count_agrees;
          Alcotest.test_case "unknown cell" `Quick test_expand_unknown_cell;
          Alcotest.test_case "internal nets private" `Quick
            test_expand_internal_nets_private;
        ] );
      ("properties", props);
    ]
