open Mae_geom
module S = Mae_test_support.Support

let test_lambda_conversions () =
  S.check_float "of_microns" 4. (Lambda.of_microns ~microns:10. ~lambda_microns:2.5);
  S.check_float "to_microns" 10. (Lambda.to_microns 4. ~lambda_microns:2.5);
  S.check_float "area" 16.
    (Lambda.area_of_square_microns 100. ~lambda_microns:2.5)

let test_lambda_grid () =
  S.check_float "exact multiple stays" 14. (Lambda.ceil_to_grid 14. ~grid:7.);
  S.check_float "rounds up" 21. (Lambda.ceil_to_grid 14.1 ~grid:7.);
  S.check_float "zero stays" 0. (Lambda.ceil_to_grid 0. ~grid:7.);
  S.raises_invalid (fun () -> Lambda.ceil_to_grid 1. ~grid:0.)

let test_point_distances () =
  let a = Point.make ~x:1. ~y:2. and b = Point.make ~x:4. ~y:6. in
  S.check_float "manhattan" 7. (Point.manhattan a b);
  S.check_float "euclid" 5. (Point.euclid a b);
  Alcotest.(check bool) "midpoint" true
    (Point.equal (Point.midpoint a b) (Point.make ~x:2.5 ~y:4.))

let test_interval_basics () =
  let i = Interval.make ~lo:5. ~hi:2. in
  S.check_float "normalized lo" 2. i.Interval.lo;
  S.check_float "normalized hi" 5. i.Interval.hi;
  S.check_float "length" 3. (Interval.length i);
  Alcotest.(check bool) "contains" true (Interval.contains i 3.);
  Alcotest.(check bool) "contains edge" true (Interval.contains i 5.);
  Alcotest.(check bool) "not contains" false (Interval.contains i 5.1)

let test_interval_overlap () =
  let a = Interval.make ~lo:0. ~hi:2. and b = Interval.make ~lo:2. ~hi:4. in
  let c = Interval.make ~lo:3. ~hi:5. in
  Alcotest.(check bool) "touching closed" true (Interval.overlaps a b);
  Alcotest.(check bool) "touching open" false (Interval.overlaps_open a b);
  Alcotest.(check bool) "disjoint" false (Interval.overlaps a c);
  Alcotest.(check bool) "hull" true
    (Interval.equal (Interval.hull a c) (Interval.make ~lo:0. ~hi:5.))

let test_rect_basics () =
  let r = Rect.make ~x:1. ~y:2. ~w:3. ~h:4. in
  S.check_float "area" 12. (Rect.area r);
  S.check_float "aspect" 0.75 (Rect.aspect_ratio r);
  Alcotest.(check bool) "center" true
    (Point.equal (Rect.center r) (Point.make ~x:2.5 ~y:4.));
  S.raises_invalid (fun () -> Rect.make ~x:0. ~y:0. ~w:(-1.) ~h:1.)

let test_rect_union_intersect () =
  let a = Rect.make ~x:0. ~y:0. ~w:2. ~h:2. in
  let b = Rect.make ~x:3. ~y:3. ~w:2. ~h:2. in
  let u = Rect.union a b in
  S.check_float "union area" 25. (Rect.area u);
  Alcotest.(check bool) "disjoint" false (Rect.intersects a b);
  (* rectangles sharing only an edge do not intersect (cells abut) *)
  let c = Rect.make ~x:2. ~y:0. ~w:2. ~h:2. in
  Alcotest.(check bool) "abutting" false (Rect.intersects a c);
  let d = Rect.make ~x:1. ~y:1. ~w:2. ~h:2. in
  Alcotest.(check bool) "overlapping" true (Rect.intersects a d)

let test_rect_union_all () =
  Alcotest.(check bool) "empty" true (Rect.union_all [] = None);
  let r = Rect.make ~x:0. ~y:0. ~w:1. ~h:1. in
  Alcotest.(check bool) "singleton" true (Rect.union_all [ r ] = Some r)

let test_aspect_basics () =
  let a = Aspect.make ~width:20. ~height:10. in
  S.check_float "ratio" 2. (Aspect.ratio a);
  S.check_float "normalize" 0.5 (Aspect.ratio (Aspect.normalize a));
  S.check_float "clamped" 1.5 (Aspect.ratio (Aspect.clamp a ~lo:1. ~hi:1.5));
  S.raises_invalid (fun () -> Aspect.make ~width:0. ~height:1.);
  S.raises_invalid (fun () -> Aspect.of_ratio (-2.))

let test_aspect_dims () =
  let a = Aspect.of_ratio 2. in
  let w, h = Aspect.dims_for_area a 200. in
  S.check_float "w*h = area" 200. (w *. h);
  S.check_float "w/h = ratio" 2. (w /. h)

let test_aspect_error_orientation_free () =
  let e =
    Aspect.error ~estimated:(Aspect.of_ratio 2.) ~real:(Aspect.of_ratio 0.5)
  in
  S.check_float "rotated shapes are the same shape" 0. e

let test_orientation_group () =
  List.iter
    (fun o ->
      Alcotest.(check bool) "self-inverse" true
        (Orientation.equal Orientation.R0 (Orientation.compose o o)))
    Orientation.all;
  Alcotest.(check bool) "mx.my = r180" true
    (Orientation.equal Orientation.R180
       (Orientation.compose Orientation.MX Orientation.MY));
  List.iter
    (fun o ->
      Alcotest.(check bool) "flip_x twice" true
        (Orientation.equal o (Orientation.flip_x (Orientation.flip_x o)));
      Alcotest.(check bool) "flip_y twice" true
        (Orientation.equal o (Orientation.flip_y (Orientation.flip_y o))))
    Orientation.all

(* Property tests *)

let pos_float = QCheck2.Gen.float_range 0.1 1000.

let any_float = QCheck2.Gen.float_range (-1000.) 1000.

let interval_gen =
  QCheck2.Gen.map
    (fun (a, b) -> Interval.make ~lo:a ~hi:b)
    QCheck2.Gen.(pair any_float any_float)

let rect_gen =
  QCheck2.Gen.map
    (fun (((x, y), w), h) -> Rect.make ~x ~y ~w ~h)
    QCheck2.Gen.(pair (pair (pair any_float any_float) pos_float) pos_float)

let props =
  [
    S.qtest "interval overlap symmetric"
      QCheck2.Gen.(pair interval_gen interval_gen)
      (fun (a, b) -> Interval.overlaps a b = Interval.overlaps b a);
    S.qtest "interval hull covers both"
      QCheck2.Gen.(pair interval_gen interval_gen)
      (fun (a, b) ->
        let h = Interval.hull a b in
        Interval.contains h a.Interval.lo
        && Interval.contains h b.Interval.hi);
    S.qtest "open overlap implies closed overlap"
      QCheck2.Gen.(pair interval_gen interval_gen)
      (fun (a, b) ->
        (not (Interval.overlaps_open a b)) || Interval.overlaps a b);
    S.qtest "rect union contains both centers"
      QCheck2.Gen.(pair rect_gen rect_gen)
      (fun (a, b) ->
        let u = Rect.union a b in
        Rect.contains_point u (Rect.center a)
        && Rect.contains_point u (Rect.center b));
    S.qtest "rect union area at least max"
      QCheck2.Gen.(pair rect_gen rect_gen)
      (fun (a, b) ->
        Rect.area (Rect.union a b) >= Float.max (Rect.area a) (Rect.area b) -. 1e-6);
    S.qtest "rect intersects symmetric"
      QCheck2.Gen.(pair rect_gen rect_gen)
      (fun (a, b) -> Rect.intersects a b = Rect.intersects b a);
    S.qtest "aspect normalize is <= 1" pos_float (fun r ->
        Aspect.ratio (Aspect.normalize (Aspect.of_ratio r)) <= 1. +. 1e-12);
    S.qtest "aspect dims reproduce area"
      QCheck2.Gen.(pair pos_float pos_float)
      (fun (r, area) ->
        let w, h = Aspect.dims_for_area (Aspect.of_ratio r) area in
        S.approx ~eps:1e-9 (w *. h) area);
    S.qtest "orientation compose closed"
      QCheck2.Gen.(pair (oneofl Orientation.all) (oneofl Orientation.all))
      (fun (a, b) -> List.mem (Orientation.compose a b) Orientation.all);
  ]

let () =
  Alcotest.run "geom"
    [
      ( "lambda",
        [
          Alcotest.test_case "conversions" `Quick test_lambda_conversions;
          Alcotest.test_case "grid" `Quick test_lambda_grid;
        ] );
      ("point", [ Alcotest.test_case "distances" `Quick test_point_distances ]);
      ( "interval",
        [
          Alcotest.test_case "basics" `Quick test_interval_basics;
          Alcotest.test_case "overlap" `Quick test_interval_overlap;
        ] );
      ( "rect",
        [
          Alcotest.test_case "basics" `Quick test_rect_basics;
          Alcotest.test_case "union/intersect" `Quick test_rect_union_intersect;
          Alcotest.test_case "union_all" `Quick test_rect_union_all;
        ] );
      ( "aspect",
        [
          Alcotest.test_case "basics" `Quick test_aspect_basics;
          Alcotest.test_case "dims" `Quick test_aspect_dims;
          Alcotest.test_case "orientation-free error" `Quick
            test_aspect_error_orientation_free;
        ] );
      ("orientation", [ Alcotest.test_case "group" `Quick test_orientation_group ]);
      ("properties", props);
    ]
