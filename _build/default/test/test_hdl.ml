open Mae_hdl
module S = Mae_test_support.Support

let sample =
  {|
  module half_adder {
    technology nmos25;
    port a in; port b in;
    port s out; port c out;
    device x1 xor2 (a, b, s);
    device a1 nand2 (a, b, cn);
    device i1 inv (cn, c);
    net cn;
  }
|}

(* Lexer *)

let test_lexer_tokens () =
  match Lexer.tokenize "module m { port a in; }" with
  | Error e -> Alcotest.failf "lex error: %s" e.message
  | Ok tokens ->
      let kinds = List.map (fun (t : Token.located) -> t.token) tokens in
      Alcotest.(check bool) "tokens" true
        (kinds
        = [ Token.Module; Token.Ident "m"; Token.Lbrace; Token.Port;
            Token.Ident "a"; Token.Ident "in"; Token.Semi; Token.Rbrace;
            Token.Eof ])

let test_lexer_comments () =
  match Lexer.tokenize "# all\n// comment\nmodule" with
  | Error e -> Alcotest.failf "lex error: %s" e.message
  | Ok tokens -> Alcotest.(check int) "module + eof" 2 (List.length tokens)

let test_lexer_positions () =
  match Lexer.tokenize "module\n  m" with
  | Error _ -> Alcotest.fail "lex error"
  | Ok [ m; ident; _eof ] ->
      Alcotest.(check int) "line 1" 1 m.Token.line;
      Alcotest.(check int) "line 2" 2 ident.Token.line;
      Alcotest.(check int) "col 3" 3 ident.Token.column
  | Ok _ -> Alcotest.fail "unexpected token count"

let test_lexer_error () =
  match Lexer.tokenize "module $" with
  | Error e -> Alcotest.(check int) "line" 1 e.line
  | Ok _ -> Alcotest.fail "expected lex error"

let test_lexer_bus_bits () =
  match Lexer.tokenize "a[3] b.c" with
  | Ok [ a; b; _eof ] ->
      Alcotest.(check bool) "bracketed ident" true (a.Token.token = Token.Ident "a[3]");
      Alcotest.(check bool) "dotted ident" true (b.Token.token = Token.Ident "b.c")
  | Ok _ | Error _ -> Alcotest.fail "expected two idents"

(* Parser *)

let test_parse_sample () =
  match Parser.parse_string sample with
  | Error e -> Alcotest.failf "parse error: %d:%d %s" e.line e.column e.message
  | Ok [ m ] ->
      Alcotest.(check string) "name" "half_adder" m.Ast.name;
      Alcotest.(check bool) "technology" true
        (Ast.technology m = Some "nmos25");
      let devices =
        List.filter
          (function Ast.Device_decl _ -> true | _ -> false)
          m.Ast.items
      in
      Alcotest.(check int) "devices" 3 (List.length devices)
  | Ok _ -> Alcotest.fail "expected one module"

let test_parse_errors () =
  let expect_error text =
    match Parser.parse_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse error for %S" text
  in
  expect_error "module { }";
  expect_error "module m { port a sideways; }";
  expect_error "module m { device d inv (); }";
  expect_error "module m { device d inv (a,); }";
  expect_error "module m { port a in }";
  expect_error "module m { ";
  expect_error "port a in;"

let test_parse_multiple_modules () =
  let text = "module a { port p in; } module b { port q out; }" in
  match Parser.parse_string text with
  | Ok ms -> Alcotest.(check int) "two modules" 2 (List.length ms)
  | Error _ -> Alcotest.fail "parse failed"

(* Elaborate *)

let elaborated () =
  match Parser.parse_string sample with
  | Error _ -> Alcotest.fail "parse failed"
  | Ok design -> begin
      match Elaborate.design_to_circuits design with
      | Ok [ c ] -> c
      | Ok _ -> Alcotest.fail "expected one circuit"
      | Error e ->
          Alcotest.failf "elaborate: %s"
            (Format.asprintf "%a" Elaborate.pp_error e)
    end

let test_elaborate_sample () =
  let c = elaborated () in
  Alcotest.(check int) "devices" 3 (Mae_netlist.Circuit.device_count c);
  Alcotest.(check int) "ports" 4 (Mae_netlist.Circuit.port_count c);
  (* nets: a b s c cn *)
  Alcotest.(check int) "nets" 5 (Mae_netlist.Circuit.net_count c);
  let cn = Option.get (Mae_netlist.Circuit.find_net c "cn") in
  Alcotest.(check int) "cn degree" 2
    (Mae_netlist.Circuit.degree c cn.Mae_netlist.Net.index)

let test_elaborate_no_technology () =
  match Parser.parse_string "module m { port a in; }" with
  | Error _ -> Alcotest.fail "parse failed"
  | Ok design -> begin
      match Elaborate.design_to_circuits design with
      | Error (Elaborate.No_technology _) -> ()
      | Error _ | Ok _ -> Alcotest.fail "expected No_technology";
    end;
    begin
      match
        Parser.parse_string "module m { port a in; }"
        |> Result.get_ok
        |> Elaborate.design_to_circuits ~default_technology:"cmos20"
      with
      | Ok [ c ] ->
          Alcotest.(check string) "default applied" "cmos20"
            c.Mae_netlist.Circuit.technology
      | Ok _ | Error _ -> Alcotest.fail "expected default technology"
    end

let test_elaborate_duplicate () =
  let text = "module m { technology t; port a in; port a in; }" in
  match Parser.parse_string text |> Result.get_ok |> Elaborate.design_to_circuits with
  | Error (Elaborate.Duplicate_name { what = "port"; _ }) -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected duplicate port error"

let test_find_module () =
  let design = Parser.parse_string sample |> Result.get_ok in
  begin
    match Elaborate.find_module design ~name:"half_adder" with
    | Ok _ -> ()
    | Error _ -> Alcotest.fail "should find half_adder"
  end;
  match Elaborate.find_module design ~name:"zzz" with
  | Error (Elaborate.Module_not_found "zzz") -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected Module_not_found"

(* Printer round-trip *)

let circuits_isomorphic (a : Mae_netlist.Circuit.t) (b : Mae_netlist.Circuit.t) =
  Mae_netlist.Circuit.device_count a = Mae_netlist.Circuit.device_count b
  && Mae_netlist.Circuit.net_count a = Mae_netlist.Circuit.net_count b
  && Mae_netlist.Circuit.port_count a = Mae_netlist.Circuit.port_count b
  && Array.for_all
       (fun (d : Mae_netlist.Device.t) ->
         match Mae_netlist.Circuit.find_device b d.name with
         | None -> false
         | Some d' ->
             String.equal d.kind d'.Mae_netlist.Device.kind
             && List.equal String.equal
                  (List.map (fun i -> a.Mae_netlist.Circuit.nets.(i).Mae_netlist.Net.name)
                     (Array.to_list d.pins))
                  (List.map (fun i -> b.Mae_netlist.Circuit.nets.(i).Mae_netlist.Net.name)
                     (Array.to_list d'.Mae_netlist.Device.pins)))
       a.Mae_netlist.Circuit.devices

let test_printer_roundtrip () =
  List.iter
    (fun circuit ->
      let text = Printer.to_string circuit in
      match Parser.parse_string text with
      | Error e -> Alcotest.failf "re-parse failed: %s" e.message
      | Ok design -> begin
          match Elaborate.design_to_circuits design with
          | Ok [ c' ] ->
              Alcotest.(check bool)
                ("round trip " ^ circuit.Mae_netlist.Circuit.name)
                true (circuits_isomorphic circuit c')
          | Ok _ | Error _ -> Alcotest.fail "re-elaboration failed"
        end)
    [ S.full_adder; S.tiny (); S.counter8 ]

(* SPICE *)

let spice_sample =
  {|* a tiny subcircuit
* technology: nmos25
.subckt inverter in out
Mpd out in gnd gnd nenh
Mpu vdd out out
+ vdd ndep
.ends
.subckt pair a b
Xi1 a m inverter
Xi2 m b inverter
.ends pair
.end
|}

let test_spice_parse () =
  match Spice.parse_string spice_sample with
  | Error e -> Alcotest.failf "spice error: line %d: %s" e.line e.message
  | Ok [ inv; pair ] ->
      Alcotest.(check string) "name" "inverter" inv.Mae_netlist.Circuit.name;
      Alcotest.(check string) "technology" "nmos25"
        inv.Mae_netlist.Circuit.technology;
      Alcotest.(check int) "transistors" 2
        (Mae_netlist.Circuit.device_count inv);
      (* bulk node dropped: Mpd pins are out, in, gnd *)
      let mpd = Option.get (Mae_netlist.Circuit.find_device inv "Mpd") in
      Alcotest.(check int) "3 pins" 3 (Array.length mpd.Mae_netlist.Device.pins);
      Alcotest.(check int) "pair devices" 2
        (Mae_netlist.Circuit.device_count pair);
      let x1 = Option.get (Mae_netlist.Circuit.find_device pair "Xi1") in
      Alcotest.(check string) "instance kind" "inverter"
        x1.Mae_netlist.Device.kind
  | Ok l -> Alcotest.failf "expected 2 circuits, got %d" (List.length l)

let test_spice_errors () =
  let expect_error text =
    match Spice.parse_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected spice error for %S" text
  in
  expect_error ".ends\n";
  expect_error ".subckt a p\nM1 a b nenh\n.ends\n";  (* malformed MOS card *)
  expect_error "M1 a b c d nenh\n";  (* outside subckt *)
  expect_error ".subckt a p\n";  (* unterminated *)
  expect_error "+ continuation first\n"

(* Hierarchical flattening *)

let hierarchical_design =
  {|
  module half_add {
    port a in; port b in; port s out; port c out;
    device x xor2 (a, b, s);
    device n nand2 (a, b, cn);
    device i inv (cn, c);
  }
  module full_add {
    port a in; port b in; port cin in; port s out; port cout out;
    device h1 half_add (a, b, t, c1);
    device h2 half_add (t, cin, s, c2);
    device o nor2 (c1, c2, cout_n);
    device i3 inv (cout_n, cout);
  }
  module adder2 {
    technology nmos25;
    port a0 in; port a1 in; port b0 in; port b1 in; port ci in;
    port s0 out; port s1 out; port co out;
    device f0 full_add (a0, b0, ci, s0, k);
    device f1 full_add (a1, b1, k, s1, co);
  }
|}

let test_flatten_hierarchy () =
  let design = Parser.parse_string hierarchical_design |> Result.get_ok in
  match Elaborate.flatten design ~top:"adder2" with
  | Error e -> Alcotest.failf "flatten: %s" (Format.asprintf "%a" Elaborate.pp_error e)
  | Ok c ->
      (* each full_add = 2 half_add (3 devices each) + 2 leaf devices = 8;
         2 instances -> 16 devices *)
      Alcotest.(check int) "devices" 16 (Mae_netlist.Circuit.device_count c);
      Alcotest.(check int) "only top ports" 8 (Mae_netlist.Circuit.port_count c);
      Alcotest.(check string) "technology" "nmos25"
        c.Mae_netlist.Circuit.technology;
      (* the internal carry k connects the two adder slices *)
      let k = Option.get (Mae_netlist.Circuit.find_net c "k") in
      (* f0's cout driver plus the two half-add gates reading f1's cin *)
      Alcotest.(check int) "carry net crosses instances" 3
        (Mae_netlist.Circuit.degree c k.Mae_netlist.Net.index);
      (* hierarchical names *)
      Alcotest.(check bool) "nested instance name" true
        (Mae_netlist.Circuit.find_device c "f0.h1.x" <> None);
      (* it is a real estimable circuit *)
      let est = Mae.Stdcell.estimate ~rows:2 c Mae_test_support.Support.nmos in
      Alcotest.(check bool) "estimable" true (est.Mae.Estimate.area > 0.)

let test_flatten_functional () =
  (* the flattened 2-bit adder actually adds *)
  let design = Parser.parse_string hierarchical_design |> Result.get_ok in
  let c = Result.get_ok (Elaborate.flatten design ~top:"adder2") in
  for a = 0 to 3 do
    for b = 0 to 3 do
      let inputs =
        Mae_sim.Simulator.bits ~prefix:"a" ~width:2 a
        @ Mae_sim.Simulator.bits ~prefix:"b" ~width:2 b
        @ [ ("ci", false) ]
      in
      match Mae_sim.Simulator.eval c ~inputs with
      | Error e ->
          Alcotest.failf "sim: %s"
            (Format.asprintf "%a" Mae_sim.Simulator.pp_error e)
      | Ok outputs ->
          let total =
            List.fold_left
              (fun acc (name, v) ->
                if not v then acc
                else
                  match name with
                  | "s0" -> acc lor 1
                  | "s1" -> acc lor 2
                  | "co" -> acc lor 4
                  | _ -> acc)
              0 outputs
          in
          Alcotest.(check int) (Printf.sprintf "%d+%d" a b) (a + b) total
    done
  done

let test_flatten_errors () =
  let recursive = "module m { technology t; port a in; device u m (a); }" in
  begin
    match
      Parser.parse_string recursive |> Result.get_ok
      |> fun d -> Elaborate.flatten d ~top:"m"
    with
    | Error (Elaborate.Recursive_module "m") -> ()
    | Error _ | Ok _ -> Alcotest.fail "expected Recursive_module"
  end;
  let arity =
    "module a { technology t; port p in; device u inv (p, q); }\n\
     module b { technology t; port x in; device i a (x, y, z); }"
  in
  begin
    match
      Parser.parse_string arity |> Result.get_ok
      |> fun d -> Elaborate.flatten d ~top:"b"
    with
    | Error (Elaborate.Port_arity { expected = 1; got = 3; _ }) -> ()
    | Error _ | Ok _ -> Alcotest.fail "expected Port_arity"
  end;
  match
    Parser.parse_string "module a { technology t; port p in; }"
    |> Result.get_ok
    |> fun d -> Elaborate.flatten d ~top:"zzz"
  with
  | Error (Elaborate.Module_not_found "zzz") -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected Module_not_found"

let test_flatten_leaf_module_matches_plain () =
  (* flattening a design with no hierarchy equals plain elaboration *)
  let design = Parser.parse_string sample |> Result.get_ok in
  let flat = Result.get_ok (Elaborate.flatten design ~top:"half_adder") in
  let plain =
    Result.get_ok (Elaborate.find_module design ~name:"half_adder")
  in
  Alcotest.(check int) "devices" (Mae_netlist.Circuit.device_count plain)
    (Mae_netlist.Circuit.device_count flat);
  Alcotest.(check int) "nets" (Mae_netlist.Circuit.net_count plain)
    (Mae_netlist.Circuit.net_count flat)

(* Fuzz: malformed input must produce errors, never exceptions *)

let fuzz_props =
  let open QCheck2.Gen in
  let junk_gen =
    string_size ~gen:(char_range ' ' '~') (int_range 0 200)
  in
  let tokens_gen =
    map (String.concat " ")
      (list_size (int_range 0 40)
         (oneofl
            [ "module"; "port"; "device"; "net"; "technology"; "{"; "}"; "(";
              ")"; ","; ";"; "in"; "out"; "x"; "inv"; "a[2]"; "//c"; "#c" ]))
  in
  [
    S.qtest ~count:300 "parser total on junk" junk_gen (fun text ->
        match Parser.parse_string text with
        | Ok _ | Error _ -> true);
    S.qtest ~count:300 "parser total on token soup" tokens_gen (fun text ->
        match Parser.parse_string text with
        | Ok _ | Error _ -> true);
    S.qtest ~count:300 "spice total on junk" junk_gen (fun text ->
        match Spice.parse_string text with
        | Ok _ | Error _ -> true);
    S.qtest ~count:300 "lexer total on junk" junk_gen (fun text ->
        match Lexer.tokenize text with
        | Ok _ | Error _ -> true);
  ]

let () =
  Alcotest.run "hdl"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "positions" `Quick test_lexer_positions;
          Alcotest.test_case "error" `Quick test_lexer_error;
          Alcotest.test_case "bus bits" `Quick test_lexer_bus_bits;
        ] );
      ( "parser",
        [
          Alcotest.test_case "sample" `Quick test_parse_sample;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "multiple modules" `Quick test_parse_multiple_modules;
        ] );
      ( "elaborate",
        [
          Alcotest.test_case "sample" `Quick test_elaborate_sample;
          Alcotest.test_case "no technology" `Quick test_elaborate_no_technology;
          Alcotest.test_case "duplicates" `Quick test_elaborate_duplicate;
          Alcotest.test_case "find module" `Quick test_find_module;
        ] );
      ("printer", [ Alcotest.test_case "round trip" `Quick test_printer_roundtrip ]);
      ( "flatten",
        [
          Alcotest.test_case "hierarchy" `Quick test_flatten_hierarchy;
          Alcotest.test_case "functional" `Quick test_flatten_functional;
          Alcotest.test_case "errors" `Quick test_flatten_errors;
          Alcotest.test_case "leaf equals plain" `Quick
            test_flatten_leaf_module_matches_plain;
        ] );
      ( "spice",
        [
          Alcotest.test_case "parse" `Quick test_spice_parse;
          Alcotest.test_case "errors" `Quick test_spice_errors;
        ] );
      ("fuzz", fuzz_props);
    ]
