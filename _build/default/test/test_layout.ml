open Mae_layout
module S = Mae_test_support.Support

(* Anneal *)

let test_schedule_validation () =
  Alcotest.(check bool) "default ok" true
    (Result.is_ok (Anneal.validate_schedule Anneal.default_schedule));
  Alcotest.(check bool) "quick ok" true
    (Result.is_ok (Anneal.validate_schedule Anneal.quick_schedule));
  Alcotest.(check bool) "bad cooling" true
    (Result.is_error
       (Anneal.validate_schedule { Anneal.default_schedule with cooling = 1.5 }));
  Alcotest.(check bool) "inverted temps" true
    (Result.is_error
       (Anneal.validate_schedule
          { Anneal.default_schedule with final_temp = 2000. }));
  Alcotest.(check bool) "bad moves" true
    (Result.is_error
       (Anneal.validate_schedule { Anneal.default_schedule with moves_per_temp = 0 }))

let test_anneal_minimizes_quadratic () =
  (* minimize (x - 3)^2 with +-step moves *)
  let x = ref 50. in
  let cost v = (v -. 3.) *. (v -. 3.) in
  let propose rng =
    let step = if Mae_prob.Rng.bool rng then 1. else -1. in
    let before = cost !x in
    x := !x +. step;
    let undo () = x := !x -. step in
    Some (cost !x -. before, undo)
  in
  let final =
    Anneal.run ~rng:(S.rng 4) ~schedule:Anneal.default_schedule
      ~initial_cost:(cost !x) ~propose
  in
  Alcotest.(check bool) "near optimum" true (final < 25.);
  S.check_float ~eps:1e-6 "tracked cost consistent" (cost !x) final

let test_anneal_stops_without_moves () =
  let final =
    Anneal.run ~rng:(S.rng 1) ~schedule:Anneal.quick_schedule ~initial_cost:7.
      ~propose:(fun _ -> None)
  in
  S.check_float "cost unchanged" 7. final

(* Wirelength *)

let test_hpwl () =
  let c = S.full_adder in
  let x d = Float.of_int d in
  let y _ = 0. in
  let p = Option.get (Mae_netlist.Circuit.find_net c "fa_p") in
  (* net p touches devices x1(0), x2(1), g2(3): spread 0..3 -> hpwl 3 *)
  S.check_float "net hpwl" 3.
    (Wirelength.net_hpwl c ~net:p.Mae_netlist.Net.index ~x ~y);
  let a = Option.get (Mae_netlist.Circuit.find_net c "s") in
  S.check_float "single-pin net free" 0.
    (Wirelength.net_hpwl c ~net:a.Mae_netlist.Net.index ~x ~y);
  Alcotest.(check bool) "total positive" true (Wirelength.total_hpwl c ~x ~y > 0.)

let test_nets_of_devices () =
  let c = S.full_adder in
  let nets = Wirelength.nets_of_devices c [ 0 ] in
  (* x1 connects a, b, p *)
  Alcotest.(check int) "three nets" 3 (List.length nets)

(* Channel router *)

let iv lo hi = Mae_geom.Interval.make ~lo ~hi

let test_left_edge_disjoint_share () =
  let spans =
    [ { Channel.net = 0; interval = iv 0. 5. };
      { Channel.net = 1; interval = iv 6. 9. };
      { Channel.net = 2; interval = iv 10. 12. } ]
  in
  let routed = Channel.left_edge spans in
  Alcotest.(check int) "one track" 1 routed.Channel.tracks

let test_left_edge_overlapping_separate () =
  let spans =
    [ { Channel.net = 0; interval = iv 0. 10. };
      { Channel.net = 1; interval = iv 5. 15. };
      { Channel.net = 2; interval = iv 8. 20. } ]
  in
  let routed = Channel.left_edge spans in
  Alcotest.(check int) "three tracks" 3 routed.Channel.tracks;
  Alcotest.(check int) "density matches" 3 routed.Channel.density

let test_left_edge_merges_same_net () =
  let spans =
    [ { Channel.net = 7; interval = iv 0. 4. };
      { Channel.net = 7; interval = iv 10. 14. } ]
  in
  let routed = Channel.left_edge spans in
  Alcotest.(check int) "merged to one span" 1 (List.length routed.Channel.track_of);
  Alcotest.(check int) "one track" 1 routed.Channel.tracks

let test_left_edge_empty () =
  let routed = Channel.left_edge [] in
  Alcotest.(check int) "zero tracks" 0 routed.Channel.tracks;
  Alcotest.(check int) "zero density" 0 routed.Channel.density

let test_density () =
  Alcotest.(check int) "nested" 2
    (Channel.density
       [ { Channel.net = 0; interval = iv 0. 10. };
         { Channel.net = 1; interval = iv 2. 4. } ]);
  Alcotest.(check int) "touching counts (closed)" 2
    (Channel.density
       [ { Channel.net = 0; interval = iv 0. 5. };
         { Channel.net = 1; interval = iv 5. 9. } ])

let test_vertical_constraints () =
  let pin x pin_net = { Channel.x; pin_net } in
  let edges =
    Channel.vertical_constraints ~pitch:4.
      ~top:[ pin 10. 1; pin 30. 2 ]
      ~bottom:[ pin 10.5 3; pin 50. 1 ]
  in
  Alcotest.(check bool) "column conflict found" true (List.mem (1, 3) edges);
  Alcotest.(check int) "only one edge" 1 (List.length edges);
  (* same net in a column is not a constraint *)
  let self =
    Channel.vertical_constraints ~pitch:4. ~top:[ pin 5. 9 ] ~bottom:[ pin 5. 9 ]
  in
  Alcotest.(check (list (pair int int))) "no self edge" [] self

let test_route_constrained_orders_tracks () =
  (* net 1 must be above net 2 (pins in the same column); with disjoint
     intervals plain left-edge would share a track, the constrained router
     must not if 2 would land above 1... but since both fit track 0 in
     left-to-right order only when unconstrained, check ordering holds *)
  let pin x pin_net = { Channel.x; pin_net } in
  let spans =
    [ { Channel.net = 1; interval = iv 0. 10. };
      { Channel.net = 2; interval = iv 0. 10. } ]
  in
  let routed =
    Channel.route_constrained ~pitch:4. ~top:[ pin 5. 1 ] ~bottom:[ pin 5. 2 ]
      spans
  in
  let track n = List.assoc n routed.Channel.track_of in
  Alcotest.(check bool) "net 1 above net 2" true (track 1 < track 2);
  Alcotest.(check int) "two tracks" 2 routed.Channel.tracks

let test_route_constrained_defers_blocked_net () =
  (* nets 1 and 2 have disjoint intervals but net 2 is constrained below
     net 1, so they cannot share the first track *)
  let pin x pin_net = { Channel.x; pin_net } in
  let spans =
    [ { Channel.net = 1; interval = iv 0. 4. };
      { Channel.net = 2; interval = iv 6. 9. } ]
  in
  let routed =
    Channel.route_constrained ~pitch:4. ~top:[ pin 2. 1 ] ~bottom:[ pin 2.5 2 ]
      spans
  in
  let track n = List.assoc n routed.Channel.track_of in
  Alcotest.(check int) "net 1 first" 0 (track 1);
  Alcotest.(check int) "net 2 deferred" 1 (track 2)

let test_route_constrained_breaks_cycles () =
  (* 1 above 2 at x=0, 2 above 1 at x=20: a VC cycle; the router must
     still terminate and route both nets *)
  let pin x pin_net = { Channel.x; pin_net } in
  let spans =
    [ { Channel.net = 1; interval = iv 0. 20. };
      { Channel.net = 2; interval = iv 0. 20. } ]
  in
  let routed =
    Channel.route_constrained ~pitch:4.
      ~top:[ pin 0. 1; pin 20. 2 ]
      ~bottom:[ pin 0. 2; pin 20. 1 ]
      spans
  in
  Alcotest.(check int) "both routed" 2 (List.length routed.Channel.track_of);
  Alcotest.(check int) "two tracks" 2 routed.Channel.tracks

let test_route_constrained_unconstrained_matches_left_edge () =
  let spans =
    [ { Channel.net = 0; interval = iv 0. 5. };
      { Channel.net = 1; interval = iv 6. 9. };
      { Channel.net = 2; interval = iv 2. 8. } ]
  in
  let le = Channel.left_edge spans in
  let rc = Channel.route_constrained ~pitch:4. ~top:[] ~bottom:[] spans in
  Alcotest.(check int) "same track count" le.Channel.tracks rc.Channel.tracks

let span_gen =
  let open QCheck2.Gen in
  list_size (int_range 1 30)
    (map
       (fun ((net, a), b) ->
         { Channel.net; interval = iv (Float.of_int a) (Float.of_int (a + b)) })
       (pair (pair (int_range 0 15) (int_range 0 100)) (int_range 0 30)))

let channel_props =
  [
    S.qtest "left-edge respects non-overlap per track" span_gen (fun spans ->
        let routed = Channel.left_edge spans in
        let merged = Channel.merge_spans spans in
        let interval_of net =
          (List.find (fun (s : Channel.span) -> s.net = net) merged).interval
        in
        List.for_all
          (fun (net_a, track_a) ->
            List.for_all
              (fun (net_b, track_b) ->
                net_a = net_b || track_a <> track_b
                || not
                     (Mae_geom.Interval.overlaps (interval_of net_a)
                        (interval_of net_b)))
              routed.Channel.track_of)
          routed.Channel.track_of);
    S.qtest "density <= tracks <= net count" span_gen (fun spans ->
        let routed = Channel.left_edge spans in
        let nets =
          List.sort_uniq Int.compare
            (List.map (fun (s : Channel.span) -> s.net) spans)
        in
        routed.Channel.density <= routed.Channel.tracks
        && routed.Channel.tracks <= List.length nets);
  ]

let constrained_props =
  let open QCheck2.Gen in
  let scenario_gen =
    (* random spans plus random pins drawn from the same net ids *)
    pair span_gen
      (pair
         (list_size (int_range 0 10) (pair (int_range 0 15) (int_range 0 120)))
         (list_size (int_range 0 10) (pair (int_range 0 15) (int_range 0 120))))
  in
  [
    S.qtest "constrained router routes every net once" scenario_gen
      (fun (spans, (top, bottom)) ->
        let pin (n, x) = { Channel.x = Float.of_int x; pin_net = n } in
        let routed =
          Channel.route_constrained ~pitch:4. ~top:(List.map pin top)
            ~bottom:(List.map pin bottom) spans
        in
        let nets =
          List.sort_uniq Int.compare
            (List.map (fun (s : Channel.span) -> s.net) spans)
        in
        List.length routed.Channel.track_of = List.length nets
        && List.for_all (fun n -> List.mem_assoc n routed.Channel.track_of) nets);
    S.qtest "constrained router never shares a track between overlaps"
      scenario_gen
      (fun (spans, (top, bottom)) ->
        let pin (n, x) = { Channel.x = Float.of_int x; pin_net = n } in
        let routed =
          Channel.route_constrained ~pitch:4. ~top:(List.map pin top)
            ~bottom:(List.map pin bottom) spans
        in
        let merged = Channel.merge_spans spans in
        let interval_of net =
          (List.find (fun (s : Channel.span) -> s.net = net) merged).interval
        in
        List.for_all
          (fun (na, ta) ->
            List.for_all
              (fun (nb, tb) ->
                na = nb || ta <> tb
                || not (Mae_geom.Interval.overlaps (interval_of na) (interval_of nb)))
              routed.Channel.track_of)
          routed.Channel.track_of);
    S.qtest "constrained uses at least as many tracks as left-edge"
      scenario_gen
      (fun (spans, (top, bottom)) ->
        let pin (n, x) = { Channel.x = Float.of_int x; pin_net = n } in
        let routed =
          Channel.route_constrained ~pitch:4. ~top:(List.map pin top)
            ~bottom:(List.map pin bottom) spans
        in
        routed.Channel.tracks >= (Channel.left_edge spans).Channel.tracks);
  ]


(* Row layout engine *)

let sc_layout ?(rows = 3) ?(seed = 42) circuit =
  Sc_flow.run ~schedule:Anneal.quick_schedule ~rng:(S.rng seed) ~rows circuit S.nmos

let test_row_layout_places_all_devices () =
  let c = S.counter8 in
  let l = sc_layout c in
  let placed = Array.fold_left (fun acc r -> acc + Array.length r) 0 l.Row_layout.row_members in
  Alcotest.(check int) "all devices in rows"
    (Mae_netlist.Circuit.device_count c)
    placed;
  Array.iter
    (fun r -> Alcotest.(check bool) "row index valid" true (r >= 0 && r < 3))
    l.Row_layout.device_row

let test_row_layout_no_overlaps () =
  let c = S.counter8 in
  let l = sc_layout c in
  let widths = Mae_netlist.Stats.device_widths c S.nmos in
  Array.iter
    (fun members ->
      let sorted =
        List.sort
          (fun a b -> Float.compare l.Row_layout.device_x.(a) l.Row_layout.device_x.(b))
          (Array.to_list members)
      in
      let rec check = function
        | a :: (b :: _ as rest) ->
            Alcotest.(check bool) "no overlap" true
              (l.Row_layout.device_x.(a) +. widths.(a)
               <= l.Row_layout.device_x.(b) +. 1e-9);
            check rest
        | [ _ ] | [] -> ()
      in
      check sorted)
    l.Row_layout.row_members

let test_row_layout_feedthrough_coverage () =
  (* every net must have a pin or a feed-through in every row of its span *)
  let c = S.counter8 in
  let l = sc_layout ~rows:4 c in
  for net = 0 to Mae_netlist.Circuit.net_count c - 1 do
    let rows_with_pins =
      Mae_netlist.Circuit.devices_on_net c net
      |> Array.to_list
      |> List.map (fun d -> l.Row_layout.device_row.(d))
      |> List.sort_uniq Int.compare
    in
    match rows_with_pins with
    | [] | [ _ ] -> ()
    | rmin :: _ :: _ ->
        let rmax = List.fold_left Stdlib.max rmin rows_with_pins in
        for r = rmin to rmax do
          let covered =
            List.mem r rows_with_pins
            || Array.exists (fun (n, _) -> n = net) l.Row_layout.feed_throughs.(r)
          in
          Alcotest.(check bool)
            (Printf.sprintf "net %d covered in row %d" net r)
            true covered
        done
  done

let test_row_layout_geometry_consistent () =
  let l = sc_layout S.counter8 in
  S.check_float "area = w*h" (l.Row_layout.width *. l.Row_layout.height)
    l.Row_layout.area;
  let max_row =
    Array.fold_left Float.max 0. l.Row_layout.row_lengths
  in
  S.check_float "width = longest row" max_row l.Row_layout.width;
  Alcotest.(check int) "channel array size" 4
    (Array.length l.Row_layout.channel_tracks);
  Alcotest.(check int) "total = sum"
    (Array.fold_left ( + ) 0 l.Row_layout.channel_tracks)
    l.Row_layout.total_tracks

let test_row_layout_deterministic () =
  let a = sc_layout ~seed:5 S.counter8 in
  let b = sc_layout ~seed:5 S.counter8 in
  S.check_float "same area" a.Row_layout.area b.Row_layout.area;
  Alcotest.(check bool) "same placement" true
    (a.Row_layout.device_row = b.Row_layout.device_row)

let test_row_layout_annealing_improves () =
  let none =
    { Anneal.initial_temp = 1.; final_temp = 0.9; cooling = 0.5; moves_per_temp = 1 }
  in
  let bad =
    Sc_flow.run ~schedule:none ~rng:(S.rng 9) ~rows:3 S.counter8 S.nmos
  in
  let good =
    Sc_flow.run ~schedule:Anneal.default_schedule ~rng:(S.rng 9) ~rows:3
      S.counter8 S.nmos
  in
  Alcotest.(check bool) "annealing shortens wire" true
    (good.Row_layout.hpwl < bad.Row_layout.hpwl)

let test_row_layout_validation () =
  S.raises_invalid (fun () -> ignore (sc_layout ~rows:0 S.counter8));
  let empty =
    Mae_netlist.Builder.build
      (Mae_netlist.Builder.create ~name:"e" ~technology:"nmos25")
  in
  S.raises_invalid (fun () -> ignore (sc_layout empty))

(* Flows *)

let test_sc_flow_upper_bound_property () =
  (* the estimator is an upper bound on the real layout (Table 2's shape) *)
  List.iter
    (fun (e : Mae_workload.Bench_circuits.entry) ->
      List.iter
        (fun rows ->
          let est = Mae.Stdcell.estimate ~rows e.circuit S.nmos in
          let real =
            Sc_flow.run ~schedule:Anneal.quick_schedule ~rng:(S.rng 3) ~rows
              e.circuit S.nmos
          in
          Alcotest.(check bool)
            (Printf.sprintf "%s rows=%d upper bound" e.name rows)
            true
            (est.Mae.Estimate.area >= real.Row_layout.area))
        [ 2; 4 ])
    (Mae_workload.Bench_circuits.table2 ())

let test_sc_flow_sweep_independent () =
  let layouts =
    Sc_flow.run_sweep ~schedule:Anneal.quick_schedule ~rng:(S.rng 8)
      ~rows:[ 2; 3; 4 ] S.counter8 S.nmos
  in
  Alcotest.(check int) "three layouts" 3 (List.length layouts);
  List.iteri
    (fun i (l : Row_layout.t) -> Alcotest.(check int) "rows" (i + 2) l.rows)
    layouts

let test_fc_flow_picks_best () =
  let circuit = S.full_adder_tx in
  let best =
    Fc_flow.run ~schedule:Anneal.quick_schedule ~rng:(S.rng 17) circuit S.nmos
  in
  Alcotest.(check bool) "positive area" true (best.Row_layout.area > 0.)

let test_fc_flow_default_rows () =
  let rows = Fc_flow.default_rows S.full_adder_tx S.nmos in
  Alcotest.(check bool) "at least 1" true (rows >= 1);
  Alcotest.(check bool) "not absurd" true (rows <= 27)

let test_fc_flow_abutment_chain () =
  (* the pass chain: all nets <= 2 components, so the hand-layout flow
     should route it with no channel tracks at all *)
  let chain = Mae_workload.Generators.pass_chain 8 in
  let l =
    Fc_flow.run ~schedule:Anneal.default_schedule ~rng:(S.rng 23)
      ~row_candidates:[ 1 ] chain S.nmos
  in
  Alcotest.(check int) "no tracks" 0 l.Row_layout.total_tracks

(* Wiring expansion and LVS extraction *)

let sc_wiring ?(rows = 3) ?(seed = 42) circuit =
  let layout = sc_layout ~rows ~seed circuit in
  (layout, Sc_flow.wiring circuit S.nmos layout)

let test_wiring_structure () =
  let circuit = S.counter8 in
  let layout, w = sc_wiring circuit in
  (* one vertical per device pin plus one per feed-through *)
  let pin_count =
    Array.fold_left
      (fun acc (d : Mae_netlist.Device.t) -> acc + Array.length d.pins)
      0 circuit.Mae_netlist.Circuit.devices
  in
  Alcotest.(check int) "verticals = pins + feeds"
    (pin_count + layout.Row_layout.feed_through_count)
    (List.length w.Wiring.verticals);
  (* one trunk per routed span *)
  let span_count =
    Array.fold_left (fun acc spans -> acc + List.length spans) 0
      layout.Row_layout.channel_spans
  in
  Alcotest.(check int) "trunks = spans" span_count
    (List.length w.Wiring.horizontals);
  Alcotest.(check bool) "positive wire length" true (Wiring.wire_length w > 0.)

let test_wiring_vias_on_own_trunk () =
  let circuit = S.counter8 in
  let _, w = sc_wiring circuit in
  (* every via lies on a trunk of its own net *)
  List.iter
    (fun (v : Wiring.via) ->
      let on_trunk =
        List.exists
          (fun (h : Wiring.horizontal) ->
            h.h_net = v.via_net
            && Float.abs (h.y -. v.vy) < 1e-6
            && h.x_lo -. 1e-6 <= v.vx
            && v.vx <= h.x_hi +. 1e-6)
          w.Wiring.horizontals
      in
      Alcotest.(check bool) "via on own trunk" true on_trunk)
    w.Wiring.vias

let test_wiring_rejects_over_cell () =
  let circuit = S.full_adder_tx in
  let layout =
    Fc_flow.run ~schedule:Anneal.quick_schedule ~rng:(S.rng 3) circuit S.nmos
  in
  let widths = Mae_netlist.Stats.device_widths circuit S.nmos in
  let geometry = Fc_flow.geometry circuit S.nmos layout in
  if layout.Row_layout.total_tracks > 0 then
    S.raises_invalid (fun () ->
        ignore
          (Wiring.of_layout
             ~width_of:(fun d -> widths.(d))
             ~pin_spread:false ~track_pitch:4. circuit layout geometry))

let test_lvs_clean_on_flows () =
  List.iter
    (fun (e : Mae_workload.Bench_circuits.entry) ->
      List.iter
        (fun seed ->
          let circuit = e.circuit in
          let layout =
            Sc_flow.run ~rng:(S.rng seed) ~rows:4 circuit S.nmos
          in
          let w = Sc_flow.wiring circuit S.nmos layout in
          let report = Extract.lvs w circuit in
          if w.Wiring.dropped_constraints = 0 then
            Alcotest.(check bool)
              (Printf.sprintf "%s seed %d clean" e.name seed)
              true (Extract.clean report)
          else
            (* a broken constraint cycle may leave shorts a dogleg would
               fix, but never opens *)
            Alcotest.(check (list int))
              (Printf.sprintf "%s seed %d no opens" e.name seed)
              [] report.Extract.opens)
        [ 1; 2; 3 ])
    (Mae_workload.Bench_circuits.table2 ())

let test_extract_detects_open () =
  (* remove the vias: trunks disconnect from branches -> opens *)
  let circuit = S.counter8 in
  let _, w = sc_wiring circuit in
  let broken = { w with Wiring.vias = [] } in
  let report = Extract.lvs broken circuit in
  Alcotest.(check bool) "opens found" true (report.Extract.opens <> [])

let test_extract_detects_short () =
  (* a fabricated scene: two nets' verticals overlapping in one column *)
  let v net x =
    { Wiring.v_net = net; x; y_lo = 0.; y_hi = 10.;
      attached = Wiring.Pin { device = net; pin = 0 } }
  in
  let b = Mae_netlist.Builder.create ~name:"fake" ~technology:"nmos25" in
  ignore (Mae_netlist.Builder.add_device b ~name:"d0" ~kind:"inv" ~nets:[ "n0"; "n0b" ]);
  ignore (Mae_netlist.Builder.add_device b ~name:"d0x" ~kind:"inv" ~nets:[ "n0"; "n0c" ]);
  ignore (Mae_netlist.Builder.add_device b ~name:"d1" ~kind:"inv" ~nets:[ "n1"; "n1b" ]);
  ignore (Mae_netlist.Builder.add_device b ~name:"d1x" ~kind:"inv" ~nets:[ "n1"; "n1c" ]);
  let circuit = Mae_netlist.Builder.build b in
  let w =
    { Wiring.verticals = [ v 0 5.; v 2 5. ];  (* nets n0 and n1 share x=5 *)
      horizontals = []; vias = []; dropped_constraints = 0 }
  in
  let report = Extract.lvs w circuit in
  Alcotest.(check bool) "short found" true (report.Extract.shorts <> [])

let test_extracted_wirelength_exceeds_hpwl () =
  (* detailed routing is never shorter than the half-perimeter bound *)
  let circuit = S.counter8 in
  let layout, w = sc_wiring circuit in
  Alcotest.(check bool) "wirelen >= hpwl/2" true
    (Wiring.wire_length w > layout.Row_layout.hpwl /. 2.)

(* Port placement on the module boundary (section 5, physically) *)

let test_ports_placed_once_each () =
  let circuit = S.counter8 in
  let layout = sc_layout ~rows:3 circuit in
  let g = Sc_flow.geometry circuit S.nmos layout in
  match Ports.place ~port_pitch:8. circuit layout g with
  | Error e -> Alcotest.failf "place: %s" e
  | Ok placements ->
      Alcotest.(check int) "one per port"
        (Mae_netlist.Circuit.port_count circuit)
        (List.length placements);
      let names = List.map (fun (p : Ports.placement) -> p.port) placements in
      Alcotest.(check int) "distinct"
        (Mae_netlist.Circuit.port_count circuit)
        (List.length (List.sort_uniq String.compare names));
      Alcotest.(check bool) "pitch respected" true
        (Ports.min_spacing_ok ~port_pitch:8. placements);
      (* every offset lies on its edge *)
      List.iter
        (fun (p : Ports.placement) ->
          let length =
            match p.edge with
            | Ports.Top | Ports.Bottom -> layout.Row_layout.width
            | Ports.Left | Ports.Right -> layout.Row_layout.height
          in
          Alcotest.(check bool) "within edge" true
            (p.offset >= 0. && p.offset <= length))
        placements

let test_ports_overflow_spills () =
  (* a tiny module with many ports forces spilling across edges *)
  let b = Mae_netlist.Builder.create ~name:"porty" ~technology:"nmos25" in
  for i = 0 to 11 do
    let n = Printf.sprintf "p%d" i in
    Mae_netlist.Builder.add_port b ~name:n ~direction:Mae_netlist.Port.Input ~net:n
  done;
  ignore
    (Mae_netlist.Builder.add_device b ~name:"t" ~kind:"inv"
       ~nets:[ "p0"; "p1" ]);
  let circuit = Mae_netlist.Builder.build b in
  let layout = sc_layout ~rows:1 circuit in
  let g = Sc_flow.geometry circuit S.nmos layout in
  match Ports.place ~port_pitch:4. circuit layout g with
  | Error e -> Alcotest.failf "place: %s" e
  | Ok placements ->
      Alcotest.(check int) "all placed" 12 (List.length placements);
      let edges =
        List.sort_uniq Stdlib.compare
          (List.map (fun (p : Ports.placement) -> p.edge) placements)
      in
      Alcotest.(check bool) "uses several edges" true (List.length edges >= 2);
      Alcotest.(check bool) "pitch respected" true
        (Ports.min_spacing_ok ~port_pitch:4. placements)

let test_ports_impossible_pitch () =
  let circuit = S.counter8 in
  let layout = sc_layout ~rows:3 circuit in
  let g = Sc_flow.geometry circuit S.nmos layout in
  match Ports.place ~port_pitch:1e6 circuit layout g with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected perimeter overflow error"

let test_ports_section5_criterion () =
  (* the real layouts of the Table 2 circuits satisfy the criterion the
     row-selection loop enforced on the estimates *)
  List.iter
    (fun (e : Mae_workload.Bench_circuits.entry) ->
      let rows = Mae.Row_select.initial_rows e.circuit S.nmos in
      let layout = sc_layout ~rows e.circuit in
      let g = Sc_flow.geometry e.circuit S.nmos layout in
      Alcotest.(check bool) (e.name ^ " ports fit one edge") true
        (Ports.fits_one_edge g
           ~port_count:(Mae_netlist.Circuit.port_count e.circuit)
           ~port_pitch:8.))
    (Mae_workload.Bench_circuits.table2 ())

let test_ports_to_rects () =
  let circuit = S.full_adder in
  let layout = sc_layout ~rows:1 circuit in
  let g = Sc_flow.geometry circuit S.nmos layout in
  let placements = Result.get_ok (Ports.place ~port_pitch:8. circuit layout g) in
  let rects = Ports.to_rects ~size:4. g placements in
  Alcotest.(check int) "one rect per port" (List.length placements)
    (List.length rects);
  List.iter
    (fun (_, r) -> S.check_float "pad area" 16. (Mae_geom.Rect.area r))
    rects

(* Geometry extraction and legality *)

let sc_geometry ?(rows = 3) ?(seed = 42) circuit =
  let layout = sc_layout ~rows ~seed circuit in
  (layout, Sc_flow.geometry circuit S.nmos layout)

let test_geometry_matches_layout () =
  let layout, g = sc_geometry S.counter8 in
  S.check_float ~eps:1e-6 "bounding area" layout.Row_layout.area (Geometry.area g);
  Alcotest.(check int) "one rect per device"
    (Mae_netlist.Circuit.device_count S.counter8)
    (List.length (Geometry.cells g))

let test_geometry_legal_sc () =
  List.iter
    (fun (e : Mae_workload.Bench_circuits.entry) ->
      let _, g = sc_geometry ~rows:4 e.circuit in
      let violations =
        Check.verify ~device_count:(Mae_netlist.Circuit.device_count e.circuit) g
      in
      if violations <> [] then
        Alcotest.failf "%s: %s" e.name
          (String.concat "; "
             (List.map
                (fun v -> Format.asprintf "%a" Check.pp_violation v)
                violations)))
    (Mae_workload.Bench_circuits.table2 ())

let test_geometry_legal_fc () =
  List.iter
    (fun (e : Mae_workload.Bench_circuits.entry) ->
      let layout =
        Fc_flow.run ~schedule:Anneal.quick_schedule ~rng:(S.rng 31) e.circuit
          S.nmos
      in
      let g = Fc_flow.geometry e.circuit S.nmos layout in
      Alcotest.(check bool) (e.name ^ " legal") true
        (Check.is_legal
           ~device_count:(Mae_netlist.Circuit.device_count e.circuit)
           g))
    (Mae_workload.Bench_circuits.table1 ())

let test_geometry_text_dump () =
  let _, g = sc_geometry (S.tiny ()) ~rows:1 in
  let text = Geometry.to_text g in
  Alcotest.(check bool) "has cells" true
    (String.length text > 0
    && String.sub text 0 4 = "cell");
  (* one line per box plus bbox *)
  let lines = String.split_on_char '\n' (String.trim text) in
  Alcotest.(check int) "line count"
    (List.length g.Geometry.boxes + 1)
    (List.length lines)

let test_check_detects_overlap () =
  (* hand-build an illegal geometry: two overlapping cells *)
  let r1 = Mae_geom.Rect.make ~x:0. ~y:0. ~w:10. ~h:10. in
  let r2 = Mae_geom.Rect.make ~x:5. ~y:0. ~w:10. ~h:10. in
  let g =
    {
      Geometry.boxes =
        [ Geometry.Cell_box { device = 0; rect = r1 };
          Geometry.Cell_box { device = 1; rect = r2 } ];
      bounding = Mae_geom.Rect.make ~x:0. ~y:0. ~w:15. ~h:10.;
      row_rects = [| Mae_geom.Rect.make ~x:0. ~y:0. ~w:15. ~h:10. |];
    }
  in
  let violations = Check.verify ~device_count:2 g in
  Alcotest.(check bool) "overlap found" true
    (List.exists
       (function Check.Cell_overlap _ -> true | _ -> false)
       violations)

let test_check_detects_missing () =
  let g =
    {
      Geometry.boxes = [];
      bounding = Mae_geom.Rect.make ~x:0. ~y:0. ~w:1. ~h:1.;
      row_rects = [||];
    }
  in
  let violations = Check.verify ~device_count:2 g in
  Alcotest.(check int) "two missing" 2
    (List.length
       (List.filter
          (function Check.Missing_device _ -> true | _ -> false)
          violations))

let test_geometry_band_ordering () =
  (* rows stack top to bottom: row 0's band is above row 1's *)
  let _, g = sc_geometry ~rows:3 S.counter8 in
  for r = 0 to 1 do
    Alcotest.(check bool)
      (Printf.sprintf "row %d above row %d" r (r + 1))
      true
      (g.Geometry.row_rects.(r).Mae_geom.Rect.y
       > g.Geometry.row_rects.(r + 1).Mae_geom.Rect.y)
  done

let test_geometry_stacks_to_zero () =
  (* the bands and channels tile the full height: the lowest band starts
     at y = 0 *)
  let layout, g = sc_geometry ~rows:3 S.counter8 in
  let bottom =
    g.Geometry.row_rects.(2).Mae_geom.Rect.y
    -. (Float.of_int layout.Row_layout.channel_tracks.(3) *. 7.)
  in
  S.check_float ~eps:1e-6 "tiles to zero" 0. bottom

let test_wiring_single_row () =
  (* a one-row layout has no inter-row channels; wiring still expands *)
  let circuit = S.full_adder in
  let layout = sc_layout ~rows:1 circuit in
  let w = Sc_flow.wiring circuit S.nmos layout in
  Alcotest.(check bool) "verticals exist" true (w.Wiring.verticals <> []);
  let report = Extract.lvs w circuit in
  Alcotest.(check bool) "single-row lvs clean" true (Extract.clean report)

let geometry_props =
  let open QCheck2.Gen in
  [
    S.qtest ~count:30 "random circuits lay out legally (sc)"
      (pair int (int_range 4 40))
      (fun (seed, devices) ->
        let p =
          {
            Mae_workload.Random_circuit.default_params with
            devices;
            primary_outputs = Stdlib.min 8 devices;
          }
        in
        let c = Mae_workload.Random_circuit.generate ~rng:(S.rng seed) p in
        let layout =
          Sc_flow.run ~schedule:Anneal.quick_schedule ~rng:(S.rng (seed + 1))
            ~rows:((devices / 12) + 1) c S.nmos
        in
        let g = Sc_flow.geometry c S.nmos layout in
        Check.is_legal ~device_count:devices g);
  ]

let () =
  Alcotest.run "layout"
    [
      ( "anneal",
        [
          Alcotest.test_case "schedule validation" `Quick test_schedule_validation;
          Alcotest.test_case "minimizes" `Quick test_anneal_minimizes_quadratic;
          Alcotest.test_case "stops without moves" `Quick
            test_anneal_stops_without_moves;
        ] );
      ( "wirelength",
        [
          Alcotest.test_case "hpwl" `Quick test_hpwl;
          Alcotest.test_case "nets_of_devices" `Quick test_nets_of_devices;
        ] );
      ( "channel",
        [
          Alcotest.test_case "disjoint share" `Quick test_left_edge_disjoint_share;
          Alcotest.test_case "overlapping separate" `Quick
            test_left_edge_overlapping_separate;
          Alcotest.test_case "same net merged" `Quick test_left_edge_merges_same_net;
          Alcotest.test_case "empty" `Quick test_left_edge_empty;
          Alcotest.test_case "density" `Quick test_density;
          Alcotest.test_case "vertical constraints" `Quick
            test_vertical_constraints;
          Alcotest.test_case "constrained: ordering" `Quick
            test_route_constrained_orders_tracks;
          Alcotest.test_case "constrained: deferral" `Quick
            test_route_constrained_defers_blocked_net;
          Alcotest.test_case "constrained: cycles" `Quick
            test_route_constrained_breaks_cycles;
          Alcotest.test_case "constrained: unconstrained = left-edge" `Quick
            test_route_constrained_unconstrained_matches_left_edge;
        ] );
      ("channel-properties", channel_props @ constrained_props);
      ( "row_layout",
        [
          Alcotest.test_case "places all" `Quick test_row_layout_places_all_devices;
          Alcotest.test_case "no overlaps" `Quick test_row_layout_no_overlaps;
          Alcotest.test_case "feedthrough coverage" `Quick
            test_row_layout_feedthrough_coverage;
          Alcotest.test_case "geometry consistent" `Quick
            test_row_layout_geometry_consistent;
          Alcotest.test_case "deterministic" `Quick test_row_layout_deterministic;
          Alcotest.test_case "annealing improves" `Slow
            test_row_layout_annealing_improves;
          Alcotest.test_case "validation" `Quick test_row_layout_validation;
        ] );
      ( "flows",
        [
          Alcotest.test_case "sc upper bound" `Slow test_sc_flow_upper_bound_property;
          Alcotest.test_case "sc sweep" `Quick test_sc_flow_sweep_independent;
          Alcotest.test_case "fc picks best" `Quick test_fc_flow_picks_best;
          Alcotest.test_case "fc default rows" `Quick test_fc_flow_default_rows;
          Alcotest.test_case "fc abutment chain" `Quick test_fc_flow_abutment_chain;
        ] );
      ( "geometry",
        [
          Alcotest.test_case "matches layout" `Quick test_geometry_matches_layout;
          Alcotest.test_case "legal (sc suite)" `Quick test_geometry_legal_sc;
          Alcotest.test_case "legal (fc suite)" `Quick test_geometry_legal_fc;
          Alcotest.test_case "text dump" `Quick test_geometry_text_dump;
          Alcotest.test_case "detects overlap" `Quick test_check_detects_overlap;
          Alcotest.test_case "detects missing" `Quick test_check_detects_missing;
          Alcotest.test_case "band ordering" `Quick test_geometry_band_ordering;
          Alcotest.test_case "stacks to zero" `Quick test_geometry_stacks_to_zero;
        ] );
      ("geometry-properties", geometry_props);
      ( "ports",
        [
          Alcotest.test_case "placed once each" `Quick test_ports_placed_once_each;
          Alcotest.test_case "overflow spills" `Quick test_ports_overflow_spills;
          Alcotest.test_case "impossible pitch" `Quick test_ports_impossible_pitch;
          Alcotest.test_case "section 5 criterion" `Quick
            test_ports_section5_criterion;
          Alcotest.test_case "to rects" `Quick test_ports_to_rects;
        ] );
      ( "wiring",
        [
          Alcotest.test_case "structure" `Quick test_wiring_structure;
          Alcotest.test_case "vias on own trunk" `Quick
            test_wiring_vias_on_own_trunk;
          Alcotest.test_case "rejects over-cell" `Quick
            test_wiring_rejects_over_cell;
          Alcotest.test_case "lvs clean on flows" `Slow test_lvs_clean_on_flows;
          Alcotest.test_case "detects opens" `Quick test_extract_detects_open;
          Alcotest.test_case "detects shorts" `Quick test_extract_detects_short;
          Alcotest.test_case "wirelength vs hpwl" `Quick
            test_extracted_wirelength_exceeds_hpwl;
          Alcotest.test_case "single row" `Quick test_wiring_single_row;
        ] );
    ]
