module S = Mae_test_support.Support
open Mae_report

let test_table_render () =
  let t =
    Table.create ~columns:[ ("name", Table.Left); ("value", Table.Right) ]
  in
  Table.add_row t [ "alpha"; "1" ];
  Table.add_separator t;
  Table.add_row t [ "b"; "22222" ];
  let rendered = Table.render t in
  let lines = String.split_on_char '\n' rendered in
  (* rule, header, rule, row, rule (separator), row, rule *)
  Alcotest.(check int) "line count" 7 (List.length lines);
  (* all lines same width *)
  let widths = List.map String.length lines in
  Alcotest.(check int) "uniform width" 1
    (List.length (List.sort_uniq Int.compare widths));
  Alcotest.(check bool) "right aligned" true
    (let contains s sub =
       let n = String.length sub in
       let rec go i =
         i + n <= String.length s && (String.sub s i n = sub || go (i + 1))
       in
       go 0
     in
     contains rendered "|     1 |")

let test_table_validation () =
  S.raises_invalid (fun () -> ignore (Table.create ~columns:[]));
  let t = Table.create ~columns:[ ("a", Table.Left) ] in
  S.raises_invalid (fun () -> Table.add_row t [ "x"; "y" ])

let test_err_percent () =
  S.check_float "overestimate" 50. (Err.percent ~estimated:3. ~real:2.);
  S.check_float "underestimate" (-25.) (Err.percent ~estimated:3. ~real:4.);
  Alcotest.(check string) "formatted" "+50.0%"
    (Err.percent_string ~estimated:3. ~real:2.);
  Alcotest.(check string) "negative" "-25.0%"
    (Err.percent_string ~estimated:3. ~real:4.);
  S.raises_invalid (fun () -> ignore (Err.percent ~estimated:1. ~real:0.))

let test_err_formats () =
  Alcotest.(check string) "f0" "1235" (Err.f0 1234.6);
  Alcotest.(check string) "f2" "1.23" (Err.f2 1.234);
  Alcotest.(check string) "aspect wide" "1:2.00" (Err.aspect_string 2.);
  Alcotest.(check string) "aspect tall" "2.00:1" (Err.aspect_string 0.5)

let count_substring s sub =
  let n = String.length sub in
  let rec go i acc =
    if i + n > String.length s then acc
    else if String.sub s i n = sub then go (i + 1) (acc + 1)
    else go (i + 1) acc
  in
  go 0 0

let test_svg_render () =
  let items =
    [
      { Svg.rect = (0., 0., 10., 10.); style = Svg.cell_style; label = Some "a" };
      { Svg.rect = (10., 0., 5., 5.); style = Svg.feed_style; label = None };
    ]
  in
  let doc = Svg.render ~pixel_width:100 ~width:20. ~height:10. items in
  Alcotest.(check bool) "has xmlns" true
    (count_substring doc "http://www.w3.org/2000/svg" = 1);
  (* background + 2 items *)
  Alcotest.(check int) "rect count" 3 (count_substring doc "<rect ");
  Alcotest.(check bool) "closed" true (count_substring doc "</svg>" = 1)

let test_svg_label_escaping () =
  let items =
    [ { Svg.rect = (0., 0., 100., 100.); style = Svg.cell_style;
        label = Some "a<b&c" } ]
  in
  let doc = Svg.render ~width:100. ~height:100. items in
  Alcotest.(check bool) "escaped" true
    (count_substring doc "a&lt;b&amp;c" = 1);
  Alcotest.(check int) "no raw <b" 0 (count_substring doc "<b&")

let test_svg_flips_y () =
  (* a box at the layout bottom must appear at the SVG bottom (large y) *)
  let items =
    [ { Svg.rect = (0., 0., 10., 10.); style = Svg.cell_style; label = None } ]
  in
  let doc = Svg.render ~pixel_width:100 ~width:10. ~height:100. items in
  Alcotest.(check bool) "y flipped" true
    (count_substring doc "y=\"900.00\"" = 1)

let test_svg_validation () =
  S.raises_invalid (fun () -> ignore (Svg.render ~width:0. ~height:1. []));
  S.raises_invalid (fun () ->
      ignore (Svg.render ~pixel_width:0 ~width:1. ~height:1. []))

let test_svg_write () =
  let path = Filename.temp_file "mae_svg" ".svg" in
  begin
    match Svg.write ~path "<svg/>" with
    | Ok () -> ()
    | Error e -> Alcotest.failf "write failed: %s" e
  end;
  Alcotest.(check string) "round trip" "<svg/>"
    (In_channel.with_open_text path In_channel.input_all);
  Sys.remove path;
  Alcotest.(check bool) "io error" true
    (Result.is_error (Svg.write ~path:"/nonexistent/x/y.svg" "<svg/>"))

let () =
  Alcotest.run "report"
    [
      ( "table",
        [
          Alcotest.test_case "render" `Quick test_table_render;
          Alcotest.test_case "validation" `Quick test_table_validation;
        ] );
      ( "err",
        [
          Alcotest.test_case "percent" `Quick test_err_percent;
          Alcotest.test_case "formats" `Quick test_err_formats;
        ] );
      ( "svg",
        [
          Alcotest.test_case "render" `Quick test_svg_render;
          Alcotest.test_case "escaping" `Quick test_svg_label_escaping;
          Alcotest.test_case "flips y" `Quick test_svg_flips_y;
          Alcotest.test_case "validation" `Quick test_svg_validation;
          Alcotest.test_case "write" `Quick test_svg_write;
        ] );
    ]
