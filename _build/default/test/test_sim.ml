module S = Mae_test_support.Support
module Sim = Mae_sim.Simulator
module G = Mae_workload.Generators

let check_ok = function
  | Ok v -> v
  | Error e -> Alcotest.failf "sim error: %s" (Format.asprintf "%a" Sim.pp_error e)

(* Logic table *)

let test_logic_table () =
  let ev kind inputs = Result.get_ok (Mae_sim.Logic.eval ~kind ~inputs) in
  Alcotest.(check bool) "inv" false (ev "inv" [ true ]);
  Alcotest.(check bool) "buf" true (ev "buf" [ true ]);
  Alcotest.(check bool) "nand2" false (ev "nand2" [ true; true ]);
  Alcotest.(check bool) "nand2'" true (ev "nand2" [ true; false ]);
  Alcotest.(check bool) "nor3" true (ev "nor3" [ false; false; false ]);
  Alcotest.(check bool) "xor2" true (ev "xor2" [ true; false ]);
  Alcotest.(check bool) "aoi22" false (ev "aoi22" [ true; true; false; false ]);
  Alcotest.(check bool) "mux2 selects b when s" true
    (ev "mux2" [ false; true; true ]);
  Alcotest.(check bool) "mux2 selects a otherwise" false
    (ev "mux2" [ false; true; false ]);
  Alcotest.(check bool) "dff unsupported" true
    (Result.is_error (Mae_sim.Logic.eval ~kind:"dff" ~inputs:[ true; true ]));
  Alcotest.(check bool) "arity mismatch" true
    (Result.is_error (Mae_sim.Logic.eval ~kind:"inv" ~inputs:[ true; false ]))

(* Full adder truth table *)

let test_full_adder_truth_table () =
  let c = G.full_adder () in
  for v = 0 to 7 do
    let a = v land 1 = 1 and b = v land 2 = 2 and cin = v land 4 = 4 in
    let outputs =
      check_ok (Sim.eval c ~inputs:[ ("a", a); ("b", b); ("cin", cin) ])
    in
    let s = List.assoc "s" outputs and cout = List.assoc "cout" outputs in
    let total = Bool.to_int a + Bool.to_int b + Bool.to_int cin in
    Alcotest.(check bool) "sum" (total land 1 = 1) s;
    Alcotest.(check bool) "carry" (total >= 2) cout
  done

(* Ripple adder adds *)

let test_ripple_adder_adds () =
  let bits = 4 in
  let c = G.ripple_adder bits in
  for a = 0 to 15 do
    for b = 0 to 15 do
      let inputs =
        Sim.bits ~prefix:"a" ~width:bits a
        @ Sim.bits ~prefix:"b" ~width:bits b
        @ [ ("cin", false) ]
      in
      let outputs = check_ok (Sim.eval c ~inputs) in
      let sum = ref 0 in
      List.iter
        (fun (name, v) ->
          if v then
            match name with
            | "cout" -> sum := !sum lor (1 lsl bits)
            | _ -> begin
                match
                  int_of_string_opt (String.sub name 1 (String.length name - 1))
                with
                | Some k when name.[0] = 's' -> sum := !sum lor (1 lsl k)
                | Some _ | None -> ()
              end)
        outputs;
      Alcotest.(check int) (Printf.sprintf "%d+%d" a b) (a + b) !sum
    done
  done

(* The multiplier multiplies *)

let test_multiplier_multiplies () =
  List.iter
    (fun bits ->
      let c = G.multiplier bits in
      let top = (1 lsl bits) - 1 in
      for a = 0 to top do
        for b = 0 to top do
          let inputs =
            Sim.bits ~prefix:"a" ~width:bits a @ Sim.bits ~prefix:"b" ~width:bits b
          in
          let product = check_ok (Sim.eval_vector c ~inputs) in
          Alcotest.(check int) (Printf.sprintf "%dx%d" a b) (a * b) product
        done
      done)
    [ 2; 3; 4 ]

(* Decoder one-hot *)

let test_decoder_decodes () =
  let c = G.decoder 3 in
  for v = 0 to 7 do
    let inputs = Sim.bits ~prefix:"s" ~width:3 v in
    let outputs = check_ok (Sim.eval c ~inputs) in
    List.iter
      (fun (name, value) ->
        let k = int_of_string (String.sub name 1 (String.length name - 1)) in
        Alcotest.(check bool) (Printf.sprintf "y%d at %d" k v) (k = v) value)
      outputs
  done

(* Parity *)

let test_parity_computes () =
  let bits = 5 in
  let c = G.parity bits in
  for v = 0 to (1 lsl bits) - 1 do
    let inputs = Sim.bits ~prefix:"d" ~width:bits v in
    let outputs = check_ok (Sim.eval c ~inputs) in
    let expected =
      let rec popcount x = if x = 0 then 0 else (x land 1) + popcount (x lsr 1) in
      popcount v land 1 = 1
    in
    Alcotest.(check bool) (Printf.sprintf "parity %d" v) expected
      (List.assoc "p" outputs)
  done

(* Mux tree selects *)

let test_mux_tree_selects () =
  let sel_bits = 3 in
  let c = G.mux_tree sel_bits in
  let n = 1 lsl sel_bits in
  for sel = 0 to n - 1 do
    for data = 0 to 15 do
      (* a pseudo-random data pattern *)
      let pattern = (data * 37) land (n - 1) in
      let inputs =
        Sim.bits ~prefix:"d" ~width:n pattern
        @ Sim.bits ~prefix:"s" ~width:sel_bits sel
      in
      let outputs = check_ok (Sim.eval c ~inputs) in
      Alcotest.(check bool)
        (Printf.sprintf "sel=%d pattern=%d" sel pattern)
        ((pattern lsr sel) land 1 = 1)
        (List.assoc "y" outputs)
    done
  done

(* ALU functions *)

let test_alu_functions () =
  let bits = 4 in
  let c = G.alu bits in
  let mask = (1 lsl bits) - 1 in
  let eval_alu a b ~sub ~f1 ~f0 =
    let inputs =
      Sim.bits ~prefix:"a" ~width:bits a
      @ Sim.bits ~prefix:"b" ~width:bits b
      @ [ ("sub", sub); ("f0", f0); ("f1", f1) ]
    in
    let outputs = check_ok (Sim.eval c ~inputs) in
    List.fold_left
      (fun acc (name, v) ->
        if v && name.[0] = 'y' then
          acc lor (1 lsl int_of_string (String.sub name 1 (String.length name - 1)))
        else acc)
      0 outputs
  in
  List.iter
    (fun (a, b) ->
      Alcotest.(check int) "add" ((a + b) land mask)
        (eval_alu a b ~sub:false ~f1:false ~f0:false);
      Alcotest.(check int) "sub" ((a - b) land mask)
        (eval_alu a b ~sub:true ~f1:false ~f0:false);
      Alcotest.(check int) "and" (a land b)
        (eval_alu a b ~sub:false ~f1:false ~f0:true);
      Alcotest.(check int) "or" (a lor b)
        (eval_alu a b ~sub:false ~f1:true ~f0:false);
      Alcotest.(check int) "xor" (a lxor b)
        (eval_alu a b ~sub:false ~f1:true ~f0:true))
    [ (0, 0); (1, 1); (5, 3); (15, 1); (12, 10); (7, 7) ]

(* ISCAS-85 c17 against its reference equations *)

let test_c17_truth_table () =
  let c = G.c17 () in
  for v = 0 to 31 do
    let bit k = (v lsr k) land 1 = 1 in
    let i1 = bit 0 and i2 = bit 1 and i3 = bit 2 and i6 = bit 3 and i7 = bit 4 in
    let nand a b = not (a && b) in
    let n10 = nand i1 i3 and n11 = nand i3 i6 in
    let n16 = nand i2 n11 and n19 = nand n11 i7 in
    let expected22 = nand n10 n16 and expected23 = nand n16 n19 in
    let inputs =
      [ ("n1", i1); ("n2", i2); ("n3", i3); ("n6", i6); ("n7", i7) ]
    in
    match Sim.eval c ~inputs with
    | Error _ -> Alcotest.fail "c17 sim error"
    | Ok outputs ->
        Alcotest.(check bool) (Printf.sprintf "n22 @ %d" v) expected22
          (List.assoc "n22" outputs);
        Alcotest.(check bool) (Printf.sprintf "n23 @ %d" v) expected23
          (List.assoc "n23" outputs)
  done

(* Sequential circuits *)

let test_counter_counts () =
  let bits = 4 in
  let c = G.counter bits in
  let cycles = 20 in
  let stimuli = List.init cycles (fun _ -> [ ("en", true) ]) in
  match Sim.sequential c ~clock:"clk" ~stimuli with
  | Error e -> Alcotest.failf "sim error: %s" (Format.asprintf "%a" Sim.pp_error e)
  | Ok per_cycle ->
      List.iteri
        (fun cycle outputs ->
          let value =
            List.fold_left
              (fun acc (name, v) ->
                if v && name.[0] = 'q' then
                  acc
                  lor (1 lsl int_of_string (String.sub name 1 (String.length name - 1)))
                else acc)
              0 outputs
          in
          Alcotest.(check int)
            (Printf.sprintf "count after %d edges" (cycle + 1))
            ((cycle + 1) mod (1 lsl bits))
            value)
        per_cycle

let test_counter_holds_when_disabled () =
  let c = G.counter 4 in
  let stimuli =
    [ [ ("en", true) ]; [ ("en", true) ]; [ ("en", false) ]; [ ("en", false) ] ]
  in
  match Sim.sequential c ~clock:"clk" ~stimuli with
  | Error _ -> Alcotest.fail "sim error"
  | Ok per_cycle ->
      let value outputs =
        List.fold_left
          (fun acc (name, v) ->
            if v && name.[0] = 'q' then
              acc lor (1 lsl int_of_string (String.sub name 1 (String.length name - 1)))
            else acc)
          0 outputs
      in
      let vals = List.map value per_cycle in
      Alcotest.(check (list int)) "counts then holds" [ 1; 2; 2; 2 ] vals

let test_shift_register_shifts () =
  let stages = 3 in
  let c = G.shift_register stages in
  let pattern = [ true; false; true; true; false; false; true ] in
  let stimuli = List.map (fun d -> [ ("d", d) ]) pattern in
  match Sim.sequential c ~clock:"clk" ~stimuli with
  | Error _ -> Alcotest.fail "sim error"
  | Ok per_cycle ->
      List.iteri
        (fun cycle outputs ->
          (* q after cycle k reflects the input from k - stages + 1 *)
          let expected =
            if cycle >= stages - 1 then List.nth pattern (cycle - stages + 1)
            else false
          in
          Alcotest.(check bool)
            (Printf.sprintf "q at cycle %d" cycle)
            expected
            (List.assoc "q" outputs))
        per_cycle

let test_sequential_rejects_latch () =
  let b = Mae_netlist.Builder.create ~name:"l" ~technology:"nmos25" in
  ignore (Mae_netlist.Builder.add_device b ~name:"l1" ~kind:"latch" ~nets:[ "d"; "g"; "q" ]);
  let c = Mae_netlist.Builder.build b in
  match Sim.sequential c ~clock:"g" ~stimuli:[ [ ("d", true) ] ] with
  | Error (Sim.Unsupported_kind _) -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected Unsupported_kind"

(* Error paths *)

let test_sim_errors () =
  let b = Mae_netlist.Builder.create ~name:"seq" ~technology:"nmos25" in
  ignore (Mae_netlist.Builder.add_device b ~name:"f" ~kind:"dff" ~nets:[ "d"; "c"; "q" ]);
  Mae_netlist.Builder.add_port b ~name:"d" ~direction:Mae_netlist.Port.Input ~net:"d";
  let c = Mae_netlist.Builder.build b in
  begin
    match Sim.eval c ~inputs:[ ("d", true) ] with
    | Error (Sim.Unsupported_kind _) -> ()
    | Error _ | Ok _ -> Alcotest.fail "expected Unsupported_kind"
  end;
  (* missing input *)
  let fa = G.full_adder () in
  begin
    match Sim.eval fa ~inputs:[ ("a", true) ] with
    | Error (Sim.Missing_input _) -> ()
    | Error _ | Ok _ -> Alcotest.fail "expected Missing_input"
  end;
  (* combinational cycle *)
  let b = Mae_netlist.Builder.create ~name:"cyc" ~technology:"nmos25" in
  ignore (Mae_netlist.Builder.add_device b ~name:"i1" ~kind:"inv" ~nets:[ "x"; "y" ]);
  ignore (Mae_netlist.Builder.add_device b ~name:"i2" ~kind:"inv" ~nets:[ "y"; "x" ]);
  Mae_netlist.Builder.add_port b ~name:"x" ~direction:Mae_netlist.Port.Output ~net:"x";
  let c = Mae_netlist.Builder.build b in
  begin
    match Sim.eval c ~inputs:[] with
    | Error (Sim.Combinational_cycle _) -> ()
    | Error _ | Ok _ -> Alcotest.fail "expected cycle"
  end;
  (* undriven *)
  let b = Mae_netlist.Builder.create ~name:"und" ~technology:"nmos25" in
  ignore (Mae_netlist.Builder.add_device b ~name:"i1" ~kind:"inv" ~nets:[ "a"; "y" ]);
  Mae_netlist.Builder.add_port b ~name:"y" ~direction:Mae_netlist.Port.Output ~net:"y";
  let c = Mae_netlist.Builder.build b in
  match Sim.eval c ~inputs:[] with
  | Error (Sim.Undriven_net { net = "a" }) -> ()
  | Error _ | Ok _ -> Alcotest.fail "expected Undriven_net"

(* Properties *)

let props =
  let open QCheck2.Gen in
  [
    S.qtest ~count:60 "ripple adder correct for random widths"
      (triple (int_range 1 8) (int_range 0 255) (int_range 0 255))
      (fun (bits, a, b) ->
        let mask = (1 lsl bits) - 1 in
        let a = a land mask and b = b land mask in
        let c = G.ripple_adder bits in
        let inputs =
          Sim.bits ~prefix:"a" ~width:bits a
          @ Sim.bits ~prefix:"b" ~width:bits b
          @ [ ("cin", false) ]
        in
        match Sim.eval c ~inputs with
        | Error _ -> false
        | Ok outputs ->
            let s =
              List.fold_left
                (fun acc (name, v) ->
                  if not v then acc
                  else if name = "cout" then acc lor (1 lsl bits)
                  else
                    acc
                    lor (1 lsl int_of_string (String.sub name 1 (String.length name - 1))))
                0 outputs
            in
            s = a + b);
    S.qtest ~count:40 "multiplier correct for random operands"
      (triple (int_range 2 5) (int_range 0 31) (int_range 0 31))
      (fun (bits, a, b) ->
        let mask = (1 lsl bits) - 1 in
        let a = a land mask and b = b land mask in
        match Sim.eval_vector (G.multiplier bits)
                ~inputs:(Sim.bits ~prefix:"a" ~width:bits a
                        @ Sim.bits ~prefix:"b" ~width:bits b)
        with
        | Ok p -> p = a * b
        | Error _ -> false);
  ]

let () =
  Alcotest.run "sim"
    [
      ("logic", [ Alcotest.test_case "table" `Quick test_logic_table ]);
      ( "circuits",
        [
          Alcotest.test_case "full adder" `Quick test_full_adder_truth_table;
          Alcotest.test_case "ripple adder" `Quick test_ripple_adder_adds;
          Alcotest.test_case "multiplier" `Slow test_multiplier_multiplies;
          Alcotest.test_case "decoder" `Quick test_decoder_decodes;
          Alcotest.test_case "parity" `Quick test_parity_computes;
          Alcotest.test_case "mux tree" `Quick test_mux_tree_selects;
          Alcotest.test_case "alu" `Quick test_alu_functions;
          Alcotest.test_case "iscas c17" `Quick test_c17_truth_table;
        ] );
      ( "sequential",
        [
          Alcotest.test_case "counter counts" `Quick test_counter_counts;
          Alcotest.test_case "counter holds" `Quick test_counter_holds_when_disabled;
          Alcotest.test_case "shift register" `Quick test_shift_register_shifts;
          Alcotest.test_case "rejects latch" `Quick test_sequential_rejects_latch;
        ] );
      ("errors", [ Alcotest.test_case "paths" `Quick test_sim_errors ]);
      ("properties", props);
    ]
