open Mae_tech
module S = Mae_test_support.Support

let test_device_kind () =
  let k = Device_kind.make ~name:"nenh"
      ~category:(Device_kind.Transistor Device_kind.Nmos_enhancement)
      ~width:4. ~height:10. in
  S.check_float "area" 40. (Device_kind.area k);
  Alcotest.(check bool) "is transistor" true (Device_kind.is_transistor k);
  let g = Device_kind.make ~name:"inv" ~category:Device_kind.Logic_gate
      ~width:8. ~height:40. in
  Alcotest.(check bool) "gate not transistor" false (Device_kind.is_transistor g);
  S.raises_invalid (fun () ->
      Device_kind.make ~name:"" ~category:Device_kind.Logic_gate ~width:1. ~height:1.);
  S.raises_invalid (fun () ->
      Device_kind.make ~name:"x" ~category:Device_kind.Logic_gate ~width:0. ~height:1.)

let test_category_strings () =
  let cats =
    [ Device_kind.Transistor Device_kind.Nmos_enhancement;
      Device_kind.Transistor Device_kind.Nmos_depletion;
      Device_kind.Transistor Device_kind.Pmos;
      Device_kind.Logic_gate; Device_kind.Storage; Device_kind.Pad;
      Device_kind.Feed_through ]
  in
  List.iter
    (fun c ->
      match Device_kind.category_of_string (Device_kind.category_to_string c) with
      | Some c' -> Alcotest.(check bool) "round trip" true (c = c')
      | None -> Alcotest.fail "category did not round-trip")
    cats;
  Alcotest.(check bool) "unknown" true
    (Device_kind.category_of_string "bogus" = None)

let test_process_validation () =
  S.raises_invalid (fun () ->
      Process.make ~name:"p" ~lambda_microns:0. ~row_height:1. ~track_pitch:1.
        ~feed_through_width:1. ~port_pitch:1. ~min_spacing:1. ~devices:[]);
  let dup = Device_kind.make ~name:"a" ~category:Device_kind.Logic_gate ~width:1. ~height:1. in
  S.raises_invalid (fun () ->
      Process.make ~name:"p" ~lambda_microns:1. ~row_height:1. ~track_pitch:1.
        ~feed_through_width:1. ~port_pitch:1. ~min_spacing:1.
        ~devices:[ dup; dup ])

let test_process_lookup () =
  let p = S.nmos in
  Alcotest.(check bool) "nenh exists" true (Process.find_device p "nenh" <> None);
  Alcotest.(check bool) "missing" true (Process.find_device p "zzz" = None);
  S.check_float "inv area" (8. *. 40.)
    (Option.get (Process.device_area p "inv"));
  Alcotest.check_raises "find_device_exn" Not_found (fun () ->
      ignore (Process.find_device_exn p "zzz"))

let test_builtin_consistency () =
  List.iter
    (fun (p : Process.t) ->
      Alcotest.(check bool) (p.name ^ " has inv") true
        (Process.find_device p "inv" <> None);
      Alcotest.(check bool) (p.name ^ " has dff") true
        (Process.find_device p "dff" <> None);
      Alcotest.(check bool) (p.name ^ " has a feed cell") true
        (List.exists
           (fun (d : Device_kind.t) -> d.category = Device_kind.Feed_through)
           p.devices);
      (* every gate fits the row height *)
      List.iter
        (fun (d : Device_kind.t) ->
          match d.category with
          | Device_kind.Logic_gate | Device_kind.Storage ->
              S.check_float (p.name ^ "/" ^ d.name ^ " height") p.row_height
                d.height
          | Device_kind.Transistor _ | Device_kind.Pad
          | Device_kind.Feed_through -> ())
        p.devices)
    Builtin.all

let test_builtin_find () =
  Alcotest.(check bool) "nmos25" true (Builtin.find "nmos25" <> None);
  Alcotest.(check bool) "unknown" true (Builtin.find "tsmc7" = None)

let test_parser_roundtrip () =
  List.iter
    (fun (p : Process.t) ->
      match Tech_parser.parse_string (Tech_parser.to_string p) with
      | Error e -> Alcotest.failf "%s failed: %s" p.name e.message
      | Ok [ p' ] ->
          Alcotest.(check string) "name" p.name p'.Process.name;
          S.check_float "lambda" p.lambda_microns p'.lambda_microns;
          S.check_float "row" p.row_height p'.row_height;
          Alcotest.(check int) "devices" (List.length p.devices)
            (List.length p'.devices)
      | Ok _ -> Alcotest.fail "expected exactly one process")
    Builtin.all

let test_parser_errors () =
  let expect_error text =
    match Tech_parser.parse_string text with
    | Error _ -> ()
    | Ok _ -> Alcotest.failf "expected parse error for %S" text
  in
  expect_error "lambda 2.5\n";
  expect_error "process p\nlambda 2.5\n";  (* unterminated *)
  expect_error "process p\nprocess q\nend\n";
  expect_error "process p\nlambda zero\nend\n";
  expect_error "process p\nlambda -1\nend\n";
  expect_error "process p\ndevice a bogus 1 1\nend\n";
  expect_error "process p\nwhatever 3\nend\n";
  expect_error "process p\nend\n" (* missing fields *)

let test_parser_comments_and_multi () =
  let text =
    "# two processes\nprocess a\nlambda 1\nrow-height 10\ntrack-pitch 2\n\
     feed-width 2\nport-pitch 2\nmin-spacing 1\ndevice inv gate 4 10\nend\n\
     \nprocess b # trailing comment\nlambda 2\nrow-height 20\ntrack-pitch 4\n\
     feed-width 4\nport-pitch 4\nmin-spacing 2\nend\n"
  in
  match Tech_parser.parse_string text with
  | Error e -> Alcotest.failf "parse failed: line %d: %s" e.line e.message
  | Ok ps ->
      Alcotest.(check int) "two processes" 2 (List.length ps)

let test_registry () =
  let r = Registry.create () in
  Alcotest.(check bool) "builtin present" true (Registry.find r "nmos25" <> None);
  let empty = Registry.create ~builtins:false () in
  Alcotest.(check (list string)) "empty" [] (Registry.names empty);
  begin
    match Registry.load_string empty (Tech_parser.to_string S.nmos) with
    | Ok 1 -> ()
    | Ok n -> Alcotest.failf "loaded %d" n
    | Error e -> Alcotest.failf "load failed: %s" e.Tech_parser.message
  end;
  Alcotest.(check (list string)) "loaded" [ "nmos25" ] (Registry.names empty);
  Alcotest.check_raises "find_exn" Not_found (fun () ->
      ignore (Registry.find_exn empty "zzz"))

let fuzz_props =
  let open QCheck2.Gen in
  let junk = string_size ~gen:(char_range ' ' '~') (int_range 0 200) in
  let soup =
    map (String.concat "\n")
      (list_size (int_range 0 20)
         (oneofl
            [ "process p"; "lambda 2.5"; "lambda x"; "row-height 40"; "end";
              "device a gate 1 1"; "device a bogus 1 1"; "track-pitch -1";
              "# comment"; ""; "feed-width 7"; "port-pitch 8";
              "min-spacing 3" ]))
  in
  [
    Mae_test_support.Support.qtest ~count:300 "tech parser total on junk" junk
      (fun text ->
        match Tech_parser.parse_string text with Ok _ | Error _ -> true);
    Mae_test_support.Support.qtest ~count:300 "tech parser total on soup" soup
      (fun text ->
        match Tech_parser.parse_string text with Ok _ | Error _ -> true);
  ]

let () =
  Alcotest.run "tech"
    [
      ( "device_kind",
        [
          Alcotest.test_case "make/area" `Quick test_device_kind;
          Alcotest.test_case "category strings" `Quick test_category_strings;
        ] );
      ( "process",
        [
          Alcotest.test_case "validation" `Quick test_process_validation;
          Alcotest.test_case "lookup" `Quick test_process_lookup;
        ] );
      ( "builtin",
        [
          Alcotest.test_case "consistency" `Quick test_builtin_consistency;
          Alcotest.test_case "find" `Quick test_builtin_find;
        ] );
      ( "parser",
        [
          Alcotest.test_case "round trip" `Quick test_parser_roundtrip;
          Alcotest.test_case "errors" `Quick test_parser_errors;
          Alcotest.test_case "comments/multi" `Quick test_parser_comments_and_multi;
        ] );
      ("registry", [ Alcotest.test_case "basics" `Quick test_registry ]);
      ("fuzz", fuzz_props);
    ]
