open Mae_workload
module S = Mae_test_support.Support
module Circuit = Mae_netlist.Circuit

(* Generators *)

let test_full_adder () =
  let c = Generators.full_adder () in
  Alcotest.(check int) "devices" 5 (Circuit.device_count c);
  Alcotest.(check int) "ports" 5 (Circuit.port_count c);
  let issues = Mae_netlist.Validate.check c S.nmos in
  Alcotest.(check bool) "no errors" true
    (not (List.exists Mae_netlist.Validate.is_error issues))

let test_ripple_adder () =
  let c = Generators.ripple_adder 4 in
  Alcotest.(check int) "5 cells per bit" 20 (Circuit.device_count c);
  Alcotest.(check int) "ports" (1 + 12 + 1) (Circuit.port_count c);
  S.raises_invalid (fun () -> ignore (Generators.ripple_adder 0))

let test_counter_size () =
  List.iter
    (fun bits ->
      let c = Generators.counter bits in
      (* buf + bits*(xor2+dff) + (bits-1)*(nand2+inv) *)
      Alcotest.(check int)
        (Printf.sprintf "counter%d" bits)
        (1 + (2 * bits) + (2 * (bits - 1)))
        (Circuit.device_count c);
      Alcotest.(check int) "ports" (2 + bits) (Circuit.port_count c))
    [ 1; 4; 8; 16 ]

let test_decoder () =
  let c = Generators.decoder 3 in
  (* 3 inv + 8 * (nand3 + inv) *)
  Alcotest.(check int) "devices" 19 (Circuit.device_count c);
  Alcotest.(check int) "outputs + selects" 11 (Circuit.port_count c);
  S.raises_invalid (fun () -> ignore (Generators.decoder 5))

let test_parity () =
  List.iter
    (fun bits ->
      let c = Generators.parity bits in
      (* an XOR tree over n inputs has n-1 gates, possibly plus one buffer *)
      let n = Circuit.device_count c in
      Alcotest.(check bool)
        (Printf.sprintf "parity%d size" bits)
        true
        (n = bits - 1 || n = bits);
      Alcotest.(check int) "ports" (bits + 1) (Circuit.port_count c))
    [ 2; 3; 4; 7; 8 ]

let test_mux_tree () =
  let c = Generators.mux_tree 3 in
  (* a full 8:1 tree has 7 mux2 cells *)
  Alcotest.(check bool) "7 or 8 devices" true
    (Circuit.device_count c = 7 || Circuit.device_count c = 8);
  Alcotest.(check int) "ports" 12 (Circuit.port_count c)

let test_alu () =
  let c = Generators.alu 4 in
  Alcotest.(check int) "14 cells per bit" 56 (Circuit.device_count c);
  Alcotest.(check int) "ports" (8 + 3 + 5) (Circuit.port_count c);
  let issues = Mae_netlist.Validate.check c S.nmos in
  Alcotest.(check bool) "no errors" true
    (not (List.exists Mae_netlist.Validate.is_error issues))

let test_shift_register () =
  let c = Generators.shift_register 5 in
  Alcotest.(check int) "5 dffs" 5 (Circuit.device_count c)

let test_pass_chain_footnote_property () =
  (* the Table 1 footnote case: every net has at most two components *)
  let c = Generators.pass_chain 8 in
  Alcotest.(check int) "8 transistors" 8 (Circuit.device_count c);
  for n = 0 to Circuit.net_count c - 1 do
    Alcotest.(check bool) "degree <= 2" true (Circuit.degree c n <= 2)
  done

let test_inverter_chain () =
  let c = Generators.inverter_chain 6 in
  Alcotest.(check int) "12 transistors" 12 (Circuit.device_count c);
  (* internal nets have three components: load, pull-down, next gate *)
  let n3 = Option.get (Circuit.find_net c "n3") in
  Alcotest.(check int) "internal degree 3" 3
    (Circuit.degree c n3.Mae_netlist.Net.index)

let test_multiplier_structure () =
  let c = Generators.multiplier 4 in
  Alcotest.(check int) "ports" (8 + 8) (Circuit.port_count c);
  (* AND array: 2 cells per partial product *)
  Alcotest.(check bool) "at least the AND array" true
    (Circuit.device_count c > 2 * 16);
  let issues = Mae_netlist.Validate.check c S.nmos in
  Alcotest.(check bool) "no errors" true
    (not (List.exists Mae_netlist.Validate.is_error issues));
  S.raises_invalid (fun () -> ignore (Generators.multiplier 1))

(* Random circuits *)

let test_random_validate () =
  let p = Random_circuit.default_params in
  Alcotest.(check bool) "default ok" true (Result.is_ok (Random_circuit.validate p));
  Alcotest.(check bool) "bad devices" true
    (Result.is_error (Random_circuit.validate { p with devices = 0 }));
  Alcotest.(check bool) "unknown kind" true
    (Result.is_error
       (Random_circuit.validate { p with kind_weights = [ ("warp", 1) ] }));
  Alcotest.(check bool) "zero weights" true
    (Result.is_error
       (Random_circuit.validate { p with kind_weights = [ ("inv", 0) ] }))

let test_random_deterministic () =
  let p = Random_circuit.default_params in
  let a = Random_circuit.generate ~rng:(S.rng 5) p in
  let b = Random_circuit.generate ~rng:(S.rng 5) p in
  Alcotest.(check int) "same size" (Circuit.device_count a) (Circuit.device_count b);
  let na = Array.map (fun (d : Mae_netlist.Device.t) -> d.kind) a.Circuit.devices in
  let nb = Array.map (fun (d : Mae_netlist.Device.t) -> d.kind) b.Circuit.devices in
  Alcotest.(check bool) "same kinds" true (na = nb)

let test_random_structure () =
  let p = { Random_circuit.default_params with devices = 40 } in
  let c = Random_circuit.generate ~rng:(S.rng 6) p in
  Alcotest.(check int) "devices" 40 (Circuit.device_count c);
  Alcotest.(check int) "ports" (8 + 8) (Circuit.port_count c);
  (* every device has arity+1 pins *)
  Array.iter
    (fun (d : Mae_netlist.Device.t) ->
      Alcotest.(check int) ("pins of " ^ d.kind)
        (Random_circuit.input_arity d.kind + 1)
        (Array.length d.pins))
    c.Circuit.devices;
  (* estimable without surprises *)
  let stats = Mae_netlist.Stats.compute c S.nmos in
  Alcotest.(check int) "stats N" 40 stats.Mae_netlist.Stats.device_count

let test_weighted_pick_respects_weights () =
  let rng = S.rng 9 in
  let counts = Hashtbl.create 4 in
  for _ = 1 to 10_000 do
    let k = Random_circuit.weighted_pick rng [ ("a", 3); ("b", 1) ] in
    Hashtbl.replace counts k (1 + Option.value ~default:0 (Hashtbl.find_opt counts k))
  done;
  let a = Float.of_int (Hashtbl.find counts "a") in
  let b = Float.of_int (Hashtbl.find counts "b") in
  S.check_close ~rel:0.1 "3:1 ratio" 3. (a /. b)

(* Rent *)

let test_rent_terminals () =
  let p = { Rent.default_params with cluster_size = 16; rent_t = 2.; rent_p = 0.5 } in
  (* 2 * 16^0.5 = 8 *)
  Alcotest.(check int) "T = t*g^p" 8 (Rent.external_terminals p);
  Alcotest.(check bool) "validation" true
    (Result.is_error (Rent.validate { p with rent_p = 1.5 }))

let test_rent_generate () =
  let p = { Rent.default_params with clusters = 3; cluster_size = 15 } in
  let c = Rent.generate ~rng:(S.rng 12) p in
  Alcotest.(check int) "total devices" 45 (Circuit.device_count c);
  Alcotest.(check bool) "has ports" true (Circuit.port_count c > 0);
  let issues = Mae_netlist.Validate.check c S.nmos in
  Alcotest.(check bool) "no errors" true
    (not (List.exists Mae_netlist.Validate.is_error issues))

let test_rent_modules () =
  let p = { Rent.default_params with clusters = 4; cluster_size = 12 } in
  let modules = Rent.generate_modules ~rng:(S.rng 13) p in
  Alcotest.(check int) "four modules" 4 (List.length modules);
  let names = List.map (fun (c : Circuit.t) -> c.name) modules in
  Alcotest.(check int) "distinct names" 4
    (List.length (List.sort_uniq String.compare names));
  List.iter
    (fun c -> Alcotest.(check int) "module size" 12 (Circuit.device_count c))
    modules

(* Mutate *)

let test_mutate_duplicate () =
  let c = S.full_adder in
  let d = Mae_workload.Mutate.duplicate c in
  Alcotest.(check int) "double devices"
    (2 * Circuit.device_count c)
    (Circuit.device_count d);
  Alcotest.(check int) "ports unchanged" (Circuit.port_count c) (Circuit.port_count d)

let test_mutate_drop () =
  let c = S.full_adder in
  let d = Mae_workload.Mutate.drop_device ~index:0 c in
  Alcotest.(check int) "one fewer" (Circuit.device_count c - 1) (Circuit.device_count d);
  S.raises_invalid (fun () -> ignore (Mae_workload.Mutate.drop_device ~index:99 c))

let test_mutate_widen () =
  let c = S.full_adder in
  let p = Option.get (Circuit.find_net c "fa_p") in
  let before = Circuit.degree c p.Mae_netlist.Net.index in
  let d = Mae_workload.Mutate.widen_net ~net:"fa_p" ~extra:3 ~kind:"inv" c in
  let p' = Option.get (Circuit.find_net d "fa_p") in
  Alcotest.(check int) "degree grows" (before + 3)
    (Circuit.degree d p'.Mae_netlist.Net.index);
  Alcotest.check_raises "missing net" Not_found (fun () ->
      ignore (Mae_workload.Mutate.widen_net ~net:"zzz" ~extra:1 ~kind:"inv" c))

let test_mutate_add_device () =
  let c = S.full_adder in
  let d = Mae_workload.Mutate.add_device ~kind:"inv" ~nets:[ "s"; "snew" ] c in
  Alcotest.(check int) "one more" (Circuit.device_count c + 1) (Circuit.device_count d);
  Alcotest.(check bool) "new net" true (Circuit.find_net d "snew" <> None)

(* Bench circuits *)

let test_bench_suites () =
  let t1 = Bench_circuits.table1 () in
  Alcotest.(check int) "five table 1 circuits" 5 (List.length t1);
  let t2 = Bench_circuits.table2 () in
  Alcotest.(check int) "two table 2 circuits" 2 (List.length t2);
  (* all table 1 entries are transistor-level in the nmos process *)
  List.iter
    (fun (e : Bench_circuits.entry) ->
      Array.iter
        (fun (d : Mae_netlist.Device.t) ->
          let kind = Mae_tech.Process.find_device_exn S.nmos d.kind in
          Alcotest.(check bool)
            (e.name ^ " transistor level") true
            (Mae_tech.Device_kind.is_transistor kind))
        e.circuit.Circuit.devices)
    t1;
  Alcotest.(check bool) "find" true (Bench_circuits.find "alu4" <> None);
  Alcotest.(check bool) "find missing" true (Bench_circuits.find "zzz" = None)

(* Properties *)

let props =
  let open QCheck2.Gen in
  [
    S.qtest "counter device count formula" (int_range 1 24) (fun bits ->
        Circuit.device_count (Generators.counter bits)
        = 1 + (2 * bits) + (2 * (bits - 1)));
    S.qtest "pass chain nets never exceed two components" (int_range 1 30)
      (fun stages ->
        let c = Generators.pass_chain stages in
        let ok = ref true in
        for n = 0 to Circuit.net_count c - 1 do
          if Circuit.degree c n > 2 then ok := false
        done;
        !ok);
    S.qtest "random circuits validate cleanly" (pair int (int_range 1 60))
      (fun (seed, devices) ->
        let p =
          {
            Random_circuit.default_params with
            devices;
            primary_outputs = Stdlib.min 8 devices;
          }
        in
        let c = Random_circuit.generate ~rng:(S.rng seed) p in
        not
          (List.exists Mae_netlist.Validate.is_error
             (Mae_netlist.Validate.check c S.nmos)));
    S.qtest "duplicate doubles device area" (int_range 1 16) (fun bits ->
        let c = Generators.counter bits in
        let a = (Mae_netlist.Stats.compute c S.nmos).Mae_netlist.Stats.total_device_area in
        let d = Mae_workload.Mutate.duplicate c in
        let a2 = (Mae_netlist.Stats.compute d S.nmos).Mae_netlist.Stats.total_device_area in
        S.approx ~eps:1e-9 (2. *. a) a2);
  ]

let () =
  Alcotest.run "workload"
    [
      ( "generators",
        [
          Alcotest.test_case "full adder" `Quick test_full_adder;
          Alcotest.test_case "ripple adder" `Quick test_ripple_adder;
          Alcotest.test_case "counter" `Quick test_counter_size;
          Alcotest.test_case "decoder" `Quick test_decoder;
          Alcotest.test_case "parity" `Quick test_parity;
          Alcotest.test_case "mux tree" `Quick test_mux_tree;
          Alcotest.test_case "alu" `Quick test_alu;
          Alcotest.test_case "shift register" `Quick test_shift_register;
          Alcotest.test_case "pass chain" `Quick test_pass_chain_footnote_property;
          Alcotest.test_case "inverter chain" `Quick test_inverter_chain;
          Alcotest.test_case "multiplier" `Quick test_multiplier_structure;
        ] );
      ( "random",
        [
          Alcotest.test_case "validate" `Quick test_random_validate;
          Alcotest.test_case "deterministic" `Quick test_random_deterministic;
          Alcotest.test_case "structure" `Quick test_random_structure;
          Alcotest.test_case "weighted pick" `Quick test_weighted_pick_respects_weights;
        ] );
      ( "rent",
        [
          Alcotest.test_case "terminals" `Quick test_rent_terminals;
          Alcotest.test_case "generate" `Quick test_rent_generate;
          Alcotest.test_case "modules" `Quick test_rent_modules;
        ] );
      ( "mutate",
        [
          Alcotest.test_case "duplicate" `Quick test_mutate_duplicate;
          Alcotest.test_case "drop" `Quick test_mutate_drop;
          Alcotest.test_case "widen" `Quick test_mutate_widen;
          Alcotest.test_case "add device" `Quick test_mutate_add_device;
        ] );
      ("bench", [ Alcotest.test_case "suites" `Quick test_bench_suites ]);
      ("properties", props);
    ]
