(* Perf regression gate: re-measure the engine's cached throughput and
   compare it against the most recent BENCH_history.jsonl entry from
   the same host profile.  A drop of more than 20% in [seq_cached] or
   in the best parallel run fails the build; so does a p99 GC pause
   that regressed more than 50% against the same entry.  An empty
   history, or one whose entries all come from other host profiles
   (recommended domain count), skips the gate with a logged reason --
   numbers from another machine prove nothing about this one.

   Noise control on shared/virtualized runners: each configuration is
   measured several times in this one process and the best pass is
   compared, since the gate hunts regressions (code that got slower),
   not slow machines (a loaded host only ever makes us *pass* slower
   runs, never fail fast ones). *)

module Json = Mae_obs.Json

let threshold = 0.80
let passes = 3

(* GC gate: fail when the measured p99 pause exceeds the baseline by
   more than 50%, with a small absolute slack so microsecond-scale
   baselines do not flap on scheduler noise. *)
let gc_threshold = 1.5
let gc_slack_s = 5e-5

(* same shape mix as bench/main.ml's engine workload, so the gate's
   modules/s is comparable with the history the bench appends *)
let workload ~modules =
  let flat g = Mae_workload.Bench_circuits.flatten g in
  let shapes =
    [|
      flat (Mae_workload.Generators.multiplier 6);
      flat (Mae_workload.Generators.multiplier 7);
      flat (Mae_workload.Generators.multiplier 8);
      flat (Mae_workload.Generators.alu 8);
      flat (Mae_workload.Generators.counter 16);
      flat (Mae_workload.Generators.ripple_adder 16);
      Mae_workload.Generators.inverter_chain 200;
      Mae_workload.Generators.pass_chain 300;
    |]
  in
  List.init modules (fun i -> shapes.(i mod Array.length shapes))

let skip reason =
  Printf.printf "bench-gate: skipped (%s)\n" reason;
  exit 0

let read_lines path =
  match open_in path with
  | exception Sys_error _ -> []
  | ic ->
      let rec go acc =
        match input_line ic with
        | line -> go (line :: acc)
        | exception End_of_file ->
            close_in ic;
            List.rev acc
      in
      go []

(* all parseable bench_engine entries, oldest first *)
let engine_entries lines =
  List.filter_map
    (fun line ->
      match Json.parse line with
      | Error _ -> None
      | Ok doc -> (
          match Json.member "source" doc with
          | Some (Json.String "bench_engine") -> Some doc
          | _ -> None))
    lines

let number_member name doc =
  Option.bind (Json.member name doc) Json.to_number

let run_of_json doc =
  match
    ( Option.bind (Json.member "label" doc) Json.to_string,
      number_member "jobs" doc,
      number_member "modules_per_s" doc )
  with
  | Some label, Some jobs, Some mps -> Some (label, Float.to_int jobs, mps)
  | _ -> None

let measure ~pool ~jobs ~registry circuits =
  let best = ref 0. in
  for _ = 1 to passes do
    Mae_prob.Kernel_cache.clear ();
    let _, (stats : Mae_engine.stats) =
      Mae_engine.run_circuits_with_stats ?pool ~jobs ~registry circuits
    in
    if stats.elapsed_s > 0. then begin
      let mps = Float.of_int stats.modules /. stats.elapsed_s in
      if mps > !best then best := mps
    end
  done;
  !best

let () =
  let history_path =
    if Array.length Sys.argv > 1 then Sys.argv.(1)
    else Bench_history.History.path
  in
  let entries = engine_entries (read_lines history_path) in
  if entries = [] then
    skip (Printf.sprintf "no bench_engine entry in %s" history_path);
  let here = Mae_engine.default_jobs () in
  let same_host e =
    match number_member "host_recommended_domains" e with
    | Some recorded -> Float.to_int recorded = here
    | None -> false
  in
  (* most recent entry from this host profile; older entries and other
     machines' numbers are not a baseline for this run *)
  let entry =
    match
      List.fold_left
        (fun acc e -> if same_host e then Some e else acc)
        None entries
    with
    | None ->
        skip
          (Printf.sprintf
             "no prior entry from a %d-domain host among %d bench_engine \
              entries in %s"
             here (List.length entries) history_path)
    | Some e -> e
  in
  let modules =
    match number_member "workload_modules" entry with
    | Some m when m > 0. -> Float.to_int m
    | _ -> skip "history entry lacks workload_modules"
  in
  let runs =
    match Option.bind (Json.member "runs" entry) Json.to_list with
    | Some l -> List.filter_map run_of_json l
    | None -> skip "history entry lacks runs"
  in
  let baseline_seq =
    match List.find_opt (fun (l, _, _) -> String.equal l "seq_cached") runs with
    | Some (_, _, mps) when mps > 0. -> mps
    | _ -> skip "history entry lacks a seq_cached run"
  in
  (* best parallel run on record, if any: compare like with like by
     re-measuring at the same jobs count *)
  let baseline_par =
    List.fold_left
      (fun acc (label, jobs, mps) ->
        if String.length label >= 3 && String.sub label 0 3 = "par" then
          match acc with
          | Some (_, best) when best >= mps -> acc
          | _ -> Some (jobs, mps)
        else acc)
      None runs
  in
  let circuits = workload ~modules in
  let registry = Mae_tech.Registry.create () in
  Printf.printf
    "bench-gate: %d modules vs last history entry (threshold %.0f%%)\n%!"
    modules
    (100. *. (1. -. threshold));
  let seq = measure ~pool:None ~jobs:1 ~registry circuits in
  let verdicts = ref [] in
  let check label ~baseline ~current =
    let floor = baseline *. threshold in
    let ok = current >= floor in
    Printf.printf "  %-12s baseline %8.0f/s  now %8.0f/s  floor %8.0f/s  %s\n"
      label baseline current floor
      (if ok then "ok" else "REGRESSION");
    verdicts := ok :: !verdicts
  in
  check "seq_cached" ~baseline:baseline_seq ~current:seq;
  (match baseline_par with
  | None -> ()
  | Some (jobs, mps) ->
      let pool =
        if jobs >= 2 then Some (Mae_engine.Pool.create ~domains:(jobs - 1))
        else None
      in
      let par = measure ~pool ~jobs ~registry circuits in
      Option.iter Mae_engine.Pool.shutdown pool;
      check
        (Printf.sprintf "par%d_cached" jobs)
        ~baseline:mps ~current:par);
  (* GC gate: re-run the workload once with the runtime lens riding
     along and compare the measured p99 pause against the baseline
     entry's.  Missing baseline data skips this check only, with the
     reason logged -- the throughput verdicts above still decide. *)
  (match
     Option.bind (Json.member "gc" entry) (number_member "p99_pause_s")
   with
  | None ->
      print_endline
        "bench-gate: gc check skipped (baseline entry has no gc.p99_pause_s)"
  | Some baseline_p99 ->
      ignore (Mae_obs.Runtime.start ());
      let jobs = match baseline_par with Some (j, _) -> j | None -> 1 in
      let pool =
        if jobs >= 2 then Some (Mae_engine.Pool.create ~domains:(jobs - 1))
        else None
      in
      ignore (measure ~pool ~jobs ~registry circuits);
      Option.iter Mae_engine.Pool.shutdown pool;
      Mae_obs.Runtime.stop ();
      (match Mae_obs.Runtime.pause_quantile 0.99 with
      | None ->
          print_endline
            "bench-gate: gc check skipped (no pauses observed this run)"
      | Some current ->
          let ceiling = (baseline_p99 *. gc_threshold) +. gc_slack_s in
          let ok = current <= ceiling in
          Printf.printf
            "  %-12s baseline %7.0fus  now %7.0fus  ceiling %7.0fus  %s\n"
            "gc_p99" (baseline_p99 *. 1e6) (current *. 1e6) (ceiling *. 1e6)
            (if ok then "ok" else "REGRESSION");
          verdicts := ok :: !verdicts));
  if List.for_all Fun.id !verdicts then print_endline "bench-gate: ok"
  else begin
    print_endline
      "bench-gate: regression against BENCH_history.jsonl -- cached engine \
       throughput dropped more than 20% or p99 GC pause grew more than 50%; \
       investigate (or re-baseline by re-running the engine bench on this \
       host)";
    exit 1
  end
