(* The correctness gate behind [dune build @check-smoke]: a scaled-down
   differential-harness sweep that still exercises all three oracles
   (closed form, Monte-Carlo, exact enumeration), the greedy shrinker
   path, the golden Table 1 / Table 2 rows and the JSON report encoder.

   Small on purpose -- a few seconds, not minutes -- so it can sit next
   to @bench-smoke in CI on every push.  The full-strength sweep is
   [mae check --trials 200000 --cases 64 --seed 42]. *)

let fail fmt = Format.kasprintf (fun m -> prerr_endline ("check_smoke: " ^ m); exit 1) fmt

let () =
  let config =
    {
      Mae_check.Harness.default with
      trials = 20_000;
      cases = 24;
      seed = 42;
    }
  in
  let report = Mae_check.Harness.run config in
  Format.printf "%a@." Mae_check.Harness.pp_report report;

  (* The machine-readable report must round-trip through the in-repo
     JSON parser -- same guarantee @obs-smoke gives the trace artifacts. *)
  let json = Mae_check.Harness.report_json config report in
  let encoded = Mae_obs.Json.encode json in
  begin
    match Mae_obs.Json.parse encoded with
    | Error e -> fail "report JSON does not parse: %s" e
    | Ok parsed -> begin
        match Mae_obs.Json.(member "passed" parsed) with
        | Some (Mae_obs.Json.Bool b) when b = report.passed -> ()
        | _ -> fail "report JSON lost the passed flag"
      end
  end;

  (* The sweep must have actually compared things in every family. *)
  if report.cases_run <> config.cases then
    fail "ran %d cases, expected %d" report.cases_run config.cases;
  if report.comparisons < config.cases then
    fail "only %d comparisons over %d cases" report.comparisons config.cases;
  List.iter
    (fun (s : Mae_check.Harness.family_stat) ->
      if s.comparisons = 0 then fail "family %s never ran" s.family)
    report.families;
  if List.length report.golden = 0 then fail "no golden rows ran";
  List.iter
    (fun (g : Mae_check.Harness.golden_result) ->
      if not g.ok then
        fail "golden row %s: expected %.17g got %.17g" g.label g.expected
          g.actual)
    report.golden;

  if not report.passed then begin
    List.iter
      (fun (f : Mae_check.Harness.finding) ->
        Format.eprintf "finding: %s at %a (shrunk %a): |delta| %g > %g (%s)@."
          f.check Mae_workload.Sweep.pp_case f.case Mae_workload.Sweep.pp_case
          f.shrunk f.delta f.bound f.detail)
      report.findings;
    fail "oracles disagree (%d findings)" (List.length report.findings)
  end;
  print_endline "check-smoke ok"
