(* The persistent perf trajectory: every engine-bench and profile pass
   appends one timestamped JSON line to BENCH_history.jsonl, so a
   regression shows up as a kink in the file's trajectory across
   commits rather than being lost when BENCH_engine.json is
   overwritten.  Append-only by design -- never truncate it here. *)

module Json = Mae_obs.Json

let path = "BENCH_history.jsonl"

(* Every entry carries a "gc" object so the history can answer "did
   that perf kink coincide with a GC behaviour change".  The Gc.quick_stat
   fields are process-cumulative and always available; the pause fields
   come from the runtime lens and appear only when a bench ran it. *)
let gc_fields () =
  let s = Gc.quick_stat () in
  let allocated = s.minor_words +. s.major_words -. s.promoted_words in
  let base =
    [
      ("minor_collections", Json.Number (float_of_int s.minor_collections));
      ("major_collections", Json.Number (float_of_int s.major_collections));
      ("allocated_words", Json.Number allocated);
      ("heap_words", Json.Number (float_of_int s.heap_words));
      ("top_heap_words", Json.Number (float_of_int s.top_heap_words));
    ]
  in
  let opt_num = function None -> Json.Null | Some v -> Json.Number v in
  let lens =
    if Mae_obs.Runtime.pause_count () > 0 then
      [
        ( "pauses",
          Json.Number (float_of_int (Mae_obs.Runtime.pause_count ())) );
        ("max_pause_s", opt_num (Mae_obs.Runtime.max_pause_seconds ()));
        ("p99_pause_s", opt_num (Mae_obs.Runtime.pause_quantile 0.99));
      ]
    else []
  in
  ("gc", Json.Object (base @ lens))

let append ~source fields =
  let record =
    Json.Object
      (("ts", Json.Number (Unix.gettimeofday ()))
      :: ("source", Json.String source)
      :: (fields @ [ gc_fields () ]))
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  output_string oc (Json.encode record);
  output_char oc '\n';
  close_out oc;
  Printf.printf "perf trajectory appended to %s\n" path
