(* The persistent perf trajectory: every engine-bench and profile pass
   appends one timestamped JSON line to BENCH_history.jsonl, so a
   regression shows up as a kink in the file's trajectory across
   commits rather than being lost when BENCH_engine.json is
   overwritten.  Append-only by design -- never truncate it here. *)

module Json = Mae_obs.Json

let path = "BENCH_history.jsonl"

let append ~source fields =
  let record =
    Json.Object
      (("ts", Json.Number (Unix.gettimeofday ()))
      :: ("source", Json.String source)
      :: fields)
  in
  let oc = open_out_gen [ Open_append; Open_creat ] 0o644 path in
  output_string oc (Json.encode record);
  output_char oc '\n';
  close_out oc;
  Printf.printf "perf trajectory appended to %s\n" path
