(** Append-only perf trajectory shared by the engine bench and the
    stage profiler.  Each call writes one line to [BENCH_history.jsonl]
    in the working directory: a JSON object with ["ts"] (epoch
    seconds), ["source"], and the given fields. *)

val path : string

val append : source:string -> (string * Mae_obs.Json.t) list -> unit
