(** Append-only perf trajectory shared by the engine bench and the
    stage profiler.  Each call writes one line to [BENCH_history.jsonl]
    in the working directory: a JSON object with ["ts"] (epoch
    seconds), ["source"], the given fields, and a ["gc"] object
    (cumulative collection counts and allocated words from
    [Gc.quick_stat], plus pause count / max / p99 from
    {!Mae_obs.Runtime} when the bench ran the lens). *)

val path : string

val append : source:string -> (string * Mae_obs.Json.t) list -> unit
