(* @load-smoke: the serve-plane load gate, and a standalone open-loop
   load generator.

   --smoke forks its own daemon (loopback, kernel-assigned ports, a
   deliberately small admission watermark) and runs three phases:

   1. keep-alive: N HTTP/1.1 POST /estimate requests round-robined
      across C persistent connections;
   2. close: the same N requests, one fresh connection each
      (Connection: close) -- keep-alive must win on req/s, since each
      close-mode request pays socket setup + accept + teardown;
   3. overload: a pipelined burst far past the queue watermark on one
      connection -- some requests must answer 200, some must shed with
      HTTP 503 + Retry-After, the obs plane must keep answering while
      the burst drains, and the daemon must still exit 0 on SIGTERM.

   One line goes to BENCH_history.jsonl (source "loadgen") with both
   throughputs and the shed tally, so the keep-alive advantage is
   tracked over time next to the engine benches.

   Standalone: loadgen --addr HOST:PORT [--mode keepalive|close]
   [--connections C] [--requests N] drives an already-running daemon
   and prints req/s (nothing is forked, nothing is asserted). *)

module Json = Mae_obs.Json

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("loadgen: " ^ msg);
      exit 1)
    fmt

let check cond fmt =
  Printf.ksprintf
    (fun msg ->
      if not cond then fail "%s" msg else Printf.printf "ok: %s\n%!" msg)
    fmt

(* --- tiny HTTP/1.1 client --- *)

let index_sub hay needle from =
  let nn = String.length needle and nh = String.length hay in
  let rec at i =
    if i + nn > nh then None
    else if String.equal (String.sub hay i nn) needle then Some i
    else at (i + 1)
  in
  at from

let write_fully fd s =
  let n = String.length s in
  let rec go off =
    if off < n then go (off + Unix.write_substring fd s off (n - off))
  in
  go 0

(* one Content-Length-framed response; [leftover] carries bytes already
   read past the previous response on this connection *)
let recv_http fd leftover =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf leftover;
  let chunk = Bytes.create 65536 in
  let rec fill_until probe =
    match probe (Buffer.contents buf) with
    | Some v -> v
    | None -> (
        match Unix.read fd chunk 0 (Bytes.length chunk) with
        | 0 -> fail "EOF mid HTTP response (got %S)" (Buffer.contents buf)
        | n ->
            Buffer.add_subbytes buf chunk 0 n;
            fill_until probe)
  in
  let head_end = fill_until (fun s -> index_sub s "\r\n\r\n" 0) in
  let head = String.sub (Buffer.contents buf) 0 head_end in
  let content_length =
    let lower = String.lowercase_ascii head in
    match index_sub lower "content-length:" 0 with
    | None -> fail "HTTP response without Content-Length: %S" head
    | Some i -> (
        let rest = String.sub lower (i + 15) (String.length lower - i - 15) in
        match
          int_of_string_opt (String.trim (List.hd (String.split_on_char '\r' rest)))
        with
        | Some n -> n
        | None -> fail "bad Content-Length in %S" head)
  in
  let body_start = head_end + 4 in
  let total_len = body_start + content_length in
  ignore
    (fill_until (fun s -> if String.length s >= total_len then Some 0 else None));
  let raw = Buffer.contents buf in
  let status =
    match index_sub head " " 0 with
    | Some sp when String.length head >= sp + 4 ->
        Option.value ~default:0 (int_of_string_opt (String.sub head (sp + 1) 3))
    | _ -> 0
  in
  ( status,
    head,
    String.sub raw body_start content_length,
    String.sub raw total_len (String.length raw - total_len) )

let connect_tcp host port =
  let inet =
    try (Unix.gethostbyname host).Unix.h_addr_list.(0)
    with Not_found | Invalid_argument _ -> Unix.inet_addr_loopback
  in
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (inet, port));
  fd

(* --- the workload: one tiny module, warm in the estimate store after
   the first request, so the measurement isolates the serve plane --- *)

let hdl =
  Mae_hdl.Printer.to_string
    (Mae_workload.Generators.counter ~technology:"nmos25" 4)

let post_request ?(close = false) id =
  let body =
    Json.encode
      (Json.Object [ ("id", Json.Number (Float.of_int id)); ("hdl", Json.String hdl) ])
  in
  Printf.sprintf
    "POST /estimate HTTP/1.1\r\nHost: loadgen\r\n%sContent-Length: %d\r\n\r\n%s"
    (if close then "Connection: close\r\n" else "")
    (String.length body) body

let expect_ok status body =
  if status <> 200 then fail "request answered %d: %S" status body;
  match Json.parse (String.trim body) with
  | Ok doc ->
      if Json.member "ok" doc <> Some (Json.Bool true) then
        fail "request answered ok:false: %S" body
  | Error e -> fail "response not JSON (%s): %S" e body

(* keep-alive: [requests] POSTs round-robined over [connections]
   persistent sockets, lockstep per socket *)
let run_keepalive ~host ~port ~connections ~requests =
  let conns = Array.init connections (fun _ -> (connect_tcp host port, "")) in
  let t0 = Unix.gettimeofday () in
  for i = 0 to requests - 1 do
    let slot = i mod connections in
    let fd, leftover = conns.(slot) in
    write_fully fd (post_request i);
    let status, _, body, rest = recv_http fd leftover in
    expect_ok status body;
    conns.(slot) <- (fd, rest)
  done;
  let dt = Unix.gettimeofday () -. t0 in
  Array.iter (fun (fd, _) -> Unix.close fd) conns;
  float_of_int requests /. dt

(* close: a fresh connection per request *)
let run_close ~host ~port ~requests =
  let t0 = Unix.gettimeofday () in
  for i = 0 to requests - 1 do
    let fd = connect_tcp host port in
    write_fully fd (post_request ~close:true i);
    let status, _, body, _ = recv_http fd "" in
    expect_ok status body;
    Unix.close fd
  done;
  let dt = Unix.gettimeofday () -. t0 in
  float_of_int requests /. dt

(* --- the smoke daemon --- *)

let spawn_server ~watermark =
  let r, w = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      Unix.close r;
      Mae_obs.Log.set_threshold None;
      let registry = Mae_tech.Registry.create () in
      let config =
        {
          (Mae_serve.default_config ~registry
             ~request_addr:(Mae_serve.Tcp { host = "127.0.0.1"; port = 0 }))
          with
          Mae_serve.obs_addr =
            Some (Mae_serve.Tcp { host = "127.0.0.1"; port = 0 });
          queue_watermark = watermark;
          max_batch = 4;
          on_ready =
            (fun ~request_addr ~obs_addr ->
              let port = function
                | Mae_serve.Tcp { port; _ } -> port
                | Mae_serve.Unix_sock _ -> 0
              in
              let line =
                Printf.sprintf "%d %d\n" (port request_addr)
                  (match obs_addr with Some a -> port a | None -> 0)
              in
              ignore (Unix.write_substring w line 0 (String.length line));
              Unix.close w);
        }
      in
      (match Mae_serve.run config with
      | Ok () -> Unix._exit 0
      | Error e ->
          prerr_endline ("loadgen daemon: " ^ e);
          Unix._exit 1)
  | pid ->
      Unix.close w;
      let buf = Bytes.create 64 in
      let n = Unix.read r buf 0 64 in
      Unix.close r;
      if n = 0 then fail "daemon died before announcing its ports";
      (match
         String.split_on_char ' ' (String.trim (Bytes.sub_string buf 0 n))
       with
      | [ req; obs ] -> (pid, int_of_string req, int_of_string obs)
      | _ -> fail "bad ready line")

let prom_value body name =
  let rec find = function
    | [] -> fail "metric %s not in /metrics" name
    | line :: rest -> (
        match String.split_on_char ' ' line with
        | [ n; v ] when String.equal n name -> (
            match float_of_string_opt v with
            | Some f -> f
            | None -> fail "metric %s has unparseable value %S" name v)
        | _ -> find rest)
  in
  find (String.split_on_char '\n' body)

let obs_get ~port path =
  let fd = connect_tcp "127.0.0.1" port in
  write_fully fd (Printf.sprintf "GET %s HTTP/1.1\r\nHost: loadgen\r\n\r\n" path);
  let status, _, body, _ = recv_http fd "" in
  Unix.close fd;
  (status, body)

let run_smoke () =
  let watermark = 8 in
  let pid, req_port, obs_port = spawn_server ~watermark in
  check (req_port > 0 && obs_port > 0)
    "daemon bound request plane :%d and obs plane :%d" req_port obs_port;
  let host = "127.0.0.1" in
  (* warm the estimate store so both measured phases compare serve-plane
     overhead, not first-estimate cost *)
  ignore (run_close ~host ~port:req_port ~requests:1);
  let connections = 4 and requests = 240 in
  let keepalive_rps =
    run_keepalive ~host ~port:req_port ~connections ~requests
  in
  let close_rps = run_close ~host ~port:req_port ~requests in
  Printf.printf "keep-alive: %.0f req/s over %d connections\n%!" keepalive_rps
    connections;
  Printf.printf "close:      %.0f req/s, one connection per request\n%!"
    close_rps;
  check
    (keepalive_rps > close_rps)
    "keep-alive beats connection-per-request (%.0f > %.0f req/s)"
    keepalive_rps close_rps;

  (* overload: pipeline a burst far past the watermark on one
     connection; the prefix estimates, the excess answers 503 *)
  let burst = 64 in
  let fd = connect_tcp host req_port in
  let b = Buffer.create 8192 in
  for i = 1 to burst do
    Buffer.add_string b (post_request i)
  done;
  write_fully fd (Buffer.contents b);
  (* the obs plane must keep answering while the burst drains: scrapes
     bypass the request queue *)
  let health_status, _ = obs_get ~port:obs_port "/healthz" in
  check
    (health_status = 200 || health_status = 503)
    "/healthz responsive during the burst (answered %d)" health_status;
  let metrics_status, _ = obs_get ~port:obs_port "/metrics" in
  check (metrics_status = 200) "/metrics responsive during the burst";
  let oks = ref 0 and sheds = ref 0 in
  let leftover = ref "" in
  for i = 1 to burst do
    let status, head, body, rest = recv_http fd !leftover in
    leftover := rest;
    (match status with
    | 200 -> incr oks
    | 503 ->
        if index_sub head "Retry-After:" 0 = None then
          fail "503 response %d lacks Retry-After: %S" i head;
        incr sheds
    | s -> fail "burst response %d answered %d: %S" i s body);
    ignore body
  done;
  Unix.close fd;
  check
    (!oks >= 1 && !sheds >= 1 && !oks + !sheds = burst)
    "burst of %d past watermark %d: %d answered 200, %d shed 503" burst
    watermark !oks !sheds;
  let _, metrics_body = obs_get ~port:obs_port "/metrics" in
  check
    (int_of_float (prom_value metrics_body "mae_serve_requests_shed_total")
    = !sheds)
    "mae_serve_requests_shed_total agrees with the client (%d)" !sheds;
  check
    (prom_value metrics_body "mae_serve_connections_reused_total" >= 1.)
    "keep-alive connections counted as reused";

  Unix.kill pid Sys.sigterm;
  let _, status = Unix.waitpid [] pid in
  check (status = Unix.WEXITED 0) "daemon drained and exited 0 after the burst";

  Bench_history.History.append ~source:"loadgen"
    [
      ("keepalive_rps", Json.Number keepalive_rps);
      ("close_rps", Json.Number close_rps);
      ("connections", Json.Number (Float.of_int connections));
      ("requests", Json.Number (Float.of_int requests));
      ("burst", Json.Number (Float.of_int burst));
      ("shed", Json.Number (Float.of_int !sheds));
    ];
  print_endline "load-smoke: all checks passed"

(* --- standalone mode --- *)

let usage () =
  prerr_endline
    "usage: loadgen --smoke\n\
    \       loadgen --addr HOST:PORT [--mode keepalive|close]\n\
    \               [--connections C] [--requests N]";
  exit 2

let run_standalone ~addr ~mode ~connections ~requests =
  let host, port =
    match String.rindex_opt addr ':' with
    | Some i -> (
        let host = String.sub addr 0 i in
        let p = String.sub addr (i + 1) (String.length addr - i - 1) in
        match int_of_string_opt p with
        | Some port -> ((if host = "" then "127.0.0.1" else host), port)
        | None -> fail "bad port in --addr %s" addr)
    | None -> (
        match int_of_string_opt addr with
        | Some port -> ("127.0.0.1", port)
        | None -> fail "bad --addr %s (want HOST:PORT)" addr)
  in
  let rps =
    match mode with
    | "keepalive" -> run_keepalive ~host ~port ~connections ~requests
    | "close" -> run_close ~host ~port ~requests
    | m -> fail "bad --mode %s (want keepalive or close)" m
  in
  Printf.printf "%s: %.0f req/s (%d requests, %d connection%s)\n" mode rps
    requests
    (if mode = "close" then requests else connections)
    (if mode = "close" || connections > 1 then "s" else "")

let () =
  let addr = ref None in
  let mode = ref "keepalive" in
  let connections = ref 4 in
  let requests = ref 200 in
  let smoke = ref false in
  let rec parse = function
    | [] -> ()
    | "--smoke" :: rest ->
        smoke := true;
        parse rest
    | "--addr" :: v :: rest ->
        addr := Some v;
        parse rest
    | "--mode" :: v :: rest ->
        mode := v;
        parse rest
    | "--connections" :: v :: rest ->
        connections := (match int_of_string_opt v with
          | Some n when n >= 1 -> n
          | _ -> fail "--connections wants a positive integer");
        parse rest
    | "--requests" :: v :: rest ->
        requests := (match int_of_string_opt v with
          | Some n when n >= 1 -> n
          | _ -> fail "--requests wants a positive integer");
        parse rest
    | a :: _ ->
        prerr_endline ("loadgen: unknown argument " ^ a);
        usage ()
  in
  parse (List.tl (Array.to_list Sys.argv));
  (* SIGPIPE must not kill the client when the daemon sheds a
     connection mid-write *)
  (try Sys.set_signal Sys.sigpipe Sys.Signal_ignore
   with Invalid_argument _ -> ());
  if !smoke then run_smoke ()
  else
    match !addr with
    | None -> usage ()
    | Some addr ->
        run_standalone ~addr ~mode:!mode ~connections:!connections
          ~requests:!requests
