(* Reproduction harness: regenerates every table and figure of the paper's
   evaluation (section 6), plus the in-text numerical-simulation claims and
   the section 7 future-work studies.  See EXPERIMENTS.md for the
   paper-vs-measured discussion of each section printed here.

     dune exec bench/main.exe *)

module Table = Mae_report.Table
module Err = Mae_report.Err

let process = Mae_tech.Builtin.nmos25

let line = String.make 78 '='

let section title =
  Printf.printf "\n%s\n== %s\n%s\n" line title line

(* ------------------------------------------------------------------ *)
(* Table 1: full-custom module layout area estimates                   *)
(* ------------------------------------------------------------------ *)

let table1_rows () =
  List.map
    (fun (e : Mae_workload.Bench_circuits.entry) ->
      let exact, average = Mae.Fullcustom.estimate_both e.circuit process in
      let real =
        Mae_layout.Fc_flow.run ~rng:(Mae_prob.Rng.create ~seed:1988) e.circuit
          process
      in
      (e, exact, average, real))
    (Mae_workload.Bench_circuits.table1 ())

let run_table1 () =
  section "Table 1: Full-Custom module layout area estimates (nmos25)";
  let t =
    Table.create
      ~columns:
        [
          ("experiment", Table.Left);
          ("#dev", Table.Right);
          ("#nets", Table.Right);
          ("#ports", Table.Right);
          ("dev area", Table.Right);
          ("wire est", Table.Right);
          ("est(exact)", Table.Right);
          ("est(avg)", Table.Right);
          ("real", Table.Right);
          ("err(exact)", Table.Right);
          ("err(avg)", Table.Right);
          ("asp est", Table.Right);
          ("asp real", Table.Right);
        ]
  in
  let errors = ref [] in
  let aspect_errors = ref [] in
  List.iter
    (fun ((e : Mae_workload.Bench_circuits.entry),
          (exact : Mae.Estimate.fullcustom),
          (average : Mae.Estimate.fullcustom),
          (real : Mae_layout.Row_layout.t)) ->
      errors := Err.percent ~estimated:exact.area ~real:real.area :: !errors;
      aspect_errors :=
        Mae_geom.Aspect.error ~estimated:exact.aspect ~real:real.aspect
        :: !aspect_errors;
      Table.add_row t
        [
          e.name;
          string_of_int (Mae_netlist.Circuit.device_count e.circuit);
          string_of_int (Mae_netlist.Circuit.net_count e.circuit);
          string_of_int (Mae_netlist.Circuit.port_count e.circuit);
          Err.f0 exact.device_area;
          Err.f0 exact.wire_area;
          Err.f0 exact.area;
          Err.f0 average.area;
          Err.f0 real.area;
          Err.percent_string ~estimated:exact.area ~real:real.area;
          Err.percent_string ~estimated:average.area ~real:real.area;
          Err.aspect_string (Mae_geom.Aspect.ratio exact.aspect);
          Err.aspect_string (Mae_geom.Aspect.ratio real.aspect);
        ])
    (table1_rows ());
  Table.print t;
  let lo, hi = Mae_prob.Stats.min_max !errors in
  Printf.printf
    "error range %+.1f%% .. %+.1f%%, mean |error| %.1f%%\n\
     (paper: -17%% .. +26%%, mean 12%%; the all-two-component module\n\
     pass8 reproduces the footnote: zero estimated wire area)\n"
    lo hi
    (Mae_prob.Stats.mean_abs !errors);
  Printf.printf
    "mean orientation-free aspect-ratio error %.0f%% -- the paper notes\n\
     aspect ratios \"are hard to match with exact ones\" since port sides\n\
     are unknown before floor planning (section 6).\n"
    (100. *. Mae_prob.Stats.mean_abs !aspect_errors)

(* ------------------------------------------------------------------ *)
(* Table 2: standard-cell module layout area estimates                 *)
(* ------------------------------------------------------------------ *)

let table2_sweep = [ 2; 3; 4; 6 ]

let table2_rows () =
  List.concat_map
    (fun (e : Mae_workload.Bench_circuits.entry) ->
      List.map
        (fun rows ->
          let est = Mae.Stdcell.estimate ~rows e.circuit process in
          let real =
            Mae_layout.Sc_flow.run ~rng:(Mae_prob.Rng.create ~seed:1988) ~rows
              e.circuit process
          in
          (e, rows, est, real))
        table2_sweep)
    (Mae_workload.Bench_circuits.table2 ())

let run_table2 () =
  section "Table 2: Standard-Cell module layout area estimates (nmos25)";
  let t =
    Table.create
      ~columns:
        [
          ("experiment", Table.Left);
          ("rows", Table.Right);
          ("est h", Table.Right);
          ("est w", Table.Right);
          ("trk est", Table.Right);
          ("trk real", Table.Right);
          ("est area", Table.Right);
          ("real area", Table.Right);
          ("err", Table.Right);
          ("asp est", Table.Right);
          ("asp real", Table.Right);
        ]
  in
  let errors = ref [] in
  let previous = ref "" in
  List.iter
    (fun ((e : Mae_workload.Bench_circuits.entry), rows,
          (est : Mae.Estimate.stdcell), (real : Mae_layout.Row_layout.t)) ->
      if !previous <> "" && !previous <> e.name then Table.add_separator t;
      previous := e.name;
      errors := Err.percent ~estimated:est.area ~real:real.area :: !errors;
      Table.add_row t
        [
          e.name;
          string_of_int rows;
          Err.f0 est.height;
          Err.f0 est.width;
          string_of_int est.tracks;
          string_of_int real.total_tracks;
          Err.f0 est.area;
          Err.f0 real.area;
          Err.percent_string ~estimated:est.area ~real:real.area;
          Err.aspect_string (Mae_geom.Aspect.ratio est.aspect_raw);
          Err.aspect_string (Mae_geom.Aspect.ratio real.aspect);
        ])
    (table2_rows ());
  Table.print t;
  let lo, hi = Mae_prob.Stats.min_max !errors in
  Printf.printf
    "every estimate is an upper bound (positive error) and the estimate\n\
     decreases as rows increase -- the paper's two qualitative findings.\n\
     overestimate range %+.0f%% .. %+.0f%% (paper: +42%% .. +70%%); ours is\n\
     larger because the left-edge router shares tracks more aggressively\n\
     than the 1988 flow -- exactly the effect the paper blames, amplified;\n\
     see the track-sharing ablation below and EXPERIMENTS.md.\n"
    lo hi

(* ------------------------------------------------------------------ *)
(* Figure 1: the estimator pipeline                                    *)
(* ------------------------------------------------------------------ *)

let run_figure1 () =
  section "Figure 1: estimator structure (HDL -> estimates -> database)";
  let registry = Mae_tech.Registry.create () in
  let hdl =
    Mae_hdl.Printer.to_string (Mae_workload.Generators.full_adder ())
  in
  match Mae.Driver.run_string ~registry hdl with
  | Error e -> Format.printf "pipeline failed: %a@." Mae.Driver.pp_error e
  | Ok reports ->
      let store = Mae_db.Store.create () in
      List.iter
        (fun r ->
          match Mae_db.Record.of_report r with
          | Ok record -> Mae_db.Store.add store record
          | Error e ->
              Printf.printf "no database entry: %s\n"
                (Mae_db.Record.of_report_error_to_string e))
        reports;
      print_string (Mae_db.Store.to_string store);
      Printf.printf
        "(input interface parsed %d module(s); both estimators ran; the\n\
         database above is what the floor planner consumes)\n"
        (List.length reports)

(* ------------------------------------------------------------------ *)
(* Section 4.1 in-text: central-row simulation and the eq. 9 limit     *)
(* ------------------------------------------------------------------ *)

let run_central_row () =
  section "Numerical simulation: the central row maximizes P(feed-through)";
  let t =
    Table.create
      ~columns:
        [
          ("rows", Table.Right);
          ("degree", Table.Right);
          ("argmax (analytic)", Table.Right);
          ("argmax (monte carlo)", Table.Right);
          ("central", Table.Right);
        ]
  in
  List.iter
    (fun (rows, degree) ->
      let analytic = Mae.Feedthrough.argmax_row ~rows ~degree in
      let stats =
        Mae_prob.Montecarlo.simulate_net
          ~rng:(Mae_prob.Rng.create ~seed:54)
          ~trials:100_000 ~rows ~degree
      in
      let mc = Mae_prob.Montecarlo.argmax_feed_through stats in
      Table.add_row t
        [
          string_of_int rows;
          string_of_int degree;
          string_of_int analytic;
          string_of_int mc;
          Printf.sprintf "%.1f" (Mae.Feedthrough.central_row ~rows);
        ])
    [ (3, 2); (5, 2); (5, 4); (7, 2); (7, 5); (9, 3); (11, 2); (11, 7) ];
  Table.print t;
  print_newline ();
  let t2 =
    Table.create
      ~columns:[ ("rows n", Table.Right); ("P_feed = ((n-1)/n)^2 / 2", Table.Right) ]
  in
  List.iter
    (fun n ->
      Table.add_row t2
        [ string_of_int n;
          Printf.sprintf "%.4f" (Mae.Feedthrough.prob_two_component ~rows:n) ])
    [ 1; 2; 3; 5; 10; 100; 1000 ];
  Table.print t2;
  print_endline "the limit is 0.5, as equation (9) states."

(* ------------------------------------------------------------------ *)
(* Section 7 ablation: track-sharing correction                        *)
(* ------------------------------------------------------------------ *)

let run_ablation_sharing () =
  section "Ablation: the section-7 track-sharing correction (cross-calibrated)";
  let rows_data = table2_rows () in
  (* Leave-one-circuit-out: calibrate the factor on the OTHER circuit's
     (estimate, real) pairs, so nothing is fitted to the data it predicts. *)
  let factor_excluding name =
    let pairs =
      List.filter_map
        (fun ((e : Mae_workload.Bench_circuits.entry), _,
              est, (real : Mae_layout.Row_layout.t)) ->
          if String.equal e.name name then None else Some (est, real.area))
        rows_data
    in
    Mae.Extensions.calibrate_sharing_factor pairs
  in
  let t =
    Table.create
      ~columns:
        [
          ("experiment", Table.Left);
          ("rows", Table.Right);
          ("factor", Table.Right);
          ("raw est", Table.Right);
          ("raw err", Table.Right);
          ("corrected est", Table.Right);
          ("corrected err", Table.Right);
        ]
  in
  List.iter
    (fun ((e : Mae_workload.Bench_circuits.entry), rows,
          (est : Mae.Estimate.stdcell), (real : Mae_layout.Row_layout.t)) ->
      match factor_excluding e.name with
      | None -> ()
      | Some factor ->
          let corrected =
            Mae.Extensions.with_track_sharing ~factor ~rows e.circuit process
          in
          Table.add_row t
            [
              e.name;
              string_of_int rows;
              Printf.sprintf "%.3f" factor;
              Err.f0 est.area;
              Err.percent_string ~estimated:est.area ~real:real.area;
              Err.f0 corrected.area;
              Err.percent_string ~estimated:corrected.area ~real:real.area;
            ])
    rows_data;
  Table.print t;
  print_endline
    "the sharing factor is calibrated on the other circuit only (leave-one-\n\
     circuit-out); with the correction the estimates fall into or near the\n\
     paper's reported +42..70% band; the residual overestimate is the\n\
     feed-through and cell-area floor of equation (12)."

(* ------------------------------------------------------------------ *)
(* Section 7 ablation: row-span model variants                         *)
(* ------------------------------------------------------------------ *)

let run_ablation_row_model () =
  section "Ablation: equation-2 exponent heuristic vs exact occupancy";
  let t =
    Table.create
      ~columns:
        [
          ("experiment", Table.Left);
          ("rows", Table.Right);
          ("tracks (paper eq.2)", Table.Right);
          ("tracks (exact)", Table.Right);
          ("area (paper)", Table.Right);
          ("area (exact)", Table.Right);
        ]
  in
  List.iter
    (fun (e : Mae_workload.Bench_circuits.entry) ->
      List.iter
        (fun rows ->
          let paper = Mae.Stdcell.estimate ~rows e.circuit process in
          let exact =
            Mae.Stdcell.estimate
              ~config:{ Mae.Config.default with row_span_model = Mae.Config.Exact_occupancy }
              ~rows e.circuit process
          in
          Table.add_row t
            [
              e.name;
              string_of_int rows;
              string_of_int paper.Mae.Estimate.tracks;
              string_of_int exact.Mae.Estimate.tracks;
              Err.f0 paper.Mae.Estimate.area;
              Err.f0 exact.Mae.Estimate.area;
            ])
        [ 2; 4 ])
    (Mae_workload.Bench_circuits.table2 ());
  Table.print t;
  print_endline
    "the k = min(n, D) heuristic of equation (2) coincides with the exact\n\
     occupancy distribution whenever n >= D, so differences only appear\n\
     when wide nets meet few rows."

(* ------------------------------------------------------------------ *)
(* Section 7: floor-planning iteration study                           *)
(* ------------------------------------------------------------------ *)

let run_floorplan_iterations () =
  section "Floor-planning iterations: estimator seeds vs naive seeds";
  let quick = Mae_layout.Anneal.quick_schedule in
  let t =
    Table.create
      ~columns:
        [
          ("seed", Table.Right);
          ("modules", Table.Right);
          ("rounds (estimator)", Table.Right);
          ("rounds (naive)", Table.Right);
          ("chip (estimator)", Table.Right);
          ("chip (naive)", Table.Right);
        ]
  in
  let wins = ref 0 and total = ref 0 in
  List.iter
    (fun seed ->
      let rng = Mae_prob.Rng.create ~seed in
      let modules =
        Mae_workload.Rent.generate_modules ~rng
          { Mae_workload.Rent.default_params with clusters = 5; cluster_size = 24 }
      in
      let reals =
        List.map
          (fun c ->
            let rows = Mae.Row_select.initial_rows c process in
            (Mae_layout.Sc_flow.run ~schedule:quick
               ~rng:(Mae_prob.Rng.split rng) ~rows c process)
              .Mae_layout.Row_layout.area)
          modules
      in
      let spec_of shapes c real_area =
        { Mae_floorplan.Flow.name = c.Mae_netlist.Circuit.name;
          estimated_shapes = shapes; real_area }
      in
      let estimator_specs =
        List.map2
          (fun c real ->
            let candidates =
              Mae.Extensions.stdcell_shape_candidates c process
              |> List.map (fun (e : Mae.Estimate.stdcell) -> (e.width, e.height))
            in
            spec_of
              (Mae_floorplan.Shape.with_rotations
                 (Mae_floorplan.Shape.of_list candidates))
              c real)
          modules reals
      in
      let naive_specs =
        List.map2
          (fun c real ->
            let w, h = Mae_baselines.Naive.estimate_square c process in
            spec_of (Mae_floorplan.Shape.singleton ~w ~h) c real)
          modules reals
      in
      let est_report =
        Mae_floorplan.Flow.converge ~schedule:quick
          ~rng:(Mae_prob.Rng.create ~seed:(seed * 7)) estimator_specs
      in
      let naive_report =
        Mae_floorplan.Flow.converge ~schedule:quick
          ~rng:(Mae_prob.Rng.create ~seed:(seed * 7)) naive_specs
      in
      incr total;
      if est_report.Mae_floorplan.Flow.rounds <= naive_report.Mae_floorplan.Flow.rounds
      then incr wins;
      Table.add_row t
        [
          string_of_int seed;
          string_of_int (List.length modules);
          string_of_int est_report.Mae_floorplan.Flow.rounds;
          string_of_int naive_report.Mae_floorplan.Flow.rounds;
          Err.f0 est_report.Mae_floorplan.Flow.final_chip_area;
          Err.f0 naive_report.Mae_floorplan.Flow.final_chip_area;
        ])
    [ 1; 2; 3; 4; 5 ];
  Table.print t;
  Printf.printf
    "estimator seeds converge in no more rounds than naive seeds on %d/%d\n\
     chips (the motivation in the paper's introduction); the conservative\n\
     upper-bound estimates trade some final chip area for convergence.\n"
    !wins !total

(* ------------------------------------------------------------------ *)
(* Section 7 caveat: error growth with module size                     *)
(* ------------------------------------------------------------------ *)

let run_scaling () =
  section "Scaling: \"works well for small and moderate-sized modules\"";
  let t =
    Table.create
      ~columns:
        [
          ("module", Table.Left);
          ("#tx", Table.Right);
          ("est (exact)", Table.Right);
          ("real", Table.Right);
          ("err", Table.Right);
        ]
  in
  List.iter
    (fun bits ->
      let circuit =
        Mae_workload.Bench_circuits.flatten
          (Mae_workload.Generators.ripple_adder bits)
      in
      let est =
        Mae.Fullcustom.estimate ~mode:Mae.Config.Exact_areas circuit process
      in
      let real =
        Mae_layout.Fc_flow.run ~schedule:Mae_layout.Anneal.quick_schedule
          ~rng:(Mae_prob.Rng.create ~seed:1988) circuit process
      in
      Table.add_row t
        [
          Printf.sprintf "adder%d_tx" bits;
          string_of_int (Mae_netlist.Circuit.device_count circuit);
          Err.f0 est.Mae.Estimate.area;
          Err.f0 real.Mae_layout.Row_layout.area;
          Err.percent_string ~estimated:est.Mae.Estimate.area
            ~real:real.Mae_layout.Row_layout.area;
        ])
    [ 1; 2; 4; 8; 16 ];
  Table.print t;
  let t2 =
    Table.create
      ~columns:
        [
          ("module", Table.Left);
          ("#cells", Table.Right);
          ("SC est", Table.Right);
          ("SC real", Table.Right);
          ("err", Table.Right);
        ]
  in
  List.iter
    (fun (name, circuit) ->
      let rows = Mae.Row_select.initial_rows circuit process in
      let est = Mae.Stdcell.estimate ~rows circuit process in
      let real =
        Mae_layout.Sc_flow.run ~schedule:Mae_layout.Anneal.quick_schedule
          ~rng:(Mae_prob.Rng.create ~seed:1988) ~rows circuit process
      in
      Table.add_row t2
        [
          name;
          string_of_int (Mae_netlist.Circuit.device_count circuit);
          Err.f0 est.Mae.Estimate.area;
          Err.f0 real.Mae_layout.Row_layout.area;
          Err.percent_string ~estimated:est.Mae.Estimate.area
            ~real:real.Mae_layout.Row_layout.area;
        ])
    [
      ("counter4", Mae_workload.Generators.counter 4);
      ("counter8", Mae_workload.Generators.counter 8);
      ("counter16", Mae_workload.Generators.counter 16);
      ("alu8", Mae_workload.Generators.alu 8);
      ("mult8", Mae_workload.Generators.multiplier 8);
    ];
  Table.print t2;
  print_endline
    "the minimum-interconnection model of equation (13) underestimates more\n\
     and more as modules grow (wiring grows super-linearly); this is the\n\
     conclusion's caveat that the estimator \"is not intended for area\n\
     estimation of entire chips\"; the standard-cell upper bound drifts the\n\
     same way as its one-net-per-track pessimism compounds.  Chip assembly\n\
     belongs to the floor planner (Mae_floorplan.Chip)."

(* ------------------------------------------------------------------ *)
(* Section 2: prior-work baselines                                     *)
(* ------------------------------------------------------------------ *)

let run_baselines () =
  section "Prior work (section 2): PLEST, CHAMP, naive vs this estimator";
  let quick = Mae_layout.Anneal.quick_schedule in
  (* training data for CHAMP: layouts of random circuits *)
  let layout_area c rows seed =
    (Mae_layout.Sc_flow.run ~schedule:quick ~rng:(Mae_prob.Rng.create ~seed)
       ~rows c process)
      .Mae_layout.Row_layout.area
  in
  let training =
    List.map
      (fun devices ->
        let c =
          Mae_workload.Random_circuit.generate
            ~rng:(Mae_prob.Rng.create ~seed:devices)
            { Mae_workload.Random_circuit.default_params with devices }
        in
        let rows = Mae.Row_select.initial_rows c process in
        (devices, layout_area c rows (devices + 1)))
      [ 20; 30; 45; 60; 80 ]
  in
  let champ =
    match Mae_baselines.Champ.fit training with
    | Ok model -> Some model
    | Error _ -> None
  in
  let t =
    Table.create
      ~columns:
        [
          ("experiment", Table.Left);
          ("real", Table.Right);
          ("this work", Table.Right);
          ("plest(oracle)", Table.Right);
          ("champ", Table.Right);
          ("naive", Table.Right);
        ]
  in
  List.iter
    (fun (e : Mae_workload.Bench_circuits.entry) ->
      let rows = Mae.Row_select.initial_rows e.circuit process in
      let layout =
        Mae_layout.Sc_flow.run ~schedule:quick
          ~rng:(Mae_prob.Rng.create ~seed:77) ~rows e.circuit process
      in
      let real = layout.Mae_layout.Row_layout.area in
      let ours = (Mae.Stdcell.estimate ~rows e.circuit process).Mae.Estimate.area in
      let plest =
        Mae_baselines.Plest.estimate
          ~density:(Mae_baselines.Plest.oracle_density layout)
          ~rows e.circuit process
      in
      let champ_est =
        match champ with
        | Some model ->
            Err.f0
              (Mae_baselines.Champ.estimate model
                 ~devices:(Mae_netlist.Circuit.device_count e.circuit))
        | None -> "n/a"
      in
      let naive = Mae_baselines.Naive.estimate e.circuit process in
      Table.add_row t
        [
          e.name; Err.f0 real; Err.f0 ours; Err.f0 plest; champ_est; Err.f0 naive;
        ])
    (Mae_workload.Bench_circuits.table2 ());
  Table.print t;
  print_endline
    "PLEST is fed the post-layout density (which is the paper's critique:\n\
     that information exists only after layout); CHAMP interpolates its\n\
     training law; this work needs neither.";
  print_endline
    "\nGerveshi's PLA model (linear in product terms), for contrast:";
  let t2 =
    Table.create
      ~columns:
        [ ("PLA spec", Table.Left); ("devices", Table.Right); ("area", Table.Right) ]
  in
  List.iter
    (fun product_terms ->
      let spec = { Mae_baselines.Pla.inputs = 8; outputs = 4; product_terms } in
      Table.add_row t2
        [
          Printf.sprintf "8in/4out/%dpt" product_terms;
          string_of_int (Mae_baselines.Pla.device_count spec);
          Err.f0 (Mae_baselines.Pla.area spec process);
        ])
    [ 8; 16; 32; 64 ];
  Table.print t2

(* ------------------------------------------------------------------ *)
(* Robustness: key statistics across layout seeds                      *)
(* ------------------------------------------------------------------ *)

let run_robustness () =
  section "Robustness: headline statistics across layout seeds";
  let t =
    Table.create
      ~columns:
        [
          ("seed", Table.Right);
          ("T1 mean |err|", Table.Right);
          ("T1 range", Table.Right);
          ("T2 overestimate range", Table.Right);
          ("T2 upper bound", Table.Left);
        ]
  in
  List.iter
    (fun seed ->
      let t1_errors =
        List.map
          (fun (e : Mae_workload.Bench_circuits.entry) ->
            let est =
              Mae.Fullcustom.estimate ~mode:Mae.Config.Exact_areas e.circuit
                process
            in
            let real =
              Mae_layout.Fc_flow.run ~rng:(Mae_prob.Rng.create ~seed) e.circuit
                process
            in
            Err.percent ~estimated:est.Mae.Estimate.area
              ~real:real.Mae_layout.Row_layout.area)
          (Mae_workload.Bench_circuits.table1 ())
      in
      let t2_errors =
        List.concat_map
          (fun (e : Mae_workload.Bench_circuits.entry) ->
            List.map
              (fun rows ->
                let est = Mae.Stdcell.estimate ~rows e.circuit process in
                let real =
                  Mae_layout.Sc_flow.run ~schedule:Mae_layout.Anneal.quick_schedule
                    ~rng:(Mae_prob.Rng.create ~seed) ~rows e.circuit process
                in
                Err.percent ~estimated:est.Mae.Estimate.area
                  ~real:real.Mae_layout.Row_layout.area)
              [ 2; 4 ])
          (Mae_workload.Bench_circuits.table2 ())
      in
      let lo1, hi1 = Mae_prob.Stats.min_max t1_errors in
      let lo2, hi2 = Mae_prob.Stats.min_max t2_errors in
      Table.add_row t
        [
          string_of_int seed;
          Printf.sprintf "%.1f%%" (Mae_prob.Stats.mean_abs t1_errors);
          Printf.sprintf "%+.0f%% .. %+.0f%%" lo1 hi1;
          Printf.sprintf "%+.0f%% .. %+.0f%%" lo2 hi2;
          (if lo2 > 0. then "holds" else "VIOLATED");
        ])
    [ 1988; 1989; 1990; 42 ];
  Table.print t;
  print_endline
    "the qualitative findings survive the layout substrate's randomness:\n\
     full-custom errors stay in the tens of percent, the standard-cell\n\
     bound never inverts."

(* ------------------------------------------------------------------ *)
(* Extension: the third methodology (gate array)                       *)
(* ------------------------------------------------------------------ *)

let run_methodologies () =
  section "Methodology choice (intro use case; gate array is our extension)";
  let t =
    Table.create
      ~columns:
        [
          ("module", Table.Left);
          ("full-custom", Table.Right);
          ("standard-cell", Table.Right);
          ("gate-array", Table.Right);
          ("GA routable", Table.Left);
          ("pick", Table.Left);
        ]
  in
  List.iter
    (fun (e : Mae_workload.Bench_circuits.entry) ->
      let flat = Mae_workload.Bench_circuits.flatten e.circuit in
      let fc = Mae.Fullcustom.estimate ~mode:Mae.Config.Exact_areas flat process in
      let sc = Mae.Stdcell.estimate_auto e.circuit process in
      match Mae.Gatearray.estimate_routable e.circuit process with
      | Error err -> Printf.printf "%s: gate array failed (%s)\n" e.name err
      | Ok ga ->
          let picks =
            [
              ("full-custom", fc.Mae.Estimate.area);
              ("standard-cell", sc.Mae.Estimate.area);
              ("gate-array", ga.Mae.Gatearray.area);
            ]
          in
          let pick =
            List.fold_left
              (fun (bn, ba) (n, a) -> if a < ba then (n, a) else (bn, ba))
              ("", Float.infinity) picks
            |> fst
          in
          Table.add_row t
            [
              e.name;
              Err.f0 fc.Mae.Estimate.area;
              Err.f0 sc.Mae.Estimate.area;
              Err.f0 ga.Mae.Gatearray.area;
              (if ga.Mae.Gatearray.routable then "yes" else "no");
              pick;
            ])
    (Mae_workload.Bench_circuits.table2 ());
  Table.print t;
  print_endline
    "\"the designer can then intelligently choose the most appropriate\n\
     methodology\" (introduction) -- full-custom buys the least area at the\n\
     most design effort; the gate array trades fixed prediffused channels\n\
     for zero wiring uncertainty (routability checked with the paper's own\n\
     equation 2-3 track model)."

(* ------------------------------------------------------------------ *)
(* Detailed routing cross-check                                        *)
(* ------------------------------------------------------------------ *)

let run_routing_check () =
  section "Detailed routing cross-check (wires expanded, geometry LVS)";
  let t =
    Table.create
      ~columns:
        [
          ("experiment", Table.Left);
          ("rows", Table.Right);
          ("segments", Table.Right);
          ("vias", Table.Right);
          ("wire length", Table.Right);
          ("HPWL", Table.Right);
          ("LVS", Table.Left);
        ]
  in
  List.iter
    (fun (e : Mae_workload.Bench_circuits.entry) ->
      List.iter
        (fun rows ->
          let layout =
            Mae_layout.Sc_flow.run ~rng:(Mae_prob.Rng.create ~seed:1988) ~rows
              e.circuit process
          in
          let wiring = Mae_layout.Sc_flow.wiring e.circuit process layout in
          let report = Mae_layout.Extract.lvs wiring e.circuit in
          Table.add_row t
            [
              e.name;
              string_of_int rows;
              string_of_int (Mae_layout.Wiring.segment_count wiring);
              string_of_int (List.length wiring.Mae_layout.Wiring.vias);
              Err.f0 (Mae_layout.Wiring.wire_length wiring);
              Err.f0 layout.Mae_layout.Row_layout.hpwl;
              (if Mae_layout.Extract.clean report then "clean"
               else
                 Printf.sprintf "%d opens / %d shorts (%d doglegs needed)"
                   (List.length report.Mae_layout.Extract.opens)
                   (List.length report.Mae_layout.Extract.shorts)
                   wiring.Mae_layout.Wiring.dropped_constraints);
            ])
        [ 3; 4 ])
    (Mae_workload.Bench_circuits.table2 ());
  Table.print t;
  print_endline
    "the \"real\" areas of Table 2 come from layouts whose expanded wiring\n\
     reconnects exactly the source netlist (geometric extraction, net ids\n\
     unused) -- the comparator is not an abstraction."

(* ------------------------------------------------------------------ *)
(* Runtime: Bechamel micro-benchmarks (the paper's CPU-time claims)    *)
(* ------------------------------------------------------------------ *)

let bechamel_tests () =
  let open Bechamel in
  let counter8 = Mae_workload.Generators.counter 8 in
  let alu4 = Mae_workload.Generators.alu 4 in
  let fa_tx = Mae_workload.Bench_circuits.flatten (Mae_workload.Generators.full_adder ()) in
  [
    Test.make ~name:"table1: fullcustom estimate (fa_tx)"
      (Staged.stage (fun () ->
           ignore (Mae.Fullcustom.estimate_both fa_tx process)));
    Test.make ~name:"table2: stdcell estimate (counter8, auto rows)"
      (Staged.stage (fun () -> ignore (Mae.Stdcell.estimate_auto counter8 process)));
    Test.make ~name:"table2: stdcell estimate (alu4, auto rows)"
      (Staged.stage (fun () -> ignore (Mae.Stdcell.estimate_auto alu4 process)));
    Test.make ~name:"eq2-3: row model (n=6, D=4)"
      (Staged.stage (fun () ->
           ignore
             (Mae.Row_model.expected_span ~model:Mae.Config.Paper_model ~rows:6
                ~degree:4)));
    Test.make ~name:"eq5: feed-through probability (n=9, D=5)"
      (Staged.stage (fun () ->
           ignore (Mae.Feedthrough.prob_in_row ~rows:9 ~degree:5 ~row:5)));
    Test.make ~name:"figure1: full pipeline (full_adder HDL)"
      (Staged.stage
         (let registry = Mae_tech.Registry.create () in
          let hdl = Mae_hdl.Printer.to_string (Mae_workload.Generators.full_adder ()) in
          fun () -> ignore (Mae.Driver.run_string ~registry hdl)));
    Test.make ~name:"substrate: sc layout flow (counter8, quick)"
      (Staged.stage (fun () ->
           ignore
             (Mae_layout.Sc_flow.run ~schedule:Mae_layout.Anneal.quick_schedule
                ~rng:(Mae_prob.Rng.create ~seed:1) ~rows:3 counter8 process)));
    Test.make ~name:"substrate: fc layout flow (fa_tx, quick)"
      (Staged.stage (fun () ->
           ignore
             (Mae_layout.Fc_flow.run ~schedule:Mae_layout.Anneal.quick_schedule
                ~rng:(Mae_prob.Rng.create ~seed:1) fa_tx process)));
    Test.make ~name:"substrate: floorplan anneal (6 modules, quick)"
      (Staged.stage
         (let shapes =
            Array.init 6 (fun i ->
                Mae_floorplan.Shape.with_rotations
                  (Mae_floorplan.Shape.singleton
                     ~w:(Float.of_int (10 + i))
                     ~h:(Float.of_int (20 - i))))
          in
          fun () ->
            ignore
              (Mae_floorplan.Fp_anneal.run
                 ~schedule:Mae_layout.Anneal.quick_schedule
                 ~rng:(Mae_prob.Rng.create ~seed:2) shapes)));
  ]

let run_timings () =
  section "Runtime (paper section 6: <1.5s full-custom, <3s standard-cell)";
  let open Bechamel in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.4) () in
  let instance = Toolkit.Instance.monotonic_clock in
  let ols =
    Analyze.ols ~r_square:false ~bootstrap:0 ~predictors:[| Measure.run |]
  in
  let t =
    Table.create
      ~columns:[ ("benchmark", Table.Left); ("time per run", Table.Right) ]
  in
  List.iter
    (fun test ->
      List.iter
        (fun elt ->
          let raw = Benchmark.run cfg [ instance ] elt in
          let result = Analyze.one ols instance raw in
          let nanos =
            match Analyze.OLS.estimates result with
            | Some [ est ] -> est
            | Some _ | None -> Float.nan
          in
          let human =
            if Float.is_nan nanos then "n/a"
            else if nanos > 1e9 then Printf.sprintf "%.2f s" (nanos /. 1e9)
            else if nanos > 1e6 then Printf.sprintf "%.2f ms" (nanos /. 1e6)
            else if nanos > 1e3 then Printf.sprintf "%.2f us" (nanos /. 1e3)
            else Printf.sprintf "%.0f ns" nanos
          in
          Table.add_row t [ Test.Elt.name elt; human ])
        (Test.elements test))
    (bechamel_tests ());
  Table.print t;
  print_endline
    "every estimator runs in microseconds-to-milliseconds, comfortably\n\
     inside the paper's seconds-level budget on a 1988 Sun 3/50."

(* ------------------------------------------------------------------ *)
(* Batch engine throughput: sequential vs parallel vs kernel cache     *)
(* ------------------------------------------------------------------ *)

(* A service-shaped workload: the modules a floor-planning loop keeps
   re-submitting while it iterates -- a handful of large structural shapes,
   pre-flattened to transistor level, cycled across the batch.  The
   repetition of (rows, degree) pairs is exactly what the kernel cache
   exploits; flattening happens here, outside the timed region, the way a
   long-lived estimation service would hold parsed netlists.  Deterministic
   so that every run times the same batch. *)
let engine_workload ~modules =
  let flat g = Mae_workload.Bench_circuits.flatten g in
  let shapes =
    [|
      flat (Mae_workload.Generators.multiplier 6);
      flat (Mae_workload.Generators.multiplier 7);
      flat (Mae_workload.Generators.multiplier 8);
      flat (Mae_workload.Generators.alu 8);
      flat (Mae_workload.Generators.counter 16);
      flat (Mae_workload.Generators.ripple_adder 16);
      Mae_workload.Generators.inverter_chain 200;
      Mae_workload.Generators.pass_chain 300;
    |]
  in
  List.init modules (fun i -> shapes.(i mod Array.length shapes))

type engine_run = {
  label : string;
  jobs : int;
  cache : bool;
  stats : Mae_engine.stats;
}

let time_engine ?pool ~label ~jobs ~cache ~registry circuits =
  Mae_prob.Kernel_cache.clear ();
  Mae_prob.Kernel_cache.set_enabled cache;
  let results, stats =
    Mae_engine.run_circuits_with_stats ?pool ~jobs ~registry circuits
  in
  Mae_prob.Kernel_cache.set_enabled true;
  (results, { label; jobs; cache; stats })

let modules_per_s (r : engine_run) =
  if r.stats.elapsed_s > 0. then
    Float.of_int r.stats.modules /. r.stats.elapsed_s
  else 0.

let engine_json ~modules ~runs ~path =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf "{\n";
  Buffer.add_string buf (Printf.sprintf "  \"workload_modules\": %d,\n" modules);
  Buffer.add_string buf
    (Printf.sprintf "  \"host_recommended_domains\": %d,\n"
       (Mae_engine.default_jobs ()));
  Buffer.add_string buf "  \"runs\": [\n";
  List.iteri
    (fun i r ->
      Buffer.add_string buf
        (Printf.sprintf
           "    {\"label\": %S, \"jobs\": %d, \"cache\": %b, \"elapsed_s\": \
            %.6f, \"modules_per_s\": %.1f, \"ok\": %d, \"failed\": %d, \
            \"cache_hits\": %d, \"cache_misses\": %d}%s\n"
           r.label r.jobs r.cache r.stats.elapsed_s (modules_per_s r)
           r.stats.ok r.stats.failed r.stats.cache_hits r.stats.cache_misses
           (if i = List.length runs - 1 then "" else ",")))
    runs;
  Buffer.add_string buf "  ],\n";
  let find label = List.find_opt (fun r -> String.equal r.label label) runs in
  let speedup a b =
    match (find a, find b) with
    | Some a, Some b when a.stats.elapsed_s > 0. ->
        b.stats.elapsed_s /. a.stats.elapsed_s
    | _ -> 0.
  in
  Buffer.add_string buf "  \"speedups\": {\n";
  Buffer.add_string buf
    (Printf.sprintf "    \"cached_seq_vs_uncached_seq\": %.3f,\n"
       (speedup "seq_cached" "seq_uncached"));
  Buffer.add_string buf
    (Printf.sprintf "    \"parallel8_vs_seq_cached\": %.3f,\n"
       (speedup "par8_cached" "seq_cached"));
  Buffer.add_string buf
    (Printf.sprintf "    \"parallel8_vs_uncached_seq\": %.3f\n"
       (speedup "par8_cached" "seq_uncached"));
  Buffer.add_string buf "  }\n}\n";
  let oc = open_out path in
  output_string oc (Buffer.contents buf);
  close_out oc

let run_engine ~smoke () =
  let modules = if smoke then 48 else 500 in
  section
    (Printf.sprintf
       "Batch engine: %d-module throughput (sequential / cached / parallel)"
       modules);
  let circuits = engine_workload ~modules in
  let registry = Mae_tech.Registry.create () in
  (* the runtime lens rides the whole bench so the history entry
     carries pause quantiles next to the throughput numbers; it does
     not require telemetry, so the measured spans stay unchanged *)
  ignore (Mae_obs.Runtime.start ());
  let parallel_jobs = if smoke then [ 2 ] else [ 2; 4; 8 ] in
  let baseline_results, seq_uncached =
    time_engine ~label:"seq_uncached" ~jobs:1 ~cache:false ~registry circuits
  in
  let _, seq_cached =
    time_engine ~label:"seq_cached" ~jobs:1 ~cache:true ~registry circuits
  in
  (* one persistent pool sized for the widest run: every parallel pass
     reuses its domains, so the numbers measure scheduling, not
     Domain.spawn *)
  let max_jobs = List.fold_left Stdlib.max 1 parallel_jobs in
  let pool =
    if max_jobs >= 2 then Some (Mae_engine.Pool.create ~domains:(max_jobs - 1))
    else None
  in
  let par_runs =
    List.map
      (fun jobs ->
        let results, run =
          time_engine ?pool
            ~label:(Printf.sprintf "par%d_cached" jobs)
            ~jobs ~cache:true ~registry circuits
        in
        (* determinism cross-check: the parallel run must reproduce the
           sequential baseline slot for slot. *)
        let agree =
          List.for_all2
            (fun a b ->
              match (a, b) with
              | Ok (ra : Mae.Driver.module_report), Ok (rb : Mae.Driver.module_report) ->
                  let areas (r : Mae.Driver.module_report) =
                    List.map
                      (fun (mr : Mae.Driver.method_result) ->
                        match mr.outcome with
                        | Ok o -> (Mae.Methodology.dims o).Mae.Methodology.area
                        | Error _ -> Float.nan)
                      r.results
                  in
                  List.for_all2
                    (fun a b -> Int64.bits_of_float a = Int64.bits_of_float b)
                    (areas ra) (areas rb)
              | Error _, Error _ -> true
              | _ -> false)
            baseline_results results
        in
        if not agree then
          Printf.printf "WARNING: par%d results differ from sequential!\n" jobs;
        run)
      parallel_jobs
  in
  Option.iter Mae_engine.Pool.shutdown pool;
  let runs = (seq_uncached :: seq_cached :: par_runs) in
  let t =
    Table.create
      ~columns:
        [
          ("run", Table.Left);
          ("jobs", Table.Right);
          ("cache", Table.Left);
          ("time (s)", Table.Right);
          ("modules/s", Table.Right);
          ("hits", Table.Right);
          ("misses", Table.Right);
        ]
  in
  List.iter
    (fun r ->
      Table.add_row t
        [
          r.label;
          string_of_int r.jobs;
          (if r.cache then "on" else "off");
          Printf.sprintf "%.3f" r.stats.elapsed_s;
          Printf.sprintf "%.0f" (modules_per_s r);
          string_of_int r.stats.cache_hits;
          string_of_int r.stats.cache_misses;
        ])
    runs;
  Table.print t;
  let ratio a b =
    if b.stats.elapsed_s > 0. then a.stats.elapsed_s /. b.stats.elapsed_s
    else 0.
  in
  Printf.printf
    "kernel cache: sequential %.2fx faster than uncached; host offers %d\n\
     domain(s), so parallel speedup here is bounded by the hardware (the\n\
     pool itself is exercised above and cross-checked against jobs=1).\n"
    (ratio seq_uncached seq_cached)
    (Mae_engine.default_jobs ());
  let path = "BENCH_engine.json" in
  engine_json ~modules ~runs ~path;
  Printf.printf "throughput baseline written to %s\n" path;
  (* the content-addressed estimate store: run the batch cold, then
     repeat it -- the repeat must be answered entirely from the store
     with bit-identical results, or the bench fails *)
  let cas = Mae_db.Cas.create () in
  let cold_results, cold_stats =
    Mae_engine.run_circuits_with_stats ~jobs:1 ~cache:cas ~registry circuits
  in
  let warm_results, warm_stats =
    Mae_engine.run_circuits_with_stats ~jobs:1 ~cache:cas ~registry circuits
  in
  let store_hit_ratio =
    if modules > 0 then
      Float.of_int warm_stats.Mae_engine.store_hits /. Float.of_int modules
    else 0.
  in
  if warm_stats.Mae_engine.store_hits <> modules then begin
    Printf.printf
      "FAIL: repeat batch hit the estimate store %d/%d times (want 100%%)\n"
      warm_stats.Mae_engine.store_hits modules;
    exit 1
  end;
  let store_identical =
    List.for_all2
      (fun a b ->
        match (a, b) with
        | Ok (ra : Mae.Driver.module_report), Ok rb ->
            let bits (r : Mae.Driver.module_report) =
              List.map
                (fun (mr : Mae.Driver.method_result) ->
                  match mr.outcome with
                  | Ok o ->
                      Int64.bits_of_float (Mae.Methodology.dims o).Mae.Methodology.area
                  | Error _ -> 0L)
                r.results
            in
            bits ra = bits rb
        | Error _, Error _ -> true
        | _ -> false)
      cold_results warm_results
  in
  if not store_identical then begin
    print_endline "FAIL: estimate-store answers differ from the computed runs";
    exit 1
  end;
  Printf.printf
    "estimate store: cold %.3fs (%d misses), repeat %.3fs answered 100%%\n\
     from the store, bit-identical\n"
    cold_stats.Mae_engine.elapsed_s cold_stats.Mae_engine.store_misses
    warm_stats.Mae_engine.elapsed_s;
  (* drain the cursor so the history entry's gc object sees the run *)
  Mae_obs.Runtime.stop ();
  (* one timestamped line per bench run, appended so the trajectory
     across commits survives BENCH_engine.json being overwritten *)
  let open Mae_obs.Json in
  Bench_history.History.append ~source:"bench_engine"
    [
      ("smoke", Bool smoke);
      ("workload_modules", Number (Float.of_int modules));
      ( "host_recommended_domains",
        Number (Float.of_int (Mae_engine.default_jobs ())) );
      ( "runs",
        Array
          (List.map
             (fun r ->
               Object
                 [
                   ("label", String r.label);
                   ("jobs", Number (Float.of_int r.jobs));
                   ("cache", Bool r.cache);
                   ("elapsed_s", Number r.stats.elapsed_s);
                   ("modules_per_s", Number (modules_per_s r));
                   ("cache_hits", Number (Float.of_int r.stats.cache_hits));
                   ("cache_misses", Number (Float.of_int r.stats.cache_misses));
                 ])
             runs) );
      ( "estimate_store",
        Object
          [
            ("cold_elapsed_s", Number cold_stats.Mae_engine.elapsed_s);
            ("warm_elapsed_s", Number warm_stats.Mae_engine.elapsed_s);
            ( "cold_misses",
              Number (Float.of_int cold_stats.Mae_engine.store_misses) );
            ( "warm_hits",
              Number (Float.of_int warm_stats.Mae_engine.store_hits) );
            ("warm_hit_ratio", Number store_hit_ratio);
            ("warm_bit_identical", Bool store_identical);
          ] );
    ]

(* --gc-sweep: one row per jobs level -- cached throughput with the
   runtime lens riding along, against the pooled GC pause quantiles the
   lens observed during that run.  Feeds the EXPERIMENTS.md "GC pauses
   vs parallelism" table. *)
let run_gc_sweep ~smoke () =
  let modules = if smoke then 48 else 500 in
  section
    (Printf.sprintf
       "GC pauses vs --jobs throughput (%d modules, kernel cache on)" modules);
  let circuits = engine_workload ~modules in
  let registry = Mae_tech.Registry.create () in
  let t =
    Table.create
      ~columns:
        [
          ("jobs", Table.Right);
          ("modules/s", Table.Right);
          ("pauses", Table.Right);
          ("p50 (us)", Table.Right);
          ("p99 (us)", Table.Right);
          ("max (us)", Table.Right);
          ("gc total (ms)", Table.Right);
        ]
  in
  List.iter
    (fun jobs ->
      ignore (Mae_obs.Runtime.start ());
      let pool =
        if jobs >= 2 then Some (Mae_engine.Pool.create ~domains:(jobs - 1))
        else None
      in
      let _, run =
        time_engine ?pool
          ~label:(Printf.sprintf "gc%d" jobs)
          ~jobs ~cache:true ~registry circuits
      in
      Option.iter Mae_engine.Pool.shutdown pool;
      Mae_obs.Runtime.stop ();
      let us = Printf.sprintf "%.0f" in
      let q p =
        match Mae_obs.Runtime.pause_quantile p with
        | Some v -> us (v *. 1e6)
        | None -> "-"
      in
      let total_s =
        List.fold_left
          (fun acc d -> acc +. d.Mae_obs.Runtime.d_pause_total_s)
          0.
          (Mae_obs.Runtime.domains ())
      in
      Table.add_row t
        [
          string_of_int jobs;
          Printf.sprintf "%.0f" (modules_per_s run);
          string_of_int (Mae_obs.Runtime.pause_count ());
          q 0.5;
          q 0.99;
          (match Mae_obs.Runtime.max_pause_seconds () with
          | Some v -> us (v *. 1e6)
          | None -> "-");
          Printf.sprintf "%.1f" (total_s *. 1e3);
        ];
      (* each row measures its own run, not the process's history *)
      Mae_obs.Runtime.reset ())
    [ 1; 2; 4; 8 ];
  Table.print t

let () =
  let args = List.tl (Array.to_list Sys.argv) in
  let engine_only = List.mem "--engine-only" args in
  let gc_sweep = List.mem "--gc-sweep" args in
  let smoke = List.mem "--smoke" args in
  if gc_sweep then run_gc_sweep ~smoke ()
  else if engine_only then run_engine ~smoke ()
  else begin
    print_endline
      "Reproduction of: Chen & Bushnell, \"A Module Area Estimator for VLSI\n\
       Layout\", 25th DAC, 1988.  Substrates are described in DESIGN.md;\n\
       paper-vs-measured discussion lives in EXPERIMENTS.md.";
    run_table1 ();
    run_table2 ();
    run_figure1 ();
    run_central_row ();
    run_ablation_sharing ();
    run_ablation_row_model ();
    run_floorplan_iterations ();
    run_scaling ();
    run_baselines ();
    run_robustness ();
    run_methodologies ();
    run_routing_check ();
    run_timings ();
    run_engine ~smoke ();
    print_newline ();
    print_endline "done."
  end
