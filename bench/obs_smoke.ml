(* @obs-smoke: the observability gate.

   Runs a 20-module batch with tracing + metrics on, writes both
   artifacts, and asserts (1) the Chrome trace parses and its spans
   nest per lane, (2) the metrics dumps parse and agree with the
   engine's reported totals, (3) telemetry off leaves estimates
   bit-for-bit identical to telemetry on, and (4) the disabled span
   fast path stays a no-op: a million disabled spans must cost
   microseconds-per-call at worst and record nothing.

     dune build @obs-smoke   (also pulled in by @bench-smoke) *)

let fail fmt = Printf.ksprintf (fun msg -> prerr_endline ("obs-smoke: " ^ msg); exit 1) fmt

let check cond fmt =
  Printf.ksprintf
    (fun msg -> if not cond then fail "%s" msg else Printf.printf "ok: %s\n" msg)
    fmt

let workload =
  let flat g = Mae_workload.Bench_circuits.flatten g in
  let shapes =
    [|
      flat (Mae_workload.Generators.multiplier 6);
      flat (Mae_workload.Generators.alu 8);
      flat (Mae_workload.Generators.counter 16);
      Mae_workload.Generators.inverter_chain 100;
      flat (Mae_workload.Generators.ripple_adder 16);
    |]
  in
  List.init 20 (fun i -> shapes.(i mod Array.length shapes))

(* estimate digests: raw IEEE-754 bits over every selected method's
   dimensions, so "equal" means bit-for-bit *)
let digest results =
  List.map
    (function
      | Ok (r : Mae.Driver.module_report) ->
          List.concat_map
            (fun (mr : Mae.Driver.method_result) ->
              match mr.outcome with
              | Ok outcome ->
                  let d = Mae.Methodology.dims outcome in
                  List.map Int64.bits_of_float [ d.area; d.height; d.width ]
              | Error _ -> [])
            r.results
      | Error _ -> [])
    results

(* --- trace well-formedness --- *)

let span_events trace =
  match Mae_obs.Json.member "traceEvents" trace with
  | None -> fail "trace JSON has no traceEvents"
  | Some events -> begin
      match Mae_obs.Json.to_list events with
      | None -> fail "traceEvents is not an array"
      | Some l ->
          List.filter
            (fun e ->
              match Mae_obs.Json.(Option.bind (member "ph" e) to_string) with
              | Some "X" -> true
              | _ -> false)
            l
    end

let field_num name e =
  match Mae_obs.Json.(Option.bind (member name e) to_number) with
  | Some f -> f
  | None -> fail "X event lacks numeric %s" name

(* stack discipline per lane: every event either nests inside the one
   below it on the stack or starts after it ended -- partial overlap is
   a malformed trace. *)
let check_lane_nesting events =
  let lanes = Hashtbl.create 8 in
  List.iter
    (fun e ->
      let tid = int_of_float (field_num "tid" e) in
      let prev = Option.value (Hashtbl.find_opt lanes tid) ~default:[] in
      Hashtbl.replace lanes tid ((field_num "ts" e, field_num "dur" e) :: prev))
    events;
  Hashtbl.iter
    (fun tid spans ->
      (* ts ascending, duration descending: an enclosing span that
         starts the same microsecond as its child must come first *)
      let spans =
        List.sort
          (fun (t1, d1) (t2, d2) ->
            match Float.compare t1 t2 with
            | 0 -> Float.compare d2 d1
            | c -> c)
          (List.rev spans)
      in
      let tolerance = 1.0 (* µs: span close order vs clock granularity *) in
      let stack = ref [] in
      List.iter
        (fun (ts, dur) ->
          let rec unwind () =
            match !stack with
            | (pts, pdur) :: rest when ts >= pts +. pdur -. tolerance ->
                stack := rest;
                ignore pdur;
                unwind ()
            | _ -> ()
          in
          unwind ();
          begin
            match !stack with
            | (pts, pdur) :: _ ->
                if ts +. dur > pts +. pdur +. tolerance then
                  fail
                    "lane %d: span at %.1fus (dur %.1fus) partially overlaps \
                     its parent (%.1fus + %.1fus)"
                    tid ts dur pts pdur
            | [] -> ()
          end;
          stack := (ts, dur) :: !stack)
        spans)
    lanes

let run_batch ~jobs =
  Mae_engine.run_circuits_with_stats ~jobs
    ~registry:(Mae_tech.Registry.create ())
    workload

let () =
  (* (4) first, before anything enables telemetry: the disabled fast
     path must not record and must stay in nanoseconds territory. *)
  Mae_obs.set_enabled false;
  let calls = 1_000_000 in
  let t0 = Mae_obs.Clock.monotonic () in
  for _ = 1 to calls do
    Mae_obs.Span.with_ ~name:"noop" (fun () -> ())
  done;
  let disabled_s = Mae_obs.Clock.monotonic () -. t0 in
  check (disabled_s < 0.25)
    "disabled span fast path: %d calls in %.1f ms (< 250 ms budget)" calls
    (disabled_s *. 1000.);
  check
    (List.length (Mae_obs.Span.events ()) = 0)
    "disabled spans record nothing";

  (* (3) bit-for-bit: telemetry must never change an estimate *)
  let off_results, _ = run_batch ~jobs:2 in
  Mae_obs.set_enabled true;
  Mae_obs.Span.reset ();
  let on_results, stats = run_batch ~jobs:2 in
  check
    (digest off_results = digest on_results)
    "telemetry on/off estimates are bit-for-bit identical (%d modules)"
    stats.Mae_engine.modules;

  (* (1) trace artifact *)
  let trace_path = "obs_smoke_trace.json" in
  (match Mae_obs.Trace.write_chrome ~path:trace_path with
  | Ok () -> ()
  | Error e -> fail "trace write failed: %s" e);
  let trace =
    match Mae_obs.Json.parse (In_channel.with_open_text trace_path In_channel.input_all) with
    | Ok t -> t
    | Error e -> fail "trace JSON unparseable: %s" e
  in
  let events = span_events trace in
  check (List.length events > 0) "trace has %d spans" (List.length events);
  let spans_with_prefix prefix =
    let np = String.length prefix in
    List.filter
      (fun e ->
        match Mae_obs.Json.(Option.bind (member "name" e) to_string) with
        | Some n -> String.length n >= np && String.equal (String.sub n 0 np) prefix
        | None -> false)
      events
  in
  let stage_spans = spans_with_prefix "driver." in
  (* 3 in-driver stages (validate/expand/stats) + the driver.module
     parent, per module; the estimators themselves trace as
     method.<name> spans, one per selected methodology (3 defaults) *)
  check
    (List.length stage_spans >= 4 * stats.Mae_engine.modules)
    "every module traced its pipeline stages (%d driver spans)"
    (List.length stage_spans);
  let method_spans = spans_with_prefix "method." in
  check
    (List.length method_spans >= 3 * stats.Mae_engine.modules)
    "every module traced its selected methodologies (%d method spans)"
    (List.length method_spans);
  check_lane_nesting events;
  check true "spans nest cleanly per domain lane";

  (* (2) metrics artifacts *)
  let prom_path = "obs_smoke_metrics.prom" in
  (match Mae_obs.Metrics.write_prometheus ~path:prom_path with
  | Ok () -> ()
  | Error e -> fail "metrics write failed: %s" e);
  let prom = In_channel.with_open_text prom_path In_channel.input_all in
  String.split_on_char '\n' prom
  |> List.iter (fun line ->
         if
           String.length line > 0
           && (not (String.length line >= 1 && Char.equal line.[0] '#'))
           && not (String.contains line ' ')
         then fail "malformed metrics line %S" line);
  let contains haystack needle =
    let nh = String.length haystack and nn = String.length needle in
    let rec at i =
      i + nn <= nh
      && (String.equal (String.sub haystack i nn) needle || at (i + 1))
    in
    at 0
  in
  check
    (contains prom "mae_kernel_cache_hits_total"
    && contains prom "mae_engine_modules_total"
    && contains prom "mae_engine_queue_wait_seconds")
    "prometheus dump parses line-wise and exposes cache + engine metrics";
  (* counters agree with the engine's own report *)
  let counter name =
    match Mae_obs.Metrics.find_counter name with
    | Some c -> Mae_obs.Metrics.counter_value c
    | None -> fail "counter %s not registered" name
  in
  check
    (counter "mae_engine_modules_total" = 2 * stats.Mae_engine.modules
    && counter "mae_engine_modules_ok_total" = 2 * stats.Mae_engine.ok
    && counter "mae_engine_modules_failed_total" = 0)
    "registry counters agree with engine stats (2 batches of %d)"
    stats.Mae_engine.modules;
  (match Mae_obs.Json.parse (Mae_obs.Metrics.to_json ()) with
  | Ok _ -> ()
  | Error e -> fail "metrics JSON dump unparseable: %s" e);
  check true "metrics JSON dump parses";

  (* every exposed family carries # HELP and # TYPE metadata *)
  let count_prefix prefix =
    String.split_on_char '\n' prom
    |> List.filter (fun line ->
           String.length line >= String.length prefix
           && String.equal (String.sub line 0 (String.length prefix)) prefix)
    |> List.length
  in
  let helps = count_prefix "# HELP " and types = count_prefix "# TYPE " in
  check
    (helps > 0 && helps = types)
    "every metric family has # HELP and # TYPE (%d families)" helps;
  check
    (contains prom "# TYPE mae_engine_modules_total counter"
    && contains prom "# TYPE mae_engine_module_seconds histogram"
    && contains prom "# TYPE mae_engine_module_seconds_summary summary")
    "counter/histogram/summary TYPE lines present";

  (* (5) sketch accuracy: a synthetic stream's quantiles must sit
     within the advertised rank-error bound of the exact sorted pool *)
  let sk = Mae_obs.Sketch.create "mae_obs_smoke_sketch_seconds_summary" ~eps:0.005 in
  let n = 50_000 in
  let state = ref 0x1234ABCD in
  let samples =
    (* drand48's LCG: full 48-bit state, no float rounding artifacts *)
    List.init n (fun _ ->
        state := ((!state * 25214903917) + 11) land 0xFFFFFFFFFFFF;
        float_of_int ((!state lsr 16) land 0xFFFFF) /. 1e4)
  in
  List.iter (Mae_obs.Sketch.observe sk) samples;
  let sorted = Array.of_list (List.sort Float.compare samples) in
  let bound = Mae_obs.Sketch.rank_error_bound sk ~n ~domains:1 in
  List.iter
    (fun q ->
      match Mae_obs.Sketch.quantile sk q with
      | None -> fail "sketch empty at q=%g" q
      | Some v ->
          let below = ref 0 and at_or_below = ref 0 in
          Array.iter
            (fun x ->
              if x < v then incr below;
              if x <= v then incr at_or_below)
            sorted;
          let target = q *. float_of_int n in
          let dist =
            if target < float_of_int !below then float_of_int !below -. target
            else if target > float_of_int !at_or_below then
              target -. float_of_int !at_or_below
            else 0.
          in
          check (dist <= bound)
            "sketch q=%g rank error %.1f within bound %.1f (n=%d)" q dist
            bound n)
    [ 0.5; 0.9; 0.99; 0.999 ];
  check
    (contains (Mae_obs.Metrics.to_prometheus ())
       "mae_engine_module_seconds_summary{quantile=")
    "engine latency sketch rides along in the /metrics exposition";

  (* (6) registry-time name lint: anything outside mae_[a-z0-9_]+ is
     rejected at registration, for metrics and sketches alike *)
  let rejects f = match f () with _ -> false | exception Invalid_argument _ -> true in
  check
    (rejects (fun () -> Mae_obs.Metrics.counter "bad name!")
    && rejects (fun () -> Mae_obs.Metrics.gauge "engine_modules")
    && rejects (fun () -> Mae_obs.Sketch.create "mae_Upper_seconds"))
    "metric and sketch name lint rejects non-mae_[a-z0-9_]+ names";

  (* (7) the runtime lens: gc.* slices land in the trace export, the
     /runtimez document is well-shaped, and the labelled pause family
     obeys the same lints as every other metric *)
  check (Mae_obs.Runtime.start ()) "runtime lens starts";
  let _ = run_batch ~jobs:2 in
  (* churn enough to guarantee pauses even on a fast host *)
  let junk = ref [] in
  for i = 1 to 400_000 do
    junk := (i, float_of_int i) :: !junk;
    if i mod 10_000 = 0 then junk := []
  done;
  ignore (Sys.opaque_identity !junk);
  Gc.minor ();
  ignore (Mae_obs.Runtime.poll ());
  let doc = Mae_obs.Runtime.to_json () in
  (match Mae_obs.Json.member "enabled" doc with
  | Some (Mae_obs.Json.Bool true) -> ()
  | _ -> fail "/runtimez document lacks enabled: true");
  (match Mae_obs.Json.member "domains" doc with
  | Some (Mae_obs.Json.Array (_ :: _)) -> ()
  | _ -> fail "/runtimez document has no domains");
  (match
     Option.bind (Mae_obs.Json.member "pause" doc)
       (Mae_obs.Json.member "count")
   with
  | Some (Mae_obs.Json.Number n) when n > 0. -> ()
  | _ -> fail "/runtimez pause.count is zero after an allocation storm");
  check
    (Option.is_some (Mae_obs.Json.member "process" doc))
    "/runtimez is well-shaped (enabled, domains, pauses, process)";
  Mae_obs.Runtime.stop ();
  let gc_trace_path = "obs_smoke_trace_gc.json" in
  (match Mae_obs.Trace.write_chrome ~path:gc_trace_path with
  | Ok () -> ()
  | Error e -> fail "gc trace write failed: %s" e);
  let gc_trace =
    match
      Mae_obs.Json.parse
        (In_channel.with_open_text gc_trace_path In_channel.input_all)
    with
    | Ok t -> t
    | Error e -> fail "gc trace JSON unparseable: %s" e
  in
  let gc_slices =
    List.filter
      (fun e ->
        match Mae_obs.Json.(Option.bind (member "name" e) to_string) with
        | Some n -> String.length n >= 3 && String.equal (String.sub n 0 3) "gc."
        | None -> false)
      (span_events gc_trace)
  in
  check
    (List.length gc_slices > 0)
    "trace export interleaves %d gc.* slices with the pipeline spans"
    (List.length gc_slices);
  check
    (List.exists
       (fun e ->
         match Mae_obs.Json.(Option.bind (member "cat" e) to_string) with
         | Some "gc" -> true
         | _ -> false)
       gc_slices)
    "gc slices carry their own trace category";
  let prom_gc = Mae_obs.Metrics.to_prometheus () in
  check
    (contains prom_gc "mae_gc_pause_seconds_summary{domain=\""
    && contains prom_gc "# TYPE mae_gc_pause_seconds_summary summary"
    && contains prom_gc "# TYPE mae_gc_minor_collections_total counter"
    && contains prom_gc "# TYPE mae_process_domains gauge")
    "mae_gc_*/mae_process_* families exported with TYPE metadata";
  let count_in prefix =
    String.split_on_char '\n' prom_gc
    |> List.filter (fun line ->
           String.length line >= String.length prefix
           && String.equal (String.sub line 0 (String.length prefix)) prefix)
    |> List.length
  in
  check
    (count_in "# HELP " = count_in "# TYPE ")
    "HELP/TYPE parity holds with the labelled gc family present";
  check
    (rejects (fun () ->
         Mae_obs.Sketch.create
           ~labels:[ ("Domain", "0") ]
           "mae_bad_label_seconds_summary")
    && rejects (fun () ->
           Mae_obs.Sketch.create
             ~labels:[ ("d", "a\"b") ]
             "mae_bad_value_seconds_summary")
    && rejects (fun () ->
           Mae_obs.Sketch.create
             ~labels:[ ("d", "1"); ("d", "2") ]
             "mae_dup_label_seconds_summary"))
    "sketch label lint rejects bad keys, quoted values and duplicates";

  Mae_obs.set_enabled false;
  print_endline "obs-smoke: all checks passed"
