(* Stage-level profiler for Driver.run_circuit: times the full driver
   with the kernel cache off and on, then each pipeline stage in
   isolation (stats, validation, expansion, the two estimators) over the
   engine benchmark's workload shape.  The standalone stage rows each
   recompute their own Stats.compute, so they overcount relative to the
   stats-sharing driver; compare rows to each other, not to the total.

     dune exec bench/profile.exe *)

let process = Mae_tech.Builtin.nmos25

let shapes =
  [|
    Mae_workload.Bench_circuits.flatten (Mae_workload.Generators.multiplier 6);
    Mae_workload.Bench_circuits.flatten (Mae_workload.Generators.multiplier 8);
    Mae_workload.Bench_circuits.flatten (Mae_workload.Generators.alu 8);
    Mae_workload.Bench_circuits.flatten (Mae_workload.Generators.counter 16);
    Mae_workload.Generators.inverter_chain 200;
    Mae_workload.Bench_circuits.flatten (Mae_workload.Generators.ripple_adder 16);
    Mae_workload.Generators.pass_chain 300;
    Mae_workload.Bench_circuits.flatten (Mae_workload.Generators.multiplier 7);
  |]

let workload = List.init 200 (fun i -> shapes.(i mod Array.length shapes))

let time label f =
  let t0 = Unix.gettimeofday () in
  let r = f () in
  Printf.printf "%-28s %8.1f ms\n%!" label ((Unix.gettimeofday () -. t0) *. 1000.);
  r

let () =
  let registry = Mae_tech.Registry.create () in
  ignore
    (time "full driver (cache off)" (fun () ->
         Mae_prob.Kernel_cache.set_enabled false;
         List.map (Mae.Driver.run_circuit ~registry) workload));
  Mae_prob.Kernel_cache.set_enabled true;
  Mae_prob.Kernel_cache.clear ();
  ignore
    (time "full driver (cache on)" (fun () ->
         List.map (Mae.Driver.run_circuit ~registry) workload));
  ignore
    (time "stats.compute" (fun () ->
         List.map (fun c -> Mae_netlist.Stats.compute c process) workload));
  ignore
    (time "validate" (fun () ->
         List.map (fun c -> Mae_netlist.Validate.check c process) workload));
  ignore
    (time "expand (celllib)" (fun () ->
         List.map
           (fun (c : Mae_netlist.Circuit.t) ->
             match Mae_celllib.Cmos_lib.for_technology c.technology with
             | None -> None
             | Some lib -> (
                 match Mae_celllib.Expand.circuit lib c with
                 | Ok e -> Some e
                 | Error _ -> None))
           workload));
  ignore
    (time "fullcustom both" (fun () ->
         List.map (fun c -> Mae.Fullcustom.estimate_both c process) workload));
  ignore
    (time "row_select candidates" (fun () ->
         List.map (fun c -> Mae.Row_select.candidates c process) workload));
  Mae_prob.Kernel_cache.set_enabled false;
  ignore
    (time "stdcell auto+sweep (uncached)" (fun () ->
         List.map
           (fun c ->
             let auto = Mae.Stdcell.estimate_auto c process in
             let sweep =
               Mae.Stdcell.sweep ~rows:(Mae.Row_select.candidates c process) c
                 process
             in
             (auto, sweep))
           workload));
  Mae_prob.Kernel_cache.set_enabled true;
  Mae_prob.Kernel_cache.clear ();
  ignore
    (time "stdcell auto+sweep (cached)" (fun () ->
         List.map
           (fun c ->
             let auto = Mae.Stdcell.estimate_auto c process in
             let sweep =
               Mae.Stdcell.sweep ~rows:(Mae.Row_select.candidates c process) c
                 process
             in
             (auto, sweep))
           workload))
