(* Stage-level profiler for Driver.run_circuit, measured from the
   inside: Mae_obs spans recorded by the driver itself (one span per
   Figure-1 stage per module) are aggregated into a flame summary whose
   per-stage self times are disjoint by construction -- the stage rows
   sum to the pipeline total, no stage is recomputed outside the
   stats-sharing driver.  Run once with the kernel cache off and once
   with it on to see where the cache moves the time.

     dune exec bench/profile.exe *)

let shapes =
  [|
    Mae_workload.Bench_circuits.flatten (Mae_workload.Generators.multiplier 6);
    Mae_workload.Bench_circuits.flatten (Mae_workload.Generators.multiplier 8);
    Mae_workload.Bench_circuits.flatten (Mae_workload.Generators.alu 8);
    Mae_workload.Bench_circuits.flatten (Mae_workload.Generators.counter 16);
    Mae_workload.Generators.inverter_chain 200;
    Mae_workload.Bench_circuits.flatten (Mae_workload.Generators.ripple_adder 16);
    Mae_workload.Generators.pass_chain 300;
    Mae_workload.Bench_circuits.flatten (Mae_workload.Generators.multiplier 7);
  |]

let workload = List.init 200 (fun i -> shapes.(i mod Array.length shapes))

let run_pass ~label ~cache ~registry =
  Mae_prob.Kernel_cache.clear ();
  Mae_prob.Kernel_cache.set_enabled cache;
  Mae_obs.Span.reset ();
  let t0 = Unix.gettimeofday () in
  List.iter (fun c -> ignore (Mae.Driver.run_circuit ~registry c)) workload;
  let total_ms = (Unix.gettimeofday () -. t0) *. 1000. in
  let module_total_ms =
    List.fold_left
      (fun acc (r : Mae_obs.Trace.flame_row) ->
        if String.equal r.span_name "driver.module" then acc +. r.total_s *. 1e3
        else acc)
      0. (Mae_obs.Trace.flame ())
  in
  Printf.printf "\n== %s: %d modules in %8.1f ms ==\n%s" label
    (List.length workload) total_ms
    (Mae_obs.Trace.flame_summary ());
  Printf.printf
    "(driver.module spans cover %.1f ms of the %.1f ms pass; the rest is\n\
    \ the loop around the driver.  driver.module's own self time is the\n\
    \ per-module dispatch cost; every stage row is measured inside the\n\
    \ stats-sharing driver, so rows are a true breakdown, not standalone\n\
    \ recomputation.)\n"
    module_total_ms total_ms

let () =
  let registry = Mae_tech.Registry.create () in
  Mae_obs.set_enabled true;
  run_pass ~label:"full driver, kernel cache off" ~cache:false ~registry;
  run_pass ~label:"full driver, kernel cache on" ~cache:true ~registry;
  Mae_prob.Kernel_cache.set_enabled true;
  Mae_obs.set_enabled false;
  Mae_obs.reset ()
