(* Stage-level profiler for Driver.run_circuit, measured from the
   inside: Mae_obs spans recorded by the driver itself (one span per
   Figure-1 stage per module, one method.<name> span per selected
   methodology) are aggregated into a flame summary whose per-stage
   self times are disjoint by construction -- the stage rows sum to
   the pipeline total, no stage is recomputed outside the
   stats-sharing driver.  Run once with the kernel cache off and once
   with it on to see where the cache moves the time; a third pass runs
   every registered methodology (baselines included) so the per-method
   cost of the full registry is on record.

     dune exec bench/profile.exe
     dune exec bench/profile.exe -- --json   # also append the passes
                                             # to BENCH_history.jsonl *)

(* link the baseline estimators into the registry *)
let () = Mae_baselines.Methods.ensure_registered ()

let shapes =
  [|
    Mae_workload.Bench_circuits.flatten (Mae_workload.Generators.multiplier 6);
    Mae_workload.Bench_circuits.flatten (Mae_workload.Generators.multiplier 8);
    Mae_workload.Bench_circuits.flatten (Mae_workload.Generators.alu 8);
    Mae_workload.Bench_circuits.flatten (Mae_workload.Generators.counter 16);
    Mae_workload.Generators.inverter_chain 200;
    Mae_workload.Bench_circuits.flatten (Mae_workload.Generators.ripple_adder 16);
    Mae_workload.Generators.pass_chain 300;
    Mae_workload.Bench_circuits.flatten (Mae_workload.Generators.multiplier 7);
  |]

let workload = List.init 200 (fun i -> shapes.(i mod Array.length shapes))

let run_pass ~label ~cache ~methods ~registry =
  Mae_prob.Kernel_cache.clear ();
  Mae_prob.Kernel_cache.set_enabled cache;
  Mae_obs.Span.reset ();
  let t0 = Mae_obs.Clock.monotonic () in
  List.iter
    (fun c -> ignore (Mae.Driver.run_circuit ~registry ~methods c))
    workload;
  let total_ms = (Mae_obs.Clock.monotonic () -. t0) *. 1000. in
  let rows = Mae_obs.Trace.flame () in
  let module_total_ms =
    List.fold_left
      (fun acc (r : Mae_obs.Trace.flame_row) ->
        if String.equal r.span_name "driver.module" then acc +. r.total_s *. 1e3
        else acc)
      0. rows
  in
  Printf.printf "\n== %s: %d modules in %8.1f ms ==\n%s" label
    (List.length workload) total_ms
    (Mae_obs.Trace.flame_summary ());
  Printf.printf
    "(driver.module spans cover %.1f ms of the %.1f ms pass; the rest is\n\
    \ the loop around the driver.  driver.module's own self time is the\n\
    \ per-module dispatch cost; method.<name> rows price each selected\n\
    \ methodology; every row is measured inside the stats-sharing driver,\n\
    \ so rows are a true breakdown, not standalone recomputation.)\n"
    module_total_ms total_ms;
  (label, cache, total_ms, rows)

let stage_json (r : Mae_obs.Trace.flame_row) =
  let open Mae_obs.Json in
  Object
    [
      ("span", String r.span_name);
      ("calls", Number (Float.of_int r.calls));
      ("total_ms", Number (r.total_s *. 1e3));
      ("self_ms", Number (r.self_s *. 1e3));
    ]

(* the method.<name> rows again, keyed by methodology name, so the
   trajectory file can chart per-estimator cost directly *)
let per_method_json rows =
  let open Mae_obs.Json in
  Object
    (List.filter_map
       (fun (r : Mae_obs.Trace.flame_row) ->
         let prefix = "method." in
         let np = String.length prefix in
         if
           String.length r.span_name > np
           && String.equal (String.sub r.span_name 0 np) prefix
         then
           Some
             ( String.sub r.span_name np (String.length r.span_name - np),
               stage_json r )
         else None)
       rows)

let pass_json (label, cache, total_ms, rows) =
  let open Mae_obs.Json in
  Object
    [
      ("label", String label);
      ("cache", Bool cache);
      ("total_ms", Number total_ms);
      ("stages", Array (List.map stage_json rows));
      ("per_method", per_method_json rows);
    ]

let () =
  let json = Array.to_list Sys.argv |> List.mem "--json" in
  let registry = Mae_tech.Registry.create () in
  Mae_obs.set_enabled true;
  ignore (Mae_obs.Runtime.start ());
  let off =
    run_pass ~label:"full driver, kernel cache off" ~cache:false
      ~methods:[ "default" ] ~registry
  in
  let on =
    run_pass ~label:"full driver, kernel cache on" ~cache:true
      ~methods:[ "default" ] ~registry
  in
  let all =
    run_pass ~label:"all methodologies, kernel cache on" ~cache:true
      ~methods:[ "all" ] ~registry
  in
  Mae_prob.Kernel_cache.set_enabled true;
  Mae_obs.Runtime.stop ();
  Mae_obs.set_enabled false;
  Mae_obs.reset ();
  if json then
    let open Mae_obs.Json in
    Bench_history.History.append ~source:"profile"
      [
        ("workload_modules", Number (Float.of_int (List.length workload)));
        ("passes", Array [ pass_json off; pass_json on; pass_json all ]);
      ]
