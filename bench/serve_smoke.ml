(* @serve-smoke: the serve-daemon gate.

   Forks a Mae_serve daemon (TCP port 0 on loopback for both planes,
   access log + final metrics/trace dumps in the sandbox cwd), then:

   1. sends 120 estimation requests over one request-plane connection
      -- 100 valid modules, 10 malformed JSON lines, 5 protocol errors,
      5 modules on an unknown process -- and tallies ok/failed
      client-side while checking every response's [seq] is monotone;
   2. scrapes GET /metrics and checks the request/ok/failed counters
      against the client tally (and /healthz against the same numbers),
      plus the latency-sketch summary (count, ordered quantiles,
      request-id exemplars);
   3. checks GET /slo reports both objectives healthy under this
      friendly load and that GET /statusz renders;
   4. reads the access log back: one serve.request JSON record per
      request, request ids r1..rN in order, every line parseable;
   5. drives a second daemon (tiny 5 ms latency objective + injected
      per-request sleeps) into overload and asserts the fast-window
      burn rate rises above 1 and /healthz flips to 503/degraded;
   6. SIGTERMs the daemons and confirms a clean drain: exit code 0, a
      serve.shutdown record, and a final metrics dump whose counters
      still match;
   7. asserts estimates are bit-for-bit identical with logging off and
      with logging at debug -- the logger must never touch a result;
   8. exercises the content-addressed estimate store: a repeated
      request answers cached:true with byte-identical modules and bumps
      mae_estimate_cache_hits_total; a slow client dribbling its
      request one byte at a time is framed whole; a third daemon
      started on a journal written by the parent process answers its
      very first request from disk and flushes a Store snapshot on
      SIGTERM;
   9. exercises the HTTP dialect of the request plane: keep-alive GETs
      on the obs plane, two POST /estimate requests on one connection
      (the second with Connection: close, which must be honored), and
      a good-bad-good pipelined line burst where a malformed request
      and a 9 MiB oversized line each answer their typed error while
      the requests queued behind them still answer, in order;
  10. before the overload phase, pipelines a 40-request burst at the
      second daemon (queue watermark 2) and asserts deterministic
      admission control: every response arrives in request order, the
      overflow answers ok:false + retry_after_s, the shed count matches
      mae_serve_requests_shed_total, and sheds burn neither SLO.

     dune build @serve-smoke   (also pulled in by @bench-smoke) *)

module Json = Mae_obs.Json

let fail fmt =
  Printf.ksprintf
    (fun msg ->
      prerr_endline ("serve-smoke: " ^ msg);
      exit 1)
    fmt

let check cond fmt =
  Printf.ksprintf
    (fun msg ->
      if not cond then fail "%s" msg else Printf.printf "ok: %s\n%!" msg)
    fmt

let access_log_path = "serve_smoke_access.log"
let metrics_path = "serve_smoke_metrics.json"
let trace_path = "serve_smoke_trace.json"
let journal_path = "serve_smoke_store.journal"
let store_db_path = "serve_smoke_store.db"

(* --- the request corpus --- *)

let hdl_of circuit = Mae_hdl.Printer.to_string circuit

let valid_hdl i =
  let g = Mae_workload.Generators.counter ~technology:"nmos25" (4 + (i mod 5)) in
  hdl_of g

let unknown_process_hdl i =
  let g =
    Mae_workload.Generators.counter ~technology:"unobtanium" (4 + (i mod 3))
  in
  hdl_of g

type expected = Expect_ok | Expect_failed

(* 120 requests: 100 valid, 10 malformed JSON, 5 without "hdl",
   5 on an unknown process.  Malformed lines still get a response
   (ok:false), so every request yields exactly one response line. *)
let corpus =
  List.concat
    [
      List.init 100 (fun i ->
          ( Json.encode
              (Json.Object
                 [
                   ("id", Json.Number (Float.of_int i));
                   ("hdl", Json.String (valid_hdl i));
                 ]),
            Expect_ok ));
      List.init 10 (fun i ->
          (Printf.sprintf "{\"id\": %d, \"hdl\": " i, Expect_failed));
      List.init 5 (fun i ->
          ( Json.encode (Json.Object [ ("id", Json.Number (Float.of_int i)) ]),
            Expect_failed ));
      List.init 5 (fun i ->
          ( Json.encode
              (Json.Object [ ("hdl", Json.String (unknown_process_hdl i)) ]),
            Expect_failed ));
    ]

(* --- tiny HTTP client for the obs plane --- *)

let read_all fd =
  let buf = Buffer.create 4096 in
  let chunk = Bytes.create 65536 in
  let rec go () =
    match Unix.read fd chunk 0 (Bytes.length chunk) with
    | 0 -> Buffer.contents buf
    | n ->
        Buffer.add_subbytes buf chunk 0 n;
        go ()
  in
  go ()

let http_get ~port path =
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, port));
  let req = Printf.sprintf "GET %s HTTP/1.0\r\n\r\n" path in
  ignore (Unix.write_substring fd req 0 (String.length req));
  let raw = read_all fd in
  Unix.close fd;
  let split_at marker =
    let nm = String.length marker and nr = String.length raw in
    let rec at i =
      if i + nm > nr then None
      else if String.equal (String.sub raw i nm) marker then
        Some (String.sub raw 0 i, String.sub raw (i + nm) (nr - i - nm))
      else at (i + 1)
    in
    at 0
  in
  match split_at "\r\n\r\n" with
  | Some (headers, body) -> (headers, body)
  | None -> (
      match split_at "\n\n" with
      | Some (headers, body) -> (headers, body)
      | None -> fail "HTTP response to %s has no header/body split" path)

let prom_value body name =
  let lines = String.split_on_char '\n' body in
  let rec find = function
    | [] -> fail "metric %s not in /metrics" name
    | line :: rest -> (
        match String.split_on_char ' ' line with
        | [ n; v ] when String.equal n name -> (
            match float_of_string_opt v with
            | Some f -> f
            | None -> fail "metric %s has unparseable value %S" name v)
        | _ -> find rest)
  in
  find lines

(* percentile from cumulative Prometheus buckets: smallest bound whose
   cumulative count covers the rank *)
let prom_histogram_percentile body name p =
  let prefix = name ^ "_bucket{le=\"" in
  let np = String.length prefix in
  let buckets =
    List.filter_map
      (fun line ->
        if String.length line > np && String.equal (String.sub line 0 np) prefix
        then
          match String.index_from_opt line np '"' with
          | None -> None
          | Some q -> (
              let le = String.sub line np (q - np) in
              match String.rindex_opt line ' ' with
              | None -> None
              | Some sp ->
                  let count =
                    String.sub line (sp + 1) (String.length line - sp - 1)
                  in
                  Some
                    ( (if String.equal le "+Inf" then Float.infinity
                       else float_of_string le),
                      float_of_string count ))
        else None)
      (String.split_on_char '\n' body)
  in
  let total = prom_value body (name ^ "_count") in
  let rank = p *. total in
  let rec scan = function
    | [] -> Float.nan
    | (le, cum) :: rest -> if cum >= rank then le else scan rest
  in
  scan buckets

(* --- bit-for-bit: logging must never change an estimate --- *)

let digest results =
  List.map
    (function
      | Ok (r : Mae.Driver.module_report) ->
          List.concat_map
            (fun (mr : Mae.Driver.method_result) ->
              match mr.outcome with
              | Ok outcome ->
                  let d = Mae.Methodology.dims outcome in
                  List.map Int64.bits_of_float [ d.area; d.height; d.width ]
              | Error _ -> [])
            r.results
      | Error _ -> [])
    results

let check_log_invariance () =
  let registry = Mae_tech.Registry.create () in
  let batch =
    List.init 12 (fun i ->
        Mae_workload.Bench_circuits.flatten
          (Mae_workload.Generators.counter (8 + i)))
  in
  Mae_obs.Log.set_threshold None;
  let off = Mae_engine.run_circuits ~jobs:2 ~registry batch in
  (match Mae_obs.Log.set_sink_file "serve_smoke_debug.log" with
  | Ok () -> ()
  | Error e -> fail "debug log sink: %s" e);
  Mae_obs.Log.set_threshold (Some Mae_obs.Log.Debug);
  let on = Mae_engine.run_circuits ~jobs:2 ~registry batch in
  Mae_obs.Log.set_threshold None;
  Mae_obs.Log.close ();
  check (digest off = digest on)
    "estimates bit-for-bit identical with logging off and at debug";
  let debug_lines =
    In_channel.with_open_text "serve_smoke_debug.log" In_channel.input_lines
  in
  check
    (List.exists
       (fun l ->
         match Json.parse l with
         | Ok doc -> Json.member "event" doc = Some (Json.String "driver.module")
         | Error _ -> false)
       debug_lines)
    "debug level emits driver.module records (%d lines)"
    (List.length debug_lines)

(* --- the daemon lifecycle --- *)

(* the module pre-estimated into the journal by the parent and asked of
   the warm daemon: its very first request must answer from disk *)
let warm_hdl = hdl_of (Mae_workload.Generators.counter ~technology:"nmos25" 11)

(* Estimate [warm_hdl] into a fresh journal, in-process (jobs:1 spawns
   no domain, so the daemon forks below stay legal).  The daemon replays
   this file at startup and must answer the same module without
   computing. *)
let prepopulate_journal () =
  if Sys.file_exists journal_path then Sys.remove journal_path;
  let registry = Mae_tech.Registry.create () in
  let cas = Mae_db.Cas.create () in
  (match Mae_db.Cas.open_journal cas ~path:journal_path with
  | Ok (0, 0) -> ()
  | Ok (l, s) -> fail "fresh journal loaded %d skipped %d" l s
  | Error e -> fail "open_journal: %s" e);
  (match Mae_engine.run_string ~jobs:1 ~cache:cas ~registry warm_hdl with
  | Ok [ Ok _ ] -> ()
  | Ok _ -> fail "prepopulate: expected one Ok module"
  | Error _ -> fail "prepopulate: driver error");
  Mae_db.Cas.close_journal cas;
  check
    (Mae_db.Cas.length cas = 1)
    "parent pre-estimated 1 module into %s" journal_path

let spawn_server ?(overload = false) ?journal ?store_out () =
  let r, w = Unix.pipe () in
  flush stdout;
  flush stderr;
  match Unix.fork () with
  | 0 ->
      (* child: become the daemon; announce bound ports on the pipe *)
      Unix.close r;
      let main = (not overload) && journal = None in
      if not main then Mae_obs.Log.set_threshold None
      else begin
        Mae_obs.Log.set_threshold (Some Mae_obs.Log.Info);
        match Mae_obs.Log.set_sink_file access_log_path with
        | Ok () -> ()
        | Error e -> fail "access log: %s" e
      end;
      let registry = Mae_tech.Registry.create () in
      let config =
        {
          (Mae_serve.default_config ~registry
             ~request_addr:(Mae_serve.Tcp { host = "127.0.0.1"; port = 0 }))
          with
          Mae_serve.obs_addr = Some (Mae_serve.Tcp { host = "127.0.0.1"; port = 0 });
          metrics_out = (if main then Some metrics_path else None);
          trace_out = (if main then Some trace_path else None);
          store_journal = journal;
          store_out;
          (* the overload daemon honours an injected per-request sleep
             and judges latency against a 5 ms objective, so a few
             slow requests deterministically exhaust the fast-window
             budget *)
          inject_sleep_field = overload;
          (* a tiny watermark so a pipelined burst trips admission
             control deterministically in the shed phase *)
          queue_watermark = (if overload then 2 else 256);
          slo =
            (if overload then
               {
                 Mae_serve.default_slo with
                 Mae_serve.latency_threshold_s = 0.005;
                 latency_target = 0.9;
                 min_events = 5;
               }
             else Mae_serve.default_slo);
          on_ready =
            (fun ~request_addr ~obs_addr ->
              let port = function
                | Mae_serve.Tcp { port; _ } -> port
                | Mae_serve.Unix_sock _ -> 0
              in
              let line =
                Printf.sprintf "%d %d\n" (port request_addr)
                  (match obs_addr with Some a -> port a | None -> 0)
              in
              ignore (Unix.write_substring w line 0 (String.length line));
              Unix.close w);
        }
      in
      (match Mae_serve.run config with
      | Ok () -> Unix._exit 0
      | Error e ->
          prerr_endline ("serve-smoke child: " ^ e);
          Unix._exit 1)
  | pid ->
      Unix.close w;
      let buf = Bytes.create 64 in
      let n = Unix.read r buf 0 64 in
      Unix.close r;
      if n = 0 then fail "server died before announcing its ports";
      let ports = String.trim (Bytes.sub_string buf 0 n) in
      (match String.split_on_char ' ' ports with
      | [ req; obs ] -> (pid, int_of_string req, int_of_string obs)
      | _ -> fail "bad ready line %S" ports)

let () =
  (* estimate one module into the journal first: jobs:1 spawns no
     domain, so the forks below stay legal under OCaml 5 *)
  prepopulate_journal ();
  (* fork the daemons before anything spawns a domain: OCaml 5 forbids
     Unix.fork once other domains exist, and the invariance check below
     runs the engine at jobs:2 *)
  let pid, req_port, obs_port = spawn_server () in
  (* the overload daemon forks now too, for the same reason; it idles
     until the burn-rate phase near the end *)
  let ov_pid, ov_req_port, ov_obs_port = spawn_server ~overload:true () in
  (* the warm daemon replays the parent's journal at startup and flushes
     a Store snapshot at shutdown *)
  let warm_pid, warm_req_port, warm_obs_port =
    spawn_server ~journal:journal_path ~store_out:store_db_path ()
  in
  check_log_invariance ();
  check (req_port > 0 && obs_port > 0)
    "daemon bound request plane :%d and obs plane :%d" req_port obs_port;

  (* one connection, request/response in lockstep *)
  let fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect fd (Unix.ADDR_INET (Unix.inet_addr_loopback, req_port));
  let ic = Unix.in_channel_of_descr fd in
  let sent_ok = ref 0 and sent_failed = ref 0 in
  let last_seq = ref 0 in
  List.iter
    (fun (line, expected) ->
      let line = line ^ "\n" in
      ignore (Unix.write_substring fd line 0 (String.length line));
      let reply = input_line ic in
      let doc =
        match Json.parse reply with
        | Ok d -> d
        | Error e -> fail "response not JSON (%s): %S" e reply
      in
      let ok =
        match Json.member "ok" doc with
        | Some (Json.Bool b) -> b
        | _ -> fail "response lacks ok: %S" reply
      in
      let seq =
        match Option.bind (Json.member "seq" doc) Json.to_number with
        | Some f -> int_of_float f
        | None -> fail "response lacks seq: %S" reply
      in
      if seq <= !last_seq then
        fail "seq not monotone: %d after %d" seq !last_seq;
      last_seq := seq;
      (match expected with
      | Expect_ok ->
          if not ok then fail "expected ok for %S, got %S" line reply;
          incr sent_ok
      | Expect_failed ->
          if ok then fail "expected failure for %S, got %S" line reply;
          incr sent_failed))
    corpus;

  (* one multi-method request on the same connection: every registered
     methodology must answer inside the "methods" object *)
  let all_names =
    [
      "stdcell"; "fullcustom-exact"; "fullcustom-average"; "gatearray";
      "naive"; "champ"; "pla"; "plest";
    ]
  in
  let multi_line =
    Json.encode
      (Json.Object
         [
           ("id", Json.String "multi");
           ("hdl", Json.String (valid_hdl 0));
           ("methods", Json.String "all");
         ])
    ^ "\n"
  in
  ignore (Unix.write_substring fd multi_line 0 (String.length multi_line));
  let multi_reply = input_line ic in
  incr sent_ok;
  incr last_seq;
  let multi_doc =
    match Json.parse multi_reply with
    | Ok d -> d
    | Error e -> fail "multi-method response not JSON (%s): %S" e multi_reply
  in
  (match Json.member "ok" multi_doc with
  | Some (Json.Bool true) -> ()
  | _ -> fail "multi-method request failed: %S" multi_reply);
  let multi_methods =
    match Json.member "modules" multi_doc with
    | Some (Json.Array [ m ]) -> begin
        match Json.member "methods" m with
        | Some (Json.Object kvs) -> kvs
        | _ -> fail "module response lacks a methods object: %S" multi_reply
      end
    | _ -> fail "multi-method response lacks one module: %S" multi_reply
  in
  List.iter
    (fun name ->
      match List.assoc_opt name multi_methods with
      | None -> fail "methods object lacks %s: %S" name multi_reply
      | Some entry -> begin
          match Json.member "ok" entry with
          | Some (Json.Bool _) -> ()
          | _ -> fail "method %s entry lacks ok: %S" name multi_reply
        end)
    all_names;
  check true "methods=all request answered with all %d methodologies"
    (List.length all_names);

  (* --- the estimate store: a repeated request is answered from it,
     bit-for-bit, and the response says so --- *)
  let send_and_parse line =
    let line = line ^ "\n" in
    ignore (Unix.write_substring fd line 0 (String.length line));
    let reply = input_line ic in
    incr sent_ok;
    incr last_seq;
    match Json.parse reply with
    | Ok d -> d
    | Error e -> fail "store-phase response not JSON (%s): %S" e reply
  in
  let cached_of doc tag =
    match Json.member "cached" doc with
    | Some (Json.Bool b) -> b
    | _ -> fail "%s response lacks a cached field" tag
  in
  let modules_of doc tag =
    match Json.member "modules" doc with
    | Some m -> Json.encode m
    | None -> fail "%s response lacks modules" tag
  in
  let fresh_line =
    Json.encode
      (Json.Object
         [
           ("id", Json.String "store-probe");
           ( "hdl",
             Json.String
               (hdl_of (Mae_workload.Generators.counter ~technology:"nmos25" 16))
           );
         ])
  in
  let hits_metric () =
    let _, body = http_get ~port:obs_port "/metrics" in
    int_of_float (prom_value body "mae_estimate_cache_hits_total")
  in
  let cold_doc = send_and_parse fresh_line in
  check (not (cached_of cold_doc "cold"))
    "first sight of a module is not cached";
  let hits_before = hits_metric () in
  let warm_doc = send_and_parse fresh_line in
  check (cached_of warm_doc "warm") "repeated request answers cached:true";
  check
    (hits_metric () = hits_before + 1)
    "mae_estimate_cache_hits_total counted the repeat (%d -> %d)" hits_before
    (hits_before + 1);
  check
    (String.equal (modules_of cold_doc "cold") (modules_of warm_doc "warm"))
    "cached response is byte-identical to the computed one";

  (* --- framing: a slow client dribbling one byte at a time must still
     be answered (single-shot reads used to drop or split lines) --- *)
  let slow_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect slow_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, req_port));
  let slow_ic = Unix.in_channel_of_descr slow_fd in
  let slow_line =
    Json.encode
      (Json.Object
         [ ("id", Json.String "slow"); ("hdl", Json.String (valid_hdl 0)) ])
    ^ "\n"
  in
  String.iteri
    (fun i c ->
      ignore (Unix.write_substring slow_fd (String.make 1 c) 0 1);
      (* pause between dribbles so the server genuinely sees short
         reads rather than one coalesced segment *)
      if i mod 64 = 0 then Unix.sleepf 0.002)
    slow_line;
  let slow_doc =
    match Json.parse (input_line slow_ic) with
    | Ok d -> d
    | Error e -> fail "slow-client response not JSON: %s" e
  in
  incr sent_ok;
  incr last_seq;
  (match Json.member "ok" slow_doc with
  | Some (Json.Bool true) -> ()
  | _ -> fail "slow-client request failed");
  check
    (cached_of slow_doc "slow")
    "byte-at-a-time request framed whole and answered from the store";
  Unix.close slow_fd;

  (* --- HTTP/1.1 keep-alive: one connection answers many requests,
     framed by Content-Length --- *)
  let index_sub hay needle =
    let nn = String.length needle and nh = String.length hay in
    let rec at i =
      if i + nn > nh then None
      else if String.equal (String.sub hay i nn) needle then Some i
      else at (i + 1)
    in
    at 0
  in
  let write_fully wfd s =
    let n = String.length s in
    let rec go off =
      if off < n then go (off + Unix.write_substring wfd s off (n - off))
    in
    go 0
  in
  (* one Content-Length-framed response off [rfd]; [leftover] carries
     bytes already read past the previous response on this connection *)
  let recv_http rfd leftover =
    let buf = Buffer.create 4096 in
    Buffer.add_string buf leftover;
    let chunk = Bytes.create 65536 in
    let rec fill_until probe =
      match probe (Buffer.contents buf) with
      | Some v -> v
      | None -> (
          match Unix.read rfd chunk 0 (Bytes.length chunk) with
          | 0 -> fail "EOF mid HTTP response (got %S)" (Buffer.contents buf)
          | n ->
              Buffer.add_subbytes buf chunk 0 n;
              fill_until probe)
    in
    let head_end = fill_until (fun s -> index_sub s "\r\n\r\n") in
    let head = String.sub (Buffer.contents buf) 0 head_end in
    let content_length =
      let lower = String.lowercase_ascii head in
      match index_sub lower "content-length:" with
      | None -> fail "HTTP response without Content-Length: %S" head
      | Some i -> (
          let rest = String.sub lower (i + 15) (String.length lower - i - 15) in
          match int_of_string_opt (String.trim (List.hd (String.split_on_char '\r' rest))) with
          | Some n -> n
          | None -> fail "bad Content-Length in %S" head)
    in
    let body_start = head_end + 4 in
    let total_len = body_start + content_length in
    ignore
      (fill_until (fun s -> if String.length s >= total_len then Some 0 else None));
    let raw = Buffer.contents buf in
    ( head,
      String.sub raw body_start content_length,
      String.sub raw total_len (String.length raw - total_len) )
  in
  let ka_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect ka_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, obs_port));
  write_fully ka_fd "GET /healthz HTTP/1.1\r\nHost: smoke\r\n\r\n";
  let ka_head1, ka_body1, ka_rest = recv_http ka_fd "" in
  check
    (String.length ka_head1 >= 15
    && String.equal (String.sub ka_head1 0 15) "HTTP/1.1 200 OK"
    && index_sub ka_head1 "Connection: keep-alive" <> None
    && (match Json.parse (String.trim ka_body1) with
       | Ok _ -> true
       | Error _ -> false))
    "HTTP/1.1 scrape answers 200 and advertises keep-alive";
  write_fully ka_fd "GET /buildinfo HTTP/1.1\r\nHost: smoke\r\n\r\n";
  let ka_head2, ka_body2, _ = recv_http ka_fd ka_rest in
  check
    (String.length ka_head2 >= 15
    && String.equal (String.sub ka_head2 0 15) "HTTP/1.1 200 OK"
    && (match Json.parse (String.trim ka_body2) with
       | Ok _ -> true
       | Error _ -> false))
    "second GET answered on the same obs connection (keep-alive)";
  Unix.close ka_fd;

  (* --- HTTP POST /estimate on the request plane: same estimates, HTTP
     framing, connection reused until the client says close --- *)
  let post_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect post_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, req_port));
  let post_request ?(close = false) id =
    let body =
      Json.encode
        (Json.Object
           [ ("id", Json.String id); ("hdl", Json.String (valid_hdl 3)) ])
    in
    Printf.sprintf "POST /estimate HTTP/1.1\r\nHost: smoke\r\n%sContent-Length: %d\r\n\r\n%s"
      (if close then "Connection: close\r\n" else "")
      (String.length body) body
  in
  let parse_post tag body =
    match Json.parse (String.trim body) with
    | Ok doc ->
        if Json.member "ok" doc <> Some (Json.Bool true) then
          fail "%s answered ok:false: %S" tag body;
        doc
    | Error e -> fail "%s response not JSON (%s): %S" tag e body
  in
  write_fully post_fd (post_request "http-1");
  let ph1, pbody1, post_rest = recv_http post_fd "" in
  incr sent_ok;
  incr last_seq;
  let pdoc1 = parse_post "HTTP POST 1" pbody1 in
  check
    (String.length ph1 >= 15
    && String.equal (String.sub ph1 0 15) "HTTP/1.1 200 OK"
    && index_sub ph1 "Connection: keep-alive" <> None
    && Option.bind (Json.member "seq" pdoc1) Json.to_number
       = Some (Float.of_int !last_seq))
    "HTTP POST /estimate answers the same JSON with the next seq";
  write_fully post_fd (post_request ~close:true "http-2");
  let ph2, pbody2, _ = recv_http post_fd post_rest in
  incr sent_ok;
  incr last_seq;
  ignore (parse_post "HTTP POST 2" pbody2);
  let post_eof =
    let b = Bytes.create 1 in
    match Unix.read post_fd b 0 1 with 0 -> true | _ -> false
  in
  Unix.close post_fd;
  check
    (index_sub ph2 "Connection: close" <> None && post_eof)
    "Connection: close honoured after the second HTTP POST";

  (* --- a malformed or oversized frame answers in order without
     killing the connection: good, bad, huge, good -- pipelined --- *)
  let pl_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect pl_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, req_port));
  let pl_ic = Unix.in_channel_of_descr pl_fd in
  let pl_line id =
    Json.encode
      (Json.Object
         [ ("id", Json.String id); ("hdl", Json.String (valid_hdl 4)) ])
    ^ "\n"
  in
  write_fully pl_fd (pl_line "pl-1" ^ "{\"id\": 901, \"hdl\": \n");
  (* 9 MiB without a newline overflows the 8 MiB frame cap *)
  write_fully pl_fd (String.make (9 * 1024 * 1024) 'x' ^ "\n");
  write_fully pl_fd (pl_line "pl-2");
  let pl_read tag =
    match Json.parse (input_line pl_ic) with
    | Ok d -> d
    | Error e -> fail "%s response not JSON: %s" tag e
  in
  let pl1 = pl_read "pipelined good 1" in
  if Json.member "ok" pl1 <> Some (Json.Bool true) then
    fail "pipelined good request 1 failed";
  incr sent_ok;
  incr last_seq;
  let pl2 = pl_read "pipelined malformed" in
  if Json.member "ok" pl2 <> Some (Json.Bool false) then
    fail "malformed frame should answer ok:false";
  if Json.member "seq" pl2 = None then
    fail "malformed frame should be a counted request with a seq";
  incr sent_failed;
  incr last_seq;
  let pl3 = pl_read "pipelined oversized" in
  (match (Json.member "seq" pl3, Json.member "error" pl3) with
  | None, Some (Json.String e) when index_sub e "exceeds" <> None ->
      (* answered but unaccounted: no seq, no counters, no SLO event *)
      ()
  | _ -> fail "oversized frame should answer an uncounted error");
  let pl4 = pl_read "pipelined good 2" in
  if Json.member "ok" pl4 <> Some (Json.Bool true) then
    fail "pipelined good request 2 failed (connection should survive)";
  incr sent_ok;
  incr last_seq;
  Unix.close pl_fd;
  check true
    "malformed and oversized frames answered in order, connection intact";

  Unix.close fd;
  let total = !sent_ok + !sent_failed in
  check (total = List.length corpus + 9 && !sent_ok = 108)
    "%d requests answered in order (%d ok, %d failed), seq monotone to %d"
    total !sent_ok !sent_failed !last_seq;

  (* /metrics must agree with the client-side tally *)
  let _, metrics_body = http_get ~port:obs_port "/metrics" in
  let m name = int_of_float (prom_value metrics_body name) in
  check
    (m "mae_serve_requests_total" = total
    && m "mae_serve_requests_ok_total" = !sent_ok
    && m "mae_serve_requests_failed_total" = !sent_failed)
    "/metrics counters match the client tally (%d/%d/%d)" total !sent_ok
    !sent_failed;
  check
    (m "mae_serve_connections_reused_total" >= 1)
    "keep-alive connections counted as reused (%d >= 1)"
    (m "mae_serve_connections_reused_total");
  check
    (m "mae_serve_requests_shed_total" = 0)
    "no requests shed under friendly load";
  (* the 100 valid corpus requests cycle through 5 distinct modules, so
     at least 95 of them were answered from the estimate store *)
  check
    (m "mae_estimate_cache_hits_total" >= 95)
    "repeat-heavy corpus hit the estimate store %d times (>= 95)"
    (m "mae_estimate_cache_hits_total");
  let p50 = prom_histogram_percentile metrics_body "mae_serve_request_seconds" 0.50 in
  let p99 = prom_histogram_percentile metrics_body "mae_serve_request_seconds" 0.99 in
  check
    (Float.is_finite p50 && Float.is_finite p99 && p50 <= p99)
    "request latency histogram populated (p50 <= %.6fs, p99 <= %.6fs)" p50 p99;

  (* per-methodology counters: the methods=all request ran all eight *)
  List.iter
    (fun name ->
      let metric =
        "mae_method_"
        ^ String.map (fun c -> if c = '-' then '_' else c) name
        ^ "_runs_total"
      in
      if m metric < 1 then fail "%s = %d, want >= 1" metric (m metric))
    all_names;
  check true "per-methodology run counters populated for all %d estimators"
    (List.length all_names);

  (* GET /methods lists every registered estimator plus the default set *)
  let _, methods_body = http_get ~port:obs_port "/methods" in
  let methods_doc =
    match Json.parse methods_body with
    | Ok d -> d
    | Error e -> fail "/methods not JSON (%s): %S" e methods_body
  in
  let listed =
    match Json.member "methods" methods_doc with
    | Some (Json.Array entries) ->
        List.map
          (fun e ->
            match Json.member "name" e with
            | Some (Json.String s) -> s
            | _ -> fail "/methods entry lacks a name: %S" methods_body)
          entries
    | _ -> fail "/methods lacks a methods array: %S" methods_body
  in
  List.iter
    (fun name ->
      if not (List.mem name listed) then
        fail "/methods does not list %s (got %s)" name
          (String.concat "," listed))
    all_names;
  (match Json.member "default" methods_doc with
  | Some (Json.Array (_ :: _)) -> ()
  | _ -> fail "/methods lacks a non-empty default set: %S" methods_body);
  check true "/methods lists all %d estimators" (List.length listed);

  (* /healthz *)
  let headers, health_body = http_get ~port:obs_port "/healthz" in
  check
    (String.length headers >= 15
    && String.equal (String.sub headers 0 15) "HTTP/1.0 200 OK")
    "/healthz answers 200";
  (match Json.parse (String.trim health_body) with
  | Error e -> fail "/healthz body not JSON: %s" e
  | Ok doc ->
      check
        (Json.member "status" doc = Some (Json.String "ok"))
        "/healthz status ok";
      check
        (Option.bind (Json.member "requests_total" doc) Json.to_number
        = Some (Float.of_int total))
        "/healthz sees %d requests" total);

  (* request-latency sketch: summary quantiles + exemplars in /metrics *)
  check
    (m "mae_serve_request_seconds_summary_count" = total)
    "latency sketch counted all %d requests" total;
  let sk_q q =
    prom_value metrics_body
      (Printf.sprintf "mae_serve_request_seconds_summary{quantile=\"%s\"}" q)
  in
  check
    (sk_q "0.5" > 0. && sk_q "0.5" <= sk_q "0.99")
    "sketch quantiles ordered (p50 %.6fs <= p99 %.6fs)" (sk_q "0.5")
    (sk_q "0.99");
  let contains needle hay =
    let nn = String.length needle and nh = String.length hay in
    let rec at i =
      i + nn <= nh && (String.equal (String.sub hay i nn) needle || at (i + 1))
    in
    at 0
  in
  check
    (contains "# EXEMPLAR mae_serve_request_seconds_summary {request_id=\"r"
       metrics_body)
    "sketch exemplars carry request ids into /metrics";

  (* GET /slo: both objectives healthy under this friendly load *)
  let _, slo_text = http_get ~port:obs_port "/slo" in
  let slo_doc =
    match Json.parse (String.trim slo_text) with
    | Ok d -> d
    | Error e -> fail "/slo not JSON (%s): %S" e slo_text
  in
  check
    (Json.member "healthy" slo_doc = Some (Json.Bool true))
    "/slo healthy under normal load";
  let slo_named name =
    match Option.bind (Json.member "slos" slo_doc) Json.to_list with
    | None -> fail "/slo lacks a slos array: %S" slo_text
    | Some slos -> (
        match
          List.find_opt
            (fun s -> Json.member "name" s = Some (Json.String name))
            slos
        with
        | Some s -> s
        | None -> fail "/slo lacks %s: %S" name slo_text)
  in
  let latency_slo = slo_named "mae_serve_latency_slo" in
  let errors_slo = slo_named "mae_serve_errors_slo" in
  let window_field slo window field =
    match
      Option.bind (Json.member window slo) (fun w ->
          Option.bind (Json.member field w) Json.to_number)
    with
    | Some f -> f
    | None -> fail "/slo %s lacks %s.%s" "entry" window field
  in
  let lat_events =
    window_field latency_slo "fast" "good" +. window_field latency_slo "fast" "bad"
  in
  check
    (int_of_float lat_events = total)
    "latency SLO counted all %d requests in its fast window" total;
  check
    (window_field errors_slo "fast" "bad" = 0.
    && window_field errors_slo "fast" "burn_rate" = 0.)
    "error SLO burns nothing: client errors are not server faults";
  check
    (window_field latency_slo "fast" "burn_rate" < 1.)
    "latency SLO fast burn %.2f < 1 under normal load"
    (window_field latency_slo "fast" "burn_rate");

  (* GET /statusz: the human page renders and names the objectives *)
  let statusz_headers, statusz_text = http_get ~port:obs_port "/statusz" in
  check
    (String.length statusz_headers >= 15
    && String.equal (String.sub statusz_headers 0 15) "HTTP/1.0 200 OK"
    && contains "mae serve status" statusz_text
    && contains "mae_serve_latency_slo" statusz_text
    && contains "request latency:" statusz_text)
    "/statusz renders uptime, SLO table and latency quantiles";

  (* GET /runtimez: this daemon writes a trace, so telemetry -- and
     with it the runtime lens -- is on; after 121 estimation requests
     the per-domain GC statistics must be live *)
  let rz_headers, rz_text = http_get ~port:obs_port "/runtimez" in
  check
    (String.length rz_headers >= 15
    && String.equal (String.sub rz_headers 0 15) "HTTP/1.0 200 OK")
    "/runtimez answers 200";
  let rz_doc =
    match Json.parse (String.trim rz_text) with
    | Ok d -> d
    | Error e -> fail "/runtimez not JSON (%s): %S" e rz_text
  in
  check
    (Json.member "enabled" rz_doc = Some (Json.Bool true))
    "/runtimez says the lens is running";
  let rz_domains =
    match Json.member "domains" rz_doc with
    | Some (Json.Array (_ :: _ as ds)) -> ds
    | _ -> fail "/runtimez lacks per-domain rows: %S" rz_text
  in
  check
    (List.exists
       (fun d ->
         match
           Option.bind (Json.member "minor_collections" d) Json.to_number
         with
         | Some n -> n > 0.
         | None -> false)
       rz_domains)
    "/runtimez shows live GC activity across %d domain(s)"
    (List.length rz_domains);
  (match Option.bind (Json.member "process" rz_doc) (Json.member "uptime_s") with
  | Some (Json.Number up) when up > 0. -> ()
  | _ -> fail "/runtimez lacks process.uptime_s: %S" rz_text);
  check true "/runtimez carries process telemetry";
  let _, metrics_after = http_get ~port:obs_port "/metrics" in
  check
    (contains "mae_gc_minor_collections_total" metrics_after
    && contains "mae_gc_pause_seconds_summary{domain=\"" metrics_after)
    "/metrics exposes mae_gc_* families with per-domain pause summaries";
  check
    (contains "gc:" statusz_text)
    "/statusz renders the GC line while the lens runs";

  (* 404 for unknown paths *)
  let headers404, _ = http_get ~port:obs_port "/nope" in
  check
    (String.length headers404 >= 12
    && String.equal (String.sub headers404 9 3) "404")
    "unknown path answers 404";

  (* access log: one record per request, ids r1..rN in order *)
  let log_lines =
    In_channel.with_open_text access_log_path In_channel.input_lines
  in
  let requests =
    List.filter_map
      (fun line ->
        match Json.parse line with
        | Error e -> fail "access log line not JSON (%s): %S" e line
        | Ok doc ->
            if Json.member "event" doc = Some (Json.String "serve.request")
            then Some doc
            else None)
      log_lines
  in
  check
    (List.length requests = total)
    "one serve.request access-log record per request (%d)"
    (List.length requests);
  List.iteri
    (fun i doc ->
      let expect = Printf.sprintf "r%d" (i + 1) in
      (match Json.member "request_id" doc with
      | Some (Json.String id) when String.equal id expect -> ()
      | Some (Json.String id) ->
          fail "access log record %d has id %s, want %s" i id expect
      | _ -> fail "access log record %d lacks request_id" i);
      List.iter
        (fun field ->
          if Json.member field doc = None then
            fail "access log record %d lacks %s" i field)
        [ "latency_s"; "rows_selected"; "cache_hits"; "cache_misses"; "ok" ])
    requests;
  check true "access-log request ids are r1..r%d in order" total;

  (* --- the warm daemon: its journal was written by another process,
     so its very first request must answer from disk --- *)
  check
    (warm_req_port > 0 && warm_obs_port > 0)
    "warm daemon bound request plane :%d and obs plane :%d" warm_req_port
    warm_obs_port;
  (* the child inherits the parent's own counter values at fork, so
     judge the warm request by counter deltas, not absolutes *)
  let warm_counters () =
    let _, body = http_get ~port:warm_obs_port "/metrics" in
    ( int_of_float (prom_value body "mae_estimate_cache_hits_total"),
      int_of_float (prom_value body "mae_estimate_cache_misses_total") )
  in
  let hits0, misses0 = warm_counters () in
  let warm_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect warm_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, warm_req_port));
  let warm_ic = Unix.in_channel_of_descr warm_fd in
  let warm_line =
    Json.encode
      (Json.Object
         [ ("id", Json.String "warm"); ("hdl", Json.String warm_hdl) ])
    ^ "\n"
  in
  ignore (Unix.write_substring warm_fd warm_line 0 (String.length warm_line));
  let warm_doc =
    match Json.parse (input_line warm_ic) with
    | Ok d -> d
    | Error e -> fail "warm-daemon response not JSON: %s" e
  in
  Unix.close warm_fd;
  (match Json.member "ok" warm_doc with
  | Some (Json.Bool true) -> ()
  | _ -> fail "warm-daemon request failed");
  check
    (Json.member "cached" warm_doc = Some (Json.Bool true))
    "restarted daemon answers its first request from the replayed journal";
  let hits1, misses1 = warm_counters () in
  check
    (hits1 = hits0 + 1 && misses1 = misses0)
    "warm daemon counters moved by 1 store hit, 0 misses";
  Unix.kill warm_pid Sys.sigterm;
  let _, warm_status = Unix.waitpid [] warm_pid in
  check (warm_status = Unix.WEXITED 0) "warm daemon drained and exited 0";
  check (Sys.file_exists store_db_path) "store snapshot flushed at shutdown";
  (match Mae_db.Store.load ~path:store_db_path with
  | Error e -> fail "store snapshot does not load: %s" e
  | Ok store ->
      check
        (List.length (Mae_db.Store.records store) = 1)
        "store snapshot holds the journal-warmed module");

  (* overload: the second daemon judges latency against a 5 ms
     objective and honours injected sleeps, so ten 20 ms requests
     exhaust its fast-window budget and flip /healthz to 503 *)
  check
    (ov_req_port > 0 && ov_obs_port > 0)
    "overload daemon bound request plane :%d and obs plane :%d" ov_req_port
    ov_obs_port;

  (* admission control: this daemon's queue watermark is 2, so a
     pipelined burst trips shedding -- the prefix estimates, the excess
     answers 503-style with retry_after_s, and every response keeps its
     request's place in line *)
  let shed_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect shed_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, ov_req_port));
  let shed_ic = Unix.in_channel_of_descr shed_fd in
  let burst = 40 in
  let burst_buf = Buffer.create 4096 in
  for i = 1 to burst do
    Buffer.add_string burst_buf
      (Json.encode
         (Json.Object
            [
              ("id", Json.Number (Float.of_int i));
              ("hdl", Json.String (valid_hdl 0));
            ])
      ^ "\n")
  done;
  write_fully shed_fd (Buffer.contents burst_buf);
  let shed_oks = ref 0 and shed_dropped = ref 0 in
  for i = 1 to burst do
    let doc =
      match Json.parse (input_line shed_ic) with
      | Ok d -> d
      | Error e -> fail "shed burst response %d not JSON: %s" i e
    in
    (match Option.bind (Json.member "id" doc) Json.to_number with
    | Some f when int_of_float f = i -> ()
    | _ -> fail "shed burst response %d out of order: %S" i (Json.encode doc));
    match Json.member "ok" doc with
    | Some (Json.Bool true) -> incr shed_oks
    | Some (Json.Bool false) -> (
        match (Json.member "retry_after_s" doc, Json.member "error" doc) with
        | Some (Json.Number _), Some (Json.String e)
          when String.length e >= 17
               && String.equal (String.sub e 0 17) "server overloaded" ->
            incr shed_dropped
        | _ ->
            fail "shed response %d lacks retry_after_s/overloaded error: %S" i
              (Json.encode doc))
    | _ -> fail "shed burst response %d lacks ok" i
  done;
  Unix.close shed_fd;
  check
    (!shed_oks >= 1 && !shed_dropped >= 1 && !shed_oks + !shed_dropped = burst)
    "burst of %d past the watermark: %d estimated, %d shed, order kept" burst
    !shed_oks !shed_dropped;
  let _, ov_metrics = http_get ~port:ov_obs_port "/metrics" in
  check
    (int_of_float (prom_value ov_metrics "mae_serve_requests_shed_total")
    = !shed_dropped)
    "mae_serve_requests_shed_total agrees with the client (%d)" !shed_dropped;

  let ov_fd = Unix.socket Unix.PF_INET Unix.SOCK_STREAM 0 in
  Unix.connect ov_fd (Unix.ADDR_INET (Unix.inet_addr_loopback, ov_req_port));
  let ov_ic = Unix.in_channel_of_descr ov_fd in
  for i = 1 to 10 do
    let line =
      Json.encode
        (Json.Object
           [
             ("id", Json.Number (Float.of_int i));
             ("hdl", Json.String (valid_hdl i));
             ("sleep_s", Json.Number 0.02);
           ])
      ^ "\n"
    in
    ignore (Unix.write_substring ov_fd line 0 (String.length line));
    match Json.parse (input_line ov_ic) with
    | Ok doc ->
        if Json.member "ok" doc <> Some (Json.Bool true) then
          fail "overload request %d failed (it should only be slow)" i
    | Error e -> fail "overload response %d not JSON: %s" i e
  done;
  Unix.close ov_fd;
  let _, ov_slo_text = http_get ~port:ov_obs_port "/slo" in
  let ov_slo_doc =
    match Json.parse (String.trim ov_slo_text) with
    | Ok d -> d
    | Error e -> fail "overload /slo not JSON (%s): %S" e ov_slo_text
  in
  check
    (Json.member "healthy" ov_slo_doc = Some (Json.Bool false))
    "/slo reports budget exhausted under overload";
  let ov_burn =
    match Option.bind (Json.member "slos" ov_slo_doc) Json.to_list with
    | None -> fail "overload /slo lacks slos: %S" ov_slo_text
    | Some slos -> (
        match
          List.find_map
            (fun s ->
              if Json.member "name" s = Some (Json.String "mae_serve_latency_slo")
              then
                Option.bind (Json.member "fast" s) (fun w ->
                    Option.bind (Json.member "burn_rate" w) Json.to_number)
              else None)
            slos
        with
        | Some b -> b
        | None -> fail "overload /slo lacks the latency burn rate")
  in
  check (ov_burn >= 1.)
    "latency SLO fast burn %.1f >= 1 under injected overload" ov_burn;
  let ov_errors_bad =
    match Option.bind (Json.member "slos" ov_slo_doc) Json.to_list with
    | None -> fail "overload /slo lacks slos: %S" ov_slo_text
    | Some slos -> (
        match
          List.find_opt
            (fun s ->
              Json.member "name" s = Some (Json.String "mae_serve_errors_slo"))
            slos
        with
        | Some s -> window_field s "fast" "bad"
        | None -> fail "overload /slo lacks the error objective")
  in
  check (ov_errors_bad = 0.)
    "shed and slow requests burned no error budget (bad = %.0f)" ov_errors_bad;
  let ov_headers, ov_health_text = http_get ~port:ov_obs_port "/healthz" in
  check
    (String.length ov_headers >= 12
    && String.equal (String.sub ov_headers 9 3) "503")
    "/healthz answers 503 while the budget is exhausted";
  (match Json.parse (String.trim ov_health_text) with
  | Ok doc ->
      check
        (Json.member "status" doc = Some (Json.String "degraded")
        && Json.member "slo_healthy" doc = Some (Json.Bool false))
        "/healthz body says degraded with slo_healthy false"
  | Error e -> fail "overload /healthz body not JSON: %s" e);
  Unix.kill ov_pid Sys.sigterm;
  let _, ov_status = Unix.waitpid [] ov_pid in
  check (ov_status = Unix.WEXITED 0) "overload daemon drained and exited 0";

  (* SIGTERM: clean drain + final flush *)
  Unix.kill pid Sys.sigterm;
  let _, status = Unix.waitpid [] pid in
  check (status = Unix.WEXITED 0) "daemon drained and exited 0 on SIGTERM";
  check (Sys.file_exists metrics_path) "final metrics dump flushed";
  (match Json.parse (In_channel.with_open_text metrics_path In_channel.input_all) with
  | Error e -> fail "final metrics dump not JSON: %s" e
  | Ok doc -> (
      match
        Option.bind (Json.member "counters" doc) (fun c ->
            Option.bind (Json.member "mae_serve_requests_total" c) Json.to_number)
      with
      | Some f when int_of_float f = total ->
          check true "final metrics dump still counts %d requests" total
      | _ -> fail "final metrics dump disagrees with the tally"));
  check (Sys.file_exists trace_path) "final trace flushed";
  let shutdown_seen =
    List.exists
      (fun line ->
        match Json.parse line with
        | Ok doc -> Json.member "event" doc = Some (Json.String "serve.shutdown")
        | Error _ -> false)
      (In_channel.with_open_text access_log_path In_channel.input_lines)
  in
  check shutdown_seen "serve.shutdown record written on drain";
  print_endline "serve-smoke: all checks passed"
