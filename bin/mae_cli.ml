(* mae: the Module Area Estimator command line.

   Subcommands mirror the Figure 1 pipeline and the evaluation harness:
     mae estimate  -- estimate every module of an HDL or SPICE file
     mae serve     -- resident estimation service with live telemetry
     mae top       -- live dashboard polling a serve instance's obs plane
     mae check     -- differential correctness harness over the kernels
     mae layout    -- run the place & route substrate on one module
     mae floorplan -- floor-plan the modules of an estimate database
     mae generate  -- emit a parameterized benchmark circuit as HDL
     mae processes -- list known fabrication processes
     mae table1 / mae table2 -- quick reproduction of the paper's tables *)

open Cmdliner

let registry_of tech_files =
  let registry = Mae_tech.Registry.create () in
  let rec load = function
    | [] -> Ok registry
    | path :: rest -> begin
        match Mae_tech.Registry.load_file registry path with
        | Ok _ -> load rest
        | Error e ->
            Error (Format.asprintf "%s: %a" path Mae_tech.Tech_parser.pp_error e)
      end
  in
  load tech_files

let tech_files_arg =
  Arg.(
    value & opt_all file []
    & info [ "tech" ] ~docv:"FILE"
        ~doc:"Load an additional fabrication process description (.tech).")

let seed_arg =
  Arg.(
    value & opt int 1988
    & info [ "seed" ] ~docv:"SEED" ~doc:"Random seed for the layout substrate.")

let format_arg =
  Arg.(
    value
    & opt (enum [ ("hdl", `Hdl); ("spice", `Spice) ]) `Hdl
    & info [ "format" ] ~docv:"FMT" ~doc:"Input format: hdl or spice.")

let read_circuits ?flatten_top ~format ~registry:_ path =
  match format with
  | `Hdl -> begin
      match Mae_hdl.Parser.parse_file path with
      | Error e -> Error (Format.asprintf "%s: %a" path Mae_hdl.Parser.pp_error e)
      | Ok design -> begin
          match flatten_top with
          | Some top -> begin
              match Mae_hdl.Elaborate.flatten design ~top with
              | Ok circuit -> Ok [ circuit ]
              | Error e ->
                  Error (Format.asprintf "%a" Mae_hdl.Elaborate.pp_error e)
            end
          | None -> begin
              match Mae_hdl.Elaborate.design_to_circuits design with
              | Ok circuits -> Ok circuits
              | Error e ->
                  Error (Format.asprintf "%a" Mae_hdl.Elaborate.pp_error e)
            end
        end
    end
  | `Spice -> begin
      match Mae_hdl.Spice.parse_file path with
      | Error e -> Error (Format.asprintf "%s: %a" path Mae_hdl.Spice.pp_error e)
      | Ok circuits -> Ok circuits
    end

let or_die = function
  | Ok v -> v
  | Error msg ->
      prerr_endline ("mae: " ^ msg);
      exit 1

(* estimate *)

(* The classic CLI output: stdcell, both full-custom variants, then the
   gate-array line when the process has a site cell.  An explicit
   --methods set replaces it. *)
let cli_default_methods =
  [ "stdcell"; "fullcustom-exact"; "fullcustom-average"; "gatearray" ]

let print_outcome ~explicit name
    (outcome : (Mae.Methodology.outcome, Mae.Methodology.error) result) =
  match outcome with
  | Ok (Mae.Methodology.Stdcell { auto; _ }) ->
      Format.printf "  %a@." Mae.Estimate.pp_stdcell auto
  | Ok (Mae.Methodology.Fullcustom fc) ->
      let variant =
        match name with
        | "fullcustom-exact" -> "exact"
        | "fullcustom-average" -> "average"
        | other -> other
      in
      Format.printf "  %a (%s)@." Mae.Estimate.pp_fullcustom fc variant
  | Ok (Mae.Methodology.Gatearray ga) ->
      Format.printf "  %a@." Mae.Gatearray.pp_estimate ga
  | Ok (Mae.Methodology.Scalar s) ->
      Format.printf "  %s: %.0f L^2 (%.0f x %.0f L)@." name s.area s.width
        s.height
  | Error (Mae.Methodology.Unsupported _) when not explicit ->
      (* the implicit default set adds gatearray opportunistically; a
         process without a site cell is not worth a line of noise *)
      ()
  | Error e ->
      Format.printf "  %s: %a@." name Mae.Methodology.pp_error e

let method_view_entries (report : Mae.Driver.module_report) =
  List.map
    (fun (r : Mae.Driver.method_result) ->
      let name = Mae.Methodology.name r.methodology in
      match r.outcome with
      | Ok outcome ->
          let d = Mae.Methodology.dims outcome in
          let note =
            match outcome with
            | Mae.Methodology.Stdcell { auto; _ } ->
                Printf.sprintf "rows %d, %d feed-throughs"
                  auto.Mae.Estimate.rows auto.feed_throughs
            | Mae.Methodology.Gatearray ga ->
                Printf.sprintf "%d sites" ga.Mae.Gatearray.sites
            | _ -> ""
          in
          {
            Mae_report.Method_view.name;
            kind = Mae.Methodology.kind outcome;
            ok = true;
            area = d.area;
            width = d.width;
            height = d.height;
            aspect = Mae_geom.Aspect.ratio d.aspect;
            note;
          }
      | Error e ->
          {
            Mae_report.Method_view.name;
            kind = "";
            ok = false;
            area = Float.nan;
            width = Float.nan;
            height = Float.nan;
            aspect = Float.nan;
            note = Mae.Methodology.error_to_string e;
          })
    report.results

let print_report ~verbose ~explicit ~compare ~db_requested store
    (report : Mae.Driver.module_report) =
  let circuit = report.circuit in
  Format.printf "== %a ==@." Mae_netlist.Circuit.pp_summary report.circuit;
  List.iter
    (fun issue -> Format.printf "  %a@." Mae_netlist.Validate.pp_issue issue)
    report.issues;
  List.iter
    (fun (r : Mae.Driver.method_result) ->
      print_outcome ~explicit (Mae.Methodology.name r.methodology) r.outcome)
    report.results;
  if compare then
    print_endline
      (Mae_report.Method_view.render_table
         ~module_name:circuit.Mae_netlist.Circuit.name
         (method_view_entries report));
  if verbose then begin
    let process = report.Mae.Driver.process in
    begin
      match Mae.Driver.stdcell report with
      | Some sc ->
          Format.printf "%a@." Mae.Explain.pp_stdcell
            (Mae.Explain.stdcell ~rows:sc.Mae.Estimate.rows circuit process)
      | None -> ()
    end;
    if Option.is_some (Mae.Driver.fullcustom_exact report) then begin
      let fc_circuit = Option.value report.expanded ~default:circuit in
      Format.printf "%a@." Mae.Explain.pp_fullcustom
        (Mae.Explain.fullcustom ~mode:Mae.Config.Exact_areas fc_circuit process)
    end
  end;
  match Mae_db.Record.of_report report with
  | Ok record -> Mae_db.Store.add store record
  | Error e ->
      if db_requested then
        Format.eprintf "mae: %s@." (Mae_db.Record.of_report_error_to_string e)

(* An output path is rejected before any estimation runs (like the
   --jobs validation): a typo'd directory must not cost a full batch. *)
let validate_out_path ~flag = function
  | None -> ()
  | Some path ->
      if Sys.file_exists path && Sys.is_directory path then
        or_die
          (Error
             (Printf.sprintf "%s %s: path is a directory, need a file" flag
                path));
      let dir = Filename.dirname path in
      if not (Sys.file_exists dir) then
        or_die
          (Error
             (Printf.sprintf "%s %s: directory %s does not exist" flag path dir));
      if not (Sys.is_directory dir) then
        or_die
          (Error
             (Printf.sprintf "%s %s: %s is not a directory" flag path dir))

(* Two artifact flags aimed at one file would silently clobber each
   other (whichever is written last wins); reject the collision before
   anything runs. *)
let reject_same_path flags_and_paths =
  let rec go = function
    | [] -> ()
    | (flag_a, Some path_a) :: rest ->
        List.iter
          (fun (flag_b, path_b) ->
            if path_b = Some path_a then
              or_die
                (Error
                   (Printf.sprintf
                      "%s and %s both point at %s; each artifact needs its \
                       own file"
                      flag_a flag_b path_a)))
          rest;
        go rest
    | (_, None) :: rest -> go rest
  in
  go flags_and_paths

(* With several modules in the batch, one --compare-svg file per module:
   the module name is spliced in before the extension. *)
let compare_svg_path base ~multi name =
  if not multi then base
  else
    let dir = Filename.dirname base in
    let file = Filename.basename base in
    let stem = Filename.remove_extension file in
    let ext = Filename.extension file in
    Filename.concat dir (stem ^ "-" ^ name ^ ext)

let run_estimate tech_files format input db_out verbose flatten_top jobs
    batch_stats trace_out metrics_out methods compare compare_svg =
  if jobs < 0 then
    or_die (Error "--jobs must be >= 0 (0 = one domain per core)");
  reject_same_path
    [
      ("--trace", trace_out); ("--metrics-out", metrics_out); ("--db", db_out);
      ("--compare-svg", compare_svg);
    ];
  validate_out_path ~flag:"--trace" trace_out;
  validate_out_path ~flag:"--metrics-out" metrics_out;
  validate_out_path ~flag:"--db" db_out;
  validate_out_path ~flag:"--compare-svg" compare_svg;
  let explicit = Option.is_some methods in
  let methods =
    match methods with
    | None -> cli_default_methods
    | Some set -> or_die (Mae.Methodology.selection_of_string set)
  in
  (* span tracing and latency sampling are paid for only when asked;
     the runtime lens rides along so traces and metrics dumps carry
     GC pauses interleaved with the estimation spans *)
  if Option.is_some trace_out || Option.is_some metrics_out then begin
    Mae_obs.set_enabled true;
    ignore (Mae_obs.Runtime.start ())
  end;
  let registry = or_die (registry_of tech_files) in
  let circuits = or_die (read_circuits ?flatten_top ~format ~registry input) in
  let store = Mae_db.Store.create () in
  (* the engine preserves input order, so jobs > 1 prints the same report
     stream as a sequential run. *)
  let results, stats =
    Mae_engine.run_circuits_with_stats ~jobs ~methods ~registry circuits
  in
  (* drain the GC cursor before any trace/metrics dump below *)
  Mae_obs.Runtime.stop ();
  List.iter
    (function
      | Error e -> Format.eprintf "mae: %a@." Mae_engine.pp_error e
      | Ok report ->
          print_report ~verbose ~explicit ~compare
            ~db_requested:(Option.is_some db_out) store report)
    results;
  begin
    match compare_svg with
    | None -> ()
    | Some base ->
        let ok_reports =
          List.filter_map (function Ok r -> Some r | Error _ -> None) results
        in
        let multi = List.length ok_reports > 1 in
        List.iter
          (fun (report : Mae.Driver.module_report) ->
            let name = report.circuit.Mae_netlist.Circuit.name in
            match
              Mae_report.Method_view.render_svg ~module_name:name
                (method_view_entries report)
            with
            | Error msg -> Format.eprintf "mae: --compare-svg: %s@." msg
            | Ok svg ->
                let path = compare_svg_path base ~multi name in
                or_die (Mae_report.Svg.write ~path svg);
                Format.eprintf "method comparison drawing written to %s@." path)
          ok_reports
  end;
  if batch_stats then Format.eprintf "mae: %a@." Mae_engine.pp_stats stats;
  begin
    match trace_out with
    | None -> ()
    | Some path ->
        or_die (Mae_obs.Trace.write_chrome ~path);
        Format.eprintf
          "trace written to %s (open in chrome://tracing or Perfetto)@." path
  end;
  begin
    match metrics_out with
    | None -> ()
    | Some path ->
        or_die
          (if Filename.check_suffix path ".json" then
             Mae_obs.Metrics.write_json ~path
           else Mae_obs.Metrics.write_prometheus ~path);
        Format.eprintf "metrics written to %s@." path
  end;
  begin
    match db_out with
    | None -> ()
    | Some path ->
        or_die (Mae_db.Store.save store ~path);
        Format.printf "database written to %s@." path
  end;
  (* the successful reports are printed (and saved) either way; a failed
     module must still fail the invocation for scripted callers. *)
  if stats.Mae_engine.failed > 0 then exit 1

let estimate_cmd =
  let input =
    Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE")
  in
  let db_out =
    Arg.(
      value & opt (some string) None
      & info [ "db" ] ~docv:"FILE"
          ~doc:"Write the estimate database (floor-planner input) here.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ]
          ~doc:"Print the per-net and per-degree-class breakdowns.")
  in
  let flatten_top =
    Arg.(
      value & opt (some string) None
      & info [ "flatten" ] ~docv:"TOP"
          ~doc:
            "Flatten the hierarchical design under module $(docv) before \
             estimating (modules may instantiate other modules by name).")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:
            "Estimate modules on $(docv) parallel domains (0 = one per \
             core).  Output order and contents are identical for every \
             $(docv).")
  in
  let batch_stats =
    Arg.(
      value & flag
      & info [ "stats" ]
          ~doc:
            "Print batch throughput, kernel-cache hit rate and per-domain \
             module counts to stderr.")
  in
  let trace_out =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Record per-stage spans while estimating and write a Chrome \
             trace-event JSON here (open in chrome://tracing or Perfetto; \
             one lane per domain, one nested span per pipeline stage per \
             module).  The path is validated before estimation starts.")
  in
  let metrics_out =
    Arg.(
      value & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write the telemetry metrics registry (engine counters, kernel \
             cache hit/miss/race counters, queue-wait gauge, latency \
             histograms) here after estimating: Prometheus text format, or \
             JSON when $(docv) ends in .json.  The path is validated before \
             estimation starts.")
  in
  let methods =
    Arg.(
      value & opt (some string) None
      & info [ "methods" ] ~docv:"SET"
          ~doc:
            "Comma-separated estimation methodologies to run, by registry \
             name (see mae serve's GET /methods, or pass an unknown name to \
             get the list).  The aliases $(b,default) (stdcell + both \
             full-custom variants) and $(b,all) (every registered \
             methodology, baselines included) expand accordingly.  Without \
             this flag the classic stdcell / full-custom / gate-array \
             report is printed.")
  in
  let compare =
    Arg.(
      value & flag
      & info [ "compare" ]
          ~doc:
            "After each module's report, print a side-by-side comparison \
             table of every selected methodology (area, dimensions, aspect, \
             failures).")
  in
  let compare_svg =
    Arg.(
      value & opt (some string) None
      & info [ "compare-svg" ] ~docv:"FILE"
          ~doc:
            "Draw the selected methodologies' footprints side by side to a \
             common scale and write the SVG here (one file per module; with \
             several modules the module name is appended to the file stem).")
  in
  Cmd.v
    (Cmd.info "estimate" ~doc:"Estimate module areas from a schematic file.")
    Term.(
      const run_estimate $ tech_files_arg $ format_arg $ input $ db_out
      $ verbose $ flatten_top $ jobs $ batch_stats $ trace_out $ metrics_out
      $ methods $ compare $ compare_svg)

(* serve *)

let run_serve tech_files listen obs_listen jobs access_log log_level trace_out
    metrics_out slo_latency_ms slo_latency_target slo_error_target store_journal
    store_out no_estimate_cache idle_timeout max_connections queue_watermark
    max_batch store_cap =
  if jobs < 0 then
    or_die (Error "--jobs must be >= 0 (0 = one domain per core)");
  if slo_latency_ms <= 0. then
    or_die (Error "--slo-latency-ms must be positive");
  if idle_timeout <= 0. then or_die (Error "--idle-timeout must be positive");
  List.iter
    (fun (flag, v) ->
      if v < 1 then or_die (Error (flag ^ " must be >= 1")))
    [
      ("--max-connections", max_connections);
      ("--queue-watermark", queue_watermark);
      ("--max-batch", max_batch);
    ];
  if store_cap < 0 then
    or_die (Error "--store-cap must be >= 0 (0 = unbounded)");
  List.iter
    (fun (flag, v) ->
      if not (v > 0. && v < 1.) then
        or_die (Error (flag ^ " must be in (0, 1)")))
    [
      ("--slo-latency-target", slo_latency_target);
      ("--slo-error-target", slo_error_target);
    ];
  reject_same_path
    [
      ("--trace", trace_out);
      ("--metrics-out", metrics_out);
      ("--access-log", access_log);
      ("--store", store_journal);
      ("--store-db", store_out);
    ];
  validate_out_path ~flag:"--trace" trace_out;
  validate_out_path ~flag:"--metrics-out" metrics_out;
  validate_out_path ~flag:"--access-log" access_log;
  validate_out_path ~flag:"--store" store_journal;
  validate_out_path ~flag:"--store-db" store_out;
  if no_estimate_cache && (store_journal <> None || store_out <> None) then
    or_die
      (Error "--no-estimate-cache conflicts with --store / --store-db");
  let registry = or_die (registry_of tech_files) in
  let request_addr = or_die (Mae_serve.parse_addr listen) in
  let obs_addr =
    Option.map (fun s -> or_die (Mae_serve.parse_addr s)) obs_listen
  in
  let threshold =
    match log_level with
    | "off" -> None
    | s -> begin
        match Mae_obs.Log.level_of_string s with
        | Some l -> Some l
        | None ->
            or_die
              (Error
                 (Printf.sprintf
                    "--log-level %s: want debug, info, warn, error or off" s))
      end
  in
  Mae_obs.Log.set_threshold threshold;
  begin
    match access_log with
    | None -> ()
    | Some path -> or_die (Mae_obs.Log.set_sink_file path)
  end;
  let jobs = if jobs = 0 then Mae_engine.default_jobs () else jobs in
  let config =
    {
      (Mae_serve.default_config ~registry ~request_addr) with
      Mae_serve.obs_addr;
      jobs;
      trace_out;
      metrics_out;
      estimate_cache = not no_estimate_cache;
      store_journal;
      store_out;
      store_live_cap = (if store_cap = 0 then None else Some store_cap);
      idle_timeout_s = idle_timeout;
      max_connections;
      queue_watermark;
      max_batch;
      slo =
        {
          Mae_serve.default_slo with
          Mae_serve.latency_threshold_s = slo_latency_ms /. 1e3;
          latency_target = slo_latency_target;
          error_target = slo_error_target;
        };
      on_ready =
        (fun ~request_addr ~obs_addr ->
          Format.eprintf "mae: serving estimation requests on %a@."
            Mae_serve.pp_addr request_addr;
          match obs_addr with
          | Some a ->
              Format.eprintf
                "mae: observability plane on %a (/metrics /healthz /slo \
                 /statusz /buildinfo /tracez /runtimez /methods)@."
                Mae_serve.pp_addr a
          | None -> ());
    }
  in
  match Mae_serve.run config with
  | Ok () -> Mae_obs.Log.close ()
  | Error msg ->
      Mae_obs.Log.close ();
      or_die (Error msg)

let serve_cmd =
  let listen =
    Arg.(
      value & opt string "127.0.0.1:7788"
      & info [ "listen" ] ~docv:"ADDR"
          ~doc:
            "Request-plane address: PORT, HOST:PORT or unix:PATH.  Clients \
             send one JSON object per line ({\"hdl\": \"...\", \"id\": ...}) \
             and receive one JSON response line each.  TCP port 0 lets the \
             kernel pick a free port (printed on stderr).")
  in
  let obs_listen =
    Arg.(
      value & opt (some string) None
      & info [ "obs-listen" ] ~docv:"ADDR"
          ~doc:
            "Observability-plane address (same syntax as --listen): serves \
             GET /metrics, /healthz, /slo, /statusz, /buildinfo, /tracez, \
             /runtimez (per-domain GC statistics) and /methods (the \
             methodology registry) over HTTP/1.0.")
  in
  let jobs =
    Arg.(
      value & opt int 1
      & info [ "jobs"; "j" ] ~docv:"N"
          ~doc:"Engine domains per request batch (0 = one per core).")
  in
  let access_log =
    Arg.(
      value & opt (some string) None
      & info [ "access-log" ] ~docv:"FILE"
          ~doc:
            "Append structured JSON access-log records here (default: \
             stderr).  One serve.request record per request.")
  in
  let log_level =
    Arg.(
      value & opt string "info"
      & info [ "log-level" ] ~docv:"LEVEL"
          ~doc:"debug, info, warn, error or off (default info).")
  in
  let trace_out =
    Arg.(
      value & opt (some string) None
      & info [ "trace" ] ~docv:"FILE"
          ~doc:
            "Enable span tracing (bounded recent window) and write a Chrome \
             trace here on shutdown.")
  in
  let metrics_out =
    Arg.(
      value & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write a final metrics dump here on shutdown (Prometheus text, \
             or JSON when $(docv) ends in .json).")
  in
  let slo_latency_ms =
    Arg.(
      value & opt float 250.
      & info [ "slo-latency-ms" ] ~docv:"MS"
          ~doc:
            "Latency-SLO threshold: a request is within objective when \
             answered in at most $(docv) milliseconds (default 250).")
  in
  let slo_latency_target =
    Arg.(
      value & opt float 0.99
      & info [ "slo-latency-target" ] ~docv:"FRAC"
          ~doc:
            "Required fraction of requests within the latency threshold, in \
             (0, 1) (default 0.99).  /healthz answers 503 while the \
             fast-window burn rate is at or above 1.")
  in
  let slo_error_target =
    Arg.(
      value & opt float 0.999
      & info [ "slo-error-target" ] ~docv:"FRAC"
          ~doc:
            "Required fraction of requests without server errors, in (0, 1) \
             (default 0.999).  Malformed client requests do not count \
             against this budget.")
  in
  let store_journal =
    Arg.(
      value & opt (some string) None
      & info [ "store" ] ~docv:"FILE"
          ~doc:
            "Back the content-addressed estimate store with an append-only \
             journal at $(docv): replayed at startup (a restarted daemon \
             answers repeats warm, bit-for-bit) and appended on every new \
             estimate.")
  in
  let store_out =
    Arg.(
      value & opt (some string) None
      & info [ "store-db" ] ~docv:"FILE"
          ~doc:
            "Write a mae_db Store snapshot of the estimate store to $(docv) \
             on shutdown (loadable by the floor-planner).")
  in
  let no_estimate_cache =
    Arg.(
      value & flag
      & info [ "no-estimate-cache" ]
          ~doc:
            "Disable the content-addressed estimate store: every request is \
             recomputed even when an identical module was already answered.")
  in
  let idle_timeout =
    Arg.(
      value & opt float 300.
      & info [ "idle-timeout" ] ~docv:"SECONDS"
          ~doc:
            "Close keep-alive connections idle longer than $(docv) with no \
             response in flight (default 300).")
  in
  let max_connections =
    Arg.(
      value & opt int 1024
      & info [ "max-connections" ] ~docv:"N"
          ~doc:
            "Open-connection cap across both planes (default 1024); beyond \
             it new connections are accepted and immediately closed.")
  in
  let queue_watermark =
    Arg.(
      value & opt int 256
      & info [ "queue-watermark" ] ~docv:"N"
          ~doc:
            "Admission control: with $(docv) estimate requests already \
             queued, new ones are shed with ok:false / HTTP 503 + \
             Retry-After instead of estimated (default 256).  Shed requests \
             burn neither SLO budget.")
  in
  let max_batch =
    Arg.(
      value & opt int 32
      & info [ "max-batch" ] ~docv:"N"
          ~doc:
            "Coalesce up to $(docv) queued estimate requests into one \
             engine batch (default 32); batches share the domain pool and \
             the kernel cache warm-up.")
  in
  let store_cap =
    Arg.(
      value & opt int 65536
      & info [ "store-cap" ] ~docv:"N"
          ~doc:
            "LRU bound on the estimate store's live tier (default 65536; 0 \
             = unbounded).  Evictions count into \
             mae_estimate_cache_evictions_total.")
  in
  Cmd.v
    (Cmd.info "serve"
       ~doc:
         "Run the resident estimation service with live telemetry \
          (/metrics, /healthz, /slo, /statusz, structured access logs; \
          SIGTERM drains and flushes).")
    Term.(
      const run_serve $ tech_files_arg $ listen $ obs_listen $ jobs
      $ access_log $ log_level $ trace_out $ metrics_out $ slo_latency_ms
      $ slo_latency_target $ slo_error_target $ store_journal $ store_out
      $ no_estimate_cache $ idle_timeout $ max_connections $ queue_watermark
      $ max_batch $ store_cap)

(* top *)

let run_top obs interval iterations no_clear =
  if interval <= 0. then or_die (Error "--interval must be positive");
  (match iterations with
  | Some n when n < 1 -> or_die (Error "--iterations must be >= 1")
  | _ -> ());
  let host, port =
    match Mae_serve.parse_addr obs with
    | Ok (Mae_serve.Tcp { host; port }) when port > 0 -> (host, port)
    | Ok _ -> or_die (Error "top needs a TCP observability address HOST:PORT")
    | Error e -> or_die (Error e)
  in
  (* only clear the screen for a live loop on a terminal *)
  let clear = (not no_clear) && iterations = None && Unix.isatty Unix.stdout in
  match
    Mae_serve.Top.run ~host ~port ~interval_s:interval ~iterations ~clear
  with
  | Ok () -> ()
  | Error e -> or_die (Error e)

let top_cmd =
  let obs =
    Arg.(
      value & opt string "127.0.0.1:7789"
      & info [ "obs" ] ~docv:"ADDR"
          ~doc:
            "The serve instance's observability-plane address (its \
             --obs-listen), HOST:PORT.")
  in
  let interval =
    Arg.(
      value & opt float 2.
      & info [ "interval" ] ~docv:"SECONDS"
          ~doc:"Seconds between refreshes (default 2).")
  in
  let iterations =
    Arg.(
      value & opt (some int) None
      & info [ "iterations" ] ~docv:"N"
          ~doc:
            "Render $(docv) frames, then exit (default: loop until \
             interrupted).")
  in
  let no_clear =
    Arg.(
      value & flag
      & info [ "no-clear" ]
          ~doc:"Append frames instead of redrawing the screen in place.")
  in
  Cmd.v
    (Cmd.info "top"
       ~doc:
         "Live dashboard for a running mae serve: throughput, cache hit \
          ratio, per-method latency quantiles, SLO burn rates and the worst \
          captured traces and per-domain GC activity, polled from /metrics, \
          /slo, /tracez and /runtimez.")
    Term.(const run_top $ obs $ interval $ iterations $ no_clear)

(* check *)

let run_check trials cases seed max_rows max_degree max_nets report_out
    metrics_out verbose =
  reject_same_path [ ("--report", report_out); ("--metrics-out", metrics_out) ];
  validate_out_path ~flag:"--report" report_out;
  validate_out_path ~flag:"--metrics-out" metrics_out;
  let config =
    {
      Mae_check.Harness.default with
      trials;
      cases;
      seed;
      max_rows;
      max_degree;
      max_nets;
    }
  in
  let log = if verbose then prerr_endline else fun (_ : string) -> () in
  let report =
    try Mae_check.Harness.run ~log config
    with Invalid_argument msg -> or_die (Error msg)
  in
  Format.printf "%a@." Mae_check.Harness.pp_report report;
  begin
    match report_out with
    | None -> ()
    | Some path ->
        or_die
          (try
             let oc = open_out path in
             output_string oc
               (Mae_obs.Json.encode
                  (Mae_check.Harness.report_json config report));
             output_char oc '\n';
             close_out oc;
             Ok ()
           with Sys_error msg -> Error msg);
        Format.eprintf "check report written to %s@." path
  end;
  begin
    match metrics_out with
    | None -> ()
    | Some path ->
        or_die
          (if Filename.check_suffix path ".json" then
             Mae_obs.Metrics.write_json ~path
           else Mae_obs.Metrics.write_prometheus ~path);
        Format.eprintf "metrics written to %s@." path
  end;
  if not report.Mae_check.Harness.passed then exit 1

let check_cmd =
  let trials =
    Arg.(
      value & opt int Mae_check.Harness.default.trials
      & info [ "trials" ] ~docv:"N"
          ~doc:"Monte-Carlo trials per sweep case (default 200000).")
  in
  let cases =
    Arg.(
      value & opt int Mae_check.Harness.default.cases
      & info [ "cases" ] ~docv:"N"
          ~doc:"Randomized (n, D, H) sweep cases (default 64).")
  in
  let seed =
    Arg.(
      value & opt int Mae_check.Harness.default.seed
      & info [ "seed" ] ~docv:"SEED"
          ~doc:
            "Seed of the case generator and of every per-case Monte-Carlo \
             stream (runs are bit-for-bit reproducible).")
  in
  let max_rows =
    Arg.(
      value & opt int Mae_check.Harness.default.max_rows
      & info [ "max-rows" ] ~docv:"N"
          ~doc:
            "Largest row count n to sweep; the exact enumerator walks all \
             n^D placements, so keep n^D modest (default 8).")
  in
  let max_degree =
    Arg.(
      value & opt int Mae_check.Harness.default.max_degree
      & info [ "max-degree" ] ~docv:"D"
          ~doc:"Largest net degree D to sweep (default 5).")
  in
  let max_nets =
    Arg.(
      value & opt int Mae_check.Harness.default.max_nets
      & info [ "max-nets" ] ~docv:"H"
          ~doc:"Largest module net count H to sweep (default 64).")
  in
  let report_out =
    Arg.(
      value & opt (some string) None
      & info [ "report" ] ~docv:"FILE"
          ~doc:
            "Write the machine-readable JSON report (per-family comparison \
             counts and max deltas, shrunk reproducers for every failure, \
             golden-row and cross-method sanity results) here.")
  in
  let metrics_out =
    Arg.(
      value & opt (some string) None
      & info [ "metrics-out" ] ~docv:"FILE"
          ~doc:
            "Write the telemetry metrics registry (mae_check_* counters, \
             kernel cache counters) here after the sweep: Prometheus text, \
             or JSON when $(docv) ends in .json.")
  in
  let verbose =
    Arg.(
      value & flag
      & info [ "verbose"; "v" ]
          ~doc:"Stream per-case progress and failures to stderr as they happen.")
  in
  Cmd.v
    (Cmd.info "check"
       ~doc:
         "Cross-validate the closed-form probability kernels against \
          Monte-Carlo simulation and exact enumeration (three independent \
          oracles; exits non-zero on any disagreement).")
    Term.(
      const run_check $ trials $ cases $ seed $ max_rows $ max_degree
      $ max_nets $ report_out $ metrics_out $ verbose)

(* layout *)

let run_layout tech_files format input module_name methodology rows seed svg_out =
  let registry = or_die (registry_of tech_files) in
  let circuits = or_die (read_circuits ~format ~registry input) in
  let circuit =
    match module_name with
    | None -> begin
        match circuits with
        | [ c ] -> c
        | _ -> or_die (Error "several modules in file; pass --module NAME")
      end
    | Some name -> begin
        match
          List.find_opt
            (fun (c : Mae_netlist.Circuit.t) -> String.equal c.name name)
            circuits
        with
        | Some c -> c
        | None -> or_die (Error ("module " ^ name ^ " not found"))
      end
  in
  let process =
    match Mae_tech.Registry.find registry circuit.technology with
    | Some p -> p
    | None -> or_die (Error ("unknown process " ^ circuit.technology))
  in
  let rng = Mae_prob.Rng.create ~seed in
  let layout =
    match methodology with
    | `Standard_cell ->
        let rows =
          match rows with
          | Some r -> r
          | None -> Mae.Row_select.initial_rows circuit process
        in
        Mae_layout.Sc_flow.run ~rng ~rows circuit process
    | `Full_custom ->
        Mae_layout.Fc_flow.run ?row_candidates:(Option.map (fun r -> [ r ]) rows)
          ~rng circuit process
  in
  Format.printf
    "%s: %d rows, %d tracks, %d feed-throughs, %.0f x %.0f L = %.0f L^2, \
     aspect %a, wirelength %.0f L@."
    circuit.name layout.Mae_layout.Row_layout.rows layout.total_tracks
    layout.feed_through_count layout.width layout.height layout.area
    Mae_geom.Aspect.pp layout.aspect layout.hpwl;
  match svg_out with
  | None -> ()
  | Some path ->
      let geometry, wiring =
        match methodology with
        | `Standard_cell ->
            ( Mae_layout.Sc_flow.geometry circuit process layout,
              Some (Mae_layout.Sc_flow.wiring circuit process layout) )
        | `Full_custom ->
            (Mae_layout.Fc_flow.geometry circuit process layout, None)
      in
      or_die
        (Mae_report.Svg.write ~path
           (Mae_layout.Render.svg_of_geometry ?wiring geometry));
      begin
        match wiring with
        | Some w ->
            let report = Mae_layout.Extract.lvs w circuit in
            Format.printf "extraction: %a%s@." Mae_layout.Extract.pp_report
              report
              (if Mae_layout.Extract.clean report then " (clean)" else "")
        | None -> ()
      end;
      Format.printf "layout drawing written to %s@." path

let layout_cmd =
  let input = Arg.(required & pos 0 (some file) None & info [] ~docv:"FILE") in
  let module_name =
    Arg.(
      value & opt (some string) None
      & info [ "module" ] ~docv:"NAME" ~doc:"Module to lay out.")
  in
  let methodology =
    Arg.(
      value
      & opt (enum [ ("sc", `Standard_cell); ("fc", `Full_custom) ]) `Standard_cell
      & info [ "methodology" ] ~docv:"M" ~doc:"sc (standard-cell) or fc.")
  in
  let rows =
    Arg.(
      value & opt (some int) None
      & info [ "rows" ] ~docv:"N" ~doc:"Row count (default: automatic).")
  in
  let svg_out =
    Arg.(
      value & opt (some string) None
      & info [ "svg" ] ~docv:"FILE" ~doc:"Also write an SVG drawing here.")
  in
  Cmd.v
    (Cmd.info "layout" ~doc:"Place and route one module (the comparator flows).")
    Term.(
      const run_layout $ tech_files_arg $ format_arg $ input $ module_name
      $ methodology $ rows $ seed_arg $ svg_out)

(* floorplan *)

let run_floorplan db_path allowance seed svg_out =
  let store = or_die (Mae_db.Store.load ~path:db_path) in
  match
    Mae_floorplan.Chip.plan ~routing_allowance:allowance
      ~rng:(Mae_prob.Rng.create ~seed) store
  with
  | Error e -> or_die (Error e)
  | Ok plan ->
      Format.printf "%a@." Mae_floorplan.Chip.pp_plan plan;
      begin
        match svg_out with
        | None -> ()
        | Some path ->
            or_die
              (Mae_report.Svg.write ~path
                 (Mae_floorplan.Render.svg_of_plan plan));
            Format.printf "floor plan drawing written to %s@." path
      end

let floorplan_cmd =
  let db_path = Arg.(required & pos 0 (some file) None & info [] ~docv:"DB") in
  let allowance =
    Arg.(
      value & opt float 0.10
      & info [ "allowance" ] ~docv:"FRAC"
          ~doc:"Inter-module routing allowance (linear fraction).")
  in
  let svg_out =
    Arg.(
      value & opt (some string) None
      & info [ "svg" ] ~docv:"FILE" ~doc:"Also write an SVG drawing here.")
  in
  Cmd.v
    (Cmd.info "floorplan"
       ~doc:"Floor-plan the modules of an estimate database (Figure 1 output).")
    Term.(const run_floorplan $ db_path $ allowance $ seed_arg $ svg_out)

(* generate *)

let run_generate kind size technology =
  let circuit =
    match kind with
    | `Counter -> Mae_workload.Generators.counter ~technology size
    | `Alu -> Mae_workload.Generators.alu ~technology size
    | `Adder -> Mae_workload.Generators.ripple_adder ~technology size
    | `Decoder -> Mae_workload.Generators.decoder ~technology size
    | `Parity -> Mae_workload.Generators.parity ~technology size
    | `Shift -> Mae_workload.Generators.shift_register ~technology size
    | `Random ->
        Mae_workload.Random_circuit.generate
          ~rng:(Mae_prob.Rng.create ~seed:size)
          { Mae_workload.Random_circuit.default_params with
            devices = size; technology }
  in
  print_string (Mae_hdl.Printer.to_string circuit)

let generate_cmd =
  let kind =
    Arg.(
      required
      & pos 0
          (some
             (enum
                [ ("counter", `Counter); ("alu", `Alu); ("adder", `Adder);
                  ("decoder", `Decoder); ("parity", `Parity); ("shift", `Shift);
                  ("random", `Random) ]))
          None
      & info [] ~docv:"KIND")
  in
  let size =
    Arg.(value & opt int 8 & info [ "size" ] ~docv:"N" ~doc:"Bits/stages/devices.")
  in
  let technology =
    Arg.(
      value & opt string "nmos25"
      & info [ "technology" ] ~docv:"T" ~doc:"Target process name.")
  in
  Cmd.v
    (Cmd.info "generate" ~doc:"Emit a parameterized benchmark circuit as HDL.")
    Term.(const run_generate $ kind $ size $ technology)

(* processes *)

let run_processes tech_files =
  let registry = or_die (registry_of tech_files) in
  List.iter
    (fun name ->
      let p = Mae_tech.Registry.find_exn registry name in
      Format.printf "%a@." Mae_tech.Process.pp p)
    (Mae_tech.Registry.names registry)

let processes_cmd =
  Cmd.v
    (Cmd.info "processes" ~doc:"List known fabrication processes.")
    Term.(const run_processes $ tech_files_arg)

(* table1 / table2: quick reproductions (the full harness is bench/main.exe) *)

let run_table1 seed =
  let process = Mae_tech.Builtin.nmos25 in
  List.iter
    (fun (e : Mae_workload.Bench_circuits.entry) ->
      let exact, average = Mae.Fullcustom.estimate_both e.circuit process in
      let real =
        Mae_layout.Fc_flow.run ~rng:(Mae_prob.Rng.create ~seed) e.circuit process
      in
      Format.printf
        "%-10s est(exact) %7.0f  est(avg) %7.0f  real %7.0f  err %s@." e.name
        exact.Mae.Estimate.area average.Mae.Estimate.area
        real.Mae_layout.Row_layout.area
        (Mae_report.Err.percent_string ~estimated:exact.Mae.Estimate.area
           ~real:real.Mae_layout.Row_layout.area))
    (Mae_workload.Bench_circuits.table1 ())

let table1_cmd =
  Cmd.v
    (Cmd.info "table1" ~doc:"Quick Table 1 reproduction (full-custom).")
    Term.(const run_table1 $ seed_arg)

let run_table2 seed =
  let process = Mae_tech.Builtin.nmos25 in
  List.iter
    (fun (e : Mae_workload.Bench_circuits.entry) ->
      List.iter
        (fun rows ->
          let est = Mae.Stdcell.estimate ~rows e.circuit process in
          let real =
            Mae_layout.Sc_flow.run ~rng:(Mae_prob.Rng.create ~seed) ~rows
              e.circuit process
          in
          Format.printf "%-10s rows %d  est %8.0f  real %8.0f  err %s@." e.name
            rows est.Mae.Estimate.area real.Mae_layout.Row_layout.area
            (Mae_report.Err.percent_string ~estimated:est.Mae.Estimate.area
               ~real:real.Mae_layout.Row_layout.area))
        [ 2; 3; 4 ])
    (Mae_workload.Bench_circuits.table2 ())

let table2_cmd =
  Cmd.v
    (Cmd.info "table2" ~doc:"Quick Table 2 reproduction (standard-cell).")
    Term.(const run_table2 $ seed_arg)

let main_cmd =
  let doc = "pre-layout VLSI module area estimation (Chen & Bushnell, DAC'88)" in
  Cmd.group
    (Cmd.info "mae" ~version:"1.0.0" ~doc)
    [
      estimate_cmd; serve_cmd; top_cmd; check_cmd; layout_cmd; floorplan_cmd;
      generate_cmd; processes_cmd; table1_cmd; table2_cmd;
    ]

let () = exit (Cmd.eval main_cmd)
