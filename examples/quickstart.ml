(* Quickstart: describe a module in the structural HDL, run the Figure 1
   pipeline (input interface -> both estimators -> output database) and
   print what a floor planner would receive.

     dune exec examples/quickstart.exe *)

let hdl_text =
  {|
  // A one-bit full adder in the nMOS 2.5um process.
  module full_adder {
    technology nmos25;
    port a in;  port b in;  port cin in;
    port s out; port cout out;
    device x1 xor2 (a, b, p);
    device x2 xor2 (p, cin, s);
    device g1 nand2 (a, b, g);
    device g2 nand2 (p, cin, h);
    device g3 nand2 (g, h, cout);
  }
|}

let () =
  let registry = Mae_tech.Registry.create () in
  match Mae.Driver.run_string ~registry hdl_text with
  | Error e -> Format.printf "estimation failed: %a@." Mae.Driver.pp_error e
  | Ok reports ->
      List.iter
        (fun (r : Mae.Driver.module_report) ->
          Format.printf "== %a ==@."
            Mae_netlist.Circuit.pp_summary r.circuit;
          begin
            match r.expanded with
            | Some tx ->
                Format.printf "flattened for full-custom: %d transistors@."
                  (Mae_netlist.Circuit.device_count tx)
            | None -> ()
          end;
          (* the default method set always carries these three results *)
          begin
            match Mae.Driver.stdcell r with
            | Some sc -> Format.printf "%a@." Mae.Estimate.pp_stdcell sc
            | None -> ()
          end;
          Format.printf "row sweep:@.";
          List.iter
            (fun (e : Mae.Estimate.stdcell) ->
              Format.printf "  %a@." Mae.Estimate.pp_stdcell e)
            (Mae.Driver.stdcell_sweep r);
          begin
            match Mae.Driver.fullcustom_exact r with
            | Some fc ->
                Format.printf "%a  (exact device areas)@."
                  Mae.Estimate.pp_fullcustom fc
            | None -> ()
          end;
          begin
            match Mae.Driver.fullcustom_average r with
            | Some fc ->
                Format.printf "%a  (average device areas)@."
                  Mae.Estimate.pp_fullcustom fc
            | None -> ()
          end;
          match Mae_db.Record.of_report r with
          | Error msg -> Format.printf "no database entry: %s@." (Mae_db.Record.of_report_error_to_string msg)
          | Ok record ->
              let store = Mae_db.Store.create () in
              Mae_db.Store.add store record;
              Format.printf "@.database entry for the floor planner:@.%s@."
                (Mae_db.Store.to_string store))
        reports
