(* Registry adapters: the four comparison predictors of the paper's
   introduction, registered as methodologies so they run through the
   same driver/engine/serve pipeline as the paper's own estimators.

   Registration happens at this module's initialization.  OCaml links a
   library unit only when something references it, so executables that
   want the baselines selectable must call {!ensure_registered} (the
   engine, the serve daemon, the check harness and the profiler do). *)

open Mae

let ensure_registered () = ()

let square area =
  let edge = Float.sqrt area in
  Methodology.Scalar { area; width = edge; height = edge }

let _naive =
  Methodology.register ~name:"naive"
    ~doc:
      "Zero-information baseline: summed device area over a 0.7 packing \
       factor, reported as a square"
    (fun ctx circuit ->
      Ok
        (square
           (Naive.estimate ~stats:ctx.Methodology.stats circuit
              ctx.Methodology.process)))

(* CHAMP needs training pairs; the paper fit its empirical formulas on
   layout experiments.  We fit once, lazily, on the Table 1 bench
   circuits' exact full-custom estimates under the paper's nmos25
   process -- the closest thing the repo has to "numerous layout
   experiments". *)
let champ_model =
  lazy
    (let process = Mae_tech.Builtin.nmos25 in
     let pairs =
       List.map
         (fun (e : Mae_workload.Bench_circuits.entry) ->
           let stats = Mae_netlist.Stats.compute e.circuit process in
           let fc =
             Fullcustom.estimate ~stats ~mode:Config.Exact_areas e.circuit
               process
           in
           (stats.Mae_netlist.Stats.device_count, fc.Estimate.area))
         (Mae_workload.Bench_circuits.table1 ())
     in
     Champ.fit pairs)

let _champ =
  Methodology.register ~name:"champ"
    ~doc:
      "CHAMP-style power law area = a * devices^b, fit on the Table 1 bench \
       suite's exact full-custom estimates"
    (fun ctx (_ : Mae_netlist.Circuit.t) ->
      match Lazy.force champ_model with
      | Error reason ->
          Error
            (Methodology.Unsupported
               { methodology = "champ"; reason = "model fit failed: " ^ reason })
      | Ok model ->
          let devices = ctx.Methodology.stats.Mae_netlist.Stats.device_count in
          if devices < 1 then
            Error
              (Methodology.Invalid_input
                 { methodology = "champ"; reason = "empty circuit" })
          else Ok (square (Champ.estimate model ~devices)))

let count_ports dir (circuit : Mae_netlist.Circuit.t) =
  Array.fold_left
    (fun acc (p : Mae_netlist.Port.t) ->
      if p.direction = dir then acc + 1 else acc)
    0 circuit.ports

let _pla =
  Methodology.register ~name:"pla"
    ~doc:
      "Two-level PLA folding of the module: AND/OR planes sized from the \
       port counts with one product term per device"
    (fun ctx circuit ->
      let spec =
        {
          Pla.inputs = Stdlib.max 1 (count_ports Mae_netlist.Port.Input circuit);
          outputs = Stdlib.max 1 (count_ports Mae_netlist.Port.Output circuit);
          product_terms =
            Stdlib.max 1 ctx.Methodology.stats.Mae_netlist.Stats.device_count;
        }
      in
      let width, height = Pla.dims spec ctx.Methodology.process in
      Ok (Methodology.Scalar { area = width *. height; width; height }))

let plest_density = 6.0

let _plest =
  Methodology.register ~name:"plest"
    ~doc:
      "PLEST-style density model (Kurdahi & Parker): cell rows plus a fixed \
       assumed 6 tracks/channel wiring density at the paper's initial row \
       count"
    (fun ctx circuit ->
      let stats = ctx.Methodology.stats in
      let rows =
        Row_select.initial_rows ~stats circuit ctx.Methodology.process
      in
      let area =
        Plest.estimate ~density:plest_density ~rows ~stats circuit
          ctx.Methodology.process
      in
      let width =
        Float.of_int stats.Mae_netlist.Stats.device_count
        *. stats.Mae_netlist.Stats.average_width /. Float.of_int rows
      in
      if width <= 0. then
        Error
          (Methodology.Estimator_failure
             { methodology = "plest"; reason = "zero row length" })
      else Ok (Methodology.Scalar { area; width; height = area /. width }))
