(** Registry adapters for the comparison predictors.

    Registers the four baselines with {!Mae.Methodology} at module
    initialization, making them selectable by name everywhere the
    registry reaches (CLI [--methods], engine batch requests, serve JSON
    requests):

    - [naive]: {!Naive} -- device area over a packing factor, as a square;
    - [champ]: {!Champ} -- power law fit on the Table 1 bench suite's
      exact full-custom estimates under [nmos25];
    - [pla]: {!Pla} -- AND/OR plane dimensions from port counts with one
      product term per device;
    - [plest]: {!Plest} -- fixed assumed wiring density (6 tracks per
      channel) at the paper's initial row count.

    All four produce {!Mae.Methodology.Scalar} outcomes. *)

val ensure_registered : unit -> unit
(** Force this module's initialization (and therefore registration).
    OCaml only links and initializes a library unit something references;
    call this from any executable that wants the baselines in the
    registry. *)
