let stats_of ?stats circuit process =
  match stats with
  | Some (s : Mae_netlist.Stats.t) -> s
  | None -> Mae_netlist.Stats.compute circuit process

let estimate ?(utilization = 0.7) ?stats circuit process =
  if utilization <= 0. || utilization > 1. then
    invalid_arg "Naive.estimate: utilization outside (0, 1]";
  let stats = stats_of ?stats circuit process in
  if stats.device_count = 0 then invalid_arg "Naive.estimate: empty circuit";
  stats.total_device_area /. utilization

let estimate_square ?utilization ?stats circuit process =
  let area = estimate ?utilization ?stats circuit process in
  let edge = Float.sqrt area in
  (edge, edge)
