(** The zero-information baseline: active area over a packing factor.

    A designer with no wiring model guesses module area as the summed
    device area divided by an assumed utilization.  This is the seed the
    floor-planning iteration study starts from when demonstrating how
    much the real estimator helps. *)

val estimate :
  ?utilization:float ->
  ?stats:Mae_netlist.Stats.t ->
  Mae_netlist.Circuit.t ->
  Mae_tech.Process.t ->
  Mae_geom.Lambda.area
(** Default utilization 0.7.  [stats], when given, must be
    [Stats.compute circuit process] -- callers that already hold it avoid
    recomputing.  Raises [Invalid_argument] on a utilization outside
    (0, 1] or an empty circuit; raises
    {!Mae_netlist.Stats.Unknown_kind}. *)

val estimate_square :
  ?utilization:float ->
  ?stats:Mae_netlist.Stats.t ->
  Mae_netlist.Circuit.t ->
  Mae_tech.Process.t ->
  Mae_geom.Lambda.t * Mae_geom.Lambda.t
(** The same area as a square (width, height). *)
