type density = float

let oracle_density (layout : Mae_layout.Row_layout.t) =
  let channels = Stdlib.max 1 (layout.rows - 1) in
  let inner = ref 0 in
  (* channels strictly between rows are indices 1 .. rows-1 *)
  for c = 1 to layout.rows - 1 do
    inner := !inner + layout.channel_tracks.(c)
  done;
  Float.of_int !inner /. Float.of_int channels

let estimate ~density ~rows ?stats circuit process =
  if density < 0. then invalid_arg "Plest.estimate: negative density";
  if rows < 1 then invalid_arg "Plest.estimate: rows < 1";
  let stats =
    match stats with
    | Some (s : Mae_netlist.Stats.t) -> s
    | None -> Mae_netlist.Stats.compute circuit process
  in
  if stats.device_count = 0 then invalid_arg "Plest.estimate: empty circuit";
  let row_length =
    Float.of_int stats.device_count *. stats.average_width /. Float.of_int rows
  in
  let cell_height = Float.of_int rows *. process.Mae_tech.Process.row_height in
  let wiring_height =
    Float.of_int (rows + 1) *. density *. process.Mae_tech.Process.track_pitch
  in
  row_length *. (cell_height +. wiring_height)
