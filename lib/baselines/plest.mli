(** PLEST-style standard-cell area estimation (Kurdahi & Parker, DAC'86).

    PLEST predicts standard-cell area from the {e local wiring density} —
    the average number of occupied tracks per routing channel.  The
    paper's critique (section 2): that density "is known only when
    physical layout is done", i.e. the model needs post-layout
    information.  We reproduce both halves: an estimator parameterized by
    a density, and an oracle that extracts the density from a finished
    layout (which is the only way to get it right). *)

type density = float
(** Average occupied tracks per routing channel (>= 0). *)

val oracle_density : Mae_layout.Row_layout.t -> density
(** Extract the mean tracks-per-channel from a real layout, counting only
    the channels between rows. *)

val estimate :
  density:density ->
  rows:int ->
  ?stats:Mae_netlist.Stats.t ->
  Mae_netlist.Circuit.t ->
  Mae_tech.Process.t ->
  Mae_geom.Lambda.area
(** Cell area plus [rows + 1] channels of [density] tracks each, times the
    mean row length.  [stats], when given, must be
    [Stats.compute circuit process].  Raises [Invalid_argument] on a
    negative density or [rows < 1]; raises
    {!Mae_netlist.Stats.Unknown_kind}. *)
