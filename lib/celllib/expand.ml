type error = Unknown_cell of { device : string; kind : string }

let pp_error ppf (Unknown_cell { device; kind }) =
  Format.fprintf ppf "device %s: no cell template for kind %s" device kind

(* A skipped pin marks a terminal that must not be wired (supply rails
   when [include_supplies] is false). *)
exception Skip

let circuit ?(include_supplies = false) library (c : Mae_netlist.Circuit.t) =
  let builder =
    Mae_netlist.Builder.create ~name:(c.name ^ "_tx") ~technology:c.technology
  in
  let net_name i = c.nets.(i).Mae_netlist.Net.name in
  let resolve (d : Mae_netlist.Device.t) = function
    | Cell.Pin i ->
        if i >= Array.length d.pins then
          (* The schematic gave fewer pins than the cell defines; connect
             the missing pin to a fresh private net so estimation can
             proceed (matches how a layout tool would leave it floating). *)
          String.concat "" [ d.name; ".unconnected"; string_of_int i ]
        else net_name d.pins.(i)
    | Cell.Internal n -> String.concat "" [ d.name; "."; n ]
    | Cell.Vdd -> if include_supplies then "vdd!" else raise Skip
    | Cell.Gnd -> if include_supplies then "gnd!" else raise Skip
  in
  let expand_device (d : Mae_netlist.Device.t) =
    match Library.find library d.kind with
    | None -> Error (Unknown_cell { device = d.name; kind = d.kind })
    | Some cell ->
        List.iter
          (fun (t : Cell.transistor) ->
            let terminals = [ t.drain; t.gate; t.source ] in
            let nets =
              List.filter_map
                (fun term ->
                  match resolve d term with
                  | name -> Some name
                  | exception Skip -> None)
                terminals
            in
            ignore
              (Mae_netlist.Builder.add_device builder
                 ~name:(d.name ^ "." ^ t.name)
                 ~kind:t.kind ~nets))
          cell.transistors;
        Ok ()
  in
  let rec go i =
    if i >= Array.length c.devices then Ok ()
    else begin
      match expand_device c.devices.(i) with
      | Ok () -> go (i + 1)
      | Error e -> Error e
    end
  in
  match go 0 with
  | Error e -> Error e
  | Ok () ->
      Array.iter
        (fun (p : Mae_netlist.Port.t) ->
          Mae_netlist.Builder.add_port builder ~name:p.name
            ~direction:p.direction ~net:(net_name p.net))
        c.ports;
      Ok (Mae_netlist.Builder.build builder)

let transistor_count library (c : Mae_netlist.Circuit.t) =
  let rec go acc i =
    if i >= Array.length c.devices then Ok acc
    else begin
      let d = c.devices.(i) in
      match Library.find library d.kind with
      | None -> Error (Unknown_cell { device = d.name; kind = d.kind })
      | Some cell -> go (acc + Cell.transistor_count cell) (i + 1)
    end
  in
  go 0 0
