(* The ground-truth oracle: walk every one of the rows^degree equally
   likely placements of a net's components and tally the quantities the
   closed-form kernels claim to compute.  No sampling error, no
   combinatorial identities -- just counting.  Kept deliberately naive;
   its only job is to be obviously correct. *)

let max_states = 10_000_000

type t = {
  rows : int;
  degree : int;
  placements : int;
  span_counts : int array;
  feed_counts : int array;
}

let state_count ~rows ~degree =
  let rec go acc i =
    if i = 0 then acc
    else if acc > max_states / rows then
      invalid_arg
        (Printf.sprintf
           "Enumerate.net: rows^degree = %d^%d exceeds the %d-state budget"
           rows degree max_states)
    else go (acc * rows) (i - 1)
  in
  go 1 degree

let net ~rows ~degree =
  if rows < 1 then invalid_arg "Enumerate.net: rows < 1";
  if degree < 1 then invalid_arg "Enumerate.net: degree < 1";
  let placements = state_count ~rows ~degree in
  let span_counts = Array.make (rows + 1) 0 in
  let feed_counts = Array.make rows 0 in
  let assign = Array.make degree 0 in
  let occupied = Array.make rows false in
  let running = ref true in
  while !running do
    Array.fill occupied 0 rows false;
    let lowest = ref rows and highest = ref (-1) in
    Array.iter
      (fun r ->
        occupied.(r) <- true;
        if r < !lowest then lowest := r;
        if r > !highest then highest := r)
      assign;
    let span = ref 0 in
    for r = 0 to rows - 1 do
      if occupied.(r) then incr span
    done;
    span_counts.(!span) <- span_counts.(!span) + 1;
    (* same event as the simulator and equation (5): a feed-through
       crosses row r+1 when components sit strictly above and strictly
       below it *)
    for r = !lowest + 1 to !highest - 1 do
      feed_counts.(r) <- feed_counts.(r) + 1
    done;
    (* odometer: next placement in lexicographic order *)
    let rec bump i =
      if i < 0 then running := false
      else if assign.(i) + 1 < rows then assign.(i) <- assign.(i) + 1
      else begin
        assign.(i) <- 0;
        bump (i - 1)
      end
    in
    bump (degree - 1)
  done;
  { rows; degree; placements; span_counts; feed_counts }

let span_prob t span =
  if span < 0 || span > t.rows then 0.
  else Float.of_int t.span_counts.(span) /. Float.of_int t.placements

let span_dist t =
  Mae_prob.Dist.of_weights
    (List.filter_map
       (fun s ->
         if t.span_counts.(s) = 0 then None
         else Some (s, Float.of_int t.span_counts.(s)))
       (List.init t.rows (fun i -> i + 1)))

let expected_span t =
  let sum = ref 0. in
  for s = 1 to t.rows do
    sum := !sum +. (Float.of_int s *. Float.of_int t.span_counts.(s))
  done;
  !sum /. Float.of_int t.placements

let feed_prob t ~row =
  if row < 1 || row > t.rows then
    invalid_arg "Enumerate.feed_prob: row out of range";
  Float.of_int t.feed_counts.(row - 1) /. Float.of_int t.placements
