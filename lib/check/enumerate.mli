(** Exact brute-force enumeration of net placements: the zero-error
    oracle of the differential harness.

    A net with [degree] components dropped uniformly into [rows] rows
    has exactly [rows]^[degree] equally likely placements; for the small
    cases the harness sweeps (D <= 5, n <= 8 by default) every placement
    is visited and the row span and per-row feed-through events are
    tallied by direct counting.  The resulting probabilities are exact
    integer ratios -- the reference the closed-form kernels of
    equations (2)-(8) are compared against to 1e-12. *)

type t = {
  rows : int;
  degree : int;
  placements : int;  (** [rows]^[degree] *)
  span_counts : int array;
      (** [span_counts.(s)]: placements occupying exactly [s] distinct
          rows; length [rows + 1], index 0 always 0. *)
  feed_counts : int array;
      (** [feed_counts.(i)]: placements with a component strictly above
          and one strictly below row i+1 (the equation (5) event);
          length [rows]. *)
}

val net : rows:int -> degree:int -> t
(** Enumerate all placements.  Raises [Invalid_argument] when
    [rows < 1], [degree < 1], or [rows]^[degree] exceeds the
    10-million-state budget. *)

val span_prob : t -> int -> float
(** Exact P(span = s); 0 outside [0, rows]. *)

val span_dist : t -> Mae_prob.Dist.t
(** The exact row-span distribution (support restricted to outcomes
    with non-zero count). *)

val expected_span : t -> float
(** Exact E(span), before the paper's ceiling. *)

val feed_prob : t -> row:int -> float
(** Exact feed-through probability of the 1-based [row].  Raises
    [Invalid_argument] outside [1, rows]. *)
