(* The differential correctness harness: three independent oracles over
   the paper's probability kernels.

   (a) the closed-form kernels the pipeline serves (Kernel_cache,
       Feedthrough) -- the code under test;
   (b) the Monte-Carlo simulator (Montecarlo), whose agreement is judged
       statistically inside a z-sigma Wilson interval;
   (c) the exact enumerator (Enumerate), which walks all n^D placements
       and is compared to the closed forms to a hard 1e-12.

   Cases (n, D, H) are drawn from Mae_workload.Sweep; any failing case
   is shrunk to a minimal reproducer before it is reported.  The paper's
   Table 1 / Table 2 estimator outputs are pinned as golden rows so a
   numeric regression anywhere in the estimation stack trips the same
   gate. *)

module Sweep = Mae_workload.Sweep
module Kc = Mae_prob.Kernel_cache

(* The golden rows are re-derived through the methodology registry and
   the cross-method sanity section runs every registered estimator, so
   the baselines must be registered before [run]. *)
let () = Mae_baselines.Methods.ensure_registered ()

let cases_count =
  Mae_obs.Metrics.counter "mae_check_cases_total"
    ~help:"Sweep cases examined by the differential harness"

let comparisons_count =
  Mae_obs.Metrics.counter "mae_check_comparisons_total"
    ~help:"Oracle-vs-oracle comparisons performed by the harness"

let violations_count =
  Mae_obs.Metrics.counter "mae_check_violations_total"
    ~help:"Comparisons that exceeded their tolerance"

type config = {
  trials : int;
  cases : int;
  seed : int;
  max_rows : int;
  max_degree : int;
  max_nets : int;
  exact_tol : float;
  eq5_tol : float;
  mc_z : float;
}

let default =
  {
    trials = 200_000;
    cases = 64;
    seed = 42;
    max_rows = 8;
    max_degree = 5;
    max_nets = 64;
    exact_tol = 1e-12;
    eq5_tol = 1e-10;
    mc_z = 4.;
  }

let validate config =
  if config.trials < 1 then invalid_arg "Harness: trials < 1";
  if config.cases < 1 then invalid_arg "Harness: cases < 1";
  if config.max_rows < 1 then invalid_arg "Harness: max_rows < 1";
  if config.max_degree < 1 then invalid_arg "Harness: max_degree < 1";
  if config.max_nets < 1 then invalid_arg "Harness: max_nets < 1";
  if config.exact_tol <= 0. then invalid_arg "Harness: exact_tol <= 0";
  if config.eq5_tol <= 0. then invalid_arg "Harness: eq5_tol <= 0";
  if config.mc_z <= 0. then invalid_arg "Harness: mc_z <= 0"

type violation = { delta : float; bound : float; detail : string }

type outcome = {
  comparisons : int;
  max_delta : float;
  violations : violation list;
}

type finding = {
  check : string;
  case : Sweep.case;
  shrunk : Sweep.case;
  delta : float;
  bound : float;
  detail : string;
}

type family_stat = { family : string; comparisons : int; max_delta : float }

type golden_result = {
  label : string;
  expected : float;
  actual : float;
  ok : bool;
}

type cross_result = { label : string; detail : string; ok : bool }

type report = {
  cases_run : int;
  comparisons : int;
  families : family_stat list;
  findings : finding list;
  golden : golden_result list;
  cross : cross_result list;
  passed : bool;
}

(* --- one deterministic rng per (config, case): shrinking re-runs a
   Monte-Carlo family on a candidate case and must see the same stream
   every time --- *)

let case_rng config (c : Sweep.case) =
  Mae_prob.Rng.create
    ~seed:
      (config.seed
      lxor (c.rows * 0x9e3779b9)
      lxor (c.degree * 0x85ebca6b)
      lxor (c.nets * 0xc2b2ae35))

(* --- outcome accumulation --- *)

let collect checks =
  let comparisons = ref 0 and max_delta = ref 0. and violations = ref [] in
  List.iter
    (fun (delta, bound, detail) ->
      incr comparisons;
      if delta > !max_delta then max_delta := delta;
      if delta > bound then violations := { delta; bound; detail } :: !violations)
    checks;
  {
    comparisons = !comparisons;
    max_delta = !max_delta;
    violations = List.rev !violations;
  }

let inside (lo, hi) p = p >= lo && p <= hi

(* --- the check families --- *)

(* Exact enumeration vs the served closed-form row-span kernel
   (equations 2-3, Exact occupancy model). *)
let span_exact_vs_enum config (c : Sweep.case) =
  let e = Enumerate.net ~rows:c.rows ~degree:c.degree in
  let d = Kc.row_span_dist ~model:Kc.Exact ~rows:c.rows ~degree:c.degree in
  let per_outcome =
    List.init c.rows (fun i ->
        let s = i + 1 in
        let exact = Enumerate.span_prob e s in
        let closed = Mae_prob.Dist.prob d s in
        ( Float.abs (exact -. closed),
          config.exact_tol,
          Printf.sprintf "P(span=%d): enum %.17g vs closed %.17g" s exact
            closed ))
  in
  let expectation =
    let exact = Enumerate.expected_span e in
    let closed = Mae_prob.Dist.expectation d in
    ( Float.abs (exact -. closed),
      config.exact_tol *. Float.of_int c.rows,
      Printf.sprintf "E(span): enum %.17g vs closed %.17g" exact closed )
  in
  let ceiling =
    let enum_ceil = Mae_prob.Dist.expectation_ceil (Enumerate.span_dist e) in
    let closed_ceil = Kc.expected_span ~model:Kc.Exact ~rows:c.rows ~degree:c.degree in
    ( Float.of_int (abs (enum_ceil - closed_ceil)),
      0.,
      Printf.sprintf "ceil E(span): enum %d vs closed %d" enum_ceil closed_ceil
    )
  in
  collect (per_outcome @ [ expectation; ceiling ])

(* The paper's equation-(2) b-recurrence coincides with the exact
   occupancy distribution whenever D <= n (k = min(n, D) = D). *)
let span_paper_vs_enum config (c : Sweep.case) =
  if c.degree > c.rows then collect []
  else begin
    let e = Enumerate.net ~rows:c.rows ~degree:c.degree in
    let d = Kc.row_span_dist ~model:Kc.Paper ~rows:c.rows ~degree:c.degree in
    collect
      (List.init c.rows (fun i ->
           let s = i + 1 in
           let exact = Enumerate.span_prob e s in
           let closed = Mae_prob.Dist.prob d s in
           ( Float.abs (exact -. closed),
             config.exact_tol,
             Printf.sprintf "paper P(span=%d): enum %.17g vs eq2 %.17g" s
               exact closed )))
  end

(* Exact enumeration vs the inclusion-exclusion feed-through form
   (equations 4-6). *)
let feed_closed_vs_enum config (c : Sweep.case) =
  let e = Enumerate.net ~rows:c.rows ~degree:c.degree in
  collect
    (List.init c.rows (fun i ->
         let row = i + 1 in
         let exact = Enumerate.feed_prob e ~row in
         let closed =
           Mae.Feedthrough.prob_in_row_closed ~rows:c.rows ~degree:c.degree
             ~row
         in
         ( Float.abs (exact -. closed),
           config.exact_tol,
           Printf.sprintf "P(feed row %d): enum %.17g vs closed %.17g" row
             exact closed )))

(* Equation (5) verbatim double sum vs its closed form. *)
let feed_eq5_vs_closed config (c : Sweep.case) =
  collect
    (List.init c.rows (fun i ->
         let row = i + 1 in
         let eq5 =
           Mae.Feedthrough.prob_in_row ~rows:c.rows ~degree:c.degree ~row
         in
         let closed =
           Mae.Feedthrough.prob_in_row_closed ~rows:c.rows ~degree:c.degree
             ~row
         in
         ( Float.abs (eq5 -. closed),
           config.eq5_tol,
           Printf.sprintf "eq5 row %d: sum %.17g vs closed %.17g" row eq5
             closed )))

(* Equation (9): for an odd row count the central row is an integer and
   the two-component model must equal the enumerated crossing
   probability exactly.  (For even n equation (9) evaluates the closed
   form at the fractional central row -- the paper's continuous
   interpolation, checked against the closed form instead.) *)
let feed_eq9_vs_enum config (c : Sweep.case) =
  if c.rows land 1 = 0 then
    let eq9 = Kc.two_component_feed_prob ~rows:c.rows in
    let central = Mae.Feedthrough.prob_central ~rows:c.rows ~degree:2 in
    collect
      [
        ( Float.abs (eq9 -. central),
          config.exact_tol,
          Printf.sprintf "eq9 n=%d: %.17g vs closed central %.17g" c.rows eq9
            central );
      ]
  else begin
    let e = Enumerate.net ~rows:c.rows ~degree:2 in
    let central = (c.rows + 1) / 2 in
    let eq9 = Kc.two_component_feed_prob ~rows:c.rows in
    let exact = Enumerate.feed_prob e ~row:central in
    collect
      [
        ( Float.abs (eq9 -. exact),
          config.exact_tol,
          Printf.sprintf "eq9 n=%d: %.17g vs enum central %.17g" c.rows eq9
            exact );
      ]
  end

(* Monte-Carlo row-span frequencies vs exact enumeration, judged inside
   the z-sigma Wilson interval. *)
let span_mc_wilson config (c : Sweep.case) =
  let e = Enumerate.net ~rows:c.rows ~degree:c.degree in
  let counts =
    Mae_prob.Montecarlo.simulate_counts ~rng:(case_rng config c)
      ~trials:config.trials ~rows:c.rows ~degree:c.degree
  in
  let support = Stdlib.min c.rows c.degree in
  collect
    (List.init support (fun i ->
         let s = i + 1 in
         let exact = Enumerate.span_prob e s in
         let lo, hi =
           Mae_prob.Montecarlo.span_interval counts ~z:config.mc_z ~span:s
         in
         let sampled =
           Float.of_int counts.Mae_prob.Montecarlo.span_counts.(s)
           /. Float.of_int config.trials
         in
         ( Float.abs (sampled -. exact),
           (if inside (lo, hi) exact then Float.infinity else 0.),
           Printf.sprintf
             "P(span=%d)=%.8g outside %.1f-sigma Wilson [%.8g, %.8g]" s exact
             config.mc_z lo hi )))

(* Monte-Carlo feed-through frequencies vs the closed form, same
   statistical judgement. *)
let feed_mc_wilson config (c : Sweep.case) =
  let counts =
    Mae_prob.Montecarlo.simulate_counts ~rng:(case_rng config c)
      ~trials:config.trials ~rows:c.rows ~degree:c.degree
  in
  collect
    (List.init c.rows (fun i ->
         let row = i + 1 in
         let closed =
           Mae.Feedthrough.prob_in_row_closed ~rows:c.rows ~degree:c.degree
             ~row
         in
         let lo, hi =
           Mae_prob.Montecarlo.feed_interval counts ~z:config.mc_z ~row
         in
         let sampled =
           Float.of_int counts.Mae_prob.Montecarlo.feed_counts.(row - 1)
           /. Float.of_int config.trials
         in
         ( Float.abs (sampled -. closed),
           (if inside (lo, hi) closed then Float.infinity else 0.),
           Printf.sprintf
             "P(feed row %d)=%.8g outside %.1f-sigma Wilson [%.8g, %.8g]" row
             closed config.mc_z lo hi )))

(* Equations (10)-(11): H independent two-component nets against the
   served binomial.  The simulation path shares nothing with the pmf
   computation (raw uniforms vs log-space Comb), so it cross-validates
   the binomial machinery; the mean is also pinned to H*p in closed
   form. *)
let binom_mc_wilson config (c : Sweep.case) =
  let p = Kc.two_component_feed_prob ~rows:c.rows in
  let dist = Mae.Feedthrough.feed_through_dist ~net_count:c.nets ~rows:c.rows in
  let rng = case_rng config c in
  let t = Stdlib.min config.trials 20_000 in
  let counts = Array.make (c.nets + 1) 0 in
  for _ = 1 to t do
    let m = ref 0 in
    for _ = 1 to c.nets do
      if Mae_prob.Rng.uniform rng < p then incr m
    done;
    counts.(!m) <- counts.(!m) + 1
  done;
  let mean_exact = Float.of_int c.nets *. p in
  let mean_closed = Mae_prob.Dist.expectation dist in
  let mean_sampled =
    let sum = ref 0. in
    Array.iteri
      (fun m n -> sum := !sum +. (Float.of_int m *. Float.of_int n))
      counts;
    !sum /. Float.of_int t
  in
  let sigma =
    Float.sqrt (Float.of_int c.nets *. p *. (1. -. p) /. Float.of_int t)
  in
  let mode = Mae_prob.Dist.mode dist in
  let mode_p = Mae_prob.Dist.prob dist mode in
  let lo, hi =
    Mae_prob.Stats.wilson_interval ~successes:counts.(mode) ~trials:t
      ~z:config.mc_z
  in
  collect
    [
      ( Float.abs (mean_closed -. mean_exact),
        1e-9 *. Float.max 1. mean_exact,
        Printf.sprintf "binomial mean: pmf %.17g vs H*p %.17g" mean_closed
          mean_exact );
      ( Float.abs (mean_sampled -. mean_exact),
        config.mc_z *. sigma,
        Printf.sprintf
          "binomial mean %.8g sampled %.8g beyond %.1f sigma (sigma %.3g)"
          mean_exact mean_sampled config.mc_z sigma );
      ( Float.abs ((Float.of_int counts.(mode) /. Float.of_int t) -. mode_p),
        (if inside (lo, hi) mode_p then Float.infinity else 0.),
        Printf.sprintf
          "P(M=%d)=%.8g outside %.1f-sigma Wilson [%.8g, %.8g]" mode mode_p
          config.mc_z lo hi );
    ]

let families =
  [
    ("span.exact_vs_enum", span_exact_vs_enum);
    ("span.paper_vs_enum", span_paper_vs_enum);
    ("feed.closed_vs_enum", feed_closed_vs_enum);
    ("feed.eq5_vs_closed", feed_eq5_vs_closed);
    ("feed.eq9_vs_enum", feed_eq9_vs_enum);
    ("span.mc_wilson", span_mc_wilson);
    ("feed.mc_wilson", feed_mc_wilson);
    ("binom.mc_wilson", binom_mc_wilson);
  ]

(* --- shrinking: greedy descent over Sweep.shrink candidates, re-running
   one family, until no strictly smaller case still fails --- *)

let family_fails config run c =
  match run config c with
  | { violations = []; _ } -> None
  | { violations = v :: _; _ } -> Some v
  | exception Invalid_argument _ -> None

let shrink_case config run c =
  let rec go current =
    let rec try_candidates = function
      | [] -> current
      | cand :: rest -> begin
          match family_fails config run cand with
          | Some _ -> go cand
          | None -> try_candidates rest
        end
    in
    try_candidates (Sweep.shrink current)
  in
  go c

(* --- golden rows: the paper's Table 1 / Table 2 experiments, pinned.

   Values re-derived from the estimator itself -- through the
   methodology registry, exactly the path the driver/engine/serve
   pipeline takes: [fullcustom-exact] / [fullcustom-average] over the
   five Table 1 circuits, [stdcell] with a forced row count over the two
   Table 2 circuits at 2/3/4 rows -- and frozen here; a drift anywhere
   in the estimation stack (kernels, combinatorics, rounding, or the
   registry plumbing itself) moves one of these numbers.  Tolerance 1e-9
   relative absorbs libm ulp differences across platforms while catching
   any real change. --- *)

let golden_table1 =
  [
    ("table1.pass8.exact_area", 320.);
    ("table1.pass8.average_area", 320.);
    ("table1.invchain6.exact_area", 856.);
    ("table1.invchain6.average_area", 856.);
    ("table1.fa_tx.exact_area", 1868.);
    ("table1.fa_tx.average_area", 1868.);
    ("table1.dec2_tx.exact_area", 1568.);
    ("table1.dec2_tx.average_area", 1568.);
    ("table1.sr2_tx.exact_area", 2756.);
    ("table1.sr2_tx.average_area", 2756.);
  ]

let golden_table2 =
  [
    ("table2.counter8.rows2.area", 196345.);
    ("table2.counter8.rows2.tracks", 65.);
    ("table2.counter8.rows2.feeds", 5.);
    ("table2.counter8.rows3.area", 186645.33333333337);
    ("table2.counter8.rows3.tracks", 79.);
    ("table2.counter8.rows3.feeds", 8.);
    ("table2.counter8.rows4.area", 168268.);
    ("table2.counter8.rows4.tracks", 79.);
    ("table2.counter8.rows4.feeds", 10.);
    ("table2.alu4.rows2.area", 541633.);
    ("table2.alu4.rows2.tracks", 129.);
    ("table2.alu4.rows2.feeds", 9.);
    ("table2.alu4.rows3.area", 506502.33333333331);
    ("table2.alu4.rows3.tracks", 151.);
    ("table2.alu4.rows3.feeds", 15.);
    ("table2.alu4.rows4.area", 458809.);
    ("table2.alu4.rows4.tracks", 151.);
    ("table2.alu4.rows4.feeds", 19.);
  ]

let run_method ?rows_override name (circuit : Mae_netlist.Circuit.t) process =
  match Mae.Methodology.find name with
  | None -> Error (Mae.Methodology.Unknown_method name)
  | Some t -> begin
      match Mae.Methodology.make_ctx ?rows_override ~process circuit with
      | Error e -> Error e
      | Ok ctx -> Mae.Methodology.run ctx t circuit
    end

let derive_goldens () =
  let process = Mae_tech.Builtin.nmos25 in
  let t1 =
    List.concat_map
      (fun (e : Mae_workload.Bench_circuits.entry) ->
        let fc_area name =
          match run_method name e.circuit process with
          | Ok (Mae.Methodology.Fullcustom f) -> f.Mae.Estimate.area
          | Ok _ | Error _ -> Float.nan
        in
        [
          ( Printf.sprintf "table1.%s.exact_area" e.name,
            fc_area "fullcustom-exact" );
          ( Printf.sprintf "table1.%s.average_area" e.name,
            fc_area "fullcustom-average" );
        ])
      (Mae_workload.Bench_circuits.table1 ())
  in
  let t2 =
    List.concat_map
      (fun (e : Mae_workload.Bench_circuits.entry) ->
        List.concat_map
          (fun rows ->
            let area, tracks, feeds =
              match run_method ~rows_override:rows "stdcell" e.circuit process with
              | Ok (Mae.Methodology.Stdcell { auto; _ }) ->
                  ( auto.Mae.Estimate.area,
                    Float.of_int auto.Mae.Estimate.tracks,
                    Float.of_int auto.Mae.Estimate.feed_throughs )
              | Ok _ | Error _ -> (Float.nan, Float.nan, Float.nan)
            in
            [
              (Printf.sprintf "table2.%s.rows%d.area" e.name rows, area);
              (Printf.sprintf "table2.%s.rows%d.tracks" e.name rows, tracks);
              (Printf.sprintf "table2.%s.rows%d.feeds" e.name rows, feeds);
            ])
          [ 2; 3; 4 ])
      (Mae_workload.Bench_circuits.table2 ())
  in
  t1 @ t2

let run_goldens () =
  let actuals = derive_goldens () in
  List.map
    (fun (label, expected) ->
      let actual =
        match List.assoc_opt label actuals with
        | Some v -> v
        | None -> Float.nan
      in
      let ok =
        Float.abs (actual -. expected)
        <= 1e-9 *. Float.max 1. (Float.abs expected)
      in
      { label; expected; actual; ok })
    (golden_table1 @ golden_table2)

(* --- cross-method sanity: every registered methodology over the bench
   suites, checked against invariants that hold for any sound area
   estimate on these circuits: it succeeds, area is positive, the
   reported footprint is consistent (width * height = area), and the
   models that account for device footprints (stdcell, fullcustom,
   naive) never go below the summed device area. --- *)

let run_cross () =
  let process = Mae_tech.Builtin.nmos25 in
  let entries =
    Mae_workload.Bench_circuits.table1 () @ Mae_workload.Bench_circuits.table2 ()
  in
  List.concat_map
    (fun (e : Mae_workload.Bench_circuits.entry) ->
      match Mae.Methodology.make_ctx ~process e.circuit with
      | Error err ->
          [
            {
              label = Printf.sprintf "cross.%s.ctx" e.name;
              detail = Mae.Methodology.error_to_string err;
              ok = false;
            };
          ]
      | Ok ctx ->
          List.concat_map
            (fun t ->
              let m = Mae.Methodology.name t in
              let label sub = Printf.sprintf "cross.%s.%s.%s" e.name m sub in
              match Mae.Methodology.run ctx t e.circuit with
              | Error err ->
                  [
                    {
                      label = label "runs";
                      detail = Mae.Methodology.error_to_string err;
                      ok = false;
                    };
                  ]
              | Ok o ->
                  let d = Mae.Methodology.dims o in
                  let consistent =
                    Float.abs ((d.width *. d.height) -. d.area)
                    <= 1e-6 *. Float.max 1. d.area
                  in
                  let base =
                    [
                      { label = label "runs"; detail = "estimated"; ok = true };
                      {
                        label = label "area_positive";
                        detail = Printf.sprintf "area %.17g" d.area;
                        ok = d.area > 0.;
                      };
                      {
                        label = label "dims_consistent";
                        detail =
                          Printf.sprintf "%.17g x %.17g vs area %.17g" d.width
                            d.height d.area;
                        ok = consistent;
                      };
                    ]
                  in
                  let device_floor =
                    let floor_check stats_area =
                      [
                        {
                          label = label "device_floor";
                          detail =
                            Printf.sprintf "area %.17g >= device area %.17g"
                              d.area stats_area;
                          ok = d.area >= stats_area;
                        };
                      ]
                    in
                    match o with
                    | Mae.Methodology.Stdcell _ ->
                        floor_check
                          ctx.Mae.Methodology.stats
                            .Mae_netlist.Stats.total_device_area
                    | Mae.Methodology.Fullcustom _ ->
                        floor_check
                          ctx.Mae.Methodology.fc_stats
                            .Mae_netlist.Stats.total_device_area
                    | Mae.Methodology.Scalar _ when String.equal m "naive" ->
                        floor_check
                          ctx.Mae.Methodology.stats
                            .Mae_netlist.Stats.total_device_area
                    | Mae.Methodology.Gatearray _ | Mae.Methodology.Scalar _ ->
                        []
                  in
                  base @ device_floor)
            (Mae.Methodology.all ()))
    entries

(* --- the sweep --- *)

let run ?(log = fun (_ : string) -> ()) config =
  validate config;
  Mae_obs.Span.with_ ~name:"check.run" (fun () ->
      let rng = Mae_prob.Rng.create ~seed:config.seed in
      let stats = Hashtbl.create 16 in
      List.iter (fun (name, _) -> Hashtbl.replace stats name (0, 0.)) families;
      let findings = ref [] in
      let comparisons = ref 0 in
      for i = 1 to config.cases do
        let c =
          Sweep.random_case ~rng ~max_rows:config.max_rows
            ~max_degree:config.max_degree ~max_nets:config.max_nets
        in
        Mae_obs.Metrics.incr cases_count;
        Mae_obs.Span.with_ ~name:"check.case"
          ~attrs:[ ("case", Sweep.case_to_string c) ] (fun () ->
            List.iter
              (fun (name, run_family) ->
                let (o : outcome) = run_family config c in
                comparisons := !comparisons + o.comparisons;
                Mae_obs.Metrics.add comparisons_count o.comparisons;
                let n, m = Hashtbl.find stats name in
                Hashtbl.replace stats name
                  ( n + o.comparisons,
                    Float.max m
                      (if o.max_delta = Float.infinity then m else o.max_delta)
                  );
                match o.violations with
                | [] -> ()
                | v :: _ ->
                    Mae_obs.Metrics.incr violations_count;
                    log
                      (Printf.sprintf "FAIL %s %s: %s" name
                         (Sweep.case_to_string c) v.detail);
                    let shrunk = shrink_case config run_family c in
                    let v' =
                      match family_fails config run_family shrunk with
                      | Some v' -> v'
                      | None -> v
                    in
                    findings :=
                      {
                        check = name;
                        case = c;
                        shrunk;
                        delta = v'.delta;
                        bound = v'.bound;
                        detail = v'.detail;
                      }
                      :: !findings)
              families);
        if i land 15 = 0 then
          log (Printf.sprintf "case %d/%d done" i config.cases)
      done;
      let golden = run_goldens () in
      List.iter
        (fun (g : golden_result) ->
          if not g.ok then
            log
              (Printf.sprintf "FAIL golden %s: expected %.17g, got %.17g"
                 g.label g.expected g.actual))
        golden;
      let cross = run_cross () in
      List.iter
        (fun (c : cross_result) ->
          if not c.ok then
            log (Printf.sprintf "FAIL cross %s: %s" c.label c.detail))
        cross;
      let families_out =
        List.map
          (fun (name, _) ->
            let n, m = Hashtbl.find stats name in
            { family = name; comparisons = n; max_delta = m })
          families
      in
      {
        cases_run = config.cases;
        comparisons = !comparisons;
        families = families_out;
        findings = List.rev !findings;
        golden;
        cross;
        passed =
          !findings = []
          && List.for_all (fun (g : golden_result) -> g.ok) golden
          && List.for_all (fun (c : cross_result) -> c.ok) cross;
      })

(* --- reporting --- *)

let json_of_case (c : Sweep.case) =
  Mae_obs.Json.Object
    [
      ("rows", Mae_obs.Json.Number (Float.of_int c.rows));
      ("degree", Mae_obs.Json.Number (Float.of_int c.degree));
      ("nets", Mae_obs.Json.Number (Float.of_int c.nets));
    ]

let report_json config r =
  let open Mae_obs.Json in
  Object
    [
      ( "config",
        Object
          [
            ("trials", Number (Float.of_int config.trials));
            ("cases", Number (Float.of_int config.cases));
            ("seed", Number (Float.of_int config.seed));
            ("max_rows", Number (Float.of_int config.max_rows));
            ("max_degree", Number (Float.of_int config.max_degree));
            ("max_nets", Number (Float.of_int config.max_nets));
            ("exact_tol", Number config.exact_tol);
            ("eq5_tol", Number config.eq5_tol);
            ("mc_z", Number config.mc_z);
          ] );
      ("cases_run", Number (Float.of_int r.cases_run));
      ("comparisons", Number (Float.of_int r.comparisons));
      ( "families",
        Array
          (List.map
             (fun f ->
               Object
                 [
                   ("family", String f.family);
                   ("comparisons", Number (Float.of_int f.comparisons));
                   ("max_delta", Number f.max_delta);
                 ])
             r.families) );
      ( "findings",
        Array
          (List.map
             (fun f ->
               Object
                 [
                   ("check", String f.check);
                   ("case", json_of_case f.case);
                   ("shrunk", json_of_case f.shrunk);
                   ("delta", Number f.delta);
                   ("bound", Number f.bound);
                   ("detail", String f.detail);
                 ])
             r.findings) );
      ( "golden",
        Array
          (List.map
             (fun (g : golden_result) ->
               Object
                 [
                   ("label", String g.label);
                   ("expected", Number g.expected);
                   ("actual", Number g.actual);
                   ("ok", Bool g.ok);
                 ])
             r.golden) );
      ( "cross",
        Array
          (List.map
             (fun (c : cross_result) ->
               Object
                 [
                   ("label", String c.label);
                   ("detail", String c.detail);
                   ("ok", Bool c.ok);
                 ])
             r.cross) );
      ("passed", Bool r.passed);
    ]

let pp_report ppf r =
  Format.fprintf ppf "@[<v>";
  Format.fprintf ppf "differential check: %d cases, %d comparisons@,"
    r.cases_run r.comparisons;
  List.iter
    (fun f ->
      Format.fprintf ppf "  %-22s %6d comparisons  max |delta| %.3g@,"
        f.family f.comparisons f.max_delta)
    r.families;
  let golden_ok =
    List.length (List.filter (fun (g : golden_result) -> g.ok) r.golden)
  in
  Format.fprintf ppf "  golden rows: %d/%d reproduce (via the registry)@,"
    golden_ok (List.length r.golden);
  List.iter
    (fun (g : golden_result) ->
      if not g.ok then
        Format.fprintf ppf "  GOLDEN FAIL %s: expected %.17g, got %.17g@,"
          g.label g.expected g.actual)
    r.golden;
  let cross_ok =
    List.length (List.filter (fun (c : cross_result) -> c.ok) r.cross)
  in
  Format.fprintf ppf "  cross-method sanity: %d/%d hold@," cross_ok
    (List.length r.cross);
  List.iter
    (fun (c : cross_result) ->
      if not c.ok then
        Format.fprintf ppf "  CROSS FAIL %s: %s@," c.label c.detail)
    r.cross;
  List.iter
    (fun f ->
      Format.fprintf ppf
        "  FAIL %s at %a (shrunk to %a): |delta| %.3g > %.3g -- %s@," f.check
        Sweep.pp_case f.case Sweep.pp_case f.shrunk f.delta f.bound f.detail)
    r.findings;
  Format.fprintf ppf "%s@]"
    (if r.passed then "all oracles agree" else "ORACLE DISAGREEMENT")
