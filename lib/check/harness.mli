(** The differential correctness harness behind [mae check].

    Three independent oracles are compared over randomized
    {!Mae_workload.Sweep} cases [(n, D, H)]:

    - the closed-form kernels the pipeline serves
      ({!Mae_prob.Kernel_cache}, {!Mae.Feedthrough});
    - the Monte-Carlo simulator ({!Mae_prob.Montecarlo}), judged inside
      a z-sigma Wilson interval;
    - the exact enumerator ({!Enumerate}), compared to the closed forms
      to a hard tolerance (1e-12 by default).

    Any failing case is shrunk to a minimal reproducer.  The paper's
    Table 1 / Table 2 estimator outputs are pinned as golden rows,
    re-derived {e through the methodology registry}
    ({!Mae.Methodology.run}) so the registry plumbing itself is under
    the gate; a cross-method sanity section additionally runs every
    registered estimator (all eight, baselines included) over the bench
    suites and checks estimator-independent invariants (success,
    positive area, width * height = area, and a summed-device-area floor
    for the footprint-accounting models).  Progress and totals flow
    through {!Mae_obs} counters and spans ([mae_check_cases_total],
    [mae_check_comparisons_total], [mae_check_violations_total]; spans
    [check.run] / [check.case]). *)

type config = {
  trials : int;  (** Monte-Carlo trials per case *)
  cases : int;  (** randomized sweep cases *)
  seed : int;
  max_rows : int;  (** n ceiling for the enumeration envelope *)
  max_degree : int;  (** D ceiling *)
  max_nets : int;  (** H ceiling *)
  exact_tol : float;  (** exact-vs-closed-form tolerance *)
  eq5_tol : float;  (** eq. (5) double sum vs closed form *)
  mc_z : float;  (** Wilson interval width in sigmas *)
}

val default : config
(** trials 200000, cases 64, seed 42, n <= 8, D <= 5, H <= 64,
    exact_tol 1e-12, eq5_tol 1e-10, z = 4. *)

type finding = {
  check : string;  (** family name, e.g. ["span.exact_vs_enum"] *)
  case : Mae_workload.Sweep.case;  (** as drawn by the sweep *)
  shrunk : Mae_workload.Sweep.case;  (** minimal failing reproducer *)
  delta : float;  (** observed |difference| at the shrunk case *)
  bound : float;  (** the tolerance it exceeded *)
  detail : string;
}

type family_stat = { family : string; comparisons : int; max_delta : float }

type golden_result = {
  label : string;
  expected : float;
  actual : float;
  ok : bool;
}

type cross_result = {
  label : string;  (** [cross.<circuit>.<method>.<invariant>] *)
  detail : string;
  ok : bool;
}

type report = {
  cases_run : int;
  comparisons : int;
  families : family_stat list;
  findings : finding list;  (** empty iff every comparison held *)
  golden : golden_result list;
  cross : cross_result list;  (** cross-method sanity over the bench suites *)
  passed : bool;
}

val run : ?log:(string -> unit) -> config -> report
(** Run the full sweep plus the golden rows.  [log] receives progress
    and failure lines as they happen.  Deterministic for a given
    [config] (every Monte-Carlo stream is derived from [seed] and the
    case coordinates).  Raises [Invalid_argument] on a non-positive
    config field. *)

val derive_goldens : unit -> (string * float) list
(** Recompute the golden Table 1 / Table 2 rows from the live estimator
    through the methodology registry (label, value) -- the source of the
    pinned constants, exposed so they can be regenerated when the model
    intentionally changes. *)

val report_json : config -> report -> Mae_obs.Json.t
(** The machine-readable report ([mae check --report]). *)

val pp_report : Format.formatter -> report -> unit
