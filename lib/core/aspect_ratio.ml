let port_length ~port_count ~process =
  Float.of_int port_count *. process.Mae_tech.Process.port_pitch

let clamp config aspect =
  match config.Config.aspect_clamp with
  | None -> aspect
  | Some (lo, hi) ->
      let r = Mae_geom.Aspect.ratio aspect in
      (* The band limits elongation in either orientation. *)
      let clamped =
        if r >= 1. then Float.min hi (Float.max lo r)
        else 1. /. Float.min hi (Float.max lo (1. /. r))
      in
      Mae_geom.Aspect.of_ratio clamped

let fullcustom ~area ~port_count ~process =
  if area <= 0. then invalid_arg "Aspect_ratio.fullcustom: non-positive area"; (* invariant *)
  if port_count < 0 then invalid_arg "Aspect_ratio.fullcustom: negative ports"; (* invariant *)
  let edge = Float.sqrt area in
  let ports = port_length ~port_count ~process in
  if edge >= ports then (edge, edge, Mae_geom.Aspect.square)
  else begin
    let width = ports in
    let height = area /. width in
    (width, height, Mae_geom.Aspect.make ~width ~height)
  end
