type module_report = {
  circuit : Mae_netlist.Circuit.t;
  process : Mae_tech.Process.t;
  issues : Mae_netlist.Validate.issue list;
  expanded : Mae_netlist.Circuit.t option;
  stdcell : Estimate.stdcell;
  stdcell_sweep : Estimate.stdcell list;
  fullcustom_exact : Estimate.fullcustom;
  fullcustom_average : Estimate.fullcustom;
}

type error =
  | Parse_error of Mae_hdl.Parser.error
  | Elaborate_error of Mae_hdl.Elaborate.error
  | Unknown_process of { module_name : string; technology : string }
  | Validation_failed of {
      module_name : string;
      issues : Mae_netlist.Validate.issue list;
    }

let pp_error ppf = function
  | Parse_error e -> Format.fprintf ppf "parse error: %a" Mae_hdl.Parser.pp_error e
  | Elaborate_error e ->
      Format.fprintf ppf "elaboration error: %a" Mae_hdl.Elaborate.pp_error e
  | Unknown_process { module_name; technology } ->
      Format.fprintf ppf "module %s: unknown process %s" module_name technology
  | Validation_failed { module_name; issues } ->
      Format.fprintf ppf "@[<v>module %s failed validation:@ %a@]" module_name
        (Format.pp_print_list Mae_netlist.Validate.pp_issue)
        issues

(* A circuit is transistor-level when every device kind resolves to a
   transistor in the process. *)
let all_transistors (circuit : Mae_netlist.Circuit.t) process =
  Array.for_all
    (fun (d : Mae_netlist.Device.t) ->
      match Mae_tech.Process.find_device process d.kind with
      | Some kind -> Mae_tech.Device_kind.is_transistor kind
      | None -> false)
    circuit.devices

let expand_for_fullcustom (circuit : Mae_netlist.Circuit.t) process =
  if all_transistors circuit process then None
  else begin
    match Mae_celllib.Cmos_lib.for_technology circuit.technology with
    | None -> None
    | Some library -> begin
        match Mae_celllib.Expand.circuit library circuit with
        | Ok expanded -> Some expanded
        | Error (Mae_celllib.Expand.Unknown_cell _) -> None
      end
  end

(* One Mae_obs span per Figure-1 stage, per module.  The module
   attribute on every stage span lets a Chrome-trace or flame view
   slice by stage across modules or by module across stages; with
   telemetry off each [stage] call is a single atomic read. *)
let stage ~name ~module_name f =
  Mae_obs.Span.with_ ~name ~attrs:[ ("module", module_name) ] f

let run_circuit ?config ~registry (circuit : Mae_netlist.Circuit.t) =
  let m = circuit.name in
  stage ~name:"driver.module" ~module_name:m @@ fun () ->
  match Mae_tech.Registry.find registry circuit.technology with
  | None ->
      Error
        (Unknown_process
           { module_name = circuit.name; technology = circuit.technology })
  | Some process -> begin
      let issues =
        stage ~name:"driver.validate" ~module_name:m (fun () ->
            Mae_netlist.Validate.check circuit process)
      in
      let errors = List.filter Mae_netlist.Validate.is_error issues in
      match errors with
      | _ :: _ ->
          Error (Validation_failed { module_name = circuit.name; issues = errors })
      | [] ->
          let expanded =
            stage ~name:"driver.expand" ~module_name:m (fun () ->
                expand_for_fullcustom circuit process)
          in
          let fc_circuit = Option.value expanded ~default:circuit in
          (* compute each circuit's statistics once and share them across
             the full-custom pair, the automatic estimate and the sweep. *)
          let stats, fc_stats =
            stage ~name:"driver.stats" ~module_name:m (fun () ->
                let stats = Mae_netlist.Stats.compute circuit process in
                let fc_stats =
                  match expanded with
                  | None -> stats
                  | Some e -> Mae_netlist.Stats.compute e process
                in
                (stats, fc_stats))
          in
          let fullcustom_exact, fullcustom_average =
            stage ~name:"driver.fullcustom" ~module_name:m (fun () ->
                Fullcustom.estimate_both ?config ~stats:fc_stats fc_circuit
                  process)
          in
          let stdcell =
            stage ~name:"driver.stdcell" ~module_name:m (fun () ->
                Stdcell.estimate_auto ?config ~stats circuit process)
          in
          let stdcell_sweep =
            stage ~name:"driver.sweep" ~module_name:m (fun () ->
                Stdcell.sweep ?config ~stats
                  ~rows:(Row_select.candidates ~stats circuit process)
                  circuit process)
          in
          (* one structured record per module (debug level): which row
             count the estimator selected and what it concluded -- the
             per-module detail behind a serve access-log line. *)
          if Mae_obs.Log.enabled Mae_obs.Log.Debug then
            Mae_obs.Log.debug ~event:"driver.module"
              [
                ("module", Mae_obs.Log.Str circuit.name);
                ("technology", Mae_obs.Log.Str circuit.technology);
                ("rows_selected", Mae_obs.Log.Int stdcell.Estimate.rows);
                ("stdcell_area", Mae_obs.Log.Float stdcell.Estimate.area);
                ( "fullcustom_area",
                  Mae_obs.Log.Float fullcustom_exact.Estimate.area );
                ("issues", Mae_obs.Log.Int (List.length issues));
              ];
          Ok
            {
              circuit;
              process;
              issues;
              expanded;
              stdcell;
              stdcell_sweep;
              fullcustom_exact;
              fullcustom_average;
            }
    end

let run_circuits ?config ~registry circuits =
  List.map (run_circuit ?config ~registry) circuits

let run_design ?config ~registry design =
  match Mae_hdl.Elaborate.design_to_circuits design with
  | Error e -> Error (Elaborate_error e)
  | Ok circuits ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | c :: rest -> begin
            match run_circuit ?config ~registry c with
            | Ok report -> go (report :: acc) rest
            | Error e -> Error e
          end
      in
      go [] circuits

let design_circuits design =
  match
    Mae_obs.Span.with_ ~name:"driver.elaborate" (fun () ->
        Mae_hdl.Elaborate.design_to_circuits design)
  with
  | Error e -> Error (Elaborate_error e)
  | Ok circuits -> Ok circuits

let parse_string text =
  Mae_obs.Span.with_ ~name:"driver.parse" (fun () ->
      Mae_hdl.Parser.parse_string text)

let parse_file path =
  Mae_obs.Span.with_ ~name:"driver.parse"
    ~attrs:[ ("file", path) ]
    (fun () -> Mae_hdl.Parser.parse_file path)

let string_circuits text =
  match parse_string text with
  | Error e -> Error (Parse_error e)
  | Ok design -> design_circuits design

let file_circuits path =
  match parse_file path with
  | Error e -> Error (Parse_error e)
  | Ok design -> design_circuits design

let run_string ?config ~registry text =
  match parse_string text with
  | Error e -> Error (Parse_error e)
  | Ok design -> run_design ?config ~registry design

let run_file ?config ~registry path =
  match parse_file path with
  | Error e -> Error (Parse_error e)
  | Ok design -> run_design ?config ~registry design
