type method_result = {
  methodology : Methodology.t;
  outcome : (Methodology.outcome, Methodology.error) result;
}

type module_report = {
  circuit : Mae_netlist.Circuit.t;
  process : Mae_tech.Process.t;
  issues : Mae_netlist.Validate.issue list;
  expanded : Mae_netlist.Circuit.t option;
  results : method_result list;
}

type error =
  | Parse_error of Mae_hdl.Parser.error
  | Elaborate_error of Mae_hdl.Elaborate.error
  | Unknown_process of { module_name : string; technology : string }
  | Unknown_method of { module_name : string; methodology : string }
  | Validation_failed of {
      module_name : string;
      issues : Mae_netlist.Validate.issue list;
    }

let pp_error ppf = function
  | Parse_error e -> Format.fprintf ppf "parse error: %a" Mae_hdl.Parser.pp_error e
  | Elaborate_error e ->
      Format.fprintf ppf "elaboration error: %a" Mae_hdl.Elaborate.pp_error e
  | Unknown_process { module_name; technology } ->
      Format.fprintf ppf "module %s: unknown process %s" module_name technology
  | Unknown_method { module_name; methodology } ->
      Format.fprintf ppf "module %s: unknown methodology %s (registered: %s)"
        module_name methodology
        (String.concat ", " (Methodology.names ()))
  | Validation_failed { module_name; issues } ->
      Format.fprintf ppf "@[<v>module %s failed validation:@ %a@]" module_name
        (Format.pp_print_list Mae_netlist.Validate.pp_issue)
        issues

(* --- per-method accessors ------------------------------------------- *)

let find_result report name =
  List.find_map
    (fun r ->
      if String.equal (Methodology.name r.methodology) name then
        Some r.outcome
      else None)
    report.results

let ok_result report name =
  match find_result report name with
  | Some (Ok o) -> Some o
  | Some (Error _) | None -> None

let stdcell report =
  match ok_result report "stdcell" with
  | Some (Methodology.Stdcell { auto; _ }) -> Some auto
  | _ -> None

let stdcell_sweep report =
  match ok_result report "stdcell" with
  | Some (Methodology.Stdcell { sweep; _ }) -> sweep
  | _ -> []

let fullcustom_exact report =
  match ok_result report "fullcustom-exact" with
  | Some (Methodology.Fullcustom f) -> Some f
  | _ -> None

let fullcustom_average report =
  match ok_result report "fullcustom-average" with
  | Some (Methodology.Fullcustom f) -> Some f
  | _ -> None

let gatearray report =
  match ok_result report "gatearray" with
  | Some (Methodology.Gatearray g) -> Some g
  | _ -> None

let method_failures report =
  List.filter_map
    (fun r ->
      match r.outcome with
      | Error e -> Some (Methodology.name r.methodology, e)
      | Ok _ -> None)
    report.results

(* One Mae_obs span per Figure-1 stage, per module, plus a per-stage
   latency sketch (mae_driver_<stage>_seconds_summary) so /metrics can
   answer "p99 of validate" without bucket edges.  The module attribute
   on every stage span lets a Chrome-trace or flame view slice by stage
   across modules or by module across stages; with telemetry off each
   [stage] call is a single atomic read. *)
let stage_sketch =
  let lock = Mutex.create () in
  let tbl : (string, Mae_obs.Sketch.t) Hashtbl.t = Hashtbl.create 8 in
  fun name ->
    Mutex.lock lock;
    let sk =
      match Hashtbl.find_opt tbl name with
      | Some sk -> sk
      | None ->
          let metric =
            "mae_"
            ^ String.map (fun c -> if c = '.' then '_' else c) name
            ^ "_seconds_summary"
          in
          let sk =
            Mae_obs.Sketch.create metric
              ~help:
                (Printf.sprintf "Latency quantiles of the %s stage (GK sketch)"
                   name)
          in
          Hashtbl.add tbl name sk;
          sk
    in
    Mutex.unlock lock;
    sk

let stage ~name ~module_name f =
  if not (Mae_obs.Control.enabled ()) then f ()
  else begin
    let sk = stage_sketch name in
    let t0 = Mae_obs.Clock.monotonic () in
    match Mae_obs.Span.with_ ~name ~attrs:[ ("module", module_name) ] f with
    | v ->
        Mae_obs.Sketch.observe sk (Mae_obs.Clock.monotonic () -. t0);
        v
    | exception e ->
        Mae_obs.Sketch.observe sk (Mae_obs.Clock.monotonic () -. t0);
        raise e
  end

let run_circuit ?config ?(methods = [ "default" ]) ~registry
    (circuit : Mae_netlist.Circuit.t) =
  let m = circuit.name in
  stage ~name:"driver.module" ~module_name:m @@ fun () ->
  match Methodology.resolve methods with
  | Error name ->
      Error (Unknown_method { module_name = circuit.name; methodology = name })
  | Ok selected -> begin
      match Mae_tech.Registry.find registry circuit.technology with
      | None ->
          Error
            (Unknown_process
               { module_name = circuit.name; technology = circuit.technology })
      | Some process -> begin
          let issues =
            stage ~name:"driver.validate" ~module_name:m (fun () ->
                Mae_netlist.Validate.check circuit process)
          in
          let errors = List.filter Mae_netlist.Validate.is_error issues in
          match errors with
          | _ :: _ ->
              Error
                (Validation_failed { module_name = circuit.name; issues = errors })
          | [] ->
              let expanded =
                stage ~name:"driver.expand" ~module_name:m (fun () ->
                    Methodology.expand_for_fullcustom circuit process)
              in
              let fc_circuit = Option.value expanded ~default:circuit in
              (* compute each circuit's statistics once and share them
                 across the whole method set (the estimators' kernel
                 caches ride along inside the stats). *)
              let stats, fc_stats =
                stage ~name:"driver.stats" ~module_name:m (fun () ->
                    let stats = Mae_netlist.Stats.compute circuit process in
                    let fc_stats =
                      match expanded with
                      | None -> stats
                      | Some e -> Mae_netlist.Stats.compute e process
                    in
                    (stats, fc_stats))
              in
              let ctx =
                {
                  Methodology.config;
                  process;
                  stats;
                  fc_circuit;
                  fc_stats;
                  rows_override = None;
                }
              in
              let results =
                List.map
                  (fun t ->
                    { methodology = t; outcome = Methodology.run ctx t circuit })
                  selected
              in
              let report = { circuit; process; issues; expanded; results } in
              (* one structured record per module (debug level): which row
                 count the estimator selected and what it concluded -- the
                 per-module detail behind a serve access-log line. *)
              if Mae_obs.Log.enabled Mae_obs.Log.Debug then
                Mae_obs.Log.debug ~event:"driver.module"
                  ([
                     ("module", Mae_obs.Log.Str circuit.name);
                     ("technology", Mae_obs.Log.Str circuit.technology);
                   ]
                  @ (match stdcell report with
                    | Some sc ->
                        [
                          ("rows_selected", Mae_obs.Log.Int sc.Estimate.rows);
                          ("stdcell_area", Mae_obs.Log.Float sc.Estimate.area);
                        ]
                    | None -> [])
                  @ (match fullcustom_exact report with
                    | Some fc ->
                        [ ("fullcustom_area", Mae_obs.Log.Float fc.Estimate.area) ]
                    | None -> [])
                  @ [
                      ("issues", Mae_obs.Log.Int (List.length issues));
                      ( "method_errors",
                        Mae_obs.Log.Int (List.length (method_failures report)) );
                    ]);
              Ok report
        end
    end

let run_circuits ?config ?methods ~registry circuits =
  List.map (run_circuit ?config ?methods ~registry) circuits

let run_design ?config ?methods ~registry design =
  match Mae_hdl.Elaborate.design_to_circuits design with
  | Error e -> Error (Elaborate_error e)
  | Ok circuits ->
      let rec go acc = function
        | [] -> Ok (List.rev acc)
        | c :: rest -> begin
            match run_circuit ?config ?methods ~registry c with
            | Ok report -> go (report :: acc) rest
            | Error e -> Error e
          end
      in
      go [] circuits

let design_circuits design =
  match
    Mae_obs.Span.with_ ~name:"driver.elaborate" (fun () ->
        Mae_hdl.Elaborate.design_to_circuits design)
  with
  | Error e -> Error (Elaborate_error e)
  | Ok circuits -> Ok circuits

let parse_string text =
  Mae_obs.Span.with_ ~name:"driver.parse" (fun () ->
      Mae_hdl.Parser.parse_string text)

let parse_file path =
  Mae_obs.Span.with_ ~name:"driver.parse"
    ~attrs:[ ("file", path) ]
    (fun () -> Mae_hdl.Parser.parse_file path)

let string_circuits text =
  match parse_string text with
  | Error e -> Error (Parse_error e)
  | Ok design -> design_circuits design

let file_circuits path =
  match parse_file path with
  | Error e -> Error (Parse_error e)
  | Ok design -> design_circuits design

let run_string ?config ?methods ~registry text =
  match parse_string text with
  | Error e -> Error (Parse_error e)
  | Ok design -> run_design ?config ?methods ~registry design

let run_file ?config ?methods ~registry path =
  match parse_file path with
  | Error e -> Error (Parse_error e)
  | Ok design -> run_design ?config ?methods ~registry design
