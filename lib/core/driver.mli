(** The end-to-end estimator pipeline of Figure 1.

    Input interface (HDL text or an elaborated circuit) + fabrication
    process database -> validation -> Standard-Cell and Full-Custom
    estimates -> a per-module report ready for the output database.

    Full-custom estimation runs at the transistor level: gate-level
    schematics are flattened through the technology's cell library when
    one exists ({!Mae_celllib.Cmos_lib.for_technology}); schematics that
    are already transistor-level (or whose technology has no library) are
    estimated as-is.

    Every stage is instrumented with {!Mae_obs.Span}: with telemetry on,
    each module records a [driver.module] span nesting one span per
    Figure-1 stage ([driver.validate], [driver.expand], [driver.stats],
    [driver.fullcustom], [driver.stdcell], [driver.sweep]), and the
    front end records [driver.parse] / [driver.elaborate]; all carry a
    [module] attribute where applicable.  With telemetry off each stage
    costs one atomic read. *)

type module_report = {
  circuit : Mae_netlist.Circuit.t;
  process : Mae_tech.Process.t;
  issues : Mae_netlist.Validate.issue list;  (** warnings only; errors abort *)
  expanded : Mae_netlist.Circuit.t option;
      (** the transistor-level circuit used for full-custom estimation,
          when expansion happened *)
  stdcell : Estimate.stdcell;  (** at the automatically selected row count *)
  stdcell_sweep : Estimate.stdcell list;  (** the Table 2 row-count sweep *)
  fullcustom_exact : Estimate.fullcustom;
  fullcustom_average : Estimate.fullcustom;
}

type error =
  | Parse_error of Mae_hdl.Parser.error
  | Elaborate_error of Mae_hdl.Elaborate.error
  | Unknown_process of { module_name : string; technology : string }
  | Validation_failed of {
      module_name : string;
      issues : Mae_netlist.Validate.issue list;
    }

val pp_error : Format.formatter -> error -> unit

val run_circuit :
  ?config:Config.t ->
  registry:Mae_tech.Registry.t ->
  Mae_netlist.Circuit.t ->
  (module_report, error) result
(** Estimate one already-elaborated circuit. *)

val run_circuits :
  ?config:Config.t ->
  registry:Mae_tech.Registry.t ->
  Mae_netlist.Circuit.t list ->
  (module_report, error) result list
(** Batch entry point: estimate every circuit with per-module error
    isolation -- one failing module yields an [Error] slot, the rest of
    the batch still runs.  Results are in input order.  This is the
    sequential reference semantics of {!Mae_engine}'s parallel runner. *)

val design_circuits :
  Mae_hdl.Ast.design -> (Mae_netlist.Circuit.t list, error) result
(** Elaborate a parsed design into the circuit batch it contains. *)

val string_circuits : string -> (Mae_netlist.Circuit.t list, error) result
(** Parse HDL text and elaborate it into a circuit batch. *)

val file_circuits : string -> (Mae_netlist.Circuit.t list, error) result
(** Parse an HDL file and elaborate it into a circuit batch. *)

val run_string :
  ?config:Config.t ->
  registry:Mae_tech.Registry.t ->
  string ->
  (module_report list, error) result
(** Parse HDL text and estimate every module in it. *)

val run_file :
  ?config:Config.t ->
  registry:Mae_tech.Registry.t ->
  string ->
  (module_report list, error) result
