(** The end-to-end estimator pipeline of Figure 1.

    Input interface (HDL text or an elaborated circuit) + fabrication
    process database -> validation -> one estimate per selected
    {!Methodology} -> a per-module report ready for the output database.

    Estimators are selected by name through the [?methods] parameter
    (default {!Methodology.default_names}, which reproduces the classic
    stdcell + full-custom pipeline exactly).  Each method runs with
    per-module error isolation: a methodology that fails on a circuit
    contributes an [Error] slot to {!module_report.results} while the
    others still produce estimates.

    Full-custom estimation runs at the transistor level: gate-level
    schematics are flattened through the technology's cell library when
    one exists ({!Mae_celllib.Cmos_lib.for_technology}); schematics that
    are already transistor-level (or whose technology has no library) are
    estimated as-is.

    Every stage is instrumented with {!Mae_obs.Span}: with telemetry on,
    each module records a [driver.module] span nesting one span per
    Figure-1 stage ([driver.validate], [driver.expand], [driver.stats])
    plus one [method.<name>] span per selected methodology, and the
    front end records [driver.parse] / [driver.elaborate]; all carry a
    [module] attribute where applicable.  With telemetry off each stage
    costs one atomic read. *)

type method_result = {
  methodology : Methodology.t;
  outcome : (Methodology.outcome, Methodology.error) result;
}

type module_report = {
  circuit : Mae_netlist.Circuit.t;
  process : Mae_tech.Process.t;
  issues : Mae_netlist.Validate.issue list;  (** warnings only; errors abort *)
  expanded : Mae_netlist.Circuit.t option;
      (** the transistor-level circuit used for full-custom estimation,
          when expansion happened *)
  results : method_result list;
      (** one slot per selected methodology, in selection order *)
}

type error =
  | Parse_error of Mae_hdl.Parser.error
  | Elaborate_error of Mae_hdl.Elaborate.error
  | Unknown_process of { module_name : string; technology : string }
  | Unknown_method of { module_name : string; methodology : string }
  | Validation_failed of {
      module_name : string;
      issues : Mae_netlist.Validate.issue list;
    }

val pp_error : Format.formatter -> error -> unit

(** {1 Per-method accessors}

    Convenience projections over {!module_report.results}.  The
    [option]-returning ones yield [None] both when the methodology was
    not selected and when it ran but returned an error (use
    {!find_result} / {!method_failures} to distinguish). *)

val find_result :
  module_report ->
  string ->
  (Methodology.outcome, Methodology.error) result option
(** The outcome slot of the named methodology, [None] if it was not in
    the selected set. *)

val stdcell : module_report -> Estimate.stdcell option
(** The automatically selected standard-cell estimate. *)

val stdcell_sweep : module_report -> Estimate.stdcell list
(** The Table 2 row-count sweep ([[]] when stdcell was not selected or
    failed). *)

val fullcustom_exact : module_report -> Estimate.fullcustom option
val fullcustom_average : module_report -> Estimate.fullcustom option
val gatearray : module_report -> Gatearray.estimate option

val method_failures : module_report -> (string * Methodology.error) list
(** The methodologies that returned errors on this module, in selection
    order. *)

val run_circuit :
  ?config:Config.t ->
  ?methods:string list ->
  registry:Mae_tech.Registry.t ->
  Mae_netlist.Circuit.t ->
  (module_report, error) result
(** Estimate one already-elaborated circuit.  [?methods] names the
    methodologies to run (the {!Methodology.resolve} aliases ["default"]
    and ["all"] work here too); default [["default"]]. *)

val run_circuits :
  ?config:Config.t ->
  ?methods:string list ->
  registry:Mae_tech.Registry.t ->
  Mae_netlist.Circuit.t list ->
  (module_report, error) result list
(** Batch entry point: estimate every circuit with per-module error
    isolation -- one failing module yields an [Error] slot, the rest of
    the batch still runs.  Results are in input order.  This is the
    sequential reference semantics of {!Mae_engine}'s parallel runner. *)

val design_circuits :
  Mae_hdl.Ast.design -> (Mae_netlist.Circuit.t list, error) result
(** Elaborate a parsed design into the circuit batch it contains. *)

val string_circuits : string -> (Mae_netlist.Circuit.t list, error) result
(** Parse HDL text and elaborate it into a circuit batch. *)

val file_circuits : string -> (Mae_netlist.Circuit.t list, error) result
(** Parse an HDL file and elaborate it into a circuit batch. *)

val run_string :
  ?config:Config.t ->
  ?methods:string list ->
  registry:Mae_tech.Registry.t ->
  string ->
  (module_report list, error) result
(** Parse HDL text and estimate every module in it. *)

val run_file :
  ?config:Config.t ->
  ?methods:string list ->
  registry:Mae_tech.Registry.t ->
  string ->
  (module_report list, error) result
