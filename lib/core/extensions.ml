let with_track_sharing ~factor ~rows circuit process =
  if factor <= 0. || factor > 1. then
    invalid_arg "Extensions.with_track_sharing: factor outside (0, 1]"; (* invariant *)
  let config = { Config.default with track_sharing_factor = Some factor } in
  Stdcell.estimate ~config ~rows circuit process

let calibrate_sharing_factor pairs =
  let ratios =
    List.filter_map
      (fun ((est : Estimate.stdcell), real_area) ->
        if est.area <= 0. || real_area <= 0. then None
        else Some (real_area /. est.area))
      pairs
  in
  match ratios with
  | [] -> None
  | _ :: _ ->
      let mean = Mae_prob.Stats.mean ratios in
      Some (Float.min 1. (Float.max 1e-3 mean))

let fullcustom_aspect_candidates ?(count = 5) ~area ~port_count process =
  if count < 1 then invalid_arg "Extensions: count < 1"; (* invariant *)
  if area <= 0. then invalid_arg "Extensions: non-positive area"; (* invariant *)
  let ports = Aspect_ratio.port_length ~port_count ~process in
  let ratio_of i =
    (* evenly spaced across the paper's 1:1 .. 1:2 band *)
    if count = 1 then 1.
    else 1. +. (Float.of_int i /. Float.of_int (count - 1))
  in
  let shape i =
    let r = ratio_of i in
    let height = Float.sqrt (area /. r) in
    let width = r *. height in
    (width, height, Mae_geom.Aspect.make ~width ~height)
  in
  let all = List.init count shape in
  let feasible = List.filter (fun (w, _, _) -> w >= ports) all in
  match feasible with [] -> all | _ :: _ -> feasible

let stdcell_shape_candidates ?config ?(count = 5) circuit process =
  let rows = Row_select.candidates ~max_count:count circuit process in
  Stdcell.sweep ?config ~rows circuit process
