let check_args ~rows ~degree ~row =
  if rows < 1 then invalid_arg "Feedthrough: rows < 1"; (* invariant *)
  if degree < 1 then invalid_arg "Feedthrough: degree < 1"; (* invariant *)
  if row < 1 || row > rows then invalid_arg "Feedthrough: row out of range" (* invariant *)

(* Equation (5): sum over l components inside row i (0 <= l <= D-2) and
   j components above it (1 <= j <= D-l-1); the rest lie below.
   p_in = 1/n, p_above = (i-1)/n, p_below = (n-i)/n. *)
let prob_in_row ~rows ~degree ~row =
  check_args ~rows ~degree ~row;
  let n = Float.of_int rows in
  let p_in = 1. /. n in
  let p_above = Float.of_int (row - 1) /. n in
  let p_below = Float.of_int (rows - row) /. n in
  let d = degree in
  let total = ref 0. in
  for l = 0 to d - 2 do
    let z = ref 0. in
    for j = 1 to d - l - 1 do
      z :=
        !z
        +. Mae_prob.Comb.float_pow p_above j
           *. Mae_prob.Comb.float_pow p_below (d - l - j)
           *. Mae_prob.Comb.choose (d - l) j
    done;
    total := !total +. (Mae_prob.Comb.choose d l *. Mae_prob.Comb.float_pow p_in l *. !z)
  done;
  !total

(* P(feed) = 1 - P(none above) - P(none below) + P(none above & none below).
   "Not above" happens with probability (n-i+1)/n per component, etc.
   The four terms cancel only approximately in floats: at a boundary row
   the true probability is exactly 0 but the alternating sum leaves a
   residual of order one ulp, which can be *negative* -- the
   differential harness caught the closed form returning -5.6e-17.
   Clamp to [0, 1]. *)
let closed_form ~rows ~degree ~row_position =
  let n = Float.of_int rows in
  let d = degree in
  let not_above = (n -. row_position +. 1.) /. n in
  let not_below = row_position /. n in
  let inside = 1. /. n in
  Float.max 0.
    (Float.min 1.
       (1.
       -. Mae_prob.Comb.float_pow not_above d
       -. Mae_prob.Comb.float_pow not_below d
       +. Mae_prob.Comb.float_pow inside d))

let prob_in_row_closed ~rows ~degree ~row =
  check_args ~rows ~degree ~row;
  closed_form ~rows ~degree ~row_position:(Float.of_int row)

let central_row ~rows =
  if rows < 1 then invalid_arg "Feedthrough.central_row: rows < 1"; (* invariant *)
  Float.of_int (rows + 1) /. 2.

let argmax_row ~rows ~degree =
  if rows < 1 then invalid_arg "Feedthrough.argmax_row: rows < 1"; (* invariant *)
  if degree < 1 then invalid_arg "Feedthrough.argmax_row: degree < 1"; (* invariant *)
  (* Strict improvement beyond 1e-15, the tolerance shared with
     [Montecarlo.argmax_feed_through]: an even row count has two equal
     central rows and both argmaxes must resolve to the lower one. *)
  let best = ref 1 and best_p = ref Float.neg_infinity in
  for row = 1 to rows do
    let p = prob_in_row_closed ~rows ~degree ~row in
    if p > !best_p +. 1e-15 then begin
      best := row;
      best_p := p
    end
  done;
  !best

(* Equation (8): the closed form at the possibly fractional central row.
   For a fractional row position the "inside" band has zero width, so the
   complement probabilities use the continuous split (i-1)/n each side;
   closed_form handles this uniformly. *)
let prob_central ~rows ~degree =
  if rows < 1 then invalid_arg "Feedthrough.prob_central: rows < 1"; (* invariant *)
  if degree < 1 then invalid_arg "Feedthrough.prob_central: degree < 1"; (* invariant *)
  closed_form ~rows ~degree ~row_position:(central_row ~rows)

let prob_two_component ~rows =
  if rows < 1 then invalid_arg "Feedthrough.prob_two_component: rows < 1"; (* invariant *)
  Mae_prob.Kernel_cache.two_component_feed_prob ~rows

let feed_through_dist ~net_count ~rows =
  if net_count < 0 then invalid_arg "Feedthrough.feed_through_dist: net_count < 0"; (* invariant *)
  if rows < 1 then invalid_arg "Feedthrough.feed_through_dist: rows < 1"; (* invariant *)
  Mae_prob.Kernel_cache.feed_through_dist ~net_count ~rows

let expected_feed_throughs ~net_count ~rows =
  if net_count < 0 then
    invalid_arg "Feedthrough.expected_feed_throughs: net_count < 0"; (* invariant *)
  if rows < 1 then invalid_arg "Feedthrough.expected_feed_throughs: rows < 1"; (* invariant *)
  Mae_prob.Kernel_cache.expected_feed_throughs ~net_count ~rows
