(** Equations (4)-(11): feed-throughs.

    A net whose components straddle row i (at least one component strictly
    above and one strictly below) must send one vertical feed-through wire
    across that row, widening it by the feed-through cell width.  The
    paper shows the central row i = (n+1)/2 maximizes this probability,
    reduces every net to a two-component model (equation 9), and takes a
    binomial expectation over the H nets (equations 10-11). *)

val prob_in_row : rows:int -> degree:int -> row:int -> float
(** Equation (5) verbatim: the probability that a net with [degree]
    components contributes a feed-through to row [row] (1-based), summing
    over the number of components l placed inside the row and the split j
    of the remainder above/below.  Raises [Invalid_argument] unless
    [1 <= row <= rows] and [degree >= 1]. *)

val prob_in_row_closed : rows:int -> degree:int -> row:int -> float
(** Inclusion-exclusion closed form of the same probability:
    1 - P(no component above) - P(no component below) + P(neither).
    Agrees with {!prob_in_row} to round-off (property-tested); used as a
    cross-check and as the fast path. *)

val central_row : rows:int -> float
(** The stationary point of equation (7): (rows + 1) / 2, possibly
    half-integral for an even row count. *)

val argmax_row : rows:int -> degree:int -> int
(** The integer row maximizing {!prob_in_row} (lower row on ties, under
    the same 1e-15 tolerance as [Montecarlo.argmax_feed_through]; for an
    even row count the two central rows tie exactly and the lower wins).
    The paper's claim, verified by tests: this is always a central row. *)

val prob_central : rows:int -> degree:int -> float
(** Equation (8): {!prob_in_row_closed} evaluated at the (possibly
    fractional) central row. *)

val prob_two_component : rows:int -> float
(** Equation (9): the simplified two-component model
    ((n - 1) / n)^2 / 2, whose limit for large n is 0.5. *)

val feed_through_dist : net_count:int -> rows:int -> Mae_prob.Dist.t
(** Equation (10): the binomial distribution of the number M of
    feed-throughs in the central row, over H nets each contributing with
    probability {!prob_two_component}. *)

val expected_feed_throughs : net_count:int -> rows:int -> int
(** Equation (11): E(M), rounded up. *)
