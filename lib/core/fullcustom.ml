type net_area = {
  net : int;
  degree : int;
  interconnect_area : Mae_geom.Lambda.area;
}

let half_rounded_up degree = (degree + 1) / 2

let stats_of ?stats circuit process =
  match stats with
  | Some s -> s
  | None -> Mae_netlist.Stats.compute circuit process

let net_areas ?(config = Config.default) ?stats ~mode circuit process =
  let stats = stats_of ?stats circuit process in
  (* local laziness only: the array is needed in [Exact_areas] mode alone
     and never escapes this call, so there is no cross-domain sharing. *)
  let widths = lazy (Mae_netlist.Stats.device_widths circuit process) in
  let track = process.Mae_tech.Process.track_pitch in
  let area_of_net net =
    let members = Mae_netlist.Circuit.devices_on_net circuit net in
    let degree = Array.length members in
    let free = degree <= 1 || (degree = 2 && config.Config.two_component_free) in
    let interconnect_area =
      if free then 0.
      else begin
        let mean_width =
          match (mode : Config.device_area_mode) with
          | Average_areas -> stats.average_width
          | Exact_areas ->
              let widths = Lazy.force widths in
              Array.fold_left (fun acc d -> acc +. widths.(d)) 0. members
              /. Float.of_int degree
        in
        let channel_length =
          Float.of_int (half_rounded_up degree) *. mean_width
        in
        track *. channel_length
      end
    in
    { net; degree; interconnect_area }
  in
  List.init (Mae_netlist.Circuit.net_count circuit) area_of_net

let estimate ?(config = Config.default) ?stats ~mode circuit process =
  let stats = stats_of ?stats circuit process in
  if stats.device_count = 0 then
    invalid_arg "Fullcustom.estimate: circuit has no devices"; (* invariant *)
  let device_area =
    match (mode : Config.device_area_mode) with
    | Config.Exact_areas -> stats.total_device_area
    | Config.Average_areas ->
        Float.of_int stats.device_count *. stats.average_width
        *. stats.average_height
  in
  let wire_area =
    List.fold_left
      (fun acc n -> acc +. n.interconnect_area)
      0.
      (net_areas ~config ~stats ~mode circuit process)
  in
  let area = device_area +. wire_area in
  let width, height, aspect_raw =
    Aspect_ratio.fullcustom ~area ~port_count:stats.port_count ~process
  in
  {
    Estimate.device_area;
    wire_area;
    area;
    width;
    height;
    aspect = Aspect_ratio.clamp config aspect_raw;
    aspect_raw;
  }

let estimate_both ?config ?stats circuit process =
  let stats = stats_of ?stats circuit process in
  ( estimate ?config ~stats ~mode:Config.Exact_areas circuit process,
    estimate ?config ~stats ~mode:Config.Average_areas circuit process )
