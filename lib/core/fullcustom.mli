(** The Full-Custom area estimator (section 4.2, equation 13).

    Device area is summed from the schematic (exactly, or via the average
    device footprint); each net's minimum interconnection area uses the
    two-row, one-track-channel model: the net's components split into two
    facing rows of ceil(D/2) devices, and the channel between them is one
    track high and one half-row long.  Per the Table 1 footnote, nets with
    two or fewer components contribute nothing (the two devices abut). *)

type net_area = {
  net : int;  (** net index in the circuit *)
  degree : int;  (** D, distinct devices on the net *)
  interconnect_area : Mae_geom.Lambda.area;  (** the A_j of equation (13) *)
}

val net_areas :
  ?config:Config.t ->
  ?stats:Mae_netlist.Stats.t ->
  mode:Config.device_area_mode ->
  Mae_netlist.Circuit.t ->
  Mae_tech.Process.t ->
  net_area list
(** Per-net interconnect areas, net index ascending.  In [Exact_areas]
    mode the half-row length uses the mean width of the devices actually
    on the net; in [Average_areas] mode it uses the module-wide W_avg.
    [stats], when given, must be [Stats.compute circuit process].
    Raises {!Mae_netlist.Stats.Unknown_kind}. *)

val estimate :
  ?config:Config.t ->
  ?stats:Mae_netlist.Stats.t ->
  mode:Config.device_area_mode ->
  Mae_netlist.Circuit.t ->
  Mae_tech.Process.t ->
  Estimate.fullcustom
(** Equation (13) plus the section 5 aspect-ratio algorithm.  Raises
    {!Mae_netlist.Stats.Unknown_kind} and [Invalid_argument] on an empty
    circuit. *)

val estimate_both :
  ?config:Config.t ->
  ?stats:Mae_netlist.Stats.t ->
  Mae_netlist.Circuit.t ->
  Mae_tech.Process.t ->
  Estimate.fullcustom * Estimate.fullcustom
(** (exact, average): the two variants Table 1 reports side by side.
    The circuit statistics are computed once and shared by both. *)
