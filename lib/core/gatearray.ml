type params = {
  site_transistors : int;
  site_width : Mae_geom.Lambda.t;
  site_height : Mae_geom.Lambda.t;
  channel_tracks : int;
  utilization : float;
}

let default_params process =
  let nand2 = Mae_tech.Process.find_device_exn process "nand2" in
  {
    site_transistors = 4;
    site_width = nand2.Mae_tech.Device_kind.width;
    site_height = nand2.Mae_tech.Device_kind.height;
    channel_tracks = 10;
    utilization = 0.85;
  }

let validate_params p =
  if p.site_transistors < 1 then Error "site_transistors must be >= 1"
  else if p.site_width <= 0. || p.site_height <= 0. then
    Error "site dimensions must be positive"
  else if p.channel_tracks < 1 then Error "channel_tracks must be >= 1"
  else if p.utilization <= 0. || p.utilization > 1. then
    Error "utilization must be in (0, 1]"
  else Ok p

type estimate = {
  gate_equivalents : int;
  sites : int;
  array_rows : int;
  array_columns : int;
  width : Mae_geom.Lambda.t;
  height : Mae_geom.Lambda.t;
  area : Mae_geom.Lambda.area;
  aspect : Mae_geom.Aspect.t;
  expected_tracks_per_channel : float;
  routable : bool;
}

(* Transistor count of one device: a transistor is itself; a gate goes
   through its library template.  [library] is resolved once per
   circuit, not once per device -- the technology cannot change
   mid-circuit. *)
let transistor_count_with ~library (circuit : Mae_netlist.Circuit.t) process
    (d : Mae_netlist.Device.t) =
  match Mae_tech.Process.find_device process d.kind with
  | Some kind when Mae_tech.Device_kind.is_transistor kind -> Ok 1
  | Some _ | None -> begin
      match Lazy.force library with
      | None -> Error ("no cell library for technology " ^ circuit.technology)
      | Some library -> begin
          match Mae_celllib.Library.find library d.kind with
          | Some cell -> Ok (Mae_celllib.Cell.transistor_count cell)
          | None -> Error ("no site mapping for kind " ^ d.kind)
        end
    end

let site_demand ?params (circuit : Mae_netlist.Circuit.t) process =
  let params =
    match params with Some p -> p | None -> default_params process
  in
  match validate_params params with
  | Error e -> Error e
  | Ok params ->
      let library =
        lazy (Mae_celllib.Cmos_lib.for_technology circuit.technology)
      in
      let rec go acc i =
        if i >= Array.length circuit.devices then Ok acc
        else begin
          match transistor_count_with ~library circuit process circuit.devices.(i) with
          | Error e -> Error e
          | Ok tx ->
              let sites =
                (tx + params.site_transistors - 1) / params.site_transistors
              in
              go (acc + sites) (i + 1)
        end
      in
      go 0 0

(* The squarest array offering at least [sites] sites: an O(sites) scan
   with a log per candidate row count.  Its result depends only on
   (sites, site_width, row_pitch) -- a handful of distinct values per
   process/parameter set across a whole batch -- so the scan is memoized
   in the shared kernel-cache table structure (floats keyed by their
   IEEE-754 bits; the scan itself is untouched, a hit returns exactly
   the bits a fresh scan would). *)
let shape_table : (int * int64 * int64, int * int) Mae_prob.Kernel_cache.Table.t
    =
  Mae_prob.Kernel_cache.Table.create ~name:"gatearray_shape" ()

let squarest_array ~sites ~site_width ~row_pitch =
  Mae_prob.Kernel_cache.Table.find_or_compute shape_table
    (sites, Int64.bits_of_float site_width, Int64.bits_of_float row_pitch)
    (fun () ->
      let best = ref None in
      for rows = 1 to sites do
        let columns = (sites + rows - 1) / rows in
        let width = Float.of_int columns *. site_width in
        let height = Float.of_int rows *. row_pitch in
        let deviation = Float.abs (Float.log (width /. height)) in
        match !best with
        | Some (d, _, _) when d <= deviation -> ()
        | Some _ | None -> best := Some (deviation, rows, columns)
      done;
      let _, array_rows, array_columns = Option.get !best in
      (array_rows, array_columns))

let stats_of ?stats circuit process =
  match stats with
  | Some (s : Mae_netlist.Stats.t) -> s
  | None -> Mae_netlist.Stats.compute circuit process

let estimate ?params ?stats (circuit : Mae_netlist.Circuit.t) process =
  let params =
    match params with Some p -> p | None -> default_params process
  in
  match validate_params params with
  | Error e -> Error e
  | Ok params -> begin
      match site_demand ~params circuit process with
      | Error e -> Error e
      | Ok 0 -> Error "circuit has no devices"
      | Ok demand ->
          let sites =
            Stdlib.max 1
              (Float.to_int
                 (Float.ceil (Float.of_int demand /. params.utilization)))
          in
          let pitch = process.Mae_tech.Process.track_pitch in
          let row_pitch =
            params.site_height
            +. (Float.of_int params.channel_tracks *. pitch)
          in
          let array_rows, array_columns =
            squarest_array ~sites ~site_width:params.site_width ~row_pitch
          in
          let width = Float.of_int array_columns *. params.site_width in
          let height = Float.of_int array_rows *. row_pitch in
          (* routability via the paper's own track expectation; the
             shared statistics (and, through the track model, the shared
             kernel cache) keep batch runs from recomputing per method *)
          let stats = stats_of ?stats circuit process in
          let expected_tracks =
            Row_model.tracks_for_histogram ~model:Config.Paper_model
              ~rows:array_rows ~degree_histogram:stats.degree_histogram
          in
          let per_channel =
            Float.of_int expected_tracks /. Float.of_int array_rows
          in
          Ok
            {
              gate_equivalents = demand;
              sites;
              array_rows;
              array_columns;
              width;
              height;
              area = width *. height;
              aspect = Mae_geom.Aspect.make ~width ~height;
              expected_tracks_per_channel = per_channel;
              routable = per_channel <= Float.of_int params.channel_tracks;
            }
    end

let estimate_routable ?params ?stats ?(max_growth = 8) circuit process =
  let params =
    match params with Some p -> p | None -> default_params process
  in
  let stats = stats_of ?stats circuit process in
  match estimate ~params ~stats circuit process with
  | Error e -> Error e
  | Ok base ->
      let try_rows rows =
        let columns = (base.sites + rows - 1) / rows in
        let pitch = process.Mae_tech.Process.track_pitch in
        let width = Float.of_int columns *. params.site_width in
        let height =
          Float.of_int rows
          *. (params.site_height
             +. (Float.of_int params.channel_tracks *. pitch))
        in
        let tracks =
          Row_model.tracks_for_histogram ~model:Config.Paper_model ~rows
            ~degree_histogram:stats.degree_histogram
        in
        let per_channel = Float.of_int tracks /. Float.of_int rows in
        {
          base with
          array_rows = rows;
          array_columns = columns;
          width;
          height;
          area = width *. height;
          aspect = Mae_geom.Aspect.make ~width ~height;
          expected_tracks_per_channel = per_channel;
          routable = per_channel <= Float.of_int params.channel_tracks;
        }
      in
      let rec grow rows budget =
        let candidate = try_rows rows in
        if candidate.routable then Ok candidate
        else if budget = 0 then
          Error "no routable gate-array master within the growth budget"
        else grow (rows * 2) (budget - 1)
      in
      if base.routable then Ok base else grow (Stdlib.max 1 base.array_rows) max_growth

let pp_estimate ppf e =
  Format.fprintf ppf
    "gate-array: %d gate equivalents on a %d x %d array (%d sites), %.0f x \
     %.0f L = %.0f L^2, aspect %a, %.1f expected tracks/channel (%s)"
    e.gate_equivalents e.array_rows e.array_columns e.sites e.width e.height
    e.area Mae_geom.Aspect.pp e.aspect e.expected_tracks_per_channel
    (if e.routable then "routable" else "NOT routable")
