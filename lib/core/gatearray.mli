(** Gate-array area estimation ({e extension}).

    The paper names three popular methodologies — Full-Custom,
    Standard-Cell and Gate Array — and covers the first two; this module
    supplies the third so the methodology comparison of the introduction
    can run over all of them.  A gate array is a prediffused matrix of
    identical transistor sites with fixed routing channels: logic maps
    onto sites (a site holds a few transistors), so area is determined by
    the site count and the fixed channel capacity, not by a routing
    estimate.  Routability is the question instead — answered here with
    the paper's own equations (2)-(3) track model. *)

type params = {
  site_transistors : int;  (** transistor capacity of one site *)
  site_width : Mae_geom.Lambda.t;
  site_height : Mae_geom.Lambda.t;
  channel_tracks : int;  (** prediffused tracks in each inter-row channel *)
  utilization : float;  (** achievable fraction of sites, in (0, 1] *)
}

val default_params : Mae_tech.Process.t -> params
(** Sites shaped like the process's [nand2] cell (4 transistors), 10
    prediffused tracks per channel, 85 % utilization.  Raises [Not_found]
    if the process has no [nand2]. *)

val validate_params : params -> (params, string) result

type estimate = {
  gate_equivalents : int;  (** sites the logic demands *)
  sites : int;  (** sites provided (demand / utilization, rounded up) *)
  array_rows : int;
  array_columns : int;
  width : Mae_geom.Lambda.t;
  height : Mae_geom.Lambda.t;
  area : Mae_geom.Lambda.area;
  aspect : Mae_geom.Aspect.t;
  expected_tracks_per_channel : float;
      (** the paper's expected track total spread over the array's
          channels *)
  routable : bool;
      (** expected tracks fit the prediffused channel capacity *)
}

val site_demand :
  ?params:params -> Mae_netlist.Circuit.t -> Mae_tech.Process.t -> (int, string) result
(** Sites demanded: transistors map 1-to-1, gates through their library
    template's transistor count, [ceil(tx / site_transistors)] sites per
    device.  Errors when a kind has neither a footprint nor a template. *)

val estimate :
  ?params:params ->
  ?stats:Mae_netlist.Stats.t ->
  Mae_netlist.Circuit.t ->
  Mae_tech.Process.t ->
  (estimate, string) result
(** Square-ish array sizing: the row count minimizing the bounding box's
    deviation from 1:1 given the fixed per-row channel.  Raises nothing;
    all failures are [Error].  Pass [?stats] to reuse statistics (and
    their kernel caches) already computed for the circuit, as
    {!Stdcell.estimate} and {!Fullcustom.estimate} do; they are computed
    on demand otherwise. *)

val estimate_routable :
  ?params:params ->
  ?stats:Mae_netlist.Stats.t ->
  ?max_growth:int ->
  Mae_netlist.Circuit.t ->
  Mae_tech.Process.t ->
  (estimate, string) result
(** Master selection: like {!estimate}, but when the expected channel
    demand exceeds the prediffused capacity, grow the array (more rows =
    more channels, at the cost of wasted sites) until it routes, up to
    [max_growth] (default 8) doublings of the row count.  Errors if no
    routable master exists within the growth budget. *)

val pp_estimate : Format.formatter -> estimate -> unit
