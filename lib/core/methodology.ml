(* The estimator registry: every methodology the pipeline can run,
   selectable by name, behind one signature.

   Registration happens at module-initialization time (the four core
   methodologies below; the baselines from Mae_baselines.Methods), so
   the registry is effectively immutable once main starts: reads from
   engine worker domains need no lock. *)

type error =
  | Unknown_method of string
  | Unsupported of { methodology : string; reason : string }
  | Invalid_input of { methodology : string; reason : string }
  | Estimator_failure of { methodology : string; reason : string }

let pp_error ppf = function
  | Unknown_method name ->
      Format.fprintf ppf "unknown methodology %s" name
  | Unsupported { methodology; reason } ->
      Format.fprintf ppf "%s: not applicable: %s" methodology reason
  | Invalid_input { methodology; reason } ->
      Format.fprintf ppf "%s: invalid input: %s" methodology reason
  | Estimator_failure { methodology; reason } ->
      Format.fprintf ppf "%s: estimator failed: %s" methodology reason

let error_to_string e = Format.asprintf "%a" pp_error e

type outcome =
  | Stdcell of { auto : Estimate.stdcell; sweep : Estimate.stdcell list }
  | Fullcustom of Estimate.fullcustom
  | Gatearray of Gatearray.estimate
  | Scalar of scalar

and scalar = {
  area : Mae_geom.Lambda.area;
  width : Mae_geom.Lambda.t;
  height : Mae_geom.Lambda.t;
}

type dims = {
  area : Mae_geom.Lambda.area;
  width : Mae_geom.Lambda.t;
  height : Mae_geom.Lambda.t;
  aspect : Mae_geom.Aspect.t;
}

let dims = function
  | Stdcell { auto; _ } ->
      {
        area = auto.Estimate.area;
        width = auto.Estimate.width;
        height = auto.Estimate.height;
        aspect = auto.Estimate.aspect;
      }
  | Fullcustom f ->
      {
        area = f.Estimate.area;
        width = f.Estimate.width;
        height = f.Estimate.height;
        aspect = f.Estimate.aspect;
      }
  | Gatearray g ->
      {
        area = g.Gatearray.area;
        width = g.Gatearray.width;
        height = g.Gatearray.height;
        aspect = g.Gatearray.aspect;
      }
  | Scalar s ->
      {
        area = s.area;
        width = s.width;
        height = s.height;
        aspect = Mae_geom.Aspect.make ~width:s.width ~height:s.height;
      }

let kind = function
  | Stdcell _ -> "stdcell"
  | Fullcustom _ -> "fullcustom"
  | Gatearray _ -> "gatearray"
  | Scalar _ -> "scalar"

type ctx = {
  config : Config.t option;
  process : Mae_tech.Process.t;
  stats : Mae_netlist.Stats.t;
  fc_circuit : Mae_netlist.Circuit.t;
  fc_stats : Mae_netlist.Stats.t;
  rows_override : int option;
}

(* A circuit is transistor-level when every device kind resolves to a
   transistor in the process. *)
let all_transistors (circuit : Mae_netlist.Circuit.t) process =
  Array.for_all
    (fun (d : Mae_netlist.Device.t) ->
      match Mae_tech.Process.find_device process d.kind with
      | Some kind -> Mae_tech.Device_kind.is_transistor kind
      | None -> false)
    circuit.devices

let expand_for_fullcustom (circuit : Mae_netlist.Circuit.t) process =
  if all_transistors circuit process then None
  else begin
    match Mae_celllib.Cmos_lib.for_technology circuit.technology with
    | None -> None
    | Some library -> begin
        match Mae_celllib.Expand.circuit library circuit with
        | Ok expanded -> Some expanded
        | Error (Mae_celllib.Expand.Unknown_cell _) -> None
      end
  end

let make_ctx ?config ?rows_override ~process (circuit : Mae_netlist.Circuit.t) =
  match
    let stats = Mae_netlist.Stats.compute circuit process in
    let expanded = expand_for_fullcustom circuit process in
    let fc_circuit = Option.value expanded ~default:circuit in
    let fc_stats =
      match expanded with
      | None -> stats
      | Some e -> Mae_netlist.Stats.compute e process
    in
    { config; process; stats; fc_circuit; fc_stats; rows_override }
  with
  | ctx -> Ok ctx
  | exception Mae_netlist.Stats.Unknown_kind k ->
      Error
        (Invalid_input
           { methodology = "ctx"; reason = "unknown device kind " ^ k })

type t = {
  name : string;
  doc : string;
  estimate : ctx -> Mae_netlist.Circuit.t -> (outcome, error) result;
  runs : Mae_obs.Metrics.counter;
  errors : Mae_obs.Metrics.counter;
  latency : Mae_obs.Metrics.histogram;
  latency_sketch : Mae_obs.Sketch.t;
}

let name t = t.name
let doc t = t.doc

let registry : t list ref = ref []

let find n = List.find_opt (fun t -> String.equal t.name n) !registry
let all () = !registry
let names () = List.map (fun t -> t.name) !registry

(* The estimate store keys results partly by "which estimator code
   produced them".  The registry version folds an explicit epoch (bumped
   whenever estimator behaviour changes without a rename -- tests use it
   to force invalidation) with the registered names, so registering,
   removing or renaming a methodology changes every store key. *)
let epoch = Atomic.make 0
let registry_epoch () = Atomic.get epoch
let bump_registry_epoch () = Atomic.incr epoch

let registry_version () =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "mae-registry %d %s" (Atomic.get epoch)
          (String.concat "," (names ()))))

let valid_name n =
  String.length n > 0
  && String.for_all
       (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '-')
       n

let metric_name n =
  String.map (fun c -> if c = '-' then '_' else c) n

let register ~name ~doc estimate =
  if not (valid_name name) then
    invalid_arg ("Methodology.register: bad name " ^ name) (* invariant *);
  if Option.is_some (find name) then
    invalid_arg ("Methodology.register: duplicate " ^ name) (* invariant *);
  let m = metric_name name in
  let t =
    {
      name;
      doc;
      estimate;
      runs =
        Mae_obs.Metrics.counter
          (Printf.sprintf "mae_method_%s_runs_total" m)
          ~help:(Printf.sprintf "Estimation runs of the %s methodology" name);
      errors =
        Mae_obs.Metrics.counter
          (Printf.sprintf "mae_method_%s_errors_total" m)
          ~help:
            (Printf.sprintf "Runs of the %s methodology that returned an error"
               name);
      latency =
        Mae_obs.Metrics.histogram
          (Printf.sprintf "mae_method_%s_seconds" m)
          ~help:
            (Printf.sprintf
               "Per-module latency of the %s methodology (recorded while \
                telemetry is on)"
               name);
      latency_sketch =
        Mae_obs.Sketch.create
          (Printf.sprintf "mae_method_%s_seconds_summary" m)
          ~help:
            (Printf.sprintf "Per-module latency quantiles of the %s \
                             methodology (GK sketch)" name);
    }
  in
  registry := !registry @ [ t ];
  t

let default_names = [ "stdcell"; "fullcustom-exact"; "fullcustom-average" ]

let resolve requested =
  let requested =
    List.concat_map
      (function
        | "default" -> default_names
        | "all" -> names ()
        | n -> [ n ])
      requested
  in
  let rec go acc = function
    | [] -> Ok (List.rev acc)
    | n :: rest -> begin
        match find n with
        | Some t -> go (t :: acc) rest
        | None -> Error n
      end
  in
  go [] requested

let selection_of_string s =
  let parts =
    String.split_on_char ',' s
    |> List.map String.trim
    |> List.filter (fun p -> p <> "")
  in
  if parts = [] then Error "empty method set"
  else begin
    match resolve parts with
    | Ok ts -> Ok (List.map (fun t -> t.name) ts)
    | Error n ->
        Error
          (Printf.sprintf "unknown methodology %s (registered: %s)" n
             (String.concat ", " (names ())))
  end

(* Histogram + sketch observation behind the one telemetry gate; off
   means one atomic read, no clock reads. *)
let timed t f =
  if not (Mae_obs.Control.enabled ()) then f ()
  else begin
    let t0 = Mae_obs.Clock.monotonic () in
    match f () with
    | r ->
        let d = Mae_obs.Clock.monotonic () -. t0 in
        Mae_obs.Metrics.observe t.latency d;
        Mae_obs.Sketch.observe t.latency_sketch d;
        r
    | exception e ->
        let d = Mae_obs.Clock.monotonic () -. t0 in
        Mae_obs.Metrics.observe t.latency d;
        Mae_obs.Sketch.observe t.latency_sketch d;
        raise e
  end

(* The raise/value boundary: estimators may raise on violated
   preconditions (the kernels assert their domains); a methodology run
   converts anything escaping into a typed error so no pipeline path
   propagates an exception. *)
let run ctx t (circuit : Mae_netlist.Circuit.t) =
  Mae_obs.Span.with_ ~name:("method." ^ t.name)
    ~attrs:[ ("module", circuit.name) ]
  @@ fun () ->
  Mae_obs.Metrics.incr t.runs;
  let result =
    timed t @@ fun () ->
    match t.estimate ctx circuit with
    | (Ok _ | Error _) as r -> r
    | exception Mae_netlist.Stats.Unknown_kind k ->
        Error
          (Invalid_input
             { methodology = t.name; reason = "unknown device kind " ^ k })
    | exception Invalid_argument reason ->
        Error (Invalid_input { methodology = t.name; reason })
    | exception Failure reason ->
        Error (Estimator_failure { methodology = t.name; reason })
    | exception Not_found ->
        Error
          (Unsupported
             {
               methodology = t.name;
               reason = "a required process/library entry is missing";
             })
  in
  (match result with Error _ -> Mae_obs.Metrics.incr t.errors | Ok _ -> ());
  result

(* --- the four core methodologies --- *)

let _stdcell =
  register ~name:"stdcell"
    ~doc:
      "Standard-cell estimator (section 4.1): probabilistic routing-track \
       and feed-through model at an automatically selected row count, plus \
       the Table 2 row sweep"
    (fun ctx circuit ->
      match ctx.rows_override with
      | Some rows ->
          Ok
            (Stdcell
               {
                 auto =
                   Stdcell.estimate ?config:ctx.config ~stats:ctx.stats ~rows
                     circuit ctx.process;
                 sweep = [];
               })
      | None ->
          let auto =
            Stdcell.estimate_auto ?config:ctx.config ~stats:ctx.stats circuit
              ctx.process
          in
          let sweep =
            Stdcell.sweep ?config:ctx.config ~stats:ctx.stats
              ~rows:(Row_select.candidates ~stats:ctx.stats circuit ctx.process)
              circuit ctx.process
          in
          Ok (Stdcell { auto; sweep }))

let fullcustom_method ~mode ctx (_ : Mae_netlist.Circuit.t) =
  Ok
    (Fullcustom
       (Fullcustom.estimate ?config:ctx.config ~stats:ctx.fc_stats ~mode
          ctx.fc_circuit ctx.process))

let _fullcustom_exact =
  register ~name:"fullcustom-exact"
    ~doc:
      "Full-custom estimator (section 4.2, equation 13) summing exact \
       per-device footprints; gate-level schematics are flattened through \
       the technology's cell library first"
    (fullcustom_method ~mode:Config.Exact_areas)

let _fullcustom_average =
  register ~name:"fullcustom-average"
    ~doc:
      "Full-custom estimator (section 4.2) with the N * W_avg * h_avg \
       average-footprint device area, the paper's second Table 1 variant"
    (fullcustom_method ~mode:Config.Average_areas)

let _gatearray =
  register ~name:"gatearray"
    ~doc:
      "Gate-array extension: sites from the logic's transistor demand, a \
       square-ish prediffused master grown until the paper's track model \
       says it routes"
    (fun ctx circuit ->
      match
        Gatearray.estimate_routable ~stats:ctx.stats circuit ctx.process
      with
      | Ok e -> Ok (Gatearray e)
      | Error reason -> Error (Unsupported { methodology = "gatearray"; reason }))
