(** The first-class estimator registry.

    The paper's core pattern — netlist statistics in, area/aspect estimate
    out — has many instances: the section 4.1 standard-cell estimator, the
    two section 4.2 full-custom variants, the gate-array extension, and
    the CHAMP/PLEST-style predictors the introduction compares against.
    This module makes the pattern a first-class value: a {e methodology}
    is a named estimator with the common signature
    [estimate : ctx -> Circuit.t -> (outcome, error) result], and a global
    registry maps names to methodologies so that every layer — the
    {!Driver} pipeline, the batch engine, the serve daemon, the check
    harness and the report renderers — selects estimators by name instead
    of hardcoding them.

    Adding an estimator is a single {!register} call; the driver, engine
    CLI ([--methods]), serve request schema and [GET /methods] discovery
    endpoint pick it up without further changes.

    The four core methodologies ([stdcell], [fullcustom-exact],
    [fullcustom-average], [gatearray]) register here at module
    initialization; the four baselines ([naive], [champ], [pla], [plest])
    register from [Mae_baselines.Methods] when that library is linked
    (the engine, serve daemon and check harness all link it). *)

(** {1 Typed errors}

    No pipeline path raises: estimator preconditions that used to be
    [Invalid_argument]/[Failure] surface as values here.  Exceptions
    escaping an estimator are converted by {!run} at the boundary. *)

type error =
  | Unknown_method of string  (** no methodology registered under this name *)
  | Unsupported of { methodology : string; reason : string }
      (** the methodology cannot apply to this circuit/process pair
          (e.g. gate-array with no site cell, CHAMP with no model) *)
  | Invalid_input of { methodology : string; reason : string }
      (** the circuit violates a precondition (empty, unknown device
          kind, bad row count) *)
  | Estimator_failure of { methodology : string; reason : string }
      (** the estimator ran and failed internally *)

val pp_error : Format.formatter -> error -> unit
val error_to_string : error -> string

(** {1 Outcomes} *)

(** Per-methodology result payloads, plus the shared dimensions every
    outcome can report. *)
type outcome =
  | Stdcell of { auto : Estimate.stdcell; sweep : Estimate.stdcell list }
      (** the automatically selected row count plus the Table 2 sweep
          (empty when a fixed row count was forced via
          {!ctx.rows_override}) *)
  | Fullcustom of Estimate.fullcustom
  | Gatearray of Gatearray.estimate
  | Scalar of scalar  (** baseline predictors: area plus derived dims *)

and scalar = {
  area : Mae_geom.Lambda.area;
  width : Mae_geom.Lambda.t;
  height : Mae_geom.Lambda.t;
}

type dims = {
  area : Mae_geom.Lambda.area;
  width : Mae_geom.Lambda.t;
  height : Mae_geom.Lambda.t;
  aspect : Mae_geom.Aspect.t;
}

val dims : outcome -> dims
(** The shared fields of any outcome (a [Stdcell] outcome reports its
    automatically selected estimate). *)

val kind : outcome -> string
(** ["stdcell"], ["fullcustom"], ["gatearray"] or ["scalar"] — the
    variant tag, for serializers. *)

(** {1 Estimation context}

    Everything a methodology may consume beyond the circuit itself,
    computed once per module and shared across the selected method set
    (the statistics-sharing contract {!Stdcell} and {!Fullcustom}
    established). *)

type ctx = {
  config : Config.t option;
  process : Mae_tech.Process.t;
  stats : Mae_netlist.Stats.t;  (** of the raw circuit *)
  fc_circuit : Mae_netlist.Circuit.t;
      (** the transistor-level circuit full-custom estimation runs on:
          the library expansion when one happened, the raw circuit
          otherwise *)
  fc_stats : Mae_netlist.Stats.t;  (** of [fc_circuit] *)
  rows_override : int option;
      (** force the standard-cell estimator to this row count (used by
          the check harness to re-derive the Table 2 golden rows); [None]
          selects rows automatically *)
}

val expand_for_fullcustom :
  Mae_netlist.Circuit.t -> Mae_tech.Process.t -> Mae_netlist.Circuit.t option
(** Flatten a gate-level schematic through its technology's cell library
    when one exists; [None] when the circuit is already transistor-level
    or no library applies. *)

val make_ctx :
  ?config:Config.t ->
  ?rows_override:int ->
  process:Mae_tech.Process.t ->
  Mae_netlist.Circuit.t ->
  (ctx, error) result
(** Compute statistics (and the full-custom expansion) for one circuit.
    Returns [Invalid_input] on an unknown device kind instead of raising.
    The driver builds its [ctx] inline (to keep its per-stage spans);
    standalone callers use this. *)

(** {1 The registry} *)

type t
(** A registered methodology: name, one-line description, estimator. *)

val name : t -> string
val doc : t -> string

val register :
  name:string ->
  doc:string ->
  (ctx -> Mae_netlist.Circuit.t -> (outcome, error) result) ->
  t
(** Register an estimator under [name].  Names must be non-empty and use
    only [[a-z0-9-]].  Raises [Invalid_argument] on a malformed or
    duplicate name — registration happens at module initialization, so a
    clash is a programming error, not a request error.  Per-methodology
    telemetry ([mae_method_<name>_runs_total], [.._errors_total] and the
    [mae_method_<name>_seconds] latency histogram) is created here. *)

val find : string -> t option
val all : unit -> t list  (** registration order *)

val names : unit -> string list
val default_names : string list
(** [["stdcell"; "fullcustom-exact"; "fullcustom-average"]] — the method
    set that reproduces the pre-registry pipeline exactly. *)

val registry_version : unit -> string
(** Hex digest identifying the current estimator registry: the ordered
    registered names plus an explicit epoch.  The estimate store folds
    this into every key, so cached results are invalidated by
    construction when estimators are added, removed, renamed -- or when
    {!bump_registry_epoch} declares their behaviour changed. *)

val registry_epoch : unit -> int

val bump_registry_epoch : unit -> unit
(** Declare that estimator behaviour changed without any rename (e.g. a
    tuned model constant), invalidating previously stored estimates. *)

val resolve : string list -> (t list, string) result
(** Look every name up, preserving order; [Error name] on the first
    unknown one.  The aliases ["default"] and ["all"] expand to
    {!default_names} and {!names} respectively. *)

val selection_of_string : string -> (string list, string) result
(** Parse a CLI/config method set: comma-separated names, with the
    ["default"] and ["all"] aliases.  Rejects empty sets and unknown
    names (the error text lists what is registered). *)

val run : ctx -> t -> Mae_netlist.Circuit.t -> (outcome, error) result
(** Run one methodology under its [method.<name>] span, record its
    run/error counters and latency histogram, and convert any escaping
    exception ({!Mae_netlist.Stats.Unknown_kind}, [Invalid_argument],
    [Failure], [Not_found]) into the corresponding typed {!error} — the
    pipeline boundary where raises become values. *)
