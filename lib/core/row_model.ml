let kernel_model : Config.row_span_model -> Mae_prob.Kernel_cache.span_model =
  function
  | Paper_model -> Mae_prob.Kernel_cache.Paper
  | Exact_occupancy -> Mae_prob.Kernel_cache.Exact

let prob_rows ~model ~rows ~degree =
  if rows < 1 then invalid_arg "Row_model.prob_rows: rows < 1"; (* invariant *)
  if degree < 1 then invalid_arg "Row_model.prob_rows: degree < 1"; (* invariant *)
  Mae_prob.Kernel_cache.row_span_dist ~model:(kernel_model model) ~rows ~degree

let expected_span ~model ~rows ~degree =
  if rows < 1 then invalid_arg "Row_model.expected_span: rows < 1"; (* invariant *)
  if degree < 1 then invalid_arg "Row_model.expected_span: degree < 1"; (* invariant *)
  Mae_prob.Kernel_cache.expected_span ~model:(kernel_model model) ~rows ~degree

let tracks_for_histogram ~model ~rows ~degree_histogram =
  List.fold_left
    (fun acc (degree, count) ->
      if count < 0 then invalid_arg "Row_model.tracks_for_histogram: negative count"; (* invariant *)
      if count = 0 then acc
      else acc + (count * expected_span ~model ~rows ~degree))
    0 degree_histogram
