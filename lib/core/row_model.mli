(** Equations (2)-(3): how many rows do the D components of a net span?

    A component lands in any of the n rows with probability 1/n.  The
    number of rows actually occupied determines how many routing tracks
    the net consumes under the paper's one-net-per-track assumption: a net
    spanning i rows needs i tracks (one in each neighbouring channel).

    Distributions are shared through {!Mae_prob.Kernel_cache} -- they
    depend only on [(rows, degree)], so repeated queries (sweeps, batches)
    hit the cache. *)

val prob_rows :
  model:Config.row_span_model -> rows:int -> degree:int -> Mae_prob.Dist.t
(** Distribution of the number of occupied rows, over support
    [1 .. min rows degree].

    [Paper_model] is equation (2) verbatim: weight(i) proportional to
    [C(n,i) * b(i)] with [b] the paper's recurrence at exponent
    [k = min (n, D)].  [Exact_occupancy] uses the exact surjection count
    [C(n,i) * surj(D,i) / n^D].  The two agree whenever [rows >= degree].

    Raises [Invalid_argument] when [rows < 1] or [degree < 1]. *)

val expected_span : model:Config.row_span_model -> rows:int -> degree:int -> int
(** Equation (3): E(i), rounded up to the next integer as the paper
    prescribes.  This is the number of tracks charged to one net of this
    degree. *)

val tracks_for_histogram :
  model:Config.row_span_model -> rows:int -> degree_histogram:(int * int) list -> int
(** Expected total track count for the module: sum over the histogram of
    [y_D * expected_span D] (the paper's "expectation value of the total
    number of tracks").  Entries with [y_D = 0] are skipped; raises
    [Invalid_argument] on a negative count or non-positive degree. *)
