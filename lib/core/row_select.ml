let rows_for_divisor ~cell_area ~row_height ~divisor =
  if cell_area <= 0. then invalid_arg "Row_select: non-positive cell area"; (* invariant *)
  if row_height <= 0. then invalid_arg "Row_select: non-positive row height"; (* invariant *)
  if divisor < 1 then invalid_arg "Row_select: divisor < 1"; (* invariant *)
  let raw = Float.sqrt cell_area /. (Float.of_int divisor *. row_height) in
  Stdlib.max 1 (Float.to_int (Float.ceil (raw -. 1e-9)))

let row_length ~cell_area ~row_height ~rows =
  if rows < 1 then invalid_arg "Row_select.row_length: rows < 1"; (* invariant *)
  cell_area /. (Float.of_int rows *. row_height)

let loop_state ?stats circuit process =
  let stats =
    match stats with
    | Some s -> s
    | None -> Mae_netlist.Stats.compute circuit process
  in
  if stats.Mae_netlist.Stats.device_count = 0 then
    invalid_arg "Row_select: circuit has no devices"; (* invariant *)
  let cell_area = stats.Mae_netlist.Stats.total_device_area in
  let row_height = process.Mae_tech.Process.row_height in
  let ports =
    Aspect_ratio.port_length ~port_count:stats.Mae_netlist.Stats.port_count
      ~process
  in
  (cell_area, row_height, ports)

let initial_rows ?stats circuit process =
  let cell_area, row_height, ports = loop_state ?stats circuit process in
  let rec go divisor =
    let rows = rows_for_divisor ~cell_area ~row_height ~divisor in
    let length = row_length ~cell_area ~row_height ~rows in
    if length >= ports || rows = 1 then rows else go (divisor + 1)
  in
  go 2

let candidates ?(max_count = 3) ?stats circuit process =
  if max_count < 1 then invalid_arg "Row_select.candidates: max_count < 1"; (* invariant *)
  let cell_area, row_height, ports = loop_state ?stats circuit process in
  let rec skip_to_accepted divisor =
    let rows = rows_for_divisor ~cell_area ~row_height ~divisor in
    let length = row_length ~cell_area ~row_height ~rows in
    if length >= ports || rows = 1 then divisor else skip_to_accepted (divisor + 1)
  in
  let rec collect divisor acc count =
    if count = 0 then List.rev acc
    else begin
      let rows = rows_for_divisor ~cell_area ~row_height ~divisor in
      if rows = 1 then
        List.rev (if List.mem 1 acc then acc else 1 :: acc)
      else begin
        let acc, count =
          match acc with
          | prev :: _ when prev = rows -> (acc, count)
          | _ -> (rows :: acc, count - 1)
        in
        collect (divisor + 1) acc count
      end
    end
  in
  collect (skip_to_accepted 2) [] max_count
