(** Section 5: choosing the number of standard-cell rows.

    The initial row count divides the square root of the total active-cell
    area by twice the row height; if the resulting row length cannot host
    all I/O ports, the divisor grows (fewer, longer rows) until it can.
    Table 2 reports estimates for several candidate row counts, which
    {!candidates} reproduces. *)

val rows_for_divisor :
  cell_area:Mae_geom.Lambda.area -> row_height:Mae_geom.Lambda.t -> divisor:int -> int
(** Step 2 of the algorithm: ceil(sqrt(cell_area) / (divisor * row_height)),
    floored at 1 row.  Raises [Invalid_argument] on non-positive inputs. *)

val row_length :
  cell_area:Mae_geom.Lambda.area -> row_height:Mae_geom.Lambda.t -> rows:int -> Mae_geom.Lambda.t
(** Step 3: cell_area / (rows * row_height), the cell portion of a row. *)

val initial_rows :
  ?stats:Mae_netlist.Stats.t -> Mae_netlist.Circuit.t -> Mae_tech.Process.t -> int
(** The full loop: starts at divisor 2 and accepts the first row count
    whose row length fits the port length (always terminates: the row
    count eventually reaches 1).  [stats], when given, must be
    [Stats.compute circuit process] -- callers that already hold it avoid
    recomputing.  Raises {!Mae_netlist.Stats.Unknown_kind} on a
    schematic/process mismatch and [Invalid_argument] on a circuit with
    no devices. *)

val candidates :
  ?max_count:int ->
  ?stats:Mae_netlist.Stats.t ->
  Mae_netlist.Circuit.t ->
  Mae_tech.Process.t ->
  int list
(** Distinct row counts visited by the loop, starting at the accepted one
    and continuing toward fewer rows, at most [max_count] (default 3, the
    Table 2 presentation).  Always non-empty, strictly decreasing. *)
