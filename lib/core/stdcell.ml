let stats_of ?stats circuit process =
  match stats with
  | Some s -> s
  | None -> Mae_netlist.Stats.compute circuit process

let estimate ?(config = Config.default) ?stats ~rows circuit process =
  if rows < 1 then invalid_arg "Stdcell.estimate: rows < 1"; (* invariant *)
  let stats = stats_of ?stats circuit process in
  if stats.Mae_netlist.Stats.device_count = 0 then
    invalid_arg "Stdcell.estimate: circuit has no devices"; (* invariant *)
  let tracks_upper_bound =
    Row_model.tracks_for_histogram ~model:config.row_span_model ~rows
      ~degree_histogram:stats.degree_histogram
  in
  let tracks =
    match config.track_sharing_factor with
    | None -> tracks_upper_bound
    | Some f ->
        Stdlib.max 1
          (Float.to_int (Float.ceil (Float.of_int tracks_upper_bound *. f)))
  in
  let connected_nets =
    List.fold_left (fun acc (_, y) -> acc + y) 0 stats.degree_histogram
  in
  let feed_throughs =
    Feedthrough.expected_feed_throughs ~net_count:connected_nets ~rows
  in
  let row_height = process.Mae_tech.Process.row_height in
  let height =
    (Float.of_int rows *. row_height)
    +. (Float.of_int tracks *. process.Mae_tech.Process.track_pitch)
  in
  let width =
    (Float.of_int stats.device_count *. stats.average_width /. Float.of_int rows)
    +. Float.of_int feed_throughs *. process.Mae_tech.Process.feed_through_width
  in
  let area = height *. width in
  let aspect_raw = Mae_geom.Aspect.make ~width ~height in
  {
    Estimate.rows;
    tracks;
    feed_throughs;
    height;
    width;
    area;
    aspect = Aspect_ratio.clamp config aspect_raw;
    aspect_raw;
  }

let estimate_auto ?config ?stats circuit process =
  let stats = stats_of ?stats circuit process in
  let rows = Row_select.initial_rows ~stats circuit process in
  estimate ?config ~stats ~rows circuit process

let sweep ?config ?stats ~rows circuit process =
  let stats = stats_of ?stats circuit process in
  List.map (fun n -> estimate ?config ~stats ~rows:n circuit process) rows
