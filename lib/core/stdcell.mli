(** The Standard-Cell area estimator (section 4.1, equations 1-12, 14).

    Module height = n rows plus the expected routing tracks (one net per
    track: an upper bound); module width = the average cell content of a
    row plus the expected feed-throughs of the central, most-loaded row. *)

val estimate :
  ?config:Config.t ->
  ?stats:Mae_netlist.Stats.t ->
  rows:int ->
  Mae_netlist.Circuit.t ->
  Mae_tech.Process.t ->
  Estimate.stdcell
(** Equation (12) for a fixed row count.  [stats], when given, must be
    [Stats.compute circuit process]; passing it lets batch callers and
    sweeps share one computation.  Raises
    {!Mae_netlist.Stats.Unknown_kind} on a schematic/process mismatch and
    [Invalid_argument] when [rows < 1] or the circuit has no devices. *)

val estimate_auto :
  ?config:Config.t ->
  ?stats:Mae_netlist.Stats.t ->
  Mae_netlist.Circuit.t ->
  Mae_tech.Process.t ->
  Estimate.stdcell
(** {!estimate} at the row count chosen by {!Row_select.initial_rows}. *)

val sweep :
  ?config:Config.t ->
  ?stats:Mae_netlist.Stats.t ->
  rows:int list ->
  Mae_netlist.Circuit.t ->
  Mae_tech.Process.t ->
  Estimate.stdcell list
(** One estimate per row count, in the given order (the Table 2 sweep).
    The circuit statistics are computed once and shared by every entry. *)
