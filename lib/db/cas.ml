(* The content-addressed estimate store.

   A key is a digest over everything that determines an estimate:

     - the canonical circuit text (Mae_netlist.Canonical -- structure,
       not construction order),
     - the process fingerprint (every parameter that can influence a
       number),
     - the methodology registry version (names + epoch), and
     - the resolved method-name set the caller will run.

   Invalidation is therefore by construction: retune a process, register
   or rename an estimator, or bump the registry epoch, and every old key
   simply stops being looked up.  There is no invalidation protocol to
   get wrong.

   Two tiers back the store.  [table] holds promoted entries: full
   module reports, returned on hits bit-for-bit as first computed.
   [warm] holds entries replayed from the append-only journal as parsed
   text; a warm entry is promoted (reconstructed into a report) on its
   first hit, which needs the live circuit and process -- exactly what
   the caller holding a matching key has in hand.  Reconstructed reports
   carry [issues = []] and [expanded = None]: validation warnings and
   the expansion intermediate are not part of any serve answer, and
   recomputing them would defeat the cache.

   Journal robustness: appends are sequential, so the only corruption a
   crash can produce is a torn final entry -- tolerated on load.  A
   malformed line that is *followed* by further entries is real
   corruption and fails the load. *)

module D = Mae.Driver
module M = Mae.Methodology
module C = Mae_netlist.Circuit

type warm_entry = {
  w_module : string;
  w_technology : string;
  w_results : (string * (M.outcome, M.error) result) list;
}

(* live-tier entries thread an intrusive doubly-linked recency list:
   head is most recently touched, tail is the LRU eviction victim *)
type node = {
  n_key : string;
  n_report : D.module_report;
  mutable n_prev : node option;
  mutable n_next : node option;
}

type t = {
  lock : Mutex.t;
  live_cap : int option;
  table : (string, node) Hashtbl.t;
  warm : (string, warm_entry) Hashtbl.t;
  mutable lru_head : node option;
  mutable lru_tail : node option;
  mutable journal : out_channel option;
}

let hits =
  Mae_obs.Metrics.counter "mae_estimate_cache_hits_total"
    ~help:"Estimate-store lookups answered from the content-addressed store"

let misses =
  Mae_obs.Metrics.counter "mae_estimate_cache_misses_total"
    ~help:"Estimate-store lookups that fell through to estimation"

let evictions =
  Mae_obs.Metrics.counter "mae_estimate_cache_evictions_total"
    ~help:"Estimate-store live-tier entries evicted by the LRU cap"

let hit_count () = Mae_obs.Metrics.counter_value hits
let miss_count () = Mae_obs.Metrics.counter_value misses
let eviction_count () = Mae_obs.Metrics.counter_value evictions

let create ?live_cap () =
  (match live_cap with
  | Some c when c < 1 ->
      invalid_arg (Printf.sprintf "Cas.create: live_cap %d < 1" c)
  | _ -> ());
  {
    lock = Mutex.create ();
    live_cap;
    table = Hashtbl.create 64;
    warm = Hashtbl.create 64;
    lru_head = None;
    lru_tail = None;
    journal = None;
  }

(* --- recency list (call with t.lock held) --- *)

let detach t n =
  (match n.n_prev with
  | Some p -> p.n_next <- n.n_next
  | None -> t.lru_head <- n.n_next);
  (match n.n_next with
  | Some s -> s.n_prev <- n.n_prev
  | None -> t.lru_tail <- n.n_prev);
  n.n_prev <- None;
  n.n_next <- None

let push_front t n =
  n.n_next <- t.lru_head;
  (match t.lru_head with Some h -> h.n_prev <- Some n | None -> ());
  t.lru_head <- Some n;
  if t.lru_tail = None then t.lru_tail <- Some n

let touch t n =
  if t.lru_head != Some n then begin
    detach t n;
    push_front t n
  end

let enforce_cap t =
  match t.live_cap with
  | None -> ()
  | Some cap ->
      let rec evict () =
        if Hashtbl.length t.table > cap then
          match t.lru_tail with
          | None -> () (* unreachable: every live entry is on the list *)
          | Some victim ->
              detach t victim;
              Hashtbl.remove t.table victim.n_key;
              Mae_obs.Metrics.incr evictions;
              evict ()
      in
      evict ()

let insert_live t k report =
  let n = { n_key = k; n_report = report; n_prev = None; n_next = None } in
  Hashtbl.replace t.table k n;
  push_front t n;
  enforce_cap t

let key ?(methods = M.default_names) ~process circuit =
  Digest.to_hex
    (Digest.string
       (Printf.sprintf "mae-cas-key 1\n%sprocess %s\nregistry %s\nmethods %s\n"
          (Mae_netlist.Canonical.to_string circuit)
          (Mae_tech.Process.fingerprint process)
          (M.registry_version ())
          (String.concat "," methods)))

(* --- outcome (de)serialization: one "method" line per result --- *)

let ratio a = (a : Mae_geom.Aspect.t :> float)

let sc_string (e : Mae.Estimate.stdcell) =
  Printf.sprintf "%d %d %d %h %h %h %h %h" e.rows e.tracks e.feed_throughs
    e.height e.width e.area (ratio e.aspect) (ratio e.aspect_raw)

let outcome_string = function
  | M.Stdcell { auto; sweep } ->
      Printf.sprintf "stdcell %s sweep %d%s" (sc_string auto)
        (List.length sweep)
        (String.concat ""
           (List.map (fun e -> " " ^ sc_string e) sweep))
  | M.Fullcustom (f : Mae.Estimate.fullcustom) ->
      Printf.sprintf "fullcustom %h %h %h %h %h %h %h" f.device_area
        f.wire_area f.area f.width f.height (ratio f.aspect)
        (ratio f.aspect_raw)
  | M.Gatearray (g : Mae.Gatearray.estimate) ->
      Printf.sprintf "gatearray %d %d %d %d %h %h %h %h %h %b"
        g.gate_equivalents g.sites g.array_rows g.array_columns g.width
        g.height g.area (ratio g.aspect) g.expected_tracks_per_channel
        g.routable
  | M.Scalar s -> Printf.sprintf "scalar %h %h %h" s.area s.width s.height

let result_string = function
  | Ok o -> outcome_string o
  | Error e -> (
      match e with
      | M.Unknown_method n -> Printf.sprintf "error unknown-method %s" (Escape.quote n)
      | M.Unsupported { methodology; reason } ->
          Printf.sprintf "error unsupported %s %s" (Escape.quote methodology)
            (Escape.quote reason)
      | M.Invalid_input { methodology; reason } ->
          Printf.sprintf "error invalid-input %s %s" (Escape.quote methodology)
            (Escape.quote reason)
      | M.Estimator_failure { methodology; reason } ->
          Printf.sprintf "error estimator-failure %s %s"
            (Escape.quote methodology) (Escape.quote reason))

let entry_string ~key (r : D.module_report) =
  let b = Buffer.create 512 in
  Printf.bprintf b "entry %s\n" key;
  Printf.bprintf b "module %s technology %s\n"
    (Escape.quote r.circuit.C.name)
    (Escape.quote r.circuit.C.technology);
  List.iter
    (fun (mr : D.method_result) ->
      Printf.bprintf b "method %s %s\n"
        (Escape.quote (M.name mr.methodology))
        (result_string mr.outcome))
    r.results;
  Buffer.add_string b "end\n";
  Buffer.contents b

exception Bad of string

let fl s =
  match float_of_string_opt s with
  | Some f -> f
  | None -> raise (Bad ("bad float " ^ s))

let it s =
  match int_of_string_opt s with
  | Some i -> i
  | None -> raise (Bad ("bad int " ^ s))

let asp s =
  let f = fl s in
  if Float.is_finite f && f > 0. then Mae_geom.Aspect.of_ratio f
  else raise (Bad ("bad aspect ratio " ^ s))

let parse_sc = function
  | r :: t :: f :: h :: w :: a :: a1 :: a2 :: rest ->
      ( {
          Mae.Estimate.rows = it r;
          tracks = it t;
          feed_throughs = it f;
          height = fl h;
          width = fl w;
          area = fl a;
          aspect = asp a1;
          aspect_raw = asp a2;
        },
        rest )
  | _ -> raise (Bad "truncated stdcell estimate")

let parse_result = function
  | "stdcell" :: rest -> (
      let auto, rest = parse_sc rest in
      match rest with
      | "sweep" :: k :: rest ->
          let k = it k in
          let rec go n acc rest =
            if n = 0 then (List.rev acc, rest)
            else
              let e, rest = parse_sc rest in
              go (n - 1) (e :: acc) rest
          in
          let sweep, rest = go k [] rest in
          if rest <> [] then raise (Bad "trailing stdcell tokens");
          Ok (M.Stdcell { auto; sweep })
      | _ -> raise (Bad "stdcell estimate missing sweep"))
  | [ "fullcustom"; da; wa; a; w; h; a1; a2 ] ->
      Ok
        (M.Fullcustom
           {
             device_area = fl da;
             wire_area = fl wa;
             area = fl a;
             width = fl w;
             height = fl h;
             aspect = asp a1;
             aspect_raw = asp a2;
           })
  | [ "gatearray"; ge; s; ar; ac; w; h; a; a1; tr; routable ] ->
      Ok
        (M.Gatearray
           {
             gate_equivalents = it ge;
             sites = it s;
             array_rows = it ar;
             array_columns = it ac;
             width = fl w;
             height = fl h;
             area = fl a;
             aspect = asp a1;
             expected_tracks_per_channel = fl tr;
             routable =
               (match routable with
               | "true" -> true
               | "false" -> false
               | _ -> raise (Bad "bad routable flag"));
           })
  | [ "scalar"; a; w; h ] -> Ok (M.Scalar { area = fl a; width = fl w; height = fl h })
  | "error" :: tag :: rest ->
      Error
        (match (tag, rest) with
        | "unknown-method", [ n ] -> M.Unknown_method n
        | "unsupported", [ m; r ] -> M.Unsupported { methodology = m; reason = r }
        | "invalid-input", [ m; r ] -> M.Invalid_input { methodology = m; reason = r }
        | "estimator-failure", [ m; r ] ->
            M.Estimator_failure { methodology = m; reason = r }
        | _ -> raise (Bad "bad error payload"))
  | kind :: _ -> raise (Bad ("unknown outcome kind " ^ kind))
  | [] -> raise (Bad "empty method payload")

(* --- promotion: warm text -> full report --- *)

let report_of_entry e ~circuit ~process =
  if
    (not (String.equal e.w_module circuit.C.name))
    || not (String.equal e.w_technology circuit.C.technology)
  then None
  else
    let rec go acc = function
      | [] ->
          Some
            {
              D.circuit;
              process;
              issues = [];
              expanded = None;
              results = List.rev acc;
            }
      | (name, outcome) :: rest -> (
          (* a method name no longer registered invalidates the entry *)
          match M.find name with
          | None -> None
          | Some t -> go ({ D.methodology = t; outcome } :: acc) rest)
    in
    go [] e.w_results

(* --- the store proper --- *)

let locked t f =
  Mutex.lock t.lock;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.lock) f

let find t ~key:k ~circuit ~process =
  let r =
    locked t (fun () ->
        match Hashtbl.find_opt t.table k with
        | Some n ->
            touch t n;
            Some n.n_report
        | None -> (
            match Hashtbl.find_opt t.warm k with
            | None -> None
            | Some e -> (
                Hashtbl.remove t.warm k;
                match report_of_entry e ~circuit ~process with
                | None -> None
                | Some report ->
                    insert_live t k report;
                    Some report)))
  in
  (match r with
  | Some _ -> Mae_obs.Metrics.incr hits
  | None -> Mae_obs.Metrics.incr misses);
  r

let store t ~key:k report =
  locked t (fun () ->
      if not (Hashtbl.mem t.table k) then begin
        insert_live t k report;
        Hashtbl.remove t.warm k;
        match t.journal with
        | None -> ()
        | Some oc -> (
            try
              output_string oc (entry_string ~key:k report);
              flush oc
            with Sys_error _ ->
              (* a dying disk must not take estimation down; the store
                 keeps serving from memory without persistence *)
              (try close_out_noerr oc with _ -> ());
              t.journal <- None)
      end)

let length t = locked t (fun () -> Hashtbl.length t.table + Hashtbl.length t.warm)
let warm_pending t = locked t (fun () -> Hashtbl.length t.warm)

(* --- journal --- *)

let parse_journal lines =
  (* Best-effort replay: a malformed block (a torn tail from a crash
     mid-append, or bit rot) is skipped and parsing resyncs at the next
     "entry" header.  Skipping is always safe for a cache -- a dropped
     entry is just a future miss.  Returns (entries, skipped_blocks). *)
  let n = Array.length lines in
  let is_entry l = String.length l >= 6 && String.sub l 0 6 = "entry " in
  let entries = ref [] in
  let skipped = ref 0 in
  let next_entry j =
    let j = ref j in
    while !j < n && not (is_entry (String.trim lines.(!j))) do
      incr j
    done;
    !j
  in
  let parse_block i =
    (* lines.(i) is an entry header; Some (entry, next_line) or None *)
    try
      let k =
        match Escape.tokens (String.trim lines.(i)) with
        | Ok [ "entry"; k ] -> k
        | Ok _ | Error _ -> raise (Bad "bad entry header")
      in
      let meta = ref None in
      let results = ref [] in
      let closed = ref false in
      let j = ref (i + 1) in
      while (not !closed) && !j < n && not (is_entry (String.trim lines.(!j))) do
        (let l = String.trim lines.(!j) in
         if l = "" then ()
         else
           match Escape.tokens l with
           | Error e -> raise (Bad e)
           | Ok [ "end" ] -> closed := true
           | Ok [ "module"; m; "technology"; tech ] -> meta := Some (m, tech)
           | Ok ("method" :: name :: payload) ->
               results := (name, parse_result payload) :: !results
           | Ok _ -> raise (Bad "unrecognized journal line"));
        incr j
      done;
      if not !closed then raise (Bad "unterminated entry");
      match !meta with
      | None -> raise (Bad "entry without module line")
      | Some (m, tech) ->
          Some
            ( ( k,
                {
                  w_module = m;
                  w_technology = tech;
                  w_results = List.rev !results;
                } ),
              !j )
    with Bad _ -> None
  in
  let i = ref 0 in
  while !i < n do
    let line = String.trim lines.(!i) in
    if line = "" then incr i
    else if not (is_entry line) then begin
      incr skipped;
      i := next_entry (!i + 1)
    end
    else
      match parse_block !i with
      | Some (e, j) ->
          entries := e :: !entries;
          i := j
      | None ->
          incr skipped;
          i := next_entry (!i + 1)
  done;
  (List.rev !entries, !skipped)

let open_journal t ~path =
  let read_lines () =
    if Sys.file_exists path then begin
      let ic = open_in_bin path in
      Fun.protect
        ~finally:(fun () -> close_in_noerr ic)
        (fun () ->
          let len = in_channel_length ic in
          let text = really_input_string ic len in
          Array.of_list (String.split_on_char '\n' text))
    end
    else [||]
  in
  match read_lines () with
  | exception Sys_error e -> Error e
  | lines -> (
      let entries, skipped = parse_journal lines in
      match open_out_gen [ Open_wronly; Open_append; Open_creat ] 0o644 path with
      | exception Sys_error e -> Error e
      | oc ->
          locked t (fun () ->
              List.iter
                (fun (k, e) ->
                  if not (Hashtbl.mem t.table k) then Hashtbl.replace t.warm k e)
                entries;
              t.journal <- Some oc);
          Ok (List.length entries, skipped))

let close_journal t =
  locked t (fun () ->
      match t.journal with
      | None -> ()
      | Some oc ->
          (try close_out oc with Sys_error _ -> ());
          t.journal <- None)

let to_store t =
  let s = Store.create () in
  locked t (fun () ->
      Hashtbl.iter
        (fun _ n ->
          match Record.of_report n.n_report with
          | Ok record -> Store.add s record
          | Error _ -> ())
        t.table);
  s
