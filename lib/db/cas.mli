(** Content-addressed estimate store.

    Keys digest everything that determines an estimate: the canonical
    circuit text ({!Mae_netlist.Canonical} -- structure, not
    construction order), the process fingerprint
    ({!Mae_tech.Process.fingerprint}), the methodology registry version
    ({!Mae.Methodology.registry_version}) and the resolved method-name
    set.  Invalidation is by construction: retuning a process, changing
    the registry, or bumping its epoch changes every key, so stale
    entries are simply never looked up again.

    Hits return the stored {!Mae.Driver.module_report} bit-for-bit as
    first computed.  Entries replayed from the journal are promoted
    lazily on first hit; a promoted-from-disk report carries
    [issues = []] and [expanded = None] (neither is part of a serve
    answer).  Thread-safe; lookups count into the
    [mae_estimate_cache_{hits,misses}_total] metrics. *)

type t

val create : ?live_cap:int -> unit -> t
(** [?live_cap] bounds the live (promoted) tier: past the cap the
    least-recently-used entry is evicted and counted into
    [mae_estimate_cache_evictions_total].  Recency is updated on hit,
    promotion, and insert.  Omitted means unbounded.  Raises
    [Invalid_argument] on a cap below 1.  The warm (journal-replayed)
    tier is not capped: warm entries are parsed text, an order of
    magnitude lighter than live reports, and each leaves the tier on
    its first lookup. *)

val key :
  ?methods:string list ->
  process:Mae_tech.Process.t ->
  Mae_netlist.Circuit.t ->
  string
(** The content address of (circuit, process, registry, methods).
    [?methods] must be the {e resolved} method-name list (default
    {!Mae.Methodology.default_names}); aliases like ["default"] must be
    expanded by the caller so equal selections key equal. *)

val find :
  t ->
  key:string ->
  circuit:Mae_netlist.Circuit.t ->
  process:Mae_tech.Process.t ->
  Mae.Driver.module_report option
(** Lookup, counting a hit or miss.  [circuit] and [process] are needed
    to promote a journal-replayed entry into a live report; they must be
    the pair the key was computed from.  A warm entry naming a
    methodology that is no longer registered is dropped (miss). *)

val store : t -> key:string -> Mae.Driver.module_report -> unit
(** Insert (first write wins) and append to the journal when one is
    open.  A journal write failure disables persistence but never
    estimation. *)

val length : t -> int
(** Promoted + journal-replayed entries currently held. *)

val warm_pending : t -> int
(** Journal-replayed entries not yet promoted by a hit. *)

val hit_count : unit -> int
(** Process-wide value of [mae_estimate_cache_hits_total]. *)

val miss_count : unit -> int

val eviction_count : unit -> int
(** Process-wide value of [mae_estimate_cache_evictions_total]. *)

val open_journal : t -> path:string -> (int * int, string) result
(** Replay [path] (created if absent) into the warm tier, then keep it
    open for appends.  Returns [(loaded, skipped)]: malformed blocks --
    e.g. a tail torn by a crash mid-append -- are skipped (a skip is
    just a future miss), parsing resyncs at the next entry header.
    [Error] only on I/O failure. *)

val close_journal : t -> unit

val to_store : t -> Store.t
(** Flatten promoted entries into a floor-planner {!Store} snapshot.
    Entries whose method set cannot feed a {!Record} (narrower than the
    default set) are omitted, as are unpromoted journal entries. *)
