(* Token-level quoting for the line-oriented db formats.

   Store's original format put module names bare on a space-tokenized
   line ("record <name>"), so a name containing whitespace -- or one
   that collides with a directive keyword -- failed or mis-parsed on
   reload.  Writers now quote any name that is not a plain token;
   [tokens] splits a line into fields understanding both bare tokens
   and OCaml-style quoted strings, so old files (all-bare) and new
   files (quoted where needed) parse through the same path. *)

(* A bare token survives space-splitting and cannot be confused with a
   quoted string or a directive: non-empty, printable, no spaces, no
   quote or backslash lead. *)
let is_bare s =
  String.length s > 0
  && s.[0] <> '"'
  && String.for_all (fun c -> c > ' ' && c < '\x7f' && c <> '\\') s

let quote s = if is_bare s then s else Printf.sprintf "%S" s

(* Split a line into tokens; a token opening with '"' extends to its
   closing unescaped quote and is unescaped.  Errors on an unterminated
   quote or an escape %S cannot produce. *)
let tokens line =
  let n = String.length line in
  let buf = Buffer.create 16 in
  let rec skip i = if i < n && (line.[i] = ' ' || line.[i] = '\t') then skip (i + 1) else i in
  let rec bare i =
    if i < n && line.[i] <> ' ' && line.[i] <> '\t' then begin
      Buffer.add_char buf line.[i];
      bare (i + 1)
    end
    else i
  in
  let rec quoted i =
    if i >= n then Error "unterminated quoted token"
    else
      match line.[i] with
      | '"' -> Ok (i + 1)
      | '\\' when i + 1 < n ->
          Buffer.add_char buf '\\';
          Buffer.add_char buf line.[i + 1];
          quoted (i + 2)
      | c ->
          Buffer.add_char buf c;
          quoted (i + 1)
  in
  let rec go acc i =
    let i = skip i in
    if i >= n then Ok (List.rev acc)
    else begin
      Buffer.clear buf;
      if line.[i] = '"' then begin
        match quoted (i + 1) with
        | Error _ as e -> e
        | Ok j -> begin
            (* re-wrap and unescape through Scanf so the writer's %S and
               this reader agree on every escape form *)
            let raw = "\"" ^ Buffer.contents buf ^ "\"" in
            match Scanf.sscanf_opt raw "%S" (fun s -> s) with
            | Some s -> go (s :: acc) j
            | None -> Error ("bad escape in quoted token " ^ raw)
          end
      end
      else begin
        let j = bare i in
        go (Buffer.contents buf :: acc) j
      end
    end
  in
  go [] 0
