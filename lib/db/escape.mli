(** Token quoting shared by the {!Store} text format and the {!Cas}
    journal.

    The formats are line-oriented with space-separated fields; any field
    that is not a plain printable token (a module name with spaces, an
    empty technology, a name that is itself a directive keyword would
    still be fine -- position disambiguates) is written OCaml-quoted and
    read back through the same tokenizer. *)

val is_bare : string -> bool
(** True when the string can be written unquoted: non-empty, printable
    ASCII, no whitespace, not starting with a quote, no backslash. *)

val quote : string -> string
(** The string itself when {!is_bare}, otherwise its OCaml string
    literal ([%S]). *)

val tokens : string -> (string list, string) result
(** Split a line into fields, treating ["..."] groups as single quoted
    tokens (unescaped).  [Error] on an unterminated quote or malformed
    escape. *)
