type t = {
  module_name : string;
  technology : string;
  devices : int;
  nets : int;
  ports : int;
  sc_rows : int;
  sc_tracks : int;
  sc_feed_throughs : int;
  sc_width : float;
  sc_height : float;
  sc_area : float;
  sc_aspect : float;
  fc_exact_area : float;
  fc_exact_aspect : float;
  fc_average_area : float;
  fc_average_aspect : float;
  shapes : (float * float) list;
}

type of_report_error =
  | Missing_methods of { module_name : string }
  | Non_finite of { module_name : string; field : string; value : float }

let of_report_error_to_string = function
  | Missing_methods { module_name } ->
      module_name
      ^ ": the database row needs successful stdcell, fullcustom-exact and \
         fullcustom-average results (run with the default method set)"
  | Non_finite { module_name; field; value } ->
      Printf.sprintf
        "%s: estimate field %s is %h; a non-finite value must not reach the \
         floor-planner feed"
        module_name field value

(* A record is the floor planner's input row, and the floor planner
   needs the standard-cell shape function plus both full-custom
   variants; a report estimated with a narrower method set cannot
   produce one.  Every float field is checked finite here -- %.17g in
   the Store writer happily prints nan/inf, and a poisoned row would
   otherwise round-trip silently into every packing that reads it. *)
let of_report (r : Mae.Driver.module_report) =
  let module_name = r.circuit.Mae_netlist.Circuit.name in
  match
    ( Mae.Driver.stdcell r,
      Mae.Driver.fullcustom_exact r,
      Mae.Driver.fullcustom_average r )
  with
  | Some sc, Some fce, Some fca -> begin
      let sweep_shapes =
        List.map
          (fun (e : Mae.Estimate.stdcell) -> (e.width, e.height))
          (Mae.Driver.stdcell_sweep r)
      in
      let fc_shapes =
        [
          (fce.Mae.Estimate.width, fce.height);
          (fca.Mae.Estimate.width, fca.height);
        ]
      in
      let record =
        {
          module_name;
          technology = r.circuit.Mae_netlist.Circuit.technology;
          devices = Mae_netlist.Circuit.device_count r.circuit;
          nets = Mae_netlist.Circuit.net_count r.circuit;
          ports = Mae_netlist.Circuit.port_count r.circuit;
          sc_rows = sc.Mae.Estimate.rows;
          sc_tracks = sc.tracks;
          sc_feed_throughs = sc.feed_throughs;
          sc_width = sc.width;
          sc_height = sc.height;
          sc_area = sc.area;
          sc_aspect = Mae_geom.Aspect.ratio sc.aspect;
          fc_exact_area = fce.area;
          fc_exact_aspect = Mae_geom.Aspect.ratio fce.aspect;
          fc_average_area = fca.area;
          fc_average_aspect = Mae_geom.Aspect.ratio fca.aspect;
          shapes = sweep_shapes @ fc_shapes;
        }
      in
      let fields =
        [
          ("sc_width", record.sc_width);
          ("sc_height", record.sc_height);
          ("sc_area", record.sc_area);
          ("sc_aspect", record.sc_aspect);
          ("fc_exact_area", record.fc_exact_area);
          ("fc_exact_aspect", record.fc_exact_aspect);
          ("fc_average_area", record.fc_average_area);
          ("fc_average_aspect", record.fc_average_aspect);
        ]
        @ List.concat
            (List.mapi
               (fun i (w, h) ->
                 [
                   (Printf.sprintf "shapes[%d].width" i, w);
                   (Printf.sprintf "shapes[%d].height" i, h);
                 ])
               record.shapes)
      in
      match
        List.find_opt (fun (_, v) -> not (Float.is_finite v)) fields
      with
      | Some (field, value) ->
          Error (Non_finite { module_name; field; value })
      | None -> Ok record
    end
  | _ -> Error (Missing_methods { module_name })

(* Float fields compare with [Float.equal] (total order: nan equals
   nan, unlike [=.]), so a record always equals itself even if a
   non-finite value is forced in by hand -- the reflexivity the store's
   replace-on-add semantics rely on. *)
let equal a b =
  String.equal a.module_name b.module_name
  && String.equal a.technology b.technology
  && a.devices = b.devices && a.nets = b.nets && a.ports = b.ports
  && a.sc_rows = b.sc_rows && a.sc_tracks = b.sc_tracks
  && a.sc_feed_throughs = b.sc_feed_throughs
  && Float.equal a.sc_width b.sc_width
  && Float.equal a.sc_height b.sc_height
  && Float.equal a.sc_area b.sc_area
  && Float.equal a.sc_aspect b.sc_aspect
  && Float.equal a.fc_exact_area b.fc_exact_area
  && Float.equal a.fc_exact_aspect b.fc_exact_aspect
  && Float.equal a.fc_average_area b.fc_average_area
  && Float.equal a.fc_average_aspect b.fc_average_aspect
  && List.length a.shapes = List.length b.shapes
  && List.for_all2
       (fun (wa, ha) (wb, hb) -> Float.equal wa wb && Float.equal ha hb)
       a.shapes b.shapes

let pp ppf t =
  Format.fprintf ppf
    "%s (%s): N=%d H=%d P=%d; SC %.0fL^2 @ %.2f; FC %.0f/%.0f L^2"
    t.module_name t.technology t.devices t.nets t.ports t.sc_area t.sc_aspect
    t.fc_exact_area t.fc_average_area
