(** One module's entry in the estimator's output database.

    Figure 1: the estimates "are stored in a data base, which also
    contains the global module descriptions ... This data base is input
    to the floor planner."  A record is the flattened, tool-independent
    summary of a {!Mae.Driver.module_report}. *)

type t = {
  module_name : string;
  technology : string;
  devices : int;
  nets : int;
  ports : int;
  sc_rows : int;
  sc_tracks : int;
  sc_feed_throughs : int;
  sc_width : float;
  sc_height : float;
  sc_area : float;
  sc_aspect : float;
  fc_exact_area : float;
  fc_exact_aspect : float;
  fc_average_area : float;
  fc_average_aspect : float;
  shapes : (float * float) list;
      (** candidate module shapes for the floor planner (width, height) *)
}

val of_report : Mae.Driver.module_report -> (t, string) result
(** Shapes collect the standard-cell sweep plus the two full-custom
    variants.  [Error] when the report lacks a successful [stdcell],
    [fullcustom-exact] or [fullcustom-average] result (a narrower
    [--methods] set cannot feed the floor planner). *)

val equal : t -> t -> bool

val pp : Format.formatter -> t -> unit
