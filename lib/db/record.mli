(** One module's entry in the estimator's output database.

    Figure 1: the estimates "are stored in a data base, which also
    contains the global module descriptions ... This data base is input
    to the floor planner."  A record is the flattened, tool-independent
    summary of a {!Mae.Driver.module_report}. *)

type t = {
  module_name : string;
  technology : string;
  devices : int;
  nets : int;
  ports : int;
  sc_rows : int;
  sc_tracks : int;
  sc_feed_throughs : int;
  sc_width : float;
  sc_height : float;
  sc_area : float;
  sc_aspect : float;
  fc_exact_area : float;
  fc_exact_aspect : float;
  fc_average_area : float;
  fc_average_aspect : float;
  shapes : (float * float) list;
      (** candidate module shapes for the floor planner (width, height) *)
}

type of_report_error =
  | Missing_methods of { module_name : string }
      (** the report lacks a successful [stdcell], [fullcustom-exact] or
          [fullcustom-average] result (a narrower [--methods] set cannot
          feed the floor planner) *)
  | Non_finite of { module_name : string; field : string; value : float }
      (** an estimate field is nan or infinite; the text format would
          round-trip it silently into the floor-planner feed *)

val of_report_error_to_string : of_report_error -> string

val of_report : Mae.Driver.module_report -> (t, of_report_error) result
(** Shapes collect the standard-cell sweep plus the two full-custom
    variants.  Every float field is validated finite. *)

val equal : t -> t -> bool
(** Structural equality with NaN-safe float comparison ([Float.equal]'s
    total order), so [equal r r] holds for every record. *)

val pp : Format.formatter -> t -> unit
