type t = (string, Record.t) Hashtbl.t

let create () = Hashtbl.create 16

let add t (r : Record.t) = Hashtbl.replace t r.module_name r

let find t name = Hashtbl.find_opt t name

let names t =
  Hashtbl.fold (fun n _ acc -> n :: acc) t [] |> List.sort String.compare

let records t =
  Hashtbl.fold (fun _ r acc -> r :: acc) t []
  |> List.sort (fun (a : Record.t) (b : Record.t) ->
         String.compare a.module_name b.module_name)

let to_string t =
  let buf = Buffer.create 1024 in
  let addf fmt = Printf.ksprintf (Buffer.add_string buf) fmt in
  List.iter
    (fun (r : Record.t) ->
      (* names that are not plain tokens (spaces, control characters,
         quotes) are OCaml-quoted; the parser reads both forms, so files
         written before quoting existed still load *)
      addf "record %s\n" (Escape.quote r.module_name);
      addf "technology %s\n" (Escape.quote r.technology);
      addf "counts %d %d %d\n" r.devices r.nets r.ports;
      addf "stdcell %d %d %d %.17g %.17g %.17g %.17g\n" r.sc_rows r.sc_tracks
        r.sc_feed_throughs r.sc_width r.sc_height r.sc_area r.sc_aspect;
      addf "fullcustom %.17g %.17g %.17g %.17g\n" r.fc_exact_area r.fc_exact_aspect
        r.fc_average_area r.fc_average_aspect;
      List.iter (fun (w, h) -> addf "shape %.17g %.17g\n" w h) r.shapes;
      addf "end\n")
    (records t);
  Buffer.contents buf

(* A stored estimate is the floor planner's input; a non-finite area or
   aspect would poison every packing that reads it, so the parser
   rejects nan/infinity where the old float_of_string let them
   round-trip silently. *)
let finite_of_string s =
  match float_of_string_opt s with
  | Some f when Float.is_finite f -> Some f
  | Some _ | None -> None

let of_string text =
  let t = create () in
  let lines = String.split_on_char '\n' text in
  let error lineno msg = Error (Printf.sprintf "line %d: %s" lineno msg) in
  let partial = ref None in
  let rec go lineno = function
    | [] -> begin
        match !partial with
        | Some _ -> Error "unterminated record"
        | None -> Ok t
      end
    | line :: rest -> begin
        match Escape.tokens (String.trim line) with
        | Error e -> error lineno e
        | Ok toks ->
        match (toks, !partial) with
        | [], _ -> go (lineno + 1) rest
        | [ "record"; name ], None ->
            partial :=
              Some
                {
                  Record.module_name = name;
                  technology = "";
                  devices = 0;
                  nets = 0;
                  ports = 0;
                  sc_rows = 0;
                  sc_tracks = 0;
                  sc_feed_throughs = 0;
                  sc_width = 0.;
                  sc_height = 0.;
                  sc_area = 0.;
                  sc_aspect = 1.;
                  fc_exact_area = 0.;
                  fc_exact_aspect = 1.;
                  fc_average_area = 0.;
                  fc_average_aspect = 1.;
                  shapes = [];
                };
            go (lineno + 1) rest
        | [ "record"; _ ], Some _ -> error lineno "nested record"
        | _ :: _, None -> error lineno "directive outside record"
        | [ "end" ], Some r ->
            add t { r with shapes = List.rev r.shapes };
            partial := None;
            go (lineno + 1) rest
        | [ "technology"; tech ], Some r ->
            partial := Some { r with technology = tech };
            go (lineno + 1) rest
        | [ "counts"; d; n; p ], Some r -> begin
            match
              (int_of_string_opt d, int_of_string_opt n, int_of_string_opt p)
            with
            | Some devices, Some nets, Some ports ->
                partial := Some { r with devices; nets; ports };
                go (lineno + 1) rest
            | _, _, _ -> error lineno "malformed counts"
          end
        | [ "stdcell"; rows; tracks; feeds; w; h; a; asp ], Some r -> begin
            match
              ( int_of_string_opt rows,
                int_of_string_opt tracks,
                int_of_string_opt feeds,
                finite_of_string w,
                finite_of_string h,
                finite_of_string a,
                finite_of_string asp )
            with
            | ( Some sc_rows,
                Some sc_tracks,
                Some sc_feed_throughs,
                Some sc_width,
                Some sc_height,
                Some sc_area,
                Some sc_aspect ) ->
                partial :=
                  Some
                    {
                      r with
                      sc_rows;
                      sc_tracks;
                      sc_feed_throughs;
                      sc_width;
                      sc_height;
                      sc_area;
                      sc_aspect;
                    };
                go (lineno + 1) rest
            | _, _, _, _, _, _, _ -> error lineno "malformed or non-finite stdcell"
          end
        | [ "fullcustom"; ea; easp; aa; aasp ], Some r -> begin
            match
              ( finite_of_string ea,
                finite_of_string easp,
                finite_of_string aa,
                finite_of_string aasp )
            with
            | Some fc_exact_area, Some fc_exact_aspect, Some fc_average_area,
              Some fc_average_aspect ->
                partial :=
                  Some
                    {
                      r with
                      fc_exact_area;
                      fc_exact_aspect;
                      fc_average_area;
                      fc_average_aspect;
                    };
                go (lineno + 1) rest
            | _, _, _, _ -> error lineno "malformed or non-finite fullcustom"
          end
        | [ "shape"; w; h ], Some r -> begin
            match (finite_of_string w, finite_of_string h) with
            | Some w, Some h ->
                partial := Some { r with shapes = (w, h) :: r.shapes };
                go (lineno + 1) rest
            | _, _ -> error lineno "malformed or non-finite shape"
          end
        | _ :: _, Some _ -> error lineno ("unrecognized line: " ^ String.trim line)
      end
  in
  go 1 lines

let save t ~path =
  match Out_channel.with_open_text path (fun oc ->
      Out_channel.output_string oc (to_string t)) with
  | () -> Ok ()
  | exception Sys_error msg -> Error msg

let load ~path =
  match In_channel.with_open_text path In_channel.input_all with
  | text -> of_string text
  | exception Sys_error msg -> Error msg
