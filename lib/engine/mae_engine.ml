(* Baseline methodologies register at Mae_baselines.Methods init; this
   reference forces the linker to keep (and initialize) that unit, so
   every engine consumer can select them by name. *)
let () = Mae_baselines.Methods.ensure_registered ()

type error =
  | Driver_error of Mae.Driver.error
  | Crashed of { module_name : string; exn : string }

let pp_error ppf = function
  | Driver_error e -> Mae.Driver.pp_error ppf e
  | Crashed { module_name; exn } ->
      Format.fprintf ppf "module %s: estimator crashed: %s" module_name exn

type stats = {
  modules : int;
  ok : int;
  failed : int;
  jobs : int;
  elapsed_s : float;
  cache_hits : int;
  cache_misses : int;
  per_domain : int array;
}

(* --- registry instruments (always live; spans and latency sampling
   additionally honour Mae_obs.Control.enabled) --- *)

let modules_counter =
  Mae_obs.Metrics.counter "mae_engine_modules_total"
    ~help:"Modules submitted to the batch engine"

let ok_counter =
  Mae_obs.Metrics.counter "mae_engine_modules_ok_total"
    ~help:"Modules estimated successfully"

let failed_counter =
  Mae_obs.Metrics.counter "mae_engine_modules_failed_total"
    ~help:"Modules that returned a driver error or crashed"

let queue_wait_gauge =
  Mae_obs.Metrics.gauge "mae_engine_queue_wait_seconds"
    ~help:
      "Longest delay between batch start and a worker claiming its first \
       module, over the most recent batch (domain spawn + scheduling cost)"

let module_latency =
  Mae_obs.Metrics.histogram "mae_engine_module_seconds"
    ~help:"Per-module estimation latency (recorded while telemetry is on)"

let oversubscribed_gauge =
  Mae_obs.Metrics.gauge "mae_engine_jobs_oversubscribed"
    ~help:
      "Domains requested beyond Domain.recommended_domain_count in the most \
       recent batch (0 = batch fit the hardware)"

let pp_stats ppf s =
  let lookups = s.cache_hits + s.cache_misses in
  Format.fprintf ppf
    "%d module(s) (%d ok, %d failed) on %d domain(s) in %.3f s (%.0f \
     modules/s); kernel cache %d hits / %d misses (%.1f%% hit rate); \
     modules/domain [%s]"
    s.modules s.ok s.failed s.jobs s.elapsed_s
    (if s.elapsed_s > 0. then Float.of_int s.modules /. s.elapsed_s else 0.)
    s.cache_hits s.cache_misses
    (if lookups > 0 then 100. *. Float.of_int s.cache_hits /. Float.of_int lookups
     else 0.)
    (String.concat " " (List.map string_of_int (Array.to_list s.per_domain)))

let default_jobs () = Stdlib.max 1 (Domain.recommended_domain_count ())

let resolve_jobs = function
  | None -> 1
  | Some 0 -> default_jobs ()
  | Some j when j >= 1 -> j
  | Some j -> invalid_arg (Printf.sprintf "Mae_engine: jobs = %d" j) (* invariant *)

(* Spawning more domains than the hardware offers pessimizes hard --
   BENCH_engine.json records jobs:8 at 0.18x of sequential on a 1-core
   host -- so an oversubscribed batch is announced loudly (stderr once
   per process, a warn log record every batch) and exposed as the
   [mae_engine_jobs_oversubscribed] gauge.  The request is still
   honoured: benches measure oversubscription on purpose, and the
   determinism contract (same results for any [jobs]) must stay
   testable above the core count. *)
let oversubscription_announced = Atomic.make false

let check_oversubscription jobs =
  let recommended = default_jobs () in
  let over = Stdlib.max 0 (jobs - recommended) in
  Mae_obs.Metrics.set oversubscribed_gauge (Float.of_int over);
  if over > 0 then begin
    Mae_obs.Log.warn ~event:"engine.jobs_oversubscribed"
      [
        ("requested", Mae_obs.Log.Int jobs);
        ("recommended", Mae_obs.Log.Int recommended);
      ];
    if not (Atomic.exchange oversubscription_announced true) then
      Printf.eprintf
        "mae_engine: warning: --jobs %d exceeds the %d domain(s) this host \
         recommends; expect a slowdown, not a speedup (gauge \
         mae_engine_jobs_oversubscribed)\n%!"
        jobs recommended
  end

(* Work-stealing-free static pool: domains race on an atomic index over
   the input array and each writes its own result slot, so slots are
   written exactly once and [Domain.join] publishes them to the caller.
   Input order is preserved by construction regardless of which domain
   estimated which module.

   Besides the results the pool reports, per worker: how many modules
   the worker estimated (each worker owns its slot of [claimed]) and
   how long the worker waited between batch start and its first claim
   (the queue-wait measure behind [mae_engine_queue_wait_seconds]). *)
let map_pool ~jobs ~t0 f inputs =
  let n = Array.length inputs in
  let results = Array.make n None in
  let workers = Stdlib.max 1 (Stdlib.min jobs n) in
  let claimed = Array.make workers 0 in
  let first_wait = Array.make workers Float.nan in
  let run_slot w i =
    results.(i) <- Some (f inputs.(i));
    claimed.(w) <- claimed.(w) + 1
  in
  if workers <= 1 then begin
    if n > 0 then first_wait.(0) <- Unix.gettimeofday () -. t0;
    for i = 0 to n - 1 do
      run_slot 0 i
    done
  end
  else begin
    let next = Atomic.make 0 in
    let worker w =
      (* one root span per worker: its lane in the Chrome trace *)
      Mae_obs.Span.with_ ~name:"engine.worker"
        ~attrs:[ ("worker", string_of_int w) ]
      @@ fun () ->
      let rec loop ~first =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          if first then first_wait.(w) <- Unix.gettimeofday () -. t0;
          run_slot w i;
          loop ~first:false
        end
      in
      loop ~first:true
    in
    (* the calling domain is worker number 0; spawned domains are 1.. *)
    let spawned =
      List.init (workers - 1) (fun k -> Domain.spawn (fun () -> worker (k + 1)))
    in
    worker 0;
    List.iter Domain.join spawned
  end;
  let results =
    Array.map
      (function
        | Some r -> r
        | None -> assert false (* every index below [n] was claimed *))
      results
  in
  let max_wait =
    Array.fold_left
      (fun acc w -> if Float.is_nan w then acc else Float.max acc w)
      0. first_wait
  in
  (results, claimed, max_wait)

let estimate_one ?config ?methods ~registry (circuit : Mae_netlist.Circuit.t) =
  Mae_obs.Metrics.time module_latency @@ fun () ->
  match Mae.Driver.run_circuit ?config ?methods ~registry circuit with
  | Ok report -> Ok report
  | Error e -> Error (Driver_error e)
  | exception exn ->
      Error
        (Crashed { module_name = circuit.name; exn = Printexc.to_string exn })

let run_circuits_with_stats ?config ?methods ?jobs ~registry circuits =
  let jobs = resolve_jobs jobs in
  check_oversubscription jobs;
  let inputs = Array.of_list circuits in
  Mae_obs.Span.with_ ~name:"engine.batch"
    ~attrs:
      [
        ("modules", string_of_int (Array.length inputs));
        ("jobs", string_of_int jobs);
      ]
  @@ fun () ->
  let cache_before = Mae_prob.Kernel_cache.stats () in
  let t0 = Unix.gettimeofday () in
  let results, per_domain, queue_wait =
    map_pool ~jobs ~t0 (estimate_one ?config ?methods ~registry) inputs
  in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let cache_after = Mae_prob.Kernel_cache.stats () in
  let ok =
    Array.fold_left
      (fun acc -> function Ok _ -> acc + 1 | Error _ -> acc)
      0 results
  in
  let modules = Array.length inputs in
  Mae_obs.Metrics.add modules_counter modules;
  Mae_obs.Metrics.add ok_counter ok;
  Mae_obs.Metrics.add failed_counter (modules - ok);
  Mae_obs.Metrics.set queue_wait_gauge queue_wait;
  let stats =
    {
      modules;
      ok;
      failed = modules - ok;
      jobs;
      elapsed_s;
      cache_hits = cache_after.hits - cache_before.hits;
      cache_misses = cache_after.misses - cache_before.misses;
      per_domain;
    }
  in
  if Mae_obs.Log.enabled Mae_obs.Log.Debug then
    Mae_obs.Log.debug ~event:"engine.batch"
      [
        ("modules", Mae_obs.Log.Int modules);
        ("ok", Mae_obs.Log.Int ok);
        ("failed", Mae_obs.Log.Int (modules - ok));
        ("jobs", Mae_obs.Log.Int jobs);
        ("elapsed_s", Mae_obs.Log.Float elapsed_s);
        ("cache_hits", Mae_obs.Log.Int stats.cache_hits);
        ("cache_misses", Mae_obs.Log.Int stats.cache_misses);
      ];
  (Array.to_list results, stats)

let run_circuits ?config ?methods ?jobs ~registry circuits =
  fst (run_circuits_with_stats ?config ?methods ?jobs ~registry circuits)

let run_design ?config ?methods ?jobs ~registry design =
  match Mae.Driver.design_circuits design with
  | Error e -> Error e
  | Ok circuits -> Ok (run_circuits ?config ?methods ?jobs ~registry circuits)

let run_string ?config ?methods ?jobs ~registry text =
  match Mae.Driver.string_circuits text with
  | Error e -> Error e
  | Ok circuits -> Ok (run_circuits ?config ?methods ?jobs ~registry circuits)

let run_file ?config ?methods ?jobs ~registry path =
  match Mae.Driver.file_circuits path with
  | Error e -> Error e
  | Ok circuits -> Ok (run_circuits ?config ?methods ?jobs ~registry circuits)
