type error =
  | Driver_error of Mae.Driver.error
  | Crashed of { module_name : string; exn : string }

let pp_error ppf = function
  | Driver_error e -> Mae.Driver.pp_error ppf e
  | Crashed { module_name; exn } ->
      Format.fprintf ppf "module %s: estimator crashed: %s" module_name exn

type stats = {
  modules : int;
  ok : int;
  failed : int;
  jobs : int;
  elapsed_s : float;
  cache_hits : int;
  cache_misses : int;
}

let pp_stats ppf s =
  Format.fprintf ppf
    "%d module(s) (%d ok, %d failed) on %d domain(s) in %.3f s (%.0f \
     modules/s); kernel cache %d hits / %d misses"
    s.modules s.ok s.failed s.jobs s.elapsed_s
    (if s.elapsed_s > 0. then Float.of_int s.modules /. s.elapsed_s else 0.)
    s.cache_hits s.cache_misses

let default_jobs () = Stdlib.max 1 (Domain.recommended_domain_count ())

let resolve_jobs = function
  | None -> 1
  | Some 0 -> default_jobs ()
  | Some j when j >= 1 -> j
  | Some j -> invalid_arg (Printf.sprintf "Mae_engine: jobs = %d" j)

(* Work-stealing-free static pool: domains race on an atomic index over
   the input array and each writes its own result slot, so slots are
   written exactly once and [Domain.join] publishes them to the caller.
   Input order is preserved by construction regardless of which domain
   estimated which module. *)
let map_pool ~jobs f inputs =
  let n = Array.length inputs in
  let results = Array.make n None in
  let run_slot i = results.(i) <- Some (f inputs.(i)) in
  let workers = Stdlib.min jobs n in
  if workers <= 1 then
    for i = 0 to n - 1 do
      run_slot i
    done
  else begin
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          run_slot i;
          loop ()
        end
      in
      loop ()
    in
    (* the calling domain is worker number [workers]. *)
    let spawned = List.init (workers - 1) (fun _ -> Domain.spawn worker) in
    worker ();
    List.iter Domain.join spawned
  end;
  Array.map
    (function
      | Some r -> r
      | None -> assert false (* every index below [n] was claimed *))
    results

let estimate_one ?config ~registry (circuit : Mae_netlist.Circuit.t) =
  match Mae.Driver.run_circuit ?config ~registry circuit with
  | Ok report -> Ok report
  | Error e -> Error (Driver_error e)
  | exception exn ->
      Error
        (Crashed { module_name = circuit.name; exn = Printexc.to_string exn })

let run_circuits_with_stats ?config ?jobs ~registry circuits =
  let jobs = resolve_jobs jobs in
  let inputs = Array.of_list circuits in
  let cache_before = Mae_prob.Kernel_cache.stats () in
  let t0 = Unix.gettimeofday () in
  let results = map_pool ~jobs (estimate_one ?config ~registry) inputs in
  let elapsed_s = Unix.gettimeofday () -. t0 in
  let cache_after = Mae_prob.Kernel_cache.stats () in
  let ok =
    Array.fold_left
      (fun acc -> function Ok _ -> acc + 1 | Error _ -> acc)
      0 results
  in
  let stats =
    {
      modules = Array.length inputs;
      ok;
      failed = Array.length inputs - ok;
      jobs;
      elapsed_s;
      cache_hits = cache_after.hits - cache_before.hits;
      cache_misses = cache_after.misses - cache_before.misses;
    }
  in
  (Array.to_list results, stats)

let run_circuits ?config ?jobs ~registry circuits =
  fst (run_circuits_with_stats ?config ?jobs ~registry circuits)

let run_design ?config ?jobs ~registry design =
  match Mae.Driver.design_circuits design with
  | Error e -> Error e
  | Ok circuits -> Ok (run_circuits ?config ?jobs ~registry circuits)

let run_string ?config ?jobs ~registry text =
  match Mae.Driver.string_circuits text with
  | Error e -> Error e
  | Ok circuits -> Ok (run_circuits ?config ?jobs ~registry circuits)

let run_file ?config ?jobs ~registry path =
  match Mae.Driver.file_circuits path with
  | Error e -> Error e
  | Ok circuits -> Ok (run_circuits ?config ?jobs ~registry circuits)
