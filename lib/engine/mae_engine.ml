(* Baseline methodologies register at Mae_baselines.Methods init; this
   reference forces the linker to keep (and initialize) that unit, so
   every engine consumer can select them by name. *)
let () = Mae_baselines.Methods.ensure_registered ()

type error =
  | Driver_error of Mae.Driver.error
  | Crashed of { module_name : string; exn : string }
  | Invalid_edit of { module_name : string; reason : string }

let pp_error ppf = function
  | Driver_error e -> Mae.Driver.pp_error ppf e
  | Crashed { module_name; exn } ->
      Format.fprintf ppf "module %s: estimator crashed: %s" module_name exn
  | Invalid_edit { module_name; reason } ->
      Format.fprintf ppf "module %s: invalid edit: %s" module_name reason

type stats = {
  modules : int;
  ok : int;
  failed : int;
  jobs : int;
  elapsed_s : float;
  cache_hits : int;
  cache_misses : int;
  store_hits : int;
  store_misses : int;
  per_domain : int array;
}

(* --- registry instruments (always live; spans and latency sampling
   additionally honour Mae_obs.Control.enabled) --- *)

let modules_counter =
  Mae_obs.Metrics.counter "mae_engine_modules_total"
    ~help:"Modules submitted to the batch engine"

let ok_counter =
  Mae_obs.Metrics.counter "mae_engine_modules_ok_total"
    ~help:"Modules estimated successfully"

let failed_counter =
  Mae_obs.Metrics.counter "mae_engine_modules_failed_total"
    ~help:"Modules that returned a driver error or crashed"

let queue_wait_gauge =
  Mae_obs.Metrics.gauge "mae_engine_queue_wait_seconds"
    ~help:
      "Longest delay between batch start and a worker claiming its first \
       module, over the most recent batch (domain spawn + scheduling cost)"

let module_latency =
  Mae_obs.Metrics.histogram "mae_engine_module_seconds"
    ~help:"Per-module estimation latency (recorded while telemetry is on)"

(* True quantiles next to the bucketed histogram: same samples, no
   bucket-edge quantization.  Observed only while telemetry is on,
   like the histogram. *)
let module_latency_sketch =
  Mae_obs.Sketch.create "mae_engine_module_seconds_summary"
    ~help:"Per-module estimation latency quantiles (GK sketch)"

let queue_wait_sketch =
  Mae_obs.Sketch.create "mae_engine_queue_wait_seconds_summary"
    ~help:
      "Per-worker delay between batch start and first module claim \
       (GK sketch; one sample per worker per batch)"

let oversubscribed_gauge =
  Mae_obs.Metrics.gauge "mae_engine_jobs_oversubscribed"
    ~help:
      "Domains requested beyond Domain.recommended_domain_count in the most \
       recent batch (0 = batch fit the hardware)"

let pp_stats ppf s =
  let lookups = s.cache_hits + s.cache_misses in
  Format.fprintf ppf
    "%d module(s) (%d ok, %d failed) on %d domain(s) in %.3f s (%.0f \
     modules/s); kernel cache %d hits / %d misses (%.1f%% hit rate); \
     modules/domain [%s]"
    s.modules s.ok s.failed s.jobs s.elapsed_s
    (if s.elapsed_s > 0. then Float.of_int s.modules /. s.elapsed_s else 0.)
    s.cache_hits s.cache_misses
    (if lookups > 0 then 100. *. Float.of_int s.cache_hits /. Float.of_int lookups
     else 0.)
    (String.concat " " (List.map string_of_int (Array.to_list s.per_domain)));
  if s.store_hits + s.store_misses > 0 then
    Format.fprintf ppf "; estimate store %d hits / %d misses" s.store_hits
      s.store_misses

let default_jobs () = Stdlib.max 1 (Domain.recommended_domain_count ())

let resolve_jobs = function
  | None -> 1
  | Some 0 -> default_jobs ()
  | Some j when j >= 1 -> j
  | Some j -> invalid_arg (Printf.sprintf "Mae_engine: jobs = %d" j) (* invariant *)

(* Spawning more domains than the hardware offers pessimizes hard --
   BENCH_engine.json records jobs:8 at 0.18x of sequential on a 1-core
   host -- so an oversubscribed batch is announced loudly (stderr once
   per process, a warn log record every batch) and exposed as the
   [mae_engine_jobs_oversubscribed] gauge.  The request is still
   honoured: benches measure oversubscription on purpose, and the
   determinism contract (same results for any [jobs]) must stay
   testable above the core count. *)
let oversubscription_announced = Atomic.make false

let check_oversubscription jobs =
  let recommended = default_jobs () in
  let over = Stdlib.max 0 (jobs - recommended) in
  Mae_obs.Metrics.set oversubscribed_gauge (Float.of_int over);
  if over > 0 then begin
    Mae_obs.Log.warn ~event:"engine.jobs_oversubscribed"
      [
        ("requested", Mae_obs.Log.Int jobs);
        ("recommended", Mae_obs.Log.Int recommended);
      ];
    if not (Atomic.exchange oversubscription_announced true) then
      Printf.eprintf
        "mae_engine: warning: --jobs %d exceeds the %d domain(s) this host \
         recommends; expect a slowdown, not a speedup (gauge \
         mae_engine_jobs_oversubscribed)\n%!"
        jobs recommended
  end

(* --- the persistent domain pool --- *)

(* Spawning a domain costs hundreds of microseconds -- more than a
   whole cached module -- so per-batch spawns make small parallel
   batches (the serve daemon's request sizes) a guaranteed loss.  The
   pool keeps its domains parked on a condition variable between
   batches; submitting a job is one lock round-trip and a broadcast.

   Generation-counter barrier: [run] publishes the job under the lock
   and bumps [gen]; each pool domain wakes, runs the job with its fixed
   slot number, then decrements [active] and signals [done_cv].  [run]
   participates as slot 0 on the calling domain and returns only after
   [active] drops to zero, so job memory (result slots, atomics) is
   fully synchronized before the caller reads it and jobs never
   overlap. *)
module Pool = struct
  type t = {
    lock : Mutex.t;
    work_cv : Condition.t;
    done_cv : Condition.t;
    mutable job : (int -> unit) option;
    mutable gen : int;
    mutable active : int;
    mutable exn : exn option; (* first exception a pool domain caught *)
    mutable stop : bool;
    mutable domains : unit Domain.t array;
  }

  let worker_loop p slot =
    let my_gen = ref 0 in
    let rec loop () =
      Mutex.lock p.lock;
      while (not p.stop) && p.gen = !my_gen do
        Condition.wait p.work_cv p.lock
      done;
      if p.stop then Mutex.unlock p.lock
      else begin
        let job = Option.get p.job in
        my_gen := p.gen;
        Mutex.unlock p.lock;
        let failure = match job slot with () -> None | exception e -> Some e in
        Mutex.lock p.lock;
        (match failure with
        | Some e when p.exn = None -> p.exn <- Some e
        | _ -> ());
        p.active <- p.active - 1;
        if p.active = 0 then Condition.broadcast p.done_cv;
        Mutex.unlock p.lock;
        loop ()
      end
    in
    loop ()

  let create ~domains =
    if domains < 0 then invalid_arg "Mae_engine.Pool.create: domains < 0" (* invariant *);
    let p =
      {
        lock = Mutex.create ();
        work_cv = Condition.create ();
        done_cv = Condition.create ();
        job = None;
        gen = 0;
        active = 0;
        exn = None;
        stop = false;
        domains = [||];
      }
    in
    p.domains <-
      Array.init domains (fun k ->
          Domain.spawn (fun () -> worker_loop p (k + 1)));
    p

  let concurrency p = Array.length p.domains + 1

  let run p f =
    Mutex.lock p.lock;
    if p.stop then begin
      Mutex.unlock p.lock;
      invalid_arg "Mae_engine.Pool.run: pool is shut down" (* invariant *)
    end;
    if p.job <> None then begin
      Mutex.unlock p.lock;
      invalid_arg "Mae_engine.Pool.run: a job is already running" (* invariant *)
    end;
    p.job <- Some f;
    p.gen <- p.gen + 1;
    p.active <- Array.length p.domains;
    p.exn <- None;
    Condition.broadcast p.work_cv;
    Mutex.unlock p.lock;
    let caller_failure = match f 0 with () -> None | exception e -> Some e in
    Mutex.lock p.lock;
    while p.active > 0 do
      Condition.wait p.done_cv p.lock
    done;
    p.job <- None;
    let pool_failure = p.exn in
    p.exn <- None;
    Mutex.unlock p.lock;
    match (caller_failure, pool_failure) with
    | Some e, _ | None, Some e -> raise e
    | None, None -> ()

  let shutdown p =
    Mutex.lock p.lock;
    if p.stop then Mutex.unlock p.lock
    else begin
      p.stop <- true;
      Condition.broadcast p.work_cv;
      Mutex.unlock p.lock;
      Array.iter Domain.join p.domains;
      p.domains <- [||]
    end
end

(* --- chunked claiming with steal-on-empty ---

   The input array is block-partitioned: worker [w] owns the range
   [[w*n/workers, (w+1)*n/workers)] and drains it in chunks of
   [max 1 (n / (8 * workers))] claimed with one [fetch_and_add] per
   chunk, so the per-module scheduling cost is amortized 8x and
   neighbouring modules stay on one domain (warm minor heap).  A worker
   whose range runs dry steals chunks from the other ranges with the
   same claim primitive, rescanning until a full sweep finds every
   range empty -- work only ever shrinks, so one clean sweep proves
   completion.  Result slot [i] always receives [f inputs.(i)]
   regardless of who claimed it: output order and content are
   independent of the schedule, which is why determinism survives
   stealing. *)

type range = { pos : int Atomic.t; hi : int }

let make_ranges ~workers n =
  Array.init workers (fun w ->
      { pos = Atomic.make (w * n / workers); hi = (w + 1) * n / workers })

(* claim up to [chunk] indices from [r]; None when the range is dry *)
let claim r chunk =
  let i = Atomic.fetch_and_add r.pos chunk in
  if i >= r.hi then None else Some (i, Stdlib.min r.hi (i + chunk))

let run_range results claimed f inputs w lo hi =
  for i = lo to hi - 1 do
    results.(i) <- Some (f inputs.(i))
  done;
  claimed.(w) <- claimed.(w) + (hi - lo)

(* Per worker: drain the own range, then sweep the others stealing
   chunks until a full sweep comes back empty. *)
let drain ~ranges ~chunk ~workers results claimed f inputs w =
  let rec own () =
    match claim ranges.(w) chunk with
    | Some (lo, hi) ->
        run_range results claimed f inputs w lo hi;
        own ()
    | None -> ()
  in
  own ();
  let rec sweep () =
    let stole = ref false in
    for v = 1 to workers - 1 do
      let victim = (w + v) mod workers in
      match claim ranges.(victim) chunk with
      | Some (lo, hi) ->
          stole := true;
          run_range results claimed f inputs w lo hi
      | None -> ()
    done;
    if !stole then sweep ()
  in
  sweep ()

let map_pool ~jobs ?pool ~t0 f inputs =
  let n = Array.length inputs in
  let results = Array.make n None in
  let workers = Stdlib.max 1 (Stdlib.min jobs n) in
  let workers =
    match pool with
    | Some p -> Stdlib.min workers (Pool.concurrency p)
    | None -> workers
  in
  let claimed = Array.make workers 0 in
  let first_wait = Array.make workers Float.nan in
  let cache_delta = Array.make workers 0 in
  let miss_delta = Array.make workers 0 in
  let ranges = make_ranges ~workers n in
  let chunk = Stdlib.max 1 (n / (8 * workers)) in
  let worker w =
    let c0 = Mae_prob.Kernel_cache.local_counts () in
    let body () =
      (* per worker, not per module: the queue-wait gauge stays live
         even with telemetry off, like every other gauge *)
      let wait = Mae_obs.Clock.monotonic () -. t0 in
      first_wait.(w) <- wait;
      if Mae_obs.Control.enabled () then
        Mae_obs.Sketch.observe queue_wait_sketch wait;
      drain ~ranges ~chunk ~workers results claimed f inputs w
    in
    (if Mae_obs.Control.enabled () then
       (* one root span per worker: its lane in the Chrome trace.  The
          domain id lets the trace viewer correlate this lane with the
          gc.* pause slices the runtime lens emits per domain. *)
       Mae_obs.Span.with_ ~name:"engine.worker"
         ~attrs:
           [
             ("worker", string_of_int w);
             ("domain", string_of_int (Domain.self () :> int));
           ]
         body
     else body ());
    let c1 = Mae_prob.Kernel_cache.local_counts () in
    cache_delta.(w) <- c1.Mae_prob.Kernel_cache.hits - c0.Mae_prob.Kernel_cache.hits;
    miss_delta.(w) <- c1.Mae_prob.Kernel_cache.misses - c0.Mae_prob.Kernel_cache.misses;
    (* keep the process-wide counters and published sketch summaries
       exact between batches, even on long-lived pool domains that may
       never observe again *)
    Mae_prob.Kernel_cache.flush_local ();
    Mae_obs.Sketch.flush_local ()
  in
  (match (pool, workers) with
  | _, 1 -> worker 0
  | Some p, _ ->
      (* pool domains beyond the requested worker count run an empty
         slot: they wake, find no range, and report done *)
      Pool.run p (fun slot -> if slot < workers then worker slot)
  | None, _ ->
      (* the calling domain is worker number 0; spawned domains are 1.. *)
      let spawned =
        List.init (workers - 1) (fun k ->
            Domain.spawn (fun () -> worker (k + 1)))
      in
      worker 0;
      List.iter Domain.join spawned);
  let results =
    Array.map
      (function
        | Some r -> r
        | None -> assert false (* every index below [n] was claimed *))
      results
  in
  let max_wait =
    Array.fold_left
      (fun acc w -> if Float.is_nan w then acc else Float.max acc w)
      0. first_wait
  in
  let batch_hits = Array.fold_left ( + ) 0 cache_delta in
  let batch_misses = Array.fold_left ( + ) 0 miss_delta in
  (results, claimed, max_wait, batch_hits, batch_misses)

(* Like {!estimate_one} but also says how the estimate store answered
   for this module: [`Hit]/[`Miss] when the store was consulted,
   [`Bypass] when the lookup never happened (no cache, a [config]
   override, or an unknown process/method that the driver will report).
   The flag gives grouped batches exact per-request store accounting
   where the process-counter delta of {!run_circuits_with_stats} would
   lump every request in the batch together. *)
let estimate_one_flagged ?config ?methods ?cache ~registry
    (circuit : Mae_netlist.Circuit.t) =
  let run_uncached () =
    match Mae.Driver.run_circuit ?config ?methods ~registry circuit with
    | Ok report -> Ok report
    | Error e -> Error (Driver_error e)
    | exception exn ->
        Error
          (Crashed { module_name = circuit.name; exn = Printexc.to_string exn })
  in
  let run () =
    match (cache, config) with
    (* a [config] changes results but is not part of the content
       address (the store keys circuit + process + registry + methods),
       so configured runs bypass the store entirely *)
    | None, _ | Some _, Some _ -> (run_uncached (), `Bypass)
    | Some cas, None -> (
        match Mae_tech.Registry.find registry circuit.technology with
        | None ->
            (run_uncached (), `Bypass)
            (* the driver will report Unknown_process *)
        | Some process -> (
            match
              Mae.Methodology.resolve (Option.value methods ~default:[ "default" ])
            with
            | Error _ -> (run_uncached (), `Bypass) (* ... or Unknown_method *)
            | Ok selected -> (
                let names = List.map Mae.Methodology.name selected in
                let key = Mae_db.Cas.key ~methods:names ~process circuit in
                match Mae_db.Cas.find cas ~key ~circuit ~process with
                | Some report -> (Ok report, `Hit)
                | None -> (
                    let r = run_uncached () in
                    (match r with
                    | Ok report -> Mae_db.Cas.store cas ~key report
                    | Error _ -> ());
                    (r, `Miss)))))
  in
  (* latency sampling honours telemetry like spans do; with it off the
     per-module cost is one atomic read, no closures into [time], no
     clock reads, no sketch buffer stores.  [run] never raises (crashes
     are folded into [Error (Crashed _)]), so plain sequencing is safe. *)
  if Mae_obs.Control.enabled () then begin
    let t0 = Mae_obs.Clock.monotonic () in
    let r = run () in
    let d = Mae_obs.Clock.monotonic () -. t0 in
    Mae_obs.Metrics.observe module_latency d;
    Mae_obs.Sketch.observe module_latency_sketch d;
    r
  end
  else run ()

let estimate_one ?config ?methods ?cache ~registry circuit =
  fst (estimate_one_flagged ?config ?methods ?cache ~registry circuit)

let run_circuits_with_stats ?config ?methods ?jobs ?pool ?cache ~registry
    circuits =
  let jobs = resolve_jobs jobs in
  check_oversubscription jobs;
  let inputs = Array.of_list circuits in
  Mae_obs.Span.with_ ~name:"engine.batch"
    ~attrs:
      [
        ("modules", string_of_int (Array.length inputs));
        ("jobs", string_of_int jobs);
      ]
  @@ fun () ->
  (* before/after deltas of the process-wide store counters: exact when
     batches run one at a time (the serve daemon, the CLI); concurrent
     batches sharing a store attribute each other's lookups *)
  let store_h0, store_m0 =
    match cache with
    | Some _ -> (Mae_db.Cas.hit_count (), Mae_db.Cas.miss_count ())
    | None -> (0, 0)
  in
  let t0 = Mae_obs.Clock.monotonic () in
  let results, per_domain, queue_wait, cache_hits, cache_misses =
    map_pool ~jobs ?pool ~t0
      (estimate_one ?config ?methods ?cache ~registry)
      inputs
  in
  let store_hits, store_misses =
    match cache with
    | Some _ ->
        (Mae_db.Cas.hit_count () - store_h0, Mae_db.Cas.miss_count () - store_m0)
    | None -> (0, 0)
  in
  let elapsed_s = Mae_obs.Clock.monotonic () -. t0 in
  let ok =
    Array.fold_left
      (fun acc -> function Ok _ -> acc + 1 | Error _ -> acc)
      0 results
  in
  let modules = Array.length inputs in
  Mae_obs.Metrics.add modules_counter modules;
  Mae_obs.Metrics.add ok_counter ok;
  Mae_obs.Metrics.add failed_counter (modules - ok);
  Mae_obs.Metrics.set queue_wait_gauge queue_wait;
  let stats =
    {
      modules;
      ok;
      failed = modules - ok;
      jobs;
      elapsed_s;
      (* summed per-worker deltas of the workers' domain-local cache
         counts: exactly this batch's traffic, even when another batch
         runs concurrently on other domains (the old before/after of the
         process-global counters attributed the overlap to both) *)
      cache_hits;
      cache_misses;
      store_hits;
      store_misses;
      per_domain;
    }
  in
  if Mae_obs.Log.enabled Mae_obs.Log.Debug then
    Mae_obs.Log.debug ~event:"engine.batch"
      [
        ("modules", Mae_obs.Log.Int modules);
        ("ok", Mae_obs.Log.Int ok);
        ("failed", Mae_obs.Log.Int (modules - ok));
        ("jobs", Mae_obs.Log.Int jobs);
        ("elapsed_s", Mae_obs.Log.Float elapsed_s);
        ("cache_hits", Mae_obs.Log.Int stats.cache_hits);
        ("cache_misses", Mae_obs.Log.Int stats.cache_misses);
      ];
  (Array.to_list results, stats)

(* The coalescing batch entry point: several requests' circuit lists
   run as one engine fan-out (one pool submission, one work-stealing
   pass over the concatenation), and each group gets its own results
   slice plus its own store hit/miss counts from the per-module flags.
   One group is one request, so the dispatcher can answer each with an
   exact "cached" field even though the engine saw a single batch. *)
let run_grouped ?methods ?jobs ?pool ?cache ~registry groups =
  let jobs = resolve_jobs jobs in
  check_oversubscription jobs;
  let inputs = Array.of_list (List.concat groups) in
  Mae_obs.Span.with_ ~name:"engine.batch"
    ~attrs:
      [
        ("modules", string_of_int (Array.length inputs));
        ("jobs", string_of_int jobs);
        ("groups", string_of_int (List.length groups));
      ]
  @@ fun () ->
  let t0 = Mae_obs.Clock.monotonic () in
  let flagged, per_domain, queue_wait, cache_hits, cache_misses =
    map_pool ~jobs ?pool ~t0 (estimate_one_flagged ?methods ?cache ~registry)
      inputs
  in
  let elapsed_s = Mae_obs.Clock.monotonic () -. t0 in
  (* slice the flat result array back into the input groups, counting
     each group's own store traffic as it goes *)
  let grouped_rev, _ =
    List.fold_left
      (fun (acc, off) group ->
        let len = List.length group in
        let results = ref [] and hits = ref 0 and misses = ref 0 in
        for i = off + len - 1 downto off do
          let r, flag = flagged.(i) in
          results := r :: !results;
          match flag with
          | `Hit -> incr hits
          | `Miss -> incr misses
          | `Bypass -> ()
        done;
        ((!results, !hits, !misses) :: acc, off + len))
      ([], 0) groups
  in
  let grouped = List.rev grouped_rev in
  let ok =
    Array.fold_left
      (fun acc (r, _) -> match r with Ok _ -> acc + 1 | Error _ -> acc)
      0 flagged
  in
  let modules = Array.length inputs in
  Mae_obs.Metrics.add modules_counter modules;
  Mae_obs.Metrics.add ok_counter ok;
  Mae_obs.Metrics.add failed_counter (modules - ok);
  Mae_obs.Metrics.set queue_wait_gauge queue_wait;
  let store_hits = List.fold_left (fun a (_, h, _) -> a + h) 0 grouped in
  let store_misses = List.fold_left (fun a (_, _, m) -> a + m) 0 grouped in
  let stats =
    {
      modules;
      ok;
      failed = modules - ok;
      jobs;
      elapsed_s;
      cache_hits;
      cache_misses;
      store_hits;
      store_misses;
      per_domain;
    }
  in
  if Mae_obs.Log.enabled Mae_obs.Log.Debug then
    Mae_obs.Log.debug ~event:"engine.batch"
      [
        ("modules", Mae_obs.Log.Int modules);
        ("groups", Mae_obs.Log.Int (List.length groups));
        ("ok", Mae_obs.Log.Int ok);
        ("failed", Mae_obs.Log.Int (modules - ok));
        ("jobs", Mae_obs.Log.Int jobs);
        ("elapsed_s", Mae_obs.Log.Float elapsed_s);
        ("cache_hits", Mae_obs.Log.Int stats.cache_hits);
        ("cache_misses", Mae_obs.Log.Int stats.cache_misses);
      ];
  (grouped, stats)

let run_circuits ?config ?methods ?jobs ?pool ?cache ~registry circuits =
  fst
    (run_circuits_with_stats ?config ?methods ?jobs ?pool ?cache ~registry
       circuits)

let run_design ?config ?methods ?jobs ?pool ?cache ~registry design =
  match Mae.Driver.design_circuits design with
  | Error e -> Error e
  | Ok circuits ->
      Ok (run_circuits ?config ?methods ?jobs ?pool ?cache ~registry circuits)

let run_string ?config ?methods ?jobs ?pool ?cache ~registry text =
  match Mae.Driver.string_circuits text with
  | Error e -> Error e
  | Ok circuits ->
      Ok (run_circuits ?config ?methods ?jobs ?pool ?cache ~registry circuits)

let run_file ?config ?methods ?jobs ?pool ?cache ~registry path =
  match Mae.Driver.file_circuits path with
  | Error e -> Error e
  | Ok circuits ->
      Ok (run_circuits ?config ?methods ?jobs ?pool ?cache ~registry circuits)

(* --- incremental re-estimation: the delta path --- *)

module C = Mae_netlist.Circuit
module Dv = Mae_netlist.Device
module Nt = Mae_netlist.Net
module Pt = Mae_netlist.Port

type edit =
  | Add_device of { name : string; kind : string; nets : string list }
  | Remove_device of { name : string }
  | Add_net of { name : string }
  | Remove_net of { name : string }

type reestimate_report = {
  report : Mae.Driver.module_report;
  reused : string list;
  recomputed : string list;
  stats_incremental : bool;
  stats : Mae_netlist.Stats.t;
}

(* Rebuild a circuit through Builder preserving net and device index
   order exactly, so the float folds downstream see the same sequences.
   Additions are appended last (Builder creates nets on first mention),
   which is what makes the Add_* stats deltas exact. *)
let rebuild ?(keep_device = fun _ -> true) ?(keep_net = fun _ -> true)
    ?append_net ?append_device (c : C.t) =
  let b = Mae_netlist.Builder.create ~name:c.name ~technology:c.technology in
  let net_name i = (c.nets.(i) : Nt.t).name in
  Array.iter
    (fun (n : Nt.t) -> if keep_net n.name then ignore (Mae_netlist.Builder.net b n.name))
    c.nets;
  (match append_net with
  | Some name -> ignore (Mae_netlist.Builder.net b name)
  | None -> ());
  Array.iter
    (fun (d : Dv.t) ->
      if keep_device d.name then
        ignore
          (Mae_netlist.Builder.add_device b ~name:d.name ~kind:d.kind
             ~nets:(Array.to_list (Array.map net_name d.pins))))
    c.devices;
  (match append_device with
  | Some (name, kind, nets) ->
      ignore (Mae_netlist.Builder.add_device b ~name ~kind ~nets)
  | None -> ());
  Array.iter
    (fun (p : Pt.t) ->
      Mae_netlist.Builder.add_port b ~name:p.name ~direction:p.direction
        ~net:(net_name p.net))
    c.ports;
  Mae_netlist.Builder.build b

let apply_edit (c : C.t) edit =
  try
    match edit with
    | Add_device { name; kind; nets } ->
        if nets = [] then Error "a device needs at least one pin"
        else if C.find_device c name <> None then
          Error (Printf.sprintf "device %s already exists" name)
        else Ok (rebuild ~append_device:(name, kind, nets) c)
    | Remove_device { name } ->
        if C.find_device c name = None then
          Error (Printf.sprintf "no device named %s" name)
        else Ok (rebuild ~keep_device:(fun n -> not (String.equal n name)) c)
    | Add_net { name } ->
        if name = "" then Error "empty net name"
        else if C.find_net c name <> None then
          Error (Printf.sprintf "net %s already exists" name)
        else Ok (rebuild ~append_net:name c)
    | Remove_net { name } -> (
        match C.find_net c name with
        | None -> Error (Printf.sprintf "no net named %s" name)
        | Some n ->
            if C.degree c n.index > 0 then
              Error
                (Printf.sprintf "net %s still connects %d device(s)" name
                   (C.degree c n.index))
            else if
              Array.exists (fun (p : Pt.t) -> p.net = n.index) c.ports
            then Error (Printf.sprintf "net %s is bound to a port" name)
            else Ok (rebuild ~keep_net:(fun nm -> not (String.equal nm name)) c))
  with Invalid_argument reason -> Error reason

(* Per-methodology input projections.

   A stored outcome is reused only when every input the estimator reads
   is bit-for-bit unchanged between the old and new circuit; all float
   comparisons go through IEEE bit patterns.  The projections mirror
   exactly what each estimator consumes:

   - stdcell (stdcell.ml, row_select.ml): device_count, port_count,
     average_width, total_device_area, the degree histogram.
   - fullcustom (fullcustom.ml): the device term (total_device_area in
     exact mode; device_count, average widths/heights in average mode),
     port_count, and the ordered per-net channel contributions: nets of
     degree <= 1 add a literal +0. to a non-negative accumulator (a
     bitwise no-op), so only nets of degree >= 2 matter -- compared in
     net-index order with their member widths (exact mode).
   - gatearray (gatearray.ml): the device-kind multiset (site demand)
     plus the full stats record (track model).

   Unknown methodologies (baselines) have no projection and are always
   recomputed. *)

let bits = Int64.bits_of_float
let feq a b = Int64.equal (bits a) (bits b)

let stdcell_projection_equal (a : Mae_netlist.Stats.t)
    (b : Mae_netlist.Stats.t) =
  a.device_count = b.device_count
  && a.port_count = b.port_count
  && feq a.average_width b.average_width
  && feq a.total_device_area b.total_device_area
  && a.degree_histogram = b.degree_histogram

let fc_wire_profile ~exact (c : C.t) process =
  let widths =
    if exact then Some (Mae_netlist.Stats.device_widths c process) else None
  in
  List.init (C.net_count c) (fun n ->
      let members = C.devices_on_net c n in
      let d = Array.length members in
      if d < 2 then None
      else
        Some
          ( d,
            match widths with
            | Some w -> Array.to_list (Array.map (fun i -> bits w.(i)) members)
            | None -> [] ))
  |> List.filter_map Fun.id

let fullcustom_projection_equal ~exact ~(old_fc : C.t)
    ~(old_fc_stats : Mae_netlist.Stats.t) ~(new_fc : C.t)
    ~(new_fc_stats : Mae_netlist.Stats.t) process =
  old_fc_stats.device_count = new_fc_stats.device_count
  && old_fc_stats.port_count = new_fc_stats.port_count
  && (if exact then feq old_fc_stats.total_device_area new_fc_stats.total_device_area
      else
        feq old_fc_stats.average_width new_fc_stats.average_width
        && feq old_fc_stats.average_height new_fc_stats.average_height)
  && fc_wire_profile ~exact old_fc process = fc_wire_profile ~exact new_fc process

let kind_multiset (c : C.t) =
  Array.to_list c.devices
  |> List.map (fun (d : Dv.t) -> d.kind)
  |> List.sort String.compare

let reestimate ?config ?methods ?cache ?previous_stats ~registry
    ~(previous : Mae.Driver.module_report) edit =
  let module_name = previous.circuit.C.name in
  match apply_edit previous.circuit edit with
  | Error reason -> Error (Invalid_edit { module_name; reason })
  | Ok circuit -> (
      try
        match Mae_tech.Registry.find registry circuit.C.technology with
        | None ->
            Error
              (Driver_error
                 (Mae.Driver.Unknown_process
                    { module_name; technology = circuit.C.technology }))
        | Some process -> (
            match
              Mae.Methodology.resolve (Option.value methods ~default:[ "default" ])
            with
            | Error name ->
                Error
                  (Driver_error
                     (Mae.Driver.Unknown_method { module_name; methodology = name }))
            | Ok selected -> (
                let issues = Mae_netlist.Validate.check circuit process in
                let errors = List.filter Mae_netlist.Validate.is_error issues in
                match errors with
                | _ :: _ ->
                    Error
                      (Driver_error
                         (Mae.Driver.Validation_failed
                            { module_name; issues = errors }))
                | [] ->
                    let old_stats =
                      match previous_stats with
                      | Some s -> s
                      | None ->
                          Mae_netlist.Stats.compute previous.circuit process
                    in
                    (* the edit kinds whose stats update extends the
                       original fold (appends) are exact; a removal
                       breaks float-fold associativity, so it recomputes *)
                    let stats, stats_incremental =
                      match edit with
                      | Add_device { kind; nets; _ } -> (
                          match Mae_tech.Process.find_device process kind with
                          | None ->
                              (Mae_netlist.Stats.compute circuit process, false)
                          | Some k ->
                              let transitions =
                                List.sort_uniq String.compare nets
                                |> List.map (fun nm ->
                                       match C.find_net previous.circuit nm with
                                       | Some n ->
                                           let d =
                                             C.degree previous.circuit n.Nt.index
                                           in
                                           (d, d + 1)
                                       | None -> (0, 1))
                              in
                              ( Mae_netlist.Stats.add_device_delta old_stats
                                  ~kind:k ~net_count:(C.net_count circuit)
                                  ~net_transitions:transitions,
                                true ))
                      | Add_net _ | Remove_net _ ->
                          ( Mae_netlist.Stats.with_net_count old_stats
                              ~net_count:(C.net_count circuit),
                            true )
                      | Remove_device _ ->
                          (Mae_netlist.Stats.compute circuit process, false)
                    in
                    let expanded =
                      Mae.Methodology.expand_for_fullcustom circuit process
                    in
                    let fc_circuit = Option.value expanded ~default:circuit in
                    let fc_stats =
                      match expanded with
                      | None -> stats
                      | Some e -> Mae_netlist.Stats.compute e process
                    in
                    let ctx =
                      {
                        Mae.Methodology.config;
                        process;
                        stats;
                        fc_circuit;
                        fc_stats;
                        rows_override = None;
                      }
                    in
                    (* old full-custom inputs are re-derived from the old
                       circuit (expansion is deterministic), so reuse is
                       sound even when [previous] came from the store with
                       its expansion intermediate stripped *)
                    let old_fc_inputs =
                      lazy
                        (let old_expanded =
                           Mae.Methodology.expand_for_fullcustom
                             previous.circuit process
                         in
                         let old_fc =
                           Option.value old_expanded ~default:previous.circuit
                         in
                         let old_fc_stats =
                           match old_expanded with
                           | None -> old_stats
                           | Some e -> Mae_netlist.Stats.compute e process
                         in
                         (old_fc, old_fc_stats))
                    in
                    let projection_unchanged name =
                      match name with
                      | "stdcell" -> stdcell_projection_equal old_stats stats
                      | "fullcustom-exact" | "fullcustom-average" ->
                          let old_fc, old_fc_stats = Lazy.force old_fc_inputs in
                          fullcustom_projection_equal
                            ~exact:(String.equal name "fullcustom-exact")
                            ~old_fc ~old_fc_stats ~new_fc:fc_circuit
                            ~new_fc_stats:fc_stats process
                      | "gatearray" ->
                          Mae_netlist.Stats.equal old_stats stats
                          && kind_multiset previous.circuit = kind_multiset circuit
                      | _ -> false
                    in
                    let reused = ref [] in
                    let recomputed = ref [] in
                    let results =
                      List.map
                        (fun t ->
                          let name = Mae.Methodology.name t in
                          let previous_outcome =
                            (* reuse only successful outcomes whose every
                               input is bitwise unchanged; a [config]
                               could change what an estimator reads, so
                               configured runs always recompute *)
                            if config = None && projection_unchanged name then
                              match Mae.Driver.find_result previous name with
                              | Some (Ok o) -> Some (Ok o)
                              | Some (Error _) | None -> None
                            else None
                          in
                          match previous_outcome with
                          | Some outcome ->
                              reused := name :: !reused;
                              { Mae.Driver.methodology = t; outcome }
                          | None ->
                              recomputed := name :: !recomputed;
                              {
                                Mae.Driver.methodology = t;
                                outcome = Mae.Methodology.run ctx t circuit;
                              })
                        selected
                    in
                    let report =
                      { Mae.Driver.circuit; process; issues; expanded; results }
                    in
                    (match (cache, config) with
                    | Some cas, None ->
                        let names = List.map Mae.Methodology.name selected in
                        let key = Mae_db.Cas.key ~methods:names ~process circuit in
                        Mae_db.Cas.store cas ~key report
                    | _ -> ());
                    Ok
                      {
                        report;
                        reused = List.rev !reused;
                        recomputed = List.rev !recomputed;
                        stats_incremental;
                        stats;
                      }))
      with exn ->
        Error (Crashed { module_name; exn = Printexc.to_string exn }))
