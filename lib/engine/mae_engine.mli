(** Multicore batch-estimation engine.

    Fans a list of circuits (or the modules of an HDL file) across an
    OCaml 5 [Domain] pool, runs {!Mae.Driver.run_circuit} on each, and
    returns per-module results {e in deterministic input order} no
    matter which domain estimated which module.  A module that fails
    (driver error or exception) yields an [Error] slot; the rest of the
    batch is unaffected.

    Every entry point takes the driver's [?methods] selection (see
    {!Mae.Methodology}); linking this library guarantees the four
    baseline methodologies from {!Mae_baselines.Methods} are registered,
    so all eight estimators are selectable by name in batch requests.

    The probability kernels shared by all modules -- row-span
    distributions, feed-through binomials -- are memoized in the
    domain-safe {!Mae_prob.Kernel_cache}, so a batch pays for each
    [(rows, degree)] kernel once across all domains.

    Scheduling: the input array is block-partitioned across workers and
    drained in chunks of [max 1 (n / (8 * workers))] claimed with one
    atomic per chunk; a worker whose block runs dry steals chunks from
    the others.  Result slot [i] always receives the estimate of module
    [i] whatever the schedule, so output order and bits are independent
    of [jobs] and of stealing.  Callers that run many batches (the
    serve daemon, benches) should create a {!Pool} once and pass it to
    every run: the pool parks its domains between batches, replacing the
    per-batch [Domain.spawn] cost with one broadcast.

    The engine is instrumented through {!Mae_obs}: with telemetry on
    ({!Mae_obs.set_enabled}) every batch records an [engine.batch]
    span, one [engine.worker] root span per domain lane, and the
    per-module latency histogram [mae_engine_module_seconds]; the
    always-on counters [mae_engine_modules_total] /
    [..._ok_total] / [..._failed_total] and the
    [mae_engine_queue_wait_seconds] gauge live in the
    {!Mae_obs.Metrics} registry. *)

type error =
  | Driver_error of Mae.Driver.error
  | Crashed of { module_name : string; exn : string }
      (** an exception escaped the estimator for this module *)

val pp_error : Format.formatter -> error -> unit

type stats = {
  modules : int;
  ok : int;
  failed : int;
  jobs : int;  (** domains actually used *)
  elapsed_s : float;  (** wall-clock batch time *)
  cache_hits : int;
      (** kernel-cache hits during this batch, summed from the workers'
          domain-local counts -- exact for this batch even when other
          batches run concurrently on other domains *)
  cache_misses : int;
  per_domain : int array;
      (** how many modules each worker estimated; slot 0 is the calling
          domain, the rest are pool/spawned domains in spawn order *)
}

val pp_stats : Format.formatter -> stats -> unit
(** One line: throughput, kernel-cache hits/misses with hit rate, and
    the per-domain module counts. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

(** A persistent domain pool: spawn once, reuse across batches.

    Domains park on a condition variable between batches, so a batch
    submission costs one lock round-trip and a broadcast instead of
    [jobs - 1] [Domain.spawn]s (each worth several cached modules).
    Pass the pool to {!run_circuits} and friends via [?pool]; the
    calling domain always participates as worker 0, pool domains serve
    the remaining slots (idle when the batch requests fewer jobs than
    the pool offers).  A pool runs one batch at a time -- submitting
    from two threads concurrently raises [Invalid_argument]. *)
module Pool : sig
  type t

  val create : domains:int -> t
  (** Spawn [domains] parked worker domains ([domains >= 0]; 0 is a
      valid pool that adds nothing to the calling domain). *)

  val concurrency : t -> int
  (** [domains + 1]: the pool's worker slots including the caller. *)

  val shutdown : t -> unit
  (** Wake and join every domain.  Idempotent.  A shut-down pool has
      [concurrency] 1, so batches handed one degrade to running
      sequentially on the calling domain (results are identical by the
      determinism contract); submitting directly to it raises
      [Invalid_argument]. *)
end

(** Requesting more domains than {!default_jobs} is honoured (the
    determinism contract holds for any [jobs]) but announced loudly:
    one stderr warning per process, a [engine.jobs_oversubscribed]
    {!Mae_obs.Log} warn record per batch, and the
    [mae_engine_jobs_oversubscribed] gauge set to the excess --
    oversubscribing a 1-core host measured 0.18x of sequential in
    BENCH_engine.json.  Each batch additionally emits an
    [engine.batch] debug log record when {!Mae_obs.Log} is at
    [Debug]. *)

val run_circuits :
  ?config:Mae.Config.t ->
  ?methods:string list ->
  ?jobs:int ->
  ?pool:Pool.t ->
  registry:Mae_tech.Registry.t ->
  Mae_netlist.Circuit.t list ->
  (Mae.Driver.module_report, error) result list
(** Estimate every circuit.  [methods] selects the methodologies each
    module runs (default ["default"]; see {!Mae.Methodology.resolve}).
    [jobs] is the number of domains: omitted or [1] runs sequentially on
    the calling domain, [0] means {!default_jobs}, [n >= 2] spawns
    [n - 1] additional domains (the caller is the n-th worker).  Raises
    [Invalid_argument] on a negative [jobs].  Output order equals input
    order and is bit-for-bit independent of [jobs]. *)

val run_circuits_with_stats :
  ?config:Mae.Config.t ->
  ?methods:string list ->
  ?jobs:int ->
  ?pool:Pool.t ->
  registry:Mae_tech.Registry.t ->
  Mae_netlist.Circuit.t list ->
  (Mae.Driver.module_report, error) result list * stats

val run_design :
  ?config:Mae.Config.t ->
  ?methods:string list ->
  ?jobs:int ->
  ?pool:Pool.t ->
  registry:Mae_tech.Registry.t ->
  Mae_hdl.Ast.design ->
  ((Mae.Driver.module_report, error) result list, Mae.Driver.error) result
(** Elaborate a parsed multi-module design, then fan the modules out.
    Elaboration failures abort the whole batch (there is nothing to
    estimate); per-module estimation failures are isolated as [Error]
    slots. *)

val run_string :
  ?config:Mae.Config.t ->
  ?methods:string list ->
  ?jobs:int ->
  ?pool:Pool.t ->
  registry:Mae_tech.Registry.t ->
  string ->
  ((Mae.Driver.module_report, error) result list, Mae.Driver.error) result

val run_file :
  ?config:Mae.Config.t ->
  ?methods:string list ->
  ?jobs:int ->
  ?pool:Pool.t ->
  registry:Mae_tech.Registry.t ->
  string ->
  ((Mae.Driver.module_report, error) result list, Mae.Driver.error) result
