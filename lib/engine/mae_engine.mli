(** Multicore batch-estimation engine.

    Fans a list of circuits (or the modules of an HDL file) across an
    OCaml 5 [Domain] pool, runs {!Mae.Driver.run_circuit} on each, and
    returns per-module results {e in deterministic input order} no
    matter which domain estimated which module.  A module that fails
    (driver error or exception) yields an [Error] slot; the rest of the
    batch is unaffected.

    Every entry point takes the driver's [?methods] selection (see
    {!Mae.Methodology}); linking this library guarantees the four
    baseline methodologies from {!Mae_baselines.Methods} are registered,
    so all eight estimators are selectable by name in batch requests.

    The probability kernels shared by all modules -- row-span
    distributions, feed-through binomials -- are memoized in the
    domain-safe {!Mae_prob.Kernel_cache}, so a batch pays for each
    [(rows, degree)] kernel once across all domains.

    The engine is instrumented through {!Mae_obs}: with telemetry on
    ({!Mae_obs.set_enabled}) every batch records an [engine.batch]
    span, one [engine.worker] root span per domain lane, and the
    per-module latency histogram [mae_engine_module_seconds]; the
    always-on counters [mae_engine_modules_total] /
    [..._ok_total] / [..._failed_total] and the
    [mae_engine_queue_wait_seconds] gauge live in the
    {!Mae_obs.Metrics} registry. *)

type error =
  | Driver_error of Mae.Driver.error
  | Crashed of { module_name : string; exn : string }
      (** an exception escaped the estimator for this module *)

val pp_error : Format.formatter -> error -> unit

type stats = {
  modules : int;
  ok : int;
  failed : int;
  jobs : int;  (** domains actually used *)
  elapsed_s : float;  (** wall-clock batch time *)
  cache_hits : int;  (** kernel-cache hits during this batch *)
  cache_misses : int;
  per_domain : int array;
      (** how many modules each worker estimated; slot 0 is the calling
          domain, the rest are spawned domains in spawn order *)
}

val pp_stats : Format.formatter -> stats -> unit
(** One line: throughput, kernel-cache hits/misses with hit rate, and
    the per-domain module counts. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

(** Requesting more domains than {!default_jobs} is honoured (the
    determinism contract holds for any [jobs]) but announced loudly:
    one stderr warning per process, a [engine.jobs_oversubscribed]
    {!Mae_obs.Log} warn record per batch, and the
    [mae_engine_jobs_oversubscribed] gauge set to the excess --
    oversubscribing a 1-core host measured 0.18x of sequential in
    BENCH_engine.json.  Each batch additionally emits an
    [engine.batch] debug log record when {!Mae_obs.Log} is at
    [Debug]. *)

val run_circuits :
  ?config:Mae.Config.t ->
  ?methods:string list ->
  ?jobs:int ->
  registry:Mae_tech.Registry.t ->
  Mae_netlist.Circuit.t list ->
  (Mae.Driver.module_report, error) result list
(** Estimate every circuit.  [methods] selects the methodologies each
    module runs (default ["default"]; see {!Mae.Methodology.resolve}).
    [jobs] is the number of domains: omitted or [1] runs sequentially on
    the calling domain, [0] means {!default_jobs}, [n >= 2] spawns
    [n - 1] additional domains (the caller is the n-th worker).  Raises
    [Invalid_argument] on a negative [jobs].  Output order equals input
    order and is bit-for-bit independent of [jobs]. *)

val run_circuits_with_stats :
  ?config:Mae.Config.t ->
  ?methods:string list ->
  ?jobs:int ->
  registry:Mae_tech.Registry.t ->
  Mae_netlist.Circuit.t list ->
  (Mae.Driver.module_report, error) result list * stats

val run_design :
  ?config:Mae.Config.t ->
  ?methods:string list ->
  ?jobs:int ->
  registry:Mae_tech.Registry.t ->
  Mae_hdl.Ast.design ->
  ((Mae.Driver.module_report, error) result list, Mae.Driver.error) result
(** Elaborate a parsed multi-module design, then fan the modules out.
    Elaboration failures abort the whole batch (there is nothing to
    estimate); per-module estimation failures are isolated as [Error]
    slots. *)

val run_string :
  ?config:Mae.Config.t ->
  ?methods:string list ->
  ?jobs:int ->
  registry:Mae_tech.Registry.t ->
  string ->
  ((Mae.Driver.module_report, error) result list, Mae.Driver.error) result

val run_file :
  ?config:Mae.Config.t ->
  ?methods:string list ->
  ?jobs:int ->
  registry:Mae_tech.Registry.t ->
  string ->
  ((Mae.Driver.module_report, error) result list, Mae.Driver.error) result
