(** Multicore batch-estimation engine.

    Fans a list of circuits (or the modules of an HDL file) across an
    OCaml 5 [Domain] pool, runs {!Mae.Driver.run_circuit} on each, and
    returns per-module results {e in deterministic input order} no
    matter which domain estimated which module.  A module that fails
    (driver error or exception) yields an [Error] slot; the rest of the
    batch is unaffected.

    Every entry point takes the driver's [?methods] selection (see
    {!Mae.Methodology}); linking this library guarantees the four
    baseline methodologies from {!Mae_baselines.Methods} are registered,
    so all eight estimators are selectable by name in batch requests.

    The probability kernels shared by all modules -- row-span
    distributions, feed-through binomials -- are memoized in the
    domain-safe {!Mae_prob.Kernel_cache}, so a batch pays for each
    [(rows, degree)] kernel once across all domains.

    Scheduling: the input array is block-partitioned across workers and
    drained in chunks of [max 1 (n / (8 * workers))] claimed with one
    atomic per chunk; a worker whose block runs dry steals chunks from
    the others.  Result slot [i] always receives the estimate of module
    [i] whatever the schedule, so output order and bits are independent
    of [jobs] and of stealing.  Callers that run many batches (the
    serve daemon, benches) should create a {!Pool} once and pass it to
    every run: the pool parks its domains between batches, replacing the
    per-batch [Domain.spawn] cost with one broadcast.

    The engine is instrumented through {!Mae_obs}: with telemetry on
    ({!Mae_obs.set_enabled}) every batch records an [engine.batch]
    span, one [engine.worker] root span per domain lane, and the
    per-module latency histogram [mae_engine_module_seconds]; the
    always-on counters [mae_engine_modules_total] /
    [..._ok_total] / [..._failed_total] and the
    [mae_engine_queue_wait_seconds] gauge live in the
    {!Mae_obs.Metrics} registry. *)

type error =
  | Driver_error of Mae.Driver.error
  | Crashed of { module_name : string; exn : string }
      (** an exception escaped the estimator for this module *)
  | Invalid_edit of { module_name : string; reason : string }
      (** {!reestimate} was handed an edit the circuit cannot take *)

val pp_error : Format.formatter -> error -> unit

type stats = {
  modules : int;
  ok : int;
  failed : int;
  jobs : int;  (** domains actually used *)
  elapsed_s : float;  (** wall-clock batch time *)
  cache_hits : int;
      (** kernel-cache hits during this batch, summed from the workers'
          domain-local counts -- exact for this batch even when other
          batches run concurrently on other domains *)
  cache_misses : int;
  store_hits : int;
      (** estimate-store lookups answered from {!Mae_db.Cas} during this
          batch (before/after deltas of the process-wide counters: exact
          when batches run one at a time, as in the serve daemon) *)
  store_misses : int;
  per_domain : int array;
      (** how many modules each worker estimated; slot 0 is the calling
          domain, the rest are pool/spawned domains in spawn order *)
}

val pp_stats : Format.formatter -> stats -> unit
(** One line: throughput, kernel-cache hits/misses with hit rate, and
    the per-domain module counts. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()], at least 1. *)

(** A persistent domain pool: spawn once, reuse across batches.

    Domains park on a condition variable between batches, so a batch
    submission costs one lock round-trip and a broadcast instead of
    [jobs - 1] [Domain.spawn]s (each worth several cached modules).
    Pass the pool to {!run_circuits} and friends via [?pool]; the
    calling domain always participates as worker 0, pool domains serve
    the remaining slots (idle when the batch requests fewer jobs than
    the pool offers).  A pool runs one batch at a time -- submitting
    from two threads concurrently raises [Invalid_argument]. *)
module Pool : sig
  type t

  val create : domains:int -> t
  (** Spawn [domains] parked worker domains ([domains >= 0]; 0 is a
      valid pool that adds nothing to the calling domain). *)

  val concurrency : t -> int
  (** [domains + 1]: the pool's worker slots including the caller. *)

  val shutdown : t -> unit
  (** Wake and join every domain.  Idempotent.  A shut-down pool has
      [concurrency] 1, so batches handed one degrade to running
      sequentially on the calling domain (results are identical by the
      determinism contract); submitting directly to it raises
      [Invalid_argument]. *)
end

(** Requesting more domains than {!default_jobs} is honoured (the
    determinism contract holds for any [jobs]) but announced loudly:
    one stderr warning per process, a [engine.jobs_oversubscribed]
    {!Mae_obs.Log} warn record per batch, and the
    [mae_engine_jobs_oversubscribed] gauge set to the excess --
    oversubscribing a 1-core host measured 0.18x of sequential in
    BENCH_engine.json.  Each batch additionally emits an
    [engine.batch] debug log record when {!Mae_obs.Log} is at
    [Debug]. *)

val run_circuits :
  ?config:Mae.Config.t ->
  ?methods:string list ->
  ?jobs:int ->
  ?pool:Pool.t ->
  ?cache:Mae_db.Cas.t ->
  registry:Mae_tech.Registry.t ->
  Mae_netlist.Circuit.t list ->
  (Mae.Driver.module_report, error) result list
(** Estimate every circuit.  [methods] selects the methodologies each
    module runs (default ["default"]; see {!Mae.Methodology.resolve}).
    [jobs] is the number of domains: omitted or [1] runs sequentially on
    the calling domain, [0] means {!default_jobs}, [n >= 2] spawns
    [n - 1] additional domains (the caller is the n-th worker).  Raises
    [Invalid_argument] on a negative [jobs].  Output order equals input
    order and is bit-for-bit independent of [jobs]. *)

val run_circuits_with_stats :
  ?config:Mae.Config.t ->
  ?methods:string list ->
  ?jobs:int ->
  ?pool:Pool.t ->
  ?cache:Mae_db.Cas.t ->
  registry:Mae_tech.Registry.t ->
  Mae_netlist.Circuit.t list ->
  (Mae.Driver.module_report, error) result list * stats

val run_grouped :
  ?methods:string list ->
  ?jobs:int ->
  ?pool:Pool.t ->
  ?cache:Mae_db.Cas.t ->
  registry:Mae_tech.Registry.t ->
  Mae_netlist.Circuit.t list list ->
  (((Mae.Driver.module_report, error) result list * int * int) list * stats)
(** The coalescing batch entry point: each inner list is one request's
    circuits; the concatenation runs as a single engine fan-out (one
    pool submission, one work-stealing pass) and each group comes back
    as [(results, store_hits, store_misses)] with results in input
    order and the store counts taken from per-module lookup flags --
    exact per-group accounting even though the engine saw one batch.
    [stats] covers the whole batch.  Per-module results are bit-for-bit
    what per-request {!run_circuits_with_stats} calls would produce. *)

val run_design :
  ?config:Mae.Config.t ->
  ?methods:string list ->
  ?jobs:int ->
  ?pool:Pool.t ->
  ?cache:Mae_db.Cas.t ->
  registry:Mae_tech.Registry.t ->
  Mae_hdl.Ast.design ->
  ((Mae.Driver.module_report, error) result list, Mae.Driver.error) result
(** Elaborate a parsed multi-module design, then fan the modules out.
    Elaboration failures abort the whole batch (there is nothing to
    estimate); per-module estimation failures are isolated as [Error]
    slots. *)

val run_string :
  ?config:Mae.Config.t ->
  ?methods:string list ->
  ?jobs:int ->
  ?pool:Pool.t ->
  ?cache:Mae_db.Cas.t ->
  registry:Mae_tech.Registry.t ->
  string ->
  ((Mae.Driver.module_report, error) result list, Mae.Driver.error) result

val run_file :
  ?config:Mae.Config.t ->
  ?methods:string list ->
  ?jobs:int ->
  ?pool:Pool.t ->
  ?cache:Mae_db.Cas.t ->
  registry:Mae_tech.Registry.t ->
  string ->
  ((Mae.Driver.module_report, error) result list, Mae.Driver.error) result

(** {1 Estimate store}

    Pass [?cache] (a {!Mae_db.Cas.t}) to any entry point and each module
    is first looked up by its content address (canonical circuit +
    process fingerprint + registry version + resolved method set); hits
    return the stored report bit-for-bit and count into
    [mae_estimate_cache_hits_total].  Runs with an explicit [?config]
    bypass the store: a config changes results but is not part of the
    address. *)

(** {1 Incremental re-estimation}

    The delta path: apply a netlist edit to an already-estimated module
    and recompute only the methodologies whose inputs actually changed,
    updating the shared statistics context incrementally where the edit
    permits. *)

type edit =
  | Add_device of { name : string; kind : string; nets : string list }
      (** pins connect to the named nets in order; unknown net names are
          created (appended after the existing nets) *)
  | Remove_device of { name : string }
  | Add_net of { name : string }  (** a new floating net *)
  | Remove_net of { name : string }
      (** the net must be floating (degree 0) and not bound to a port *)

val apply_edit :
  Mae_netlist.Circuit.t -> edit -> (Mae_netlist.Circuit.t, string) result
(** The edited circuit, rebuilt with net and device index order
    preserved and additions appended last -- the property that makes the
    [Add_*] statistics deltas exact. *)

type reestimate_report = {
  report : Mae.Driver.module_report;  (** for the edited circuit *)
  reused : string list;
      (** methodologies answered from the previous report because every
          input they read was bit-for-bit unchanged *)
  recomputed : string list;
  stats_incremental : bool;
      (** the shared stats context was updated by delta rather than by
          rescanning the circuit *)
  stats : Mae_netlist.Stats.t;
      (** the edited circuit's statistics; feed back as
          [?previous_stats] when chaining edits *)
}

val reestimate :
  ?config:Mae.Config.t ->
  ?methods:string list ->
  ?cache:Mae_db.Cas.t ->
  ?previous_stats:Mae_netlist.Stats.t ->
  registry:Mae_tech.Registry.t ->
  previous:Mae.Driver.module_report ->
  edit ->
  (reestimate_report, error) result
(** Re-estimate [previous]'s module after [edit].

    The result is {e bit-for-bit identical} to a full
    {!Mae.Driver.run_circuit} on the edited circuit: statistics deltas
    extend the original float folds exactly ([Add_device] appends the
    new device's terms; add/remove of a floating net touches no float),
    and a methodology's previous outcome is reused only when a bitwise
    projection of everything it reads is unchanged.  [Remove_device]
    breaks fold associativity, so its statistics are recomputed in full;
    per-methodology reuse still applies.

    [?previous_stats] supplies the raw statistics of [previous.circuit]
    (e.g. from a prior {!reestimate_report}), making the stats update
    O(edit); omitted, they are recomputed.  Runs with [?config] recompute
    every methodology.  When [?cache] is given (and no config), the new
    report is stored under the edited circuit's content address. *)
