(* The canonical, construction-order-independent serialization of a
   circuit, and its digest -- the structural half of the estimate
   store's content address.

   Two circuits describing the same schematic must serialize (and so
   hash) identically however their builders interleaved net creation
   and device insertion.  Index-dependent state (net indices, device
   indices, pin arrays of net numbers) is therefore replaced by names:
   devices, nets and ports are each listed sorted by name (names are
   unique within a circuit, so the sort is a total order), and device
   pins reference nets by name in pin-position order (pin positions are
   structural: swapping a transistor's gate and drain is a different
   circuit). *)

let add_quoted buf s =
  Buffer.add_string buf (Printf.sprintf "%S" s)

let add_line buf fmt = Printf.ksprintf (fun s -> Buffer.add_string buf (s ^ "\n")) fmt

let to_string (c : Circuit.t) =
  let buf = Buffer.create 1024 in
  add_line buf "mae-canonical 1";
  add_line buf "circuit %S technology %S" c.name c.technology;
  let net_name i = (c.nets.(i) : Net.t).name in
  let devices =
    Array.to_list c.devices
    |> List.sort (fun (a : Device.t) (b : Device.t) ->
           String.compare a.name b.name)
  in
  List.iter
    (fun (d : Device.t) ->
      Buffer.add_string buf "device ";
      add_quoted buf d.name;
      Buffer.add_string buf " kind ";
      add_quoted buf d.kind;
      Buffer.add_string buf " pins";
      Array.iter
        (fun n ->
          Buffer.add_char buf ' ';
          add_quoted buf (net_name n))
        d.pins;
      Buffer.add_char buf '\n')
    devices;
  (* every net is listed, connected or not: a floating net is real
     structure (it contributes to H) and must change the hash *)
  let nets =
    Array.to_list c.nets
    |> List.map (fun (n : Net.t) -> n.name)
    |> List.sort String.compare
  in
  List.iter (fun n -> add_line buf "net %S" n) nets;
  let ports =
    Array.to_list c.ports
    |> List.sort (fun (a : Port.t) (b : Port.t) -> String.compare a.name b.name)
  in
  List.iter
    (fun (p : Port.t) ->
      add_line buf "port %S %s %S" p.name
        (Port.direction_to_string p.direction)
        (net_name p.net))
    ports;
  Buffer.contents buf

let digest c = Digest.to_hex (Digest.string (to_string c))
