(** Canonical circuit serialization and digest.

    The estimate store ({!Mae_db.Cas}) keys results by content: two
    structurally identical circuits -- same name, technology, devices,
    nets, ports and pin connectivity -- must produce the same key
    regardless of the order their builders created nets and devices in.
    This module renders a circuit into a normal form (devices, nets and
    ports sorted by name; pins referencing nets by name in pin order)
    and digests it. *)

val to_string : Circuit.t -> string
(** The canonical text.  Deterministic and construction-order
    independent; names are quoted so adversarial names cannot collide
    two different circuits onto one rendering. *)

val digest : Circuit.t -> string
(** Hex MD5 of {!to_string}.  Equal for structurally identical circuits;
    any structural mutation (adding/removing a device or net, rewiring a
    pin, renaming, changing a port direction) changes it. *)
