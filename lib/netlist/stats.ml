exception Unknown_kind of string

type t = {
  device_count : int;
  net_count : int;
  port_count : int;
  width_classes : (Mae_geom.Lambda.t * int) list;
  total_width : Mae_geom.Lambda.t;
  total_height : Mae_geom.Lambda.t;
  average_width : Mae_geom.Lambda.t;
  average_height : Mae_geom.Lambda.t;
  total_device_area : Mae_geom.Lambda.area;
  degree_histogram : (int * int) list;
  max_degree : int;
}

let kind_exn process name =
  match Mae_tech.Process.find_device process name with
  | Some k -> k
  | None -> raise (Unknown_kind name)

let device_kinds (c : Circuit.t) process =
  Array.map (fun (d : Device.t) -> kind_exn process d.kind) c.devices

let device_widths c process =
  Array.map (fun (k : Mae_tech.Device_kind.t) -> k.width) (device_kinds c process)

let device_areas c process =
  Array.map Mae_tech.Device_kind.area (device_kinds c process)

(* Merge adjacent width classes that share a width: distinct kind
   records may still carry equal widths, and the histogram is keyed by
   the width value. *)
let rec merge_equal_widths = function
  | (w1, c1) :: (w2, c2) :: rest when Float.compare w1 w2 = 0 ->
      merge_equal_widths ((w1, c1 + c2) :: rest)
  | p :: rest -> p :: merge_equal_widths rest
  | [] -> []

let compute (c : Circuit.t) process =
  (* This runs twice per module (original and transistor-expanded
     circuit) on the driver's hot path.  Devices share a handful of
     kind records, so widths are tallied per kind (physical equality)
     rather than sorting one float per device, and the degree histogram
     is a counting sort over net degrees.  Every float fold stays in
     device order, so the results are bit-for-bit what the
     straightforward sort-and-group produced. *)
  let kinds = device_kinds c process in
  let n = Array.length kinds in
  let total_width = ref 0. in
  let total_height = ref 0. in
  let total_device_area = ref 0. in
  (* distinct kind records in first-seen order; a process defines ~10,
     so a physical-equality scan beats any hashing *)
  let uniq : (Mae_tech.Device_kind.t * int ref) list ref = ref [] in
  for i = 0 to n - 1 do
    let k = Array.unsafe_get kinds i in
    total_width := !total_width +. k.Mae_tech.Device_kind.width;
    total_height := !total_height +. k.Mae_tech.Device_kind.height;
    total_device_area := !total_device_area +. Mae_tech.Device_kind.area k;
    match List.find_opt (fun (k', _) -> k' == k) !uniq with
    | Some (_, r) -> incr r
    | None -> uniq := (k, ref 1) :: !uniq
  done;
  let width_classes =
    List.map
      (fun ((k : Mae_tech.Device_kind.t), r) -> (k.width, !r))
      !uniq
    |> List.sort (fun (a, _) (b, _) -> Float.compare a b)
    |> merge_equal_widths
  in
  let average_width = if n = 0 then 0. else !total_width /. Float.of_int n in
  let average_height = if n = 0 then 0. else !total_height /. Float.of_int n in
  let net_count = Circuit.net_count c in
  let max_degree = ref 0 in
  let degs = Array.make (Stdlib.max 1 net_count) 0 in
  for i = 0 to net_count - 1 do
    let d = Circuit.degree c i in
    Array.unsafe_set degs i d;
    if d > !max_degree then max_degree := d
  done;
  let counts = Array.make (!max_degree + 1) 0 in
  for i = 0 to net_count - 1 do
    let d = Array.unsafe_get degs i in
    counts.(d) <- counts.(d) + 1
  done;
  let degree_histogram = ref [] in
  for d = !max_degree downto 1 do
    if counts.(d) > 0 then
      degree_histogram := (d, counts.(d)) :: !degree_histogram
  done;
  let degree_histogram = !degree_histogram in
  let max_degree = !max_degree in
  let total_device_area = !total_device_area in
  {
    device_count = n;
    net_count;
    port_count = Circuit.port_count c;
    width_classes;
    total_width = !total_width;
    total_height = !total_height;
    average_width;
    average_height;
    total_device_area;
    degree_histogram;
    max_degree;
  }

(* --- bitwise equality and incremental updates (the delta path) --- *)

let float_bits_equal a b =
  Int64.equal (Int64.bits_of_float a) (Int64.bits_of_float b)

let equal a b =
  a.device_count = b.device_count
  && a.net_count = b.net_count
  && a.port_count = b.port_count
  && List.length a.width_classes = List.length b.width_classes
  && List.for_all2
       (fun (w1, c1) (w2, c2) -> float_bits_equal w1 w2 && c1 = c2)
       a.width_classes b.width_classes
  && float_bits_equal a.total_width b.total_width
  && float_bits_equal a.total_height b.total_height
  && float_bits_equal a.average_width b.average_width
  && float_bits_equal a.average_height b.average_height
  && float_bits_equal a.total_device_area b.total_device_area
  && a.degree_histogram = b.degree_histogram
  && a.max_degree = b.max_degree

(* Insert one device of width [w] into the ascending width-class list,
   merging into an existing class when the width compares equal --
   exactly what sort-then-[merge_equal_widths] produces for the grown
   device set. *)
let rec insert_width w = function
  | [] -> [ (w, 1) ]
  | (w', x) :: rest ->
      let c = Float.compare w w' in
      if c = 0 then (w', x + 1) :: rest
      else if c < 0 then (w, 1) :: (w', x) :: rest
      else (w', x) :: insert_width w rest

(* Re-key the degree histogram after a set of per-net degree
   transitions.  Degree-0 buckets never appear (matching [compute]);
   max_degree is re-derived as the largest populated bucket. *)
let apply_degree_transitions hist transitions =
  let tbl = Hashtbl.create 16 in
  List.iter (fun (d, y) -> Hashtbl.replace tbl d y) hist;
  let bump d delta =
    if d >= 1 then begin
      let y = (match Hashtbl.find_opt tbl d with Some y -> y | None -> 0) + delta in
      if y < 0 then invalid_arg "Stats.apply_degree_transitions: negative bucket";
      if y = 0 then Hashtbl.remove tbl d else Hashtbl.replace tbl d y
    end
  in
  List.iter
    (fun (before, after) ->
      bump before (-1);
      bump after 1)
    transitions;
  let hist' =
    Hashtbl.fold (fun d y acc -> (d, y) :: acc) tbl []
    |> List.sort (fun (a, _) (b, _) -> Stdlib.compare a b)
  in
  let max' = List.fold_left (fun m (d, _) -> Stdlib.max m d) 0 hist' in
  (hist', max')

let add_device_delta t ~(kind : Mae_tech.Device_kind.t) ~net_count
    ~net_transitions =
  (* [compute]'s float folds visit devices in index order, and an added
     device is always appended last, so extending each running total by
     one term reproduces the full fold bit for bit. *)
  let n = t.device_count + 1 in
  let total_width = t.total_width +. kind.width in
  let total_height = t.total_height +. kind.height in
  let total_device_area =
    t.total_device_area +. Mae_tech.Device_kind.area kind
  in
  let degree_histogram, max_degree =
    apply_degree_transitions t.degree_histogram net_transitions
  in
  {
    device_count = n;
    net_count;
    port_count = t.port_count;
    width_classes = insert_width kind.width t.width_classes;
    total_width;
    total_height;
    average_width = total_width /. Float.of_int n;
    average_height = total_height /. Float.of_int n;
    total_device_area;
    degree_histogram;
    max_degree;
  }

let with_net_count t ~net_count = { t with net_count }

let pp ppf t =
  Format.fprintf ppf
    "@[<v>N=%d H=%d ports=%d W_avg=%.2fL h_avg=%.2fL cell_area=%.0fL^2@ \
     degrees: %a@]"
    t.device_count t.net_count t.port_count t.average_width t.average_height
    t.total_device_area
    (Format.pp_print_list
       ~pp_sep:(fun ppf () -> Format.fprintf ppf ", ")
       (fun ppf (d, y) -> Format.fprintf ppf "D=%d x%d" d y))
    t.degree_histogram
