(** Scans a circuit schematic for the quantities the estimator consumes.

    These are exactly the parameters listed in section 4 of the paper:
    N (devices), H (nets), W_i and X_i (distinct device widths and their
    multiplicities), W_avg (equation 1), and y_i (the net-degree
    histogram). *)

exception Unknown_kind of string
(** Raised when a device's kind is not present in the process. *)

type t = {
  device_count : int;  (** N *)
  net_count : int;  (** H *)
  port_count : int;
  width_classes : (Mae_geom.Lambda.t * int) list;
      (** (W_i, X_i) pairs, widths ascending: X_i devices share width W_i *)
  total_width : Mae_geom.Lambda.t;
      (** running sum of device widths, kept so the delta path can extend
          the fold exactly *)
  total_height : Mae_geom.Lambda.t;  (** running sum of device heights *)
  average_width : Mae_geom.Lambda.t;  (** W_avg, equation (1) *)
  average_height : Mae_geom.Lambda.t;  (** h_avg, used by equation (13) *)
  total_device_area : Mae_geom.Lambda.area;
      (** sum of exact device areas ("active cell area") *)
  degree_histogram : (int * int) list;
      (** (D, y_D) pairs, D ascending: y_D nets have exactly D components;
          only nets with D >= 1 appear *)
  max_degree : int;  (** 0 for a circuit with no connected nets *)
}

val compute : Circuit.t -> Mae_tech.Process.t -> t
(** Raises {!Unknown_kind} when the schematic references a device kind the
    process does not define. *)

val device_widths : Circuit.t -> Mae_tech.Process.t -> Mae_geom.Lambda.t array
(** Per-device width, indexed by device index.  Raises {!Unknown_kind}. *)

val device_areas : Circuit.t -> Mae_tech.Process.t -> Mae_geom.Lambda.area array
(** Per-device exact area.  Raises {!Unknown_kind}. *)

val equal : t -> t -> bool
(** Bitwise equality: every float field is compared by its IEEE bit
    pattern ([Int64.bits_of_float]), so [equal] holding between an
    incrementally updated stats and a fresh {!compute} means downstream
    estimates are bit-for-bit identical. *)

val add_device_delta :
  t ->
  kind:Mae_tech.Device_kind.t ->
  net_count:int ->
  net_transitions:(int * int) list ->
  t
(** Extend a stats record by one appended device without rescanning the
    circuit.  [kind] is the resolved kind of the new device, [net_count]
    the net count {e after} the edit, and [net_transitions] one
    [(degree_before, degree_after)] pair per distinct net the device
    pins (degree 0 = the net did not exist or was floating).

    Exactness: {!compute}'s float folds visit devices in index order and
    an added device is appended last, so extending each total by one
    term reproduces the full fold bit for bit; the result satisfies
    [equal (add_device_delta ...) (compute grown_circuit process)]. *)

val with_net_count : t -> net_count:int -> t
(** The stats with the net count replaced -- the whole delta for adding
    or removing a floating net (a degree-0 net appears in no histogram
    bucket and contributes nothing to any float fold). *)

val pp : Format.formatter -> t -> unit
