type issue =
  | Unknown_device_kind of { device : string; kind : string }
  | Dangling_net of { net : string }
  | Single_pin_net of { net : string }
  | Unconnected_device of { device : string }
  | No_devices
  | No_ports

let is_error = function
  | Unknown_device_kind _ | No_devices -> true
  | Dangling_net _ | Single_pin_net _ | Unconnected_device _ | No_ports -> false

let check (c : Circuit.t) process =
  let issues = ref [] in
  let add i = issues := i :: !issues in
  if Circuit.device_count c = 0 then add No_devices;
  if Circuit.port_count c = 0 then add No_ports;
  Array.iter
    (fun (d : Device.t) ->
      if Option.is_none (Mae_tech.Process.find_device process d.kind) then
        add (Unknown_device_kind { device = d.name; kind = d.kind });
      if Array.length d.pins = 0 then add (Unconnected_device { device = d.name }))
    c.devices;
  (* one boolean mask instead of [Circuit.is_port_net] per net: the
     latter scans every port, turning this loop O(nets * ports) on a
     path the driver runs for every module *)
  let port_mask = Array.make (Circuit.net_count c) false in
  Array.iter (fun (p : Port.t) -> port_mask.(p.net) <- true) c.ports;
  Array.iter
    (fun (n : Net.t) ->
      let deg = Circuit.degree c n.index in
      let has_port = port_mask.(n.index) in
      if deg = 0 && not has_port then add (Dangling_net { net = n.name })
      else if deg = 1 && not has_port then add (Single_pin_net { net = n.name }))
    c.nets;
  List.stable_sort
    (fun a b -> Bool.compare (is_error b) (is_error a))
    (List.rev !issues)

let pp_issue ppf = function
  | Unknown_device_kind { device; kind } ->
      Format.fprintf ppf "error: device %s uses unknown kind %s" device kind
  | Dangling_net { net } -> Format.fprintf ppf "warning: net %s is dangling" net
  | Single_pin_net { net } ->
      Format.fprintf ppf "warning: net %s has a single pin" net
  | Unconnected_device { device } ->
      Format.fprintf ppf "warning: device %s has no pins" device
  | No_devices -> Format.fprintf ppf "error: circuit has no devices"
  | No_ports -> Format.fprintf ppf "warning: circuit has no ports"
