type capture = {
  cap_rid : string;
  cap_kind : [ `Errored | `Slow ];
  cap_wall : float;
  cap_latency : float;
  cap_gc_s : float;
  cap_error : string option;
  cap_spans : Span.event list;
}

(* One mutex guards the whole store: [record] runs once per finished
   request and [captures] once per scrape, so contention is nil. *)
let lock = Mutex.create ()

type state = {
  mutable slow_k : int;
  mutable errored_cap : int;
  mutable max_spans : int;
  mutable window_s : float;
  mutable errored : capture list;  (* newest first, length <= errored_cap *)
  mutable errored_n : int;
  mutable slow_cur : capture list;  (* current window, length <= slow_k *)
  mutable slow_prev : capture list;  (* previous window *)
  mutable window_start : float;  (* monotonic *)
  mutable resident : int;  (* total spans across all stored captures *)
}

let st =
  {
    slow_k = 8;
    errored_cap = 32;
    max_spans = 256;
    window_s = 60.;
    errored = [];
    errored_n = 0;
    slow_cur = [];
    slow_prev = [];
    window_start = Clock.monotonic ();
    resident = 0;
  }

let clear_locked () =
  st.errored <- [];
  st.errored_n <- 0;
  st.slow_cur <- [];
  st.slow_prev <- [];
  st.window_start <- Clock.monotonic ();
  st.resident <- 0

let clear () =
  Mutex.lock lock;
  clear_locked ();
  Mutex.unlock lock

let configure ?(slow_k = 8) ?(errored_cap = 32) ?(max_spans = 256)
    ?(window_s = 60.) () =
  if slow_k < 1 || errored_cap < 1 || max_spans < 1 || not (window_s > 0.)
  then invalid_arg "Mae_obs.Capture.configure: non-positive parameter";
  Mutex.lock lock;
  st.slow_k <- slow_k;
  st.errored_cap <- errored_cap;
  st.max_spans <- max_spans;
  st.window_s <- window_s;
  clear_locked ();
  Mutex.unlock lock

let max_resident_spans () =
  Mutex.lock lock;
  let v = (st.errored_cap + (2 * st.slow_k)) * st.max_spans in
  Mutex.unlock lock;
  v

let resident_spans () =
  Mutex.lock lock;
  let v = st.resident in
  Mutex.unlock lock;
  v

let truncate n l =
  let rec go acc n = function
    | x :: rest when n > 0 -> go (x :: acc) (n - 1) rest
    | _ -> List.rev acc
  in
  go [] n l

(* Caller holds the lock. *)
let rotate_if_due now =
  if now -. st.window_start >= st.window_s then begin
    List.iter (fun c -> st.resident <- st.resident - List.length c.cap_spans)
      st.slow_prev;
    st.slow_prev <- st.slow_cur;
    st.slow_cur <- [];
    st.window_start <- now
  end

let record ~rid ~ok ?error ?(gc_s = 0.) ~latency ~since () =
  Mutex.lock lock;
  let now = Clock.monotonic () in
  rotate_if_due now;
  (* Decide cheaply whether this request is a keeper before paying for
     the span gather. *)
  let keep_slow =
    ok
    && (List.length st.slow_cur < st.slow_k
       || List.exists (fun c -> latency > c.cap_latency) st.slow_cur)
  in
  if (not ok) || keep_slow then begin
    let spans = truncate st.max_spans (Span.events_since since) in
    let cap =
      {
        cap_rid = rid;
        cap_kind = (if ok then `Slow else `Errored);
        cap_wall = Clock.wall ();
        cap_latency = latency;
        cap_gc_s = gc_s;
        cap_error = error;
        cap_spans = spans;
      }
    in
    st.resident <- st.resident + List.length spans;
    if not ok then begin
      st.errored <- cap :: st.errored;
      st.errored_n <- st.errored_n + 1;
      if st.errored_n > st.errored_cap then begin
        let kept = truncate st.errored_cap st.errored in
        let dropped = List.nth st.errored st.errored_cap in
        st.resident <- st.resident - List.length dropped.cap_spans;
        st.errored <- kept;
        st.errored_n <- st.errored_cap
      end
    end
    else begin
      let cur = cap :: st.slow_cur in
      if List.length cur <= st.slow_k then st.slow_cur <- cur
      else begin
        (* evict the fastest of the k+1 *)
        let sorted =
          List.sort (fun a b -> Float.compare b.cap_latency a.cap_latency) cur
        in
        let kept = truncate st.slow_k sorted in
        let dropped = List.nth sorted st.slow_k in
        st.resident <- st.resident - List.length dropped.cap_spans;
        st.slow_cur <- kept
      end
    end
  end;
  Mutex.unlock lock

let captures () =
  Mutex.lock lock;
  rotate_if_due (Clock.monotonic ());
  let by_latency =
    List.sort (fun a b -> Float.compare b.cap_latency a.cap_latency)
  in
  let r = st.errored @ by_latency st.slow_prev @ by_latency st.slow_cur in
  Mutex.unlock lock;
  r
