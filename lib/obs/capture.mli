(** Tail-based trace capture: keep the span trees that matter.

    Blanket span retention keeps a rolling window of {e everything},
    which at serve volumes means the interesting trace -- the request
    that blew p99.9 half an hour ago -- is long gone while thousands
    of identical fast traces sit resident.  This store inverts the
    policy: after each request the serve plane offers its span tree
    here, and the store keeps only

    - every errored request, in a bounded FIFO ring, and
    - the slowest-k requests of the current and previous rotation
      windows (two windows so a scrape just after rotation still sees
      the recent tail).

    Everything else is dropped immediately, so resident span count is
    bounded by {!max_resident_spans} regardless of load.  Each capture
    carries the request id that latency-sketch exemplars reference, so
    /metrics and /tracez cross-link. *)

type capture = {
  cap_rid : string;  (** request id, the exemplar label *)
  cap_kind : [ `Errored | `Slow ];
  cap_wall : float;  (** wall-clock completion timestamp *)
  cap_latency : float;  (** seconds *)
  cap_gc_s : float;
      (** GC pause seconds that landed inside the request window, as
          reported by the runtime lens; [0.] when the lens is off *)
  cap_error : string option;
  cap_spans : Span.event list;  (** ascending ts, truncated to the cap *)
}

val configure :
  ?slow_k:int -> ?errored_cap:int -> ?max_spans:int -> ?window_s:float ->
  unit -> unit
(** Set the retention shape (defaults: slow_k 8, errored_cap 32,
    max_spans 256, window_s 60) and clear the store.  Raises
    [Invalid_argument] on non-positive values. *)

val record :
  rid:string -> ok:bool -> ?error:string -> ?gc_s:float -> latency:float ->
  since:float -> unit -> unit
(** Offer the request that just finished: gathers
    [Span.events_since since] (its span tree -- serve finishes each
    request, workers joined, before calling this), then keeps or drops
    it per the policy above.  [since] is the request's
    {!Clock.monotonic} start.  [gc_s] tags the capture with the GC
    pause time that fell inside the request (default [0.]). *)

val captures : unit -> capture list
(** Errored ring (newest first) followed by the slow captures of the
    previous and current windows (slowest first). *)

val resident_spans : unit -> int
(** Spans currently held across all captures. *)

val max_resident_spans : unit -> int
(** The configured bound:
    [(errored_cap + 2 * slow_k) * max_spans]. *)

val clear : unit -> unit
