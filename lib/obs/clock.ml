external monotonic_seconds : unit -> float = "mae_obs_monotonic_seconds"

let monotonic () = monotonic_seconds ()
let wall = Unix.gettimeofday

(* Offset sampled once at startup: wall readings drift / step relative
   to the monotonic clock, but for display purposes (trace timestamps,
   statusz uptimes) a fixed offset is exactly what we want -- converted
   timestamps keep the monotonic ordering. *)
let epoch_wall = wall ()
let epoch_mono = monotonic ()
let wall_of_monotonic m = epoch_wall +. (m -. epoch_mono)
