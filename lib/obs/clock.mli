(** Time sources for the observability layer.

    Every latency / duration measurement in the pipeline uses
    {!monotonic}: a clock that never steps backwards when NTP adjusts
    the system time, so histograms, sketches and BENCH_history deltas
    can't record negative or wildly inflated durations.  Wall-clock
    time ({!wall}) remains the source for human-facing timestamps
    (log records, Chrome-trace epoch offsets, bench history entries).

    The monotonic epoch is arbitrary (typically boot time); only
    differences are meaningful.  {!wall_of_monotonic} converts a
    monotonic reading to an approximate wall-clock timestamp using the
    offset sampled at module initialization -- good enough for
    display, not for ordering against other hosts. *)

val monotonic : unit -> float
(** Seconds from an arbitrary fixed origin; never decreases.  Backed
    by [clock_gettime(CLOCK_MONOTONIC)] via a C stub. *)

val wall : unit -> float
(** Seconds since the Unix epoch ([Unix.gettimeofday]). *)

val wall_of_monotonic : float -> float
(** Map a {!monotonic} reading to an approximate epoch timestamp
    using the wall/monotonic offset captured at startup. *)
