/* Monotonic clock primitive for Mae_obs.Clock.
 *
 * OCaml 5.1's Unix library does not expose clock_gettime, and latency
 * accounting must not go backwards when NTP steps the wall clock, so
 * we bind CLOCK_MONOTONIC directly.  Falls back to gettimeofday on
 * platforms without POSIX timers (none we target, but the fallback
 * keeps the build portable).
 */

#include <caml/mlvalues.h>
#include <caml/alloc.h>

#ifdef _WIN32
#include <windows.h>

CAMLprim value mae_obs_monotonic_seconds(value unit)
{
  (void)unit;
  static LARGE_INTEGER freq;
  LARGE_INTEGER now;
  if (freq.QuadPart == 0)
    QueryPerformanceFrequency(&freq);
  QueryPerformanceCounter(&now);
  return caml_copy_double((double)now.QuadPart / (double)freq.QuadPart);
}

#else
#include <time.h>
#include <sys/time.h>

CAMLprim value mae_obs_monotonic_seconds(value unit)
{
  (void)unit;
#if defined(CLOCK_MONOTONIC)
  struct timespec ts;
  if (clock_gettime(CLOCK_MONOTONIC, &ts) == 0)
    return caml_copy_double((double)ts.tv_sec + (double)ts.tv_nsec * 1e-9);
#endif
  struct timeval tv;
  gettimeofday(&tv, NULL);
  return caml_copy_double((double)tv.tv_sec + (double)tv.tv_usec * 1e-6);
}
#endif
