(* The single global telemetry switch.

   Every instrumented code path pays exactly one [Atomic.get] when
   telemetry is off -- that read is the whole no-op fast path, and the
   bench assertion in bench/obs_smoke.ml holds the pipeline to it.
   Metric counters (plain atomics) stay live even when the switch is
   off: they cost the same as the hand-rolled ints they replaced and
   the engine's [--stats] output depends on them unconditionally. *)

let enabled_flag = Atomic.make false

let set_enabled b = Atomic.set enabled_flag b
let enabled () = Atomic.get enabled_flag

let with_enabled b f =
  let before = Atomic.get enabled_flag in
  Atomic.set enabled_flag b;
  Fun.protect ~finally:(fun () -> Atomic.set enabled_flag before) f
