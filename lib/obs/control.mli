(** The global telemetry switch shared by spans and latency metrics.

    Off by default: an instrumented code path then costs one atomic
    read.  Flip it from one domain only, while no instrumented work is
    in flight (the batch engine reads it concurrently). *)

val set_enabled : bool -> unit
val enabled : unit -> bool

val with_enabled : bool -> (unit -> 'a) -> 'a
(** Run a thunk with the switch forced to the given state, restoring
    the previous state afterwards (also on exceptions). *)
