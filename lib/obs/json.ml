(* A minimal JSON reader/escaper so the telemetry artifacts can be
   emitted and checked without an external dependency.  The writer side
   of Mae_obs builds its documents with Buffer + [escape]; the reader is
   a plain recursive-descent parser over the full JSON grammar, used by
   the test suite and the @obs-smoke gate to assert that exported traces
   and metric dumps are well formed. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

(* --- escaping (the writer side) --- *)

let escape s =
  let buf = Buffer.create (String.length s + 2) in
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"';
  Buffer.contents buf

(* --- writing --- *)

(* Integer-valued floats print without a decimal point (counter values,
   request ids); everything else gets enough digits to round-trip. *)
let number_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.17g" v

let rec write buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Number v -> Buffer.add_string buf (number_repr v)
  | String s -> Buffer.add_string buf (escape s)
  | Array l ->
      Buffer.add_char buf '[';
      List.iteri
        (fun i v ->
          if i > 0 then Buffer.add_string buf ", ";
          write buf v)
        l;
      Buffer.add_char buf ']'
  | Object fields ->
      Buffer.add_char buf '{';
      List.iteri
        (fun i (k, v) ->
          if i > 0 then Buffer.add_string buf ", ";
          Buffer.add_string buf (escape k);
          Buffer.add_string buf ": ";
          write buf v)
        fields;
      Buffer.add_char buf '}'

let encode v =
  let buf = Buffer.create 256 in
  write buf v;
  Buffer.contents buf

(* --- parsing --- *)

exception Parse_failure of string

type cursor = { text : string; mutable pos : int }

let fail cur msg =
  raise (Parse_failure (Printf.sprintf "%s at offset %d" msg cur.pos))

let peek cur = if cur.pos < String.length cur.text then Some cur.text.[cur.pos] else None

let advance cur = cur.pos <- cur.pos + 1

let skip_ws cur =
  while
    match peek cur with
    | Some (' ' | '\t' | '\n' | '\r') ->
        advance cur;
        true
    | _ -> false
  do
    ()
  done

let expect cur c =
  match peek cur with
  | Some x when Char.equal x c -> advance cur
  | _ -> fail cur (Printf.sprintf "expected %C" c)

let literal cur word value =
  let n = String.length word in
  if
    cur.pos + n <= String.length cur.text
    && String.equal (String.sub cur.text cur.pos n) word
  then begin
    cur.pos <- cur.pos + n;
    value
  end
  else fail cur (Printf.sprintf "expected %s" word)

let add_utf8 buf code =
  (* encode a BMP code point; surrogate pairs are rejoined by the
     caller before reaching here. *)
  if code < 0x80 then Buffer.add_char buf (Char.chr code)
  else if code < 0x800 then begin
    Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else if code < 0x10000 then begin
    Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end
  else begin
    Buffer.add_char buf (Char.chr (0xF0 lor (code lsr 18)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 12) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
    Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
  end

let hex4 cur =
  if cur.pos + 4 > String.length cur.text then fail cur "truncated \\u escape";
  let v = ref 0 in
  for _ = 1 to 4 do
    let c = cur.text.[cur.pos] in
    let d =
      match c with
      | '0' .. '9' -> Char.code c - Char.code '0'
      | 'a' .. 'f' -> Char.code c - Char.code 'a' + 10
      | 'A' .. 'F' -> Char.code c - Char.code 'A' + 10
      | _ -> fail cur "bad hex digit in \\u escape"
    in
    v := (!v * 16) + d;
    advance cur
  done;
  !v

let parse_string_body cur =
  expect cur '"';
  let buf = Buffer.create 16 in
  let rec go () =
    match peek cur with
    | None -> fail cur "unterminated string"
    | Some '"' -> advance cur
    | Some '\\' -> begin
        advance cur;
        begin
          match peek cur with
          | Some '"' -> advance cur; Buffer.add_char buf '"'
          | Some '\\' -> advance cur; Buffer.add_char buf '\\'
          | Some '/' -> advance cur; Buffer.add_char buf '/'
          | Some 'b' -> advance cur; Buffer.add_char buf '\b'
          | Some 'f' -> advance cur; Buffer.add_char buf '\012'
          | Some 'n' -> advance cur; Buffer.add_char buf '\n'
          | Some 'r' -> advance cur; Buffer.add_char buf '\r'
          | Some 't' -> advance cur; Buffer.add_char buf '\t'
          | Some 'u' ->
              advance cur;
              let hi = hex4 cur in
              if hi >= 0xD800 && hi <= 0xDBFF then begin
                (* high surrogate: a low surrogate must follow *)
                expect cur '\\';
                expect cur 'u';
                let lo = hex4 cur in
                if lo < 0xDC00 || lo > 0xDFFF then
                  fail cur "unpaired surrogate";
                add_utf8 buf
                  (0x10000 + ((hi - 0xD800) lsl 10) + (lo - 0xDC00))
              end
              else if hi >= 0xDC00 && hi <= 0xDFFF then
                fail cur "unpaired surrogate"
              else add_utf8 buf hi
          | _ -> fail cur "bad escape"
        end;
        go ()
      end
    | Some c when Char.code c < 0x20 -> fail cur "raw control char in string"
    | Some c ->
        advance cur;
        Buffer.add_char buf c;
        go ()
  in
  go ();
  Buffer.contents buf

let parse_number cur =
  let start = cur.pos in
  let accept f =
    match peek cur with Some c when f c -> advance cur; true | _ -> false
  in
  let digits () =
    let any = ref false in
    while accept (function '0' .. '9' -> true | _ -> false) do
      any := true
    done;
    !any
  in
  ignore (accept (Char.equal '-'));
  if not (digits ()) then fail cur "expected digits";
  if accept (Char.equal '.') && not (digits ()) then
    fail cur "expected fraction digits";
  if accept (fun c -> c = 'e' || c = 'E') then begin
    ignore (accept (fun c -> c = '+' || c = '-'));
    if not (digits ()) then fail cur "expected exponent digits"
  end;
  match float_of_string_opt (String.sub cur.text start (cur.pos - start)) with
  | Some f -> Number f
  | None -> fail cur "unparseable number"

let rec parse_value cur =
  skip_ws cur;
  match peek cur with
  | None -> fail cur "unexpected end of input"
  | Some '{' -> parse_object cur
  | Some '[' -> parse_array cur
  | Some '"' -> String (parse_string_body cur)
  | Some 't' -> literal cur "true" (Bool true)
  | Some 'f' -> literal cur "false" (Bool false)
  | Some 'n' -> literal cur "null" Null
  | Some ('-' | '0' .. '9') -> parse_number cur
  | Some c -> fail cur (Printf.sprintf "unexpected %C" c)

and parse_object cur =
  expect cur '{';
  skip_ws cur;
  if peek cur = Some '}' then begin
    advance cur;
    Object []
  end
  else begin
    let rec members acc =
      skip_ws cur;
      let key = parse_string_body cur in
      skip_ws cur;
      expect cur ':';
      let v = parse_value cur in
      skip_ws cur;
      match peek cur with
      | Some ',' ->
          advance cur;
          members ((key, v) :: acc)
      | Some '}' ->
          advance cur;
          Object (List.rev ((key, v) :: acc))
      | _ -> fail cur "expected ',' or '}'"
    in
    members []
  end

and parse_array cur =
  expect cur '[';
  skip_ws cur;
  if peek cur = Some ']' then begin
    advance cur;
    Array []
  end
  else begin
    let rec elements acc =
      let v = parse_value cur in
      skip_ws cur;
      match peek cur with
      | Some ',' ->
          advance cur;
          elements (v :: acc)
      | Some ']' ->
          advance cur;
          Array (List.rev (v :: acc))
      | _ -> fail cur "expected ',' or ']'"
    in
    elements []
  end

let parse text =
  let cur = { text; pos = 0 } in
  match parse_value cur with
  | v ->
      skip_ws cur;
      if cur.pos <> String.length text then
        Error (Printf.sprintf "trailing garbage at offset %d" cur.pos)
      else Ok v
  | exception Parse_failure msg -> Error msg

(* --- accessors --- *)

let member key = function
  | Object fields -> List.assoc_opt key fields
  | _ -> None

let to_list = function Array l -> Some l | _ -> None
let to_string = function String s -> Some s | _ -> None
let to_number = function Number f -> Some f | _ -> None
