(** Dependency-free JSON support for the telemetry artifacts.

    The exporters in {!Trace} and {!Metrics} build their documents with
    [Buffer] and {!escape}; this module's parser lets tests and the
    [@obs-smoke] gate check those artifacts are well formed without
    pulling a JSON library into the build. *)

type t =
  | Null
  | Bool of bool
  | Number of float
  | String of string
  | Array of t list
  | Object of (string * t) list

val escape : string -> string
(** [escape s] is [s] as a quoted JSON string literal (quotes
    included), with control characters, backslashes and quotes
    escaped. *)

val write : Buffer.t -> t -> unit
(** Append the compact one-line encoding of a document to a buffer.
    Integer-valued numbers print without a decimal point; other floats
    round-trip. *)

val encode : t -> string
(** {!write} into a fresh string.  [parse (encode v)] is [Ok v] for
    any [v] whose numbers survive float round-tripping. *)

val parse : string -> (t, string) result
(** Full-grammar JSON parser (objects, arrays, numbers, escapes
    including surrogate pairs).  Rejects trailing garbage. *)

val member : string -> t -> t option
(** First field of that name, when the value is an object. *)

val to_list : t -> t list option
val to_string : t -> string option
val to_number : t -> float option
