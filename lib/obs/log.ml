(* Structured JSON-lines logger.

   One record per line, one [Atomic.get] per call site when the record
   is below the threshold -- the same no-op discipline as spans.  The
   serve daemon points the sink at its access log and every request
   becomes one [serve.request] record; the driver and engine emit
   debug/info records through the same sink, all carrying the request
   id installed by [with_request_id] on the emitting domain.

   The sink is mutex-protected and flushed per record, so concurrent
   domains never interleave partial lines and a tail -f (or the
   @serve-smoke gate) always sees whole records. *)

type level = Debug | Info | Warn | Error

let level_int = function Debug -> 0 | Info -> 1 | Warn -> 2 | Error -> 3

let level_name = function
  | Debug -> "debug"
  | Info -> "info"
  | Warn -> "warn"
  | Error -> "error"

let level_of_string = function
  | "debug" -> Some Debug
  | "info" -> Some Info
  | "warn" | "warning" -> Some Warn
  | "error" -> Some Error
  | _ -> None

(* 4 = above Error: everything disabled.  Default: off -- `mae estimate`
   must stay bit-for-bit silent unless logging is asked for. *)
let threshold = Atomic.make 4

let set_threshold = function
  | None -> Atomic.set threshold 4
  | Some l -> Atomic.set threshold (level_int l)

let current_threshold () =
  match Atomic.get threshold with
  | 0 -> Some Debug
  | 1 -> Some Info
  | 2 -> Some Warn
  | 3 -> Some Error
  | _ -> None

let enabled l = level_int l >= Atomic.get threshold

(* --- sink --- *)

type sink = Stderr | Channel of out_channel

let sink_lock = Mutex.create ()
let sink = ref Stderr
let owned = ref None  (* channel we opened ourselves, closed on retarget *)

let close_owned () =
  match !owned with
  | None -> ()
  | Some oc ->
      close_out_noerr oc;
      owned := None

let set_sink_channel oc =
  Mutex.lock sink_lock;
  close_owned ();
  sink := Channel oc;
  Mutex.unlock sink_lock

let set_sink_stderr () =
  Mutex.lock sink_lock;
  close_owned ();
  sink := Stderr;
  Mutex.unlock sink_lock

let set_sink_file path =
  match open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path with
  | oc ->
      Mutex.lock sink_lock;
      close_owned ();
      owned := Some oc;
      sink := Channel oc;
      Mutex.unlock sink_lock;
      Ok ()
  | exception Sys_error msg -> Error msg

let close () =
  Mutex.lock sink_lock;
  close_owned ();
  sink := Stderr;
  Mutex.unlock sink_lock

(* --- request-id scope --- *)

let request_id_key = Domain.DLS.new_key (fun () -> None)

let with_request_id id f =
  let before = Domain.DLS.get request_id_key in
  Domain.DLS.set request_id_key (Some id);
  Fun.protect
    ~finally:(fun () -> Domain.DLS.set request_id_key before)
    f

let current_request_id () = Domain.DLS.get request_id_key

(* --- records --- *)

type value = Str of string | Int of int | Float of float | Bool of bool

let json_of_value = function
  | Str s -> Json.String s
  | Int i -> Json.Number (Float.of_int i)
  | Float f -> Json.Number f
  | Bool b -> Json.Bool b

let emit level ~event fields =
  if enabled level then begin
    let base =
      [
        ("ts", Json.Number (Unix.gettimeofday ()));
        ("level", Json.String (level_name level));
        ("event", Json.String event);
      ]
    in
    let rid =
      match current_request_id () with
      | None -> []
      | Some id -> [ ("request_id", Json.String id) ]
    in
    let doc =
      Json.Object
        (base @ rid @ List.map (fun (k, v) -> (k, json_of_value v)) fields)
    in
    let line =
      let buf = Buffer.create 160 in
      Json.write buf doc;
      Buffer.add_char buf '\n';
      Buffer.contents buf
    in
    Mutex.lock sink_lock;
    let oc = match !sink with Stderr -> stderr | Channel oc -> oc in
    (try
       output_string oc line;
       flush oc
     with Sys_error _ -> ());
    Mutex.unlock sink_lock
  end

let debug ~event fields = emit Debug ~event fields
let info ~event fields = emit Info ~event fields
let warn ~event fields = emit Warn ~event fields
let error ~event fields = emit Error ~event fields
