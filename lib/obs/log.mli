(** Structured, leveled, JSON-lines logging.

    Each record is one line of JSON with [ts] (epoch seconds), [level],
    [event], the emitting domain's request id (when inside
    {!with_request_id}) and the caller's typed fields.  A call below
    the threshold costs a single atomic read -- the same disabled-path
    discipline as {!Span.with_}.

    Logging is {e off} by default: [mae estimate] output stays
    bit-for-bit identical to the un-logged pipeline unless a threshold
    is installed.  The serve daemon sets [Some Info] and points the
    sink at its access log. *)

type level = Debug | Info | Warn | Error

val level_name : level -> string
val level_of_string : string -> level option
(** Accepts ["debug"], ["info"], ["warn"]/["warning"], ["error"]. *)

val set_threshold : level option -> unit
(** [Some l] enables records at [l] and above; [None] (the default)
    disables all logging. *)

val current_threshold : unit -> level option
val enabled : level -> bool
(** One atomic read; instrumentation may gate field construction on it. *)

(** {1 Sink}

    One process-global sink, mutex-protected, flushed per record so
    concurrent domains never interleave partial lines. *)

val set_sink_stderr : unit -> unit
(** The default sink. *)

val set_sink_channel : out_channel -> unit
(** Log to a channel the caller owns (it is never closed here). *)

val set_sink_file : string -> (unit, string) result
(** Open [path] in append mode and log there; the channel is owned by
    the logger and closed when the sink is next retargeted or
    {!close}d. *)

val close : unit -> unit
(** Close an owned file sink and fall back to stderr. *)

(** {1 Request-id scope} *)

val with_request_id : string -> (unit -> 'a) -> 'a
(** Install a request id for the calling domain; every record emitted
    inside the thunk (on this domain) carries it as ["request_id"]. *)

val current_request_id : unit -> string option

(** {1 Emitting} *)

type value = Str of string | Int of int | Float of float | Bool of bool

val debug : event:string -> (string * value) list -> unit
val info : event:string -> (string * value) list -> unit
val warn : event:string -> (string * value) list -> unit
val error : event:string -> (string * value) list -> unit
