(* Mae_obs: the in-pipeline observability layer.

   Three pieces, one switch:

   - {!Span}: nested per-domain timed spans ([Span.with_ ~name f]),
     recorded into lock-free-per-domain buffers and exported by
     {!Trace} as Chrome trace-event JSON (one lane per domain) or a
     plain-text flame summary.
   - {!Metrics}: named counters, gauges and log-bucketed latency
     histograms with Prometheus-text and JSON dumps.  Counters and
     gauges are always live; they back [Kernel_cache.stats] and the
     engine's [--stats] line.
   - {!Sketch}: mergeable GK quantile summaries (true p50/p99/p999,
     no bucket edges) with per-domain buffers and request-id
     exemplars; rides along in every /metrics dump.
   - {!Slo}: declarative latency / error-rate objectives with
     fast+slow rolling burn-rate windows; backs GET /slo, /statusz
     and the /healthz 503 degradation.
   - {!Capture}: tail-based trace retention -- full span trees kept
     only for errored and slowest-k requests, bounded memory.
   - {!Clock}: monotonic time for every duration measurement; wall
     clock only for display timestamps.
   - {!Log}: leveled JSON-lines structured logging with request-id
     scoping; the serve daemon's access log.  Off by default, and a
     single atomic check per disabled call site, like spans.
   - {!Runtime}: the runtime lens -- a self-monitoring Runtime_events
     consumer that attributes GC pauses, collections and allocation
     pressure per domain (sketches on /metrics, gc.* spans in traces,
     GET /runtimez), with {!Procstat} process gauges from /proc.
     Explicitly started; a single atomic check when off.
   - {!Control} (re-exported below): the single [enabled] flag.  With
     telemetry off, every instrumented code path costs one atomic
     read -- the @obs-smoke bench holds the pipeline to that.

   The library depends on nothing outside the compiler distribution
   (stdlib + unix for the wall clock + runtime_events for the GC
   lens). *)

module Control = Control
module Clock = Clock
module Span = Span
module Metrics = Metrics
module Sketch = Sketch
module Slo = Slo
module Capture = Capture
module Trace = Trace
module Json = Json
module Log = Log
module Runtime = Runtime
module Procstat = Procstat

let enabled = Control.enabled
let set_enabled = Control.set_enabled
let with_enabled = Control.with_enabled

let reset () =
  Span.reset ();
  Metrics.reset_values ()
