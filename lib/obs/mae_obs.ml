(* Mae_obs: the in-pipeline observability layer.

   Three pieces, one switch:

   - {!Span}: nested per-domain timed spans ([Span.with_ ~name f]),
     recorded into lock-free-per-domain buffers and exported by
     {!Trace} as Chrome trace-event JSON (one lane per domain) or a
     plain-text flame summary.
   - {!Metrics}: named counters, gauges and log-bucketed latency
     histograms with Prometheus-text and JSON dumps.  Counters and
     gauges are always live; they back [Kernel_cache.stats] and the
     engine's [--stats] line.
   - {!Log}: leveled JSON-lines structured logging with request-id
     scoping; the serve daemon's access log.  Off by default, and a
     single atomic check per disabled call site, like spans.
   - {!Control} (re-exported below): the single [enabled] flag.  With
     telemetry off, every instrumented code path costs one atomic
     read -- the @obs-smoke bench holds the pipeline to that.

   The library depends on nothing outside the compiler distribution
   (stdlib + unix for the wall clock). *)

module Control = Control
module Span = Span
module Metrics = Metrics
module Trace = Trace
module Json = Json
module Log = Log

let enabled = Control.enabled
let set_enabled = Control.set_enabled
let with_enabled = Control.with_enabled

let reset () =
  Span.reset ();
  Metrics.reset_values ()
