(* The metrics registry: named counters, gauges and log-bucketed
   latency histograms.

   Values are plain atomics, so instruments are safe to update from
   any domain and cost what the hand-rolled counters they replace
   cost.  Registration is idempotent -- asking for an existing name of
   the same kind returns the registered instrument, so library
   initialization order never matters -- and mutex-protected; updates
   never take the lock.

   Counters and gauges stay live even when telemetry is off (they back
   always-on reporting such as [Kernel_cache.stats] and the engine's
   [--stats] line).  Latency observation via [time] is gated on
   {!Control.enabled} like spans are. *)

type counter = { c_name : string; c_help : string; c_value : int Atomic.t }
type gauge = { g_name : string; g_help : string; g_bits : int64 Atomic.t }

type histogram = {
  h_name : string;
  h_help : string;
  bounds : float array;  (* ascending upper bounds; +Inf is implicit *)
  bucket_counts : int Atomic.t array;  (* length = Array.length bounds + 1 *)
  h_sum_bits : int64 Atomic.t;
  h_count : int Atomic.t;
}

type metric = Counter of counter | Gauge of gauge | Histogram of histogram

let lock = Mutex.create ()
let table : (string, metric) Hashtbl.t = Hashtbl.create 32

(* Registry-time lint: every instrument in this codebase is namespaced
   mae_<subsystem>_..., lowercase snake.  Rejecting anything else at
   registration catches naming drift the moment a PR introduces it,
   instead of in a dashboard review months later. *)
let valid_name name =
  String.length name > 4
  && String.equal (String.sub name 0 4) "mae_"
  && String.for_all
       (function 'a' .. 'z' | '0' .. '9' | '_' -> true | _ -> false)
       name

let lint_name ?(what = "Mae_obs.Metrics") name =
  if not (valid_name name) then
    invalid_arg
      (Printf.sprintf "%s: metric name %S does not match mae_[a-z0-9_]+" what
         name)

let register name make classify =
  lint_name name;
  Mutex.lock lock;
  let result =
    match Hashtbl.find_opt table name with
    | Some existing -> classify existing
    | None ->
        let m, v = make () in
        Hashtbl.add table name m;
        Ok v
  in
  Mutex.unlock lock;
  match result with
  | Ok v -> v
  | Error kind ->
      invalid_arg
        (Printf.sprintf "Mae_obs.Metrics: %s already registered as a %s" name
           kind)

(* --- counters --- *)

let counter ?(help = "") name =
  register name
    (fun () ->
      let c = { c_name = name; c_help = help; c_value = Atomic.make 0 } in
      (Counter c, c))
    (function Counter c -> Ok c | Gauge _ -> Error "gauge" | Histogram _ -> Error "histogram")

let incr c = Atomic.incr c.c_value
let add c n = ignore (Atomic.fetch_and_add c.c_value n)
let counter_value c = Atomic.get c.c_value
let reset_counter c = Atomic.set c.c_value 0

(* --- gauges --- *)

let gauge ?(help = "") name =
  register name
    (fun () ->
      let g =
        { g_name = name; g_help = help; g_bits = Atomic.make (Int64.bits_of_float 0.) }
      in
      (Gauge g, g))
    (function Gauge g -> Ok g | Counter _ -> Error "counter" | Histogram _ -> Error "histogram")

let set g v = Atomic.set g.g_bits (Int64.bits_of_float v)
let gauge_value g = Int64.float_of_bits (Atomic.get g.g_bits)

(* --- histograms --- *)

(* 1 microsecond to ~33 s in factor-of-two steps: latency of anything
   from one cached kernel lookup to a full batch fits the range. *)
let default_latency_buckets = Array.init 26 (fun i -> 1e-6 *. Float.pow 2. (Float.of_int i))

let histogram ?(help = "") ?(buckets = default_latency_buckets) name =
  if Array.length buckets = 0 then
    invalid_arg "Mae_obs.Metrics: empty bucket list";
  Array.iteri
    (fun i b ->
      if i > 0 && b <= buckets.(i - 1) then
        invalid_arg "Mae_obs.Metrics: buckets must be strictly increasing")
    buckets;
  register name
    (fun () ->
      let h =
        {
          h_name = name;
          h_help = help;
          bounds = Array.copy buckets;
          bucket_counts =
            Array.init (Array.length buckets + 1) (fun _ -> Atomic.make 0);
          h_sum_bits = Atomic.make (Int64.bits_of_float 0.);
          h_count = Atomic.make 0;
        }
      in
      (Histogram h, h))
    (function Histogram h -> Ok h | Counter _ -> Error "counter" | Gauge _ -> Error "gauge")

let atomic_float_add bits v =
  let rec go () =
    let old = Atomic.get bits in
    let updated = Int64.bits_of_float (Int64.float_of_bits old +. v) in
    if not (Atomic.compare_and_set bits old updated) then go ()
  in
  go ()

let observe h v =
  (* first bucket whose bound is >= v; the extra slot is +Inf *)
  let n = Array.length h.bounds in
  let rec find i = if i >= n || v <= h.bounds.(i) then i else find (i + 1) in
  Atomic.incr h.bucket_counts.(find 0);
  Atomic.incr h.h_count;
  atomic_float_add h.h_sum_bits v

let time h f =
  if not (Control.enabled ()) then f ()
  else begin
    let t0 = Clock.monotonic () in
    match f () with
    | v ->
        observe h (Clock.monotonic () -. t0);
        v
    | exception e ->
        observe h (Clock.monotonic () -. t0);
        raise e
  end

let histogram_count h = Atomic.get h.h_count
let histogram_sum h = Int64.float_of_bits (Atomic.get h.h_sum_bits)

(* --- introspection --- *)

let find_counter name =
  Mutex.lock lock;
  let r = Hashtbl.find_opt table name in
  Mutex.unlock lock;
  match r with Some (Counter c) -> Some c | _ -> None

let find_gauge name =
  Mutex.lock lock;
  let r = Hashtbl.find_opt table name in
  Mutex.unlock lock;
  match r with Some (Gauge g) -> Some g | _ -> None

let sorted_metrics () =
  Mutex.lock lock;
  let all = Hashtbl.fold (fun _ m acc -> m :: acc) table [] in
  Mutex.unlock lock;
  let name = function
    | Counter c -> c.c_name
    | Gauge g -> g.g_name
    | Histogram h -> h.h_name
  in
  List.sort (fun a b -> String.compare (name a) (name b)) all

let reset_values () =
  List.iter
    (function
      | Counter c -> reset_counter c
      | Gauge g -> set g 0.
      | Histogram h ->
          Array.iter (fun b -> Atomic.set b 0) h.bucket_counts;
          Atomic.set h.h_sum_bits (Int64.bits_of_float 0.);
          Atomic.set h.h_count 0)
    (sorted_metrics ())

(* --- exporters --- *)

(* Sibling modules (Sketch) contribute their own sections to the
   shared dumps without Metrics depending on them: each hook supplies
   a Prometheus-text fragment and a JSON object keyed at the top
   level.  Registration is idempotent by key. *)
type exposition = {
  e_key : string;
  e_prometheus : unit -> string;
  e_json : unit -> string;
}

let expositions : exposition list ref = ref []

let register_exposition ~key ~prometheus ~json =
  Mutex.lock lock;
  if not (List.exists (fun e -> String.equal e.e_key key) !expositions) then
    expositions :=
      !expositions @ [ { e_key = key; e_prometheus = prometheus; e_json = json } ];
  Mutex.unlock lock

let current_expositions () =
  Mutex.lock lock;
  let es = !expositions in
  Mutex.unlock lock;
  es

let float_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

let le_label bound = float_repr bound

let to_prometheus () =
  let buf = Buffer.create 1024 in
  let header name help kind =
    (* Every metric gets HELP and TYPE lines; an instrument registered
       without help falls back to its own name so scrapers always see
       a complete exposition. *)
    Buffer.add_string buf
      (Printf.sprintf "# HELP %s %s\n" name
         (if String.equal help "" then name else help));
    Buffer.add_string buf (Printf.sprintf "# TYPE %s %s\n" name kind)
  in
  List.iter
    (function
      | Counter c ->
          header c.c_name c.c_help "counter";
          Buffer.add_string buf
            (Printf.sprintf "%s %d\n" c.c_name (counter_value c))
      | Gauge g ->
          header g.g_name g.g_help "gauge";
          Buffer.add_string buf
            (Printf.sprintf "%s %s\n" g.g_name (float_repr (gauge_value g)))
      | Histogram h ->
          header h.h_name h.h_help "histogram";
          let cumulative = ref 0 in
          Array.iteri
            (fun i bucket ->
              cumulative := !cumulative + Atomic.get bucket;
              let le =
                if i < Array.length h.bounds then le_label h.bounds.(i)
                else "+Inf"
              in
              Buffer.add_string buf
                (Printf.sprintf "%s_bucket{le=\"%s\"} %d\n" h.h_name le
                   !cumulative))
            h.bucket_counts;
          Buffer.add_string buf
            (Printf.sprintf "%s_sum %s\n" h.h_name (float_repr (histogram_sum h)));
          Buffer.add_string buf
            (Printf.sprintf "%s_count %d\n" h.h_name (histogram_count h)))
    (sorted_metrics ());
  List.iter (fun e -> Buffer.add_string buf (e.e_prometheus ()))
    (current_expositions ());
  Buffer.contents buf

let to_json () =
  let buf = Buffer.create 1024 in
  let counters = ref []
  and gauges = ref []
  and histograms = ref [] in
  List.iter
    (function
      | Counter c ->
          counters :=
            Printf.sprintf "%s: %d" (Json.escape c.c_name) (counter_value c)
            :: !counters
      | Gauge g ->
          gauges :=
            Printf.sprintf "%s: %s" (Json.escape g.g_name)
              (float_repr (gauge_value g))
            :: !gauges
      | Histogram h ->
          let cumulative = ref 0 in
          let bucket_fields =
            Array.to_list
              (Array.mapi
                 (fun i bucket ->
                   cumulative := !cumulative + Atomic.get bucket;
                   let le =
                     if i < Array.length h.bounds then le_label h.bounds.(i)
                     else "+Inf"
                   in
                   Printf.sprintf "[%s, %d]" (Json.escape le) !cumulative)
                 h.bucket_counts)
          in
          histograms :=
            Printf.sprintf "%s: {\"count\": %d, \"sum\": %s, \"buckets\": [%s]}"
              (Json.escape h.h_name) (histogram_count h)
              (float_repr (histogram_sum h))
              (String.concat ", " bucket_fields)
            :: !histograms)
    (sorted_metrics ());
  Buffer.add_string buf "{\n";
  Buffer.add_string buf
    (Printf.sprintf "  \"counters\": {%s},\n"
       (String.concat ", " (List.rev !counters)));
  Buffer.add_string buf
    (Printf.sprintf "  \"gauges\": {%s},\n"
       (String.concat ", " (List.rev !gauges)));
  let extras = current_expositions () in
  Buffer.add_string buf
    (Printf.sprintf "  \"histograms\": {%s}%s\n"
       (String.concat ", " (List.rev !histograms))
       (if extras = [] then "" else ","));
  List.iteri
    (fun i e ->
      Buffer.add_string buf
        (Printf.sprintf "  %s: %s%s\n" (Json.escape e.e_key) (e.e_json ())
           (if i < List.length extras - 1 then "," else "")))
    extras;
  Buffer.add_string buf "}\n";
  Buffer.contents buf

let write_file ~path contents =
  match open_out path with
  | oc ->
      Fun.protect
        ~finally:(fun () -> close_out_noerr oc)
        (fun () -> output_string oc contents);
      Ok ()
  | exception Sys_error msg -> Error msg

let write_prometheus ~path = write_file ~path (to_prometheus ())
let write_json ~path = write_file ~path (to_json ())
