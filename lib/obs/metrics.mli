(** The metrics registry: named counters, gauges and log-bucketed
    latency histograms, with Prometheus-text and JSON dumps.

    Instruments are backed by atomics -- update them freely from any
    domain; no update takes a lock.  Registration is idempotent:
    asking for an existing name of the same kind returns the already
    registered instrument, asking for it as a different kind raises
    [Invalid_argument].  Names must match [mae_[a-z0-9_]+] -- the
    registry lints at registration time so metric-name drift is
    caught the moment a PR introduces it.

    Counters and gauges are always live, even with telemetry off --
    they replace hand-rolled statistics ints and cost the same.
    {!time} (latency observation) honours {!Control.enabled}. *)

type counter
type gauge
type histogram

val valid_name : string -> bool
(** Does the name match [mae_[a-z0-9_]+]? *)

val lint_name : ?what:string -> string -> unit
(** Raise [Invalid_argument] (prefixed with [what]) unless
    {!valid_name}.  Shared by every registry in the obs layer. *)

(** {1 Counters} *)

val counter : ?help:string -> string -> counter
val incr : counter -> unit
val add : counter -> int -> unit
val counter_value : counter -> int

val reset_counter : counter -> unit
(** For subsystem [clear] entry points (e.g. the kernel cache);
    Prometheus scrapers treat it as a counter reset. *)

(** {1 Gauges} *)

val gauge : ?help:string -> string -> gauge
val set : gauge -> float -> unit
val gauge_value : gauge -> float

(** {1 Histograms} *)

val default_latency_buckets : float array
(** 1 µs to ~33 s in factor-of-two steps. *)

val histogram : ?help:string -> ?buckets:float array -> string -> histogram
(** [buckets] are strictly increasing upper bounds (seconds for
    latencies); an implicit [+Inf] bucket is appended. *)

val observe : histogram -> float -> unit

val time : histogram -> (unit -> 'a) -> 'a
(** Run the thunk and observe its duration on the monotonic clock --
    but only when {!Control.enabled}; otherwise a single atomic read
    and a tail call, like spans. *)

val histogram_count : histogram -> int
val histogram_sum : histogram -> float

(** {1 Registry introspection} *)

val find_counter : string -> counter option
val find_gauge : string -> gauge option

val reset_values : unit -> unit
(** Zero every registered instrument (registrations persist). *)

(** {1 Exporters} *)

val register_exposition :
  key:string -> prometheus:(unit -> string) -> json:(unit -> string) -> unit
(** Contribute an extra section to both dumps: [prometheus] returns a
    text-exposition fragment appended after the registered metrics,
    [json] returns a JSON object added under [key] at the top level.
    Idempotent by [key]; used by {!Sketch} so summaries ride along in
    every /metrics scrape and [--metrics-out] file. *)

val to_prometheus : unit -> string
(** Prometheus text exposition format, metrics sorted by name; every
    metric carries [# HELP] and [# TYPE] lines. *)

val to_json : unit -> string
(** The same data as one JSON object:
    [{"counters": {..}, "gauges": {..}, "histograms": {..}, ...}] with
    cumulative bucket pairs [[le, count]] plus any registered
    exposition sections (e.g. ["sketches"]). *)

val write_prometheus : path:string -> (unit, string) result
val write_json : path:string -> (unit, string) result
