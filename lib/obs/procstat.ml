(* Process-level telemetry scraped from /proc.

   Linux exposes everything we want as text files; on other systems
   the readers return None and the gauges simply stay unset -- the
   JSON view says so via "proc_available".  Gauges are registered
   lazily on the first [sample], so a process that never turns the
   runtime lens on registers no mae_process_* metrics at all. *)

let start_mono = Clock.monotonic ()
let start_wall = Clock.wall ()
let available = Sys.file_exists "/proc/self/status"

let read_file path =
  try Some (In_channel.with_open_text path In_channel.input_all)
  with Sys_error _ -> None

(* "VmRSS:     12345 kB" -> bytes *)
let status_bytes field =
  match read_file "/proc/self/status" with
  | None -> None
  | Some body ->
      let prefix = field ^ ":" in
      let np = String.length prefix in
      String.split_on_char '\n' body
      |> List.find_map (fun line ->
             if
               String.length line > np
               && String.equal (String.sub line 0 np) prefix
             then
               String.sub line np (String.length line - np)
               |> String.split_on_char ' '
               |> List.find_map int_of_string_opt
               |> Option.map (fun kb -> kb * 1024)
             else None)

let rss_bytes () = status_bytes "VmRSS"
let virtual_bytes () = status_bytes "VmSize"

let open_fds () =
  (* includes the fd readdir itself holds open; close enough *)
  try Some (Array.length (Sys.readdir "/proc/self/fd")) with Sys_error _ -> None

let uptime_s () = Clock.monotonic () -. start_mono
let start_time_unix_s = start_wall

let gauges =
  lazy
    ( Metrics.gauge ~help:"Resident set size in bytes (VmRSS)"
        "mae_process_resident_memory_bytes",
      Metrics.gauge ~help:"Virtual memory size in bytes (VmSize)"
        "mae_process_virtual_memory_bytes",
      Metrics.gauge ~help:"Open file descriptors" "mae_process_open_fds",
      Metrics.gauge ~help:"Seconds since process start (monotonic)"
        "mae_process_uptime_seconds",
      Metrics.gauge ~help:"Process start time, seconds since the Unix epoch"
        "mae_process_start_time_seconds" )

let sample () =
  let rss_g, vm_g, fds_g, up_g, st_g = Lazy.force gauges in
  Metrics.set up_g (uptime_s ());
  Metrics.set st_g start_time_unix_s;
  Option.iter (fun b -> Metrics.set rss_g (float_of_int b)) (rss_bytes ());
  Option.iter (fun b -> Metrics.set vm_g (float_of_int b)) (virtual_bytes ());
  Option.iter (fun n -> Metrics.set fds_g (float_of_int n)) (open_fds ())

let to_json () =
  let opt_int = function
    | None -> Json.Null
    | Some v -> Json.Number (float_of_int v)
  in
  Json.Object
    [
      ("proc_available", Json.Bool available);
      ("rss_bytes", opt_int (rss_bytes ()));
      ("virtual_bytes", opt_int (virtual_bytes ()));
      ("open_fds", opt_int (open_fds ()));
      ("uptime_s", Json.Number (uptime_s ()));
      ("start_time_unix_s", Json.Number start_time_unix_s);
    ]
