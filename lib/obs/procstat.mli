(** Process-level telemetry (RSS, fd count, uptime) scraped from
    /proc, exposed as [mae_process_*] gauges and a JSON fragment for
    /runtimez.

    On systems without a Linux-style /proc the readers return [None],
    {!available} is false, and the memory/fd gauges are never set --
    uptime and start time still work everywhere.  Gauges register
    lazily on the first {!sample} (the runtime lens's sampler calls it
    every tick), so telemetry-off processes register nothing. *)

val available : bool
(** Whether /proc/self/status exists (sampled at startup). *)

val rss_bytes : unit -> int option
(** VmRSS, in bytes. *)

val virtual_bytes : unit -> int option
(** VmSize, in bytes. *)

val open_fds : unit -> int option
(** Entries in /proc/self/fd (includes the directory handle the read
    itself holds). *)

val uptime_s : unit -> float
(** Monotonic seconds since this module was initialized (module init
    happens with the first use of Mae_obs, i.e. effectively process
    start). *)

val start_time_unix_s : float
(** Wall-clock process start, seconds since the Unix epoch. *)

val sample : unit -> unit
(** Refresh every [mae_process_*] gauge (registering them on first
    call). *)

val to_json : unit -> Json.t
(** The "process" object served inside GET /runtimez. *)
