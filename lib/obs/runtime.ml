(* The runtime lens: a self-monitoring Runtime_events consumer.

   OCaml 5 publishes GC phase spans and counters into per-domain ring
   buffers; this module owns the in-process cursor over them.  While
   the lens is on, a dedicated sampler *domain* drains the rings every
   [poll_interval_s], folding

   - top-level pause windows (any nest of runtime phases from depth 0
     back to depth 0 -- the olly measurement convention) into one GK
     sketch per ring, labelled {domain="<ring>"}, exported as the
     mae_gc_pause_seconds_summary family;
   - collection / allocation / promotion counters into mae_gc_*
     counters and the major-heap gauge;
   - recent pause windows into a bounded store that (a) answers
     "how much GC landed inside this request window" for Capture
     tagging and (b) feeds gc.* spans into the Chrome-trace export via
     the Trace provider hook.

   The sampler is a domain rather than a sys-thread so its sketch
   observations land in domain-private DLS buffers instead of racing
   with the server thread's on domain 0.  All consumer state is
   guarded by one mutex; [read_poll] and the callback mutations run
   inside it, and the per-poll Sketch.flush_local publishes what the
   poll observed before the lock is released.

   Off means off: every query gate is a single Atomic.get, nothing is
   registered, no cursor exists, no file is created.  [start] is the
   only entry point with side effects, and it is explicit -- the serve
   plane and the CLI call it exactly when telemetry is enabled.

   Ring ids, not domain ids: the first argument of every callback is
   the ring buffer index.  A ring belongs to one domain for that
   domain's lifetime and may be reused by a later spawn; early in a
   process (and for the resident engine pool) the numbering coincides
   with Domain.id, which is what makes the trace lanes line up. *)

module RE = Runtime_events

let recent_cap = 8192
let pause_eps = 0.005

type ring = {
  ring_id : int;
  sketch : Sketch.t;
  mutable depth : int;  (* runtime-phase nesting, this ring *)
  mutable pause_start : float;  (* monotonic s, valid when depth > 0 *)
  mutable pause_name : string;  (* "gc.<top-level phase>" *)
  mutable pauses : int;
  mutable pause_total_s : float;
  mutable max_pause_s : float;
  mutable minors : int;
  mutable major_slices : int;
  mutable major_cycles : int;
  mutable allocated_words : int;
  mutable promoted_words : int;
  mutable heap_pool_words : int;
  mutable heap_large_words : int;
}

type instruments = {
  minors_c : Metrics.counter;
  major_slices_c : Metrics.counter;
  major_cycles_c : Metrics.counter;
  pauses_c : Metrics.counter;
  allocated_c : Metrics.counter;
  promoted_c : Metrics.counter;
  lost_c : Metrics.counter;
  heap_g : Metrics.gauge;
  domains_g : Metrics.gauge;
}

(* The single-atomic-check gate every query goes through. *)
let running_flag = Atomic.make false
let stop_requested = Atomic.make false

(* Guards everything below (consumer state); lock order is
   lock -> Sketch locks, never the reverse. *)
let lock = Mutex.create ()

(* Serializes start/stop transitions against each other. *)
let life_lock = Mutex.create ()

let rings : (int, ring) Hashtbl.t = Hashtbl.create 8
let recent : Span.event option array = Array.make recent_cap None
let recent_pos = ref 0
let events_read = ref 0
let polls = ref 0
let events_lost = ref 0
let instruments : instruments option ref = ref None
let cursor : RE.cursor option ref = ref None
let callbacks : RE.Callbacks.t option ref = ref None
let sampler : unit Domain.t option ref = ref None

let ts_s ts = Int64.to_float (RE.Timestamp.to_int64 ts) *. 1e-9

(* Registered on first start, idempotently re-fetched after. *)
let get_instruments () =
  match !instruments with
  | Some i -> i
  | None ->
      let i =
        {
          minors_c =
            Metrics.counter ~help:"Minor collections observed"
              "mae_gc_minor_collections_total";
          major_slices_c =
            Metrics.counter ~help:"Major GC slices observed"
              "mae_gc_major_slices_total";
          major_cycles_c =
            Metrics.counter ~help:"Completed major GC cycles"
              "mae_gc_major_cycles_total";
          pauses_c =
            Metrics.counter ~help:"Top-level runtime pause windows"
              "mae_gc_pauses_total";
          allocated_c =
            Metrics.counter ~help:"Minor-heap words allocated"
              "mae_gc_words_allocated_total";
          promoted_c =
            Metrics.counter ~help:"Words promoted to the major heap"
              "mae_gc_words_promoted_total";
          lost_c =
            Metrics.counter ~help:"Runtime events dropped by the consumer"
              "mae_gc_events_lost_total";
          heap_g =
            Metrics.gauge ~help:"Major heap words (pools + large), all domains"
              "mae_gc_heap_words";
          domains_g =
            Metrics.gauge ~help:"Domains observed emitting runtime events"
              "mae_process_domains";
        }
      in
      instruments := Some i;
      i

let ring_state ring_id =
  match Hashtbl.find_opt rings ring_id with
  | Some r -> r
  | None ->
      let r =
        {
          ring_id;
          sketch =
            Sketch.create ~help:"GC pause duration per domain"
              ~eps:pause_eps
              ~labels:[ ("domain", string_of_int ring_id) ]
              "mae_gc_pause_seconds_summary";
          depth = 0;
          pause_start = 0.;
          pause_name = "gc.pause";
          pauses = 0;
          pause_total_s = 0.;
          max_pause_s = 0.;
          minors = 0;
          major_slices = 0;
          major_cycles = 0;
          allocated_words = 0;
          promoted_words = 0;
          heap_pool_words = 0;
          heap_large_words = 0;
        }
      in
      Hashtbl.add rings ring_id r;
      r

let push_recent (e : Span.event) =
  recent.(!recent_pos mod recent_cap) <- Some e;
  incr recent_pos

(* --- cursor callbacks (always run under [lock], inside read_poll) --- *)

let on_begin ins ring_id ts phase =
  let r = ring_state ring_id in
  (match phase with
  | RE.EV_MINOR ->
      r.minors <- r.minors + 1;
      Metrics.incr ins.minors_c
  | RE.EV_MAJOR_SLICE ->
      r.major_slices <- r.major_slices + 1;
      Metrics.incr ins.major_slices_c
  | RE.EV_MAJOR_FINISH_CYCLE ->
      r.major_cycles <- r.major_cycles + 1;
      Metrics.incr ins.major_cycles_c
  | _ -> ());
  if r.depth = 0 then begin
    r.pause_start <- ts_s ts;
    r.pause_name <- "gc." ^ RE.runtime_phase_name phase
  end;
  r.depth <- r.depth + 1

let on_end ins ring_id ts _phase =
  let r = ring_state ring_id in
  (* an end without a begin means the phase opened before our cursor
     existed; drop it rather than underflow *)
  if r.depth > 0 then begin
    r.depth <- r.depth - 1;
    if r.depth = 0 then begin
      let dur = Float.max 0. (ts_s ts -. r.pause_start) in
      r.pauses <- r.pauses + 1;
      r.pause_total_s <- r.pause_total_s +. dur;
      if dur > r.max_pause_s then r.max_pause_s <- dur;
      Sketch.observe r.sketch dur;
      Metrics.incr ins.pauses_c;
      push_recent
        {
          Span.name = r.pause_name;
          attrs = [];
          domain = ring_id;
          depth = 0;
          ts = r.pause_start;
          dur;
          self = dur;
        }
    end
  end

let on_counter ins ring_id _ts counter value =
  let r = ring_state ring_id in
  match counter with
  | RE.EV_C_MINOR_ALLOCATED ->
      r.allocated_words <- r.allocated_words + value;
      Metrics.add ins.allocated_c value
  | RE.EV_C_MINOR_PROMOTED ->
      r.promoted_words <- r.promoted_words + value;
      Metrics.add ins.promoted_c value
  | RE.EV_C_MAJOR_HEAP_POOL_WORDS -> r.heap_pool_words <- value
  | RE.EV_C_MAJOR_HEAP_LARGE_WORDS -> r.heap_large_words <- value
  | _ -> ()

let on_lost ins _ring_id n =
  events_lost := !events_lost + n;
  Metrics.add ins.lost_c n

(* --- polling --- *)

let poll () =
  if not (Atomic.get running_flag) then 0
  else begin
    Mutex.lock lock;
    let n =
      match (!cursor, !callbacks) with
      | Some c, Some cb -> ( try RE.read_poll c cb None with _ -> 0)
      | _ -> 0
    in
    events_read := !events_read + n;
    incr polls;
    (match !instruments with
    | Some ins ->
        let heap = ref 0 in
        Hashtbl.iter
          (fun _ r -> heap := !heap + r.heap_pool_words + r.heap_large_words)
          rings;
        Metrics.set ins.heap_g (float_of_int !heap);
        Metrics.set ins.domains_g (float_of_int (Hashtbl.length rings))
    | None -> ());
    (* publish what this poll observed into the calling domain's
       sketch buffers before anyone else reads quantiles *)
    if n > 0 then Sketch.flush_local ();
    Mutex.unlock lock;
    n
  end

let sampler_loop interval =
  while not (Atomic.get stop_requested) do
    ignore (poll ());
    Procstat.sample ();
    (try Unix.sleepf interval
     with Unix.Unix_error (Unix.EINTR, _, _) -> ())
  done

(* --- lifecycle --- *)

let running () = Atomic.get running_flag

let start ?(poll_interval_s = 0.05) () =
  if not (poll_interval_s > 0.) then
    invalid_arg "Mae_obs.Runtime.start: poll_interval_s must be positive";
  Mutex.lock life_lock;
  let started =
    if Atomic.get running_flag then false
    else begin
      RE.start ();
      RE.resume ();
      (* resume: a previous [stop] paused collection *)
      Mutex.lock lock;
      let ins = get_instruments () in
      callbacks :=
        Some
          (RE.Callbacks.create ~runtime_begin:(on_begin ins)
             ~runtime_end:(on_end ins) ~runtime_counter:(on_counter ins)
             ~lost_events:(on_lost ins) ());
      cursor := Some (RE.create_cursor None);
      Mutex.unlock lock;
      Atomic.set stop_requested false;
      Atomic.set running_flag true;
      sampler := Some (Domain.spawn (fun () -> sampler_loop poll_interval_s));
      true
    end
  in
  Mutex.unlock life_lock;
  started

let stop () =
  Mutex.lock life_lock;
  if Atomic.get running_flag then begin
    Atomic.set stop_requested true;
    (match !sampler with Some d -> Domain.join d | None -> ());
    sampler := None;
    (* final drain, then tear the cursor down *)
    ignore (poll ());
    Atomic.set running_flag false;
    Mutex.lock lock;
    (match !cursor with
    | Some c -> ( try RE.free_cursor c with _ -> ())
    | None -> ());
    cursor := None;
    callbacks := None;
    Mutex.unlock lock;
    (* stop producing events until the next start *)
    RE.pause ()
  end;
  Mutex.unlock life_lock

(* --- queries (all usable after stop; gates are only on the paths
   that would touch the cursor) --- *)

type domain_stats = {
  d_ring : int;
  d_pauses : int;
  d_pause_total_s : float;
  d_max_pause_s : float;
  d_p50_pause_s : float option;
  d_p99_pause_s : float option;
  d_minors : int;
  d_major_slices : int;
  d_major_cycles : int;
  d_allocated_words : int;
  d_promoted_words : int;
  d_heap_words : int;
}

let gc_sketches () =
  Mutex.lock lock;
  let sks = Hashtbl.fold (fun _ r acc -> r.sketch :: acc) rings [] in
  Mutex.unlock lock;
  sks

let domains () =
  Mutex.lock lock;
  let copies =
    Hashtbl.fold
      (fun _ r acc ->
        ( r.ring_id,
          r.pauses,
          r.pause_total_s,
          r.max_pause_s,
          r.minors,
          r.major_slices,
          r.major_cycles,
          r.allocated_words,
          r.promoted_words,
          r.heap_pool_words + r.heap_large_words,
          r.sketch )
        :: acc)
      rings []
  in
  Mutex.unlock lock;
  (* quantile reads flush/merge sketch state; do them off the lock *)
  copies
  |> List.map
       (fun
         (ring, pauses, total, mx, minors, slices, cycles, alloc, promo, heap,
          sk)
       ->
         {
           d_ring = ring;
           d_pauses = pauses;
           d_pause_total_s = total;
           d_max_pause_s = mx;
           d_p50_pause_s = Sketch.quantile sk 0.5;
           d_p99_pause_s = Sketch.quantile sk 0.99;
           d_minors = minors;
           d_major_slices = slices;
           d_major_cycles = cycles;
           d_allocated_words = alloc;
           d_promoted_words = promo;
           d_heap_words = heap;
         })
  |> List.sort (fun a b -> Int.compare a.d_ring b.d_ring)

let pause_count () =
  Mutex.lock lock;
  let n = Hashtbl.fold (fun _ r acc -> acc + r.pauses) rings 0 in
  Mutex.unlock lock;
  n

let max_pause_seconds () =
  Mutex.lock lock;
  let mx =
    Hashtbl.fold (fun _ r acc -> Float.max acc r.max_pause_s) rings 0.
  in
  let any = Hashtbl.fold (fun _ r acc -> acc || r.pauses > 0) rings false in
  Mutex.unlock lock;
  if any then Some mx else None

let pause_quantile q = Sketch.quantile_of_many (gc_sketches ()) q

let pause_seconds_since since =
  if not (Atomic.get running_flag) then 0.
  else begin
    ignore (poll ());
    Mutex.lock lock;
    let acc = ref 0. in
    Array.iter
      (function
        | Some (e : Span.event) when e.ts +. e.dur >= since ->
            acc := !acc +. e.dur
        | _ -> ())
      recent;
    Mutex.unlock lock;
    !acc
  end

let gc_events () =
  Mutex.lock lock;
  let acc = ref [] in
  Array.iter
    (function Some e -> acc := e :: !acc | None -> ())
    recent;
  Mutex.unlock lock;
  List.sort
    (fun (a : Span.event) (b : Span.event) -> Float.compare a.ts b.ts)
    !acc

let to_json () =
  if Atomic.get running_flag then ignore (poll ());
  Mutex.lock lock;
  let read = !events_read and lost = !events_lost and np = !polls in
  Mutex.unlock lock;
  let ds = domains () in
  let opt_num = function None -> Json.Null | Some v -> Json.Number v in
  let int_n i = Json.Number (float_of_int i) in
  let domain_json d =
    Json.Object
      [
        ("domain", int_n d.d_ring);
        ("pauses", int_n d.d_pauses);
        ("pause_s", Json.Number d.d_pause_total_s);
        ("max_pause_s", Json.Number d.d_max_pause_s);
        ("p50_pause_s", opt_num d.d_p50_pause_s);
        ("p99_pause_s", opt_num d.d_p99_pause_s);
        ("minor_collections", int_n d.d_minors);
        ("major_slices", int_n d.d_major_slices);
        ("major_cycles", int_n d.d_major_cycles);
        ("allocated_words", int_n d.d_allocated_words);
        ("promoted_words", int_n d.d_promoted_words);
        ("heap_words", int_n d.d_heap_words);
      ]
  in
  let total f = List.fold_left (fun acc d -> acc + f d) 0 ds in
  Json.Object
    [
      ("enabled", Json.Bool (Atomic.get running_flag));
      ( "sampler",
        Json.Object
          [
            ("polls", int_n np);
            ("events", int_n read);
            ("events_lost", int_n lost);
          ] );
      ( "pause",
        Json.Object
          [
            ("count", int_n (total (fun d -> d.d_pauses)));
            ( "total_s",
              Json.Number
                (List.fold_left (fun acc d -> acc +. d.d_pause_total_s) 0. ds)
            );
            ( "max_s",
              Json.Number
                (List.fold_left (fun acc d -> Float.max acc d.d_max_pause_s)
                   0. ds) );
            ("p50_s", opt_num (pause_quantile 0.5));
            ("p90_s", opt_num (pause_quantile 0.9));
            ("p99_s", opt_num (pause_quantile 0.99));
          ] );
      ("minor_collections", int_n (total (fun d -> d.d_minors)));
      ("major_slices", int_n (total (fun d -> d.d_major_slices)));
      ("major_cycles", int_n (total (fun d -> d.d_major_cycles)));
      ("allocated_words", int_n (total (fun d -> d.d_allocated_words)));
      ("promoted_words", int_n (total (fun d -> d.d_promoted_words)));
      ("heap_words", int_n (total (fun d -> d.d_heap_words)));
      ("domains", Json.Array (List.map domain_json ds));
      ("process", Procstat.to_json ());
    ]

let reset () =
  Mutex.lock lock;
  Hashtbl.iter
    (fun _ r ->
      r.depth <- 0;
      r.pauses <- 0;
      r.pause_total_s <- 0.;
      r.max_pause_s <- 0.;
      r.minors <- 0;
      r.major_slices <- 0;
      r.major_cycles <- 0;
      r.allocated_words <- 0;
      r.promoted_words <- 0)
    rings;
  Array.fill recent 0 recent_cap None;
  recent_pos := 0;
  events_read := 0;
  events_lost := 0;
  polls := 0;
  Mutex.unlock lock;
  List.iter Sketch.reset (gc_sketches ())

(* gc.* spans ride along in every Chrome-trace export *)
let () = Trace.register_provider gc_events
