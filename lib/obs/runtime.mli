(** The runtime lens: GC and domain profiling via OCaml 5
    [Runtime_events], self-monitoring mode.

    {!start} opens an in-process cursor over the runtime's per-domain
    event rings and spawns a sampler domain that drains them on an
    interval.  While running, the lens

    - folds top-level GC pause windows into one {!Sketch} per ring,
      labelled [{domain="<ring>"}], exported on /metrics as the
      [mae_gc_pause_seconds_summary] family;
    - maintains [mae_gc_*] counters (minor/major collections, pause
      windows, words allocated/promoted, lost events) and gauges
      (major heap words, domains observed);
    - keeps recent pause windows so {!pause_seconds_since} can tag a
      request window with the GC time that landed inside it, and
      feeds [gc.*] spans into {!Trace} exports via the provider hook;
    - refreshes {!Procstat}'s [mae_process_*] gauges every tick.

    Off means off: until the first {!start} nothing is registered, no
    cursor or ring file exists, and every query gates on a single
    [Atomic.get] ({!pause_seconds_since} and {!poll} return 0).  A
    200-module batch with telemetry off is bit-for-bit identical to
    one that never linked this module -- the test suite holds it to
    that.

    "Domain" here means the runtime's ring buffer index: one ring per
    live domain, possibly reused after a domain exits.  For the
    resident engine pool the numbering coincides with [Domain.id]. *)

val start : ?poll_interval_s:float -> unit -> bool
(** Start event collection, create the cursor and spawn the sampler
    (default tick 50 ms).  Returns [false] (and does nothing) when
    already running.  Safe to call again after {!stop}; statistics
    accumulate across sessions.  Raises [Invalid_argument] on a
    non-positive interval. *)

val stop : unit -> unit
(** Join the sampler, drain the cursor one final time, free it, and
    pause runtime event collection.  Idempotent; queries over the
    accumulated statistics keep working after. *)

val running : unit -> bool

val poll : unit -> int
(** Drain pending events synchronously from the calling domain;
    returns the number consumed, 0 when the lens is off (single
    atomic check).  The sampler does this on its own -- call it when
    you need the very latest window (tests, /runtimez, trace export).
    Observations made by the poll are published before it returns. *)

val pause_seconds_since : float -> float
(** Total GC pause seconds from windows ending at or after the given
    {!Clock.monotonic} instant -- the serve plane calls this with the
    request start to tag captures and access logs.  Polls first; [0.]
    when the lens is off (single atomic check). *)

val pause_count : unit -> int
val max_pause_seconds : unit -> float option

val pause_quantile : float -> float option
(** Pooled quantile over every domain's pause sketch
    ({!Sketch.quantile_of_many}); the GC regression gate reads p99
    through this. *)

type domain_stats = {
  d_ring : int;  (** ring buffer index ("domain" label) *)
  d_pauses : int;
  d_pause_total_s : float;
  d_max_pause_s : float;
  d_p50_pause_s : float option;
  d_p99_pause_s : float option;
  d_minors : int;
  d_major_slices : int;
  d_major_cycles : int;
  d_allocated_words : int;
  d_promoted_words : int;
  d_heap_words : int;  (** latest pool + large words *)
}

val domains : unit -> domain_stats list
(** Per-ring statistics, sorted by ring id. *)

val gc_events : unit -> Span.event list
(** Recent pause windows as spans ([gc.minor], [gc.major_slice],
    [gc.stw_leader], ...), ascending start time; bounded store.  Also
    registered as a {!Trace} provider, so Chrome exports include them
    automatically. *)

val to_json : unit -> Json.t
(** The GET /runtimez document: sampler state, aggregate and
    per-domain GC statistics, and the {!Procstat} process section. *)

val reset : unit -> unit
(** Zero accumulated statistics and recent windows (instrument
    registrations and the sampler, if running, persist).  Tests only. *)
