(* Greenwald–Khanna quantile summaries with per-domain write buffers.

   Each domain owns a [local]: a flat sample buffer (no locks, no
   sharing) plus an immutable GK summary published through an Atomic.
   Owners fold the buffer into a fresh summary and republish; readers
   grab every domain's published summary and answer rank queries over
   the concatenation -- the classic mergeable-summary argument gives a
   combined rank error of sum_d eps * n_d = eps * n.

   GK invariant maintained here: every tuple (v, g, d) satisfies
   g + d <= floor(2 * eps * n) (new tuples get
   d = floor(2 eps n) - 1, compression merges a tuple into its right
   neighbour only while the sum respects the cap), which bounds the
   rank uncertainty of any query by eps * n.  The first and last
   tuples are never merged away, so min and max stay exact. *)

let buf_cap = 256
let exemplar_slots = 4

type tuple = { v : float; g : int; d : int }

type summary = {
  s_n : int;
  s_sum : float;
  s_min : float;  (* nan when empty *)
  s_max : float;
  s_tuples : tuple list;  (* ascending v *)
}

let empty_summary =
  { s_n = 0; s_sum = 0.; s_min = Float.nan; s_max = Float.nan; s_tuples = [] }

type local = {
  l_buf : float array;
  mutable l_n : int;  (* owner-mutated; invisible to readers until flush *)
  l_published : summary Atomic.t;
}

type exemplar = { ex_v : float; ex_label : string; ex_wall : float }

type t = {
  sk_name : string;
  sk_labels : (string * string) list;  (* sorted by key; [] = unlabeled *)
  sk_help : string;
  sk_eps : float;
  sk_lock : Mutex.t;  (* guards sk_locals *)
  mutable sk_locals : local list;
  sk_key : local Domain.DLS.key;
  sk_exemplars : exemplar option Atomic.t array;
}

let name t = t.sk_name
let labels t = t.sk_labels
let eps t = t.sk_eps

(* Canonical "k=v,k=v" form: the registry key suffix and the sort key
   that keeps a family's series adjacent in [all]. *)
let label_key labels =
  String.concat "," (List.map (fun (k, v) -> k ^ "=" ^ v) labels)

let lint_labels labels =
  let ok_key k =
    String.length k > 0
    && String.for_all
         (fun c -> (c >= 'a' && c <= 'z') || (c >= '0' && c <= '9') || c = '_')
         k
    && not (k.[0] >= '0' && k.[0] <= '9')
  in
  let ok_value v =
    String.for_all (fun c -> c <> '"' && c <> '\\' && c <> '\n') v
  in
  List.iter
    (fun (k, v) ->
      if not (ok_key k) then
        invalid_arg
          (Printf.sprintf "Mae_obs.Sketch: invalid label name %S" k);
      if not (ok_value v) then
        invalid_arg
          (Printf.sprintf "Mae_obs.Sketch: invalid label value %S" v))
    labels;
  if
    List.length (List.sort_uniq String.compare (List.map fst labels))
    <> List.length labels
  then invalid_arg "Mae_obs.Sketch: duplicate label name"

(* --- GK core --- *)

let cap_of eps n = int_of_float (2. *. eps *. float_of_int n)

(* Insert an ascending batch, one logical observation at a time (the
   running count [n] grows per element, so each new tuple's d is taken
   at its own insertion time -- the conservative choice). *)
let insert_sorted eps s values =
  if values = [] then s
  else begin
    let n = ref s.s_n in
    let rec go tuples values acc =
      match (tuples, values) with
      | _, [] -> List.rev_append acc tuples
      | t :: ts, v :: _ when v >= t.v -> go ts values (t :: acc)
      | _, v :: vs ->
          (* new minimum (acc = []) or new maximum (tuples = []) are
             exact; interior inserts get the GK delta *)
          let d =
            if acc = [] || tuples = [] then 0
            else max 0 (cap_of eps !n - 1)
          in
          incr n;
          go tuples vs ({ v; g = 1; d } :: acc)
    in
    let tuples = go s.s_tuples values [] in
    let vmin = List.hd values in
    let vmax = List.fold_left (fun _ v -> v) vmin values in
    {
      s_n = !n;
      s_sum = List.fold_left ( +. ) s.s_sum values;
      s_min = (if Float.is_nan s.s_min then vmin else Float.min s.s_min vmin);
      s_max = (if Float.is_nan s.s_max then vmax else Float.max s.s_max vmax);
      s_tuples = tuples;
    }
  end

let compress eps s =
  match s.s_tuples with
  | [] | [ _ ] -> s
  | first :: rest ->
      let cap = cap_of eps s.s_n in
      let rec go acc = function
        | t1 :: t2 :: ts when t1.g + t2.g + t2.d <= cap ->
            go acc ({ t2 with g = t1.g + t2.g } :: ts)
        | t :: ts -> go (t :: acc) ts
        | [] -> List.rev acc
      in
      { s with s_tuples = first :: go [] rest }

(* Rank query over the concatenation of summaries (tuples pre-sorted
   by value): pick the tuple whose [rmin, rmax] interval sits closest
   to the target rank. *)
let query_sorted tuples n q =
  if n = 0 then None
  else begin
    let r =
      max 1 (min n (int_of_float (Float.ceil (q *. float_of_int n))))
    in
    let best_err = ref max_int and best_v = ref Float.nan in
    let rmin = ref 0 in
    List.iter
      (fun t ->
        rmin := !rmin + t.g;
        let rmax = !rmin + t.d in
        let err = max (r - !rmin) (rmax - r) in
        if err < !best_err then begin
          best_err := err;
          best_v := t.v
        end)
      tuples;
    if !best_err = max_int then None else Some !best_v
  end

(* --- registry and per-domain plumbing --- *)

let registry_lock = Mutex.create ()
let registry : (string, t) Hashtbl.t = Hashtbl.create 8

let flush_one t l =
  if l.l_n > 0 then begin
    let values =
      List.sort Float.compare (Array.to_list (Array.sub l.l_buf 0 l.l_n))
    in
    let s = Atomic.get l.l_published in
    let s = compress t.sk_eps (insert_sorted t.sk_eps s values) in
    Atomic.set l.l_published s;
    l.l_n <- 0
  end

let create ?(help = "") ?eps ?(labels = []) name =
  Metrics.lint_name ~what:"Mae_obs.Sketch" name;
  lint_labels labels;
  let labels =
    List.sort (fun (a, _) (b, _) -> String.compare a b) labels
  in
  (match eps with
  | Some e when not (e > 0. && e < 0.5) ->
      invalid_arg "Mae_obs.Sketch: eps must be in (0, 0.5)"
  | _ -> ());
  let key = name ^ "{" ^ label_key labels ^ "}" in
  Mutex.lock registry_lock;
  let result =
    match Hashtbl.find_opt registry key with
    | Some t -> (
        match eps with
        | Some e when e <> t.sk_eps -> Error t.sk_eps
        | _ -> Ok t)
    | None ->
        let eps = Option.value eps ~default:0.001 in
        (* The DLS initializer closes over the sketch it belongs to;
           tie the knot through a ref (the initializer only runs on a
           domain's first observe, long after [create] returns). *)
        let self = ref None in
        let t =
          {
            sk_name = name;
            sk_labels = labels;
            sk_help = help;
            sk_eps = eps;
            sk_lock = Mutex.create ();
            sk_locals = [];
            sk_key =
              Domain.DLS.new_key (fun () ->
                  let t = Option.get !self in
                  let l =
                    {
                      l_buf = Array.make buf_cap 0.;
                      l_n = 0;
                      l_published = Atomic.make empty_summary;
                    }
                  in
                  Mutex.lock t.sk_lock;
                  t.sk_locals <- l :: t.sk_locals;
                  Mutex.unlock t.sk_lock;
                  Domain.at_exit (fun () -> flush_one t l);
                  l);
            sk_exemplars =
              Array.init exemplar_slots (fun _ -> Atomic.make None);
          }
        in
        self := Some t;
        Hashtbl.add registry key t;
        Ok t
  in
  Mutex.unlock registry_lock;
  match result with
  | Ok t -> t
  | Error existing ->
      invalid_arg
        (Printf.sprintf
           "Mae_obs.Sketch: %s already registered with eps %g" name existing)

let observe t v =
  let l = Domain.DLS.get t.sk_key in
  l.l_buf.(l.l_n) <- v;
  l.l_n <- l.l_n + 1;
  if l.l_n >= buf_cap then flush_one t l

let offer_exemplar t ~label v =
  let slots = t.sk_exemplars in
  let min_i = ref 0 and min_v = ref Float.infinity and empty = ref (-1) in
  Array.iteri
    (fun i slot ->
      match Atomic.get slot with
      | None -> if !empty < 0 then empty := i
      | Some e ->
          if e.ex_v < !min_v then begin
            min_v := e.ex_v;
            min_i := i
          end)
    slots;
  if !empty >= 0 then
    Atomic.set slots.(!empty)
      (Some { ex_v = v; ex_label = label; ex_wall = Clock.wall () })
  else if v > !min_v then
    Atomic.set slots.(!min_i)
      (Some { ex_v = v; ex_label = label; ex_wall = Clock.wall () })

let observe_exemplar t ~label v =
  observe t v;
  offer_exemplar t ~label v

let all () =
  Mutex.lock registry_lock;
  let l = Hashtbl.fold (fun _ t acc -> t :: acc) registry [] in
  Mutex.unlock registry_lock;
  List.sort
    (fun a b ->
      match String.compare a.sk_name b.sk_name with
      | 0 -> String.compare (label_key a.sk_labels) (label_key b.sk_labels)
      | c -> c)
    l

let flush_local () =
  List.iter (fun t -> flush_one t (Domain.DLS.get t.sk_key)) (all ())

(* --- merged reads --- *)

type merged = {
  m_n : int;
  m_sum : float;
  m_min : float;
  m_max : float;
  m_tuples : tuple list;
  m_domains : int;  (* summaries with samples *)
}

let merged t =
  flush_one t (Domain.DLS.get t.sk_key);
  Mutex.lock t.sk_lock;
  let locals = t.sk_locals in
  Mutex.unlock t.sk_lock;
  let summaries =
    List.filter_map
      (fun l ->
        let s = Atomic.get l.l_published in
        if s.s_n = 0 then None else Some s)
      locals
  in
  let tuples =
    List.concat_map (fun s -> s.s_tuples) summaries
    |> List.sort (fun a b -> Float.compare a.v b.v)
  in
  List.fold_left
    (fun m s ->
      {
        m with
        m_n = m.m_n + s.s_n;
        m_sum = m.m_sum +. s.s_sum;
        m_min =
          (if Float.is_nan m.m_min then s.s_min else Float.min m.m_min s.s_min);
        m_max =
          (if Float.is_nan m.m_max then s.s_max else Float.max m.m_max s.s_max);
        m_domains = m.m_domains + 1;
      })
    {
      m_n = 0;
      m_sum = 0.;
      m_min = Float.nan;
      m_max = Float.nan;
      m_tuples = tuples;
      m_domains = 0;
    }
    summaries

let quantile t q =
  let m = merged t in
  query_sorted m.m_tuples m.m_n q

(* Pooled rank query across several sketches (e.g. one per domain
   label): classic mergeable-summary argument again, total rank error
   sum_i eps_i * n_i. *)
let quantile_of_many ts q =
  let ms = List.map merged ts in
  let tuples =
    List.concat_map (fun m -> m.m_tuples) ms
    |> List.sort (fun a b -> Float.compare a.v b.v)
  in
  let n = List.fold_left (fun acc m -> acc + m.m_n) 0 ms in
  query_sorted tuples n q

type snapshot = {
  n : int;
  sum : float;
  min_v : float;
  max_v : float;
  eps : float;
  quantiles : (float * float) list;
  exemplars : (float * string * float) list;
  tuples : int;
}

let default_qs = [ 0.5; 0.9; 0.95; 0.99; 0.999 ]

let exemplars t =
  Array.to_list t.sk_exemplars
  |> List.filter_map (fun slot ->
         Option.map
           (fun e -> (e.ex_v, e.ex_label, e.ex_wall))
           (Atomic.get slot))
  |> List.sort (fun (a, _, _) (b, _, _) -> Float.compare b a)

let snapshot ?(qs = default_qs) t =
  let m = merged t in
  {
    n = m.m_n;
    sum = m.m_sum;
    min_v = m.m_min;
    max_v = m.m_max;
    eps = t.sk_eps;
    quantiles =
      List.filter_map
        (fun q ->
          Option.map (fun v -> (q, v)) (query_sorted m.m_tuples m.m_n q))
        qs;
    exemplars = exemplars t;
    tuples = List.length m.m_tuples;
  }

let rank_error_bound t ~n ~domains =
  (t.sk_eps *. float_of_int n) +. float_of_int domains

let reset t =
  Mutex.lock t.sk_lock;
  let locals = t.sk_locals in
  Mutex.unlock t.sk_lock;
  List.iter (fun l -> Atomic.set l.l_published empty_summary) locals;
  (Domain.DLS.get t.sk_key).l_n <- 0;
  Array.iter (fun slot -> Atomic.set slot None) t.sk_exemplars

(* --- exposition --- *)

let float_repr v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.9g" v

(* "{domain="0",quantile="0.5"}" -- the sketch's own labels plus an
   optional quantile, or "" when there is neither. *)
let render_labels ?quantile t =
  let pairs =
    t.sk_labels
    @ match quantile with Some q -> [ ("quantile", float_repr q) ] | None -> []
  in
  match pairs with
  | [] -> ""
  | pairs ->
      "{"
      ^ String.concat ","
          (List.map (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k v) pairs)
      ^ "}"

let to_prometheus () =
  let buf = Buffer.create 512 in
  (* [all] sorts by (name, labels): a family's labelled series are
     adjacent, and HELP/TYPE are emitted once per family name. *)
  let last_family = ref "" in
  List.iter
    (fun t ->
      let s = snapshot t in
      if not (String.equal !last_family t.sk_name) then begin
        last_family := t.sk_name;
        Buffer.add_string buf
          (Printf.sprintf "# HELP %s %s\n" t.sk_name
             (if String.equal t.sk_help "" then t.sk_name else t.sk_help));
        Buffer.add_string buf (Printf.sprintf "# TYPE %s summary\n" t.sk_name)
      end;
      List.iter
        (fun (q, v) ->
          Buffer.add_string buf
            (Printf.sprintf "%s%s %s\n" t.sk_name
               (render_labels ~quantile:q t)
               (float_repr v)))
        s.quantiles;
      Buffer.add_string buf
        (Printf.sprintf "%s_sum%s %s\n" t.sk_name (render_labels t)
           (float_repr s.sum));
      Buffer.add_string buf
        (Printf.sprintf "%s_count%s %d\n" t.sk_name (render_labels t) s.n);
      List.iter
        (fun (v, label, wall) ->
          (* OpenMetrics-flavoured exemplar, kept as a comment so plain
             Prometheus text parsers stay happy; the label is a request
             id resolvable at /tracez. *)
          Buffer.add_string buf
            (Printf.sprintf "# EXEMPLAR %s {request_id=\"%s\"} %s %s\n"
               t.sk_name label (float_repr v) (float_repr wall)))
        s.exemplars)
    (all ());
  Buffer.contents buf

let to_json_body () =
  let sketch_json t =
    let s = snapshot t in
    let base =
      (if t.sk_labels = [] then []
       else
         [
           ( "labels",
             Json.Object
               (List.map (fun (k, v) -> (k, Json.String v)) t.sk_labels) );
         ])
      @ [
        ("eps", Json.Number s.eps);
        ("count", Json.Number (float_of_int s.n));
        ("sum", Json.Number s.sum);
        ("tuples", Json.Number (float_of_int s.tuples));
      ]
    in
    let extremes =
      if s.n = 0 then []
      else [ ("min", Json.Number s.min_v); ("max", Json.Number s.max_v) ]
    in
    let quantiles =
      ( "quantiles",
        Json.Object
          (List.map (fun (q, v) -> (float_repr q, Json.Number v)) s.quantiles)
      )
    in
    let exemplars =
      ( "exemplars",
        Json.Array
          (List.map
             (fun (v, label, wall) ->
               Json.Object
                 [
                   ("value", Json.Number v);
                   ("label", Json.String label);
                   ("ts", Json.Number wall);
                 ])
             s.exemplars) )
    in
    let key =
      if t.sk_labels = [] then t.sk_name
      else t.sk_name ^ "{" ^ label_key t.sk_labels ^ "}"
    in
    (key, Json.Object (base @ extremes @ [ quantiles; exemplars ]))
  in
  Json.encode (Json.Object (List.map sketch_json (all ())))

(* Splice sketches into the shared /metrics dumps. *)
let () =
  Metrics.register_exposition ~key:"sketches" ~prometheus:to_prometheus
    ~json:to_json_body
