(** Mergeable, bounded-memory streaming quantile sketches
    (Greenwald–Khanna summaries with per-domain buffers).

    A sketch answers rank queries over everything it has observed with
    a proven bound: for a sketch created with error [eps], the value
    returned for quantile [q] has true rank within [eps * n] of
    [q * n] (plus one rank per merged per-domain summary, from
    integer rounding).  Memory is [O((1/eps) * log(eps * n))] tuples
    per domain regardless of stream length -- unlike a histogram there
    is no bucket-edge quantization, and unlike a sorted reservoir
    there is no sampling error.

    Concurrency follows the [Kernel_cache] tally discipline: each
    domain observes into a private buffer (no locks, no shared cache
    lines) which is folded into that domain's published summary when
    the buffer fills, when {!flush_local} is called (the engine's
    workers do this at the end of every batch), and at domain exit.
    Reads merge the published summaries of all domains; call them
    after in-flight work has joined, like {!Span.events}.

    Observation cost with telemetry enabled is an array store; the
    caller is expected to gate on {!Control.enabled} alongside its
    histogram observation (see [Mae_engine.estimate_one]). *)

type t

val create :
  ?help:string -> ?eps:float -> ?labels:(string * string) list -> string -> t
(** [create name] registers (or returns, idempotently) the sketch
    called [name].  [name] must match [mae_[a-z0-9_]*] -- same lint as
    {!Metrics}.  [eps] is the rank-error fraction (default [0.001],
    i.e. p99.9 resolved to one part in a thousand); omitting it on a
    re-registration accepts whatever the sketch was created with.
    [labels] attaches constant label pairs ([[("domain", "3")]]); the
    registry keys on (name, labels), so differently-labelled sketches
    with the same name form one Prometheus family whose series carry
    the labels (merged with the [quantile] label) and whose HELP/TYPE
    metadata is emitted once.  Label names must match
    [[a-z_][a-z0-9_]*] and values must not contain quotes,
    backslashes or newlines.
    Raises [Invalid_argument] on a bad name or label, [eps] outside
    (0, 0.5), or an explicit [eps] differing from the registered one. *)

val observe : t -> float -> unit
(** Record one sample from the calling domain. *)

val observe_exemplar : t -> label:string -> float -> unit
(** {!observe}, additionally offering [(label, value)] as an exemplar:
    the sketch keeps the largest few labelled observations (e.g.
    request ids of the slowest requests) so /metrics can cross-link to
    /tracez.  Exemplar slots are global and racy-by-design; losing one
    under contention is acceptable. *)

val flush_local : unit -> unit
(** Publish the calling domain's pending buffers for every registered
    sketch.  Engine workers call this at the end of each batch, and it
    runs automatically at domain exit. *)

val quantile : t -> float -> float option
(** [quantile t q] for [q] in [[0, 1]]: a value whose rank is within
    the advertised bound of [q * n].  [None] when empty.  Flushes the
    calling domain's buffer first. *)

val quantile_of_many : t list -> float -> float option
(** Pooled rank query over the union of several sketches' streams --
    used to answer "p99 GC pause across all domains" from the
    per-domain labelled sketches.  Same mergeable-summary bound,
    summed over members.  [None] when all are empty. *)

type snapshot = {
  n : int;  (** published sample count *)
  sum : float;
  min_v : float;  (** [nan] when empty *)
  max_v : float;  (** [nan] when empty *)
  eps : float;
  quantiles : (float * float) list;  (** [(q, value)] pairs *)
  exemplars : (float * string * float) list;
      (** [(value, label, wall_ts)], largest first *)
  tuples : int;  (** resident summary tuples across all domains *)
}

val snapshot : ?qs:float list -> t -> snapshot
(** Merged view across domains.  Default [qs] are
    [0.5; 0.9; 0.95; 0.99; 0.999]. *)

val rank_error_bound : t -> n:int -> domains:int -> float
(** The advertised worst-case rank error for a merged query:
    [eps * n + domains] (the additive term covers per-summary integer
    rounding).  Property tests assert against exactly this. *)

val name : t -> string

val labels : t -> (string * string) list
(** Constant labels this sketch was created with, sorted by name. *)

val eps : t -> float

val all : unit -> t list
(** Registered sketches, sorted by (name, labels). *)

val reset : t -> unit
(** Drop all published summaries, exemplars and the calling domain's
    pending buffer.  Other domains' pending buffers survive until
    their next flush; tests reset between joined phases. *)

val to_prometheus : unit -> string
(** Prometheus [summary]-typed exposition for every registered
    sketch, with exemplars as trailing comment lines.  Appended to
    {!Metrics.to_prometheus} output via the exposition hook. *)

val to_json_body : unit -> string
(** The sketches section as a JSON object body:
    [{"name": {"count": .., "quantiles": {..}, ..}, ..}]. *)
