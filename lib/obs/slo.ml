(* Rolling-window burn-rate accounting.

   One ring of (good, bad) slices per objective, sliced on the
   monotonic clock so wall-clock steps can't smear a window.  The ring
   covers the slow window; the fast window is the most recent prefix
   of the same ring, so both windows advance together and cost O(ring)
   to read -- rings are ~hundreds of slots, read a few times per
   scrape, so no cleverness is warranted. *)

type kind = Latency of float | Error_rate

type spec = {
  slo_name : string;
  description : string;
  kind : kind;
  target : float;
  fast_window_s : float;
  slow_window_s : float;
  min_events : int;
}

let spec ?(description = "") ?(target = 0.99) ?(fast_window_s = 300.)
    ?(slow_window_s = 3600.) ?(min_events = 20) ~kind name =
  {
    slo_name = name;
    description;
    kind;
    target;
    fast_window_s;
    slow_window_s;
    min_events;
  }

type t = {
  t_spec : spec;
  slice_s : float;
  fast_slices : int;  (* prefix of the ring forming the fast window *)
  lock : Mutex.t;
  good : int array;  (* ring, one slot per slice *)
  bad : int array;
  mutable cur_slice : int;  (* absolute slice index of ring position *)
  mutable lifetime_good : int;
  mutable lifetime_bad : int;
}

let registry_lock = Mutex.create ()
let registry : (string, t) Hashtbl.t = Hashtbl.create 8

let validate s =
  Metrics.lint_name ~what:"Mae_obs.Slo" s.slo_name;
  if not (s.target > 0. && s.target < 1.) then
    invalid_arg "Mae_obs.Slo: target must be in (0, 1)";
  if not (s.fast_window_s > 0.) then
    invalid_arg "Mae_obs.Slo: fast_window_s must be positive";
  if s.slow_window_s < s.fast_window_s then
    invalid_arg "Mae_obs.Slo: slow window shorter than fast window";
  (match s.kind with
  | Latency th when not (th > 0.) ->
      invalid_arg "Mae_obs.Slo: latency threshold must be positive"
  | _ -> ());
  if s.min_events < 1 then invalid_arg "Mae_obs.Slo: min_events < 1"

let register s =
  validate s;
  Mutex.lock registry_lock;
  let t =
    match Hashtbl.find_opt registry s.slo_name with
    | Some t -> t
    | None ->
        (* The fast window gets 20 slices of resolution; the ring
           extends the same slice width out to the slow window. *)
        let slice_s = s.fast_window_s /. 20. in
        let ring = int_of_float (Float.ceil (s.slow_window_s /. slice_s)) in
        let t =
          {
            t_spec = s;
            slice_s;
            fast_slices = 20;
            lock = Mutex.create ();
            good = Array.make ring 0;
            bad = Array.make ring 0;
            cur_slice = int_of_float (Clock.monotonic () /. slice_s);
            lifetime_good = 0;
            lifetime_bad = 0;
          }
        in
        Hashtbl.add registry s.slo_name t;
        t
  in
  Mutex.unlock registry_lock;
  t

(* Caller holds t.lock.  Zero the slots between the last-seen slice
   and now (bounded by the ring size), then point cur_slice at now. *)
let advance t =
  let ring = Array.length t.good in
  let now_slice = int_of_float (Clock.monotonic () /. t.slice_s) in
  if now_slice > t.cur_slice then begin
    let steps = min ring (now_slice - t.cur_slice) in
    for i = 1 to steps do
      let idx = (t.cur_slice + i) mod ring in
      t.good.(idx) <- 0;
      t.bad.(idx) <- 0
    done;
    t.cur_slice <- now_slice
  end

let record t ~good =
  Mutex.lock t.lock;
  advance t;
  let idx = t.cur_slice mod Array.length t.good in
  if good then begin
    t.good.(idx) <- t.good.(idx) + 1;
    t.lifetime_good <- t.lifetime_good + 1
  end
  else begin
    t.bad.(idx) <- t.bad.(idx) + 1;
    t.lifetime_bad <- t.lifetime_bad + 1
  end;
  Mutex.unlock t.lock

let record_latency t v =
  match t.t_spec.kind with
  | Latency threshold -> record t ~good:(v <= threshold)
  | Error_rate ->
      invalid_arg "Mae_obs.Slo.record_latency: error-rate objective"

type window_report = {
  window_s : float;
  good : int;
  bad : int;
  bad_fraction : float;
  burn_rate : float;
}

type report = {
  r_spec : spec;
  lifetime_good : int;
  lifetime_bad : int;
  fast : window_report;
  slow : window_report;
  r_healthy : bool;
}

(* Caller holds t.lock. *)
let window_sum (t : t) slices =
  let ring = Array.length t.good in
  let slices = min slices ring in
  let g = ref 0 and b = ref 0 in
  for i = 0 to slices - 1 do
    let idx = (t.cur_slice - i + (ring * 2)) mod ring in
    g := !g + t.good.(idx);
    b := !b + t.bad.(idx)
  done;
  (!g, !b)

let window_report t ~window_s ~slices =
  let good, bad = window_sum t slices in
  let total = good + bad in
  let bad_fraction =
    if total = 0 then 0. else float_of_int bad /. float_of_int total
  in
  let budget = 1. -. t.t_spec.target in
  { window_s; good; bad; bad_fraction; burn_rate = bad_fraction /. budget }

let report t =
  Mutex.lock t.lock;
  advance t;
  let fast =
    window_report t ~window_s:t.t_spec.fast_window_s ~slices:t.fast_slices
  in
  let slow =
    window_report t ~window_s:t.t_spec.slow_window_s
      ~slices:(Array.length t.good)
  in
  let lifetime_good = t.lifetime_good and lifetime_bad = t.lifetime_bad in
  Mutex.unlock t.lock;
  let r_healthy =
    fast.good + fast.bad < t.t_spec.min_events || fast.burn_rate < 1.0
  in
  { r_spec = t.t_spec; lifetime_good; lifetime_bad; fast; slow; r_healthy }

let all () =
  Mutex.lock registry_lock;
  let l = Hashtbl.fold (fun _ t acc -> t :: acc) registry [] in
  Mutex.unlock registry_lock;
  List.sort (fun a b -> String.compare a.t_spec.slo_name b.t_spec.slo_name) l

let reports () = List.map report (all ())
let healthy () = List.for_all (fun r -> r.r_healthy) (reports ())

let window_to_json w =
  Json.Object
    [
      ("window_s", Json.Number w.window_s);
      ("good", Json.Number (float_of_int w.good));
      ("bad", Json.Number (float_of_int w.bad));
      ("bad_fraction", Json.Number w.bad_fraction);
      ("burn_rate", Json.Number w.burn_rate);
    ]

let report_to_json r =
  let kind_fields =
    match r.r_spec.kind with
    | Latency th ->
        [
          ("kind", Json.String "latency");
          ("threshold_s", Json.Number th);
        ]
    | Error_rate -> [ ("kind", Json.String "error_rate") ]
  in
  Json.Object
    ([
       ("name", Json.String r.r_spec.slo_name);
       ("description", Json.String r.r_spec.description);
     ]
    @ kind_fields
    @ [
        ("target", Json.Number r.r_spec.target);
        ("budget", Json.Number (1. -. r.r_spec.target));
        ("min_events", Json.Number (float_of_int r.r_spec.min_events));
        ("lifetime_good", Json.Number (float_of_int r.lifetime_good));
        ("lifetime_bad", Json.Number (float_of_int r.lifetime_bad));
        ("fast", window_to_json r.fast);
        ("slow", window_to_json r.slow);
        ("healthy", Json.Bool r.r_healthy);
      ])

let to_json () =
  let rs = reports () in
  Json.Object
    [
      ("healthy", Json.Bool (List.for_all (fun r -> r.r_healthy) rs));
      ("slos", Json.Array (List.map report_to_json rs));
    ]

let reset t =
  Mutex.lock t.lock;
  Array.fill t.good 0 (Array.length t.good) 0;
  Array.fill t.bad 0 (Array.length t.bad) 0;
  t.lifetime_good <- 0;
  t.lifetime_bad <- 0;
  t.cur_slice <- int_of_float (Clock.monotonic () /. t.slice_s);
  Mutex.unlock t.lock
