(** Declarative service-level objectives with multi-window burn rates.

    An objective classifies each event as good or bad -- a latency SLO
    counts a request bad when it exceeds its threshold, an error-rate
    SLO counts failures -- and promises that at least [target] of
    events are good.  The interesting output is the {e burn rate}: the
    observed bad fraction divided by the error budget [1 - target].
    Burn 1.0 means the budget is being consumed exactly as fast as it
    is provisioned; burn 20 on a 99.9% objective means the monthly
    budget disappears in ~36 hours.

    Events are bucketed into fixed-width time slices on the monotonic
    clock and summed over two rolling windows -- a fast window (default
    5 min) that reacts to incidents, and a slow window (default 1 h)
    that separates blips from sustained regressions.  {!healthy} is
    the admission-control hook: it trips only when the fast window has
    both enough events to be meaningful ([min_events]) and a burn rate
    at or above 1.0, which is what flips /healthz to 503. *)

type kind =
  | Latency of float
      (** threshold in seconds; an event is good iff [latency <= threshold] *)
  | Error_rate  (** an event is good iff the caller says it succeeded *)

type spec = {
  slo_name : string;  (** [mae_[a-z0-9_]+], same lint as metrics *)
  description : string;
  kind : kind;
  target : float;  (** required good fraction, in (0, 1) *)
  fast_window_s : float;
  slow_window_s : float;
  min_events : int;
      (** fast-window events required before {!healthy} may trip *)
}

val spec :
  ?description:string ->
  ?target:float ->
  ?fast_window_s:float ->
  ?slow_window_s:float ->
  ?min_events:int ->
  kind:kind ->
  string ->
  spec
(** Smart constructor: target 0.99, windows 300 s / 3600 s,
    min_events 20. *)

type t

val register : spec -> t
(** Idempotent by name (an explicit respec of an existing name keeps
    the original).  Raises [Invalid_argument] on a bad name, target
    outside (0, 1), non-positive windows, or slow < fast. *)

val record : t -> good:bool -> unit
(** Count one event.  Safe from any domain (slice updates are
    mutex-protected; events are request-grained, not module-grained). *)

val record_latency : t -> float -> unit
(** For [Latency] objectives: classify against the threshold and
    {!record}.  Raises [Invalid_argument] on an [Error_rate] SLO. *)

type window_report = {
  window_s : float;
  good : int;
  bad : int;
  bad_fraction : float;  (** 0 when the window is empty *)
  burn_rate : float;  (** [bad_fraction / (1 - target)] *)
}

type report = {
  r_spec : spec;
  lifetime_good : int;
  lifetime_bad : int;
  fast : window_report;
  slow : window_report;
  r_healthy : bool;
      (** false iff fast window has [>= min_events] events and
          [burn_rate >= 1.0] *)
}

val report : t -> report
val reports : unit -> report list
(** All registered objectives, sorted by name. *)

val healthy : unit -> bool
(** Conjunction over every registered objective; [true] when none are
    registered. *)

val report_to_json : report -> Json.t
val to_json : unit -> Json.t
(** [{"healthy": bool, "slos": [report, ...]}]. *)

val reset : t -> unit
(** Zero all slices and lifetime totals (for tests). *)
