(* Per-domain span buffers.

   Each domain that opens a span lazily allocates its own buffer
   through [Domain.DLS], so recording a span never takes a lock and
   never shares a cache line with another domain -- the only global
   synchronization is a one-time registration of the buffer when a
   domain first traces.  Buffers outlive their domain: after the batch
   engine joins its workers, the exporter still sees every lane.

   Spans nest by construction ([with_] is a combinator, not a
   begin/end pair), so each buffer records a well-formed forest; the
   [depth] field and the child-duration accumulator let the exporter
   compute self times without re-deriving the tree. *)

type event = {
  name : string;
  attrs : (string * string) list;
  domain : int;  (* Domain.id of the recording domain *)
  depth : int;  (* 0 = root span of its lane *)
  ts : float;  (* wall-clock start, seconds since the epoch *)
  dur : float;  (* seconds *)
  self : float;  (* [dur] minus time spent in child spans *)
}

type buffer = {
  buf_domain : int;
  mutable events : event list;  (* most recently closed first *)
  mutable open_depth : int;
  mutable child_acc : float list;
      (* one accumulator per open span: total duration of its already
         closed children *)
}

let registry_lock = Mutex.create ()
let buffers : buffer list ref = ref []

let key =
  Domain.DLS.new_key (fun () ->
      let buf =
        {
          buf_domain = (Domain.self () :> int);
          events = [];
          open_depth = 0;
          child_acc = [];
        }
      in
      Mutex.lock registry_lock;
      buffers := buf :: !buffers;
      Mutex.unlock registry_lock;
      buf)

let now = Unix.gettimeofday

let with_ ?(attrs = []) ~name f =
  if not (Control.enabled ()) then f ()
  else begin
    let buf = Domain.DLS.get key in
    let start = now () in
    buf.open_depth <- buf.open_depth + 1;
    buf.child_acc <- 0. :: buf.child_acc;
    let close () =
      let dur = now () -. start in
      let children, outer =
        match buf.child_acc with
        | c :: rest -> (c, rest)
        | [] -> (0., [])  (* unbalanced only if [reset] raced a span *)
      in
      buf.open_depth <- buf.open_depth - 1;
      (* we are a closed child of the enclosing span, if any *)
      buf.child_acc <-
        (match outer with p :: up -> (p +. dur) :: up | [] -> []);
      buf.events <-
        {
          name;
          attrs;
          domain = buf.buf_domain;
          depth = buf.open_depth;
          ts = start;
          dur;
          self = Float.max 0. (dur -. children);
        }
        :: buf.events
    in
    match f () with
    | v ->
        close ();
        v
    | exception e ->
        close ();
        raise e
  end

let events () =
  Mutex.lock registry_lock;
  let bufs = !buffers in
  Mutex.unlock registry_lock;
  List.concat_map (fun b -> List.rev b.events) bufs
  |> List.sort (fun a b ->
         match Int.compare a.domain b.domain with
         | 0 -> Float.compare a.ts b.ts
         | c -> c)

let reset () =
  Mutex.lock registry_lock;
  List.iter
    (fun b ->
      b.events <- [];
      b.open_depth <- 0;
      b.child_acc <- [])
    !buffers;
  Mutex.unlock registry_lock
